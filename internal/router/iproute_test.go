package router

import (
	"testing"

	"embeddedmpls/internal/iproute"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
)

// installIPTables computes and installs IGP tables for every router.
func installIPTables(t *testing.T, n *Network, owners []iproute.PrefixOwner) {
	t.Helper()
	tables, err := iproute.BuildTables(n.Topo, owners)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range n.Routers {
		r.SetIPTable(tables[name])
	}
}

func TestIPFallbackForwardsHopByHop(t *testing.T) {
	n := lineNet(t, false) // software planes, no LSPs at all
	dstIP := packet.AddrFrom(10, 7, 0, 1)
	installIPTables(t, n, []iproute.PrefixOwner{{Prefix: dstIP, Len: 24, Node: "d"}})

	var got *packet.Packet
	n.Router("d").OnDeliver = func(p *packet.Packet) { got = p }
	n.Router("a").Inject(packet.New(1, dstIP, 64, []byte("ip")))
	n.Sim.Run()

	if got == nil {
		t.Fatal("IP packet not delivered")
	}
	// a, b and c each decrement on the IP path (the delivering router
	// does not).
	if got.Header.TTL != 61 {
		t.Errorf("TTL = %d, want 61", got.Header.TTL)
	}
	if got.Labelled() {
		t.Error("IP path attached labels")
	}
}

func TestIPFallbackOnHardwareLSR(t *testing.T) {
	// Even a hardware LSR (which discards unlabelled traffic in its data
	// plane) can route IP via the software table.
	n := lineNet(t, true)
	dstIP := packet.AddrFrom(10, 7, 0, 1)
	installIPTables(t, n, []iproute.PrefixOwner{{Prefix: dstIP, Len: 24, Node: "d"}})
	delivered := 0
	n.Router("d").OnDeliver = func(*packet.Packet) { delivered++ }
	n.Router("a").Inject(packet.New(1, dstIP, 64, nil))
	n.Sim.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
}

func TestMPLSPreferredOverIPFallback(t *testing.T) {
	n := lineNet(t, false)
	installIPTables(t, n, []iproute.PrefixOwner{{Prefix: dst, Len: 32, Node: "d"}})
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "lsp", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c", "d"},
	}); err != nil {
		t.Fatal(err)
	}
	seenLabelled := false
	// Snoop at c: with the LSP installed the packet must arrive labelled.
	orig := n.Router("c").Plane()
	_ = orig
	var got *packet.Packet
	n.Router("d").OnDeliver = func(p *packet.Packet) { got = p }
	p := packet.New(1, dst, 64, nil)
	n.Router("a").Inject(p)
	n.Sim.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	// MPLS end-to-end TTL behaviour (4 decrements) vs IP fallback (3):
	// 60 proves the labelled path was taken.
	if got.Header.TTL != 60 {
		t.Errorf("TTL = %d, want 60 (MPLS path)", got.Header.TTL)
	}
	_ = seenLabelled
}

func TestIPFallbackTTLExpiry(t *testing.T) {
	n := lineNet(t, false)
	dstIP := packet.AddrFrom(10, 7, 0, 1)
	installIPTables(t, n, []iproute.PrefixOwner{{Prefix: dstIP, Len: 24, Node: "d"}})
	delivered := 0
	n.Router("d").OnDeliver = func(*packet.Packet) { delivered++ }
	// TTL 2: survives a (ttl 1) then expires at b.
	n.Router("a").Inject(packet.New(1, dstIP, 2, nil))
	n.Sim.Run()
	if delivered != 0 {
		t.Fatal("expired packet delivered")
	}
	foundExpiry := false
	for _, name := range []string{"a", "b", "c"} {
		for reason, count := range n.Router(name).Stats.DropsByReason {
			if reason.String() == "ttl-expired" && count > 0 {
				foundExpiry = true
			}
		}
	}
	if !foundExpiry {
		t.Error("no router recorded a TTL expiry")
	}
}

func TestIPFallbackNoRouteStillDrops(t *testing.T) {
	n := lineNet(t, false)
	installIPTables(t, n, nil) // empty tables
	n.Router("a").Inject(packet.New(1, packet.AddrFrom(99, 0, 0, 1), 64, nil))
	n.Sim.Run()
	if n.Router("a").Stats.Dropped.Events != 1 {
		t.Error("unroutable packet not dropped")
	}
}
