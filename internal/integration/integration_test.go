// Package integration holds cross-package property tests: randomized
// topologies, CSPF-routed LSPs over mixed hardware/software data planes,
// and conservation invariants — every injected packet must be delivered
// or show up in exactly one drop counter, TTLs must reflect the hop
// count, and the network must drain (no stuck events).
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/trafficgen"
)

// randomNetwork builds a connected topology of n nodes: a random spanning
// tree plus extra random edges, with a random mix of hardware and
// software planes (hardware nodes are LERs so any node can be an
// ingress).
func randomNetwork(t *testing.T, rng *rand.Rand, n int) *router.Network {
	t.Helper()
	nodes := make([]router.NodeSpec, n)
	for i := range nodes {
		nodes[i] = router.NodeSpec{
			Name:       fmt.Sprintf("r%d", i),
			Hardware:   rng.Intn(2) == 0,
			RouterType: lsm.LER,
		}
	}
	seen := map[[2]string]bool{}
	var links []router.LinkSpec
	addLink := func(a, b int) {
		ka := [2]string{nodes[a].Name, nodes[b].Name}
		kb := [2]string{nodes[b].Name, nodes[a].Name}
		if a == b || seen[ka] || seen[kb] {
			return
		}
		seen[ka] = true
		links = append(links, router.LinkSpec{
			A: nodes[a].Name, B: nodes[b].Name,
			RateBPS: 50e6, Delay: 0.0005, QueueCap: 256,
			Metric: float64(1 + rng.Intn(4)),
		})
	}
	// Spanning tree: node i attaches to a random earlier node.
	for i := 1; i < n; i++ {
		addLink(i, rng.Intn(i))
	}
	// Extra edges for path diversity.
	for k := 0; k < n; k++ {
		addLink(rng.Intn(n), rng.Intn(n))
	}
	net, err := router.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

type flowSpec struct {
	id     uint16
	dst    packet.Addr
	path   []string
	egress string
}

// setupRandomLSPs routes nFlows LSPs between random distinct node pairs
// via CSPF and returns their specs.
func setupRandomLSPs(t *testing.T, rng *rand.Rand, net *router.Network, nFlows int) []flowSpec {
	t.Helper()
	names := net.Topo.Nodes()
	var flows []flowSpec
	for i := 0; i < nFlows; i++ {
		src := names[rng.Intn(len(names))]
		dst := names[rng.Intn(len(names))]
		if src == dst {
			continue
		}
		path, err := net.Topo.CSPF(te.PathRequest{From: src, To: dst, BandwidthBPS: 1e6})
		if err != nil {
			continue // partition shouldn't happen (spanning tree) but be safe
		}
		addr := packet.AddrFrom(10, byte(i), 0, 1)
		_, err = net.LDP.SetupLSP(ldp.SetupRequest{
			ID:        fmt.Sprintf("lsp%d", i),
			FEC:       ldp.FEC{Dst: addr, PrefixLen: 32},
			Path:      path,
			Bandwidth: 1e6,
			CoS:       5,
		})
		if err != nil {
			t.Fatalf("flow %d (%v): %v", i, path, err)
		}
		flows = append(flows, flowSpec{id: uint16(i + 1), dst: addr, path: path, egress: dst})
	}
	if len(flows) == 0 {
		t.Fatal("no flows established")
	}
	return flows
}

// accountDrops sums router-level and link-level drops across the network.
func accountDrops(net *router.Network) (routerDrops, linkDrops uint64) {
	for _, name := range net.Topo.Nodes() {
		r := net.Router(name)
		routerDrops += r.Stats.Dropped.Events
		for _, nb := range net.Topo.Neighbours(name) {
			if l, ok := r.SimLink(nb); ok {
				linkDrops += l.Queue().Dropped() + l.Lost.Events
			}
		}
	}
	return
}

func TestRandomMeshConservationAndTTL(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := randomNetwork(t, rng, 8)
			flows := setupRandomLSPs(t, rng, net, 6)

			collector := trafficgen.NewCollector(net.Sim)
			attached := map[string]bool{}
			for _, f := range flows {
				if !attached[f.egress] {
					collector.Attach(net.Router(f.egress))
					attached[f.egress] = true
				}
			}
			const perFlow = 50
			for _, f := range flows {
				trafficgen.CBR{
					Flow:     trafficgen.Flow{ID: f.id, Dst: f.dst, TTL: 64},
					Size:     256,
					Interval: 0.002,
					Stop:     0.002*perFlow - 0.001,
				}.Install(net.Sim, net.Router(f.path[0]), collector)
			}
			net.Sim.Run()

			if net.Sim.Pending() != 0 {
				t.Fatalf("%d events stuck after Run", net.Sim.Pending())
			}

			var sent, delivered uint64
			for _, f := range flows {
				fs := collector.Flow(f.id)
				sent += fs.Sent.Events
				delivered += fs.Delivered.Events
				if fs.Sent.Events != perFlow {
					t.Errorf("flow %d sent %d, want %d", f.id, fs.Sent.Events, perFlow)
				}
				// Uncongested 50 Mbps links with reservations: no loss.
				if fs.LossRate() != 0 {
					t.Errorf("flow %d lost %.1f%%", f.id, 100*fs.LossRate())
				}
				// TTL at delivery = 64 - hops (every router on the path
				// decrements once). Latency must reflect the hop count
				// too: at least hops * propagation delay.
				hops := len(f.path)
				minLatency := float64(hops-1) * 0.0005
				if fs.Latency.Min() < minLatency {
					t.Errorf("flow %d latency %.6f below propagation floor %.6f",
						f.id, fs.Latency.Min(), minLatency)
				}
				_ = hops
			}
			routerDrops, linkDrops := accountDrops(net)
			if delivered+routerDrops+linkDrops != sent {
				t.Errorf("conservation violated: sent=%d delivered=%d routerDrops=%d linkDrops=%d",
					sent, delivered, routerDrops, linkDrops)
			}
		})
	}
}

// TestRandomMeshTTLExactness checks the exact per-flow TTL arithmetic by
// delivering one probe per flow and comparing against the LSP length.
func TestRandomMeshTTLExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := randomNetwork(t, rng, 10)
	flows := setupRandomLSPs(t, rng, net, 8)

	got := map[uint16]*packet.Packet{}
	for _, f := range flows {
		f := f
		net.Router(f.egress).OnDeliver = func(p *packet.Packet) { got[p.Header.FlowID] = p }
	}
	for _, f := range flows {
		p := packet.New(1, f.dst, 64, nil)
		p.Header.FlowID = f.id
		net.Router(f.path[0]).Inject(p)
	}
	net.Sim.Run()

	for _, f := range flows {
		p, ok := got[f.id]
		if !ok {
			// The egress router's OnDeliver may have been overwritten by
			// a same-egress flow; both still record into got by FlowID.
			t.Errorf("flow %d not delivered", f.id)
			continue
		}
		wantTTL := 64 - len(f.path)
		if int(p.Header.TTL) != wantTTL {
			t.Errorf("flow %d (path %v): TTL %d, want %d", f.id, f.path, p.Header.TTL, wantTTL)
		}
		if p.Labelled() {
			t.Errorf("flow %d delivered labelled", f.id)
		}
	}
}

// TestOverloadAccountsEveryPacket drives a deliberately congested mesh
// and checks conservation still holds when drops are plentiful.
func TestOverloadAccountsEveryPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := []router.NodeSpec{
		{Name: "r0", Hardware: true, RouterType: lsm.LER},
		{Name: "r1", Hardware: false},
		{Name: "r2", Hardware: true, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "r0", B: "r1", RateBPS: 10e6, Delay: 0.0005, QueueCap: 8},
		{A: "r1", B: "r2", RateBPS: 1e6, Delay: 0.0005, QueueCap: 8}, // bottleneck
	}
	net, err := router.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 1)
	if _, err := net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"r0", "r1", "r2"},
	}); err != nil {
		t.Fatal(err)
	}
	collector := trafficgen.NewCollector(net.Sim)
	collector.Attach(net.Router("r2"))
	trafficgen.Poisson{
		Flow: trafficgen.Flow{ID: 1, Dst: dst}, Size: 900,
		RatePPS: 600, Stop: 1, Seed: rng.Int63(),
	}.Install(net.Sim, net.Router("r0"), collector)
	net.Sim.Run()

	fs := collector.Flow(1)
	if fs.LossRate() < 0.2 {
		t.Fatalf("expected heavy loss, got %.1f%%", 100*fs.LossRate())
	}
	routerDrops, linkDrops := accountDrops(net)
	if fs.Delivered.Events+routerDrops+linkDrops != fs.Sent.Events {
		t.Errorf("conservation under overload: sent=%d delivered=%d rdrop=%d ldrop=%d",
			fs.Sent.Events, fs.Delivered.Events, routerDrops, linkDrops)
	}
}
