package lsm

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// BenchmarkRTLSimulationThroughput measures how many device clock cycles
// per second the host can simulate on the full label stack modifier — the
// cost of cycle accuracy.
func BenchmarkRTLSimulationThroughput(b *testing.B) {
	bench := NewBench(LSR)
	_, _ = bench.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.HW.Sim.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "device-cycles/s")
}

// BenchmarkBehavioralUpdate measures the functional model the network
// simulator runs per packet.
func BenchmarkBehavioralUpdate(b *testing.B) {
	m := NewBehavioral(LSR)
	_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 43, Op: label.OpSwap})
	_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 43, NewLabel: 42, Op: label.OpSwap})
	_ = m.UserPush(label.Entry{Label: 42, TTL: 255})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Update(UpdateRequest{})
		if res.Discarded() {
			b.StopTimer()
			m.Reset()
			_ = m.UserPush(label.Entry{Label: 42, TTL: 255})
			b.StartTimer()
		}
	}
}

// BenchmarkHWUpdateSwap measures a full update operation through the
// RTL model (search position 1).
func BenchmarkHWUpdateSwap(b *testing.B) {
	bench := NewBench(LSR)
	_, _ = bench.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 43, Op: label.OpSwap})
	_, _ = bench.WritePair(infobase.Level2, infobase.Pair{Index: 43, NewLabel: 42, Op: label.OpSwap})
	_, _ = bench.UserPush(label.Entry{Label: 42, TTL: 255})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Update(UpdateRequest{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Discarded() {
			b.StopTimer()
			if _, err := bench.UserPush(label.Entry{Label: 42, TTL: 255}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
