package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(200)
	if c.Events != 2 || c.Bytes != 300 {
		t.Errorf("counter = %+v", c)
	}
	var d Counter
	d.Add(50)
	c.Merge(d)
	if c.Events != 3 || c.Bytes != 350 {
		t.Errorf("after merge = %+v", c)
	}
	eps, bps := c.Rate(2)
	if eps != 1.5 || bps != 1400 {
		t.Errorf("rate = %v eps, %v bps", eps, bps)
	}
	if eps, bps := c.Rate(0); eps != 0 || bps != 0 {
		t.Error("zero interval must give zero rates")
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Error("empty sample must report zeros")
	}
	if s.Summary("ms", 1) != "n=0" {
		t.Errorf("summary = %q", s.Summary("ms", 1))
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("count=%d mean=%v min=%v max=%v", s.Count(), s.Mean(), s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	// Population stddev of 1..5 = sqrt(2).
	if got := s.StdDev(); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2)", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	var s Sample
	s.Observe(0)
	s.Observe(10)
	if got := s.Percentile(25); got != 2.5 {
		t.Errorf("p25 of {0,10} = %v, want 2.5", got)
	}
}

func TestObserveAfterQueryKeepsOrder(t *testing.T) {
	var s Sample
	s.Observe(3)
	s.Observe(1)
	_ = s.Min() // forces a sort
	s.Observe(0)
	if s.Min() != 0 {
		t.Error("observation after query was lost or misordered")
	}
}

func TestPercentileAgainstSortedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s Sample
	var xs []float64
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64() * 10
		s.Observe(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, p := range []float64{1, 10, 50, 90, 99} {
		rank := p / 100 * float64(len(xs)-1)
		lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
		frac := rank - float64(lo)
		want := xs[lo]*(1-frac) + xs[hi]*frac
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	s.Observe(0.001)
	s.Observe(0.002)
	out := s.Summary("ms", 1000)
	for _, want := range []string{"n=2", "mean=1.5ms", "p50=1.5ms", "max=2ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestFlowStats(t *testing.T) {
	var f FlowStats
	for i := 0; i < 10; i++ {
		f.Sent.Add(100)
	}
	for i := 0; i < 8; i++ {
		f.Delivered.Add(100)
		f.Latency.Observe(0.010)
	}
	f.Dropped.Add(100)
	f.Dropped.Add(100)
	if got := f.LossRate(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("loss = %v, want 0.2", got)
	}
	if got := f.GoodputBPS(1); got != 8*100*8 {
		t.Errorf("goodput = %v", got)
	}
	var empty FlowStats
	if empty.LossRate() != 0 {
		t.Error("empty flow loss must be 0")
	}
}
