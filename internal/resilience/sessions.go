package resilience

import (
	"embeddedmpls/internal/signaling"
)

// SessionHealer is the healer of the distributed control plane: where
// the classic Healer repairs LSPs by reprogramming every router through
// the in-process LDP manager, the SessionHealer only *asks* — it turns
// a locally detected failure into a signaling Reroute request that
// travels hop-by-hop to the LSP's ingress, which may live in another
// process. Wire LinkDown/LinkUp to a Monitor's callbacks, exactly like
// the classic Healer.
type SessionHealer struct {
	sp       *signaling.Speaker
	clock    Clock
	timeline *Timeline

	paths map[string][]string // protected LSP -> last known path
	order []string            // protection order, for determinism
}

// BindSessions glues a signaling speaker into the resilience plane:
// session transitions land on the timeline, established paths are
// tracked for protection, and the returned SessionHealer converts
// detected link failures into protection-switch requests. The
// speaker's observation hooks are chained, not replaced.
func BindSessions(sp *signaling.Speaker, clock Clock, tl *Timeline) *SessionHealer {
	sh := &SessionHealer{
		sp:       sp,
		clock:    clock,
		timeline: tl,
		paths:    make(map[string][]string),
	}
	prevUp, prevDown, prevEst := sp.OnSessionUp, sp.OnSessionDown, sp.OnEstablished
	sp.OnSessionUp = func(peer string) {
		if tl != nil {
			tl.Add(clock.Now(), "signaling: %s: session to %s up", sp.Name(), peer)
		}
		if prevUp != nil {
			prevUp(peer)
		}
	}
	sp.OnSessionDown = func(peer string) {
		if tl != nil {
			tl.Add(clock.Now(), "signaling: %s: session to %s down", sp.Name(), peer)
		}
		if prevDown != nil {
			prevDown(peer)
		}
	}
	sp.OnEstablished = func(id string, path []string) {
		if _, tracked := sh.paths[id]; tracked {
			sh.paths[id] = append([]string(nil), path...)
		}
		if tl != nil {
			tl.Add(clock.Now(), "signaling: %s: LSP %q established via %v", sp.Name(), id, path)
		}
		if prevEst != nil {
			prevEst(id, path)
		}
	}
	return sh
}

// Protect registers an LSP (by base id) for protection switching. path
// is its current route; at the ingress it is refreshed automatically on
// every establishment.
func (sh *SessionHealer) Protect(id string, path []string) {
	if _, dup := sh.paths[id]; dup {
		return
	}
	sh.paths[id] = append([]string(nil), path...)
	sh.order = append(sh.order, id)
	if sh.timeline != nil {
		sh.timeline.Add(sh.clock.Now(), "healer: %s: protecting %q (path %v)", sh.sp.Name(), id, path)
	}
}

// LinkDown requests a protection switch for every protected LSP whose
// last known path crosses the failed connection. Wire to Monitor.OnDown.
func (sh *SessionHealer) LinkDown(a, b string) {
	for _, id := range sh.order {
		path := sh.paths[id]
		if !pathUses(path, a, b) {
			continue
		}
		if sh.timeline != nil {
			sh.timeline.Add(sh.clock.Now(), "healer: %s: requesting reroute of %q around %s-%s",
				sh.sp.Name(), id, a, b)
		}
		// Best effort: the LSP may already be gone, or the route to its
		// ingress may itself be partitioned — the withdraw cascade
		// covers that case.
		_ = sh.sp.RequestReroute(id, a, b)
	}
}

// Degraded requests a protection switch for a protected LSP whose data
// path is dropping packets even though every session is healthy (a
// corruption window, a grey failure): the request avoids the first link
// of the last known path, pushing the LSP onto a disjoint alternative.
func (sh *SessionHealer) Degraded(id string) {
	path, ok := sh.paths[id]
	if !ok || len(path) < 2 {
		return
	}
	if sh.timeline != nil {
		sh.timeline.Add(sh.clock.Now(), "healer: %s: %q degraded, requesting route off %s-%s",
			sh.sp.Name(), id, path[0], path[1])
	}
	_ = sh.sp.RequestReroute(id, path[0], path[1])
}

// LinkUp records a link recovery on the timeline. The signaling plane
// re-establishes sessions and resignals on its own; nothing to force.
func (sh *SessionHealer) LinkUp(a, b string) {
	if sh.timeline != nil {
		sh.timeline.Add(sh.clock.Now(), "healer: %s: link %s-%s recovered", sh.sp.Name(), a, b)
	}
}
