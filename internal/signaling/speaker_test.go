package signaling

import (
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/telemetry"
)

// diamond builds the canonical protection topology: a-b-d is the cheap
// path, a-c-d the expensive backup.
func diamond(t *testing.T) *router.Network {
	t.Helper()
	net, err := router.Build(
		[]router.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		[]router.LinkSpec{
			{A: "a", B: "b", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "b", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "a", B: "c", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "c", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
		})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func deliveredCounter(t *testing.T, net *router.Network, node string, dst packet.Addr) *int {
	t.Helper()
	r := net.Router(node)
	r.AddLocal(dst)
	n := new(int)
	r.OnDeliver = func(p *packet.Packet) { *n++ }
	return n
}

// sendProbePacket injects one unlabelled packet for dst at the ingress.
func sendProbePacket(net *router.Network, from string, dst packet.Addr) {
	p := packet.New(packet.AddrFrom(10, 0, 0, 1), dst, 16, nil)
	net.Router(from).Inject(p)
}

func TestSpeakerSessionsConverge(t *testing.T) {
	net := diamond(t)
	var events telemetry.EventCounters
	speakers, err := Deploy(net, WithEvents(&events), WithUntil(1))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.5)
	for name, sp := range speakers {
		for _, peer := range sp.Peers() {
			sess, _ := sp.Session(peer)
			if !sess.Up() {
				t.Errorf("session %s->%s is %v, want operational", name, peer, sess.State())
			}
		}
	}
	// 8 directed sessions, one up event each, no flaps.
	if got := events.Get(telemetry.EventSessionUp); got != 8 {
		t.Errorf("session_up = %d, want 8", got)
	}
	if got := events.Get(telemetry.EventSessionDown); got != 0 {
		t.Errorf("session_down = %d, want 0", got)
	}
}

func TestSpeakerEstablishAndForward(t *testing.T) {
	net := diamond(t)
	var events telemetry.EventCounters
	speakers, err := Deploy(net, WithEvents(&events), WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	delivered := deliveredCounter(t, net, "d", dst)

	var setupErr error
	established := false
	speakers["a"].OnEstablished = func(id string, path []string) {
		established = true
		if id != "l" || strings.Join(path, ",") != "a,b,d" {
			t.Errorf("established %q via %v", id, path)
		}
	}
	net.Sim.RunUntil(0.3) // let sessions come up
	err = speakers["a"].Setup(ldp.SetupRequest{
		ID:        "l",
		FEC:       ldp.FEC{Dst: dst, PrefixLen: 32},
		Path:      []string{"a", "b", "d"},
		Bandwidth: 1e6,
	}, func(e error) { setupErr = e })
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)
	if setupErr != nil {
		t.Fatalf("setup failed: %v", setupErr)
	}
	if !established {
		t.Fatal("LSP never established")
	}
	if got := events.Get(telemetry.EventLabelMapRx); got != 2 {
		t.Errorf("label_map_rx = %d, want 2 (b and a)", got)
	}

	// Transit state: b swaps, d pops; labels were distributed, not
	// computed — a and b hold distinct per-node label spaces.
	if l := speakers["b"].lsps["l#1"]; l == nil || !l.ilmInstalled {
		t.Error("transit b has no installed ILM state")
	}
	if l := speakers["d"].lsps["l#1"]; l == nil || !l.ilmInstalled {
		t.Error("egress d has no installed ILM state")
	}

	sendProbePacket(net, "a", dst)
	net.Sim.RunUntil(0.7)
	if *delivered != 1 {
		t.Fatalf("delivered = %d, want 1", *delivered)
	}
}

func TestSpeakerPHP(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	delivered := deliveredCounter(t, net, "d", dst)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "p",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
		PHP:  true,
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)
	// With PHP the egress installs nothing; the penultimate hop pops.
	if l := speakers["d"].lsps["p#1"]; l == nil || l.ilmInstalled {
		t.Error("egress installed an ILM despite PHP")
	}
	sendProbePacket(net, "a", dst)
	net.Sim.RunUntil(0.7)
	if *delivered != 1 {
		t.Fatalf("delivered = %d, want 1", *delivered)
	}
}

// TestSpeakerProtectionSwitch kills the primary path's link and expects
// the ingress to resignal over the backup — the withdraw cascade plus
// reroute, purely via messages.
func TestSpeakerProtectionSwitch(t *testing.T) {
	net := diamond(t)
	var events telemetry.EventCounters
	speakers, err := Deploy(net, WithEvents(&events), WithUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	delivered := deliveredCounter(t, net, "d", dst)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)

	net.SetLinkDown("a", "b", true)
	net.Sim.RunUntil(1.5) // dead timer fires, withdraw + reroute run

	if got := events.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Fatalf("protection_switch = %d, want 1", got)
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("rerouted path = %v, want a,c,d", lastPath)
	}
	if got := events.Get(telemetry.EventLabelWithdrawRx); got != 0 {
		// The break is adjacent to the ingress: the withdraw is local,
		// nothing crosses the wire upstream.
		t.Errorf("label_withdraw_rx = %d, want 0", got)
	}
	// Old-path state is gone everywhere: b saw its upstream die, d saw
	// the release.
	if l := speakers["b"].lsps["l#1"]; l != nil {
		t.Error("b still holds generation 1 state")
	}
	if l := speakers["d"].lsps["l#1"]; l != nil {
		t.Error("d still holds generation 1 state")
	}
	sendProbePacket(net, "a", dst)
	net.Sim.RunUntil(1.6)
	if *delivered != 1 {
		t.Fatalf("delivered over backup = %d, want 1", *delivered)
	}
}

// TestSpeakerRemoteWithdraw breaks the far link (b-d) so the withdraw
// has to travel over the wire from b up to a before the reroute.
func TestSpeakerRemoteWithdraw(t *testing.T) {
	net := diamond(t)
	var events telemetry.EventCounters
	speakers, err := Deploy(net, WithEvents(&events), WithUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)

	net.SetLinkDown("b", "d", true)
	net.Sim.RunUntil(1.5)

	if got := events.Get(telemetry.EventLabelWithdrawRx); got < 1 {
		t.Errorf("label_withdraw_rx = %d, want >= 1", got)
	}
	if got := events.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Fatalf("protection_switch = %d, want 1", got)
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("rerouted path = %v, want a,c,d", lastPath)
	}
}

// TestSpeakerRequestReroute drives the healer's cross-node escalation:
// the reroute request enters at the egress and must travel upstream to
// the ingress, which then switches make-before-break.
func TestSpeakerRequestReroute(t *testing.T) {
	net := diamond(t)
	var events telemetry.EventCounters
	speakers, err := Deploy(net, WithEvents(&events), WithUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)

	if err := speakers["d"].RequestReroute("l", "a", "b"); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(1.2)
	if got := events.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Fatalf("protection_switch = %d, want 1", got)
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("rerouted path = %v, want a,c,d", lastPath)
	}
	// Make-before-break: after the drain the old generation is released
	// along the old path.
	if l := speakers["b"].lsps["l#1"]; l != nil {
		t.Error("b still holds generation 1 after drain")
	}
	if speakers["a"].byBase["l"].gen != 2 {
		t.Errorf("current generation = %d, want 2", speakers["a"].byBase["l"].gen)
	}
}

// TestSpeakerAdmissionControl rejects a reservation the downstream link
// cannot carry, and the error reaches the ingress.
func TestSpeakerAdmissionControl(t *testing.T) {
	net, err := router.Build(
		[]router.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "d"}},
		[]router.LinkSpec{
			{A: "a", B: "b", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "b", B: "d", RateBPS: 1e3, Delay: 0.0005, Metric: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.3)
	var setupErr error
	gotResult := false
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:        "big",
		FEC:       ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path:      []string{"a", "b", "d"},
		Bandwidth: 1e6, // exceeds b-d capacity
	}, func(e error) { gotResult = true; setupErr = e }); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(1.5)
	if !gotResult {
		t.Fatal("done callback never fired")
	}
	if setupErr == nil {
		t.Fatal("admission failure reported success")
	}
	// The ingress reservation must have been rolled back.
	if l := speakers["a"].lsps["big#1"]; l != nil {
		t.Error("failed LSP left state at the ingress")
	}
}

func TestSpeakerSetupValidation(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net)
	if err != nil {
		t.Fatal(err)
	}
	a := speakers["a"]
	for name, req := range map[string]ldp.SetupRequest{
		"no id":       {Path: []string{"a", "b"}},
		"short path":  {ID: "x", Path: []string{"a"}},
		"wrong start": {ID: "x", Path: []string{"b", "d"}},
		"php 2 hops":  {ID: "x", Path: []string{"a", "b"}, PHP: true},
		"unknown":     {ID: "x", Path: []string{"a", "zz"}},
		"long id":     {ID: strings.Repeat("x", MaxIDLen), Path: []string{"a", "b"}},
	} {
		if err := a.Setup(req, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
