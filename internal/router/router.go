// Package router implements MPLS router nodes for the network simulator:
// a Router is a netsim.Node with attached links, local addresses, and a
// pluggable data plane — either the embedded hardware device (package
// device, timed by its verified cycle model) or the software forwarder
// (package swmpls, timed by a configurable per-packet cost). The paper's
// LER/LSR distinction is carried by the data plane's router type and by
// which tables the control plane installs.
package router

import (
	"fmt"

	"embeddedmpls/internal/device"
	"embeddedmpls/internal/iproute"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/plane"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// DataPlane is a forwarding engine as the router sees it: the unified
// plane contract (one processing step plus telemetry attachment),
// extended with simulator timing — Process reports how long the engine
// was occupied — the table programming surface used by ldp.Manager,
// and lifecycle cleanup. Close releases whatever the plane holds
// (worker goroutines for the concurrent engine; a no-op for the serial
// planes), letting the network tear down any plane without knowing its
// concrete type.
type DataPlane interface {
	plane.Plane
	Process(p *packet.Packet) (swmpls.Result, netsim.Time)
	InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error
	InstallILM(in label.Label, n swmpls.NHLFE) error
	RemoveILM(in label.Label)
	RemoveFEC(dst packet.Addr, prefixLen int)
	Close() error
}

// TableReader is the optional inspection half of a data plane:
// ordered dumps of the installed ILM and FTN, consumed by the
// management plane's infobase.get handler. SoftwarePlane (via the
// embedded forwarder) and EnginePlane (via an RCU snapshot) implement
// it; the hardware cycle model does not expose its tables.
type TableReader interface {
	ILMEntries() []swmpls.ILMEntry
	FECEntries() []swmpls.FECEntry
}

// Tables returns the data plane's table reader, or ok=false when this
// plane cannot be inspected.
func (r *Router) Tables() (TableReader, bool) {
	tr, ok := r.plane.(TableReader)
	return tr, ok
}

// SoftwarePlane runs the software forwarder with a fixed per-packet
// processing cost (the "entirely software based" baseline the paper
// contrasts with). The embedded Forwarder provides the plane.Plane
// half of the contract.
type SoftwarePlane struct {
	*swmpls.Forwarder
	// PerPacket is the engine occupancy per label operation. The default
	// of 50 microseconds approximates an early-2000s software router's
	// kernel forwarding path.
	PerPacket netsim.Time
}

// DefaultSoftwareCost is the default per-packet software forwarding cost.
const DefaultSoftwareCost netsim.Time = 50e-6

// NewSoftwarePlane returns a software data plane with the default
// map-backed ILM. perPacket <= 0 selects DefaultSoftwareCost.
func NewSoftwarePlane(perPacket netsim.Time) *SoftwarePlane {
	return NewSoftwarePlaneWith(perPacket, swmpls.New())
}

// NewSoftwarePlaneWith wraps an existing forwarder — the hook for
// selecting an ILM backend via swmpls.NewWith(swmpls.WithILM(...)).
func NewSoftwarePlaneWith(perPacket netsim.Time, f *swmpls.Forwarder) *SoftwarePlane {
	if perPacket <= 0 {
		perPacket = DefaultSoftwareCost
	}
	return &SoftwarePlane{Forwarder: f, PerPacket: perPacket}
}

// Process implements DataPlane.
func (s *SoftwarePlane) Process(p *packet.Packet) (swmpls.Result, netsim.Time) {
	return s.Forward(p), s.PerPacket
}

// Close implements DataPlane; the serial forwarder holds no resources.
func (s *SoftwarePlane) Close() error { return nil }

// HardwarePlane runs the embedded MPLS device; engine occupancy is the
// device's cycle count at its clock. The embedded Device provides the
// plane.Plane half of the contract.
type HardwarePlane struct {
	*device.Device
}

// NewHardwarePlane wraps a device as a data plane.
func NewHardwarePlane(d *device.Device) *HardwarePlane { return &HardwarePlane{Device: d} }

// Process implements DataPlane.
func (h *HardwarePlane) Process(p *packet.Packet) (swmpls.Result, netsim.Time) {
	res, cycles := h.Device.Process(p)
	return res, h.Seconds(cycles)
}

// Close implements DataPlane; the device model holds no resources.
func (h *HardwarePlane) Close() error { return nil }

// Stats aggregates a router's forwarding outcomes.
type Stats struct {
	Forwarded stats.Counter
	Delivered stats.Counter
	Dropped   stats.Counter
	// DropsByReason breaks drops down by cause.
	DropsByReason map[swmpls.DropReason]uint64
}

// Router is one network node.
type Router struct {
	name  string
	sim   *netsim.Simulator
	plane DataPlane
	links map[string]netsim.Wire
	local map[packet.Addr]bool

	// busyUntil models the forwarding engine as a serial resource: a
	// packet's processing starts when the engine frees up.
	busyUntil netsim.Time

	// OnDeliver, when set, receives packets addressed to this router
	// after decapsulation (traffic sinks hook it).
	OnDeliver func(p *packet.Packet)

	// control sinks are offered every locally delivered packet before
	// OnDeliver, in attachment order; the first to return true consumes
	// the packet. The resilience layer's keepalive probes and the
	// signaling layer's session messages ride them so control traffic
	// never pollutes flow statistics.
	control []func(p *packet.Packet) bool

	// admission, when set, judges every packet arriving from a
	// neighbour (never locally injected ones) before the engine spends
	// time on it. A false return discards the packet silently: the hook
	// owns the drop accounting (the ingress guard counts per-reason).
	admission func(p *packet.Packet, from string) bool

	// ipTable, when set, carries unlabelled packets that have no FEC
	// binding — conventional hop-by-hop IP forwarding, the pre-MPLS
	// baseline. The data plane's engine time already covers the lookup
	// cost (its FTN miss *is* the failed route lookup).
	ipTable *iproute.Table

	// drops, when set, receives one count per dropped packet under the
	// unified telemetry taxonomy; trace, when set, receives one event
	// per label operation or discard.
	drops *telemetry.DropCounters
	trace *telemetry.Ring

	// pumped marks a router whose engine-backed plane flushes egress
	// batches straight onto the wires (Network.AttachEgressPump). The
	// engine then owns per-operation tracing, so SetTelemetry forwards
	// the trace ring to the plane instead of tracing at the router.
	pumped bool

	Stats Stats
}

// New creates a router on the simulator.
func New(sim *netsim.Simulator, name string, plane DataPlane) *Router {
	return &Router{
		name:  name,
		sim:   sim,
		plane: plane,
		links: make(map[string]netsim.Wire),
		local: make(map[packet.Addr]bool),
		Stats: Stats{DropsByReason: make(map[swmpls.DropReason]uint64)},
	}
}

// Name implements netsim.Node.
func (r *Router) Name() string { return r.name }

// Plane exposes the data plane for table programming.
func (r *Router) Plane() DataPlane { return r.plane }

// InstallFEC, InstallILM, RemoveILM and RemoveFEC delegate to the data
// plane so a Router satisfies ldp.Installer directly.

// InstallFEC implements ldp.Installer.
func (r *Router) InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error {
	return r.plane.InstallFEC(dst, prefixLen, n)
}

// InstallILM implements ldp.Installer.
func (r *Router) InstallILM(in label.Label, n swmpls.NHLFE) error {
	return r.plane.InstallILM(in, n)
}

// RemoveILM implements ldp.Installer.
func (r *Router) RemoveILM(in label.Label) { r.plane.RemoveILM(in) }

// RemoveFEC implements ldp.Installer.
func (r *Router) RemoveFEC(dst packet.Addr, prefixLen int) { r.plane.RemoveFEC(dst, prefixLen) }

// AttachLink registers an outgoing link, keyed by the receiving node's
// name. Any netsim.Wire attaches — a simulated link or a transport
// link over a real socket; the router cannot tell them apart.
func (r *Router) AttachLink(l netsim.Wire) { r.links[l.To()] = l }

// Link returns the outgoing link toward the named neighbour.
func (r *Router) Link(to string) (netsim.Wire, bool) {
	l, ok := r.links[to]
	return l, ok
}

// SimLink returns the outgoing link toward the named neighbour as a
// simulated *netsim.Link, for callers that read simulator-only
// bookkeeping (delivered counts, utilisation). It reports false when
// the neighbour is unknown or the link is transport-backed.
func (r *Router) SimLink(to string) (*netsim.Link, bool) {
	l, ok := r.links[to].(*netsim.Link)
	return l, ok
}

// Links returns all attached outgoing links (iteration order is
// unspecified).
func (r *Router) Links() []netsim.Wire {
	out := make([]netsim.Wire, 0, len(r.links))
	for _, l := range r.links {
		out = append(out, l)
	}
	return out
}

// SetTelemetry attaches the unified observability sink: drop counters
// and trace ring in one call. Events are attributed to the router's
// own name (the sink's Node field is ignored — a router always knows
// who it is). Accounting happens at the router level, where link and
// next-hop failures are visible; the sink is deliberately not pushed
// into the data plane, which would double-count forwarding drops. The
// one exception is a pumped router, whose engine applies the label
// operations on its own workers: the trace ring (and only the trace
// ring — drop counts stay router-level) is forwarded to the plane.
func (r *Router) SetTelemetry(s telemetry.Sink) {
	r.drops = s.Drops
	r.trace = s.Trace
	if r.pumped {
		r.plane.SetTelemetry(telemetry.Sink{Trace: s.Trace, Node: r.name})
	}
}

// SetAdmission installs (or, with nil, removes) the ingress admission
// hook run on every packet received from a neighbour.
func (r *Router) SetAdmission(fn func(p *packet.Packet, from string) bool) {
	r.admission = fn
}

// AddLocal marks addr as terminating at this router: unlabelled packets
// for it are delivered instead of forwarded.
func (r *Router) AddLocal(addr packet.Addr) { r.local[addr] = true }

// Inject introduces a locally originated packet (from a traffic source).
func (r *Router) Inject(p *packet.Packet) { r.Receive(p, r.name) }

// Receive implements netsim.Node: run the packet through the forwarding
// engine (serially) and act on the decision when processing completes.
func (r *Router) Receive(p *packet.Packet, from string) {
	// Ingress admission runs before anything else — spoofed, TTL-bent,
	// over-rate or quarantined traffic must not reach the engine.
	if r.admission != nil && from != r.name && !r.admission(p, from) {
		return
	}
	// Local IP delivery needs no label operation.
	if !p.Labelled() && r.local[p.Header.Dst] {
		r.deliver(p)
		return
	}

	start := r.sim.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	// The engine may need several passes for one packet (a tunnel tail
	// pops, then re-examines the inner label); each pass costs engine
	// time. label.MaxDepth+1 bounds the passes.
	var res swmpls.Result
	total := netsim.Time(0)
	for pass := 0; pass < label.MaxDepth+1; pass++ {
		var d netsim.Time
		res, d = r.plane.Process(p)
		total += d
		if res.Action == swmpls.Forward && res.NextHop == "" && p.Labelled() {
			continue
		}
		break
	}
	r.busyUntil = start + total
	done := r.busyUntil - r.sim.Now()
	r.sim.Schedule(done, func() { r.act(p, res) })
}

// SetIPTable installs the router's IP forwarding table (nil disables the
// fallback).
func (r *Router) SetIPTable(t *iproute.Table) { r.ipTable = t }

func (r *Router) act(p *packet.Packet, res swmpls.Result) {
	if res.Action == swmpls.Drop && res.Drop == swmpls.DropNoRoute &&
		!p.Labelled() && r.ipTable != nil {
		r.ipForward(p)
		return
	}
	switch res.Action {
	case swmpls.Forward:
		l, ok := r.links[res.NextHop]
		if !ok {
			r.drop(p, swmpls.DropNoRoute)
			return
		}
		r.traceOp(p, res.Op)
		r.Stats.Forwarded.Add(p.Size())
		l.Send(p)
	case swmpls.Deliver:
		r.traceOp(p, res.Op)
		r.deliver(p)
	default:
		r.drop(p, res.Drop)
	}
}

// traceOp records an applied label operation: the event's level is the
// resulting stack depth and its label the (new) top of stack, zero
// once the stack has emptied.
func (r *Router) traceOp(p *packet.Packet, op label.Op) {
	if r.trace == nil || op == label.OpNone {
		return
	}
	var top uint32
	if e, err := p.Stack.Top(); err == nil {
		top = uint32(e.Label)
	}
	// telemetry.TraceOp values mirror label.Op numerically.
	r.trace.RecordOp(r.name, telemetry.TraceOp(op), uint8(p.Stack.Depth()), top)
}

// ipForward carries an unlabelled packet one hop by longest-prefix match,
// with the usual IP TTL handling.
func (r *Router) ipForward(p *packet.Packet) {
	nh, ok := r.ipTable.Lookup(p.Header.Dst)
	if !ok {
		r.drop(p, swmpls.DropNoRoute)
		return
	}
	if nh == iproute.Local {
		r.deliver(p)
		return
	}
	if p.Header.TTL > 0 {
		p.Header.TTL--
	}
	if p.Header.TTL == 0 {
		r.drop(p, swmpls.DropTTLExpired)
		return
	}
	l, ok := r.links[nh]
	if !ok {
		r.drop(p, swmpls.DropNoRoute)
		return
	}
	r.Stats.Forwarded.Add(p.Size())
	l.Send(p)
}

// SetControlSink installs the router's control-plane punt: delivered
// packets the sink claims (by returning true) are consumed before
// delivery statistics and OnDeliver see them. It replaces every
// previously attached sink; a nil sink detaches them all. Subsystems
// that must coexist (liveness probing and signaling sessions on one
// node) use AddControlSink instead.
func (r *Router) SetControlSink(sink func(p *packet.Packet) bool) {
	if sink == nil {
		r.control = nil
		return
	}
	r.control = []func(p *packet.Packet) bool{sink}
}

// AddControlSink attaches one more control-plane punt without
// disturbing the ones already installed. Sinks see delivered packets in
// attachment order; the first to claim a packet consumes it.
func (r *Router) AddControlSink(sink func(p *packet.Packet) bool) {
	r.control = append(r.control, sink)
}

func (r *Router) deliver(p *packet.Packet) {
	for _, sink := range r.control {
		if sink(p) {
			return
		}
	}
	r.Stats.Delivered.Add(p.Size())
	if r.OnDeliver != nil {
		r.OnDeliver(p)
	}
}

func (r *Router) drop(p *packet.Packet, reason swmpls.DropReason) {
	r.dropNoTrace(p, reason)
	tr, ok := reason.Telemetry()
	if !ok || r.trace == nil {
		return
	}
	var top uint32
	if e, err := p.Stack.Top(); err == nil {
		top = uint32(e.Label)
	}
	r.trace.RecordDiscard(r.name, uint8(p.Stack.Depth()), top, tr)
}

// dropNoTrace accounts a drop in the router-level counters without
// emitting a trace event — the egress pump path, where the engine has
// already traced the discard on its worker.
func (r *Router) dropNoTrace(p *packet.Packet, reason swmpls.DropReason) {
	r.Stats.Dropped.Add(p.Size())
	r.Stats.DropsByReason[reason]++
	if tr, ok := reason.Telemetry(); ok && r.drops != nil {
		r.drops.Inc(tr)
	}
}

// String summarises the router for logs.
func (r *Router) String() string {
	return fmt.Sprintf("router %s (fwd=%d dlv=%d drop=%d)",
		r.name, r.Stats.Forwarded.Events, r.Stats.Delivered.Events, r.Stats.Dropped.Events)
}
