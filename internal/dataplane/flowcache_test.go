package dataplane

import (
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// TestFlowCacheDeterministicInvalidation drives a flowCache by hand:
// entries must serve repeat flows from the memo, and a new snapshot
// pointer must empty the memo so the new label program wins
// immediately.
func TestFlowCacheDeterministicInvalidation(t *testing.T) {
	a := swmpls.New()
	if err := a.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	fc := newFlowCache()
	fc.sync(a)

	p := labelled(100, 1, 0)
	if res := fc.forward(a, p); res.NextHop != "b" {
		t.Fatalf("first pass: %+v", res)
	}
	if hits, misses := fc.take(); hits != 0 || misses != 1 {
		t.Fatalf("after seed: hits=%d misses=%d", hits, misses)
	}
	p2 := labelled(100, 1, 1)
	if res := fc.forward(a, p2); res.NextHop != "b" {
		t.Fatalf("cached pass: %+v", res)
	}
	if top, _ := p2.Stack.Top(); top.Label != 200 {
		t.Fatalf("cached swap produced label %d, want 200", top.Label)
	}
	if hits, misses := fc.take(); hits != 1 || misses != 0 {
		t.Fatalf("after repeat: hits=%d misses=%d", hits, misses)
	}

	// Publish: the same binding now swaps to 300 toward c.
	b := a.Clone()
	if err := b.InstallILM(100, swapNHLFE(300, "c")); err != nil {
		t.Fatal(err)
	}
	fc.sync(b)
	p3 := labelled(100, 1, 2)
	if res := fc.forward(b, p3); res.NextHop != "c" {
		t.Fatalf("post-publish pass: %+v", res)
	}
	if top, _ := p3.Stack.Top(); top.Label != 300 {
		t.Fatalf("post-publish swap produced label %d, want 300 (stale cache?)", top.Label)
	}
	if hits, misses := fc.take(); hits != 0 || misses != 1 {
		t.Fatalf("after publish: hits=%d misses=%d — sync did not invalidate", hits, misses)
	}

	// Same pointer again: no invalidation, the memo stays warm.
	fc.sync(b)
	if res := fc.forward(b, labelled(100, 1, 3)); res.NextHop != "c" {
		t.Fatalf("warm pass: %+v", res)
	}
	if hits, _ := fc.take(); hits != 1 {
		t.Fatal("sync with unchanged snapshot must keep entries")
	}
}

// TestFlowCacheEngineEquivalence runs identical traffic through a
// cached and an uncached engine and requires identical forwarding
// accounting — the cache may only change cost.
func TestFlowCacheEngineEquivalence(t *testing.T) {
	run := func(disable bool) Snapshot {
		sk := newSink()
		opts := []Option{WithWorkers(2), WithBatch(16), WithEgress(sk)}
		if disable {
			opts = append(opts, WithFlowCacheDisabled())
		}
		e := New(opts...)
		if err := e.Update(func(f *swmpls.Forwarder) error {
			if err := f.InstallILM(100, swapNHLFE(200, "b")); err != nil {
				return err
			}
			return f.InstallILM(101, swmpls.NHLFE{NextHop: "e", Op: label.OpPop})
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			var p *packet.Packet
			switch i % 3 {
			case 0:
				p = labelled(100, uint16(i%8), uint64(i))
			case 1:
				p = labelled(101, uint16(i%8), uint64(i))
			default:
				p = labelled(999, uint16(i%8), uint64(i)) // ILM miss
			}
			if !submitWait(e, p) {
				t.Fatal("submit failed")
			}
		}
		e.Close()
		return e.Snapshot()
	}
	cached, plain := run(false), run(true)
	if cached.Forwarded.Events != plain.Forwarded.Events ||
		cached.Delivered.Events != plain.Delivered.Events ||
		cached.Dropped.Events != plain.Dropped.Events {
		t.Fatalf("cached %v != uncached %v", cached.String(), plain.String())
	}
	if cached.CacheHits == 0 {
		t.Error("cached run recorded no hits")
	}
	if plain.CacheHits != 0 || plain.CacheMisses != 0 {
		t.Error("uncached run recorded cache traffic")
	}
	// 400 of 600 packets resolve (the rest are misses, never cached).
	if got := cached.CacheHits + cached.CacheMisses; got != 400 {
		t.Errorf("hits+misses = %d, want 400", got)
	}
}

// TestFlowCachePublishRace hammers the publish path while workers
// forward cached traffic: every delivered packet must carry a label
// program some published snapshot contained, never a stale or torn
// one. Run under `make race` this is the invalidation-on-publish race
// proof.
func TestFlowCachePublishRace(t *testing.T) {
	// Each publish rebinds label 100 to swap to versions[v]; a correct
	// engine only ever emits labels from the published set.
	valid := make(map[label.Label]bool)
	var validMu sync.Mutex
	var bad []label.Label
	e := New(WithWorkers(4), WithBatch(8), WithEgress(funcEgress{
		forward: func(_ string, p *packet.Packet) {
			top, err := p.Stack.Top()
			if err != nil {
				return
			}
			validMu.Lock()
			if !valid[top.Label] {
				bad = append(bad, top.Label)
			}
			validMu.Unlock()
		},
	}))
	publish := func(out label.Label) {
		validMu.Lock()
		valid[out] = true
		validMu.Unlock()
		if err := e.InstallILM(100, swapNHLFE(out, "b")); err != nil {
			t.Error(err)
		}
	}
	publish(200)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // control plane: republish continuously
		defer wg.Done()
		out := label.Label(201)
		for {
			select {
			case <-done:
				return
			default:
			}
			publish(out)
			out++
			time.Sleep(50 * time.Microsecond)
		}
	}()
	go func() { // traffic
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			submitWait(e, labelled(100, uint16(i%16), uint64(i)))
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(done)
	wg.Wait()
	e.Close()

	validMu.Lock()
	defer validMu.Unlock()
	if len(bad) > 0 {
		t.Fatalf("%d packets carried never-published labels, e.g. %v", len(bad), bad[0])
	}
	if s := e.Snapshot(); s.CacheMisses == 0 {
		t.Error("race run never touched the cache")
	}
}

// TestEngineSetTelemetry: swapping the sink mid-run must retarget both
// the trace ring and the drop counters without stopping workers.
func TestEngineSetTelemetry(t *testing.T) {
	e := New(WithWorkers(1), WithBatch(4))
	defer e.Close()
	drops := new(telemetry.DropCounters)
	ring := telemetry.NewRing(64)
	e.SetTelemetry(telemetry.Sink{Drops: drops, Trace: ring, Node: "dp0"})
	if e.Drops() != drops {
		t.Fatal("Drops() does not expose the attached counters")
	}
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	submitWait(e, labelled(100, 0, 0)) // swap: traced op
	submitWait(e, labelled(999, 0, 1)) // miss: drop + discard event
	deadline := time.Now().Add(2 * time.Second)
	for drops.Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if drops.Get(telemetry.ReasonLookupMiss) != 1 {
		t.Errorf("lookup-miss count = %d, want 1", drops.Get(telemetry.ReasonLookupMiss))
	}
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	for _, ev := range evs {
		if ev.Node != "dp0" {
			t.Fatalf("event node = %q, want dp0", ev.Node)
		}
	}
}
