package resilience

import (
	"errors"
	"testing"

	"embeddedmpls/internal/faults"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/telemetry"
)

func TestRetrySucceedsAfterFailures(t *testing.T) {
	sim := netsim.New()
	var ev telemetry.EventCounters
	tl := &Timeline{}
	r := NewRetryer(sim, Backoff{Base: 0.1, Factor: 2, Max: 1, Jitter: 0}, 1, &ev, tl)

	hook := faults.FailFirst(2)
	var attemptTimes []float64
	var done error
	doneCalled := false
	r.Do("op", func() error {
		attemptTimes = append(attemptTimes, sim.Now())
		return hook()
	}, func(err error) { done, doneCalled = err, true })
	sim.Run()

	if !doneCalled || done != nil {
		t.Fatalf("onDone: called=%v err=%v", doneCalled, done)
	}
	// Attempt 1 at t=0, retry 1 after Base=0.1, retry 2 after 0.2.
	want := []float64{0, 0.1, 0.3}
	if len(attemptTimes) != len(want) {
		t.Fatalf("attempts at %v, want %v", attemptTimes, want)
	}
	for i := range want {
		if diff := attemptTimes[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("attempt %d at %.4f, want %.4f", i+1, attemptTimes[i], want[i])
		}
	}
	if got := ev.Get(telemetry.EventRetryAttempt); got != 2 {
		t.Errorf("retry_attempt = %d, want 2", got)
	}
	if got := ev.Get(telemetry.EventRetryExhausted); got != 0 {
		t.Errorf("retry_exhausted = %d, want 0", got)
	}
}

func TestRetryExhaustion(t *testing.T) {
	sim := netsim.New()
	var ev telemetry.EventCounters
	r := NewRetryer(sim, Backoff{Base: 0.01, MaxAttempts: 3, Jitter: 0}, 1, &ev, nil)

	calls := 0
	var done error
	r.Do("op", func() error {
		calls++
		return errors.New("permanent")
	}, func(err error) { done = err })
	sim.Run()

	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if done == nil {
		t.Error("onDone got nil error after exhaustion")
	}
	if got := ev.Get(telemetry.EventRetryExhausted); got != 1 {
		t.Errorf("retry_exhausted = %d, want 1", got)
	}
	if got := ev.Get(telemetry.EventRetryAttempt); got != 2 {
		t.Errorf("retry_attempt = %d, want 2", got)
	}
}

func TestRetryBackoffCap(t *testing.T) {
	sim := netsim.New()
	r := NewRetryer(sim, Backoff{Base: 0.2, Factor: 10, Max: 0.5, MaxAttempts: 3, Jitter: 0}, 1, nil, nil)
	var times []float64
	r.Do("op", func() error {
		times = append(times, sim.Now())
		return errors.New("nope")
	}, nil)
	sim.Run()
	// Delays: 0.2 then capped at 0.5 (not 2.0).
	want := []float64{0, 0.2, 0.7}
	for i := range want {
		if diff := times[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("attempts at %v, want %v", times, want)
		}
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	run := func(seed int64) []float64 {
		sim := netsim.New()
		r := NewRetryer(sim, Backoff{Base: 0.1, Jitter: 0.5, MaxAttempts: 4}, seed, nil, nil)
		var times []float64
		r.Do("op", func() error {
			times = append(times, sim.Now())
			return errors.New("nope")
		}, nil)
		sim.Run()
		return times
	}
	a, b := run(7), run(7)
	if len(a) != 4 {
		t.Fatalf("attempts = %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
	// Jittered delays stay within [d/2*1.5) band around the nominal.
	for i, nominal := range []float64{0.1, 0.2, 0.4} {
		d := a[i+1] - a[i]
		if d < nominal*0.75-1e-9 || d > nominal*1.25+1e-9 {
			t.Errorf("delay %d = %.4f outside jitter band of %.4f", i, d, nominal)
		}
	}
}
