package frame

import (
	"math/rand"
	"testing"
)

// TestDecodersNeverPanic feeds random bytes to every layer-2 decoder.
func TestDecodersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		_, _ = DecodeEthernet(buf)
		_, _ = DecodeFrameRelay(buf)
		_, _ = UnmarshalCell(buf)
	}
	// Random cell trains through AAL5 reassembly.
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(5)
		cells := make([]Cell, n)
		for i := range cells {
			rng.Read(cells[i].Data[:])
			cells[i].VC = VC{VPI: uint8(rng.Intn(4)), VCI: uint16(rng.Intn(16))}
			cells[i].Last = rng.Intn(2) == 0
		}
		_, _ = DecodeAAL5(VC{VPI: 1, VCI: 1}, cells)
	}
}

// TestBitFlipAlwaysDetected: single bit flips anywhere in an Ethernet
// frame must be caught by the FCS.
func TestBitFlipAlwaysDetected(t *testing.T) {
	payload := []byte("integrity matters for label stacks")
	buf, err := EncodeEthernet(MAC{1}, MAC{2}, EtherTypeMPLS, payload)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(buf)*8; bit++ {
		buf[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeEthernet(buf); err == nil {
			t.Fatalf("bit flip at %d undetected", bit)
		}
		buf[bit/8] ^= 1 << (bit % 8)
	}
}
