// Package mgmt is the node's management plane: a JSON-RPC-over-TCP
// listener embedded in mplsnode, a per-feature handler registry, and
// the client mplsctl drives it with. The shape follows the NETCONF
// agents the ROADMAP names — an RPC router dispatching versioned
// requests to per-feature handlers — with the envelope kept to
// newline-delimited JSON so a fleet controller (or netcat) can speak
// it without a schema compiler.
//
// Wire format: one JSON object per line in each direction.
//
//	-> {"v":1,"id":7,"method":"lsp.provision","params":{"id":"l9","to":"egress","dst":"10.0.0.9"}}
//	<- {"v":1,"id":7,"result":{"ok":true}}
//
// Requests on one connection are answered in order, so clients may
// pipeline: write a batch, then read a batch — how mplsctl provisions
// tens of thousands of LSPs over a handful of round trips.
//
// Every handler runs under the node's network lock, serialised against
// packet delivery and the simulator exactly like a transport arrival;
// handlers therefore never block on network progress (lsp.provision
// returns once the request is signalled, not once the path maps — poll
// lsp.list for establishment).
package mgmt

import (
	"encoding/json"
	"fmt"
)

// Version is the envelope version this package speaks. Requests
// carrying any other version are rejected with CodeVersion, so an old
// mplsctl fails loudly against a new node instead of misparsing it.
const Version = 1

// Error codes, loosely following HTTP semantics so they read without
// a decoder ring.
const (
	// CodeParse: the request line was not valid JSON (or not an object).
	CodeParse = 400
	// CodeUnknownMethod: no handler registered under that name.
	CodeUnknownMethod = 404
	// CodeBadParams: the params did not decode or failed validation.
	CodeBadParams = 422
	// CodeVersion: envelope version mismatch.
	CodeVersion = 426
	// CodeInternal: the handler failed.
	CodeInternal = 500
	// CodeDraining: the node is shutting down; only node.status answers.
	CodeDraining = 503
)

// Request is the versioned RPC envelope.
type Request struct {
	V      int             `json:"v"`
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response answers one Request, echoing its id. Exactly one of Result
// and Error is set.
type Response struct {
	V      int             `json:"v"`
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// Error is the RPC error envelope; it doubles as a Go error so
// handlers and clients pass it around directly.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("mgmt: %s (code %d)", e.Message, e.Code) }

// Errorf builds an RPC error with the given code.
func Errorf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// BadParams wraps a params decode/validation failure.
func BadParams(err error) *Error { return Errorf(CodeBadParams, "%v", err) }
