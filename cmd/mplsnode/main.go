// mplsnode runs ONE router of a declarative scenario as its own OS
// process, exchanging labeled packets — and the label signaling that
// installs them — with the scenario's other nodes over UDP sockets. It
// is the distributed counterpart of mplssim, which runs the whole
// topology in one simulator.
//
// Every process loads the same scenario file but builds only its own
// router, with sockets wired per the scenario's transport section. No
// process assumes another's label tables: LDP-style sessions form over
// the wire to the physical neighbours, LSPs whose ingress is this node
// are signalled hop by hop, and transit/egress label state arrives as
// LABEL MAPPING messages from peers. Kill a node mid-run and its
// neighbours' dead timers tear the crossing LSPs; an ingress resignals
// around the hole:
//
//	mplsnode -config scenario.json -node a &
//	mplsnode -config scenario.json -node b
//
// Traffic generators run only on the process that owns their source
// node; delivery statistics print on the process that owns the LSP
// egress. The run lasts -duration wall-clock seconds (default: the
// scenario duration plus half a second of drain slack).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/telemetry"
)

// applyGuardOverrides folds a "key=value,key=value" -guard flag into the
// scenario's guard section (creating one if the file has none), so a
// node can be hardened — or loosened — without editing the shared file.
func applyGuardOverrides(s *config.Scenario, spec string) error {
	if s.Guard == nil {
		s.Guard = &config.GuardSection{}
	}
	g := s.Guard
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("guard override %q is not key=value", kv)
		}
		var err error
		switch k {
		case "spoof_filter":
			g.SpoofFilter, err = strconv.ParseBool(v)
		case "ttl_min":
			g.TTLMin, err = strconv.Atoi(v)
		case "rate_pps":
			g.RatePPS, err = strconv.ParseFloat(v, 64)
		case "burst":
			g.Burst, err = strconv.Atoi(v)
		case "quarantine_threshold":
			g.QuarantineThreshold, err = strconv.Atoi(v)
		case "quarantine_window_s":
			g.QuarantineWindowS, err = strconv.ParseFloat(v, 64)
		case "quarantine_hold_s":
			g.QuarantineHoldS, err = strconv.ParseFloat(v, 64)
		default:
			return fmt.Errorf("unknown guard key %q", k)
		}
		if err != nil {
			return fmt.Errorf("guard override %q: %v", kv, err)
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mplsnode: ")
	configPath := flag.String("config", "", "JSON scenario file with a transport section (required)")
	node := flag.String("node", "", "name of the router this process runs (required)")
	duration := flag.Float64("duration", 0, "wall-clock seconds to run (default scenario duration + 0.5s)")
	coalesce := flag.Int("coalesce", 0, "packets per datagram on inter-process links (overrides scenario transport section)")
	sysBatch := flag.Int("sysbatch", 0, "datagrams per send/receive syscall (overrides scenario transport section)")
	guardSpec := flag.String("guard", "", `admission-guard overrides, "spoof_filter=true,ttl_min=2,rate_pps=1000,..." (merged over the scenario guard section)`)
	flag.Parse()
	if *configPath == "" || *node == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	if scenario.Transport != nil {
		if *coalesce > 0 {
			scenario.Transport.Coalesce = *coalesce
		}
		if *sysBatch > 0 {
			scenario.Transport.SysBatch = *sysBatch
		}
	}
	if *guardSpec != "" {
		if err := applyGuardOverrides(scenario, *guardSpec); err != nil {
			log.Fatal(err)
		}
	}

	b, err := scenario.BuildNode(*node)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Net.Close()
	var drops telemetry.DropCounters
	b.Net.SetTelemetry(telemetry.Sink{Drops: &drops})

	// Narrate the control plane as it converges; the hooks run in the
	// delivery path, under this node's network lock. BuildNode already
	// hooked OnSessionDown for flap damping — chain it, never replace.
	b.Net.Lock()
	prevUp, prevDown := b.Speaker.OnSessionUp, b.Speaker.OnSessionDown
	b.Speaker.OnSessionUp = func(peer string) {
		fmt.Printf("t=%.3fs session to %s up\n", b.Net.Sim.Now(), peer)
		if prevUp != nil {
			prevUp(peer)
		}
	}
	b.Speaker.OnSessionDown = func(peer string) {
		fmt.Printf("t=%.3fs session to %s DOWN\n", b.Net.Sim.Now(), peer)
		if prevDown != nil {
			prevDown(peer)
		}
	}
	b.Speaker.OnEstablished = func(id string, path []string) {
		fmt.Printf("t=%.3fs LSP %q established via %v\n", b.Net.Sim.Now(), id, path)
	}
	b.Net.Unlock()

	d := *duration
	if d <= 0 {
		d = scenario.DurationS + 0.5
	}
	fmt.Printf("node %s up (scenario %q, %.2fs, signaling to %v)\n",
		*node, scenario.Name, d, b.Speaker.Peers())
	b.Net.RunReal(d)

	b.Net.Lock()
	defer b.Net.Unlock()
	fmt.Printf("node %s done: %v\n", *node, b.Net.Router(*node))
	for _, id := range b.Collector.FlowIDs() {
		fs := b.Collector.Flow(id)
		fmt.Printf("  flow %d: sent=%d delivered=%d loss=%.2f%% latency %s\n",
			id, fs.Sent.Events, fs.Delivered.Events, 100*fs.LossRate(),
			fs.Latency.Summary("ms", 1e3))
	}
	fmt.Printf("  %v\n", b.Net.Wire)
	fmt.Printf("  %v\n", b.Events)
	if drops.Total() > 0 {
		fmt.Printf("  %v\n", &drops)
	}
	if b.Guard != nil {
		fmt.Printf("  %v\n", b.Guard)
	}
}
