package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// maxReadSize bounds one datagram read; a 64 KiB slice covers the
// largest UDP payload, so no datagram is ever truncated by the reader.
const maxReadSize = 64 << 10

// Inbound is one decoded arrival: the packet and the name of the
// neighbour that sent it, resolved from the datagram's NodeID (or
// pinned by WithPeer on single-peer sockets).
type Inbound struct {
	P    *packet.Packet
	From string
}

// Receiver owns one UDP socket and turns its datagrams into batches of
// decoded packets. Arrivals are accumulated until the batch is full or
// the flush interval expires, then handed to the sink in one call —
// the socket-side mirror of dataplane.Engine's SubmitBatch, so a
// node's receive path amortises per-packet dispatch the same way its
// forwarding path does.
//
// The sink owns the packets only for the duration of the call: the
// receiver reuses their stack and payload storage for the next batch,
// which is what keeps the decode path allocation-free. Sinks that
// queue packets (dataplane submission does) must Clone them.
type Receiver struct {
	conn    *net.UDPConn
	deliver func(batch []Inbound)

	peer  string
	names []string

	batch    []Inbound
	pending  int
	flushIvl time.Duration
	readBuf  []byte

	m      *Metrics
	drop   func(telemetry.Reason)
	closed atomic.Bool
	done   chan struct{}
}

// Listen opens a UDP receive socket on addr (":0" picks a free port)
// and starts the read loop, delivering decoded batches to sink.
func Listen(addr string, sink func(batch []Inbound), opts ...Option) (*Receiver, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	la, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	// Size the kernel's receive queue too: bursts larger than SO_RCVBUF
	// are silently shed by the kernel before the read loop ever sees
	// them. Best effort — some platforms clamp it.
	_ = conn.SetReadBuffer(cfg.readBuffer)
	r := &Receiver{
		conn:     conn,
		deliver:  sink,
		peer:     cfg.peer,
		names:    cfg.names,
		batch:    make([]Inbound, cfg.batch),
		flushIvl: cfg.flushInterval,
		readBuf:  make([]byte, maxReadSize),
		m:        cfg.metrics,
		drop:     cfg.drop,
		done:     make(chan struct{}),
	}
	if r.m == nil {
		r.m = &Metrics{}
	}
	for i := range r.batch {
		r.batch[i].P = &packet.Packet{}
	}
	go r.loop()
	return r, nil
}

// Addr returns the socket's bound address — the port to hand peers
// when listening on ":0".
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Metrics exposes the receiver's transport counters.
func (r *Receiver) Metrics() *Metrics { return r.m }

// Close stops the read loop and releases the socket. Idempotent; it
// returns after the loop has flushed its last batch and exited, so no
// sink call is in flight afterwards.
func (r *Receiver) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	err := r.conn.Close()
	<-r.done
	return err
}

// loop is the socket read loop: block for the first datagram of a
// batch, then drain with a short deadline so a burst fills the batch
// but a lone packet is not held hostage for longer than the flush
// interval.
func (r *Receiver) loop() {
	defer close(r.done)
	for {
		if r.pending == 0 {
			// Nothing buffered: block indefinitely for the next packet.
			r.conn.SetReadDeadline(time.Time{})
		} else {
			r.conn.SetReadDeadline(time.Now().Add(r.flushIvl))
		}
		n, err := r.conn.Read(r.readBuf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				r.flush()
				continue
			}
			// Socket closed (or unrecoverable): deliver what we have
			// and stop.
			r.flush()
			return
		}
		r.ingest(r.readBuf[:n])
		if r.pending == len(r.batch) {
			r.flush()
		}
	}
}

// ingest decodes one datagram into the next batch slot, accounting
// failures as wire-decode drops.
func (r *Receiver) ingest(buf []byte) {
	slot := &r.batch[r.pending]
	src, err := DecodePacket(slot.P, buf)
	if err != nil {
		r.m.DecodeErrors.Add(1)
		if truncation(err) {
			r.m.ShortReads.Add(1)
		}
		if r.drop != nil {
			r.drop(telemetry.ReasonWireDecode)
		}
		return
	}
	r.m.RxPackets.Add(1)
	r.m.RxBytes.Add(uint64(len(buf)))
	slot.From = r.peer
	if slot.From == "" && int(src) < len(r.names) {
		slot.From = r.names[src]
	}
	r.pending++
}

// flush hands the accumulated batch to the sink and rearms the slots.
func (r *Receiver) flush() {
	if r.pending == 0 {
		return
	}
	n := r.pending
	r.pending = 0
	r.deliver(r.batch[:n])
}
