// Package te implements the traffic engineering substrate the paper's
// motivation rests on: an annotated topology graph, constrained
// shortest-path-first (CSPF) computation, and per-link bandwidth
// reservation. The routing functionality ("software" in the paper's
// hardware/software split) uses it to pick explicit LSP routes that avoid
// congested links, which packages ldp and router then signal and install.
package te

import (
	"errors"
	"fmt"
	"sort"
)

// LinkAttrs are the traffic engineering attributes of one directed link.
type LinkAttrs struct {
	// CapacityBPS is the reservable bandwidth in bits per second.
	CapacityBPS float64
	// ReservedBPS is the bandwidth currently reserved by LSPs.
	ReservedBPS float64
	// Metric is the administrative cost (IGP metric). Zero means 1.
	Metric float64
	// DelaySec is the propagation delay, available as an alternative
	// optimisation objective.
	DelaySec float64
}

// Available returns the unreserved bandwidth.
func (a LinkAttrs) Available() float64 { return a.CapacityBPS - a.ReservedBPS }

func (a LinkAttrs) metric() float64 {
	if a.Metric <= 0 {
		return 1
	}
	return a.Metric
}

// Topology is a directed graph of named routers.
type Topology struct {
	nodes map[string]bool
	links map[string]map[string]*LinkAttrs
}

// Topology errors.
var (
	ErrUnknownNode = errors.New("te: unknown node")
	ErrNoPath      = errors.New("te: no feasible path")
	ErrBandwidth   = errors.New("te: insufficient bandwidth")
	ErrNoLink      = errors.New("te: no such link")
)

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{nodes: make(map[string]bool), links: make(map[string]map[string]*LinkAttrs)}
}

// AddNode registers a router. Adding a node twice is harmless.
func (t *Topology) AddNode(name string) { t.nodes[name] = true }

// Nodes returns the registered node names, sorted.
func (t *Topology) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddLink registers a directed link. Both endpoints must exist.
func (t *Topology) AddLink(from, to string, attrs LinkAttrs) error {
	if !t.nodes[from] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if !t.nodes[to] {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if t.links[from] == nil {
		t.links[from] = make(map[string]*LinkAttrs)
	}
	a := attrs
	t.links[from][to] = &a
	return nil
}

// AddDuplex registers links in both directions with the same attributes.
func (t *Topology) AddDuplex(a, b string, attrs LinkAttrs) error {
	if err := t.AddLink(a, b, attrs); err != nil {
		return err
	}
	return t.AddLink(b, a, attrs)
}

// Link returns the attributes of the from->to link.
func (t *Topology) Link(from, to string) (LinkAttrs, bool) {
	if a, ok := t.links[from][to]; ok {
		return *a, true
	}
	return LinkAttrs{}, false
}

// Neighbours returns the downstream neighbours of a node, sorted for
// deterministic path computation.
func (t *Topology) Neighbours(from string) []string {
	out := make([]string, 0, len(t.links[from]))
	for to := range t.links[from] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// Objective selects what CSPF minimises.
type Objective int

// Path objectives.
const (
	// MinMetric minimises the sum of administrative metrics.
	MinMetric Objective = iota
	// MinDelay minimises the sum of propagation delays.
	MinDelay
)

// LinkKey names one directed link for exclusion sets.
type LinkKey struct{ From, To string }

// ExcludePath returns the exclusion set covering every link of the path
// in both directions — the input for a link-disjoint backup computation.
func ExcludePath(path []string) map[LinkKey]bool {
	out := make(map[LinkKey]bool, 2*len(path))
	for i := 0; i+1 < len(path); i++ {
		out[LinkKey{path[i], path[i+1]}] = true
		out[LinkKey{path[i+1], path[i]}] = true
	}
	return out
}

// PathRequest is a CSPF query.
type PathRequest struct {
	From, To string
	// BandwidthBPS is the bandwidth constraint: links with less
	// available bandwidth are pruned.
	BandwidthBPS float64
	// ExcludeNodes prunes routers (e.g. for node-disjoint backup paths).
	ExcludeNodes map[string]bool
	// ExcludeLinks prunes individual directed links (e.g. failed links,
	// or a primary path's links for link-disjoint protection).
	ExcludeLinks map[LinkKey]bool
	// Objective selects the cost function; default MinMetric.
	Objective Objective
	// MaxHops, when positive, bounds the path length in links (a CR-LDP
	// hop-count constraint). A cheapest path longer than this is
	// rejected even if no shorter one exists.
	MaxHops int
}

// CSPF computes the cheapest path satisfying the request's constraints
// using Dijkstra over the pruned graph. Ties break toward fewer hops and
// then lexicographically smaller predecessors, so results are
// deterministic.
func (t *Topology) CSPF(req PathRequest) ([]string, error) {
	if !t.nodes[req.From] {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, req.From)
	}
	if !t.nodes[req.To] {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, req.To)
	}
	if req.ExcludeNodes[req.From] || req.ExcludeNodes[req.To] {
		return nil, fmt.Errorf("%w: endpoint excluded", ErrNoPath)
	}

	type state struct {
		cost float64
		hops int
		prev string
		done bool
	}
	states := map[string]*state{req.From: {}}
	for {
		// Extract the cheapest unsettled node (linear scan: topologies
		// here are tens of nodes, clarity beats a heap).
		var cur string
		var cs *state
		for n, s := range states {
			if s.done {
				continue
			}
			if cs == nil || s.cost < cs.cost || (s.cost == cs.cost && (s.hops < cs.hops || (s.hops == cs.hops && n < cur))) {
				cur, cs = n, s
			}
		}
		if cs == nil {
			return nil, fmt.Errorf("%w: %s -> %s (bw %.0f)", ErrNoPath, req.From, req.To, req.BandwidthBPS)
		}
		if cur == req.To {
			if req.MaxHops > 0 && cs.hops > req.MaxHops {
				return nil, fmt.Errorf("%w: cheapest path %s -> %s has %d hops, limit %d",
					ErrNoPath, req.From, req.To, cs.hops, req.MaxHops)
			}
			break
		}
		cs.done = true
		for _, nb := range t.Neighbours(cur) {
			if req.ExcludeNodes[nb] {
				continue
			}
			if req.ExcludeLinks[LinkKey{cur, nb}] {
				continue
			}
			a := t.links[cur][nb]
			if a.Available() < req.BandwidthBPS {
				continue
			}
			w := a.metric()
			if req.Objective == MinDelay {
				w = a.DelaySec
			}
			next := states[nb]
			cand := state{cost: cs.cost + w, hops: cs.hops + 1, prev: cur}
			if next == nil {
				c := cand
				states[nb] = &c
				continue
			}
			if next.done {
				continue
			}
			if cand.cost < next.cost ||
				(cand.cost == next.cost && (cand.hops < next.hops ||
					(cand.hops == next.hops && cand.prev < next.prev))) {
				*next = cand
			}
		}
	}

	// Walk predecessors back from the destination.
	var path []string
	for n := req.To; ; n = states[n].prev {
		path = append(path, n)
		if n == req.From {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Reserve books bw on every link of the path, atomically: either every
// link has the bandwidth and all are updated, or nothing changes.
func (t *Topology) Reserve(path []string, bw float64) error {
	links, err := t.pathLinks(path)
	if err != nil {
		return err
	}
	for i, a := range links {
		if a.Available() < bw {
			return fmt.Errorf("%w: %s->%s has %.0f of %.0f bps",
				ErrBandwidth, path[i], path[i+1], a.Available(), bw)
		}
	}
	for _, a := range links {
		a.ReservedBPS += bw
	}
	return nil
}

// Release returns bw to every link of the path, clamping at zero so a
// double release cannot create phantom capacity.
func (t *Topology) Release(path []string, bw float64) error {
	links, err := t.pathLinks(path)
	if err != nil {
		return err
	}
	for _, a := range links {
		a.ReservedBPS -= bw
		if a.ReservedBPS < 0 {
			a.ReservedBPS = 0
		}
	}
	return nil
}

func (t *Topology) pathLinks(path []string) ([]*LinkAttrs, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("%w: path %v too short", ErrNoLink, path)
	}
	links := make([]*LinkAttrs, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		a, ok := t.links[path[i]][path[i+1]]
		if !ok {
			return nil, fmt.Errorf("%w: %s->%s", ErrNoLink, path[i], path[i+1])
		}
		links = append(links, a)
	}
	return links, nil
}
