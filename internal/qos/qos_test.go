package qos

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

func pkt(t *testing.T, cos label.CoS) *packet.Packet {
	t.Helper()
	p := packet.New(1, 2, 64, nil)
	if err := p.Stack.Push(label.Entry{Label: 100, CoS: cos, TTL: 63}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassOf(t *testing.T) {
	if ClassOf(packet.New(1, 2, 64, nil)) != 0 {
		t.Error("unlabelled packet should be class 0")
	}
	if got := ClassOf(pkt(t, 5)); got != 5 {
		t.Errorf("class = %d, want 5", got)
	}
}

func TestFIFOOrderAndDrop(t *testing.T) {
	s := NewFIFO(2)
	a, b, c := pkt(t, 1), pkt(t, 7), pkt(t, 3)
	if !s.Enqueue(a) || !s.Enqueue(b) {
		t.Fatal("enqueue within capacity failed")
	}
	if s.Enqueue(c) {
		t.Error("enqueue beyond capacity accepted")
	}
	if s.Dropped() != 1 || s.Len() != 2 {
		t.Errorf("dropped=%d len=%d", s.Dropped(), s.Len())
	}
	// FIFO ignores class: a (class 1) leaves before b (class 7).
	if got, _ := s.Dequeue(); got != a {
		t.Error("FIFO violated arrival order")
	}
	if got, _ := s.Dequeue(); got != b {
		t.Error("FIFO violated arrival order")
	}
	if _, ok := s.Dequeue(); ok {
		t.Error("dequeue from empty succeeded")
	}
}

func TestPriorityServesHighClassFirst(t *testing.T) {
	s := NewPriority(10)
	low, mid, high := pkt(t, 0), pkt(t, 3), pkt(t, 7)
	s.Enqueue(low)
	s.Enqueue(mid)
	s.Enqueue(high)
	want := []*packet.Packet{high, mid, low}
	for i, w := range want {
		got, ok := s.Dequeue()
		if !ok || got != w {
			t.Fatalf("dequeue %d: got class %d, want class %d", i, ClassOf(got), ClassOf(w))
		}
	}
}

func TestPriorityPerClassCapacity(t *testing.T) {
	s := NewPriority(1)
	if !s.Enqueue(pkt(t, 2)) {
		t.Fatal("first class-2 packet rejected")
	}
	if s.Enqueue(pkt(t, 2)) {
		t.Error("second class-2 packet accepted beyond per-class capacity")
	}
	if !s.Enqueue(pkt(t, 3)) {
		t.Error("class-3 packet rejected though its queue is empty")
	}
}

func TestWRRProportions(t *testing.T) {
	var weights [NumClasses]int
	weights[1] = 1
	weights[5] = 3
	s := NewWRR(100, weights)
	for i := 0; i < 40; i++ {
		s.Enqueue(pkt(t, 1))
		s.Enqueue(pkt(t, 5))
	}
	// Over the first 24 dequeues both queues stay backlogged, so class 5
	// must get 3x the service of class 1.
	counts := map[label.CoS]int{}
	for i := 0; i < 24; i++ {
		p, ok := s.Dequeue()
		if !ok {
			t.Fatal("scheduler ran dry while backlogged")
		}
		counts[ClassOf(p)]++
	}
	if counts[5] != 18 || counts[1] != 6 {
		t.Errorf("service counts = %v, want class5:18 class1:6", counts)
	}
}

func TestWRRDrainsEverything(t *testing.T) {
	var weights [NumClasses]int
	weights[0] = 1
	weights[7] = 2
	s := NewWRR(100, weights)
	total := 0
	for cls := 0; cls < NumClasses; cls++ {
		for i := 0; i < 5; i++ {
			if s.Enqueue(pkt(t, label.CoS(cls))) {
				total++
			}
		}
	}
	got := 0
	for {
		if _, ok := s.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != total {
		t.Errorf("drained %d packets, enqueued %d", got, total)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after drain", s.Len())
	}
}

func TestWRRZeroWeightClassNotStarvedForever(t *testing.T) {
	var weights [NumClasses]int
	weights[7] = 1
	s := NewWRR(10, weights)
	s.Enqueue(pkt(t, 0)) // zero-weight class
	p, ok := s.Dequeue()
	if !ok || ClassOf(p) != 0 {
		t.Error("zero-weight class never served when alone")
	}
}

func TestSchedulerConstructorPanics(t *testing.T) {
	assertPanics(t, "fifo cap", func() { NewFIFO(0) })
	assertPanics(t, "prio cap", func() { NewPriority(-1) })
	assertPanics(t, "wrr cap", func() { NewWRR(0, [NumClasses]int{1}) })
	assertPanics(t, "wrr zero weights", func() { NewWRR(1, [NumClasses]int{}) })
	assertPanics(t, "wrr negative", func() { NewWRR(1, [NumClasses]int{0: -1, 1: 2}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestDequeueEmptySchedulers(t *testing.T) {
	for _, s := range []Scheduler{NewFIFO(1), NewPriority(1), NewWRR(1, [NumClasses]int{1})} {
		if _, ok := s.Dequeue(); ok {
			t.Errorf("%T: dequeue from empty succeeded", s)
		}
	}
}
