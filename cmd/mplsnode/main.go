// mplsnode runs ONE router of a declarative scenario as its own OS
// process, exchanging labeled packets — and the label signaling that
// installs them — with the scenario's other nodes over UDP sockets. It
// is the distributed counterpart of mplssim, which runs the whole
// topology in one simulator.
//
// Every process loads the same scenario file but builds only its own
// router, with sockets wired per the scenario's transport section. No
// process assumes another's label tables: LDP-style sessions form over
// the wire to the physical neighbours, LSPs whose ingress is this node
// are signalled hop by hop, and transit/egress label state arrives as
// LABEL MAPPING messages from peers. Kill a node mid-run and its
// neighbours' dead timers tear the crossing LSPs; an ingress resignals
// around the hole:
//
//	mplsnode -config scenario.json -node a &
//	mplsnode -config scenario.json -node b
//
// When the scenario's transport section maps this node to a management
// address (or -mgmt is set), the process also serves the mplsctl RPC
// surface: runtime LSP provisioning, infobase dumps, telemetry scrape,
// guard retune and config reload — see internal/mgmt.
//
// Traffic generators run only on the process that owns their source
// node; delivery statistics print on the process that owns the LSP
// egress. The run lasts -duration wall-clock seconds (default: the
// scenario duration plus half a second of drain slack); SIGINT or
// SIGTERM ends it early through the same graceful path — management
// plane drains first (answering a final node.status), then the network
// tears down.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/mgmt"
)

// drainWindow is how long the management listener keeps answering
// node.status after the run ends, so a fleet controller polling the
// node observes "draining" instead of a reset connection.
const drainWindow = 200 * time.Millisecond

func main() {
	log.SetFlags(0)
	log.SetPrefix("mplsnode: ")
	configPath := flag.String("config", "", "JSON scenario file with a transport section (required)")
	node := flag.String("node", "", "name of the router this process runs (required)")
	duration := flag.Float64("duration", 0, "wall-clock seconds to run (default scenario duration + 0.5s)")
	mgmtAddr := flag.String("mgmt", "", "management-plane TCP listen address (default: this node's entry in the scenario's transport mgmt map; \"none\" disables)")
	var ov config.Overrides
	flag.IntVar(&ov.Coalesce, "coalesce", 0, "packets per datagram on inter-process links (overrides scenario transport section)")
	flag.IntVar(&ov.SysBatch, "sysbatch", 0, "datagrams per send/receive syscall (overrides scenario transport section)")
	flag.IntVar(&ov.Shards, "shards", 0, "engine shard workers with batch egress pump, 1 = serial path (overrides scenario transport section)")
	flag.StringVar(&ov.Guard, "guard", "", `admission-guard overrides, "spoof_filter=true,ttl_min=2,rate_pps=1000,..." (merged over the scenario guard section)`)
	flag.Parse()
	if *configPath == "" || *node == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := ov.Validate(); err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := ov.Apply(scenario); err != nil {
		log.Fatal(err)
	}

	b, err := scenario.BuildNode(*node)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Net.Close()

	// Narrate the control plane as it converges; the hooks run in the
	// delivery path, under this node's network lock. BuildNode already
	// hooked OnSessionDown for flap damping — chain it, never replace.
	b.Net.Lock()
	prevUp, prevDown := b.Speaker.OnSessionUp, b.Speaker.OnSessionDown
	b.Speaker.OnSessionUp = func(peer string) {
		fmt.Printf("t=%.3fs session to %s up\n", b.Net.Sim.Now(), peer)
		if prevUp != nil {
			prevUp(peer)
		}
	}
	b.Speaker.OnSessionDown = func(peer string) {
		fmt.Printf("t=%.3fs session to %s DOWN\n", b.Net.Sim.Now(), peer)
		if prevDown != nil {
			prevDown(peer)
		}
	}
	b.Speaker.OnEstablished = func(id string, path []string) {
		fmt.Printf("t=%.3fs LSP %q established via %v\n", b.Net.Sim.Now(), id, path)
	}
	b.Net.Unlock()

	// Management plane: explicit flag wins, then the scenario's
	// transport mgmt map; "none" (or neither source) runs without one.
	addr := *mgmtAddr
	if addr == "" && scenario.Transport != nil {
		addr = scenario.Transport.Mgmt[*node]
	}
	var srv *mgmt.Server
	if addr != "" && addr != "none" {
		srv = mgmt.NewServer(b.Net)
		mgmt.NewNode(b, *configPath, &ov).Attach(srv)
		if err := srv.Serve(addr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %s management on %s\n", *node, srv.Addr())
	}

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("node %s caught %v, shutting down\n", *node, sig)
		close(stop)
	}()

	d := *duration
	if d <= 0 {
		d = scenario.DurationS + 0.5
	}
	fmt.Printf("node %s up (scenario %q, %.2fs, signaling to %v)\n",
		*node, scenario.Name, d, b.Speaker.Peers())
	b.Net.RunRealStop(d, stop)

	// Graceful shutdown ordering: the management plane goes first —
	// flip to draining (new RPCs get CodeDraining, node.status still
	// answers), hold the drain window open for controllers to read the
	// final status, then close the listener and wait out in-flight
	// requests. Only after that does the network tear down, so no RPC
	// ever observes a half-destroyed node.
	if srv != nil {
		srv.Drain()
		time.Sleep(drainWindow)
		srv.Close()
	}

	b.Net.Lock()
	defer b.Net.Unlock()
	fmt.Printf("node %s done: %v\n", *node, b.Net.Router(*node))
	for _, id := range b.Collector.FlowIDs() {
		fs := b.Collector.Flow(id)
		fmt.Printf("  flow %d: sent=%d delivered=%d loss=%.2f%% latency %s\n",
			id, fs.Sent.Events, fs.Delivered.Events, 100*fs.LossRate(),
			fs.Latency.Summary("ms", 1e3))
	}
	fmt.Printf("  %v\n", b.Net.Wire)
	fmt.Printf("  %v\n", b.Events)
	if b.Drops.Total() > 0 {
		fmt.Printf("  %v\n", b.Drops)
	}
	if b.Guard != nil {
		fmt.Printf("  %v\n", b.Guard)
	}
}
