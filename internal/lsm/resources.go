package lsm

import "embeddedmpls/internal/infobase"

// Resources estimates the FPGA resource footprint of the label stack
// modifier, reproducing the paper's closing claim that "the architecture
// presented here satisfies the space requirements of most reconfigurable
// computing environments". Counts follow the data path of Figures 12-13.
type Resources struct {
	// RAMBits is the block memory demand: per level, an index component
	// (32 bits at level 1, 20 at levels 2-3), a label component (20) and
	// an operation component (2), each EntriesPerLevel words deep.
	RAMBits int
	// RegisterBits counts the data path registers: the stack file,
	// old/new entry registers, result registers, TTL counter, address
	// counters and FSM state registers.
	RegisterBits int
	// Comparators lists the comparator widths (the paper's 32/20/10-bit
	// comparators).
	Comparators []int
}

// EstimateResources computes the footprint of the paper's configuration.
func EstimateResources() Resources {
	r := Resources{Comparators: []int{32, 20, 10}}

	// Information base memories.
	perLevelWidths := [infobase.NumLevels]int{
		32 + 20 + 2, // level 1: packet-identifier index
		20 + 20 + 2, // level 2
		20 + 20 + 2, // level 3
	}
	for _, w := range perLevelWidths {
		r.RAMBits += w * infobase.EntriesPerLevel
	}

	// Data path registers.
	r.RegisterBits += 32 * 3 // label stack entries (MaxDepth)
	r.RegisterBits += 2      // stack item count
	r.RegisterBits += 32     // old-entry register
	r.RegisterBits += 32     // new-entry register
	r.RegisterBits += 20 + 2 // label_out + operation_out
	r.RegisterBits += 32     // index_out
	r.RegisterBits += 8      // TTL counter
	// Address counters: one read index + per-level write counters.
	r.RegisterBits += indexBits * (1 + infobase.NumLevels)
	// Control: main(2) + label stack interface(4) + info base
	// interface(3) + search(3) state registers, done/discard flags,
	// reset sequencer(2).
	r.RegisterBits += 2 + 4 + 3 + 3 + 1 + 1 + 2

	return r
}

// Stratix EP1S40 block memory capacity in bits, from the device family
// datasheet — the part the paper targets.
const StratixEP1S40RAMBits = 3_423_744

// FitsStratixEP1S40 reports whether the estimated memory demand fits the
// paper's target device, and the fraction of its block RAM used.
func (r Resources) FitsStratixEP1S40() (bool, float64) {
	frac := float64(r.RAMBits) / float64(StratixEP1S40RAMBits)
	return r.RAMBits <= StratixEP1S40RAMBits, frac
}
