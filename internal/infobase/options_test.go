package infobase

import (
	"errors"
	"testing"

	"embeddedmpls/internal/label"
)

func TestNewDefaultsMatchPaperGeometry(t *testing.T) {
	for name, s := range map[string]Store{
		"linear":  New(),
		"indexed": New(WithIndex(true)),
	} {
		if s.Levels() != NumLevels || s.Capacity() != EntriesPerLevel {
			t.Errorf("%s: geometry = %d levels x %d, want %d x %d",
				name, s.Levels(), s.Capacity(), NumLevels, EntriesPerLevel)
		}
	}
	if _, ok := New().(*Behavioral); !ok {
		t.Error("New() should build the linear model by default")
	}
	if _, ok := New(WithIndex(true)).(*Indexed); !ok {
		t.Error("New(WithIndex(true)) should build the indexed store")
	}
}

func TestWithCapacity(t *testing.T) {
	for name, s := range map[string]Store{
		"linear":  New(WithCapacity(2)),
		"indexed": New(WithCapacity(2), WithIndex(true)),
	} {
		for i := 0; i < 2; i++ {
			if err := s.Write(Level1, Pair{Index: Key(i), NewLabel: 1, Op: label.OpPush}); err != nil {
				t.Fatalf("%s write %d: %v", name, i, err)
			}
		}
		if err := s.Write(Level1, Pair{Index: 9, NewLabel: 1, Op: label.OpPush}); !errors.Is(err, ErrLevelFull) {
			t.Errorf("%s: write past WithCapacity(2): %v", name, err)
		}
	}
}

func TestWithLevels(t *testing.T) {
	for name, s := range map[string]Store{
		"linear":  New(WithLevels(5)),
		"indexed": New(WithLevels(5), WithIndex(true)),
	} {
		if s.Levels() != 5 {
			t.Fatalf("%s: Levels() = %d, want 5", name, s.Levels())
		}
		// Level 5 exists now; level 6 still does not.
		if err := s.Write(Level(5), Pair{Index: 1, NewLabel: 2, Op: label.OpSwap}); err != nil {
			t.Errorf("%s: write to level 5: %v", name, err)
		}
		if err := s.Write(Level(6), Pair{Index: 1, NewLabel: 2, Op: label.OpSwap}); !errors.Is(err, ErrInvalidLevel) {
			t.Errorf("%s: write to level 6: %v", name, err)
		}
		if lbl, _, ok := s.Lookup(Level(5), 1); !ok || lbl != 2 {
			t.Errorf("%s: lookup on level 5 = (%d, %v)", name, lbl, ok)
		}
		// Deep levels are label-indexed: a 21-bit index must be rejected.
		if err := s.Write(Level(5), Pair{Index: 1 << 20, NewLabel: 2, Op: label.OpSwap}); !errors.Is(err, ErrInvalidPair) {
			t.Errorf("%s: oversized index on level 5: %v", name, err)
		}
	}
}

func TestOptionClamping(t *testing.T) {
	s := New(WithLevels(0), WithCapacity(-3))
	if s.Levels() != 1 || s.Capacity() != 1 {
		t.Errorf("clamped geometry = %d x %d, want 1 x 1", s.Levels(), s.Capacity())
	}
}
