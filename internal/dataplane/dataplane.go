// Package dataplane is a concurrent, batch-oriented MPLS forwarding
// engine: the software analogue of the paper's replicated label stack
// modifier fast path. Where package swmpls forwards one packet at a time
// on the caller's goroutine, this engine runs N shard workers, each
// draining a bounded ingress queue in batches, all reading one immutable
// forwarding-table snapshot published through an atomic pointer.
//
// The design splits the paper's hardware/software partition along the
// same line in pure software:
//
//   - Fast path (workers): hash the packet to a shard by its flow
//     identity (top label or packet identifier, plus the flow ID), apply
//     the RFC 3031 label program from the current table snapshot, update
//     worker-private counters. No locks, no shared mutable state.
//   - Slow path (control plane): LDP/TE updates clone the live table,
//     edit the clone, and publish it with one atomic store — RCU-style,
//     so a table write never stalls a single packet.
//
// Per-flow order is preserved because a flow's packets always hash to
// the same shard and each shard is serviced by exactly one worker over a
// FIFO-per-class queue.
package dataplane

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// DropPolicy selects what an over-full ingress queue does.
type DropPolicy int

const (
	// TailDrop rejects arrivals once the shard queue holds QueueCap
	// packets, regardless of class.
	TailDrop DropPolicy = iota
	// CoSAware gives each service class its own slice of the shard queue
	// (QueueCap/qos.NumClasses packets) and serves high classes first, so
	// a flood of best-effort traffic can neither crowd out nor delay
	// high-CoS packets. Reuses the qos strict-priority scheduler.
	CoSAware
)

// Engine is the concurrent forwarding engine. Create one with New, feed
// it with Submit, attach a batch egress sink with WithEgress/SetEgress,
// reprogram it at any time with Update or the ldp.Installer methods,
// and stop it with Close.
type Engine struct {
	table   atomic.Pointer[swmpls.Forwarder]
	updates atomic.Uint64 // published snapshots, for observability/tests

	// updateMu serialises writers (cloning is not atomic); readers never
	// take it. It also guards publishHook.
	updateMu    sync.Mutex
	publishHook func() error

	// stallHook, when set, is consulted by every worker at the top of
	// each batch — the fault layer's shard-stall injection point.
	stallHook atomic.Pointer[func(worker int)]

	shards  []*shard
	batch   int
	seed    maphash.Seed
	noCache bool

	// egress is the batch egress sink (atomic so SetEgress can attach
	// one after construction, before traffic); egressN/egressIvl are the
	// staging rings' size and idle-flush triggers.
	egress    atomic.Pointer[Egress]
	egressN   int
	egressIvl time.Duration

	// drops is the engine-wide per-reason drop accounting. It is
	// attached to the root forwarding table, and Clone carries the
	// pointer forward, so every published RCU snapshot counts into the
	// same counters; queue admission rejections land here too. The
	// pointer is atomic so SetTelemetry can swap in a shared sink
	// while workers run.
	drops atomic.Pointer[telemetry.DropCounters]
	node  string
	// tsink is the trace attachment, loaded once per worker batch so
	// SetTelemetry can retarget it without stopping the engine.
	tsink atomic.Pointer[traceSink]

	closed atomic.Bool
	wg     sync.WaitGroup
}

// traceSink pairs a trace ring with the node name events carry.
type traceSink struct {
	ring *telemetry.Ring
	node string
}

// New starts an engine with an empty forwarding table, configured by
// functional options (WithWorkers, WithBatch, WithEgress, ...).
func New(opts ...Option) *Engine {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	queueCap := cfg.queueCap
	if queueCap <= 0 {
		queueCap = 1024
	}
	batch := cfg.batch
	if batch <= 0 {
		batch = 64
	}
	node := cfg.node
	if node == "" {
		node = "dataplane"
	}
	egressN := cfg.egressN
	if egressN <= 0 {
		egressN = batch
	}
	egressIvl := cfg.egressIvl
	if egressIvl <= 0 {
		egressIvl = 200 * time.Microsecond
	}
	e := &Engine{
		shards:    make([]*shard, workers),
		batch:     batch,
		egressN:   egressN,
		egressIvl: egressIvl,
		seed:      maphash.MakeSeed(),
		node:      node,
		noCache:   cfg.disableCache,
	}
	if cfg.egress != nil {
		e.SetEgress(cfg.egress)
	}
	drops := new(telemetry.DropCounters)
	e.drops.Store(drops)
	e.tsink.Store(&traceSink{ring: cfg.trace, node: node})
	root := swmpls.New()
	if cfg.newTable != nil {
		root = cfg.newTable()
	}
	root.SetDropCounters(drops)
	e.table.Store(root)
	for i := range e.shards {
		e.shards[i] = newShard(cfg.policy, queueCap, drops)
	}
	e.wg.Add(workers)
	for i := range e.shards {
		go e.worker(i, e.shards[i])
	}
	return e
}

// SetPublishHook installs an injectable interceptor for table publishes:
// Update (and the Installer methods riding it) consults the hook after
// the edit is applied to the clone, and a non-nil error discards the
// snapshot, leaving the live table unchanged. The fault layer uses it to
// model a control-plane write failure; nil removes the hook.
func (e *Engine) SetPublishHook(h func() error) {
	e.updateMu.Lock()
	e.publishHook = h
	e.updateMu.Unlock()
}

// SetStallHook installs a per-batch worker interceptor, called with the
// worker's index before each batch is processed — the fault layer's
// shard-stall injection point (the hook itself sleeps). The hook runs on
// worker goroutines, so it must be safe for concurrent use; nil removes
// it.
func (e *Engine) SetStallHook(h func(worker int)) {
	if h == nil {
		e.stallHook.Store(nil)
		return
	}
	e.stallHook.Store(&h)
}

// Workers returns the number of shard workers.
func (e *Engine) Workers() int { return len(e.shards) }

// Drops exposes the engine's per-reason drop counters. They cover
// forwarding drops on every published table snapshot (including
// ProcessInline traffic) and queue admission rejections. Safe to read
// while the engine runs.
func (e *Engine) Drops() *telemetry.DropCounters { return e.drops.Load() }

// SetTelemetry attaches the unified observability sink (the
// plane.Plane hook). The trace ring and node name take effect at each
// worker's next batch. A non-nil s.Drops replaces the engine's drop
// counters — a snapshot carrying them is published, every shard's
// admission accounting is repointed, and prior counts stay in the old
// counters (still reachable via the Snapshot taken before the call).
// Call it before RegisterMetrics so the registry exports the live
// counters.
func (e *Engine) SetTelemetry(s telemetry.Sink) {
	node := s.Node
	if node == "" {
		node = e.node
	}
	e.tsink.Store(&traceSink{ring: s.Trace, node: node})
	if s.Drops == nil || s.Drops == e.drops.Load() {
		return
	}
	e.drops.Store(s.Drops)
	for _, sh := range e.shards {
		sh.setDrops(s.Drops)
	}
	_ = e.Update(func(f *swmpls.Forwarder) error {
		f.SetDropCounters(s.Drops)
		return nil
	})
}

// Updates returns how many table snapshots have been published.
func (e *Engine) Updates() uint64 { return e.updates.Load() }

// shardOf hashes a packet to its shard. The key is the packet's flow
// identity — top label for labelled packets, the packet identifier
// (destination) otherwise, plus source and flow ID — so every packet of
// a flow lands on the same shard while distinct flows on one LSP still
// spread across workers.
func (e *Engine) shardOf(p *packet.Packet) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	var key uint64
	if top, err := p.Stack.Top(); err == nil {
		key = uint64(top.Label)
	} else {
		key = uint64(p.Identifier()) | 1<<32
	}
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key >> (8 * i))
	}
	flow := uint64(p.Header.Src)<<16 | uint64(p.Header.FlowID)
	for i := 0; i < 8; i++ {
		buf[8+i] = byte(flow >> (8 * i))
	}
	h := maphash.Bytes(e.seed, buf[:])
	return e.shards[h%uint64(len(e.shards))]
}

// SubmitOpts selects how Submit admits a batch. The zero value is the
// default path: flow-hash distribution across shards, drop-policy
// admission (loss under overload, counted in the snapshot).
type SubmitOpts struct {
	// Wait blocks while a shard queue is full — backpressure instead of
	// loss. Packets are then refused only when the engine is closed.
	Wait bool
	// Pin bypasses the flow-hash distribution and offers the whole
	// batch to shard Shard — the ingestion path for transport-level
	// sharding, where an SO_REUSEPORT socket already partitioned
	// arrivals by flow and shard i's socket feeds shard i's worker with
	// no cross-shard handoff. An out-of-range Shard rejects the batch.
	Pin   bool
	Shard int
}

// Submit offers a batch of packets to the engine — the single ingress
// entry point; a one-packet submit is just a batch of one. Packets are
// grouped by shard so each shard's lock is taken once per group rather
// than once per packet. It returns how many packets were accepted;
// rejections (drop policy, closed engine, bad pin) are counted in the
// snapshot where applicable.
func (e *Engine) Submit(ps []*packet.Packet, opts SubmitOpts) int {
	if e.closed.Load() || len(ps) == 0 {
		return 0
	}
	if opts.Pin {
		if opts.Shard < 0 || opts.Shard >= len(e.shards) {
			return 0
		}
		return e.shards[opts.Shard].enqueueBatch(ps, opts.Wait)
	}
	if len(ps) == 1 {
		if e.shardOf(ps[0]).enqueue(ps[0], opts.Wait) {
			return 1
		}
		return 0
	}
	groups := make(map[*shard][]*packet.Packet, len(e.shards))
	for _, p := range ps {
		s := e.shardOf(p)
		groups[s] = append(groups[s], p)
	}
	accepted := 0
	for s, group := range groups {
		accepted += s.enqueueBatch(group, opts.Wait)
	}
	return accepted
}

// SetEgress attaches the batch egress sink (replacing any current one);
// nil detaches it, after which processed packets are discarded once
// accounted. Workers observe the change at their next batch. Attach the
// sink before traffic flows when packets must not be lost to the
// transition.
func (e *Engine) SetEgress(sink Egress) {
	if sink == nil {
		e.egress.Store(nil)
		return
	}
	e.egress.Store(&sink)
}

// loadEgress returns the current egress sink, or nil.
func (e *Engine) loadEgress() Egress {
	if p := e.egress.Load(); p != nil {
		return *p
	}
	return nil
}

// Update publishes a new forwarding-table snapshot: the current table is
// cloned, apply edits the clone, and the result is installed with one
// atomic store. Workers observe either the old or the new table, never a
// partially edited one, and are never blocked by the update. If apply
// fails the snapshot is discarded and the live table is unchanged.
func (e *Engine) Update(apply func(*swmpls.Forwarder) error) error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	next := e.table.Load().Clone()
	if err := apply(next); err != nil {
		return err
	}
	if e.publishHook != nil {
		if err := e.publishHook(); err != nil {
			return err
		}
	}
	e.table.Store(next)
	e.updates.Add(1)
	return nil
}

// InstallFEC, InstallILM, RemoveILM and RemoveFEC implement the
// ldp.Installer contract, so an LDP manager (or a router wrapper) can
// program the engine exactly like the serial data planes. Each call
// publishes one snapshot; batch related changes through Update to
// publish them atomically together.

// InstallFEC implements ldp.Installer.
func (e *Engine) InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error {
	return e.Update(func(f *swmpls.Forwarder) error { return f.InstallFEC(dst, prefixLen, n) })
}

// InstallILM implements ldp.Installer.
func (e *Engine) InstallILM(in label.Label, n swmpls.NHLFE) error {
	return e.Update(func(f *swmpls.Forwarder) error { return f.InstallILM(in, n) })
}

// RemoveILM implements ldp.Installer.
func (e *Engine) RemoveILM(in label.Label) {
	_ = e.Update(func(f *swmpls.Forwarder) error { f.RemoveILM(in); return nil })
}

// RemoveFEC implements ldp.Installer.
func (e *Engine) RemoveFEC(dst packet.Addr, prefixLen int) {
	_ = e.Update(func(f *swmpls.Forwarder) error { f.RemoveFEC(dst, prefixLen); return nil })
}

// TableSnapshot returns the engine's current forwarding-table
// snapshot. The snapshot is immutable once published (updates clone
// and replace it), so callers may read it — including the dump
// methods ILMEntries/FECEntries — without any synchronisation against
// forwarding or table programming.
func (e *Engine) TableSnapshot() *swmpls.Forwarder {
	return e.table.Load()
}

// forward applies the full label program to one packet against a table
// snapshot. Like the router's engine loop, one packet may need several
// passes (a tunnel tail pops, then re-examines the inner label);
// label.MaxDepth+1 bounds the passes.
func forward(tbl *swmpls.Forwarder, p *packet.Packet) swmpls.Result {
	var res swmpls.Result
	for pass := 0; pass < label.MaxDepth+1; pass++ {
		res = tbl.Forward(p)
		if res.Action == swmpls.Forward && res.NextHop == "" && p.Labelled() {
			continue
		}
		break
	}
	return res
}

// ProcessInline forwards one packet synchronously on the caller's
// goroutine against the current snapshot — the same lock-free table read
// the workers perform, without queueing. The discrete-event router uses
// it so simulated nodes get RCU table semantics while the simulator
// stays single-threaded. Inline packets bypass the engine's queues and
// statistics.
func (e *Engine) ProcessInline(p *packet.Packet) swmpls.Result {
	return forward(e.table.Load(), p)
}

// ProcessPacket implements the unified plane contract (plane.Plane):
// one table pass against the current snapshot on the caller's
// goroutine, the caller driving any multi-pass re-examination.
// ProcessInline runs the full program in one call instead.
func (e *Engine) ProcessPacket(p *packet.Packet) swmpls.Result {
	depth := p.Stack.Depth()
	var inLabel uint32
	if top, err := p.Stack.Top(); err == nil {
		inLabel = uint32(top.Label)
	}
	res := e.table.Load().Forward(p)
	if ts := e.tsink.Load(); ts.ring != nil {
		ts.traceResult(depth, inLabel, res)
	}
	return res
}

// worker drains one shard until the engine closes and the queue empties.
// The table snapshot, trace sink and egress sink are loaded once per
// batch — the batching amortises the atomic loads — and the
// worker-private flow cache is revalidated against the snapshot at the
// same point. Processed packets stage into the worker's egress rings;
// while anything is staged the worker polls the queue instead of
// parking on it, so an idle interval flushes the rings (trigger=timer)
// and a closed, drained queue flushes them one last time
// (trigger=close) before the worker exits — which is ordered before
// wg.Done, so Close returns only after every staged packet reached the
// sink.
func (e *Engine) worker(id int, s *shard) {
	defer e.wg.Done()
	batch := make([]*packet.Packet, 0, e.batch)
	var fc *flowCache
	if !e.noCache {
		fc = newFlowCache()
	}
	var acc batchAcc
	st := newEgressStage(s, e.egressN)
	for {
		sink := e.loadEgress()
		if st.pending == 0 {
			// Nothing staged: park on the queue like any blocking
			// consumer. A nil return means closed and drained.
			batch = s.drain(batch[:0], e.batch)
			if batch == nil {
				return
			}
		} else {
			var stop bool
			batch, stop = s.tryDrain(batch[:0], e.batch)
			if stop {
				st.flushAll(sink, egressTriggerClose)
				return
			}
			if len(batch) == 0 {
				// Queue idle with packets staged: give arrivals one
				// flush interval to top the rings up, then flush what
				// we have so no packet waits longer than the interval.
				// The wait is close-aware, so a generous interval does
				// not hold Close hostage.
				s.waitArrival(e.egressIvl)
				batch, stop = s.tryDrain(batch[:0], e.batch)
				if stop {
					st.flushAll(sink, egressTriggerClose)
					return
				}
				if len(batch) == 0 {
					st.flushAll(sink, egressTriggerTimer)
					continue
				}
			}
		}
		if h := e.stallHook.Load(); h != nil {
			(*h)(id)
		}
		tbl := e.table.Load()
		ts := e.tsink.Load()
		if fc != nil {
			fc.sync(tbl)
		}
		acc.reset()
		start := time.Now()
		for _, p := range batch {
			depth := p.Stack.Depth()
			var inLabel uint32
			if top, err := p.Stack.Top(); err == nil {
				inLabel = uint32(top.Label)
			}
			s.depth.Observe(float64(depth))
			var res swmpls.Result
			if fc != nil {
				res = fc.forward(tbl, p)
			} else {
				res = forward(tbl, p)
			}
			acc.record(p, res)
			if ts.ring != nil {
				ts.traceResult(depth, inLabel, res)
			}
			if sink != nil {
				st.stage(sink, p, res)
			}
		}
		acc.busy = time.Since(start).Seconds()
		if fc != nil {
			acc.cacheHits, acc.cacheMisses = fc.take()
		}
		s.lat.Observe(acc.busy)
		s.fold(&acc)
	}
}

// traceResult records one packet's outcome in the trace ring: the
// label operation that was applied, or the discard with its mapped
// reason. The event's level is the stack depth on arrival and its
// label the incoming top label (zero for unlabelled packets).
func (ts *traceSink) traceResult(depth int, inLabel uint32, res swmpls.Result) {
	if res.Action == swmpls.Drop {
		if r, ok := res.Drop.Telemetry(); ok {
			ts.ring.RecordDiscard(ts.node, uint8(depth), inLabel, r)
		}
		return
	}
	if res.Op != label.OpNone {
		// telemetry.TraceOp values mirror label.Op numerically.
		ts.ring.RecordOp(ts.node, telemetry.TraceOp(res.Op), uint8(depth), inLabel)
	}
}

// Close stops the engine: no new packets are accepted, workers drain
// what is already queued, and Close returns when they have exited. The
// snapshot is final afterwards.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		e.wg.Wait()
		return
	}
	for _, s := range e.shards {
		s.close()
	}
	e.wg.Wait()
}

// Snapshot aggregates every shard's accounting.
type Snapshot struct {
	// Submitted counts packets accepted into the queues; QueueDropped
	// counts packets the admission policy rejected. Submitted + QueueDropped
	// is everything offered.
	Submitted    stats.Counter
	QueueDropped uint64
	// Forwarded/Delivered/Dropped classify processed packets by the
	// forwarding decision; DropsByReason breaks the forwarding drops
	// down.
	Forwarded     stats.Counter
	Delivered     stats.Counter
	Dropped       stats.Counter
	DropsByReason map[swmpls.DropReason]uint64
	// BatchTime samples seconds of processing per worker batch, merged
	// across workers. WorkerBusy is each worker's total processing time
	// in seconds — max(WorkerBusy) is the engine's critical path, which
	// is how the benchmark derives capacity on core-limited hosts.
	BatchTime  stats.Sample
	WorkerBusy []float64
	// CacheHits/CacheMisses count flow-cache outcomes across workers:
	// hits skipped the table search entirely, misses resolved through
	// the table and seeded the cache. Drops are neither (negative
	// results are not cached). Both stay zero with the cache disabled.
	CacheHits   uint64
	CacheMisses uint64
	// Reasons is the unified per-reason drop accounting: forwarding
	// drops across every table snapshot plus queue admission
	// rejections, indexed by telemetry.Reason.
	Reasons [telemetry.NumReasons]uint64
	// Latency and StackDepth are the per-shard histograms merged:
	// seconds per worker batch, and label stack depth per packet.
	Latency    telemetry.HistSnapshot
	StackDepth telemetry.HistSnapshot
	// EgressFlushSize/Timer/Close count egress staging-ring flushes by
	// trigger: the ring reached the flush size, the flush interval
	// expired on an idle queue, or the engine closed and drained.
	// EgressBatch is the flushed-batch occupancy histogram — together
	// they make the egress amortisation observable.
	EgressFlushSize  uint64
	EgressFlushTimer uint64
	EgressFlushClose uint64
	EgressBatch      telemetry.HistSnapshot
}

// Processed returns how many packets the workers have finished.
func (s *Snapshot) Processed() uint64 {
	return s.Forwarded.Events + s.Delivered.Events + s.Dropped.Events
}

// Snapshot merges the per-worker statistics into one view. It is safe to
// call while the engine runs (each shard is locked briefly); for exact
// totals call it after Close.
func (e *Engine) Snapshot() Snapshot {
	out := Snapshot{
		DropsByReason: make(map[swmpls.DropReason]uint64),
		WorkerBusy:    make([]float64, len(e.shards)),
	}
	for i, s := range e.shards {
		s.mu.Lock()
		out.Submitted.Merge(s.agg.submitted)
		out.QueueDropped += s.sched.Dropped()
		out.Forwarded.Merge(s.agg.forwarded)
		out.Delivered.Merge(s.agg.delivered)
		out.Dropped.Merge(s.agg.dropped)
		for r, n := range s.agg.dropsByReason {
			if n > 0 {
				out.DropsByReason[swmpls.DropReason(r)] += n
			}
		}
		out.BatchTime.Merge(&s.agg.batchTime)
		out.WorkerBusy[i] = s.agg.busy
		out.CacheHits += s.agg.cacheHits
		out.CacheMisses += s.agg.cacheMisses
		s.mu.Unlock()
		out.EgressFlushSize += s.egFlush[egressTriggerSize].Load()
		out.EgressFlushTimer += s.egFlush[egressTriggerTimer].Load()
		out.EgressFlushClose += s.egFlush[egressTriggerClose].Load()
	}
	out.Reasons = e.drops.Load().Snapshot()
	out.Latency = e.latencyHist().Snapshot()
	out.StackDepth = e.depthHist().Snapshot()
	out.EgressBatch = e.egressHist().Snapshot()
	return out
}

// latencyHist merges the shards' batch-time histograms.
func (e *Engine) latencyHist() *telemetry.Histogram {
	m := telemetry.NewHistogram(telemetry.LatencyBounds()...)
	for _, s := range e.shards {
		m.Merge(s.lat)
	}
	return m
}

// depthHist merges the shards' stack-depth histograms.
func (e *Engine) depthHist() *telemetry.Histogram {
	m := telemetry.NewHistogram(telemetry.DepthBounds()...)
	for _, s := range e.shards {
		m.Merge(s.depth)
	}
	return m
}

// egressHist merges the shards' egress batch-size histograms.
func (e *Engine) egressHist() *telemetry.Histogram {
	m := telemetry.NewHistogram(telemetry.BatchBounds()...)
	for _, s := range e.shards {
		m.Merge(s.egBatch)
	}
	return m
}

// egressFlushes sums one flush-trigger counter across shards.
func (e *Engine) egressFlushes(trigger int) uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.egFlush[trigger].Load()
	}
	return n
}

// queueLen sums the instantaneous shard queue depths.
func (e *Engine) queueLen() float64 {
	var n int
	for _, s := range e.shards {
		s.mu.Lock()
		n += s.sched.Len()
		s.mu.Unlock()
	}
	return float64(n)
}

// RegisterMetrics wires the engine into a telemetry registry. All
// values are read live at scrape time, so one registration serves the
// engine's whole lifetime — including across table updates. The given
// labels are attached to every series; pass nil to label the series
// with the engine's node name only.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, labels telemetry.Labels) {
	ls := telemetry.Labels{"node": e.node}
	for k, v := range labels {
		ls[k] = v
	}
	counter := func(c *stats.Counter) uint64 { return c.Events }
	reg.Counter("mpls_dataplane_submitted_packets_total",
		"Packets accepted into shard ingress queues.", ls,
		func() uint64 { s := e.Snapshot(); return counter(&s.Submitted) })
	reg.Counter("mpls_dataplane_forwarded_packets_total",
		"Packets forwarded to a next hop.", ls,
		func() uint64 { s := e.Snapshot(); return counter(&s.Forwarded) })
	reg.Counter("mpls_dataplane_delivered_packets_total",
		"Packets delivered to the IP side after the final pop.", ls,
		func() uint64 { s := e.Snapshot(); return counter(&s.Delivered) })
	reg.Counter("mpls_dataplane_table_updates_total",
		"Published forwarding-table snapshots.", ls, e.Updates)
	reg.Gauge("mpls_dataplane_queue_depth",
		"Instantaneous packets waiting across shard queues.", ls, e.queueLen)
	reg.Counter("mpls_dataplane_flowcache_hits_total",
		"Packets resolved from the per-worker flow cache.", ls,
		func() uint64 { return e.Snapshot().CacheHits })
	reg.Counter("mpls_dataplane_flowcache_misses_total",
		"Packets that took the full table search and seeded the flow cache.", ls,
		func() uint64 { return e.Snapshot().CacheMisses })
	reg.Drops("mpls_dataplane_drops_total",
		"Dropped packets by reason (forwarding and queue admission).", ls, e.drops.Load())
	reg.Histogram("mpls_dataplane_batch_seconds",
		"Seconds of forwarding work per worker batch.", ls,
		func() telemetry.HistSnapshot { return e.latencyHist().Snapshot() })
	reg.Histogram("mpls_dataplane_stack_depth",
		"Label stack depth of packets entering the forwarding step.", ls,
		func() telemetry.HistSnapshot { return e.depthHist().Snapshot() })
	for trigger, name := range map[int]string{
		egressTriggerSize:  "size",
		egressTriggerTimer: "timer",
		egressTriggerClose: "close",
	} {
		tls := telemetry.Labels{"trigger": name}
		for k, v := range ls {
			tls[k] = v
		}
		trigger := trigger
		reg.Counter("mpls_egress_flush_total",
			"Egress staging-ring flushes by trigger (size, timer, close).", tls,
			func() uint64 { return e.egressFlushes(trigger) })
	}
	reg.Histogram("mpls_egress_batch_packets",
		"Packets per egress flush handed to the batch sink.", ls,
		func() telemetry.HistSnapshot { return e.egressHist().Snapshot() })
}

// String summarises the snapshot for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("dataplane{submitted=%d qdrop=%d fwd=%d dlv=%d drop=%d}",
		s.Submitted.Events, s.QueueDropped, s.Forwarded.Events, s.Delivered.Events, s.Dropped.Events)
}
