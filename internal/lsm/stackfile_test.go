package lsm

import (
	"testing"
	"testing/quick"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
)

type stackBench struct {
	sim                 *rtl.Simulator
	clr, push, pop, set *rtl.Signal
	din, ttl            *rtl.Signal
	sf                  *StackFile
}

func newStackBench() *stackBench {
	sim := rtl.New()
	b := &stackBench{
		sim:  sim,
		clr:  sim.Signal("clr", 1),
		push: sim.Signal("push", 1),
		pop:  sim.Signal("pop", 1),
		set:  sim.Signal("set", 1),
		din:  sim.Signal("din", 32),
		ttl:  sim.Signal("ttl", 8),
	}
	b.sf = NewStackFile(sim, "s_", b.clr, b.push, b.pop, b.set, b.din, b.ttl)
	return b
}

func (b *stackBench) pushEntry(e label.Entry) {
	b.din.Set(uint64(e.MustPack()))
	b.push.SetBool(true)
	b.sim.Step()
	b.push.SetBool(false)
}

func TestStackFilePushPopBottomBit(t *testing.T) {
	b := newStackBench()
	b.pushEntry(label.Entry{Label: 1, TTL: 9, Bottom: false}) // S forced on
	b.pushEntry(label.Entry{Label: 2, TTL: 9, Bottom: true})  // S forced off
	if b.sf.Size.Get() != 2 {
		t.Fatalf("size = %d, want 2", b.sf.Size.Get())
	}
	st := b.sf.Snapshot()
	if !st.Consistent() {
		t.Fatalf("S bits wrong: %v", st)
	}
	top := label.Unpack(uint32(b.sf.Top.Get()))
	if top.Label != 2 || top.Bottom {
		t.Errorf("top = %v, want lbl=2 S=0", top)
	}

	b.pop.SetBool(true)
	b.sim.Step()
	b.pop.SetBool(false)
	top = label.Unpack(uint32(b.sf.Top.Get()))
	if b.sf.Size.Get() != 1 || top.Label != 1 || !top.Bottom {
		t.Errorf("after pop: size=%d top=%v", b.sf.Size.Get(), top)
	}
}

func TestStackFileOverflowAndUnderflowIgnored(t *testing.T) {
	b := newStackBench()
	for i := 0; i < label.MaxDepth+2; i++ {
		b.pushEntry(label.Entry{Label: label.Label(i + 1), TTL: 1})
	}
	if b.sf.Size.Get() != label.MaxDepth {
		t.Errorf("size = %d, want clamp at %d", b.sf.Size.Get(), label.MaxDepth)
	}
	b.pop.SetBool(true)
	b.sim.Run(label.MaxDepth + 3)
	b.pop.SetBool(false)
	if b.sf.Size.Get() != 0 || b.sf.Top.Get() != 0 {
		t.Errorf("after draining: size=%d top=%#x, want 0/0", b.sf.Size.Get(), b.sf.Top.Get())
	}
}

func TestStackFileSetTTLOnTop(t *testing.T) {
	b := newStackBench()
	b.pushEntry(label.Entry{Label: 7, CoS: 2, TTL: 100})
	b.ttl.Set(42)
	b.set.SetBool(true)
	b.sim.Step()
	b.set.SetBool(false)
	top := label.Unpack(uint32(b.sf.Top.Get()))
	if top.TTL != 42 || top.Label != 7 || top.CoS != 2 {
		t.Errorf("top = %v, want ttl=42 with other fields intact", top)
	}
	// SetTTL on an empty stack must be a no-op.
	b.clr.SetBool(true)
	b.sim.Step()
	b.clr.SetBool(false)
	b.set.SetBool(true)
	b.sim.Step()
	b.set.SetBool(false)
	if b.sf.Size.Get() != 0 {
		t.Error("SetTTL resurrected an empty stack")
	}
}

func TestStackFileClearDominates(t *testing.T) {
	b := newStackBench()
	b.pushEntry(label.Entry{Label: 1, TTL: 1})
	b.din.Set(uint64(label.Entry{Label: 9, TTL: 9}.MustPack()))
	b.clr.SetBool(true)
	b.push.SetBool(true) // clear must win over push
	b.sim.Step()
	b.clr.SetBool(false)
	b.push.SetBool(false)
	if b.sf.Size.Get() != 0 {
		t.Error("clear did not dominate a simultaneous push")
	}
}

func TestStackFilePopPushSameEdgeIsReplace(t *testing.T) {
	b := newStackBench()
	b.pushEntry(label.Entry{Label: 1, TTL: 5})
	b.pushEntry(label.Entry{Label: 2, TTL: 5})
	b.din.Set(uint64(label.Entry{Label: 99, TTL: 4}.MustPack()))
	b.pop.SetBool(true)
	b.push.SetBool(true)
	b.sim.Step()
	b.pop.SetBool(false)
	b.push.SetBool(false)
	top := label.Unpack(uint32(b.sf.Top.Get()))
	if b.sf.Size.Get() != 2 || top.Label != 99 {
		t.Errorf("replace: size=%d top=%v, want depth 2 top lbl=99", b.sf.Size.Get(), top)
	}
}

// TestCostModelProperties uses testing/quick to pin algebraic properties
// of the cycle cost model.
func TestCostModelProperties(t *testing.T) {
	// Search cost is affine with slope 3 and intercept 5, and never
	// negative even for nonsense positions.
	affine := func(pos uint16) bool {
		p := int(pos % 2048)
		return SearchCycles(p) == 3*p+5 && SearchCycles(p+1)-SearchCycles(p) == 3
	}
	if err := quick.Check(affine, nil); err != nil {
		t.Error(err)
	}
	if SearchCycles(-5) != 5 {
		t.Error("negative positions must clamp to the overhead cost")
	}
	// The swap update is always search + 6, dominating pop by 1 and
	// dominated by push by 1.
	tails := func(pos uint16) bool {
		p := int(pos % 2048)
		swap := UpdateCycles(UpdateResult{Op: label.OpSwap, SearchPos: p})
		pop := UpdateCycles(UpdateResult{Op: label.OpPop, SearchPos: p})
		push := UpdateCycles(UpdateResult{Op: label.OpPush, SearchPos: p})
		return swap == SearchCycles(p)+6 && pop == swap-1 && push == swap+1
	}
	if err := quick.Check(tails, nil); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseFormula(t *testing.T) {
	// 3 + 9 + 3n + (3n+5) + 6 for n pair writes.
	for _, n := range []int{0, 1, 10, 1024} {
		want := 3 + 9 + 3*n + (3*n + 5) + 6
		if got := WorstCaseScenarioCycles(n); got != want {
			t.Errorf("WorstCaseScenarioCycles(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestClockConversion(t *testing.T) {
	if s := DefaultClock.Seconds(50_000_000); s != 1.0 {
		t.Errorf("50M cycles at 50 MHz = %v s, want 1", s)
	}
	if ns := DefaultClock.Nanos(1); ns != 20 {
		t.Errorf("1 cycle at 50 MHz = %v ns, want 20", ns)
	}
	// The paper's worst case: 6167 cycles ~ 0.12334 ms.
	ms := DefaultClock.Seconds(6167) * 1e3
	if ms < 0.1233 || ms > 0.1234 {
		t.Errorf("6167 cycles = %v ms, want ~0.1233", ms)
	}
}
