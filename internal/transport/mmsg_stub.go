//go:build !linux || !(amd64 || arm64)

package transport

import "syscall"

// Fallback for platforms without the batched syscall path: the link and
// receiver loop over single-datagram writes and reads instead (one
// syscall per datagram), so the frame-coalescing half of the batched
// wire path still amortises syscalls — just per frame rather than per
// syscall batch. None of these methods are reachable when haveMmsg is
// false; they exist to keep the callers platform-agnostic.

const haveMmsg = false

type mmsgIO struct{}

func newMmsgIO(int) *mmsgIO { return &mmsgIO{} }

func (io *mmsgIO) load([][]byte) {}

func (io *mmsgIO) sendStep(uintptr) (int, syscall.Errno) {
	panic("transport: sendmmsg unavailable on this platform")
}

func (io *mmsgIO) recvStep(uintptr) (int, syscall.Errno) {
	panic("transport: recvmmsg unavailable on this platform")
}

func (io *mmsgIO) size(int) int { return 0 }
