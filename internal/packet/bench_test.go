package packet

import (
	"testing"

	"embeddedmpls/internal/label"
)

func benchMarshalPacket(b *testing.B, labels int) {
	p := New(AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2), 64, make([]byte, 512))
	for i := 0; i < labels; i++ {
		if err := p.Stack.Push(label.Entry{Label: label.Label(100 + i), TTL: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := p.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalUnlabelled(b *testing.B) { benchMarshalPacket(b, 0) }
func BenchmarkMarshalOneLabel(b *testing.B)   { benchMarshalPacket(b, 1) }
func BenchmarkMarshalFullStack(b *testing.B)  { benchMarshalPacket(b, label.MaxDepth) }

func BenchmarkClone(b *testing.B) {
	p := New(1, 2, 64, make([]byte, 512))
	_ = p.Stack.Push(label.Entry{Label: 100, TTL: 64})
	for i := 0; i < b.N; i++ {
		_ = p.Clone()
	}
}
