// Quickstart: drive the cycle-accurate label stack modifier directly —
// write label pairs into the information base, push a stack, run an
// update, and see the exact clock-cycle costs of Table 6.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
)

func main() {
	// A label switch router's modifier, cycle-accurate RTL under the hood.
	b := lsm.NewBench(lsm.LSR)

	// Reset the architecture (3 cycles).
	cycles, err := b.ResetOp()
	check(err)
	fmt.Printf("reset:              %2d cycles\n", cycles)

	// The routing software installs a rule: incoming label 42 at stack
	// depth 1 is swapped to 777.
	cycles, err = b.WritePair(infobase.Level2, infobase.Pair{
		Index: 42, NewLabel: 777, Op: label.OpSwap,
	})
	check(err)
	fmt.Printf("write label pair:   %2d cycles\n", cycles)

	// A packet arrives carrying label 42 (the ingress packet processing
	// interface loads its stack into the modifier).
	cycles, err = b.UserPush(label.Entry{Label: 42, CoS: 5, TTL: 64})
	check(err)
	fmt.Printf("load stack entry:   %2d cycles\n", cycles)

	// The update: search the information base, decrement the TTL, swap.
	res, cycles, err := b.Update(lsm.UpdateRequest{})
	check(err)
	fmt.Printf("update (swap):      %2d cycles  = search 3*%d+5 plus swap tail %d\n",
		cycles, res.SearchPos, lsm.CyclesSwapFromIB)

	top, err := b.StackSnapshot().Top()
	check(err)
	fmt.Printf("\noutgoing top entry: %v\n", top)
	fmt.Printf("wall time at 50 MHz: %.0f ns\n", lsm.DefaultClock.Nanos(cycles))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
