package telemetry

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.RecordOp("n", TraceSwap, 2, uint32(100+i))
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.Label != uint32(100+wantSeq) {
			t.Errorf("event %d = %+v, want seq %d label %d", i, ev, wantSeq, 100+wantSeq)
		}
	}
}

func TestRingDump(t *testing.T) {
	r := NewRing(8)
	r.RecordOp("lsr1", TracePush, 0, 42)
	r.RecordDiscard("lsr2", 1, 99, ReasonTTLExpired)
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 events retained of 2 recorded",
		"seq=0 node=lsr1 op=push level=0 label=42",
		"seq=1 node=lsr2 op=discard reason=ttl-expired level=1 label=99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestRingCodecRoundTrip(t *testing.T) {
	r := NewRing(3)
	r.RecordOp("a", TracePush, 0, 16)
	r.RecordOp("b", TraceSwap, 1, 1<<20-1)
	r.RecordDiscard("c", 3, 0, ReasonInconsistentOp)
	r.RecordOp("d", TracePop, 2, 7) // forces wraparound past "a"
	want := r.Events()

	got, err := DecodeEvents(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsCorruptRecords(t *testing.T) {
	enc := AppendEncoded(nil, TraceEvent{Seq: 5, Node: "node", Op: TraceSwap, Level: 2, Label: 300})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeEvents(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[1] = byte(NumTraceOps) // seq is one byte here, op follows
	if _, err := DecodeEvents(bad); err == nil {
		t.Error("invalid op accepted")
	}
	if evs, err := DecodeEvents(nil); err != nil || len(evs) != 0 {
		t.Errorf("empty input: %v, %v", evs, err)
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	const goroutines, per = 4, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.RecordOp("w", TracePop, 1, uint32(i))
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Total() != goroutines*per {
		t.Errorf("total = %d, want %d", r.Total(), goroutines*per)
	}
	// Sequence numbers of retained events are unique and increasing.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("retained events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
