package qos

import (
	"testing"

	"embeddedmpls/internal/label"
)

func defaultProfile() REDParams { return REDParams{MinTh: 5, MaxTh: 15, MaxP: 0.5} }

func TestREDParamsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    REDParams
		ok   bool
	}{
		{"good", REDParams{MinTh: 5, MaxTh: 15, MaxP: 0.1}, true},
		{"min equals max", REDParams{MinTh: 5, MaxTh: 5, MaxP: 0.1}, false},
		{"negative min", REDParams{MinTh: -1, MaxTh: 5, MaxP: 0.1}, false},
		{"zero prob", REDParams{MinTh: 1, MaxTh: 5, MaxP: 0}, false},
		{"prob over 1", REDParams{MinTh: 1, MaxTh: 5, MaxP: 1.5}, false},
	}
	for _, c := range cases {
		if err := c.p.Valid(); (err == nil) != c.ok {
			t.Errorf("%s: Valid() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestREDAcceptsEverythingWhenIdle(t *testing.T) {
	s := NewRED(100, defaultProfile(), 1)
	// Alternate enqueue/dequeue so the average stays near zero.
	for i := 0; i < 50; i++ {
		if !s.Enqueue(pkt(t, 0)) {
			t.Fatalf("drop at iteration %d with an empty queue", i)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	if s.Dropped() != 0 {
		t.Errorf("dropped %d while idle", s.Dropped())
	}
}

func TestREDDropsUnderSustainedBacklog(t *testing.T) {
	s := NewRED(100, defaultProfile(), 1)
	// Fill without draining: the average climbs past MaxTh and drops
	// must start well before the hard capacity.
	accepted := 0
	for i := 0; i < 100; i++ {
		if s.Enqueue(pkt(t, 0)) {
			accepted++
		}
	}
	if s.Dropped() == 0 {
		t.Fatal("no early drops under sustained backlog")
	}
	if accepted >= 100 {
		t.Fatal("everything accepted")
	}
	if s.Len() != accepted {
		t.Errorf("len=%d accepted=%d", s.Len(), accepted)
	}
}

func TestREDHardCap(t *testing.T) {
	// MaxTh far above capacity: only the tail-drop rule applies.
	s := NewRED(10, REDParams{MinTh: 1000, MaxTh: 2000, MaxP: 0.5}, 1)
	for i := 0; i < 20; i++ {
		s.Enqueue(pkt(t, 0))
	}
	if s.Len() != 10 {
		t.Errorf("len=%d, want hard cap 10", s.Len())
	}
	if s.Dropped() != 10 {
		t.Errorf("dropped=%d, want 10", s.Dropped())
	}
}

func TestWREDProtectsHighClass(t *testing.T) {
	// Low class: aggressive profile. High class: tolerant profile.
	var profiles [NumClasses]REDParams
	for i := range profiles {
		profiles[i] = REDParams{MinTh: 2, MaxTh: 8, MaxP: 1}
	}
	profiles[7] = REDParams{MinTh: 40, MaxTh: 80, MaxP: 0.1}
	s := NewWRED(100, profiles, 42)

	lowDrops, highDrops := 0, 0
	for i := 0; i < 40; i++ {
		if !s.Enqueue(pkt(t, 0)) {
			lowDrops++
		}
		if !s.Enqueue(pkt(t, 7)) {
			highDrops++
		}
	}
	if lowDrops == 0 {
		t.Fatal("aggressive profile never dropped")
	}
	if highDrops >= lowDrops {
		t.Errorf("high class dropped %d >= low class %d", highDrops, lowDrops)
	}
}

func TestREDFIFOOrderPreserved(t *testing.T) {
	s := NewRED(100, REDParams{MinTh: 50, MaxTh: 99, MaxP: 0.1}, 1)
	var in []*labelPkt
	for i := 0; i < 10; i++ {
		p := pkt(t, label.CoS(i%8))
		in = append(in, &labelPkt{p: p})
		s.Enqueue(p)
	}
	for i := 0; i < 10; i++ {
		got, ok := s.Dequeue()
		if !ok || got != in[i].p {
			t.Fatalf("dequeue %d out of order", i)
		}
	}
	if _, ok := s.Dequeue(); ok {
		t.Error("dequeue from empty succeeded")
	}
}

type labelPkt struct{ p interface{ Size() int } }

func TestREDDeterministicWithSeed(t *testing.T) {
	results := make([]uint64, 2)
	for trial := range results {
		s := NewRED(100, defaultProfile(), 77)
		for i := 0; i < 200; i++ {
			s.Enqueue(pkt(t, 0))
		}
		results[trial] = s.Dropped()
	}
	if results[0] != results[1] {
		t.Errorf("same seed produced %d and %d drops", results[0], results[1])
	}
}

func TestWREDConstructorPanics(t *testing.T) {
	assertPanics(t, "capacity", func() { NewWRED(0, [NumClasses]REDParams{}, 1) })
	assertPanics(t, "profiles", func() { NewRED(10, REDParams{MinTh: 9, MaxTh: 1, MaxP: 0.5}, 1) })
}
