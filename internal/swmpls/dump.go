package swmpls

import (
	"sort"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// This file is the forwarder's inspection surface: ordered dumps of
// the installed tables, consumed by the management plane's
// infobase.get handler. Dumps read the same structures the forwarding
// path does, so callers must hold whatever snapshot or lock protects
// the forwarder — the dataplane engine dumps an RCU snapshot, the
// in-process router dumps under the network lock.

// ILMEntry is one installed incoming-label binding.
type ILMEntry struct {
	In    label.Label
	NHLFE NHLFE
}

// FECEntry is one installed FTN binding.
type FECEntry struct {
	Dst       packet.Addr
	PrefixLen int
	NHLFE     NHLFE
}

// ILMEntries dumps the incoming label map sorted by label.
func (f *Forwarder) ILMEntries() []ILMEntry {
	out := f.ilm.entries()
	sort.Slice(out, func(i, j int) bool { return out[i].In < out[j].In })
	return out
}

// FECEntries dumps the FTN sorted by (address, prefix length).
func (f *Forwarder) FECEntries() []FECEntry {
	var out []FECEntry
	f.ftn.walk(func(dst packet.Addr, prefixLen int, n NHLFE) {
		out = append(out, FECEntry{Dst: dst, PrefixLen: prefixLen, NHLFE: n})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dst != out[j].Dst {
			return out[i].Dst < out[j].Dst
		}
		return out[i].PrefixLen < out[j].PrefixLen
	})
	return out
}

func (m mapILM) entries() []ILMEntry {
	out := make([]ILMEntry, 0, len(m))
	for in, n := range m {
		out = append(out, ILMEntry{In: in, NHLFE: n})
	}
	return out
}

func (t *ibILM) entries() []ILMEntry {
	out := make([]ILMEntry, 0, len(t.meta))
	for in, n := range t.meta {
		out = append(out, ILMEntry{In: in, NHLFE: n})
	}
	return out
}

// walk visits every installed FTN binding, reconstructing each prefix
// from its trie position.
func (t *prefixTable) walk(fn func(dst packet.Addr, prefixLen int, n NHLFE)) {
	t.root.walk(0, 0, fn)
}

func (n *trieNode) walk(addr packet.Addr, depth int, fn func(packet.Addr, int, NHLFE)) {
	if n == nil {
		return
	}
	if n.entry != nil {
		fn(addr, depth, *n.entry)
	}
	if depth == 32 {
		return
	}
	n.child[0].walk(addr, depth+1, fn)
	n.child[1].walk(addr|1<<(31-depth), depth+1, fn)
}
