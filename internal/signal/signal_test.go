package signal

import (
	"errors"
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/swmpls"
)

var dst = packet.AddrFrom(10, 0, 0, 9)

// signalNet builds a 4-node line with routers (hardware planes) and a
// signalling fabric over the same topology.
func signalNet(t *testing.T) (*router.Network, *Fabric) {
	t.Helper()
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LSR},
		{Name: "d", Hardware: true, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.002},
		{A: "b", B: "c", RateBPS: 10e6, Delay: 0.002},
		{A: "c", B: "d", RateBPS: 10e6, Delay: 0.002},
	}
	n, err := router.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewFabric(n.Sim, n.Topo)
	for name, r := range n.Routers {
		fab.AddNode(name, r)
	}
	return n, fab
}

func TestSetupEstablishesWorkingLSP(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")

	var setupErr error
	var setupAt netsim.Time = -1
	err := ingress.Setup("lsp1", ldp.FEC{Dst: dst, PrefixLen: 32},
		[]string{"a", "b", "c", "d"}, 1e6, 3, func(e error) {
			setupErr = e
			setupAt = n.Sim.Now()
		})
	if err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if setupErr != nil {
		t.Fatalf("setup failed: %v", setupErr)
	}
	// Three request hops down + three mapping hops up at 2 ms per hop.
	if setupAt < 0.012-1e-9 {
		t.Errorf("setup completed at %gs, want >= 12 ms of control latency", setupAt)
	}

	// The LSP forwards real traffic.
	delivered := 0
	n.Router("d").OnDeliver = func(p *packet.Packet) {
		delivered++
		if p.Labelled() {
			t.Error("delivered packet still labelled")
		}
	}
	n.Router("a").Inject(packet.New(1, dst, 64, []byte("x")))
	n.Sim.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}

	// Bandwidth is reserved on every hop.
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		attrs, _ := n.Topo.Link(pair[0], pair[1])
		if attrs.ReservedBPS != 1e6 {
			t.Errorf("%s->%s reserved %.0f", pair[0], pair[1], attrs.ReservedBPS)
		}
	}
	// Message flow: requests downstream first, then mappings upstream.
	var kinds []string
	for _, e := range fab.Log {
		kinds = append(kinds, e.Msg.Type.String())
	}
	want := []string{
		"label-request", "label-request", "label-request",
		"label-mapping", "label-mapping", "label-mapping",
	}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("message sequence %v, want %v", kinds, want)
	}
}

func TestPerRouterLabelSpaces(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32}, []string{"a", "b", "c", "d"}, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	// Every mapping can legitimately carry the same label value (each
	// router allocates from its own space starting at 16).
	var labels []uint32
	for _, e := range fab.Log {
		if e.Msg.Type == LabelMapping {
			labels = append(labels, uint32(e.Msg.Label))
		}
	}
	if len(labels) != 3 {
		t.Fatalf("mappings = %v", labels)
	}
	for _, l := range labels {
		if l != 16 {
			t.Errorf("first allocation = %d, want 16 from a fresh per-router space", l)
		}
	}
}

func TestSetupFailsOnBandwidth(t *testing.T) {
	n, fab := signalNet(t)
	// Saturate c->d so the request dies two hops in.
	if err := n.Topo.Reserve([]string{"c", "d"}, 10e6); err != nil {
		t.Fatal(err)
	}
	ingress, _ := fab.Node("a")
	var setupErr error
	if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32},
		[]string{"a", "b", "c", "d"}, 2e6, 0, func(e error) { setupErr = e }); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if !errors.Is(setupErr, ErrSetupFailed) {
		t.Fatalf("setup error = %v, want ErrSetupFailed", setupErr)
	}
	// All upstream reservations were released and no state lingers.
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}} {
		attrs, _ := n.Topo.Link(pair[0], pair[1])
		if attrs.ReservedBPS != 0 {
			t.Errorf("%s->%s reservation leaked: %.0f", pair[0], pair[1], attrs.ReservedBPS)
		}
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		node, _ := fab.Node(name)
		if node.Sessions() != 0 {
			t.Errorf("%s holds %d sessions after failure", name, node.Sessions())
		}
	}
	// Ingress FTN must not exist.
	if res, _ := n.Router("a").Plane().Process(packet.New(1, dst, 64, nil)); res.Drop != swmpls.DropNoRoute {
		t.Errorf("ingress still routes: %+v", res)
	}
}

func TestSetupFailsOnBadAdjacency(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	var setupErr error
	// b is not adjacent to d.
	if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32},
		[]string{"a", "b", "d"}, 0, 0, func(e error) { setupErr = e }); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if !errors.Is(setupErr, ErrSetupFailed) {
		t.Fatalf("err = %v", setupErr)
	}
}

func TestSetupValidation(t *testing.T) {
	_, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	fec := ldp.FEC{Dst: dst, PrefixLen: 32}
	if err := ingress.Setup("l", fec, []string{"a"}, 0, 0, nil); !errors.Is(err, ErrBadRoute) {
		t.Errorf("short route: %v", err)
	}
	if err := ingress.Setup("l", fec, []string{"b", "a"}, 0, 0, nil); !errors.Is(err, ErrBadRoute) {
		t.Errorf("route not starting here: %v", err)
	}
	if err := ingress.Setup("l", fec, []string{"a", "b"}, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ingress.Setup("l", fec, []string{"a", "b"}, 0, 0, nil); !errors.Is(err, ErrDuplicateLSP) {
		t.Errorf("duplicate id: %v", err)
	}
}

func TestTeardownUnwindsEverything(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	ok := false
	if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32},
		[]string{"a", "b", "c", "d"}, 1e6, 0, func(e error) { ok = e == nil }); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if !ok {
		t.Fatal("setup failed")
	}
	if err := ingress.Teardown("l"); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	for _, name := range []string{"a", "b", "c", "d"} {
		node, _ := fab.Node(name)
		if node.Sessions() != 0 {
			t.Errorf("%s holds sessions after teardown", name)
		}
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		attrs, _ := n.Topo.Link(pair[0], pair[1])
		if attrs.ReservedBPS != 0 {
			t.Errorf("%s->%s reservation leaked", pair[0], pair[1])
		}
	}
	// Traffic now drops at the ingress.
	dropped := packet.New(1, dst, 64, nil)
	if res, _ := n.Router("a").Plane().Process(dropped); res.Drop != swmpls.DropNoRoute {
		t.Errorf("ingress still routes after teardown: %+v", res)
	}
	if err := ingress.Teardown("l"); err == nil {
		t.Error("double teardown accepted")
	}
}

func TestSignalledLSPMatchesManagementPlane(t *testing.T) {
	// The same route set up via signalling and via ldp.Manager must
	// produce equivalent forwarding behaviour.
	build := func(signalled bool) *packet.Packet {
		n, fab := signalNet(t)
		if signalled {
			ingress, _ := fab.Node("a")
			if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32},
				[]string{"a", "b", "c", "d"}, 0, 5, nil); err != nil {
				t.Fatal(err)
			}
			n.Sim.Run()
		} else {
			if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
				ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "c", "d"}, CoS: 5,
			}); err != nil {
				t.Fatal(err)
			}
		}
		var got *packet.Packet
		n.Router("d").OnDeliver = func(p *packet.Packet) { got = p }
		n.Router("a").Inject(packet.New(1, dst, 64, []byte("same")))
		n.Sim.Run()
		if got == nil {
			t.Fatal("not delivered")
		}
		return got
	}
	a, b := build(true), build(false)
	if a.Header.TTL != b.Header.TTL || string(a.Payload) != string(b.Payload) || a.Labelled() != b.Labelled() {
		t.Errorf("signalled delivery %v != management-plane delivery %v", a, b)
	}
}

// TestStaleAndMisdirectedMessagesIgnored exercises the defensive paths:
// mappings for unknown LSPs, mappings from the wrong neighbour and
// releases for unknown sessions must all be ignored without state damage.
func TestStaleAndMisdirectedMessagesIgnored(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	if err := ingress.Setup("l", ldp.FEC{Dst: dst, PrefixLen: 32}, []string{"a", "b", "c"}, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	b, _ := fab.Node("b")
	before := b.Sessions()
	// Mapping for an unknown LSP.
	b.receive("c", Message{Type: LabelMapping, LSP: "ghost", Label: 99})
	// Mapping from the wrong direction (upstream, not downstream).
	b.receive("a", Message{Type: LabelMapping, LSP: "l", Label: 99})
	// Release for an unknown session.
	b.receive("a", Message{Type: LabelRelease, LSP: "ghost"})
	// Error for an unknown session.
	b.receive("c", Message{Type: PathError, LSP: "ghost"})
	n.Sim.Run()
	if b.Sessions() != before {
		t.Errorf("stale messages changed session count: %d -> %d", before, b.Sessions())
	}
	// The LSP still forwards.
	delivered := 0
	n.Router("c").OnDeliver = func(*packet.Packet) { delivered++ }
	n.Router("a").Inject(packet.New(1, dst, 64, nil))
	n.Sim.Run()
	if delivered != 1 {
		t.Errorf("LSP broken by stale messages: delivered=%d", delivered)
	}
}

// TestDuplicateRequestRejectedMidPath: a second request with the same LSP
// id arriving at a transit node bounces a PathError.
func TestDuplicateRequestRejectedMidPath(t *testing.T) {
	n, fab := signalNet(t)
	ingress, _ := fab.Node("a")
	if err := ingress.Setup("dup", ldp.FEC{Dst: dst, PrefixLen: 32}, []string{"a", "b", "c"}, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	b, _ := fab.Node("b")
	b.receive("a", Message{Type: LabelRequest, LSP: "dup", Route: []string{"b", "c"}})
	n.Sim.Run()
	last := fab.Log[len(fab.Log)-1]
	if last.Msg.Type != PathError || last.To != "a" {
		t.Errorf("duplicate request answered with %v to %s", last.Msg.Type, last.To)
	}
}
