package lsm

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// writePairPP programs the information base through the command port
// while the packet processor is idle — the routing software path.
func writePairPP(t *testing.T, p *PktProc, lv infobase.Level, pair infobase.Pair) {
	t.Helper()
	if _, err := p.Bench().WritePair(lv, pair); err != nil {
		t.Fatal(err)
	}
}

func TestPktProcSwapPacket(t *testing.T) {
	p := NewPktProc(LSR, Options{})
	writePairPP(t, p, infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: label.OpSwap})

	in := []label.Entry{{Label: 42, CoS: 3, TTL: 64}}
	out, discarded, cycles, err := p.Process(in, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if discarded {
		t.Fatal("swap packet discarded")
	}
	top, err := out.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Label != 777 || top.TTL != 63 || top.CoS != 3 || !top.Bottom {
		t.Errorf("outgoing top = %v, want lbl=777 ttl=63 cos=3 S=1", top)
	}
	// Start latch (1) + load (3) + update (search pos 1 + swap tail) +
	// the update->pop handoff cycle + unload (3).
	want := 1 + 3*1 + SearchCycles(1) + CyclesSwapFromIB + 1 + 3*1
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
}

func TestPktProcIngressPush(t *testing.T) {
	p := NewPktProc(LER, Options{})
	const dst = 0x0a000001
	writePairPP(t, p, infobase.Level1, infobase.Pair{Index: dst, NewLabel: 100, Op: label.OpPush})

	out, discarded, _, err := p.Process(nil, dst, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if discarded || out.Depth() != 1 {
		t.Fatalf("ingress result: discard=%v depth=%d", discarded, out.Depth())
	}
	top, _ := out.Top()
	if top.Label != 100 || top.TTL != 63 || top.CoS != 5 {
		t.Errorf("pushed entry = %v", top)
	}
}

func TestPktProcTunnelPushDepth2(t *testing.T) {
	p := NewPktProc(LSR, Options{})
	writePairPP(t, p, infobase.Level2, infobase.Pair{Index: 42, NewLabel: 500, Op: label.OpPush})

	in := []label.Entry{{Label: 42, CoS: 1, TTL: 32}}
	out, discarded, _, err := p.Process(in, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if discarded || out.Depth() != 2 {
		t.Fatalf("tunnel push: discard=%v stack=%v", discarded, out)
	}
	top, _ := out.Top()
	below, _ := out.At(0)
	if top.Label != 500 || below.Label != 42 || top.TTL != 31 || below.TTL != 31 {
		t.Errorf("stack after tunnel push: %v", out)
	}
	if !out.Consistent() {
		t.Errorf("S bits wrong after hardware unload: %v", out)
	}
}

func TestPktProcDiscard(t *testing.T) {
	p := NewPktProc(LSR, Options{})
	in := []label.Entry{{Label: 99, TTL: 64}} // no binding
	out, discarded, _, err := p.Process(in, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !discarded {
		t.Fatal("miss not discarded")
	}
	if out.Depth() != 0 {
		t.Errorf("discarded packet kept a stack: %v", out)
	}
}

func TestPktProcBackToBackPackets(t *testing.T) {
	p := NewPktProc(LSR, Options{})
	writePairPP(t, p, infobase.Level2, infobase.Pair{Index: 42, NewLabel: 43, Op: label.OpSwap})
	writePairPP(t, p, infobase.Level2, infobase.Pair{Index: 43, NewLabel: 42, Op: label.OpSwap})

	lbl := label.Label(42)
	for i := 0; i < 10; i++ {
		out, discarded, _, err := p.Process([]label.Entry{{Label: lbl, TTL: 64}}, 0, 0, 0)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if discarded {
			t.Fatalf("packet %d discarded", i)
		}
		top, _ := out.Top()
		want := label.Label(43)
		if lbl == 43 {
			want = 42
		}
		if top.Label != want {
			t.Fatalf("packet %d: label %d, want %d", i, top.Label, want)
		}
		lbl = want
	}
}

func TestPktProcMatchesDeviceModelCycles(t *testing.T) {
	// The RTL packet processor's load+update portion must cost exactly
	// what the device-level model charges (3 per entry + update), for
	// every stack depth.
	for depth := 1; depth <= label.MaxDepth; depth++ {
		p := NewPktProc(LSR, Options{})
		writePairPP(t, p, infobase.LevelForDepth(depth), infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
		in := make([]label.Entry, depth)
		for i := range in {
			in[i] = label.Entry{Label: label.Label(1000 + i), TTL: 64}
		}
		in[depth-1].Label = 42
		out, discarded, cycles, err := p.Process(in, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if discarded {
			t.Fatalf("depth %d discarded", depth)
		}
		// Start latch (1) + load (3/entry) + update + handoff (1) +
		// unload (3/entry).
		want := 1 + 3*depth + SearchCycles(1) + CyclesSwapFromIB + 1 + 3*out.Depth()
		if cycles != want {
			t.Errorf("depth %d: cycles = %d, want %d", depth, cycles, want)
		}
	}
}
