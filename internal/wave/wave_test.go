package wave

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"embeddedmpls/internal/rtl"
)

// buildCounterBench wires a 4-bit counter with a done pulse at value 5 and
// returns the simulator plus a tracer over its signals.
func buildCounterBench(t *testing.T) (*rtl.Simulator, *Tracer) {
	t.Helper()
	sim := rtl.New()
	q := sim.Signal("count", 4)
	en := sim.Signal("en", 1)
	done := sim.Signal("done", 1)
	rtl.NewCounter(sim, q, en, nil, nil, nil, nil)
	sim.Comb(func() { done.SetBool(q.Get() == 5) })
	en.SetBool(true)
	return sim, NewTracer(sim, q, en, done)
}

func TestTracerRecordsEveryCycle(t *testing.T) {
	sim, tr := buildCounterBench(t)
	sim.Run(8)
	if tr.Len() != 8 {
		t.Fatalf("recorded %d rows, want 8", tr.Len())
	}
	v, err := tr.Value("count", 3)
	if err != nil || v != 4 {
		t.Errorf("count at row 3 = %d (%v), want 4", v, err)
	}
	if _, err := tr.Value("missing", 0); err == nil {
		t.Error("Value of untraced signal should fail")
	}
	if _, err := tr.Value("count", 99); err == nil {
		t.Error("Value out of range should fail")
	}
}

func TestFirstCycleAndCount(t *testing.T) {
	sim, tr := buildCounterBench(t)
	sim.Run(10)
	cyc, ok := tr.FirstCycle("done", func(v uint64) bool { return v == 1 })
	if !ok || cyc != 5 {
		t.Errorf("done first high at cycle %d (ok=%v), want 5", cyc, ok)
	}
	if n := tr.CountCycles("done", func(v uint64) bool { return v == 1 }); n != 1 {
		t.Errorf("done high for %d cycles, want 1 (a single pulse)", n)
	}
	if _, ok := tr.FirstCycle("missing", func(uint64) bool { return true }); ok {
		t.Error("FirstCycle on untraced signal should report not found")
	}
}

func TestChangesCompressesRuns(t *testing.T) {
	sim, tr := buildCounterBench(t)
	sim.Run(4)
	chs := tr.Changes("en")
	if len(chs) != 1 || chs[0].Value != 1 {
		t.Errorf("en changes = %v, want a single initial value 1", chs)
	}
	chs = tr.Changes("count")
	if len(chs) != 4 {
		t.Errorf("count changed %d times, want 4", len(chs))
	}
	if tr.Changes("missing") != nil {
		t.Error("Changes on untraced signal should be nil")
	}
}

func TestWriteTableSkipsRepeatedRows(t *testing.T) {
	sim := rtl.New()
	s := sim.Signal("steady", 8)
	s.Set(7)
	tr := NewTracer(sim, s)
	sim.Run(5)
	var buf bytes.Buffer
	if err := tr.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + single data row
		t.Errorf("table has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "steady") || !strings.Contains(lines[1], "7") {
		t.Errorf("unexpected table:\n%s", buf.String())
	}
}

func TestWriteWaveShapes(t *testing.T) {
	sim, tr := buildCounterBench(t)
	sim.Run(7)
	var buf bytes.Buffer
	if err := tr.WriteWave(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "en") || !strings.Contains(out, "#######") {
		t.Errorf("expected a solid-high waveform for en:\n%s", out)
	}
	if !strings.Contains(out, "done") || !strings.Contains(out, "____#_") {
		t.Errorf("expected a single done pulse at cycle 5:\n%s", out)
	}
	if !strings.Contains(out, "->2@2") {
		t.Errorf("expected multi-bit change annotations for count:\n%s", out)
	}
}

func TestWriteVCD(t *testing.T) {
	sim, tr := buildCounterBench(t)
	sim.Run(3)
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf, "bench", time.Time{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1 ns $end",
		"$scope module bench $end",
		"$var wire 4 ! count $end",
		"$var wire 1 \" en $end",
		"$enddefinitions $end",
		"#1\n",
		"b1 !",
		"1\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Cycle 2 changes only the counter, so en must not be re-dumped.
	after2 := out[strings.Index(out, "#2"):]
	block2 := after2[:strings.Index(after2, "#3")]
	if strings.Contains(block2, "\"") {
		t.Errorf("VCD re-dumped unchanged en at cycle 2:\n%s", block2)
	}
}

func TestVCDIDsUniqueForManySignals(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at index %d", id, i)
		}
		seen[id] = true
	}
}
