package dataplane

import (
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// maxFlowEntries bounds each cache map; past it the map is reset rather
// than evicted entry-by-entry (the cache is a memo, not a table).
const maxFlowEntries = 1024

// flowCache is a worker-private memo of resolved NHLFEs, keyed by the
// packet's flow identity: incoming top label for labelled packets,
// destination address (the paper's packet identifier) for unlabelled
// ones. It skips the per-packet table search — the map probe or linear
// scan swmpls.Resolve would repeat for every packet of a flow — while
// ApplyResolved keeps the mutation and drop paths byte-identical to
// Forward.
//
// Correctness rests on one invariant: an entry is only ever used
// against the exact table snapshot it was resolved from. The snapshot
// pointer is the validity token — sync compares it at the top of every
// batch and empties the cache when the control plane has published,
// so a worker can never apply a stale label program. Negative results
// are not cached: misses take the full lookup and drop-accounting
// path.
type flowCache struct {
	tbl  *swmpls.Forwarder
	lbl  map[label.Label]swmpls.NHLFE
	addr map[packet.Addr]swmpls.NHLFE

	hits, misses uint64
}

func newFlowCache() *flowCache {
	return &flowCache{
		lbl:  make(map[label.Label]swmpls.NHLFE),
		addr: make(map[packet.Addr]swmpls.NHLFE),
	}
}

// sync points the cache at the batch's table snapshot, invalidating
// every entry when the snapshot changed — table publish is the only
// way entries become stale, so pointer identity is a complete check.
func (c *flowCache) sync(tbl *swmpls.Forwarder) {
	if c.tbl == tbl {
		return
	}
	c.tbl = tbl
	clear(c.lbl)
	clear(c.addr)
}

// forwardOnce is one table pass through the cache, equivalent to one
// tbl.Forward call.
func (c *flowCache) forwardOnce(tbl *swmpls.Forwarder, p *packet.Packet) swmpls.Result {
	if p.Labelled() {
		top, err := p.Stack.Top()
		if err != nil {
			return tbl.DropUnresolved(p)
		}
		if n, ok := c.lbl[top.Label]; ok {
			c.hits++
			return tbl.ApplyResolved(p, n)
		}
		n, ok := tbl.Resolve(p)
		if !ok {
			return tbl.DropUnresolved(p)
		}
		c.misses++
		if len(c.lbl) >= maxFlowEntries {
			clear(c.lbl)
		}
		c.lbl[top.Label] = n
		return tbl.ApplyResolved(p, n)
	}
	dst := p.Header.Dst
	if n, ok := c.addr[dst]; ok {
		c.hits++
		return tbl.ApplyResolved(p, n)
	}
	n, ok := tbl.Resolve(p)
	if !ok {
		return tbl.DropUnresolved(p)
	}
	c.misses++
	if len(c.addr) >= maxFlowEntries {
		clear(c.addr)
	}
	c.addr[dst] = n
	return tbl.ApplyResolved(p, n)
}

// forward applies the full (multi-pass) label program through the
// cache — the cached counterpart of the package-level forward helper.
func (c *flowCache) forward(tbl *swmpls.Forwarder, p *packet.Packet) swmpls.Result {
	var res swmpls.Result
	for pass := 0; pass < label.MaxDepth+1; pass++ {
		res = c.forwardOnce(tbl, p)
		if res.Action == swmpls.Forward && res.NextHop == "" && p.Labelled() {
			continue
		}
		break
	}
	return res
}

// take drains the hit/miss tally for per-batch folding.
func (c *flowCache) take() (hits, misses uint64) {
	hits, misses = c.hits, c.misses
	c.hits, c.misses = 0, 0
	return hits, misses
}
