package router

import (
	"testing"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

func pumpPacket(lbl label.Label, flow uint16) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	p.Header.FlowID = flow
	if err := p.Stack.Push(label.Entry{Label: lbl, TTL: 64}); err != nil {
		panic(err)
	}
	return p
}

// TestEgressPumpForwardedConsistency drives a pumped multi-worker
// engine over simulated wires and checks the per-batch accounting:
// the router's Forwarded counter (merged once per flushed batch) must
// equal the packets offered, and equal what the link itself counted —
// batch-granular accounting may not lose or double-count packets under
// concurrent flushes.
func TestEgressPumpForwardedConsistency(t *testing.T) {
	n, err := Build([]NodeSpec{
		{Name: "a", EngineWorkers: 4},
		{Name: "b"},
	}, []LinkSpec{{A: "a", B: "b", RateBPS: 1e12, QueueCap: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachEgressPump("a"); err != nil {
		t.Fatal(err)
	}
	ra := n.Router("a")
	eng := ra.plane.(*EnginePlane).Engine
	if err := eng.InstallILM(100, swmpls.NHLFE{
		NextHop: "b", Op: label.OpSwap, PushLabels: []label.Label{200},
	}); err != nil {
		t.Fatal(err)
	}
	// A second binding whose next hop has no attached link: those
	// packets must land in the router's drop accounting, not vanish.
	if err := eng.InstallILM(300, swmpls.NHLFE{
		NextHop: "ghost", Op: label.OpSwap, PushLabels: []label.Label{301},
	}); err != nil {
		t.Fatal(err)
	}

	const forwarded, unrouted, missed = 2000, 200, 100
	submit := func(lbl label.Label, count int) {
		one := make([]*packet.Packet, 1)
		for i := 0; i < count; i++ {
			one[0] = pumpPacket(lbl, uint16(i%32))
			if eng.Submit(one, dataplane.SubmitOpts{Wait: true}) != 1 {
				t.Fatal("submit refused")
			}
		}
	}
	submit(100, forwarded)
	submit(300, unrouted)
	submit(999, missed) // no ILM binding: engine discard
	n.Close()

	if got := ra.Stats.Forwarded.Events; got != forwarded {
		t.Errorf("router forwarded %d, want %d", got, forwarded)
	}
	if got := ra.Stats.Dropped.Events; got != unrouted+missed {
		t.Errorf("router dropped %d, want %d", got, unrouted+missed)
	}
	if got := ra.Stats.DropsByReason[swmpls.DropNoRoute]; got != unrouted {
		t.Errorf("no-route drops %d, want %d", got, unrouted)
	}
	l, ok := ra.SimLink("b")
	if !ok {
		t.Fatal("no sim link a->b")
	}
	if got := l.Sent.Events; got != forwarded {
		t.Errorf("link counted %d sent, router forwarded %d", got, forwarded)
	}
	// Byte accounting must match too — the per-batch merge carries sizes.
	if ra.Stats.Forwarded.Bytes != l.Sent.Bytes {
		t.Errorf("router forwarded %d bytes, link sent %d", ra.Stats.Forwarded.Bytes, l.Sent.Bytes)
	}
	snap := eng.Snapshot()
	if snap.Processed() != forwarded+unrouted+missed {
		t.Errorf("engine processed %d, offered %d", snap.Processed(), forwarded+unrouted+missed)
	}
	if snap.EgressFlushSize+snap.EgressFlushTimer+snap.EgressFlushClose == 0 {
		t.Error("no egress flushes recorded")
	}
}
