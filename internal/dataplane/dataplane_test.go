package dataplane

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// The engine must be programmable by the LDP manager exactly like the
// serial data planes.
var _ ldp.Installer = (*Engine)(nil)

func swapNHLFE(out label.Label, nh string) swmpls.NHLFE {
	return swmpls.NHLFE{NextHop: nh, Op: label.OpSwap, PushLabels: []label.Label{out}}
}

func labelled(lbl label.Label, flow uint16, seq uint64) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	p.Header.FlowID = flow
	p.SeqNo = seq
	if err := p.Stack.Push(label.Entry{Label: lbl, TTL: 64}); err != nil {
		panic(err)
	}
	return p
}

// submit and submitWait are the batch-of-one helpers most tests use.
func submit(e *Engine, p *packet.Packet) bool {
	return e.Submit([]*packet.Packet{p}, SubmitOpts{}) == 1
}

func submitWait(e *Engine, p *packet.Packet) bool {
	return e.Submit([]*packet.Packet{p}, SubmitOpts{Wait: true}) == 1
}

// sink is a batch egress sink recording per-packet outcomes for
// assertions, reconstructing a Result per packet from the batch call.
type sink struct {
	mu      sync.Mutex
	results []swmpls.Result
	perFlow map[uint16][]uint64
}

func newSink() *sink { return &sink{perFlow: make(map[uint16][]uint64)} }

func (s *sink) record(p *packet.Packet, res swmpls.Result) {
	s.mu.Lock()
	s.results = append(s.results, res)
	s.perFlow[p.Header.FlowID] = append(s.perFlow[p.Header.FlowID], p.SeqNo)
	s.mu.Unlock()
}

func (s *sink) Flush(nextHop string, ps []*packet.Packet) {
	for _, p := range ps {
		s.record(p, swmpls.Result{Action: swmpls.Forward, NextHop: nextHop})
	}
}

func (s *sink) Deliver(ps []*packet.Packet) {
	for _, p := range ps {
		s.record(p, swmpls.Result{Action: swmpls.Deliver})
	}
}

func (s *sink) Discard(ps []*packet.Packet, reasons []swmpls.DropReason) {
	for i, p := range ps {
		s.record(p, swmpls.Result{Action: swmpls.Drop, Drop: reasons[i]})
	}
}

// funcEgress adapts per-packet callbacks to the batch Egress contract
// for tests that only care about one class of outcome.
type funcEgress struct {
	forward func(nextHop string, p *packet.Packet)
	deliver func(p *packet.Packet)
	discard func(p *packet.Packet, reason swmpls.DropReason)
}

func (f funcEgress) Flush(nextHop string, ps []*packet.Packet) {
	if f.forward != nil {
		for _, p := range ps {
			f.forward(nextHop, p)
		}
	}
}

func (f funcEgress) Deliver(ps []*packet.Packet) {
	if f.deliver != nil {
		for _, p := range ps {
			f.deliver(p)
		}
	}
}

func (f funcEgress) Discard(ps []*packet.Packet, reasons []swmpls.DropReason) {
	if f.discard != nil {
		for i, p := range ps {
			f.discard(p, reasons[i])
		}
	}
}

func TestForwardAndAccount(t *testing.T) {
	sk := newSink()
	e := New(WithWorkers(4), WithEgress(sk))
	if err := e.Update(func(f *swmpls.Forwarder) error {
		if err := f.InstallFEC(packet.AddrFrom(10, 0, 0, 0), 8, swmpls.NHLFE{
			NextHop: "b", Op: label.OpPush, PushLabels: []label.Label{100},
		}); err != nil {
			return err
		}
		return f.InstallILM(100, swapNHLFE(200, "c"))
	}); err != nil {
		t.Fatal(err)
	}

	const n = 1000
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0: // ingress push via the FTN
			p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 1, 2, 3), 64, nil)
			p.Header.FlowID = uint16(i)
			if !submitWait(e, p) {
				t.Fatal("SubmitWait refused while open")
			}
		case 1: // transit swap via the ILM
			if !submitWait(e, labelled(100, uint16(i), 0)) {
				t.Fatal("SubmitWait refused while open")
			}
		default: // unroutable -> forwarding drop
			p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(172, 16, 0, 1), 64, nil)
			p.Header.FlowID = uint16(i)
			if !submitWait(e, p) {
				t.Fatal("SubmitWait refused while open")
			}
		}
	}
	e.Close()

	snap := e.Snapshot()
	if snap.Submitted.Events != n {
		t.Fatalf("submitted %d, want %d", snap.Submitted.Events, n)
	}
	if got := snap.Processed(); got != n {
		t.Fatalf("processed %d, want %d", got, n)
	}
	wantFwd := uint64(334 + 333) // ceil(n/3) pushes + swaps
	if snap.Forwarded.Events != wantFwd {
		t.Errorf("forwarded %d, want %d", snap.Forwarded.Events, wantFwd)
	}
	if snap.Dropped.Events != 333 {
		t.Errorf("dropped %d, want 333", snap.Dropped.Events)
	}
	if snap.DropsByReason[swmpls.DropNoRoute] != 333 {
		t.Errorf("no-route drops %d, want 333", snap.DropsByReason[swmpls.DropNoRoute])
	}
	if snap.QueueDropped != 0 {
		t.Errorf("queue drops %d with backpressure submit", snap.QueueDropped)
	}
	if len(sk.results) != n {
		t.Errorf("deliver callback saw %d packets, want %d", len(sk.results), n)
	}
	if snap.BatchTime.Count() == 0 {
		t.Error("no batch time samples recorded")
	}
	var busy float64
	for _, b := range snap.WorkerBusy {
		busy += b
	}
	if busy <= 0 {
		t.Error("no worker busy time recorded")
	}

	// The engine is closed: nothing is accepted any more.
	if submit(e, labelled(100, 0, 0)) || submitWait(e, labelled(100, 0, 0)) {
		t.Error("submit accepted after Close")
	}
	e.Close() // idempotent
}

// TestConcurrentChurn forwards continuously while the control plane
// publishes well over 100 table snapshots. Under -race this doubles as
// the proof that readers and the updater never touch shared mutable
// state; functionally it asserts that every packet saw a complete table
// (next hop is always one of the two programmed values, never a torn
// in-between).
func TestConcurrentChurn(t *testing.T) {
	var mu sync.Mutex
	hops := make(map[string]uint64)
	e := New(WithWorkers(4), WithQueueCap(256), WithEgress(funcEgress{
		forward: func(nextHop string, p *packet.Packet) {
			mu.Lock()
			hops[nextHop]++
			mu.Unlock()
		},
	}))
	if err := e.InstallILM(100, swapNHLFE(200, "A")); err != nil {
		t.Fatal(err)
	}

	const packets = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < packets; i++ {
			if !submitWait(e, labelled(100, uint16(i%64), 0)) {
				t.Error("SubmitWait refused while open")
				return
			}
		}
	}()

	// Churn: flip the LSP between next hops A and B, and keep installing
	// and removing unrelated state so snapshots differ structurally too.
	const swaps = 150
	for i := 0; i < swaps; i++ {
		nh := "A"
		if i%2 == 1 {
			nh = "B"
		}
		if err := e.Update(func(f *swmpls.Forwarder) error {
			if err := f.InstallILM(100, swapNHLFE(200, nh)); err != nil {
				return err
			}
			if err := f.InstallILM(label.Label(1000+i), swapNHLFE(2000, "x")); err != nil {
				return err
			}
			f.RemoveILM(label.Label(1000 + i - 1))
			return f.InstallFEC(packet.AddrFrom(10, 0, byte(i), 0), 24, swmpls.NHLFE{
				NextHop: "y", Op: label.OpPush, PushLabels: []label.Label{label.Label(3000 + i)},
			})
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Microsecond)
	}
	<-done
	e.Close()

	if e.Updates() < 100 {
		t.Fatalf("only %d snapshot swaps, want >= 100", e.Updates())
	}
	var total uint64
	for nh, n := range hops {
		if nh != "A" && nh != "B" {
			t.Errorf("packet forwarded to impossible next hop %q", nh)
		}
		total += n
	}
	if total != packets {
		t.Fatalf("forwarded %d packets, want %d", total, packets)
	}
	snap := e.Snapshot()
	if snap.Processed() != packets || snap.QueueDropped != 0 {
		t.Fatalf("processed=%d queueDropped=%d, want %d/0", snap.Processed(), snap.QueueDropped, packets)
	}
}

// TestFlowOrderPreserved interleaves many flows through a multi-worker
// engine and asserts each flow's packets come out in submission order.
func TestFlowOrderPreserved(t *testing.T) {
	sk := newSink()
	e := New(WithWorkers(4), WithEgress(sk))
	for i := 0; i < 8; i++ {
		if err := e.InstallILM(label.Label(16+i), swapNHLFE(label.Label(100+i), "b")); err != nil {
			t.Fatal(err)
		}
	}

	const flows, perFlow = 32, 200
	for seq := 0; seq < perFlow; seq++ {
		for f := 0; f < flows; f++ {
			// Several flows share each label, so per-flow order must
			// survive both the hashing and the per-shard queueing.
			p := labelled(label.Label(16+f%8), uint16(f), uint64(seq))
			if !submitWait(e, p) {
				t.Fatal("SubmitWait refused while open")
			}
		}
	}
	e.Close()

	if len(sk.perFlow) != flows {
		t.Fatalf("saw %d flows, want %d", len(sk.perFlow), flows)
	}
	for f, seqs := range sk.perFlow {
		if len(seqs) != perFlow {
			t.Fatalf("flow %d delivered %d packets, want %d", f, len(seqs), perFlow)
		}
		for i, s := range seqs {
			if s != uint64(i) {
				t.Fatalf("flow %d out of order: position %d holds seq %d", f, i, s)
			}
		}
	}
}

// TestTailDropAccounting overloads a tiny queue and checks that every
// offered packet is accounted for exactly once: processed or dropped at
// admission.
func TestTailDropAccounting(t *testing.T) {
	e := New(WithWorkers(1), WithQueueCap(8), WithBatch(4), WithEgress(funcEgress{
		forward: func(string, *packet.Packet) { time.Sleep(20 * time.Microsecond) },
	}))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	const offered = 500
	accepted := 0
	for i := 0; i < offered; i++ {
		if submit(e, labelled(100, uint16(i), 0)) {
			accepted++
		}
	}
	e.Close()
	snap := e.Snapshot()
	if snap.Submitted.Events != uint64(accepted) {
		t.Errorf("snapshot submitted %d, Submit accepted %d", snap.Submitted.Events, accepted)
	}
	if snap.QueueDropped != uint64(offered-accepted) {
		t.Errorf("queue dropped %d, want %d", snap.QueueDropped, offered-accepted)
	}
	if snap.Processed() != uint64(accepted) {
		t.Errorf("processed %d, want %d", snap.Processed(), accepted)
	}
	if snap.QueueDropped == 0 {
		t.Error("expected tail drops under overload")
	}
	// Admission rejections must appear in the unified reason accounting
	// too, matching the scheduler's own count exactly.
	if got := snap.Reasons[telemetry.ReasonQueueOverfull]; got != snap.QueueDropped {
		t.Errorf("queue-overfull reason count %d, scheduler dropped %d", got, snap.QueueDropped)
	}
}

// TestCoSAwarePreferentialDrop floods an overloaded CoS-aware engine
// with equal best-effort and premium traffic; the premium class must get
// through at a higher rate because it has reserved queue space and
// strict dequeue priority.
func TestCoSAwarePreferentialDrop(t *testing.T) {
	// The worker only completes a packet when the test hands it a token,
	// so the offered load outpaces the service rate deterministically —
	// no wall-clock pacing involved.
	tokens := make(chan struct{})
	var mu sync.Mutex
	byClass := make(map[label.CoS]uint64)
	e := New(WithWorkers(1), WithQueueCap(64), WithBatch(4), WithPolicy(CoSAware),
		WithEgressFlush(1, 200*time.Microsecond),
		WithEgress(funcEgress{forward: func(_ string, p *packet.Packet) {
			<-tokens
			top, err := p.Stack.Top()
			if err != nil {
				t.Errorf("delivered packet lost its stack: %v", err)
				return
			}
			mu.Lock()
			byClass[top.CoS]++
			mu.Unlock()
		}}))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	mk := func(cos label.CoS, flow uint16) *packet.Packet {
		p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
		p.Header.FlowID = flow
		if err := p.Stack.Push(label.Entry{Label: 100, CoS: cos, TTL: 64}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Saturate both class queues (8 slots each at QueueCap 64 / 8
	// classes), then keep offering one packet per class for every packet
	// the worker is allowed to finish: a 2x overload shared equally
	// between the classes.
	for i := 0; i < 150; i++ {
		submit(e, mk(0, uint16(i)))
		submit(e, mk(7, uint16(i)))
	}
	const served = 200
	for i := 0; i < served; i++ {
		tokens <- struct{}{}
		submit(e, mk(0, uint16(i)))
		submit(e, mk(7, uint16(i)))
	}
	close(tokens) // let the drain on Close run free
	e.Close()
	snap := e.Snapshot()
	if snap.QueueDropped == 0 {
		t.Fatal("expected queue drops under overload")
	}
	// Strict priority plus reserved per-class space must favour the
	// premium class decisively, not marginally.
	if byClass[7] <= 2*byClass[0] {
		t.Errorf("premium class served %d, best effort %d; want a decisive preference", byClass[7], byClass[0])
	}
}

func TestUpdateFailureLeavesTable(t *testing.T) {
	e := New(WithWorkers(1))
	defer e.Close()
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	before := e.Updates()
	err := e.Update(func(f *swmpls.Forwarder) error {
		// A reserved label is rejected by the forwarder's validation.
		return f.InstallILM(1, swapNHLFE(300, "c"))
	})
	if err == nil {
		t.Fatal("expected install of reserved label to fail")
	}
	if e.Updates() != before {
		t.Error("failed update still published a snapshot")
	}
	p := labelled(100, 0, 0)
	res := e.ProcessInline(p)
	if res.Action != swmpls.Forward || res.NextHop != "b" {
		t.Errorf("table damaged by failed update: %+v", res)
	}
	top, _ := p.Stack.Top()
	if top.Label != 200 {
		t.Errorf("swap produced label %d, want 200", top.Label)
	}
}

// TestPenultimatePopMultiPass checks the worker's multi-pass loop: a pop
// exposing an inner label that this engine also maps is re-examined, as
// in the router's engine loop.
func TestPenultimatePopMultiPass(t *testing.T) {
	sk := newSink()
	e := New(WithWorkers(2), WithEgress(sk))
	if err := e.Update(func(f *swmpls.Forwarder) error {
		if err := f.InstallILM(100, swmpls.NHLFE{Op: label.OpPop}); err != nil {
			return err
		}
		return f.InstallILM(50, swapNHLFE(60, "out"))
	}); err != nil {
		t.Fatal(err)
	}
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	if err := p.Stack.Push(label.Entry{Label: 50, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if err := p.Stack.Push(label.Entry{Label: 100, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if !submitWait(e, p) {
		t.Fatal("SubmitWait refused while open")
	}
	e.Close()
	if len(sk.results) != 1 {
		t.Fatalf("delivered %d results", len(sk.results))
	}
	res := sk.results[0]
	if res.Action != swmpls.Forward || res.NextHop != "out" {
		t.Fatalf("multi-pass result %+v, want forward to out", res)
	}
}

// TestDropReasonTelemetry forces the paper's three discard transitions
// (information base lookup miss, TTL expiry, inconsistent stored
// operation) plus the software-only no-route case through the engine,
// and checks the unified reason counters, the histograms and the trace
// ring all see them.
func TestDropReasonTelemetry(t *testing.T) {
	trace := telemetry.NewRing(256)
	e := New(WithWorkers(2), WithNode("lsr-test"), WithTrace(trace))
	if err := e.Update(func(f *swmpls.Forwarder) error {
		if err := f.InstallILM(100, swapNHLFE(200, "b")); err != nil {
			return err
		}
		// A transit push on an already full stack is the inconsistent-
		// operation case: the stored operation cannot be applied.
		return f.InstallILM(300, swmpls.NHLFE{
			NextHop: "c", Op: label.OpPush, PushLabels: []label.Label{301},
		})
	}); err != nil {
		t.Fatal(err)
	}

	const per = 10
	for i := 0; i < per; i++ {
		// Lookup miss: a label with no ILM binding.
		if !submitWait(e, labelled(999, uint16(i), 0)) {
			t.Fatal("SubmitWait refused while open")
		}
		// TTL expiry: a mapped label arriving with TTL 1.
		p := labelled(100, uint16(i), 1)
		top, _ := p.Stack.Pop()
		top.TTL = 1
		if err := p.Stack.Push(top); err != nil {
			t.Fatal(err)
		}
		if !submitWait(e, p) {
			t.Fatal("SubmitWait refused while open")
		}
		// Inconsistent operation: label 300 wants a push, but the stack
		// is already at MaxDepth.
		full := labelled(20, uint16(i), 2)
		for _, l := range []label.Label{21, 300} {
			if err := full.Stack.Push(label.Entry{Label: l, TTL: 64}); err != nil {
				t.Fatal(err)
			}
		}
		if !submitWait(e, full) {
			t.Fatal("SubmitWait refused while open")
		}
		// No route: an unlabelled packet with no FEC binding.
		u := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(172, 16, 0, 1), 64, nil)
		u.Header.FlowID = uint16(i)
		if !submitWait(e, u) {
			t.Fatal("SubmitWait refused while open")
		}
		// And one forwardable packet so ops are traced too.
		if !submitWait(e, labelled(100, uint16(i), 3)) {
			t.Fatal("SubmitWait refused while open")
		}
	}
	e.Close()

	snap := e.Snapshot()
	for reason, want := range map[telemetry.Reason]uint64{
		telemetry.ReasonLookupMiss:     per,
		telemetry.ReasonTTLExpired:     per,
		telemetry.ReasonInconsistentOp: per,
		telemetry.ReasonNoRoute:        per,
		telemetry.ReasonQueueOverfull:  0,
	} {
		if got := snap.Reasons[reason]; got != want {
			t.Errorf("%v count = %d, want %d", reason, got, want)
		}
	}
	if got := e.Drops().Total(); got != 4*per {
		t.Errorf("total drops %d, want %d", got, 4*per)
	}
	// The legacy per-DropReason map and the unified taxonomy must agree.
	if snap.DropsByReason[swmpls.DropNoLabel] != snap.Reasons[telemetry.ReasonLookupMiss] {
		t.Errorf("DropsByReason[no-label]=%d, reasons[lookup-miss]=%d",
			snap.DropsByReason[swmpls.DropNoLabel], snap.Reasons[telemetry.ReasonLookupMiss])
	}
	// Histograms saw every processed packet.
	if snap.StackDepth.Count != 5*per {
		t.Errorf("stack depth observations %d, want %d", snap.StackDepth.Count, 5*per)
	}
	if snap.Latency.Count == 0 {
		t.Error("no batch latency observations")
	}

	// The trace ring holds one event per packet: swaps for the
	// forwardable ones, discards (with the right reasons) for the rest.
	byOp := make(map[telemetry.TraceOp]int)
	byReason := make(map[telemetry.Reason]int)
	for _, ev := range trace.Events() {
		if ev.Node != "lsr-test" {
			t.Fatalf("trace event from unexpected node %q", ev.Node)
		}
		byOp[ev.Op]++
		if ev.Op == telemetry.TraceDiscard {
			byReason[ev.Reason]++
		}
	}
	if byOp[telemetry.TraceSwap] != per {
		t.Errorf("traced %d swaps, want %d", byOp[telemetry.TraceSwap], per)
	}
	if byOp[telemetry.TraceDiscard] != 4*per {
		t.Errorf("traced %d discards, want %d", byOp[telemetry.TraceDiscard], 4*per)
	}
	for _, r := range []telemetry.Reason{
		telemetry.ReasonLookupMiss, telemetry.ReasonTTLExpired,
		telemetry.ReasonInconsistentOp, telemetry.ReasonNoRoute,
	} {
		if byReason[r] != per {
			t.Errorf("traced %d %v discards, want %d", byReason[r], r, per)
		}
	}
}

// TestConcurrentMetricsScrape runs the full telemetry surface under
// contention: shard workers forwarding, the control plane swapping RCU
// table snapshots, and two scrapers rendering the Prometheus exposition
// and reading Snapshot concurrently. Under -race this is the proof the
// metrics path shares no unsynchronised state with the fast path.
func TestConcurrentMetricsScrape(t *testing.T) {
	trace := telemetry.NewRing(1024)
	e := New(WithWorkers(4), WithQueueCap(256), WithNode("scraped"), WithTrace(trace))
	if err := e.InstallILM(100, swapNHLFE(200, "A")); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg, telemetry.Labels{"engine": "dataplane"})

	const packets = 8000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Producer: a mix of forwardable and unroutable-labelled packets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < packets; i++ {
			lbl := label.Label(100)
			if i%4 == 3 {
				lbl = 999 // lookup miss
			}
			if !submitWait(e, labelled(lbl, uint16(i%64), uint64(i))) {
				t.Error("SubmitWait refused while open")
				return
			}
		}
	}()

	// Control plane: keep publishing table snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nh := "A"
			if i%2 == 1 {
				nh = "B"
			}
			if err := e.InstallILM(100, swapNHLFE(200, nh)); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Scrapers: render the text exposition and read snapshots while the
	// engine runs.
	var scrapes int
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WriteText(&buf); err != nil {
				t.Errorf("scrape failed: %v", err)
				return
			}
			scrapes++
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Snapshot()
			_ = trace.Events()
			_ = reg.Var().String()
		}
	}()

	// Wait for the producer, then stop the background goroutines.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := e.Snapshot()
		if s.Processed() >= packets {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	e.Close()

	if scrapes == 0 {
		t.Fatal("exposition scraper never ran")
	}
	snap := e.Snapshot()
	if snap.Processed() != packets {
		t.Fatalf("processed %d, want %d", snap.Processed(), packets)
	}
	if snap.Reasons[telemetry.ReasonLookupMiss] != packets/4 {
		t.Errorf("lookup misses %d, want %d", snap.Reasons[telemetry.ReasonLookupMiss], packets/4)
	}
	// A final scrape must carry the settled counters.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mpls_dataplane_drops_total{engine="dataplane",node="scraped",reason="lookup-miss"} 2000`,
		`mpls_dataplane_forwarded_packets_total{engine="dataplane",node="scraped"} 6000`,
		"# TYPE mpls_dataplane_batch_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("final exposition missing %q", want)
		}
	}
}

// TestSubmitBatch covers the grouped enqueue path.
func TestSubmitBatch(t *testing.T) {
	e := New(WithWorkers(4))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	ps := make([]*packet.Packet, 999)
	for i := range ps {
		ps[i] = labelled(100, uint16(i), 0)
	}
	if got := e.Submit(ps, SubmitOpts{Wait: true}); got != len(ps) {
		t.Fatalf("batch accepted %d, want %d", got, len(ps))
	}
	e.Close()
	if snap := e.Snapshot(); snap.Processed() != uint64(len(ps)) {
		t.Fatalf("processed %d, want %d", snap.Processed(), len(ps))
	}
}
