package mgmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client speaks the management protocol over one TCP connection.
// Responses arrive in request order, so Call is a write-then-read and
// Batch pipelines many requests before reading any response. A Client
// is not safe for concurrent use; mplsctl runs one per node.
type Client struct {
	conn   net.Conn
	w      *bufio.Writer
	sc     *bufio.Scanner
	nextID uint64
}

// Dial connects to a node's management address. timeout bounds the
// TCP connect; zero means no bound.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mgmt: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)
	return &Client{conn: conn, w: bufio.NewWriter(conn), sc: sc}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one RPC: params is marshalled into the request,
// the response's result is unmarshalled into result (when non-nil).
// An error envelope comes back as *Error.
func (c *Client) Call(method string, params, result any) error {
	id, err := c.send(method, params)
	if err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("mgmt: %s: %w", method, err)
	}
	raw, err := c.recv(id, method)
	if err != nil {
		return err
	}
	if result == nil || raw == nil {
		return nil
	}
	if err := json.Unmarshal(raw, result); err != nil {
		return fmt.Errorf("mgmt: %s: decoding result: %w", method, err)
	}
	return nil
}

// Batch pipelines one request per element of params under the same
// method, then reads every response. It returns the raw results in
// request order; the first error envelope aborts and is returned (the
// remaining responses are drained so the connection stays usable).
func (c *Client) Batch(method string, params []any) ([]json.RawMessage, error) {
	ids := make([]uint64, len(params))
	for i, p := range params {
		id, err := c.send(method, p)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("mgmt: %s: %w", method, err)
	}
	out := make([]json.RawMessage, len(params))
	var firstErr error
	for i, id := range ids {
		raw, err := c.recv(id, method)
		if err != nil {
			if _, isEnvelope := err.(*Error); !isEnvelope {
				return nil, err // transport failure: connection is gone
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[i] = raw
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

func (c *Client) send(method string, params any) (uint64, error) {
	c.nextID++
	req := Request{V: Version, ID: c.nextID, Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return 0, fmt.Errorf("mgmt: %s: encoding params: %w", method, err)
		}
		req.Params = raw
	}
	line, err := json.Marshal(&req)
	if err != nil {
		return 0, fmt.Errorf("mgmt: %s: %w", method, err)
	}
	line = append(line, '\n')
	if _, err := c.w.Write(line); err != nil {
		return 0, fmt.Errorf("mgmt: %s: %w", method, err)
	}
	return req.ID, nil
}

func (c *Client) recv(id uint64, method string) (json.RawMessage, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("mgmt: %s: %w", method, err)
		}
		return nil, fmt.Errorf("mgmt: %s: connection closed", method)
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("mgmt: %s: decoding response: %w", method, err)
	}
	if resp.ID != id {
		return nil, fmt.Errorf("mgmt: %s: response id %d, want %d", method, resp.ID, id)
	}
	if resp.Error != nil {
		return nil, resp.Error
	}
	return resp.Result, nil
}
