package resilience

import (
	"strings"
	"testing"

	"embeddedmpls/internal/faults"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// chaosResult captures one chaos run for determinism comparison.
type chaosResult struct {
	timeline  string
	events    [telemetry.NumEvents]uint64
	delivered int
	resumed   int // packets delivered after the recovery deadline
	reordered bool
}

// runChaos is the full self-healing loop under a seeded fault schedule:
// CBR traffic over the primary a-b-d LSP, the a-b link downed
// mid-traffic, keepalive misses detecting it, the healer switching to
// the a-c-d backup, delivery resuming.
func runChaos(t *testing.T, seed int64) chaosResult {
	t.Helper()
	n := diamondNet(t)
	dst := setupDiamondLSP(t, n)

	var ev telemetry.EventCounters
	tl := &Timeline{}

	mon := NewMonitor(n, n.Sim, MonitorConfig{
		Interval: 0.005, MissThreshold: 3, Until: 0.8, Events: &ev, Timeline: tl,
	})
	h := NewHealer(n, n.Sim, HealerConfig{Seed: seed, Events: &ev, Timeline: tl})
	mon.OnDown = h.LinkDown
	mon.OnUp = h.LinkUp
	if err := mon.WatchBoth("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.Protect("l"); err != nil {
		t.Fatal(err)
	}

	inj := faults.NewInjector(n, &ev)
	if err := inj.Apply(faults.Schedule{Seed: seed, Events: []faults.Event{
		{At: 0.15, Kind: faults.LinkDown, A: "a", B: "b"},
		{At: 0.50, Kind: faults.LinkUp, A: "a", B: "b"},
	}}); err != nil {
		t.Fatal(err)
	}

	res := chaosResult{}
	var lastSeq uint64
	haveSeq := false
	n.Router("d").OnDeliver = func(p *packet.Packet) {
		res.delivered++
		if n.Sim.Now() > 0.25 {
			res.resumed++
		}
		if haveSeq && p.SeqNo <= lastSeq {
			res.reordered = true
		}
		lastSeq, haveSeq = p.SeqNo, true
	}

	for i := 0; i < 160; i++ {
		i := i
		n.Sim.Schedule(float64(i)*0.005, func() {
			p := packet.New(1, dst, 64, make([]byte, 64))
			p.Header.FlowID = 7
			p.SeqNo = uint64(i + 1)
			p.SentAt = n.Sim.Now()
			n.Router("a").Inject(p)
		})
	}
	n.Sim.Run()

	res.timeline = tl.String()
	res.events = ev.Snapshot()
	return res
}

func TestChaosRecovery(t *testing.T) {
	r := runChaos(t, 42)

	if got := r.events[telemetry.EventProtectionSwitch]; got != 1 {
		t.Errorf("protection_switch = %d, want exactly 1\ntimeline:\n%s", got, r.timeline)
	}
	// One flap counted by the injector, one per direction by the monitor.
	if got := r.events[telemetry.EventLinkFlap]; got != 3 {
		t.Errorf("link_flap = %d, want 3", got)
	}
	if got := r.events[telemetry.EventKeepaliveMiss]; got < 6 {
		t.Errorf("keepalive_miss = %d, want >= 6", got)
	}
	if got := r.events[telemetry.EventRetryExhausted]; got != 0 {
		t.Errorf("retry_exhausted = %d, want 0", got)
	}

	// Delivery resumed on the backup path after detection.
	if r.resumed == 0 {
		t.Errorf("no packets delivered after recovery\ntimeline:\n%s", r.timeline)
	}
	if r.reordered {
		t.Error("intra-flow reordering across the protection switch")
	}
	// Loss is bounded to the blackout window: 160 packets sent, the link
	// was down-but-undetected for ~20 ms (4 packets) plus a little slack.
	if r.delivered < 160-8 {
		t.Errorf("delivered %d of 160 — loss beyond the detection window", r.delivered)
	}
	if r.delivered == 160 {
		t.Error("no loss at all — the fault never bit")
	}

	// The timeline tells the story in order: detection, then switch.
	down := strings.Index(r.timeline, "monitor: a->b down")
	sw := strings.Index(r.timeline, `healer: "l" switched`)
	if down < 0 || sw < 0 || sw < down {
		t.Errorf("timeline missing detection->switch sequence:\n%s", r.timeline)
	}
	if !strings.Contains(r.timeline, "[a c d]") {
		t.Errorf("switch did not land on the backup path:\n%s", r.timeline)
	}
}

// TestChaosDeterministic is the acceptance determinism bar: same seed,
// same recovery timeline, byte for byte.
func TestChaosDeterministic(t *testing.T) {
	a := runChaos(t, 42)
	b := runChaos(t, 42)
	if a.timeline != b.timeline {
		t.Errorf("same seed produced different timelines:\n--- run 1\n%s\n--- run 2\n%s", a.timeline, b.timeline)
	}
	if a.events != b.events {
		t.Errorf("same seed produced different event counts: %v vs %v", a.events, b.events)
	}
	if a.delivered != b.delivered || a.resumed != b.resumed {
		t.Errorf("same seed produced different delivery: %d/%d vs %d/%d",
			a.delivered, a.resumed, b.delivered, b.resumed)
	}
}
