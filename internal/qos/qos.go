// Package qos implements class-of-service queueing for link transmitters
// in the network simulator. The class of a packet is the 3-bit CoS field
// of its top label stack entry — the bits the paper says "affect the
// scheduling and/or discard algorithms applied to the packet as it is
// transmitted through the network" — so eight classes exist, 7 the most
// urgent.
//
// Three schedulers are provided: a plain FIFO (the no-QoS baseline), a
// strict-priority scheduler, and a weighted round robin that divides
// bandwidth by configured weights while avoiding starvation.
package qos

import (
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// NumClasses is the number of service classes (the CoS field's range).
const NumClasses = 8

// ClassOf returns the service class of a packet: the CoS bits of the top
// label, or class 0 for unlabelled packets.
func ClassOf(p *packet.Packet) label.CoS {
	if p.Labelled() {
		top, err := p.Stack.Top()
		if err == nil {
			return top.CoS
		}
	}
	return 0
}

// Scheduler queues packets for transmission. Enqueue reports false when
// the packet was dropped (queue full); Dequeue returns the next packet to
// transmit.
type Scheduler interface {
	Enqueue(p *packet.Packet) bool
	Dequeue() (*packet.Packet, bool)
	// Len returns the number of queued packets across all classes.
	Len() int
	// Dropped returns how many packets Enqueue has rejected.
	Dropped() uint64
	// Full reports whether Enqueue of p would certainly be rejected right
	// now (its queue is at capacity). Probabilistic admission (RED) may
	// still drop a packet that Full said fits; Full never counts a drop,
	// so producers can poll it to apply backpressure instead of losing
	// packets.
	Full(p *packet.Packet) bool
}

// fifo is the no-QoS baseline: one tail-drop queue for every class. It
// is a ring buffer whose backing array grows toward cap and is then
// reused forever — the dataplane's ingress shards drain it to empty on
// every batch, and a slice-based queue would reallocate on each refill
// (the steady-state egress pump pins this path at zero allocations).
type fifo struct {
	q       []*packet.Packet // ring storage; len(q) is the grown capacity
	head    int              // index of the oldest packet
	n       int              // queued packets
	cap     int              // admission bound
	dropped uint64
}

// NewFIFO returns a single tail-drop queue holding at most capacity
// packets. Storage grows on demand, so a generous capacity costs only
// what the high-water mark actually used.
func NewFIFO(capacity int) Scheduler {
	if capacity <= 0 {
		panic(fmt.Sprintf("qos: FIFO capacity %d", capacity))
	}
	return &fifo{cap: capacity}
}

func (f *fifo) Enqueue(p *packet.Packet) bool {
	if f.n >= f.cap {
		f.dropped++
		return false
	}
	if f.n == len(f.q) {
		f.grow()
	}
	i := f.head + f.n
	if i >= len(f.q) {
		i -= len(f.q)
	}
	f.q[i] = p
	f.n++
	return true
}

// grow doubles the ring (bounded by cap), unwrapping the queued
// packets to the front of the new storage.
func (f *fifo) grow() {
	newLen := 2 * len(f.q)
	if newLen == 0 {
		newLen = 64
	}
	if newLen > f.cap {
		newLen = f.cap
	}
	nq := make([]*packet.Packet, newLen)
	for i := 0; i < f.n; i++ {
		j := f.head + i
		if j >= len(f.q) {
			j -= len(f.q)
		}
		nq[i] = f.q[j]
	}
	f.q = nq
	f.head = 0
}

func (f *fifo) Dequeue() (*packet.Packet, bool) {
	if f.n == 0 {
		return nil, false
	}
	p := f.q[f.head]
	f.q[f.head] = nil // drop the reference so the packet can be reclaimed
	f.head++
	if f.head == len(f.q) {
		f.head = 0
	}
	f.n--
	return p, true
}

func (f *fifo) Len() int                 { return f.n }
func (f *fifo) Dropped() uint64          { return f.dropped }
func (f *fifo) Full(*packet.Packet) bool { return f.n >= f.cap }

// classQueues is the shared per-class storage of the CoS schedulers.
type classQueues struct {
	q       [NumClasses][]*packet.Packet
	perCap  int
	total   int
	dropped uint64
}

func (c *classQueues) Enqueue(p *packet.Packet) bool {
	cls := ClassOf(p)
	if len(c.q[cls]) >= c.perCap {
		c.dropped++
		return false
	}
	c.q[cls] = append(c.q[cls], p)
	c.total++
	return true
}

func (c *classQueues) popFrom(cls int) *packet.Packet {
	p := c.q[cls][0]
	c.q[cls] = c.q[cls][1:]
	if len(c.q[cls]) == 0 {
		c.q[cls] = nil
	}
	c.total--
	return p
}

func (c *classQueues) Len() int        { return c.total }
func (c *classQueues) Dropped() uint64 { return c.dropped }

// Full reports whether p's class queue is at its per-class capacity.
func (c *classQueues) Full(p *packet.Packet) bool {
	return len(c.q[ClassOf(p)]) >= c.perCap
}

// priority always serves the highest non-empty class first.
type priority struct {
	classQueues
}

// NewPriority returns a strict-priority scheduler with the given per-class
// capacity. High classes can starve low ones — that is the point of
// strict priority; use NewWRR when starvation matters.
func NewPriority(perClassCapacity int) Scheduler {
	if perClassCapacity <= 0 {
		panic(fmt.Sprintf("qos: priority capacity %d", perClassCapacity))
	}
	return &priority{classQueues{perCap: perClassCapacity}}
}

func (s *priority) Dequeue() (*packet.Packet, bool) {
	for cls := NumClasses - 1; cls >= 0; cls-- {
		if len(s.q[cls]) > 0 {
			return s.popFrom(cls), true
		}
	}
	return nil, false
}

// wrr is a packet-based weighted round robin: each round, class k may
// send up to weight[k] packets. Classes with zero weight are served only
// when every weighted class is empty, so nothing deadlocks.
type wrr struct {
	classQueues
	weights [NumClasses]int
	credit  [NumClasses]int
	cursor  int
}

// NewWRR returns a weighted-round-robin scheduler. Weights must be
// non-negative and at least one must be positive.
func NewWRR(perClassCapacity int, weights [NumClasses]int) Scheduler {
	if perClassCapacity <= 0 {
		panic(fmt.Sprintf("qos: WRR capacity %d", perClassCapacity))
	}
	any := false
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("qos: negative WRR weight %d", w))
		}
		if w > 0 {
			any = true
		}
	}
	if !any {
		panic("qos: all WRR weights are zero")
	}
	return &wrr{classQueues: classQueues{perCap: perClassCapacity}, weights: weights}
}

func (s *wrr) Dequeue() (*packet.Packet, bool) {
	if s.total == 0 {
		return nil, false
	}
	// Scan at most two full rounds: one to spend remaining credit, one
	// after a refill.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < NumClasses; i++ {
			cls := (s.cursor + i) % NumClasses
			if len(s.q[cls]) > 0 && s.credit[cls] > 0 {
				s.credit[cls]--
				if s.credit[cls] == 0 {
					s.cursor = (cls + 1) % NumClasses
				} else {
					s.cursor = cls
				}
				return s.popFrom(cls), true
			}
		}
		// Refill every class's credit for the next round.
		for cls := range s.credit {
			s.credit[cls] = s.weights[cls]
		}
	}
	// Only zero-weight classes hold packets: serve the highest.
	for cls := NumClasses - 1; cls >= 0; cls-- {
		if len(s.q[cls]) > 0 {
			return s.popFrom(cls), true
		}
	}
	return nil, false
}
