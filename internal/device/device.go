// Package device assembles the full embedded MPLS device of the paper's
// Figure 6: an ingress packet processing interface that extracts the
// label stack and packet identifier from a packet, the label stack
// modifier in the middle, and an egress packet processing interface that
// splices the modified stack back. Routing functionality (package ldp)
// configures it by writing label pairs into the information base and a
// software next-hop table.
//
// The data plane transformation runs on the lsm.Behavioral functional
// model (bit-identical to the RTL, as the lsm equivalence tests prove)
// while time is accounted with the verified cycle cost model at the
// device clock (50 MHz by default): loading the stack costs the
// 3-cycles-per-entry user pushes of the ingress interface, and the update
// costs its measured search + operation tail.
package device

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// Device is one embedded MPLS forwarding engine.
type Device struct {
	mod    *lsm.Behavioral
	clock  lsm.Clock
	search lsm.SearchKind

	// The hardware information base stores only (index, label, op);
	// next-hop selection and per-FEC CoS live in these software tables,
	// keyed by the exact destination address (ingress) or the incoming
	// label (transit). The empty string means "re-examine locally", used
	// at tunnel tails.
	nextHopByDst   map[packet.Addr]string
	nextHopByLabel map[label.Label]string
	cosByDst       map[packet.Addr]label.CoS

	// TotalCycles accumulates the device cycles spent across Process
	// calls, for throughput accounting.
	TotalCycles uint64

	// drops, when set, receives one count per dropped packet. Discard
	// accounting lives here rather than in the modifier so a drop is
	// counted exactly once, wherever in the pipeline it happens.
	drops *telemetry.DropCounters
}

// Device errors.
var (
	ErrMultiPush = errors.New("device: hardware pushes one label per information base entry")
	ErrNoOp      = errors.New("device: unsupported NHLFE operation")
)

// New builds a device of the given router type (LER for edges, LSR for
// core routers — an LSR discards unlabelled packets) running at clock,
// with the paper's linear information base search.
func New(rtype lsm.RouterType, clock lsm.Clock) *Device {
	return NewWithSearch(rtype, clock, lsm.SearchLinear)
}

// NewWithSearch builds a device with the given search implementation —
// lsm.SearchCAM selects the associative-lookup ablation, whose constant
// search time is pinned against the CAM-configured RTL model.
func NewWithSearch(rtype lsm.RouterType, clock lsm.Clock, search lsm.SearchKind) *Device {
	return &Device{
		mod:            lsm.NewBehavioral(rtype),
		clock:          clock,
		search:         search,
		nextHopByDst:   make(map[packet.Addr]string),
		nextHopByLabel: make(map[label.Label]string),
		cosByDst:       make(map[packet.Addr]label.CoS),
	}
}

// Clock returns the device clock.
func (d *Device) Clock() lsm.Clock { return d.clock }

// SetTelemetry attaches the unified sink (the plane.Plane hook): the
// trace ring goes to the modifier, which records every update; drop
// counting stays at the device level, covering the whole pipeline
// (ingress overflow, modifier discards, next-hop misses).
func (d *Device) SetTelemetry(s telemetry.Sink) {
	d.drops = s.Drops
	d.mod.SetTrace(s.Trace, s.Node)
}

// ProcessPacket is Process under the unified plane contract; cycle
// accounting still accumulates in TotalCycles.
func (d *Device) ProcessPacket(p *packet.Packet) swmpls.Result {
	res, _ := d.Process(p)
	return res
}

// dropRes builds a drop result and feeds the attached counters.
func (d *Device) dropRes(reason swmpls.DropReason) swmpls.Result {
	if d.drops != nil {
		if r, ok := reason.Telemetry(); ok {
			d.drops.Inc(r)
		}
	}
	return swmpls.Result{Action: swmpls.Drop, Drop: reason}
}

// InstallFEC binds an exact destination address to a label push. The
// hardware's level-1 memory exact-matches the 32-bit packet identifier,
// so FECs are host addresses (prefixLen must be 32) and push exactly one
// label — both restrictions of the embedded architecture that the
// software forwarder does not share.
func (d *Device) InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if prefixLen != 32 {
		return fmt.Errorf("device: level-1 lookups exact-match the packet identifier; prefix /%d unsupported", prefixLen)
	}
	if n.Op != label.OpPush {
		return fmt.Errorf("%w: FEC entries must push", ErrNoOp)
	}
	if len(n.PushLabels) != 1 {
		return fmt.Errorf("%w: got %d labels", ErrMultiPush, len(n.PushLabels))
	}
	// Replace semantics: the linear search returns the first match, so a
	// stale pair for the same destination would shadow the new one (and
	// break make-before-break reroutes). Remove it first.
	d.mod.InfoBase().Remove(infobase.Level1, infobase.Key(dst))
	err := d.mod.WritePair(infobase.Level1, infobase.Pair{
		Index:    infobase.Key(dst),
		NewLabel: n.PushLabels[0],
		Op:       label.OpPush,
	})
	if err != nil {
		return err
	}
	d.nextHopByDst[dst] = n.NextHop
	d.cosByDst[dst] = n.CoS
	return nil
}

// InstallILM binds an incoming label to an operation. The pair is written
// to both level 2 and level 3, because the same label can arrive as the
// top of a one-entry stack or inside a tunnel at depth two or three.
func (d *Device) InstallILM(in label.Label, n swmpls.NHLFE) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if !in.Valid() || in.Reserved() {
		return fmt.Errorf("device: incoming label %d invalid or reserved", in)
	}
	var out label.Label
	switch n.Op {
	case label.OpSwap, label.OpPush:
		if len(n.PushLabels) != 1 {
			return fmt.Errorf("%w: got %d labels", ErrMultiPush, len(n.PushLabels))
		}
		out = n.PushLabels[0]
	case label.OpPop:
	default:
		return fmt.Errorf("%w: %v", ErrNoOp, n.Op)
	}
	p := infobase.Pair{Index: infobase.Key(in), NewLabel: out, Op: n.Op}
	if err := d.mod.WritePair(infobase.Level2, p); err != nil {
		return err
	}
	if err := d.mod.WritePair(infobase.Level3, p); err != nil {
		return err
	}
	d.nextHopByLabel[in] = n.NextHop
	return nil
}

// RemoveILM tears down a label binding.
func (d *Device) RemoveILM(in label.Label) {
	d.mod.InfoBase().Remove(infobase.Level2, infobase.Key(in))
	d.mod.InfoBase().Remove(infobase.Level3, infobase.Key(in))
	delete(d.nextHopByLabel, in)
}

// RemoveFEC tears down an ingress binding.
func (d *Device) RemoveFEC(dst packet.Addr, prefixLen int) {
	if prefixLen != 32 {
		return
	}
	d.mod.InfoBase().Remove(infobase.Level1, infobase.Key(dst))
	delete(d.nextHopByDst, dst)
	delete(d.cosByDst, dst)
}

// TableSizes returns the number of pairs at each information base level,
// for search-cost diagnostics.
func (d *Device) TableSizes() [infobase.NumLevels]int {
	var out [infobase.NumLevels]int
	for lv := infobase.Level1; lv <= infobase.Level3; lv++ {
		out[lv-1] = d.mod.InfoBase().Count(lv)
	}
	return out
}

// Process runs one packet through the device: ingress interface loads the
// stack into the modifier, the modifier updates it, the egress interface
// splices it back. It returns the forwarding decision and the number of
// device cycles consumed.
func (d *Device) Process(p *packet.Packet) (swmpls.Result, int) {
	// Ingress packet processing: deliver the label stack to the
	// modifier, one user push per entry (3 cycles each).
	wasLabelled := p.Labelled()
	var oldTop label.Entry
	d.mod.Reset()
	cycles := 0
	for _, e := range p.Stack.Entries() {
		if err := d.mod.UserPush(e); err != nil {
			// Deeper than the hardware supports: the ingress interface
			// cannot represent the packet; drop it.
			return d.dropRes(swmpls.DropStackOverflow), cycles
		}
		cycles += lsm.CyclesUserPush
	}
	if wasLabelled {
		oldTop, _ = p.Stack.Top()
	}

	res := d.mod.Update(lsm.UpdateRequest{
		PacketID: p.Identifier(),
		TTLIn:    p.Header.TTL,
		CoSIn:    d.cosByDst[p.Header.Dst],
	})
	cycles += lsm.UpdateCyclesFor(d.search, res)
	d.TotalCycles += uint64(cycles)

	if res.Discarded() {
		drop := res.Discard.Drop()
		// An unlabelled packet the device cannot handle — no level-1
		// match, or an LSR that only takes labelled traffic — has no
		// MPLS route; the software side may still route it by IP.
		if !wasLabelled && (res.Discard == lsm.DiscardNotFound || res.Discard == lsm.DiscardInconsistent) {
			drop = swmpls.DropNoRoute
		}
		return d.dropRes(drop), cycles
	}

	// Egress packet processing: replace the packet's stack.
	p.Stack = d.mod.Stack().Clone()

	// Next-hop selection (software table, like the routing functionality
	// the architecture assumes).
	var nh string
	var known bool
	if wasLabelled {
		nh, known = d.nextHopByLabel[oldTop.Label]
	} else {
		nh, known = d.nextHopByDst[p.Header.Dst]
	}
	if !known {
		return d.dropRes(swmpls.DropNoRoute), cycles
	}

	if res.Op == label.OpPop && p.Stack.Empty() {
		// End of the LSP: the egress interface writes the decremented
		// TTL back into the IP header (RFC 3032 TTL propagation).
		ttl := oldTop.TTL
		if ttl > 0 {
			ttl--
		}
		p.Header.TTL = ttl
		if nh == "" {
			return swmpls.Result{Action: swmpls.Deliver, Op: res.Op}, cycles
		}
		return swmpls.Result{Action: swmpls.Forward, NextHop: nh, Op: res.Op}, cycles
	}
	return swmpls.Result{Action: swmpls.Forward, NextHop: nh, Op: res.Op}, cycles
}

// Seconds converts device cycles to wall time at the device clock.
func (d *Device) Seconds(cycles int) float64 { return d.clock.Seconds(cycles) }
