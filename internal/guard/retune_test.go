package guard

import "testing"

// TestRetuneEnablesRateLimit arms a rate limit on a guard built without
// one: the bucket must start full (a retune is not a penalty) and then
// actually limit.
func TestRetuneEnablesRateLimit(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now))
	g.Advertise("b", 100)
	if !g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Fatal("unlimited guard rejected a clean packet")
	}

	g.SetDefaultPolicy(Policy{RatePPS: 1, Burst: 2})
	admitted := 0
	for i := 0; i < 5; i++ {
		if g.Admit(labelled(t, 100, 0, 64), "b") {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("admitted %d of 5 at burst 2, want 2", admitted)
	}
	// Refill: one token per second.
	clk.advance(1)
	if !g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Error("no admit after a full refill interval")
	}
}

// TestRetuneShrinkingBurstCapsTokens shrinks the burst and expects the
// bucket clamped, not left holding the old credit.
func TestRetuneShrinkingBurstCapsTokens(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now), WithDefaultPolicy(Policy{RatePPS: 1, Burst: 100}))
	g.Advertise("b", 100)
	// Touch the link state so the bucket exists at 100 tokens.
	if !g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Fatal("first packet rejected")
	}
	g.SetDefaultPolicy(Policy{RatePPS: 1, Burst: 2})
	admitted := 0
	for i := 0; i < 10; i++ {
		if g.Admit(labelled(t, 100, 0, 64), "b") {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("admitted %d of 10 after shrink to burst 2, want 2", admitted)
	}
}

// TestRetunePreservesAdvertisedAndQuarantine checks a retune keeps the
// label filter state: advertised labels stay admitted and a
// quarantined peer stays quarantined until its hold expires.
func TestRetunePreservesAdvertisedAndQuarantine(t *testing.T) {
	clk := &manualClock{}
	g := New(
		WithClock(clk.now),
		WithDefaultPolicy(Policy{QuarantineThreshold: 2, QuarantineWindow: 1, QuarantineHold: 10}),
	)
	g.Advertise("b", 100)
	g.Malformed("b")
	g.Malformed("b")
	if !g.Quarantined("b") {
		t.Fatal("peer not quarantined after threshold malformed frames")
	}

	g.SetLinkPolicy("b", Policy{RatePPS: 1000, Burst: 100, QuarantineThreshold: 2, QuarantineWindow: 1, QuarantineHold: 10})
	if !g.Quarantined("b") {
		t.Error("retune cleared quarantine")
	}
	if !g.Advertised("b", 100) {
		t.Error("retune dropped the advertised label")
	}
	// Past the hold the peer recovers and the new rate policy governs.
	clk.advance(11)
	if g.Quarantined("b") {
		t.Error("quarantine did not expire")
	}
	if !g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Error("advertised label rejected after quarantine expiry")
	}
}

// TestSetLinkPolicyCreatesState retunes a peer the guard has never seen
// and expects the override to stick.
func TestSetLinkPolicyCreatesState(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now))
	g.SetLinkPolicy("new-peer", Policy{MinTTL: 5})
	g.Advertise("new-peer", 100)
	if !g.Admit(labelled(t, 100, 0, 8), "new-peer") {
		t.Error("TTL 8 rejected with floor 5")
	}
	if g.Admit(labelled(t, 100, 0, 2), "new-peer") {
		t.Error("TTL 2 admitted with floor 5")
	}
}

// TestDefaultPolicyReadback checks SetDefaultPolicy round-trips
// as-configured through DefaultPolicy, while link state runs with
// defaults applied.
func TestDefaultPolicyReadback(t *testing.T) {
	g := New()
	g.SetDefaultPolicy(Policy{RatePPS: 250})
	got := g.DefaultPolicy()
	if got.RatePPS != 250 {
		t.Errorf("RatePPS = %v, want 250", got.RatePPS)
	}
	if got.Burst != 0 {
		t.Errorf("Burst = %d, want 0 (as configured, defaults apply per link)", got.Burst)
	}
	if eff := got.withDefaults(); eff.Burst <= 0 {
		t.Errorf("effective Burst = %d, want a positive default", eff.Burst)
	}
}
