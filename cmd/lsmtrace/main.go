// lsmtrace regenerates the waveform figures of the paper's evaluation
// (Figures 14-16) from the cycle-accurate label stack modifier, as a
// transition table, an ASCII waveform, or a VCD file for a waveform
// viewer.
//
// Usage:
//
//	lsmtrace -fig 14 [-format table|wave|vcd] [-o out.vcd]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 14, "figure to regenerate: 14, 15 or 16")
	op := flag.String("op", "", "trace an update operation instead: swap, pop, push or miss")
	format := flag.String("format", "table", "output format: table, wave or vcd")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var (
		trace *lsm.FigureTrace
		err   error
	)
	switch {
	case *op != "":
		trace, err = lsm.TraceUpdate(*op)
	case *fig == 14:
		trace, err = lsm.Figure14()
	case *fig == 15:
		trace, err = lsm.Figure15()
	case *fig == 16:
		trace, err = lsm.Figure16()
	default:
		log.Fatalf("lsmtrace: no figure %d (have 14, 15, 16)", *fig)
	}
	if err != nil {
		log.Fatalf("lsmtrace: %v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("lsmtrace: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("lsmtrace: close: %v", err)
			}
		}()
		w = f
	}

	fmt.Fprintf(w, "%s — %s\n", trace.Name, trace.Caption)
	if *op == "" {
		fmt.Fprintf(w, "lookup: found=%v label_out=%d operation_out=%v position=%d cycles=%d (3n+5 model: %d)\n",
			trace.Result.Found, trace.Result.Label, trace.Result.Op,
			trace.Result.SearchPos, trace.Cycles, lsm.SearchCycles(trace.Result.SearchPos))
	}
	fmt.Fprintln(w)

	switch *format {
	case "table":
		err = trace.Tracer.WriteTable(w)
	case "wave":
		err = trace.Tracer.WriteWave(w)
	case "vcd":
		err = trace.Tracer.WriteVCD(w, fmt.Sprintf("figure%d", *fig), time.Now())
	default:
		log.Fatalf("lsmtrace: unknown format %q", *format)
	}
	if err != nil {
		log.Fatalf("lsmtrace: %v", err)
	}
	if *op != "" {
		if err := replayTelemetry(w, *op); err != nil {
			log.Fatalf("lsmtrace: %v", err)
		}
	}
}

// replayTelemetry runs the same update the RTL waveform shows through
// the behavioral reference model with a telemetry ring attached, so the
// signal-level trace can be read side by side with the label-operation
// event it amounts to.
func replayTelemetry(w io.Writer, op string) error {
	var stored label.Op
	switch op {
	case "swap":
		stored = label.OpSwap
	case "pop":
		stored = label.OpPop
	case "push":
		stored = label.OpPush
	case "miss":
		stored = label.OpSwap
	default:
		return fmt.Errorf("unknown update trace op %q (swap, pop, push, miss)", op)
	}
	ring := telemetry.NewRing(4)
	m := lsm.NewBehavioral(lsm.LSR)
	m.SetTrace(ring, "lsm")
	if err := m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: stored}); err != nil {
		return err
	}
	carried := label.Label(42)
	if op == "miss" {
		carried = 27
	}
	if err := m.UserPush(label.Entry{Label: carried, CoS: 3, TTL: 64}); err != nil {
		return err
	}
	m.Update(lsm.UpdateRequest{})
	fmt.Fprintln(w, "\ntelemetry event (behavioral reference model):")
	return ring.Dump(w)
}
