package netsim

import (
	"math"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
)

func labelEntry(cos uint8) label.Entry {
	return label.Entry{Label: 100, CoS: label.CoS(cos), TTL: 63}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(2, func() { order = append(order, 2) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(1, func() { order = append(order, 11) }) // same time, later seq
	s.Schedule(0, func() { order = append(order, 0) })
	s.Run()
	want := []int{0, 1, 11, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 2 {
		t.Errorf("clock = %g, want 2", s.Now())
	}
	if s.Processed != 4 {
		t.Errorf("processed = %d", s.Processed)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(0.5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(5, func() { fired = true })
	s.RunUntil(3)
	if fired || s.Now() != 3 {
		t.Errorf("fired=%v now=%g", fired, s.Now())
	}
	s.RunUntil(10)
	if !fired || s.Now() != 10 {
		t.Errorf("fired=%v now=%g", fired, s.Now())
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay accepted")
		}
	}()
	s.Schedule(-1, func() {})
}

// sink records arrivals with their times.
type sink struct {
	name     string
	sim      *Simulator
	arrivals []arrival
}

type arrival struct {
	p    *packet.Packet
	from string
	at   Time
}

func (s *sink) Name() string { return s.name }
func (s *sink) Receive(p *packet.Packet, from string) {
	s.arrivals = append(s.arrivals, arrival{p, from, s.sim.Now()})
}

func TestLinkLatencyModel(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	// 1 Mbit/s, 1 ms propagation.
	l := NewLink(sim, "src", dst, 1e6, 0.001, qos.NewFIFO(16))
	p := packet.New(1, 2, 64, make([]byte, 111)) // 111+14 = 125 bytes = 1000 bits
	l.Send(p)
	sim.Run()
	if len(dst.arrivals) != 1 {
		t.Fatalf("%d arrivals", len(dst.arrivals))
	}
	// 1000 bits / 1 Mbps = 1 ms serialisation + 1 ms propagation = 2 ms.
	if got := dst.arrivals[0].at; math.Abs(got-0.002) > 1e-12 {
		t.Errorf("arrival at %g, want 0.002", got)
	}
	if dst.arrivals[0].from != "src" {
		t.Errorf("from = %q", dst.arrivals[0].from)
	}
	if l.Sent.Events != 1 || l.Delivered.Events != 1 {
		t.Errorf("sent=%d delivered=%d", l.Sent.Events, l.Delivered.Events)
	}
}

func TestLinkSerialisesBackToBack(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 1e6, 0, qos.NewFIFO(16))
	for i := 0; i < 3; i++ {
		l.Send(packet.New(1, 2, 64, make([]byte, 111))) // 1 ms each
	}
	sim.Run()
	if len(dst.arrivals) != 3 {
		t.Fatalf("%d arrivals", len(dst.arrivals))
	}
	for i, want := range []Time{0.001, 0.002, 0.003} {
		if math.Abs(dst.arrivals[i].at-want) > 1e-12 {
			t.Errorf("arrival %d at %g, want %g", i, dst.arrivals[i].at, want)
		}
	}
	// Transmitter was busy the whole 3 ms.
	if u := l.Utilisation(); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilisation = %g, want 1", u)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 1e6, 0, qos.NewFIFO(2))
	// First Send dequeues immediately into the transmitter, so capacity
	// 2 + 1 in flight = 3 accepted, 4th and 5th dropped.
	for i := 0; i < 5; i++ {
		l.Send(packet.New(1, 2, 64, make([]byte, 111)))
	}
	sim.Run()
	if len(dst.arrivals) != 3 {
		t.Errorf("%d arrivals, want 3", len(dst.arrivals))
	}
	if drops := l.Queue().Dropped(); drops != 2 {
		t.Errorf("drops = %d, want 2", drops)
	}
	if l.Sent.Events != 5 {
		t.Errorf("sent = %d", l.Sent.Events)
	}
}

func TestLinkPriorityQueueReordersUnderLoad(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 1e6, 0, qos.NewPriority(16))
	mk := func(cos uint8) *packet.Packet {
		p := packet.New(1, 2, 64, make([]byte, 111))
		if err := p.Stack.Push(labelEntry(cos)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// The first packet seizes the transmitter; the rest queue and must
	// leave in priority order.
	l.Send(mk(0))
	l.Send(mk(1))
	l.Send(mk(7))
	l.Send(mk(3))
	sim.Run()
	var classes []uint8
	for _, a := range dst.arrivals {
		classes = append(classes, uint8(qos.ClassOf(a.p)))
	}
	want := []uint8{0, 7, 3, 1}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("service order %v, want %v", classes, want)
		}
	}
}

func TestLinkConstructorPanics(t *testing.T) {
	sim := New()
	dst := &sink{name: "d", sim: sim}
	assertPanics(t, "zero rate", func() { NewLink(sim, "s", dst, 0, 0, qos.NewFIFO(1)) })
	assertPanics(t, "negative delay", func() { NewLink(sim, "s", dst, 1, -1, qos.NewFIFO(1)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
