package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame Relay framing: a 2-byte address field carrying a 10-bit DLCI and
// the FECN/BECN/DE congestion bits, the payload, and a CRC-16 frame check
// sequence (CCITT polynomial, as used on Frame Relay links).
const (
	frHeaderSize = 2
	frFCSSize    = 2
	// MaxDLCI is the largest data link connection identifier (10 bits).
	MaxDLCI = 1<<10 - 1
)

// Frame Relay errors.
var (
	ErrDLCIRange = errors.New("frame: DLCI exceeds 10 bits")
	ErrBadFRFCS  = errors.New("frame: Frame Relay FCS mismatch")
)

// FrameRelayFrame is one Frame Relay frame.
type FrameRelayFrame struct {
	DLCI    uint16
	FECN    bool // forward explicit congestion notification
	BECN    bool // backward explicit congestion notification
	DE      bool // discard eligibility
	Payload []byte
}

// EncodeFrameRelay wraps payload in a Frame Relay frame.
func EncodeFrameRelay(f FrameRelayFrame) ([]byte, error) {
	if f.DLCI > MaxDLCI {
		return nil, fmt.Errorf("%w: %d", ErrDLCIRange, f.DLCI)
	}
	// Address field: DLCI split 6/4 across the two bytes, with the
	// congestion bits in the low half of the second byte and the EA bit
	// terminating the field.
	hi := byte(f.DLCI>>4) << 2
	lo := byte(f.DLCI&0xf) << 4
	if f.FECN {
		lo |= 1 << 3
	}
	if f.BECN {
		lo |= 1 << 2
	}
	if f.DE {
		lo |= 1 << 1
	}
	lo |= 1 // EA: last address byte
	buf := make([]byte, 0, frHeaderSize+len(f.Payload)+frFCSSize)
	buf = append(buf, hi, lo)
	buf = append(buf, f.Payload...)
	buf = binary.BigEndian.AppendUint16(buf, crc16CCITT(buf))
	return buf, nil
}

// DecodeFrameRelay validates the FCS and splits the frame.
func DecodeFrameRelay(buf []byte) (*FrameRelayFrame, error) {
	if len(buf) < frHeaderSize+frFCSSize {
		return nil, ErrFrameTooShort
	}
	body, fcs := buf[:len(buf)-frFCSSize], binary.BigEndian.Uint16(buf[len(buf)-frFCSSize:])
	if crc16CCITT(body) != fcs {
		return nil, ErrBadFRFCS
	}
	hi, lo := body[0], body[1]
	f := &FrameRelayFrame{
		DLCI:    uint16(hi>>2)<<4 | uint16(lo>>4),
		FECN:    lo&(1<<3) != 0,
		BECN:    lo&(1<<2) != 0,
		DE:      lo&(1<<1) != 0,
		Payload: append([]byte(nil), body[frHeaderSize:]...),
	}
	return f, nil
}

// crc16CCITT computes the CCITT CRC-16 (polynomial 0x1021, initial value
// 0xffff) used by Frame Relay and HDLC.
func crc16CCITT(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
