package transport

import (
	"time"

	"embeddedmpls/internal/telemetry"
)

// config collects everything Dial, Listen and Pair can be configured
// with. The package follows the repository's functional-option
// convention (see DESIGN.md): one unexported config struct, one
// `Option func(*config)` type, `WithX` constructors, and variadic
// constructors that apply them over defaults.
type config struct {
	src           NodeID
	peer          string
	names         []string
	batch         int
	coalesce      int
	sysBatch      int
	flushInterval time.Duration
	readBuffer    int
	metrics       *Metrics
	drop          func(telemetry.Reason)
	now           func() float64
	preAdmit      func(peer string, labelled bool) bool
	malformed     func(peer string)
}

func defaultConfig() config {
	return config{
		batch:         32,
		coalesce:      1,
		sysBatch:      32,
		flushInterval: 200 * time.Microsecond,
		readBuffer:    64 << 10,
	}
}

// Option configures a transport link, receiver or pair.
type Option func(*config)

// WithSource sets the NodeID stamped into every datagram a link sends —
// the index of the sending node in the topology's node table.
func WithSource(id NodeID) Option {
	return func(c *config) { c.src = id }
}

// WithPeer fixes the remote node name of a single-peer receiver: every
// datagram arriving on the socket is attributed to this neighbour,
// regardless of the NodeID it carries. The per-link sockets built by
// Pair use it.
func WithPeer(name string) Option {
	return func(c *config) { c.peer = name }
}

// WithNames installs the node table of a shared receive socket: the
// datagram's NodeID indexes it to recover the sending node's name. Out
// of range ids resolve to an empty name (and WithPeer, if set, wins).
func WithNames(names []string) Option {
	return func(c *config) { c.names = names }
}

// WithBatch sets the receiver's batch size: how many decoded packets
// are accumulated (bounded by WithFlushInterval) before the sink runs.
// Values below one are clamped to one.
func WithBatch(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.batch = n
	}
}

// WithCoalesce sets how many packets a link packs into one coalesced
// frame datagram (see frame.go): n <= 1 disables coalescing (one
// datagram per packet, the legacy wire behaviour), larger values
// amortise per-datagram and per-syscall cost across n packets at the
// price of up to one flush interval of added latency on the Send path.
// Clamped to [1, MaxFramePackets].
func WithCoalesce(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		if n > MaxFramePackets {
			n = MaxFramePackets
		}
		c.coalesce = n
	}
}

// WithSysBatch sets how many datagrams one send or receive syscall
// moves (sendmmsg/recvmmsg). On platforms without the batched syscalls
// it only sizes the receiver's buffer ring; datagrams then cost one
// syscall each. Clamped to [1, 128].
func WithSysBatch(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		if n > 128 {
			n = 128
		}
		c.sysBatch = n
	}
}

// WithFlushInterval bounds how long a receiver waits for a batch to
// fill once at least one packet is pending. Smaller values bound added
// latency; larger ones amortise sink calls.
func WithFlushInterval(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.flushInterval = d
		}
	}
}

// WithReadBuffer sets the receive socket's kernel buffer (SO_RCVBUF)
// in bytes: the headroom for bursts arriving faster than the read loop
// drains them.
func WithReadBuffer(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.readBuffer = n
		}
	}
}

// WithMetrics attaches shared per-link transport counters; several
// links and receivers may share one Metrics to aggregate a node's
// whole transport plane.
func WithMetrics(m *Metrics) Option {
	return func(c *config) { c.metrics = m }
}

// WithDropCounters attaches the unified drop taxonomy: datagrams that
// fail to decode are counted under telemetry.ReasonWireDecode, and
// packets a link loses (down, closed, fault-eaten) under the reason
// the loss maps to.
func WithDropCounters(d *telemetry.DropCounters) Option {
	return func(c *config) {
		if d == nil {
			c.drop = nil
			return
		}
		c.drop = d.Inc
	}
}

// WithDropFunc attaches drop accounting through an indirection instead
// of a concrete counter set — router.Network uses it so a telemetry
// sink attached after the sockets exist still sees transport drops.
func WithDropFunc(fn func(telemetry.Reason)) Option {
	return func(c *config) { c.drop = fn }
}

// WithPreAdmit installs a pre-decode admission hook on a receiver: it
// runs with only the peeked header bits (attributed peer, labelled
// flag) before any decode work, and a false return discards the
// datagram silently — the hook owns the drop accounting. The ingress
// guard's quarantine breaker uses it to stop a garbage flood from
// burning decode CPU.
func WithPreAdmit(fn func(peer string, labelled bool) bool) Option {
	return func(c *config) { c.preAdmit = fn }
}

// WithMalformedFunc reports each wire-decode failure with the peer it
// was attributed to (via WithPeer, or the datagram's claimed NodeID
// when the header survives enough to carry one; "" when
// unattributable). The ingress guard's quarantine breaker feeds on it.
func WithMalformedFunc(fn func(peer string)) Option {
	return func(c *config) { c.malformed = fn }
}

// WithClock supplies the time source fault hooks are evaluated
// against, in seconds — under the real-time network pump this is the
// simulator's clock, so seeded fault windows line up with scheduled
// injections. Defaults to wall time since the link was created.
func WithClock(now func() float64) Option {
	return func(c *config) { c.now = now }
}
