package config

import (
	"strings"
	"testing"
)

func loadScenario(t *testing.T, js string) *Scenario {
	t.Helper()
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const overridesBase = `{
  "name": "ov",
  "duration_s": 1,
  "nodes": [{"name": "a"}, {"name": "b"}],
  "links": [{"a": "a", "b": "b", "rate_mbps": 10, "delay_ms": 0.1}],
  "transport": {"kind": "udp", "coalesce": 2,
    "nodes": {"a": "127.0.0.1:19001", "b": "127.0.0.1:19002"}},
  "guard": {"spoof_filter": true, "rate_pps": 100}
}`

// TestOverridesApply checks the single merge path: batching knobs onto
// the transport section, guard keys onto the guard section, untouched
// keys preserved.
func TestOverridesApply(t *testing.T) {
	s := loadScenario(t, overridesBase)
	o := &Overrides{Coalesce: 8, SysBatch: 16, Guard: "rate_pps=500,ttl_min=2"}
	if o.Empty() {
		t.Fatal("non-trivial overrides reported Empty")
	}
	if err := o.Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Transport.Coalesce != 8 || s.Transport.SysBatch != 16 {
		t.Errorf("transport = %+v, want coalesce 8 sysbatch 16", s.Transport)
	}
	if s.Guard.RatePPS != 500 || s.Guard.TTLMin != 2 {
		t.Errorf("guard = %+v, want rate_pps 500 ttl_min 2", s.Guard)
	}
	// Unmentioned guard keys keep their file-configured values.
	if !s.Guard.SpoofFilter {
		t.Error("override clobbered spoof_filter")
	}
}

// TestOverridesZeroValuesLeaveScenarioAlone checks zero-valued knobs do
// not zero out file configuration.
func TestOverridesZeroValuesLeaveScenarioAlone(t *testing.T) {
	s := loadScenario(t, overridesBase)
	var o Overrides
	if !o.Empty() {
		t.Error("zero overrides not Empty")
	}
	if err := o.Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Transport.Coalesce != 2 {
		t.Errorf("coalesce = %d, want the file's 2", s.Transport.Coalesce)
	}
	if s.Guard.RatePPS != 100 {
		t.Errorf("rate_pps = %v, want the file's 100", s.Guard.RatePPS)
	}
	if err := (*Overrides)(nil).Apply(s); err != nil {
		t.Errorf("nil overrides: %v", err)
	}
}

// TestOverridesGuardCreatesSection applies a guard spec to a scenario
// whose file has no guard section.
func TestOverridesGuardCreatesSection(t *testing.T) {
	s := loadScenario(t, overridesBase)
	s.Guard = nil
	o := &Overrides{Guard: "spoof_filter=true"}
	if err := o.Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Guard == nil || !s.Guard.SpoofFilter {
		t.Errorf("guard = %+v, want a created section with spoof_filter", s.Guard)
	}
	// Booleans are assignable both ways.
	if err := (&Overrides{Guard: "spoof_filter=false"}).Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Guard.SpoofFilter {
		t.Error("spoof_filter=false did not apply")
	}
}

// TestOverridesRejectBadSpecs checks Validate and Apply agree on what a
// bad spec is.
func TestOverridesRejectBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nonsense",      // not key=value
		"bogus_key=1",   // unknown key
		"rate_pps=fast", // unparseable value
		"ttl_min=not-an-int",
	} {
		o := &Overrides{Guard: spec}
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%q) passed", spec)
		}
		s := loadScenario(t, overridesBase)
		if err := o.Apply(s); err == nil {
			t.Errorf("Apply(%q) passed", spec)
		}
	}
}

// TestOverridesNoTransportSection applies batching overrides to a
// scenario without a transport section — they are a no-op, not a panic.
func TestOverridesNoTransportSection(t *testing.T) {
	s := loadScenario(t, overridesBase)
	s.Transport = nil
	if err := (&Overrides{Coalesce: 4, SysBatch: 8}).Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Transport != nil {
		t.Error("Apply invented a transport section")
	}
}
