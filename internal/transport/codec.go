// Package transport moves labeled packets between router nodes over
// real sockets: a canonical binary wire codec plus a UDP link layer
// that implements the netsim.Wire contract, so the same topology specs
// that wire an in-process simulated network can wire routers across
// OS processes instead.
//
// The codec is the seam the paper draws between its two packet
// processing interfaces: the ingress interface extracts the label
// stack and packet identifier from the wire, the egress interface
// splices the modified stack back in. On the wire a packet is a small
// versioned transport header (packet id, CoS, trace context), the RFC
// 3032 label stack (top entry first, exactly as package label encodes
// it), the network-layer header, and the payload.
//
// Performance is first-class: encode appends into caller-owned (or
// pooled) buffers and decode reuses the target packet's stack and
// payload storage, so both are allocation-free at steady state — the
// codec benchmark pins 0 allocs/op.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// NodeID identifies the sending node inside a transport domain: an
// index into the topology's node table, carried in every datagram so a
// shared receive socket can attribute arrivals to the right adjacency.
type NodeID uint16

// Wire format constants.
const (
	// Version is the wire format version this package speaks. Decoding
	// rejects every other version instead of guessing.
	Version = 1

	// magic0/magic1 open every datagram — the transport-level analogue
	// of an Ethertype, so a foreign datagram hitting the port is
	// rejected before any field is trusted.
	magic0 = 0xE5
	magic1 = 0x4D

	// flagLabelled marks a datagram that carries an MPLS label stack
	// between the transport header and the network-layer header.
	flagLabelled = 1 << 0

	// flagFrame marks a coalesced frame: the datagram is not one packet
	// but a counted sequence of length-prefixed packet encodings (see
	// frame.go). The bit lives in the flags byte so a receiver can route
	// a datagram to the right decoder after reading four bytes.
	flagFrame = 1 << 7

	// headerSize is the fixed transport header: magic (2), version (1),
	// flags (1), source node (2), CoS (1), reserved (1), packet id (8),
	// trace context (8).
	headerSize = 24

	// ipHeaderSize mirrors packet.HeaderSize: src (4), dst (4), TTL
	// (1), proto (1), flow id (2), payload length (2).
	ipHeaderSize = packet.HeaderSize

	// MaxDatagram is the largest datagram the codec will produce for
	// default-pool sizing; larger payloads still encode, they just
	// bypass the steady-state buffer pool.
	MaxDatagram = 2048
)

// Codec errors.
var (
	ErrTruncated = errors.New("transport: datagram truncated")
	ErrMagic     = errors.New("transport: bad wire magic")
	ErrVersion   = errors.New("transport: unsupported wire version")
)

// EncodedSize returns the wire size of p in bytes.
func EncodedSize(p *packet.Packet) int {
	n := headerSize + ipHeaderSize + len(p.Payload)
	if p.Stack != nil {
		n += p.Stack.WireSize()
	}
	return n
}

// AppendPacket appends the wire encoding of p, sent by node src, to dst
// and returns the extended slice. With sufficient capacity in dst it
// does not allocate. The packet's measurement bookkeeping (SeqNo as the
// packet id, SentAt as the trace context) crosses the wire so an egress
// in another process can still compute end-to-end latency.
func AppendPacket(dst []byte, p *packet.Packet, src NodeID) ([]byte, error) {
	if len(p.Payload) > 0xffff {
		return nil, fmt.Errorf("transport: payload %d exceeds the length field", len(p.Payload))
	}
	labelled := p.Labelled()
	var flags, cos byte
	if labelled {
		flags |= flagLabelled
		if top, err := p.Stack.Top(); err == nil {
			cos = byte(top.CoS)
		}
	}
	dst = append(dst, magic0, magic1, Version, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(src))
	dst = append(dst, cos, 0)
	dst = binary.BigEndian.AppendUint64(dst, p.SeqNo)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.SentAt))
	if labelled {
		var err error
		dst, err = p.Stack.AppendWire(dst)
		if err != nil {
			return nil, err
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.Header.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.Header.Dst))
	dst = append(dst, p.Header.TTL, p.Header.Proto)
	dst = binary.BigEndian.AppendUint16(dst, p.Header.FlowID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Payload)))
	dst = append(dst, p.Payload...)
	return dst, nil
}

// DecodePacket parses one datagram into p, reusing p's stack and
// payload storage (the allocation-free receive path), and returns the
// sending node's id. On error p's contents are unspecified; reuse it
// only for the next decode. Bytes beyond the declared payload length
// are treated as padding and dropped, like layer-2 padding.
func DecodePacket(p *packet.Packet, buf []byte) (NodeID, error) {
	if len(buf) < headerSize {
		return 0, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(buf), headerSize)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return 0, fmt.Errorf("%w: %#02x%02x", ErrMagic, buf[0], buf[1])
	}
	if buf[2] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	flags := buf[3]
	if flags&flagFrame != 0 {
		return 0, fmt.Errorf("%w: coalesced frame in single-packet decode", ErrFrame)
	}
	src := NodeID(binary.BigEndian.Uint16(buf[4:]))
	p.SeqNo = binary.BigEndian.Uint64(buf[8:])
	p.SentAt = math.Float64frombits(binary.BigEndian.Uint64(buf[16:]))
	rest := buf[headerSize:]
	if p.Stack == nil {
		p.Stack = &label.Stack{}
	}
	if flags&flagLabelled != 0 {
		n, err := p.Stack.DecodeWireInto(rest)
		if err != nil {
			return src, fmt.Errorf("transport: label stack: %w", err)
		}
		rest = rest[n:]
	} else {
		p.Stack.Reset()
	}
	if len(rest) < ipHeaderSize {
		return src, fmt.Errorf("%w: %d header bytes, want %d", ErrTruncated, len(rest), ipHeaderSize)
	}
	p.Header.Src = packet.Addr(binary.BigEndian.Uint32(rest))
	p.Header.Dst = packet.Addr(binary.BigEndian.Uint32(rest[4:]))
	p.Header.TTL = rest[8]
	p.Header.Proto = rest[9]
	p.Header.FlowID = binary.BigEndian.Uint16(rest[10:])
	n := int(binary.BigEndian.Uint16(rest[12:]))
	body := rest[ipHeaderSize:]
	if n > len(body) {
		return src, fmt.Errorf("%w: payload length %d exceeds %d available", ErrTruncated, n, len(body))
	}
	p.Payload = append(p.Payload[:0], body[:n]...)
	return src, nil
}

// truncation reports whether a decode error was a short read (as
// opposed to corruption of a well-sized datagram) for the receiver's
// short-read accounting.
func truncation(err error) bool {
	return errors.Is(err, ErrTruncated) ||
		errors.Is(err, label.ErrNoBottom) ||
		errors.Is(err, label.ErrShortBuffer)
}
