package resilience

import (
	"math"

	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
)

// DamperConfig parameterises BGP-style flap damping for links. A link
// accrues Penalty per flap; the accrued figure decays exponentially
// with HalfLife. Crossing SuppressAt suppresses the link — it is kept
// out of CSPF protection paths — until decay brings it under ReuseAt.
// The asymmetric thresholds give hysteresis: one flap after reuse does
// not immediately re-suppress.
type DamperConfig struct {
	// Penalty accrued per flap. <=0: 1000.
	Penalty float64
	// SuppressAt is the penalty above which the link is suppressed.
	// <=0: 2500 (the third flap inside a half-life suppresses).
	SuppressAt float64
	// ReuseAt is the penalty below which a suppressed link is usable
	// again. <=0: 750.
	ReuseAt float64
	// HalfLife is the penalty's exponential-decay half life in seconds.
	// <=0: 2.
	HalfLife float64
	// MaxPenalty caps the accrued penalty, bounding how long a
	// permanently flapping link stays suppressed after it calms down.
	// <=0: 8000.
	MaxPenalty float64
}

func (c DamperConfig) withDefaults() DamperConfig {
	if c.Penalty <= 0 {
		c.Penalty = 1000
	}
	if c.SuppressAt <= 0 {
		c.SuppressAt = 2500
	}
	if c.ReuseAt <= 0 {
		c.ReuseAt = 750
	}
	if c.ReuseAt >= c.SuppressAt {
		c.ReuseAt = c.SuppressAt / 2
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 2
	}
	if c.MaxPenalty <= 0 {
		c.MaxPenalty = 8000
	}
	return c
}

// dampState is the accrued penalty of one (undirected) link.
type dampState struct {
	penalty    float64 // at time `last`
	last       float64
	suppressed bool
}

// Damper implements hold-down/flap damping over links: each session
// flap adds penalty, penalties decay exponentially, and links over the
// suppression threshold are excluded from CSPF until they calm down —
// so an interface that bounces every few hundred milliseconds stops
// dragging every protection switch back onto itself.
//
// Like the rest of the control plane it is not internally locked: all
// entry points run in the network's serialisation context (the
// simulator event loop, or under the network lock in distributed mode).
type Damper struct {
	cfg    DamperConfig
	clock  Clock
	events *telemetry.EventCounters
	links  map[te.LinkKey]*dampState // canonical (From < To) keys
}

// NewDamper builds a damper on the injected clock. events is optional;
// when present, suppressions count link_suppressed and recoveries
// link_reused.
func NewDamper(clock Clock, cfg DamperConfig, events *telemetry.EventCounters) *Damper {
	return &Damper{
		cfg:    cfg.withDefaults(),
		clock:  clock,
		events: events,
		links:  make(map[te.LinkKey]*dampState),
	}
}

// canonical normalises an undirected link to one map key.
func canonical(a, b string) te.LinkKey {
	if b < a {
		a, b = b, a
	}
	return te.LinkKey{From: a, To: b}
}

// decay brings st's penalty forward to now.
func (d *Damper) decay(st *dampState, now float64) {
	if dt := now - st.last; dt > 0 {
		st.penalty *= math.Exp2(-dt / d.cfg.HalfLife)
	}
	st.last = now
}

// Flap records one flap of the a-b link (either direction), accruing
// penalty and suppressing the link if it crosses the threshold.
func (d *Damper) Flap(a, b string) {
	key := canonical(a, b)
	now := d.clock.Now()
	st := d.links[key]
	if st == nil {
		st = &dampState{last: now}
		d.links[key] = st
	}
	d.decay(st, now)
	st.penalty += d.cfg.Penalty
	if st.penalty > d.cfg.MaxPenalty {
		st.penalty = d.cfg.MaxPenalty
	}
	if !st.suppressed && st.penalty >= d.cfg.SuppressAt {
		st.suppressed = true
		if d.events != nil {
			d.events.Inc(telemetry.EventLinkSuppressed)
		}
	}
}

// refresh decays st and clears suppression once the penalty has
// dropped under the reuse threshold.
func (d *Damper) refresh(st *dampState, now float64) {
	d.decay(st, now)
	if st.suppressed && st.penalty < d.cfg.ReuseAt {
		st.suppressed = false
		if d.events != nil {
			d.events.Inc(telemetry.EventLinkReused)
		}
	}
}

// Suppressed reports whether the a-b link is currently held down.
func (d *Damper) Suppressed(a, b string) bool {
	st := d.links[canonical(a, b)]
	if st == nil {
		return false
	}
	d.refresh(st, d.clock.Now())
	return st.suppressed
}

// Penalty returns the link's current (decayed) penalty figure.
func (d *Damper) Penalty(a, b string) float64 {
	st := d.links[canonical(a, b)]
	if st == nil {
		return 0
	}
	d.decay(st, d.clock.Now())
	return st.penalty
}

// Excluded returns the suppressed links as a CSPF exclusion set, both
// directions per link — the shape signaling.Speaker.SetPathExcluder
// wants. Fully decayed entries are dropped so the map stays bounded by
// the set of recently flapping links.
func (d *Damper) Excluded() map[te.LinkKey]bool {
	now := d.clock.Now()
	var out map[te.LinkKey]bool
	for key, st := range d.links {
		d.refresh(st, now)
		if !st.suppressed {
			if st.penalty < d.cfg.Penalty/100 {
				delete(d.links, key)
			}
			continue
		}
		if out == nil {
			out = make(map[te.LinkKey]bool)
		}
		out[key] = true
		out[te.LinkKey{From: key.To, To: key.From}] = true
	}
	return out
}

// BindDamping wires a damper into a speaker: every session-down toward
// a neighbour flaps the local link to it, and suppressed links are
// excluded from the speaker's protection CSPF. The speaker's
// OnSessionDown hook is chained, not replaced.
func BindDamping(sp *signaling.Speaker, d *Damper) {
	prevDown := sp.OnSessionDown
	sp.OnSessionDown = func(peer string) {
		d.Flap(sp.Name(), peer)
		if prevDown != nil {
			prevDown(peer)
		}
	}
	sp.SetPathExcluder(d.Excluded)
}
