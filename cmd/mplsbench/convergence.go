package main

import (
	"encoding/json"
	"fmt"
	"os"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
)

// convResult is the convergence measurement of one ring size: how long
// the distributed control plane takes to go from cold boot to full
// session mesh, from signalling request to installed LSPs, and from a
// link failure to rerouted traffic — all in simulated seconds, so the
// figures reflect protocol round trips and timer design rather than
// host speed.
type convResult struct {
	Nodes    int `json:"nodes"`
	Sessions int `json:"sessions"`
	LSPs     int `json:"lsps"`
	// SessionsUpS is boot -> every adjacency operational.
	SessionsUpS float64 `json:"sessions_up_s"`
	// EstablishS is Setup -> every LSP mapped and installed at the
	// ingress (downstream-on-demand over up sessions).
	EstablishS float64 `json:"establish_s"`
	// FailoverS is link failure -> the broken LSP re-established on the
	// long way round: dead-timer detection + withdraw cascade to the
	// ingress + resignalling the new path.
	FailoverS float64 `json:"failover_s"`
	// CtrlMsgs is the total signaling messages transmitted by all
	// speakers over the whole run (control overhead).
	CtrlMsgs uint64 `json:"ctrl_msgs"`
}

type convergenceReport struct {
	Benchmark string       `json:"benchmark"`
	Results   []convResult `json:"results"`
}

// convergeRing measures one ring of n routers carrying nlsp LSPs, each
// from a distinct ingress to its antipode.
func convergeRing(n, nlsp int) (convResult, error) {
	const (
		horizon = 30.0
		step    = 0.002
	)
	name := func(i int) string { return fmt.Sprintf("r%d", i) }
	nodes := make([]router.NodeSpec, n)
	links := make([]router.LinkSpec, n)
	for i := 0; i < n; i++ {
		nodes[i] = router.NodeSpec{Name: name(i), RouterType: lsm.LER}
		links[i] = router.LinkSpec{
			A: name(i), B: name((i + 1) % n),
			RateBPS: 1e9, Delay: 0.0005, Metric: 1,
		}
	}
	net, err := router.Build(nodes, links)
	if err != nil {
		return convResult{}, err
	}
	defer net.Close()

	var events telemetry.EventCounters
	speakers, err := signaling.Deploy(net,
		signaling.WithEvents(&events), signaling.WithUntil(horizon))
	if err != nil {
		return convResult{}, err
	}
	res := convResult{Nodes: n, Sessions: 2 * n, LSPs: nlsp}

	runUntil := func(limit float64, cond func() bool) (float64, error) {
		for t := net.Sim.Now(); t < limit; t += step {
			net.Sim.RunUntil(t)
			if cond() {
				return net.Sim.Now(), nil
			}
		}
		return 0, fmt.Errorf("n=%d: condition not met by t=%.1fs", n, limit)
	}

	allUp := func() bool {
		return events.Get(telemetry.EventSessionUp) >= uint64(2*n)
	}
	upAt, err := runUntil(horizon, allUp)
	if err != nil {
		return res, err
	}
	res.SessionsUpS = upAt

	// nlsp LSPs, ingress i -> antipode, staggered around the ring so no
	// single link carries every request.
	established := map[string][]string{}
	stride := n / nlsp
	if stride == 0 {
		stride = 1
	}
	setupAt := net.Sim.Now()
	for i := 0; i < nlsp; i++ {
		from, to := name((i*stride)%n), name((i*stride+n/2)%n)
		path, err := net.Topo.CSPF(te.PathRequest{From: from, To: to})
		if err != nil {
			return res, err
		}
		sp := speakers[from]
		sp.OnEstablished = func(id string, p []string) {
			established[id] = append([]string(nil), p...)
		}
		if err := sp.Setup(ldp.SetupRequest{
			ID:   fmt.Sprintf("lsp-%d", i),
			FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, byte(i>>8), byte(i)), PrefixLen: 32},
			Path: path,
		}, nil); err != nil {
			return res, err
		}
	}
	estAt, err := runUntil(horizon, func() bool { return len(established) >= nlsp })
	if err != nil {
		return res, err
	}
	res.EstablishS = estAt - setupAt

	// Fail the middle link of LSP 0's path: its sessions dead-timer
	// out, the withdraw cascade walks to the ingress, and the LSP must
	// come back the long way round the ring.
	route := established["lsp-0"]
	mid := len(route) / 2
	delete(established, "lsp-0")
	if err := net.SetLinkDown(route[mid-1], route[mid], true); err != nil {
		return res, err
	}
	failAt := net.Sim.Now()
	backAt, err := runUntil(horizon, func() bool { return len(established) >= nlsp })
	if err != nil {
		return res, err
	}
	res.FailoverS = backAt - failAt

	for _, sp := range speakers {
		res.CtrlMsgs += sp.Stats.Tx
	}
	return res, nil
}

// runConvergence is the -engine=convergence benchmark: distributed
// control-plane convergence across ring sizes, in simulated time.
func runConvergence(sizes []int, lsps int, path string) error {
	fmt.Println("== control-plane convergence (simulated time, ring topologies) ==")
	fmt.Printf("%7s %9s %6s %14s %13s %12s %10s\n",
		"nodes", "sessions", "lsps", "sessions_up_s", "establish_s", "failover_s", "ctrl_msgs")
	report := convergenceReport{Benchmark: "convergence"}
	for _, n := range sizes {
		r, err := convergeRing(n, lsps)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, r)
		fmt.Printf("%7d %9d %6d %14.3f %13.3f %12.3f %10d\n",
			r.Nodes, r.Sessions, r.LSPs, r.SessionsUpS, r.EstablishS, r.FailoverS, r.CtrlMsgs)
	}
	if path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
	}
	return nil
}
