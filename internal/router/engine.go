package router

import (
	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// EnginePlane adapts the concurrent dataplane engine to the
// discrete-event simulator's DataPlane contract. Packets are forwarded
// inline (the simulator is single-threaded, so queueing through the
// engine's shard workers would only add nondeterminism), but the
// forwarding tables are the engine's RCU snapshots: control-plane
// programming goes through atomic snapshot publication and therefore
// never perturbs in-flight forwarding — the property the engine
// guarantees to real concurrent callers carries over to the simulation.
//
// The per-packet engine occupancy defaults to the software baseline cost
// divided by the worker count, modelling the throughput a sharded
// software plane sustains once every worker has a core of its own.
type EnginePlane struct {
	Engine *dataplane.Engine
	// PerPacket is the modelled engine occupancy per label operation.
	PerPacket netsim.Time
}

// NewEnginePlane wraps an engine as a simulator data plane. perPacket
// <= 0 selects DefaultSoftwareCost divided by the engine's worker count.
func NewEnginePlane(eng *dataplane.Engine, perPacket netsim.Time) *EnginePlane {
	if perPacket <= 0 {
		perPacket = DefaultSoftwareCost / netsim.Time(eng.Workers())
	}
	return &EnginePlane{Engine: eng, PerPacket: perPacket}
}

// Process implements DataPlane. ProcessInline performs one table pass;
// the router's engine loop drives the multi-pass cases, exactly as for
// the other planes.
func (e *EnginePlane) Process(p *packet.Packet) (swmpls.Result, netsim.Time) {
	return e.Engine.ProcessInline(p), e.PerPacket
}

// ProcessPacket implements plane.Plane: one table pass against the
// engine's current snapshot.
func (e *EnginePlane) ProcessPacket(p *packet.Packet) swmpls.Result {
	return e.Engine.ProcessPacket(p)
}

// SetTelemetry implements plane.Plane by attaching the sink to the
// engine (trace at the next batch, drop counters on a fresh snapshot).
func (e *EnginePlane) SetTelemetry(s telemetry.Sink) { e.Engine.SetTelemetry(s) }

// Close implements DataPlane by stopping the engine's shard workers.
func (e *EnginePlane) Close() error {
	e.Engine.Close()
	return nil
}

// ILMEntries implements TableReader against the engine's current RCU
// snapshot (immutable once published, so no locking is needed).
func (e *EnginePlane) ILMEntries() []swmpls.ILMEntry {
	return e.Engine.TableSnapshot().ILMEntries()
}

// FECEntries implements TableReader against the engine's current RCU
// snapshot.
func (e *EnginePlane) FECEntries() []swmpls.FECEntry {
	return e.Engine.TableSnapshot().FECEntries()
}

// InstallFEC implements ldp.Installer by publishing a new snapshot.
func (e *EnginePlane) InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error {
	return e.Engine.InstallFEC(dst, prefixLen, n)
}

// InstallILM implements ldp.Installer by publishing a new snapshot.
func (e *EnginePlane) InstallILM(in label.Label, n swmpls.NHLFE) error {
	return e.Engine.InstallILM(in, n)
}

// RemoveILM implements ldp.Installer by publishing a new snapshot.
func (e *EnginePlane) RemoveILM(in label.Label) { e.Engine.RemoveILM(in) }

// RemoveFEC implements ldp.Installer by publishing a new snapshot.
func (e *EnginePlane) RemoveFEC(dst packet.Addr, prefixLen int) {
	e.Engine.RemoveFEC(dst, prefixLen)
}
