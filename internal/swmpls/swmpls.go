// Package swmpls is a software MPLS forwarder in the style of RFC 3031:
// an FTN (FEC-to-NHLFE map, longest-prefix match on the destination
// address) for unlabelled packets and an ILM (incoming label map) for
// labelled ones, both hash/trie based.
//
// It is the baseline the paper argues against — "most existing MPLS
// solutions are entirely software based" — so the benchmark harness runs
// the same workloads through this forwarder and through the embedded
// device's cycle model to compare per-packet label operation costs.
package swmpls

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// NHLFE is a next hop label forwarding entry: where the packet goes next
// and what happens to its label stack on the way out.
type NHLFE struct {
	// NextHop names the outgoing neighbour (or egress interface).
	NextHop string
	// Op is the label operation: push (PushLabels go on top), swap
	// (PushLabels[0] replaces the top), or pop.
	Op label.Op
	// PushLabels are pushed bottom-first. A tunnel ingress pushes two at
	// once; a plain ingress or swap uses exactly one.
	PushLabels []label.Label
	// CoS is stamped on labels pushed at ingress (unlabelled packets).
	// Transit operations copy the CoS of the old top entry instead — the
	// paper specifies that the embedded implementation never modifies
	// the CoS bits in flight.
	CoS label.CoS
}

// Validate checks the operation/label combination.
func (n NHLFE) Validate() error {
	switch n.Op {
	case label.OpPush:
		if len(n.PushLabels) == 0 || len(n.PushLabels) > label.MaxDepth {
			return fmt.Errorf("swmpls: push NHLFE needs 1..%d labels, has %d", label.MaxDepth, len(n.PushLabels))
		}
	case label.OpSwap:
		if len(n.PushLabels) != 1 {
			return fmt.Errorf("swmpls: swap NHLFE needs exactly 1 label, has %d", len(n.PushLabels))
		}
	case label.OpPop:
		if len(n.PushLabels) != 0 {
			return errors.New("swmpls: pop NHLFE must not carry labels")
		}
	default:
		return fmt.Errorf("swmpls: NHLFE with operation %v", n.Op)
	}
	for _, l := range n.PushLabels {
		if !l.Valid() {
			return fmt.Errorf("swmpls: label %d out of range", l)
		}
		if l.Reserved() {
			return fmt.Errorf("swmpls: reserved label %d in NHLFE", l)
		}
	}
	return nil
}

// Action classifies what the forwarder decided.
type Action int

// Forwarding outcomes.
const (
	// Forward: send the (possibly relabelled) packet to Result.NextHop.
	Forward Action = iota
	// Deliver: the stack emptied; hand the packet to the IP side.
	Deliver
	// Drop: discard the packet for Result.Drop.
	Drop
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Forward:
		return "forward"
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// DropReason explains a Drop action.
type DropReason int

// Drop reasons.
const (
	DropNone DropReason = iota
	DropNoRoute
	DropNoLabel
	DropTTLExpired
	DropStackOverflow
)

// Telemetry maps a drop reason onto the unified telemetry taxonomy.
// The mapping follows the paper's three discard transitions: a label
// (or FTN) lookup that finds nothing is a lookup miss, TTL reaching
// zero is a TTL expiry, and a stored operation that cannot be applied
// to the packet's stack — here, a push past MaxDepth — is an
// inconsistent operation. DropNoRoute is the one software-only case
// (unlabelled packet with no FEC binding) and keeps its own reason.
// ok is false for DropNone and unknown values.
func (d DropReason) Telemetry() (r telemetry.Reason, ok bool) {
	switch d {
	case DropNoLabel:
		return telemetry.ReasonLookupMiss, true
	case DropTTLExpired:
		return telemetry.ReasonTTLExpired, true
	case DropStackOverflow:
		return telemetry.ReasonInconsistentOp, true
	case DropNoRoute:
		return telemetry.ReasonNoRoute, true
	default:
		return 0, false
	}
}

// String names the drop reason.
func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropNoRoute:
		return "no-route"
	case DropNoLabel:
		return "no-label"
	case DropTTLExpired:
		return "ttl-expired"
	case DropStackOverflow:
		return "stack-overflow"
	default:
		return fmt.Sprintf("drop(%d)", int(d))
	}
}

// Result is the outcome of forwarding one packet.
type Result struct {
	Action  Action
	NextHop string
	Drop    DropReason
	// Op is the label operation that was applied (OpNone on drops and
	// on ingress misses), so callers can trace per-packet label
	// activity without re-deriving it from the NHLFE.
	Op label.Op
}

// Forwarder is one router's software MPLS tables.
type Forwarder struct {
	ftn *prefixTable
	ilm ilmTable
	// drops, when set, receives one count per dropped packet. The
	// pointer survives Clone so every RCU snapshot of a table feeds
	// the same counters.
	drops *telemetry.DropCounters
	// trace, when set, records one label-op or discard event per
	// Forward call, attributed to node. Like drops it survives Clone.
	trace *telemetry.Ring
	node  string
}

// New returns an empty forwarder configured by functional options —
// most usefully WithILM, which swaps the ILM's lookup structure between
// the default map, the paper's linear information base, and the indexed
// one. With no options it is the plain RFC 3031 software forwarder.
func New(opts ...Option) *Forwarder {
	var cfg fwdConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Forwarder{ftn: newPrefixTable(), ilm: newILMTable(cfg.ilm)}
}

// ILMKind reports which lookup structure backs the ILM.
func (f *Forwarder) ILMKind() ILMKind { return f.ilm.kind() }

// Clone returns an independent copy of the forwarder's tables, keeping
// the ILM backend kind. NHLFE values (including their PushLabels
// slices) are treated as immutable after installation, so clones share
// them; everything mutable — the ILM and the FTN trie nodes — is
// copied. This is the copy-on-write primitive behind the dataplane
// engine's RCU table snapshots: the control plane clones the live
// table, edits the clone, and publishes it atomically while readers
// keep traversing the old one.
func (f *Forwarder) Clone() *Forwarder {
	return &Forwarder{ftn: f.ftn.clone(), ilm: f.ilm.clone(), drops: f.drops, trace: f.trace, node: f.node}
}

// SetDropCounters attaches shared drop accounting: every Drop result
// increments the mapped telemetry reason. A nil argument detaches.
func (f *Forwarder) SetDropCounters(c *telemetry.DropCounters) { f.drops = c }

// DropCounters returns the attached counters, or nil.
func (f *Forwarder) DropCounters() *telemetry.DropCounters { return f.drops }

// SetTelemetry attaches the full sink — drop counters plus per-packet
// trace — in one call, the hook every plane.Plane implementation
// shares. Zero-value fields detach the corresponding hook.
func (f *Forwarder) SetTelemetry(s telemetry.Sink) {
	f.drops = s.Drops
	f.trace = s.Trace
	f.node = s.Node
}

// drop builds a Drop result and feeds the attached counters.
func (f *Forwarder) drop(d DropReason) Result {
	if f.drops != nil {
		if r, ok := d.Telemetry(); ok {
			f.drops.Inc(r)
		}
	}
	return Result{Action: Drop, Drop: d}
}

// MapFEC binds the FEC (dst/prefixLen) to an NHLFE in the FTN.
func (f *Forwarder) MapFEC(dst packet.Addr, prefixLen int, n NHLFE) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if n.Op != label.OpPush {
		return errors.New("swmpls: FTN entries must push")
	}
	return f.ftn.insert(dst, prefixLen, n)
}

// MapLabel binds an incoming label to an NHLFE in the ILM.
func (f *Forwarder) MapLabel(in label.Label, n NHLFE) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if !in.Valid() {
		return fmt.Errorf("swmpls: incoming label %d out of range", in)
	}
	if in.Reserved() {
		return fmt.Errorf("swmpls: cannot map reserved label %d", in)
	}
	return f.ilm.insert(in, n)
}

// UnmapLabel removes an ILM binding.
func (f *Forwarder) UnmapLabel(in label.Label) { f.ilm.remove(in) }

// UnmapFEC removes an FTN binding and reports whether one existed.
func (f *Forwarder) UnmapFEC(dst packet.Addr, prefixLen int) bool {
	return f.ftn.remove(dst, prefixLen)
}

// InstallFEC, InstallILM, RemoveILM and RemoveFEC mirror the embedded
// device's table programming surface (the ldp.Installer contract), so a
// label distribution manager can drive software and hardware routers
// interchangeably.

// InstallFEC is MapFEC under the installer contract.
func (f *Forwarder) InstallFEC(dst packet.Addr, prefixLen int, n NHLFE) error {
	return f.MapFEC(dst, prefixLen, n)
}

// InstallILM is MapLabel under the installer contract.
func (f *Forwarder) InstallILM(in label.Label, n NHLFE) error { return f.MapLabel(in, n) }

// RemoveILM is UnmapLabel under the installer contract.
func (f *Forwarder) RemoveILM(in label.Label) { f.UnmapLabel(in) }

// RemoveFEC is UnmapFEC under the installer contract.
func (f *Forwarder) RemoveFEC(dst packet.Addr, prefixLen int) { f.UnmapFEC(dst, prefixLen) }

// ILMSize returns the number of installed label bindings.
func (f *Forwarder) ILMSize() int { return f.ilm.size() }

// LookupILM returns the binding for an incoming label, if any — the bare
// per-hop lookup, exposed for data-plane cost comparisons.
func (f *Forwarder) LookupILM(in label.Label) (NHLFE, bool) {
	return f.ilm.lookup(in)
}

// Forward applies the router's tables to p in place and says what to do
// with it. TTL semantics follow the embedded architecture: the label TTL
// is decremented at every hop and the packet is dropped when it reaches
// zero; at ingress the label TTL is seeded from the IP TTL; at the final
// pop the (already decremented) label TTL is written back to the IP
// header.
//
// Forward is exactly Resolve followed by ApplyResolved (or
// DropUnresolved on a miss) — the split a caching fast path uses to
// skip the lookup while keeping the apply and drop paths identical.
func (f *Forwarder) Forward(p *packet.Packet) Result {
	var depth uint8
	var top uint32
	if f.trace != nil {
		depth, top = stackState(p)
	}
	n, ok := f.Resolve(p)
	var res Result
	if !ok {
		res = f.DropUnresolved(p)
	} else {
		res = f.ApplyResolved(p, n)
	}
	if f.trace != nil {
		f.traceResult(depth, top, res)
	}
	return res
}

// ProcessPacket is Forward under the unified plane contract
// (plane.Plane): one forwarding step on the caller's goroutine.
func (f *Forwarder) ProcessPacket(p *packet.Packet) Result { return f.Forward(p) }

// Resolve answers the table lookup for p without touching the packet:
// the ILM binding of the top label for labelled packets, the FTN
// longest-prefix match on the destination otherwise. ok is false on a
// miss (or an unreadable stack).
func (f *Forwarder) Resolve(p *packet.Packet) (NHLFE, bool) {
	if p.Labelled() {
		top, err := p.Stack.Top()
		if err != nil {
			return NHLFE{}, false
		}
		return f.ilm.lookup(top.Label)
	}
	return f.ftn.lookup(p.Header.Dst)
}

// DropUnresolved accounts and classifies the drop for a packet Resolve
// could not answer: an ILM miss is no-label, an FTN miss no-route.
func (f *Forwarder) DropUnresolved(p *packet.Packet) Result {
	if p.Labelled() {
		return f.drop(DropNoLabel)
	}
	return f.drop(DropNoRoute)
}

// ApplyResolved applies an already-resolved NHLFE to p — the mutation
// half of Forward. The caller must pass the entry Resolve (or an
// equivalent cache) returned for this packet's current top label /
// destination; TTL handling, CoS stamping and drop accounting are
// identical to Forward's.
func (f *Forwarder) ApplyResolved(p *packet.Packet, n NHLFE) Result {
	if !p.Labelled() {
		return f.ingressApply(p, n)
	}
	return f.transitApply(p, n)
}

// stackState captures the incoming stack depth and top label for trace
// attribution, before Forward mutates the packet.
func stackState(p *packet.Packet) (uint8, uint32) {
	if p.Stack == nil || p.Stack.Empty() {
		return 0, 0
	}
	var top uint32
	if e, err := p.Stack.Top(); err == nil {
		top = uint32(e.Label)
	}
	return uint8(p.Stack.Depth()), top
}

// traceResult records the outcome against the incoming stack state.
func (f *Forwarder) traceResult(depth uint8, top uint32, res Result) {
	if res.Action == Drop {
		if r, ok := res.Drop.Telemetry(); ok {
			f.trace.RecordDiscard(f.node, depth, top, r)
		}
		return
	}
	if res.Op != label.OpNone {
		f.trace.RecordOp(f.node, telemetry.TraceOp(res.Op), depth, top)
	}
}

func (f *Forwarder) ingressApply(p *packet.Packet, n NHLFE) Result {
	ttl := p.Header.TTL
	if ttl > 0 {
		ttl--
	}
	if ttl == 0 {
		return f.drop(DropTTLExpired)
	}
	for _, l := range n.PushLabels {
		if err := p.Stack.Push(label.Entry{Label: l, CoS: n.CoS, TTL: ttl}); err != nil {
			return f.drop(DropStackOverflow)
		}
	}
	return Result{Action: Forward, NextHop: n.NextHop, Op: label.OpPush}
}

func (f *Forwarder) transitApply(p *packet.Packet, n NHLFE) Result {
	old, _ := p.Stack.Pop()
	ttl := old.TTL
	if ttl > 0 {
		ttl--
	}
	if ttl == 0 {
		return f.drop(DropTTLExpired)
	}
	switch n.Op {
	case label.OpPop:
		if p.Stack.Empty() {
			// End of the LSP: propagate the TTL to the IP header.
			p.Header.TTL = ttl
			if n.NextHop == "" {
				return Result{Action: Deliver, Op: label.OpPop}
			}
			return Result{Action: Forward, NextHop: n.NextHop, Op: label.OpPop}
		}
		// TTL propagation to the exposed entry.
		if err := p.Stack.SetTopTTL(ttl); err != nil {
			return f.drop(DropNoLabel)
		}
		return Result{Action: Forward, NextHop: n.NextHop, Op: label.OpPop}
	case label.OpSwap:
		if err := p.Stack.Push(label.Entry{Label: n.PushLabels[0], CoS: old.CoS, TTL: ttl}); err != nil {
			return f.drop(DropStackOverflow)
		}
		return Result{Action: Forward, NextHop: n.NextHop, Op: label.OpSwap}
	case label.OpPush:
		// Tunnel ingress: the old entry goes back with the decremented
		// TTL, then the tunnel labels on top.
		old.TTL = ttl
		if err := p.Stack.Push(old); err != nil {
			return f.drop(DropStackOverflow)
		}
		for _, l := range n.PushLabels {
			if err := p.Stack.Push(label.Entry{Label: l, CoS: old.CoS, TTL: ttl}); err != nil {
				return f.drop(DropStackOverflow)
			}
		}
		return Result{Action: Forward, NextHop: n.NextHop, Op: label.OpPush}
	default:
		return f.drop(DropNoLabel)
	}
}
