// Package infobase models the information base of the embedded MPLS
// architecture: the central store of (index, new label, operation) triples
// that the label stack modifier consults for every packet.
//
// The paper's hardware organises the base as three memory levels — one per
// supported label stack level — each holding 1 KB of label pairs (1024
// entries). Level 1 is indexed by the 32-bit packet identifier (for IP
// packets, the destination address), because an ingress LER must be able
// to push a label onto an *empty* stack; levels 2 and 3 are indexed by the
// 20-bit top label. Each level is searched linearly, giving the paper's
// 3n+5-cycle search cost.
//
// Two implementations share the Base interface: Behavioral (this package,
// a reference model in plain Go) and the cycle-accurate RTL data path in
// package lsm. Property tests drive both with the same traffic and demand
// identical answers.
package infobase

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/label"
)

// Level identifies one of the three information base memories.
type Level int

// The three levels of the information base.
const (
	Level1 Level = 1 // indexed by 32-bit packet identifier (ingress push)
	Level2 Level = 2 // indexed by 20-bit label, stack depth 1
	Level3 Level = 3 // indexed by 20-bit label, stack depth 2 or 3
)

// NumLevels is the number of memory levels.
const NumLevels = 3

// EntriesPerLevel is the capacity of each level: "each memory component
// supports 1 KB of label pairs", i.e. 1024 entries.
const EntriesPerLevel = 1024

// Valid reports whether lv names an existing level.
func (lv Level) Valid() bool { return lv >= Level1 && lv <= Level3 }

// LevelForDepth maps the current label stack depth to the level that must
// be consulted: an empty stack uses level 1 (keyed by packet identifier),
// a one-entry stack uses level 2, deeper stacks use level 3.
func LevelForDepth(depth int) Level {
	switch {
	case depth <= 0:
		return Level1
	case depth == 1:
		return Level2
	default:
		return Level3
	}
}

// Key is a lookup index: the full 32-bit packet identifier at level 1, or
// a 20-bit label value at levels 2 and 3.
type Key uint32

// Pair is one information base entry: when a packet's key matches Index,
// apply Op using NewLabel.
type Pair struct {
	Index    Key
	NewLabel label.Label
	Op       label.Op
}

// Information base errors.
var (
	ErrLevelFull    = errors.New("infobase: level is full")
	ErrInvalidLevel = errors.New("infobase: no such level")
	ErrInvalidPair  = errors.New("infobase: pair field out of range")
)

// ValidatePair checks that p fits the wire widths of level lv: level-1
// indices are 32 bits (any Key), level-2/3 indices must be valid labels,
// the new label must fit 20 bits and the operation 2 bits.
func ValidatePair(lv Level, p Pair) error {
	if !lv.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidLevel, lv)
	}
	if lv != Level1 && !label.Label(p.Index).Valid() {
		return fmt.Errorf("%w: level-%d index %d exceeds 20 bits", ErrInvalidPair, lv, p.Index)
	}
	if !p.NewLabel.Valid() {
		return fmt.Errorf("%w: new label %d exceeds 20 bits", ErrInvalidPair, p.NewLabel)
	}
	if !p.Op.Valid() {
		return fmt.Errorf("%w: operation %d exceeds 2 bits", ErrInvalidPair, p.Op)
	}
	return nil
}

// Base is the information base contract shared by the behavioral model
// and the cycle-accurate hardware data path.
type Base interface {
	// Write appends a pair to level lv, like the hardware's "write label
	// pair" command. It fails when the level is full or the pair does not
	// fit the field widths.
	Write(lv Level, p Pair) error
	// Lookup linearly searches level lv for the first pair whose index
	// equals key, in insertion order, exactly as the search module scans
	// memory addresses 0..n-1.
	Lookup(lv Level, key Key) (label.Label, label.Op, bool)
	// Count returns the number of pairs stored at level lv.
	Count(lv Level) int
	// Clear empties every level.
	Clear()
}

// Behavioral is the software reference model of the information base.
// The zero value is not usable; call NewBehavioral.
type Behavioral struct {
	levels    [NumLevels][]Pair
	writeHook func(Level, Pair) error
}

var _ Base = (*Behavioral)(nil)

// NewBehavioral returns an empty behavioral information base.
func NewBehavioral() *Behavioral { return &Behavioral{} }

// SetWriteHook installs an injectable write interceptor: every Write
// consults it after validation, and a non-nil error fails the write
// without storing the pair. The fault-injection layer uses it to model
// a flaky memory interface; nil removes the hook.
func (b *Behavioral) SetWriteHook(h func(Level, Pair) error) { b.writeHook = h }

// Write implements Base.
func (b *Behavioral) Write(lv Level, p Pair) error {
	if err := ValidatePair(lv, p); err != nil {
		return err
	}
	if b.writeHook != nil {
		if err := b.writeHook(lv, p); err != nil {
			return err
		}
	}
	s := &b.levels[lv-1]
	if len(*s) >= EntriesPerLevel {
		return fmt.Errorf("%w: level %d already holds %d pairs", ErrLevelFull, lv, EntriesPerLevel)
	}
	*s = append(*s, p)
	return nil
}

// Lookup implements Base: first match in insertion order wins, matching
// the hardware's incrementing read index.
func (b *Behavioral) Lookup(lv Level, key Key) (label.Label, label.Op, bool) {
	if !lv.Valid() {
		return 0, label.OpNone, false
	}
	for _, p := range b.levels[lv-1] {
		if p.Index == key {
			return p.NewLabel, p.Op, true
		}
	}
	return 0, label.OpNone, false
}

// Count implements Base.
func (b *Behavioral) Count(lv Level) int {
	if !lv.Valid() {
		return 0
	}
	return len(b.levels[lv-1])
}

// Clear implements Base.
func (b *Behavioral) Clear() {
	for i := range b.levels {
		b.levels[i] = b.levels[i][:0]
	}
}

// Remove deletes the first pair at level lv whose index equals key and
// reports whether one was removed. The hardware interface only writes;
// removal is a software (routing functionality) operation performed when
// an LSP is torn down.
func (b *Behavioral) Remove(lv Level, key Key) bool {
	if !lv.Valid() {
		return false
	}
	s := b.levels[lv-1]
	for i, p := range s {
		if p.Index == key {
			b.levels[lv-1] = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

// Entries returns a copy of level lv in storage order.
func (b *Behavioral) Entries(lv Level) []Pair {
	if !lv.Valid() {
		return nil
	}
	out := make([]Pair, len(b.levels[lv-1]))
	copy(out, b.levels[lv-1])
	return out
}
