// VoIPQoS: the paper's motivating workload — "resource intensive
// Internet applications like voice over Internet Protocol and real-time
// streaming video perform poorly when the core network of the Internet is
// relatively congested". Ten VoIP calls share a congested 2 Mbps core
// link with a greedy bulk transfer; the experiment runs the same traffic
// twice:
//
//	FIFO — no QoS: voice queues behind bulk data
//	CoS  — the MPLS CoS bits drive a strict-priority scheduler
//
// and prints voice latency/loss each way. Every router runs the embedded
// hardware data plane.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/trafficgen"
)

const (
	voiceFlows = 10
	bulkFlow   = 100
	runFor     = 5.0
)

type result struct {
	name                string
	p50, p99, max, loss float64
	bulkMbps            float64
}

func main() {
	fifo := run("FIFO (no QoS)", nil)
	cos := run("CoS priority", func(c int) qos.Scheduler { return qos.NewPriority(c) })

	fmt.Println("VoIP over a congested core: FIFO vs MPLS CoS scheduling")
	fmt.Println()
	fmt.Printf("%-16s %12s %12s %12s %11s\n", "discipline", "p50 voice", "p99 voice", "max voice", "voice loss")
	for _, r := range []result{fifo, cos} {
		fmt.Printf("%-16s %10.2fms %10.2fms %10.2fms %9.2f%%\n",
			r.name, r.p50*1e3, r.p99*1e3, r.max*1e3, 100*r.loss)
	}
	fmt.Println()
	fmt.Printf("bulk goodput: FIFO %.2f Mbps, CoS %.2f Mbps (the bottleneck is 2 Mbps)\n",
		fifo.bulkMbps, cos.bulkMbps)
	fmt.Println()
	fmt.Println("With the CoS bits driving the scheduler, voice latency stays flat while")
	fmt.Println("the bulk flow absorbs the queueing — the paper's TE/QoS case for MPLS.")
}

func run(name string, newQueue func(int) qos.Scheduler) result {
	nodes := []router.NodeSpec{
		{Name: "ingress", Hardware: true, RouterType: lsm.LER},
		{Name: "core1", Hardware: true, RouterType: lsm.LSR},
		{Name: "core2", Hardware: true, RouterType: lsm.LSR},
		{Name: "egress", Hardware: true, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "ingress", B: "core1", RateBPS: 10e6, Delay: 0.001, QueueCap: 64, NewQueue: newQueue},
		{A: "core1", B: "core2", RateBPS: 2e6, Delay: 0.004, QueueCap: 64, NewQueue: newQueue}, // bottleneck
		{A: "core2", B: "egress", RateBPS: 10e6, Delay: 0.001, QueueCap: 64, NewQueue: newQueue},
	}
	net, err := router.Build(nodes, links)
	check(err)

	collector := trafficgen.NewCollector(net.Sim)
	collector.Attach(net.Router("egress"))

	path := []string{"ingress", "core1", "core2", "egress"}

	// Voice LSP at CoS 5, bulk LSP at CoS 0: the ingress LER stamps the
	// class into the label stack entry and the core schedulers act on it.
	voiceDst := packet.AddrFrom(10, 9, 0, 1)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "voice", FEC: ldp.FEC{Dst: voiceDst, PrefixLen: 32}, Path: path, CoS: 5,
	})
	check(err)
	bulkDst := packet.AddrFrom(10, 9, 0, 2)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "bulk", FEC: ldp.FEC{Dst: bulkDst, PrefixLen: 32}, Path: path, CoS: 0,
	})
	check(err)

	for i := 0; i < voiceFlows; i++ {
		trafficgen.VoIP(trafficgen.Flow{
			ID:  uint16(i + 1),
			Src: packet.AddrFrom(10, 1, 0, byte(i+1)),
			Dst: voiceDst,
		}, 0, runFor).Install(net.Sim, net.Router("ingress"), collector)
	}
	trafficgen.Bulk{
		Flow:    trafficgen.Flow{ID: bulkFlow, Src: packet.AddrFrom(10, 2, 0, 1), Dst: bulkDst},
		Size:    1188,
		RateBPS: 4e6, // 2x the bottleneck
		Stop:    runFor,
	}.Install(net.Sim, net.Router("ingress"), collector)

	net.Sim.Run()

	agg := result{name: name}
	for i := 0; i < voiceFlows; i++ {
		f := collector.Flow(uint16(i + 1))
		agg.p50 += f.Latency.Percentile(50) / voiceFlows
		agg.p99 += f.Latency.Percentile(99) / voiceFlows
		agg.loss += f.LossRate() / voiceFlows
		if m := f.Latency.Max(); m > agg.max {
			agg.max = m
		}
	}
	agg.bulkMbps = collector.Flow(bulkFlow).GoodputBPS(runFor) / 1e6
	return agg
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
