// mplssim runs MPLS network scenarios on the discrete-event simulator
// and reports per-flow delivery statistics.
//
// Built-in scenarios:
//
//	line      an N-hop linear LSP carrying CBR traffic
//	tunnel    two edge flows aggregated through a core tunnel (Figure 3)
//	qos       VoIP + bulk over a congested core, FIFO vs CoS scheduling
//	failover  a link failure mid-run, repaired by CSPF + make-before-break
//
// A seeded chaos run injects a random fault schedule (link flaps,
// corruption, delay spikes) and -heal turns on the self-healing
// resilience layer, printing its recovery timeline:
//
//	mplssim -chaos 1 -heal
//
// Or run a declarative JSON scenario file:
//
//	mplssim -config scenario.json
//	mplssim -scenario line -hops 4 -plane hw -duration 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/trafficgen"
)

// traceRing and traceDrops are shared by every network a scenario
// builds (qos builds two), so the dump at the end of main covers the
// whole run.
var (
	traceRing  *telemetry.Ring
	traceDrops telemetry.DropCounters
)

// infoBaseFlag is the -infobase value: the ILM backend stamped onto
// every software-plane node of the built-in scenarios.
var infoBaseFlag string

// buildNet stamps the selected ILM backend onto each node spec and
// builds the network. Hardware nodes ignore the setting (their
// information base is the device's own).
func buildNet(nodes []router.NodeSpec, links []router.LinkSpec) (*router.Network, error) {
	for i := range nodes {
		nodes[i].InfoBase = infoBaseFlag
	}
	return router.Build(nodes, links)
}

// attachTelemetry hooks the shared drop counters — and, with -trace,
// the label-operation ring — onto every router of a freshly built
// network.
func attachTelemetry(net *router.Network) {
	net.SetTelemetry(telemetry.Sink{Drops: &traceDrops, Trace: traceRing})
}

// dumpTelemetry prints the trace ring and any nonzero per-reason drop
// counts after the scenarios have run. Without -trace it prints
// nothing extra unless packets were dropped.
func dumpTelemetry() {
	if traceRing != nil {
		fmt.Printf("\nlabel-operation trace (last %d of %d events):\n", traceRing.Len(), traceRing.Total())
		check(traceRing.Dump(os.Stdout))
	}
	if traceDrops.Total() > 0 {
		fmt.Println("\ndrops by reason:")
		for r, n := range traceDrops.Snapshot() {
			if n > 0 {
				fmt.Printf("  %-16v %d\n", telemetry.Reason(r), n)
			}
		}
	}
}

func main() {
	scenario := flag.String("scenario", "line", "line, tunnel, qos or failover")
	configPath := flag.String("config", "", "JSON scenario file (overrides -scenario)")
	plane := flag.String("plane", "hw", "data plane: hw (embedded device) or sw (software forwarder)")
	hops := flag.Int("hops", 4, "routers in the line scenario")
	duration := flag.Float64("duration", 2, "simulated seconds of traffic")
	rate := flag.Float64("rate", 10e6, "link rate, bits/second")
	traceN := flag.Int("trace", 0, "record the last N label operations across all routers and dump them after the run")
	chaosSeed := flag.Int64("chaos", -1, "run the chaos scenario with this fault-schedule seed (>= 0)")
	heal := flag.Bool("heal", false, "enable the self-healing resilience layer in the chaos scenario")
	chaosTransport := flag.Bool("transport", false, "back the chaos topology with loopback UDP links (real sockets, wall-clock run)")
	flag.StringVar(&infoBaseFlag, "infobase", "", "ILM backend of software-plane routers: map (default), linear or indexed")
	flag.Parse()

	if *traceN > 0 {
		traceRing = telemetry.NewRing(*traceN)
	}
	if *configPath != "" {
		runConfig(*configPath)
		dumpTelemetry()
		return
	}
	hardware := *plane == "hw"
	if *chaosSeed >= 0 {
		runChaos(*chaosSeed, *heal, hardware, *chaosTransport, *duration, *rate)
		dumpTelemetry()
		return
	}
	switch *scenario {
	case "line":
		runLine(hardware, *hops, *duration, *rate)
	case "tunnel":
		runTunnel(hardware, *duration, *rate)
	case "qos":
		runQoS(*duration)
	case "failover":
		runFailover(hardware, *duration, *rate)
	default:
		log.Fatalf("mplssim: unknown scenario %q", *scenario)
	}
	dumpTelemetry()
}

func runConfig(path string) {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	s, err := config.Load(f)
	check(err)
	b, err := s.Build()
	check(err)
	attachTelemetry(b.Net)
	end := b.Run()
	fmt.Printf("scenario %q: simulated %.3fs\n", s.Name, end)
	report(b.Collector, s.DurationS)
}

func runFailover(hardware bool, duration, rate float64) {
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: hardware, RouterType: lsm.LER},
		{Name: "b", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "c", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "d", Hardware: hardware, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "a", B: "b", RateBPS: rate, Delay: 0.001, Metric: 1},
		{A: "b", B: "d", RateBPS: rate, Delay: 0.001, Metric: 1},
		{A: "a", B: "c", RateBPS: rate, Delay: 0.001, Metric: 5},
		{A: "c", B: "d", RateBPS: rate, Delay: 0.001, Metric: 5},
	}
	net, err := buildNet(nodes, links)
	check(err)
	attachTelemetry(net)
	dst := packet.AddrFrom(10, 0, 0, 9)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
	})
	check(err)

	c := trafficgen.NewCollector(net.Sim)
	c.TrackSeries(duration / 20)
	c.Attach(net.Router("d"))
	trafficgen.CBR{Flow: trafficgen.Flow{ID: 1, Dst: dst}, Size: 512, Interval: 0.001, Stop: duration}.
		Install(net.Sim, net.Router("a"), c)

	failAt := duration / 2
	repairAt := failAt + 0.005
	net.Sim.Schedule(failAt, func() {
		check(net.SetLinkDown("a", "b", true))
		fmt.Printf("t=%.3fs: link a-b failed\n", net.Sim.Now())
	})
	net.Sim.Schedule(repairAt, func() {
		repair, err := net.Topo.CSPF(te.PathRequest{From: "a", To: "d", ExcludeNodes: map[string]bool{"b": true}})
		check(err)
		check(net.LDP.Reroute("l", repair))
		fmt.Printf("t=%.3fs: rerouted onto %v (make-before-break)\n", net.Sim.Now(), repair)
	})
	net.Sim.Run()

	fmt.Printf("failover scenario (%s plane): %.0f ms outage window\n",
		planeName(hardware), (repairAt-failAt)*1e3)
	report(c, duration)
	lab, _ := net.Router("a").SimLink("b")
	fmt.Printf("packets lost on the failed link: %d\n", lab.Lost.Events)

	// Goodput over time shows the dip and recovery.
	if s := c.Series(1); s != nil {
		fmt.Println("goodput over time (Mbps per bin):")
		for _, b := range s.Bins() {
			bar := int(b.BPS / 1e6 * 4)
			fmt.Printf("  t=%6.3fs %6.2f %s\n", b.Start, b.BPS/1e6, strings.Repeat("#", bar))
		}
		if dip, ok := s.MinCountBin(); ok {
			fmt.Printf("deepest dip: %.2f Mbps in the bin starting t=%.3fs (failure at t=%.3fs)\n",
				dip.BPS/1e6, dip.Start, failAt)
		}
	}
}

func buildLine(hardware bool, hops int, rate float64, newQueue func(int) qos.Scheduler) *router.Network {
	if hops < 2 {
		log.Fatal("mplssim: need at least 2 hops")
	}
	var nodes []router.NodeSpec
	var links []router.LinkSpec
	for i := 0; i < hops; i++ {
		rt := lsm.LSR
		if i == 0 || i == hops-1 {
			rt = lsm.LER
		}
		nodes = append(nodes, router.NodeSpec{Name: nodeName(i), Hardware: hardware, RouterType: rt})
		if i > 0 {
			links = append(links, router.LinkSpec{
				A: nodeName(i - 1), B: nodeName(i),
				RateBPS: rate, Delay: 0.001, QueueCap: 128, NewQueue: newQueue,
			})
		}
	}
	net, err := buildNet(nodes, links)
	check(err)
	attachTelemetry(net)
	return net
}

func nodeName(i int) string { return fmt.Sprintf("r%d", i) }

func runLine(hardware bool, hops int, duration, rate float64) {
	net := buildLine(hardware, hops, rate, nil)
	var path []string
	for i := 0; i < hops; i++ {
		path = append(path, nodeName(i))
	}
	dst := packet.AddrFrom(10, 0, 0, 1)
	_, err := net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "lsp", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: path,
	})
	check(err)

	c := trafficgen.NewCollector(net.Sim)
	c.Attach(net.Router(nodeName(hops - 1)))
	trafficgen.CBR{
		Flow: trafficgen.Flow{ID: 1, Dst: dst}, Size: 512, Interval: 0.001, Stop: duration,
	}.Install(net.Sim, net.Router(nodeName(0)), c)
	net.Sim.Run()

	fmt.Printf("line scenario: %d hops, %s plane, %.0f Mbps links\n",
		hops, planeName(hardware), rate/1e6)
	report(c, duration)
}

func runTunnel(hardware bool, duration, rate float64) {
	nodes := []router.NodeSpec{
		{Name: "ler1", Hardware: hardware, RouterType: lsm.LER},
		{Name: "ler2", Hardware: hardware, RouterType: lsm.LER},
		{Name: "head", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "mid", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "tail", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "ler3", Hardware: hardware, RouterType: lsm.LER},
		{Name: "ler4", Hardware: hardware, RouterType: lsm.LER},
	}
	var links []router.LinkSpec
	for _, pair := range [][2]string{
		{"ler1", "head"}, {"ler2", "head"}, {"head", "mid"},
		{"mid", "tail"}, {"tail", "ler3"}, {"tail", "ler4"},
	} {
		links = append(links, router.LinkSpec{A: pair[0], B: pair[1], RateBPS: rate, Delay: 0.001})
	}
	net, err := buildNet(nodes, links)
	check(err)
	attachTelemetry(net)

	_, err = net.LDP.SetupTunnel("tun", []string{"head", "mid", "tail"}, 0)
	check(err)
	dstA := packet.AddrFrom(10, 3, 0, 1)
	dstB := packet.AddrFrom(10, 4, 0, 1)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "a", FEC: ldp.FEC{Dst: dstA, PrefixLen: 32},
		Path: []string{"ler1", "head", "tail", "ler3"},
	})
	check(err)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "b", FEC: ldp.FEC{Dst: dstB, PrefixLen: 32},
		Path: []string{"ler2", "head", "tail", "ler4"},
	})
	check(err)

	c := trafficgen.NewCollector(net.Sim)
	c.Attach(net.Router("ler3"))
	c.Attach(net.Router("ler4"))
	trafficgen.CBR{Flow: trafficgen.Flow{ID: 1, Dst: dstA}, Size: 512, Interval: 0.002, Stop: duration}.
		Install(net.Sim, net.Router("ler1"), c)
	trafficgen.CBR{Flow: trafficgen.Flow{ID: 2, Dst: dstB}, Size: 512, Interval: 0.002, Stop: duration}.
		Install(net.Sim, net.Router("ler2"), c)
	net.Sim.Run()

	fmt.Printf("tunnel scenario (%s plane): two flows aggregated head->mid->tail\n", planeName(hardware))
	report(c, duration)
	l, _ := net.Router("head").SimLink("mid")
	fmt.Printf("tunnel link head->mid carried %d packets\n", l.Delivered.Events)
}

func runQoS(duration float64) {
	for _, cos := range []bool{false, true} {
		var newQueue func(int) qos.Scheduler
		name := "FIFO"
		if cos {
			newQueue = func(c int) qos.Scheduler { return qos.NewPriority(c) }
			name = "CoS priority"
		}
		net := buildLine(true, 4, 2e6, newQueue)
		path := []string{"r0", "r1", "r2", "r3"}
		voiceDst := packet.AddrFrom(10, 9, 0, 1)
		bulkDst := packet.AddrFrom(10, 9, 0, 2)
		_, err := net.LDP.SetupLSP(ldp.SetupRequest{ID: "voice", FEC: ldp.FEC{Dst: voiceDst, PrefixLen: 32}, Path: path, CoS: 5})
		check(err)
		_, err = net.LDP.SetupLSP(ldp.SetupRequest{ID: "bulk", FEC: ldp.FEC{Dst: bulkDst, PrefixLen: 32}, Path: path, CoS: 0})
		check(err)

		c := trafficgen.NewCollector(net.Sim)
		c.Attach(net.Router("r3"))
		trafficgen.VoIP(trafficgen.Flow{ID: 1, Dst: voiceDst}, 0, duration).
			Install(net.Sim, net.Router("r0"), c)
		trafficgen.Bulk{Flow: trafficgen.Flow{ID: 2, Dst: bulkDst}, Size: 1188, RateBPS: 4e6, Stop: duration}.
			Install(net.Sim, net.Router("r0"), c)
		net.Sim.Run()

		fmt.Printf("qos scenario, %s:\n", name)
		report(c, duration)
	}
}

func planeName(hardware bool) string {
	if hardware {
		return "embedded hardware"
	}
	return "software"
}

func report(c *trafficgen.Collector, duration float64) {
	for _, id := range c.FlowIDs() {
		f := c.Flow(id)
		fmt.Printf("  flow %d: sent=%d delivered=%d loss=%.2f%% goodput=%.2f Mbps latency %s\n",
			id, f.Sent.Events, f.Delivered.Events, 100*f.LossRate(),
			f.GoodputBPS(duration)/1e6, f.Latency.Summary("ms", 1e3))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
