// reproduce regenerates every result of the paper's evaluation in one
// run, writes the artifacts (figure traces, tables) into an output
// directory, and prints a paper-vs-measured summary with a PASS/FAIL
// verdict per result.
//
// Usage:
//
//	reproduce [-out results]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
)

type check struct {
	name     string
	paper    string
	measured string
	pass     bool
}

var checks []check

func record(name, paper, measured string, pass bool) {
	checks = append(checks, check{name, paper, measured, pass})
}

func main() {
	out := flag.String("out", "results", "directory for regenerated artifacts")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	runTable6(*out)
	runWorstCase()
	runFigures(*out)

	fmt.Printf("\n%-42s %-22s %-22s %s\n", "result", "paper", "measured", "verdict")
	failed := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-42s %-22s %-22s %s\n", c.name, c.paper, c.measured, verdict)
	}
	fmt.Printf("\n%d/%d results reproduced; artifacts in %s/\n", len(checks)-failed, len(checks), *out)
	if err := writeReport(*out); err != nil {
		log.Fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeReport emits the summary as a Markdown artifact next to the
// regenerated figures and tables.
func writeReport(out string) error {
	f, err := os.Create(filepath.Join(out, "REPORT.md"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "# Reproduction report — Embedded MPLS Architecture (Peterkin & Ionescu, 2005)")
	fmt.Fprintln(f)
	fmt.Fprintln(f, "| result | paper | measured | verdict |")
	fmt.Fprintln(f, "|---|---|---|---|")
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass {
			verdict = "**FAIL**"
		}
		fmt.Fprintf(f, "| %s | %s | %s | %s |\n", c.name, c.paper, c.measured, verdict)
	}
	fmt.Fprintln(f)
	fmt.Fprintln(f, "Artifacts: `table6.txt`, `fig14.txt`/`fig14.vcd`, `fig15.*`, `fig16.*` in this directory.")
	return f.Close()
}

func runTable6(out string) {
	b := lsm.NewBench(lsm.LSR)
	f, err := os.Create(filepath.Join(out, "table6.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "Table 6 — processing times for different tasks (measured)")

	c, err := b.ResetOp()
	check1("Table 6: reset", 3, c, err, f)
	c, err = b.UserPush(label.Entry{Label: 1, TTL: 9})
	check1("Table 6: push from the user", 3, c, err, f)
	_, c, err = b.UserPop()
	check1("Table 6: pop from the user", 3, c, err, f)
	c, err = b.WritePair(infobase.Level2, infobase.Pair{Index: 1, NewLabel: 2, Op: label.OpSwap})
	check1("Table 6: write label pair", 3, c, err, f)

	// Search 3n+5 at three sizes.
	for _, n := range []int{1, 10, 100} {
		bb := lsm.NewBench(lsm.LSR)
		for i := 0; i < n; i++ {
			if _, err := bb.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 5, Op: label.OpSwap}); err != nil {
				log.Fatal(err)
			}
		}
		_, c, err := bb.Lookup(infobase.Level2, 999999)
		check1(fmt.Sprintf("Table 6: search (n=%d)", n), 3*n+5, c, err, f)
	}

	// Swap tail.
	bb := lsm.NewBench(lsm.LSR)
	_, _ = bb.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	_, _ = bb.UserPush(label.Entry{Label: 42, TTL: 64})
	res, c, err := bb.Update(lsm.UpdateRequest{})
	if err != nil {
		log.Fatal(err)
	}
	tail := c - lsm.SearchCycles(res.SearchPos)
	fmt.Fprintf(f, "swap from the information base: %d cycles (paper 6)\n", tail)
	record("Table 6: swap from the info base", "6 cycles", fmt.Sprintf("%d cycles", tail), tail == 6)
}

func check1(name string, want, got int, err error, f *os.File) {
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Fprintf(f, "%s: %d cycles (paper %d)\n", name, got, want)
	record(name, fmt.Sprintf("%d cycles", want), fmt.Sprintf("%d cycles", got), got == want)
}

func runWorstCase() {
	b := lsm.NewBench(lsm.LSR)
	total := 0
	c, err := b.ResetOp()
	must(err)
	total += c
	for i := 0; i < 3; i++ {
		c, err = b.UserPush(label.Entry{Label: label.Label(40 + i), TTL: 64})
		must(err)
		total += c
	}
	for i := 0; i < infobase.EntriesPerLevel; i++ {
		idx := infobase.Key(10000 + i)
		if i == infobase.EntriesPerLevel-1 {
			idx = 42
		}
		c, err = b.WritePair(infobase.Level3, infobase.Pair{Index: idx, NewLabel: 900, Op: label.OpSwap})
		must(err)
		total += c
	}
	_, c, err = b.Update(lsm.UpdateRequest{})
	must(err)
	total += c
	record("§4 worst case (composite)", "6167 cycles", fmt.Sprintf("%d cycles", total), total == 6167)
	ms := lsm.DefaultClock.Seconds(total) * 1e3
	record("§4 worst case at 50 MHz", "~0.1233 ms", fmt.Sprintf("%.4f ms", ms), ms > 0.123 && ms < 0.124)
}

func runFigures(out string) {
	figs := []struct {
		name string
		run  func() (*lsm.FigureTrace, error)
		ok   func(*lsm.FigureTrace) (string, string, bool)
	}{
		{"fig14", lsm.Figure14, func(t *lsm.FigureTrace) (string, string, bool) {
			return "label 504, op 3, no discard",
				fmt.Sprintf("label %d, op %d, found=%v", t.Result.Label, t.Result.Op, t.Result.Found),
				t.Result.Found && t.Result.Label == 504 && t.Result.Op == label.OpSwap
		}},
		{"fig15", lsm.Figure15, func(t *lsm.FigureTrace) (string, string, bool) {
			return "label 504 read back",
				fmt.Sprintf("label %d, found=%v", t.Result.Label, t.Result.Found),
				t.Result.Found && t.Result.Label == 504
		}},
		{"fig16", lsm.Figure16, func(t *lsm.FigureTrace) (string, string, bool) {
			return "miss, packet discarded",
				fmt.Sprintf("found=%v, discard=%v", t.Result.Found, t.Bench.HW.PacketDiscard.Bool()),
				!t.Result.Found && t.Bench.HW.PacketDiscard.Bool()
		}},
	}
	for _, fig := range figs {
		tr, err := fig.run()
		must(err)
		for ext, write := range map[string]func(*os.File) error{
			".txt": func(f *os.File) error { return tr.Tracer.WriteTable(f) },
			".vcd": func(f *os.File) error { return tr.Tracer.WriteVCD(f, fig.name, time.Time{}) },
		} {
			f, err := os.Create(filepath.Join(out, fig.name+ext))
			must(err)
			must(write(f))
			must(f.Close())
		}
		paper, measured, ok := fig.ok(tr)
		record("Figure "+fig.name[3:], paper, measured, ok)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
