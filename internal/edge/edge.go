// Package edge attaches layer-2 networks to label edge routers,
// completing the paper's Figure 1 picture: "LERs ... are used as an
// interface between layer 2 networks (ATM, Frame Relay or Ethernet) and
// an MPLS core network". A Port owns one layer-2 adapter; frames arriving
// from the segment are integrity-checked, decapsulated and injected into
// the LER, and packets the LER delivers for hosts on the segment are
// encapsulated back into frames (or ATM cell trains) and handed to the
// wire.
package edge

import (
	"fmt"

	"embeddedmpls/internal/frame"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/stats"
)

// Port is one layer-2 attachment point on an LER.
type Port struct {
	name    string
	adapter frame.Adapter
	router  *router.Router
	hosts   map[packet.Addr]bool

	// OnTransmit receives the layer-2 units of each outbound packet;
	// a Host or a test bench hooks it. Nil drops outbound traffic (with
	// accounting).
	OnTransmit func(units [][]byte)

	// RxFrames / TxFrames count layer-2 units; RxPackets / TxPackets
	// count network packets; Errors counts undecodable arrivals.
	RxFrames  stats.Counter
	TxFrames  stats.Counter
	RxPackets stats.Counter
	TxPackets stats.Counter
	Errors    uint64
}

// NewPort creates a port on r using the given layer-2 adapter.
func NewPort(name string, r *router.Router, a frame.Adapter) *Port {
	return &Port{
		name:    name,
		adapter: a,
		router:  r,
		hosts:   make(map[packet.Addr]bool),
	}
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Medium returns the port's layer-2 technology.
func (p *Port) Medium() frame.Medium { return p.adapter.Medium() }

// AttachHost declares addr reachable on this segment: the LER delivers
// its packets here, and registers the address as local so unlabelled
// arrivals terminate.
func (p *Port) AttachHost(addr packet.Addr) {
	p.hosts[addr] = true
	p.router.AddLocal(addr)
}

// FromWire accepts the layer-2 units of one packet from the segment:
// decapsulate, integrity-check, parse and inject into the LER.
func (p *Port) FromWire(units [][]byte) error {
	for _, u := range units {
		p.RxFrames.Add(len(u))
	}
	payload, err := p.adapter.Decap(units)
	if err != nil {
		p.Errors++
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	pkt, err := packet.Unmarshal(payload)
	if err != nil {
		p.Errors++
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	p.RxPackets.Add(pkt.Size())
	p.router.Inject(pkt)
	return nil
}

// SendFromHost is the convenience path for tests and generators: build a
// packet from a host on this segment, frame it, and push it through
// FromWire — exercising the full layer-2 round trip on ingress too.
func (p *Port) SendFromHost(pkt *packet.Packet) error {
	payload, err := pkt.Marshal()
	if err != nil {
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	units, err := p.adapter.Encap(payload, pkt.Labelled())
	if err != nil {
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	return p.FromWire(units)
}

// deliver encapsulates an outbound packet onto the segment.
func (p *Port) deliver(pkt *packet.Packet) error {
	payload, err := pkt.Marshal()
	if err != nil {
		p.Errors++
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	units, err := p.adapter.Encap(payload, pkt.Labelled())
	if err != nil {
		p.Errors++
		return fmt.Errorf("edge %s: %w", p.name, err)
	}
	p.TxPackets.Add(pkt.Size())
	for _, u := range units {
		p.TxFrames.Add(len(u))
	}
	if p.OnTransmit != nil {
		p.OnTransmit(units)
	}
	return nil
}

// Attach installs the ports as the router's delivery sink: delivered
// packets are dispatched to the port whose segment hosts the destination.
// Packets for destinations on no port are counted as errors on the first
// port (there is always at least one).
func Attach(r *router.Router, ports ...*Port) {
	if len(ports) == 0 {
		panic("edge: Attach needs at least one port")
	}
	r.OnDeliver = func(pkt *packet.Packet) {
		for _, p := range ports {
			if p.hosts[pkt.Header.Dst] {
				// Encap failures are already accounted on the port.
				_ = p.deliver(pkt)
				return
			}
		}
		ports[0].Errors++
	}
}
