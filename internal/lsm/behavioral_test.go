package lsm

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

func TestBehavioralUserOps(t *testing.T) {
	m := NewBehavioral(LER)
	if err := m.UserPush(label.Entry{Label: 1, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if err := m.UserPush(label.Entry{Label: 2, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	e, err := m.UserPop()
	if err != nil || e.Label != 2 {
		t.Fatalf("pop = %v, %v", e, err)
	}
	if m.Stack().Depth() != 1 {
		t.Errorf("depth = %d, want 1", m.Stack().Depth())
	}
	m.Reset()
	if !m.Stack().Empty() {
		t.Error("Reset did not clear the stack")
	}
	if m.RouterType() != LER {
		t.Errorf("router type = %v, want LER", m.RouterType())
	}
}

func TestBehavioralLookupPositions(t *testing.T) {
	m := NewBehavioral(LER)
	for i := 0; i < 5; i++ {
		if err := m.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(10 + i), NewLabel: label.Label(100 + i), Op: label.OpSwap}); err != nil {
			t.Fatal(err)
		}
	}
	lbl, op, pos, found := m.Lookup(infobase.Level2, 12)
	if !found || lbl != 102 || op != label.OpSwap || pos != 3 {
		t.Errorf("lookup 12 = (%d, %v, pos %d, %v), want (102, swap, 3, true)", lbl, op, pos, found)
	}
	_, _, pos, found = m.Lookup(infobase.Level2, 99)
	if found || pos != 5 {
		t.Errorf("miss = (pos %d, %v), want (5, false)", pos, found)
	}
	_, _, pos, found = m.Lookup(infobase.Level3, 99)
	if found || pos != 0 {
		t.Errorf("empty level miss = (pos %d, %v), want (0, false)", pos, found)
	}
}

func TestBehavioralUpdateIngressPush(t *testing.T) {
	m := NewBehavioral(LER)
	if err := m.WritePair(infobase.Level1, infobase.Pair{Index: 0x0a000001, NewLabel: 777, Op: label.OpPush}); err != nil {
		t.Fatal(err)
	}
	res := m.Update(UpdateRequest{PacketID: 0x0a000001, TTLIn: 64, CoSIn: 5})
	if res.Discarded() {
		t.Fatalf("ingress push discarded: %v", res.Discard)
	}
	top, err := m.Stack().Top()
	if err != nil {
		t.Fatal(err)
	}
	want := label.Entry{Label: 777, CoS: 5, Bottom: true, TTL: 63}
	if top != want {
		t.Errorf("pushed entry = %v, want %v", top, want)
	}
	if UpdateCycles(res) != SearchCycles(1)+CyclesPushFromIB {
		t.Errorf("cost = %d, want %d", UpdateCycles(res), SearchCycles(1)+CyclesPushFromIB)
	}
}

func TestBehavioralUpdateSwapPreservesCoS(t *testing.T) {
	m := NewBehavioral(LSR)
	_ = m.UserPush(label.Entry{Label: 42, CoS: 6, TTL: 10})
	_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 99, Op: label.OpSwap})
	res := m.Update(UpdateRequest{CoSIn: 1}) // control CoS must be ignored
	if res.Discarded() {
		t.Fatalf("swap discarded: %v", res.Discard)
	}
	top, _ := m.Stack().Top()
	if top.Label != 99 || top.CoS != 6 || top.TTL != 9 || !top.Bottom {
		t.Errorf("top = %v, want lbl=99 cos=6 ttl=9 S=1", top)
	}
}

func TestBehavioralUpdatePopToEmpty(t *testing.T) {
	m := NewBehavioral(LER)
	_ = m.UserPush(label.Entry{Label: 42, TTL: 5})
	_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 0, Op: label.OpPop})
	res := m.Update(UpdateRequest{})
	if res.Discarded() {
		t.Fatalf("egress pop discarded: %v", res.Discard)
	}
	if !m.Stack().Empty() {
		t.Error("stack not empty after egress pop")
	}
}

func TestBehavioralUpdatePopPropagatesTTL(t *testing.T) {
	m := NewBehavioral(LSR)
	_ = m.UserPush(label.Entry{Label: 10, TTL: 200})
	_ = m.UserPush(label.Entry{Label: 42, TTL: 7})
	_ = m.WritePair(infobase.Level3, infobase.Pair{Index: 42, NewLabel: 0, Op: label.OpPop})
	res := m.Update(UpdateRequest{})
	if res.Discarded() {
		t.Fatalf("pop discarded: %v", res.Discard)
	}
	top, _ := m.Stack().Top()
	// RFC 3032 TTL propagation: the exposed entry inherits the
	// decremented TTL of the removed one.
	if top.Label != 10 || top.TTL != 6 {
		t.Errorf("exposed top = %v, want lbl=10 ttl=6", top)
	}
}

func TestBehavioralUpdateDiscards(t *testing.T) {
	t.Run("not found", func(t *testing.T) {
		m := NewBehavioral(LSR)
		_ = m.UserPush(label.Entry{Label: 42, TTL: 64})
		res := m.Update(UpdateRequest{})
		if res.Discard != DiscardNotFound {
			t.Errorf("discard = %v, want not-found", res.Discard)
		}
		if !m.Stack().Empty() {
			t.Error("discard must reset the stack")
		}
	})
	t.Run("ttl expired", func(t *testing.T) {
		m := NewBehavioral(LSR)
		_ = m.UserPush(label.Entry{Label: 42, TTL: 1})
		_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
		if res := m.Update(UpdateRequest{}); res.Discard != DiscardTTLExpired {
			t.Errorf("discard = %v, want ttl-expired", res.Discard)
		}
	})
	t.Run("op none is inconsistent", func(t *testing.T) {
		m := NewBehavioral(LSR)
		_ = m.UserPush(label.Entry{Label: 42, TTL: 64})
		_ = m.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpNone})
		if res := m.Update(UpdateRequest{}); res.Discard != DiscardInconsistent {
			t.Errorf("discard = %v, want inconsistent", res.Discard)
		}
	})
	t.Run("unlabelled packet at an LSR", func(t *testing.T) {
		m := NewBehavioral(LSR)
		_ = m.WritePair(infobase.Level1, infobase.Pair{Index: 1, NewLabel: 9, Op: label.OpPush})
		if res := m.Update(UpdateRequest{PacketID: 1, TTLIn: 64}); res.Discard != DiscardInconsistent {
			t.Errorf("discard = %v, want inconsistent", res.Discard)
		}
	})
	t.Run("non-push on empty stack", func(t *testing.T) {
		m := NewBehavioral(LER)
		_ = m.WritePair(infobase.Level1, infobase.Pair{Index: 1, NewLabel: 9, Op: label.OpSwap})
		if res := m.Update(UpdateRequest{PacketID: 1, TTLIn: 64}); res.Discard != DiscardInconsistent {
			t.Errorf("discard = %v, want inconsistent", res.Discard)
		}
	})
	t.Run("push beyond max depth", func(t *testing.T) {
		m := NewBehavioral(LSR)
		_ = m.UserPush(label.Entry{Label: 1, TTL: 64})
		_ = m.UserPush(label.Entry{Label: 2, TTL: 64})
		_ = m.UserPush(label.Entry{Label: 42, TTL: 64})
		_ = m.WritePair(infobase.Level3, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpPush})
		if res := m.Update(UpdateRequest{}); res.Discard != DiscardInconsistent {
			t.Errorf("discard = %v, want inconsistent", res.Discard)
		}
	})
	t.Run("ingress with zero ttl", func(t *testing.T) {
		m := NewBehavioral(LER)
		_ = m.WritePair(infobase.Level1, infobase.Pair{Index: 1, NewLabel: 9, Op: label.OpPush})
		if res := m.Update(UpdateRequest{PacketID: 1, TTLIn: 1}); res.Discard != DiscardTTLExpired {
			t.Errorf("discard = %v, want ttl-expired", res.Discard)
		}
	})
}

// TestBehavioralTunnelRoundTrip drives a 2-level tunnel end to end:
// ingress push, tunnel push, tunnel swap, tunnel pop, egress pop —
// checking the stack shape at every step.
func TestBehavioralTunnelRoundTrip(t *testing.T) {
	const dst = 0xc0a80101
	ler := NewBehavioral(LER)
	_ = ler.WritePair(infobase.Level1, infobase.Pair{Index: dst, NewLabel: 100, Op: label.OpPush})
	if res := ler.Update(UpdateRequest{PacketID: dst, TTLIn: 64, CoSIn: 2}); res.Discarded() {
		t.Fatalf("ingress: %v", res.Discard)
	}
	stack := ler.Stack()

	hop := func(name string, m *Behavioral, wantDepth int) {
		t.Helper()
		m.Stack().Reset()
		for _, e := range stack.Entries() {
			if err := m.Stack().Push(e); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if res := m.Update(UpdateRequest{PacketID: dst}); res.Discarded() {
			t.Fatalf("%s discarded: %v", name, res.Discard)
		}
		stack = m.Stack()
		if stack.Depth() != wantDepth {
			t.Fatalf("%s: depth = %d, want %d (%v)", name, stack.Depth(), wantDepth, stack)
		}
		if !stack.Consistent() {
			t.Fatalf("%s: inconsistent S bits: %v", name, stack)
		}
	}

	tunnelIn := NewBehavioral(LSR)
	_ = tunnelIn.WritePair(infobase.Level2, infobase.Pair{Index: 100, NewLabel: 200, Op: label.OpPush})
	hop("tunnel ingress", tunnelIn, 2)

	core := NewBehavioral(LSR)
	_ = core.WritePair(infobase.Level3, infobase.Pair{Index: 200, NewLabel: 201, Op: label.OpSwap})
	hop("tunnel core", core, 2)

	tunnelOut := NewBehavioral(LSR)
	_ = tunnelOut.WritePair(infobase.Level3, infobase.Pair{Index: 201, NewLabel: 0, Op: label.OpPop})
	hop("tunnel egress", tunnelOut, 1)

	egress := NewBehavioral(LSR)
	_ = egress.WritePair(infobase.Level2, infobase.Pair{Index: 100, NewLabel: 0, Op: label.OpPop})
	hop("egress", egress, 0)
}
