package transport

import (
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// sink collects delivered packets (cloned — the receiver reuses its
// batch storage) and lets tests wait for a count.
type sink struct {
	mu      sync.Mutex
	got     []Inbound
	batches int
}

func (s *sink) deliver(batch []Inbound) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	for _, in := range batch {
		s.got = append(s.got, Inbound{P: in.P.Clone(), From: in.From})
	}
}

func (s *sink) wait(t *testing.T, n int) []Inbound {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]Inbound(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Fatalf("timed out waiting for %d packets, have %d", n, len(s.got))
	return nil
}

func labelled(seq uint64) *packet.Packet {
	p := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 9), 64, []byte("payload"))
	p.SeqNo = seq
	p.Stack.Push(label.Entry{Label: 500, TTL: 64})
	return p
}

// faultFunc adapts a closure to netsim.Fault.
type faultFunc func(p *packet.Packet, now netsim.Time) netsim.Verdict

func (f faultFunc) Transmit(p *packet.Packet, now netsim.Time) netsim.Verdict { return f(p, now) }

func newPair(t *testing.T, aOpts, bOpts []Option) (*Duplex, *sink, *sink) {
	t.Helper()
	var sa, sb sink
	d, err := Pair("a", "b", sa.deliver, sb.deliver, aOpts, bOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, &sa, &sb
}

func TestPairDelivery(t *testing.T) {
	d, sa, sb := newPair(t, nil, nil)
	for i := 0; i < 10; i++ {
		d.A.Send(labelled(uint64(i)))
	}
	got := sb.wait(t, 10)
	for i, in := range got {
		if in.From != "a" {
			t.Errorf("packet %d attributed to %q, want a", i, in.From)
		}
		if in.P.SeqNo != uint64(i) {
			t.Errorf("packet %d has seq %d: reordered or lost", i, in.P.SeqNo)
		}
		if top, err := in.P.Stack.Top(); err != nil || top.Label != 500 {
			t.Errorf("packet %d stack top = %v, %v; want label 500", i, top, err)
		}
	}
	d.B.Send(labelled(99))
	if in := sa.wait(t, 1); in[0].From != "b" {
		t.Errorf("reverse packet attributed to %q, want b", in[0].From)
	}
	if tx := d.A.Metrics().TxPackets.Load(); tx != 10 {
		t.Errorf("A TxPackets = %d, want 10", tx)
	}
}

// TestCorruptionBecomesWireDecodeDrop is the fault-hook contract: a
// fault that mutates the packet damages the bytes in flight, so the far
// end counts a wire-decode drop instead of forwarding a corrupt frame.
func TestCorruptionBecomesWireDecodeDrop(t *testing.T) {
	var drops telemetry.DropCounters
	d, _, sb := newPair(t, nil, []Option{WithDropCounters(&drops)})

	d.A.SetFault(faultFunc(func(p *packet.Packet, _ netsim.Time) netsim.Verdict {
		p.Stack.Swap(501) // label corruption in flight
		return netsim.Verdict{}
	}))
	d.A.Send(labelled(1))
	d.A.SetFault(nil)
	d.A.Send(labelled(2))

	got := sb.wait(t, 1)
	if got[0].P.SeqNo != 2 {
		t.Errorf("delivered seq %d, want only the clean packet (2)", got[0].P.SeqNo)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.RB.Metrics().DecodeErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := d.RB.Metrics().DecodeErrors.Load(); n != 1 {
		t.Errorf("DecodeErrors = %d, want 1", n)
	}
	if n := drops.Get(telemetry.ReasonWireDecode); n != 1 {
		t.Errorf("wire-decode drops = %d, want 1", n)
	}
}

func TestDownLinkCountsLost(t *testing.T) {
	d, _, _ := newPair(t, nil, nil)
	var dropped []telemetry.Reason
	d.A.SetOnDrop(func(_ *packet.Packet, reason telemetry.Reason) {
		dropped = append(dropped, reason)
	})
	d.A.SetDown(true)
	if !d.A.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	d.A.Send(labelled(1))
	if n := d.A.Metrics().TxLost.Load(); n != 1 {
		t.Errorf("TxLost = %d, want 1", n)
	}
	if len(dropped) != 1 || dropped[0] != telemetry.ReasonNoRoute {
		t.Errorf("onDrop saw %v, want one no-route", dropped)
	}
	d.A.SetDown(false)
	d.A.Send(labelled(2))
	if n := d.A.Metrics().TxPackets.Load(); n != 1 {
		t.Errorf("TxPackets after restore = %d, want 1", n)
	}
}

func TestFaultDropAndDelay(t *testing.T) {
	d, _, sb := newPair(t, nil, nil)
	d.A.SetFault(faultFunc(func(_ *packet.Packet, _ netsim.Time) netsim.Verdict {
		return netsim.Verdict{Drop: true}
	}))
	d.A.Send(labelled(1))
	if n := d.A.Metrics().TxLost.Load(); n != 1 {
		t.Errorf("TxLost = %d, want 1 after fault drop", n)
	}

	// A delay verdict defers the socket write but still delivers.
	d.A.SetFault(faultFunc(func(_ *packet.Packet, _ netsim.Time) netsim.Verdict {
		return netsim.Verdict{ExtraDelay: 0.02}
	}))
	start := time.Now()
	d.A.Send(labelled(2))
	got := sb.wait(t, 1)
	if got[0].P.SeqNo != 2 {
		t.Errorf("delivered seq %d, want 2", got[0].P.SeqNo)
	}
	if since := time.Since(start); since < 15*time.Millisecond {
		t.Errorf("delayed packet arrived after %v, want >= ~20ms", since)
	}
}

// TestBatching: a burst larger than the batch size arrives complete, in
// more than one sink call, each no larger than the configured batch.
func TestBatching(t *testing.T) {
	opts := []Option{WithBatch(4), WithFlushInterval(time.Millisecond)}
	d, _, sb := newPair(t, nil, opts)
	const n = 10
	for i := 0; i < n; i++ {
		d.A.Send(labelled(uint64(i)))
	}
	sb.wait(t, n)
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.batches < n/4 {
		t.Errorf("%d packets arrived in %d batches, want >= %d", n, sb.batches, n/4)
	}
}

// TestLinkCloseConcurrentWithSend: closing a link while senders hammer
// it must not race, double-release buffers, or lose accounting —
// every send ends up in TxPackets or TxLost/TxErrors.
func TestLinkCloseConcurrentWithSend(t *testing.T) {
	d, _, _ := newPair(t, nil, nil)
	const senders, per = 4, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.A.Send(labelled(uint64(i)))
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := d.A.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.A.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	wg.Wait()
	m := d.A.Metrics()
	total := m.TxPackets.Load() + m.TxLost.Load() + m.TxErrors.Load()
	if total != senders*per {
		t.Errorf("accounted %d sends, want %d", total, senders*per)
	}
}

// TestSharedSocketNames: one receive socket shared by several
// neighbours attributes arrivals via the datagram's source NodeID.
func TestSharedSocketNames(t *testing.T) {
	var s sink
	names := []string{"a", "b", "c"}
	r, err := Listen("127.0.0.1:0", s.deliver, WithNames(names))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for id, name := range names {
		l, err := Dial(name, "hub", r.Addr().String(), WithSource(NodeID(id)))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		l.Send(labelled(uint64(id)))
	}
	got := s.wait(t, len(names))
	seen := map[string]bool{}
	for _, in := range got {
		seen[in.From] = true
	}
	for _, name := range names {
		if !seen[name] {
			t.Errorf("no arrival attributed to %s (got %v)", name, seen)
		}
	}
}
