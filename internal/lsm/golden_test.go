package lsm

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure traces")

// TestFigureTracesMatchGolden locks the complete cycle-by-cycle traces of
// Figures 14-16 against committed golden files: any change to the control
// unit, the data path or the trace machinery that moves a single signal
// transition shows up as a diff. Regenerate deliberately with
// `go test ./internal/lsm -run Golden -update`.
func TestFigureTracesMatchGolden(t *testing.T) {
	figures := []struct {
		name string
		run  func() (*FigureTrace, error)
	}{
		{"fig14", Figure14},
		{"fig15", Figure15},
		{"fig16", Figure16},
	}
	for _, f := range figures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			tr, err := f.run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Tracer.WriteTable(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", f.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s trace diverged from golden.\n--- got ---\n%s\n--- want ---\n%s",
					f.name, buf.String(), want)
			}
		})
	}
}
