package signaling

import "embeddedmpls/internal/telemetry"

type config struct {
	timers       Timers
	until        float64
	drainDelay   float64
	retryBackoff float64
	retryMax     int
	setupTimeout float64
	events       *telemetry.EventCounters
}

func defaults() config {
	return config{
		timers:       Timers{}.withDefaults(),
		drainDelay:   0.02,
		retryBackoff: 0.05,
		retryMax:     5,
		setupTimeout: 0.25,
	}
}

// Option configures a Speaker.
type Option func(*config)

// WithTimers sets the session FSM timers (zero fields take defaults).
func WithTimers(t Timers) Option {
	return func(c *config) { c.timers = t.withDefaults() }
}

// WithUntil stops session ticking at the given clock time so a bounded
// scenario's event queue can drain. 0 ticks forever (stop with Stop).
func WithUntil(t float64) Option {
	return func(c *config) { c.until = t }
}

// WithEvents attaches an event counter sink for session transitions,
// label message receipts, protection switches and retries.
func WithEvents(e *telemetry.EventCounters) Option {
	return func(c *config) { c.events = e }
}

// WithDrainDelay sets the make-before-break drain: how long a
// superseded path generation keeps forwarding before its release is
// sent. <=0 keeps the default 20ms.
func WithDrainDelay(d float64) Option {
	return func(c *config) {
		if d > 0 {
			c.drainDelay = d
		}
	}
}

// WithRetry sets the retry budget and backoff base for establishment
// and reroute attempts.
func WithRetry(max int, backoff float64) Option {
	return func(c *config) {
		if max > 0 {
			c.retryMax = max
		}
		if backoff > 0 {
			c.retryBackoff = backoff
		}
	}
}

// WithSetupTimeout sets how long the ingress waits for a mapping before
// retransmitting its request.
func WithSetupTimeout(d float64) Option {
	return func(c *config) {
		if d > 0 {
			c.setupTimeout = d
		}
	}
}
