package dataplane

import (
	"sync"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// shard is one worker's slice of the engine: a bounded ingress queue and
// the statistics accumulated from that worker's batches. The mutex only
// guards the queue handoff and the (per-batch, not per-packet) stats
// fold, so producer/worker contention is brief and confined to one
// shard.
type shard struct {
	mu       sync.Mutex
	notEmpty *sync.Cond // queue gained a packet, or shard closed
	notFull  *sync.Cond // worker drained, or shard closed
	sched    qos.Scheduler
	closed   bool
	agg      shardAgg

	// drops is the engine-wide reason accounting; admission rejections
	// land here as queue-overfull. lat, depth and egBatch are this
	// shard's lock-free histograms (batch seconds, per-packet stack
	// depth, egress flush sizes), written only by the shard's worker and
	// merged at Snapshot time. egFlush counts egress flushes by trigger
	// (size, timer, close) the same single-writer way.
	drops   *telemetry.DropCounters
	lat     *telemetry.Histogram
	depth   *telemetry.Histogram
	egBatch *telemetry.Histogram
	egFlush [numEgressTriggers]atomic.Uint64
}

// shardAgg is the shard's accumulated accounting, guarded by shard.mu.
type shardAgg struct {
	submitted     stats.Counter
	forwarded     stats.Counter
	delivered     stats.Counter
	dropped       stats.Counter
	dropsByReason [8]uint64
	batchTime     stats.Sample
	busy          float64
	cacheHits     uint64
	cacheMisses   uint64
}

func newShard(policy DropPolicy, queueCap int, drops *telemetry.DropCounters) *shard {
	var sched qos.Scheduler
	switch policy {
	case CoSAware:
		perClass := queueCap / qos.NumClasses
		if perClass < 1 {
			perClass = 1
		}
		sched = qos.NewPriority(perClass)
	default:
		sched = qos.NewFIFO(queueCap)
	}
	s := &shard{
		sched:   sched,
		drops:   drops,
		lat:     telemetry.NewHistogram(telemetry.LatencyBounds()...),
		depth:   telemetry.NewHistogram(telemetry.DepthBounds()...),
		egBatch: telemetry.NewHistogram(telemetry.BatchBounds()...),
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	return s
}

// enqueue admits one packet, blocking for space when wait is set.
func (s *shard) enqueue(p *packet.Packet, wait bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueueLocked(p, wait)
}

// enqueueBatch admits a group of packets under one lock acquisition and
// returns how many were accepted.
func (s *shard) enqueueBatch(ps []*packet.Packet, wait bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	accepted := 0
	for _, p := range ps {
		if s.enqueueLocked(p, wait) {
			accepted++
		} else if s.closed {
			break
		}
	}
	return accepted
}

func (s *shard) enqueueLocked(p *packet.Packet, wait bool) bool {
	if wait {
		for s.sched.Full(p) && !s.closed {
			s.notFull.Wait()
		}
	}
	if s.closed {
		return false
	}
	if !s.sched.Enqueue(p) {
		s.drops.Inc(telemetry.ReasonQueueOverfull)
		return false // the scheduler counted the drop in its own total
	}
	s.agg.submitted.Add(p.Size())
	s.notEmpty.Signal()
	return true
}

// drain blocks until the queue holds packets (or the shard is closed and
// empty, in which case it returns nil to stop the worker), then moves up
// to max packets into buf.
func (s *shard) drain(buf []*packet.Packet, max int) []*packet.Packet {
	s.mu.Lock()
	for s.sched.Len() == 0 && !s.closed {
		s.notEmpty.Wait()
	}
	if s.sched.Len() == 0 {
		s.mu.Unlock()
		return nil
	}
	for len(buf) < max {
		p, ok := s.sched.Dequeue()
		if !ok {
			break
		}
		buf = append(buf, p)
	}
	s.notFull.Broadcast()
	s.mu.Unlock()
	return buf
}

// tryDrain moves up to max queued packets into buf without blocking —
// the worker's poll while egress staging holds packets, where parking
// on the condition variable would leave them stranded. stop reports
// that the shard is closed with nothing left to drain.
func (s *shard) tryDrain(buf []*packet.Packet, max int) (out []*packet.Packet, stop bool) {
	s.mu.Lock()
	if s.sched.Len() == 0 {
		closed := s.closed
		s.mu.Unlock()
		return buf, closed
	}
	for len(buf) < max {
		p, ok := s.sched.Dequeue()
		if !ok {
			break
		}
		buf = append(buf, p)
	}
	s.notFull.Broadcast()
	s.mu.Unlock()
	return buf, false
}

// waitArrival blocks for up to ivl waiting for the queue to gain a
// packet or the shard to close — the worker's pause while egress
// staging holds packets and the queue is momentarily idle. It polls
// with an escalating step rather than sleeping the whole interval, so
// a generous flush interval cannot stall Close (or delay a fresh
// arrival) by more than one step.
func (s *shard) waitArrival(ivl time.Duration) {
	const maxStep = 5 * time.Millisecond
	step := 50 * time.Microsecond
	deadline := time.Now().Add(ivl)
	for {
		s.mu.Lock()
		ready := s.sched.Len() > 0 || s.closed
		s.mu.Unlock()
		if ready {
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		if remain > step {
			remain = step
		}
		time.Sleep(remain)
		if step < maxStep {
			step *= 2
		}
	}
}

// observeEgress records one egress flush: the batch size into the
// shard's single-writer histogram, the trigger into its counter.
func (s *shard) observeEgress(n, trigger int) {
	s.egBatch.Observe(float64(n))
	s.egFlush[trigger].Add(1)
}

// fold merges one processed batch's accounting into the shard, one lock
// acquisition per batch so the per-packet path stays contention-free.
func (s *shard) fold(acc *batchAcc) {
	s.mu.Lock()
	s.agg.forwarded.Merge(acc.forwarded)
	s.agg.delivered.Merge(acc.delivered)
	s.agg.dropped.Merge(acc.dropped)
	for r, n := range acc.dropsByReason {
		s.agg.dropsByReason[r] += n
	}
	s.agg.batchTime.Observe(acc.busy)
	s.agg.busy += acc.busy
	s.agg.cacheHits += acc.cacheHits
	s.agg.cacheMisses += acc.cacheMisses
	s.mu.Unlock()
}

// setDrops repoints admission-rejection accounting (SetTelemetry).
func (s *shard) setDrops(c *telemetry.DropCounters) {
	s.mu.Lock()
	s.drops = c
	s.mu.Unlock()
}

func (s *shard) close() {
	s.mu.Lock()
	s.closed = true
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
	s.mu.Unlock()
}

// batchAcc is a worker's lock-free per-batch accumulator.
type batchAcc struct {
	forwarded     stats.Counter
	delivered     stats.Counter
	dropped       stats.Counter
	dropsByReason [8]uint64
	busy          float64
	cacheHits     uint64
	cacheMisses   uint64
}

func (a *batchAcc) reset() { *a = batchAcc{} }

func (a *batchAcc) record(p *packet.Packet, res swmpls.Result) {
	switch res.Action {
	case swmpls.Forward:
		a.forwarded.Add(p.Size())
	case swmpls.Deliver:
		a.delivered.Add(p.Size())
	default:
		a.dropped.Add(p.Size())
		if int(res.Drop) < len(a.dropsByReason) {
			a.dropsByReason[res.Drop]++
		}
	}
}
