package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// The standard dataplane workload: a transit LSR with a full complement
// of ILM entries, traffic spread over many flows so the shard hash
// balances the workers.
const (
	dpFlows      = 1024
	dpILMEntries = 1024
	dpQueueCap   = 4096
	dpBatch      = 128
	dpReps       = 3
)

// dpResult is one row of the scaling sweep, as written to the JSON
// trajectory file.
type dpResult struct {
	Workers int `json:"workers"`
	// CapacityPPS is packets/sec over the engine's critical path
	// (max per-worker busy time): the sustained throughput of the
	// sharded engine with a core per worker. On a multi-core host it
	// converges with WallPPS; on a core-limited host it is the honest
	// scaling figure, since the workers' real parallelism is serialised
	// by the machine, not the engine.
	CapacityPPS float64 `json:"capacity_pps"`
	// WallPPS is packets/sec over host wall-clock time for the whole
	// submit+process run.
	WallPPS   float64 `json:"wall_pps"`
	Processed uint64  `json:"processed"`
	DropRate  float64 `json:"drop_rate"`
	// Speedup is CapacityPPS relative to the 1-worker row.
	Speedup float64 `json:"speedup"`
	// CacheHitRate is the fraction of processed packets resolved from
	// the per-worker flow cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type dpReport struct {
	Benchmark  string     `json:"benchmark"`
	Packets    int        `json:"packets"`
	Flows      int        `json:"flows"`
	ILMEntries int        `json:"ilm_entries"`
	Results    []dpResult `json:"results"`
}

// dpWorkload pre-builds the packet set once; runs re-arm the label
// stacks in place between sweeps (the swap rewrote them).
type dpWorkload struct {
	packets []*packet.Packet
}

func newDPWorkload(n int) *dpWorkload {
	w := &dpWorkload{packets: make([]*packet.Packet, n)}
	for i := range w.packets {
		flow := i % dpFlows
		p := packet.New(packet.AddrFrom(192, 0, 2, byte(flow)), packet.AddrFrom(10, 0, 0, 9), 64, nil)
		p.Header.FlowID = uint16(flow)
		w.packets[i] = p
	}
	w.arm()
	return w
}

func (w *dpWorkload) arm() {
	for i, p := range w.packets {
		flow := i % dpFlows
		p.Stack.Reset()
		if err := p.Stack.Push(label.Entry{Label: label.Label(16 + flow%dpILMEntries), TTL: 64}); err != nil {
			panic(err)
		}
	}
}

func installDPTable(e *dataplane.Engine) error {
	return e.Update(func(f *swmpls.Forwarder) error {
		for i := 0; i < dpILMEntries; i++ {
			err := f.InstallILM(label.Label(16+i), swmpls.NHLFE{
				NextHop:    "peer",
				Op:         label.OpSwap,
				PushLabels: []label.Label{label.Label(20000 + i)},
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// dpRun pushes the workload through a fresh engine and returns the
// measured row (without Speedup, which the sweep fills in). batch <= 0
// selects the standard workload batch size; kind picks the snapshot's
// ILM backend.
func dpRun(w *dpWorkload, workers, batch int, kind swmpls.ILMKind) (dpResult, error) {
	if batch <= 0 {
		batch = dpBatch
	}
	w.arm()
	e := dataplane.New(
		dataplane.WithWorkers(workers),
		dataplane.WithQueueCap(dpQueueCap),
		dataplane.WithBatch(batch),
		dataplane.WithNewTable(func() *swmpls.Forwarder { return swmpls.New(swmpls.WithILM(kind)) }),
	)
	if err := installDPTable(e); err != nil {
		return dpResult{}, err
	}
	start := time.Now()
	for off := 0; off < len(w.packets); off += dpQueueCap {
		end := off + dpQueueCap
		if end > len(w.packets) {
			end = len(w.packets)
		}
		e.Submit(w.packets[off:end], dataplane.SubmitOpts{Wait: true})
	}
	e.Close()
	wall := time.Since(start).Seconds()

	snap := e.Snapshot()
	processed := snap.Processed()
	if processed == 0 {
		return dpResult{}, fmt.Errorf("dataplane bench: nothing processed at %d workers", workers)
	}
	var critical float64
	for _, busy := range snap.WorkerBusy {
		if busy > critical {
			critical = busy
		}
	}
	offered := snap.Submitted.Events + snap.QueueDropped
	res := dpResult{
		Workers:   workers,
		WallPPS:   float64(processed) / wall,
		Processed: processed,
		DropRate:  float64(snap.QueueDropped) / float64(offered),
	}
	if probes := snap.CacheHits + snap.CacheMisses; probes > 0 {
		res.CacheHitRate = float64(snap.CacheHits) / float64(probes)
	}
	if critical > 0 {
		res.CapacityPPS = float64(processed) / critical
	}
	return res, nil
}

// runDataplane sweeps the engine from 1 to maxWorkers and reports the
// scaling, optionally writing the machine-readable trajectory file.
// batch and kind are the -batch / -infobase plumbing: per-worker batch
// size (<=0: standard) and ILM backend of the published snapshots.
func runDataplane(maxWorkers, packets, batch int, kind swmpls.ILMKind, jsonPath string) error {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	fmt.Printf("Dataplane engine scaling — %d packets over %d flows through %d ILM entries (%s ILM, best of %d runs)\n",
		packets, dpFlows, dpILMEntries, kind, dpReps)
	w := newDPWorkload(packets)

	report := dpReport{
		Benchmark:  "dataplane",
		Packets:    packets,
		Flows:      dpFlows,
		ILMEntries: dpILMEntries,
	}
	fmt.Printf("%8s %15s %15s %10s %10s\n", "workers", "capacity pps", "wall pps", "speedup", "drop rate")
	for workers := 1; workers <= maxWorkers; workers++ {
		var best dpResult
		for rep := 0; rep < dpReps; rep++ {
			res, err := dpRun(w, workers, batch, kind)
			if err != nil {
				return err
			}
			if res.CapacityPPS > best.CapacityPPS {
				best = res
			}
		}
		if len(report.Results) > 0 {
			best.Speedup = best.CapacityPPS / report.Results[0].CapacityPPS
		} else {
			best.Speedup = 1
		}
		report.Results = append(report.Results, best)
		fmt.Printf("%8d %15.0f %15.0f %9.2fx %9.2f%%\n",
			best.Workers, best.CapacityPPS, best.WallPPS, best.Speedup, best.DropRate*100)
	}

	monotonic := true
	for i := 1; i < len(report.Results); i++ {
		if report.Results[i].CapacityPPS <= report.Results[i-1].CapacityPPS {
			monotonic = false
		}
	}
	if monotonic {
		fmt.Printf("scaling: capacity increases monotonically from 1 to %d workers\n", maxWorkers)
	} else {
		fmt.Println("scaling: WARNING — capacity is not monotonic (noisy host?)")
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
