package config

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// TestQuarantineSparesControlPlane is the hostile-wire integration
// test: two real processes' worth of nodes (two BuildNode networks in
// one test binary) exchange keepalives over loopback UDP while a
// malformed-datagram flood — attributed to the genuine peer — trips
// node a's quarantine breaker. The breaker must open (trip event),
// close again after the hold (clear event), and at no point may the
// control-plane session flap: quarantine blocks a peer's labelled
// traffic, never the keepalives that tell us the peer recovered.
//
// Run it under -race: the flood exercises guard.Malformed/PreAdmit on
// socket goroutines concurrently with the locked network pump.
func TestQuarantineSparesControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak")
	}
	addrs := loopbackAddrs(t, 2)
	body := `{
	  "name": "quarantine vs keepalives",
	  "duration_s": 1.5,
	  "nodes": [{"name": "a"}, {"name": "b"}],
	  "links": [{"a": "a", "b": "b", "rate_mbps": 20, "delay_ms": 0.1}],
	  "transport": {"kind": "udp", "nodes": {"a": "` + addrs[0] + `", "b": "` + addrs[1] + `"}},
	  "guard": {
	    "spoof_filter": true,
	    "quarantine_threshold": 8,
	    "quarantine_window_s": 0.5,
	    "quarantine_hold_s": 0.3
	  }
	}`
	s, err := Load(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := s.BuildNode("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Net.Close()
	bb, err := s.BuildNode("b")
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Net.Close()

	var flaps int
	ba.Net.Lock()
	prevDown := ba.Speaker.OnSessionDown // BuildNode's damper hook: chain it
	ba.Speaker.OnSessionDown = func(peer string) {
		flaps++
		if prevDown != nil {
			prevDown(peer)
		}
	}
	ba.Net.Unlock()

	// The flood: well-formed labelled datagrams claiming node b, cut
	// short so decode fails — plus intact ones that must bounce off the
	// open breaker (quarantine drops) or the spoof filter.
	probe := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 2), 64, make([]byte, 32))
	if err := probe.Stack.Push(label.Entry{Label: 999999, Bottom: true, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	enc, err := transport.AppendPacket(nil, probe, 1) // node ids follow scenario order: b == 1
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ba.Net.RunReal(1.5) }()
	go func() { defer wg.Done(); bb.Net.RunReal(1.5) }()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// An opening burst of malformed datagrams (threshold is 8)
		// trips the breaker; the intact probes interleaved with them
		// bounce off the open breaker as quarantine drops. Then a slow
		// trickle of intact probes spans the hold expiry — the first
		// one after it closes the breaker (clear event) and dies on the
		// spoof filter instead.
		for i := 0; i < 40; i++ {
			conn.Write(enc[:10])
			conn.Write(enc)
		}
		for i := 0; i < 10; i++ {
			time.Sleep(100 * time.Millisecond)
			conn.Write(enc)
		}
	}()
	wg.Wait()
	<-done

	ba.Net.Lock()
	defer ba.Net.Unlock()
	bb.Net.Lock()
	defer bb.Net.Unlock()
	if got := ba.Events.Get(telemetry.EventQuarantineTrip); got == 0 {
		t.Error("quarantine breaker never tripped")
	}
	if got := ba.Events.Get(telemetry.EventQuarantineClear); got == 0 {
		t.Error("quarantine breaker never recovered")
	}
	if drops := ba.Guard.Drops().Get(telemetry.ReasonQuarantine); drops == 0 {
		t.Error("no labelled traffic was shed while the breaker was open")
	}
	if flaps != 0 {
		t.Errorf("control session flapped %d times during quarantine", flaps)
	}
	for _, b := range []*Built{ba, bb} {
		sess, ok := b.Speaker.Session(map[string]string{"a": "b", "b": "a"}[b.LocalNode])
		if !ok || !sess.Up() {
			t.Errorf("%s: session not up after the flood", b.LocalNode)
		}
	}
}
