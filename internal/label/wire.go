package label

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EntrySize is the wire size of one label stack entry in bytes.
const EntrySize = 4

// Wire encoding errors.
var (
	ErrShortBuffer = errors.New("label: buffer too short for label stack")
	ErrNoBottom    = errors.New("label: stack encoding has no bottom-of-stack entry")
)

// AppendWire appends the stack in wire order (top entry first, as RFC 3032
// lays entries after the layer-2 header) to dst and returns the extended
// slice. An empty stack appends nothing.
func (s *Stack) AppendWire(dst []byte) ([]byte, error) {
	for i := len(s.entries) - 1; i >= 0; i-- {
		w, err := s.entries[i].Pack()
		if err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint32(dst, w)
	}
	return dst, nil
}

// WireSize returns the encoded size of the stack in bytes.
func (s *Stack) WireSize() int { return len(s.entries) * EntrySize }

// DecodeWire parses a label stack from the front of buf. It consumes
// entries until one with the S bit set, returning the stack and the number
// of bytes consumed. A buffer that ends before a bottom-of-stack entry is
// an encoding error.
func DecodeWire(buf []byte) (*Stack, int, error) {
	var topToBottom []Entry
	off := 0
	for {
		if off+EntrySize > len(buf) {
			return nil, 0, fmt.Errorf("%w (offset %d)", ErrNoBottom, off)
		}
		e := Unpack(binary.BigEndian.Uint32(buf[off:]))
		off += EntrySize
		topToBottom = append(topToBottom, e)
		if e.Bottom {
			break
		}
		if len(topToBottom) > MaxDepth {
			return nil, 0, fmt.Errorf("label: wire stack deeper than max depth %d without bottom bit", MaxDepth)
		}
	}
	// Reverse into bottom-to-top order and rebuild through Push so the
	// S-bit invariant is re-normalised.
	s := &Stack{}
	for i := len(topToBottom) - 1; i >= 0; i-- {
		if err := s.Push(topToBottom[i]); err != nil {
			return nil, 0, err
		}
	}
	return s, off, nil
}

// DecodeWireInto parses a label stack from the front of buf into s,
// reusing s's storage — the allocation-free twin of DecodeWire for
// receive paths that decode into pooled packets. Semantics are
// identical: entries are consumed until the bottom-of-stack bit, the
// S-bit invariant is re-normalised by position, and the byte count
// consumed is returned. On error s is left empty.
func (s *Stack) DecodeWireInto(buf []byte) (int, error) {
	s.entries = s.entries[:0]
	// First pass: find the bottom-of-stack entry to size the stack.
	n, off := 0, 0
	for {
		if off+EntrySize > len(buf) {
			return 0, fmt.Errorf("%w (offset %d)", ErrNoBottom, off)
		}
		e := Unpack(binary.BigEndian.Uint32(buf[off:]))
		off += EntrySize
		n++
		if e.Bottom {
			break
		}
		if n > MaxDepth {
			return 0, fmt.Errorf("label: wire stack deeper than max depth %d without bottom bit", MaxDepth)
		}
	}
	if n > MaxDepth {
		return 0, ErrStackFull
	}
	if cap(s.entries) < n {
		s.entries = make([]Entry, n)
	} else {
		s.entries = s.entries[:n]
	}
	// Second pass: wire order is top-first, storage bottom-first.
	off = 0
	for i := n - 1; i >= 0; i-- {
		e := Unpack(binary.BigEndian.Uint32(buf[off:]))
		off += EntrySize
		e.Bottom = i == 0
		s.entries[i] = e
	}
	return off, nil
}
