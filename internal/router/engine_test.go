package router

import (
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
)

// TestEnginePlaneFollowsLSP runs the engine-backed data plane through
// the standard 4-node LSP scenario: LDP programs the engines via
// snapshot publication, packets follow the path, and the plane's
// amortised per-packet cost is cheaper than the serial baseline.
func TestEnginePlaneFollowsLSP(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "a", EngineWorkers: 4},
		{Name: "b", EngineWorkers: 4},
		{Name: "c", EngineWorkers: 4},
		{Name: "d", EngineWorkers: 4},
	}
	links := []LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.001},
		{A: "b", B: "c", RateBPS: 10e6, Delay: 0.001},
		{A: "c", B: "d", RateBPS: 10e6, Delay: 0.001},
	}
	n, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "lsp",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "c", "d"},
	}); err != nil {
		t.Fatal(err)
	}

	ep, ok := n.Router("a").Plane().(*EnginePlane)
	if !ok {
		t.Fatalf("node a runs %T, want *EnginePlane", n.Router("a").Plane())
	}
	if ep.PerPacket >= DefaultSoftwareCost {
		t.Errorf("engine per-packet cost %v not amortised below baseline %v", ep.PerPacket, DefaultSoftwareCost)
	}
	// LDP programming went through snapshot publication.
	if ep.Engine.Updates() == 0 {
		t.Error("no snapshots published by LSP setup")
	}

	var delivered []*packet.Packet
	n.Router("d").OnDeliver = func(p *packet.Packet) { delivered = append(delivered, p) }
	const sent = 5
	for i := 0; i < sent; i++ {
		p := packet.New(packet.AddrFrom(192, 0, 2, 1), dst, 64, []byte("hello"))
		p.Header.FlowID = uint16(i)
		n.Router("a").Inject(p)
	}
	n.Sim.Run()

	if len(delivered) != sent {
		t.Fatalf("delivered %d packets, want %d", len(delivered), sent)
	}
	for _, p := range delivered {
		if p.Labelled() {
			t.Error("delivered packet still labelled")
		}
		if p.Header.TTL != 60 {
			t.Errorf("TTL = %d, want 60", p.Header.TTL)
		}
	}
	// Teardown must unprogram the engines the same way.
	if err := n.LDP.TearDown("lsp"); err != nil {
		t.Fatal(err)
	}
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), dst, 64, nil)
	n.Router("a").Inject(p)
	n.Sim.Run()
	if len(delivered) != sent {
		t.Errorf("packet delivered after teardown (%d total)", len(delivered))
	}
}
