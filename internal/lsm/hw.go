package lsm

import (
	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
)

// State encodings for the four control unit state machines (paper
// Figures 8-11). The idle state of each machine is 0 so that reset (which
// clears the state registers) lands every machine in idle.
const (
	// main interface controller (Figure 8)
	mIdle = iota
	mLblActive
	mIBActive
)

const (
	// label stack interface (Figure 9)
	lsiIdle = iota
	lsiUserPush
	lsiUserPop
	lsiSearchEnable
	lsiReadResult
	lsiRemoveTop
	lsiUpdateTTL
	lsiVerifyInfo
	lsiUpdateTop
	lsiLoadNew
	lsiPushOld
	lsiPushNew
	lsiDiscard
	lsiDone
)

const (
	// information base interface (Figure 10), plus the direct read-out
	// states ("a search index when the user wants to read the contents
	// of the information base directly")
	ibiIdle = iota
	ibiWritePair
	ibiSearchEnable
	ibiDone
	ibiRead
	ibiReadLatch
)

const (
	// search module (Figure 11), plus the associative-match state of the
	// CAM ablation
	srIdle = iota
	srRead
	srWait
	srCompare
	srFound
	srNotFound
	srCAMMatch
)

// SearchKind selects the information base search implementation.
type SearchKind int

const (
	// SearchLinear is the paper's design: iterate the level's memory,
	// 3 cycles per entry (3n+5 total).
	SearchLinear SearchKind = iota
	// SearchCAM is the associative ablation (experiment X3): a
	// content-addressable index memory resolves the key in one match
	// cycle, making every lookup constant-time.
	SearchCAM
)

// String names the search kind.
func (k SearchKind) String() string {
	if k == SearchCAM {
		return "cam"
	}
	return "linear"
}

// Options configures an HW instance.
type Options struct {
	Search SearchKind
}

// indexBits is the width of the information base address counters. The
// paper pairs 1024-entry memories with a "10 bit comparator" for the
// read/write indices; we carry one extra bit so that a completely full
// level (write count 1024) is still distinguishable from an empty one.
const indexBits = 11

// HW is the cycle-accurate register-transfer-level model of the label
// stack modifier: control unit (four state machines) plus data path
// (label stack register file, TTL counter, old/new entry registers,
// three-level information base memories, and the 32/20/10-bit
// comparators). Drive it through a Bench, or directly via the exported
// signals for waveform work.
type HW struct {
	Sim  *rtl.Simulator
	Opts Options

	// External inputs.
	Reset       *rtl.Signal // "reset": 3-cycle architecture reset
	Enable      *rtl.Signal // "enable": command strobe
	ExtOp       *rtl.Signal // "extoperation": Command code
	DataIn      *rtl.Signal // "data_in": packed entry for a user push
	PacketID    *rtl.Signal // "packetid": 32-bit packet identifier
	OldLabel    *rtl.Signal // "old_label": index half of a written pair
	NewLabel    *rtl.Signal // "new_label": label half of a written pair
	OperationIn *rtl.Signal // "operation_in": op of a written pair
	Level       *rtl.Signal // "level": information base level (1..3)
	LabelLookup *rtl.Signal // "label_lookup": key for level-2/3 lookups
	TTLIn       *rtl.Signal // "ttl_in": control-path TTL source
	CoSIn       *rtl.Signal // "cos_in": control-path CoS source
	RtrType     *rtl.Signal // "rtrtype": 0 = LER, 1 = LSR

	// External outputs.
	Done          *rtl.Signal // one-cycle pulse at command completion
	LabelOut      *rtl.Signal // "label_out": label found by the search
	OperationOut  *rtl.Signal // "operation_out": operation found
	LookupDone    *rtl.Signal // "lookup_done": search-complete pulse
	PacketDiscard *rtl.Signal // "packetdiscard": packet was dropped
	RIndex        *rtl.Signal // "r_index": search read address
	WIndex        *rtl.Signal // "w_index": selected level's write count
	IndexOut      *rtl.Signal // "index_out": index half of a read-out pair

	// Data path visibility.
	Stack     *StackFile
	TTLQ      *rtl.Signal // TTL counter value
	MainState *rtl.Signal
	LSIState  *rtl.Signal
	IBIState  *rtl.Signal
	SrchState *rtl.Signal

	idxRAM [infobase.NumLevels]*rtl.RAM
	lblRAM [infobase.NumLevels]*rtl.RAM
	opRAM  [infobase.NumLevels]*rtl.RAM
}

// New builds the paper's label stack modifier (linear search) inside a
// fresh simulator.
func New() *HW { return NewWith(Options{}) }

// NewWith builds a label stack modifier with the given options.
func NewWith(opts Options) *HW {
	sim := rtl.New()
	hw := &HW{Sim: sim, Opts: opts}

	// --- external interface -------------------------------------------
	hw.Reset = sim.Signal("reset", 1)
	hw.Enable = sim.Signal("enable", 1)
	hw.ExtOp = sim.Signal("extoperation", 3)
	hw.DataIn = sim.Signal("data_in", 32)
	hw.PacketID = sim.Signal("packetid", 32)
	hw.OldLabel = sim.Signal("old_label", 20)
	hw.NewLabel = sim.Signal("new_label", 20)
	hw.OperationIn = sim.Signal("operation_in", 2)
	hw.Level = sim.Signal("level", 2)
	hw.LabelLookup = sim.Signal("label_lookup", 20)
	hw.TTLIn = sim.Signal("ttl_in", 8)
	hw.CoSIn = sim.Signal("cos_in", 3)
	hw.RtrType = sim.Signal("rtrtype", 1)

	hw.Done = sim.Signal("done", 1)
	hw.LabelOut = sim.Signal("label_out", 20)
	hw.OperationOut = sim.Signal("operation_out", 2)
	hw.LookupDone = sim.Signal("lookup_done", 1)
	hw.PacketDiscard = sim.Signal("packetdiscard", 1)
	hw.RIndex = sim.Signal("r_index", indexBits)
	hw.WIndex = sim.Signal("w_index", indexBits)
	hw.IndexOut = sim.Signal("index_out", 32)

	// Trace aliases for the figures: "save" and "lookup" reflect the
	// command being strobed.
	save := sim.Signal("save", 1)
	lookup := sim.Signal("lookup", 1)
	sim.Comb(func() {
		save.SetBool(hw.Enable.Bool() && Command(hw.ExtOp.Get()) == CmdWritePair)
		lookup.SetBool(hw.Enable.Bool() && Command(hw.ExtOp.Get()) == CmdLookup)
	})

	// --- control unit state registers ---------------------------------
	hw.MainState = sim.Signal("main_state", 2)
	hw.LSIState = sim.Signal("lsi_state", 4)
	hw.IBIState = sim.Signal("ibi_state", 3)
	hw.SrchState = sim.Signal("search_state", 3)

	// Moore outputs of the sub-machines.
	lsiDoneSig := sim.Signal("lsi_done", 1)
	ibiDoneSig := sim.Signal("ibi_done", 1)
	srchEnbl := sim.Signal("srch_enbl", 1)
	srchDone := sim.Signal("srch_done", 1)
	itemFound := sim.Signal("item_found", 1)

	// --- information base memories ------------------------------------
	// Per level: an index component (32 bits at level 1 for the packet
	// identifier, 20 bits at levels 2-3), a label component (20 bits)
	// and an operation component (2 bits), each 1024 words, plus a write
	// counter. One shared read counter addresses all levels; the level
	// mux picks whose outputs feed the comparators.
	wen := make([]*rtl.Signal, infobase.NumLevels)
	wcnt := make([]*rtl.Signal, infobase.NumLevels)
	idxRD := make([]*rtl.Signal, infobase.NumLevels)
	lblRD := make([]*rtl.Signal, infobase.NumLevels)
	opRD := make([]*rtl.Signal, infobase.NumLevels)
	idxWD := make([]*rtl.Signal, infobase.NumLevels)
	// ibRAddr feeds every level's read port: the search counter in the
	// paper's linear design, or the CAM's matched address.
	ibRAddr := sim.Signal("ib_raddr", indexBits)
	for lv := 0; lv < infobase.NumLevels; lv++ {
		n := byte('1' + lv)
		idxW := uint(20)
		if lv == 0 {
			idxW = 32
		}
		wen[lv] = sim.Signal("ib_wen_"+string(n), 1)
		wcnt[lv] = sim.Signal("ib_wcnt_"+string(n), indexBits)
		idxRD[lv] = sim.Signal("ib_idx_rd_"+string(n), idxW)
		lblRD[lv] = sim.Signal("ib_lbl_rd_"+string(n), 20)
		opRD[lv] = sim.Signal("ib_op_rd_"+string(n), 2)
		idxWD[lv] = sim.Signal("ib_idx_wd_"+string(n), idxW)

		rtl.NewCounter(sim, wcnt[lv], wen[lv], nil, nil, nil, hw.Reset)
		hw.idxRAM[lv] = rtl.NewRAM(sim, infobase.EntriesPerLevel, ibRAddr, idxRD[lv], wcnt[lv], idxWD[lv], wen[lv])
		hw.lblRAM[lv] = rtl.NewRAM(sim, infobase.EntriesPerLevel, ibRAddr, lblRD[lv], wcnt[lv], hw.NewLabel, wen[lv])
		hw.opRAM[lv] = rtl.NewRAM(sim, infobase.EntriesPerLevel, ibRAddr, opRD[lv], wcnt[lv], hw.OperationIn, wen[lv])
	}
	sim.Comb(func() {
		// Level 1 pairs are keyed by the packet identifier; levels 2-3
		// by the old label.
		idxWD[0].Set(hw.PacketID.Get())
		idxWD[1].Set(hw.OldLabel.Get())
		idxWD[2].Set(hw.OldLabel.Get())
		writing := hw.IBIState.Get() == ibiWritePair
		for lv := 0; lv < infobase.NumLevels; lv++ {
			wen[lv].SetBool(writing && hw.Level.Get() == uint64(lv+1))
		}
	})

	// --- data path: label stack, TTL counter, entry registers ---------
	stkClr := sim.Signal("stk_clr", 1)
	stkPush := sim.Signal("stk_push", 1)
	stkPop := sim.Signal("stk_pop", 1)
	stkSetTTL := sim.Signal("stk_setttl", 1)
	stkDin := sim.Signal("stk_din", 32)
	hw.TTLQ = sim.Signal("ttl_q", 8)
	hw.Stack = NewStackFile(sim, "stack_", stkClr, stkPush, stkPop, stkSetTTL, stkDin, hw.TTLQ)

	ttlEn := sim.Signal("ttl_en", 1)
	ttlLd := sim.Signal("ttl_ld", 1)
	ttlD := sim.Signal("ttl_d", 8)
	ttlDown := sim.Signal("ttl_down", 1)
	rtl.NewCounter(sim, hw.TTLQ, ttlEn, ttlDown, ttlLd, ttlD, hw.Reset)

	oldQ := sim.Signal("old_q", 32)
	oldEn := sim.Signal("old_en", 1)
	rtl.NewRegister(sim, hw.Stack.Top, oldQ, oldEn, hw.Reset)

	hadTop := sim.Signal("had_top", 1)
	hadTopD := sim.Signal("had_top_d", 1)
	rtl.NewRegister(sim, hadTopD, hadTop, oldEn, hw.Reset)

	newQ := sim.Signal("new_q", 32)
	newEn := sim.Signal("new_en", 1)
	newD := sim.Signal("new_d", 32)
	rtl.NewRegister(sim, newD, newQ, newEn, hw.Reset)

	// --- search selection and comparators ------------------------------
	selLevel := sim.Signal("sel_level", 2)
	key20 := sim.Signal("key20", 20)
	idxRDSel20 := sim.Signal("idx_rd_sel20", 20)
	lblRDSel := sim.Signal("lbl_rd_sel", 20)
	opRDSel := sim.Signal("op_rd_sel", 2)
	wSel := sim.Signal("w_sel", indexBits)
	rPlus1 := sim.Signal("r_index_plus1", indexBits)
	aeb32 := sim.Signal("aeb_32b", 1)
	aeb20 := sim.Signal("aeb_20b", 1)
	aeb10 := sim.Signal("aeb_10b", 1)
	match := sim.Signal("match", 1)
	exhausted := sim.Signal("exhausted", 1)

	sim.Comb(func() {
		lsiActive := hw.MainState.Get() == mLblActive
		if lsiActive {
			// The level and key come from the stack state: an empty
			// stack searches level 1 by packet identifier; otherwise
			// the top label keys level depth+1 (capped at 3).
			size := int(hw.Stack.Size.Get())
			selLevel.Set(uint64(infobase.LevelForDepth(size)))
			key20.Set(uint64(label.Unpack(uint32(hw.Stack.Top.Get())).Label))
		} else {
			selLevel.Set(hw.Level.Get())
			key20.Set(hw.LabelLookup.Get())
		}
		lvi := int(selLevel.Get()) - 1
		if lvi < 0 || lvi >= infobase.NumLevels {
			lvi = 0
		}
		if lvi >= 1 {
			idxRDSel20.Set(idxRD[lvi].Get())
		} else {
			idxRDSel20.Set(0)
		}
		lblRDSel.Set(lblRD[lvi].Get())
		opRDSel.Set(opRD[lvi].Get())
		wSel.Set(wcnt[lvi].Get())
		rPlus1.Set(hw.RIndex.Get() + 1)
		hw.WIndex.Set(wSel.Get())
	})
	rtl.Comparator(sim, hw.PacketID, idxRD[0], aeb32)
	rtl.Comparator(sim, key20, idxRDSel20, aeb20)
	rtl.Comparator(sim, rPlus1, wSel, aeb10)

	// CAM ablation: one associative bank shadows each level's index
	// memory; the selected level's hit/address drive the read port
	// instead of the search counter.
	camMode := hw.Opts.Search == SearchCAM
	camHit := sim.Signal("cam_hit", 1)
	camAddr := sim.Signal("cam_addr", indexBits)
	if camMode {
		banks := [infobase.NumLevels]*camBank{}
		for lv := 0; lv < infobase.NumLevels; lv++ {
			key := key20
			if lv == 0 {
				key = hw.PacketID
			}
			banks[lv] = newCAMBank(sim, "cam"+string(byte('1'+lv)), infobase.EntriesPerLevel,
				wen[lv], wcnt[lv], idxWD[lv], hw.Reset, key, wcnt[lv])
		}
		sim.Comb(func() {
			lvi := int(selLevel.Get()) - 1
			if lvi < 0 || lvi >= infobase.NumLevels {
				lvi = 0
			}
			camHit.SetBool(banks[lvi].hit.Bool())
			camAddr.Set(banks[lvi].addr.Get())
		})
	}
	sim.Comb(func() {
		st := hw.IBIState.Get()
		switch {
		case st == ibiRead || st == ibiReadLatch:
			// Direct read-out: the address comes from data_in.
			ibRAddr.Set(hw.DataIn.Get())
		case camMode:
			ibRAddr.Set(camAddr.Get())
		default:
			ibRAddr.Set(hw.RIndex.Get())
		}
	})
	sim.Comb(func() {
		comparing := hw.SrchState.Get() == srCompare
		if selLevel.Get() == uint64(infobase.Level1) {
			match.SetBool(comparing && aeb32.Bool())
		} else {
			match.SetBool(comparing && aeb20.Bool())
		}
		exhausted.SetBool(comparing && aeb10.Bool())
	})

	// Search read counter: held clear while the search module is idle,
	// incremented when a compare misses and more entries remain.
	rEn := sim.Signal("r_en", 1)
	rClr := sim.Signal("r_clr", 1)
	rtl.NewCounter(sim, hw.RIndex, rEn, nil, nil, nil, rClr)
	sim.Comb(func() {
		rClr.SetBool(hw.Reset.Bool() || hw.SrchState.Get() == srIdle)
		rEn.SetBool(hw.SrchState.Get() == srCompare && !match.Bool() && !exhausted.Bool())
	})

	// Search result registers: latch the label and operation components
	// the cycle the compare hits ("a delay occurs so the values can
	// appear"). They deliberately keep their values on a miss — the
	// figures check that label_out/operation_out remain unchanged.
	resEn := sim.Signal("res_en", 1)
	rtl.NewRegister(sim, lblRDSel, hw.LabelOut, resEn, hw.Reset)
	rtl.NewRegister(sim, opRDSel, hw.OperationOut, resEn, hw.Reset)
	idxOutEn := sim.Signal("idxout_en", 1)
	idxOutD := sim.Signal("idxout_d", 32)
	rtl.NewRegister(sim, idxOutD, hw.IndexOut, idxOutEn, hw.Reset)
	sim.Comb(func() {
		readLatch := hw.IBIState.Get() == ibiReadLatch
		resEn.SetBool(match.Bool() || readLatch ||
			(camMode && hw.SrchState.Get() == srWait && camHit.Bool()))
		idxOutEn.SetBool(readLatch)
		if selLevel.Get() == uint64(infobase.Level1) {
			idxOutD.Set(idxRD[0].Get())
		} else {
			idxOutD.Set(idxRDSel20.Get())
		}
	})

	// --- search state machine (Figure 11) ------------------------------
	rtl.NewFSM(sim, hw.SrchState, func() uint64 {
		if hw.Reset.Bool() {
			return srIdle
		}
		switch hw.SrchState.Get() {
		case srIdle:
			if srchEnbl.Bool() {
				if camMode {
					return srCAMMatch
				}
				if wSel.Get() == 0 {
					return srNotFound // empty level: nothing to scan
				}
				return srRead
			}
			return srIdle
		case srCAMMatch:
			// The CAM resolved the address combinationally; the read
			// port was presented this cycle.
			return srWait
		case srRead:
			return srWait
		case srWait:
			if camMode {
				if camHit.Bool() {
					return srFound
				}
				return srNotFound
			}
			return srCompare
		case srCompare:
			switch {
			case match.Bool():
				return srFound
			case exhausted.Bool():
				return srNotFound
			default:
				return srRead
			}
		default: // srFound, srNotFound
			return srIdle
		}
	})
	sim.Comb(func() {
		st := hw.SrchState.Get()
		srchDone.SetBool(st == srFound || st == srNotFound)
		itemFound.SetBool(st == srFound)
		hw.LookupDone.SetBool(st == srFound || st == srNotFound)
		srchEnbl.SetBool(hw.LSIState.Get() == lsiSearchEnable || hw.IBIState.Get() == ibiSearchEnable)
	})

	// --- information base interface (Figure 10) ------------------------
	rtl.NewFSM(sim, hw.IBIState, func() uint64 {
		if hw.Reset.Bool() {
			return ibiIdle
		}
		switch hw.IBIState.Get() {
		case ibiIdle:
			if hw.MainState.Get() == mIBActive {
				switch Command(hw.ExtOp.Get()) {
				case CmdWritePair:
					return ibiWritePair
				case CmdReadPair:
					return ibiRead
				default:
					return ibiSearchEnable
				}
			}
			return ibiIdle
		case ibiRead:
			return ibiReadLatch
		case ibiReadLatch:
			return ibiDone
		case ibiWritePair:
			return ibiIdle
		case ibiSearchEnable:
			if srchDone.Bool() {
				return ibiDone
			}
			return ibiSearchEnable
		default: // ibiDone
			return ibiIdle
		}
	})
	sim.Comb(func() {
		st := hw.IBIState.Get()
		ibiDoneSig.SetBool(st == ibiWritePair || st == ibiDone)
	})

	// --- label stack interface (Figure 9) -------------------------------
	verifyDiscard := sim.Signal("verify_discard", 1)
	sim.Comb(func() {
		op := label.Op(hw.OperationOut.Get())
		had := hadTop.Bool()
		growth := 1
		if had {
			growth = 2
		}
		bad := hw.TTLQ.Get() == 0 ||
			op == label.OpNone ||
			(!had && hw.RtrType.Get() == uint64(LSR)) ||
			(!had && op != label.OpPush) ||
			(op == label.OpPush && int(hw.Stack.Size.Get())+growth > label.MaxDepth)
		verifyDiscard.SetBool(bad)
	})

	rtl.NewFSM(sim, hw.LSIState, func() uint64 {
		if hw.Reset.Bool() {
			return lsiIdle
		}
		switch hw.LSIState.Get() {
		case lsiIdle:
			if hw.MainState.Get() == mLblActive {
				switch Command(hw.ExtOp.Get()) {
				case CmdUserPush:
					return lsiUserPush
				case CmdUserPop:
					return lsiUserPop
				case CmdUpdate:
					return lsiSearchEnable
				}
			}
			return lsiIdle
		case lsiUserPush, lsiUserPop:
			return lsiIdle
		case lsiSearchEnable:
			if srchDone.Bool() {
				if itemFound.Bool() {
					return lsiReadResult
				}
				return lsiDiscard
			}
			return lsiSearchEnable
		case lsiReadResult:
			return lsiRemoveTop
		case lsiRemoveTop:
			return lsiUpdateTTL
		case lsiUpdateTTL:
			return lsiVerifyInfo
		case lsiVerifyInfo:
			if verifyDiscard.Bool() {
				return lsiDiscard
			}
			switch label.Op(hw.OperationOut.Get()) {
			case label.OpPop:
				return lsiUpdateTop
			case label.OpSwap:
				return lsiLoadNew
			default: // label.OpPush
				return lsiPushOld
			}
		case lsiUpdateTop:
			return lsiDone
		case lsiLoadNew:
			return lsiPushNew
		case lsiPushOld:
			return lsiLoadNew
		case lsiPushNew:
			return lsiDone
		case lsiDiscard:
			return lsiDone
		default: // lsiDone
			return lsiIdle
		}
	})
	sim.Comb(func() {
		st := hw.LSIState.Get()
		lsiDoneSig.SetBool(st == lsiUserPush || st == lsiUserPop || st == lsiDone)
	})

	// Data path control decode for the label stack interface.
	sim.Comb(func() {
		st := hw.LSIState.Get()
		had := hadTop.Bool()

		// Stack controls.
		stkClr.SetBool(hw.Reset.Bool() || st == lsiDiscard)
		stkPop.SetBool(st == lsiRemoveTop || st == lsiUserPop)
		stkPush.SetBool(st == lsiUserPush || st == lsiPushNew || (st == lsiPushOld && had))
		stkSetTTL.SetBool(st == lsiUpdateTop && hw.Stack.Size.Get() > 0)
		switch st {
		case lsiPushOld:
			// Re-push the removed entry with the decremented TTL.
			stkDin.Set(oldQ.Get()&^uint64(0xff) | hw.TTLQ.Get())
		case lsiPushNew:
			stkDin.Set(newQ.Get())
		default:
			stkDin.Set(hw.DataIn.Get())
		}

		// TTL counter: loaded from the removed top (or the control path
		// at an empty-stack ingress) while in remove-top, decremented in
		// update-TTL.
		ttlLd.SetBool(st == lsiRemoveTop)
		if hw.Stack.Size.Get() > 0 {
			ttlD.Set(uint64(label.Unpack(uint32(hw.Stack.Top.Get())).TTL))
		} else {
			ttlD.Set(hw.TTLIn.Get())
		}
		ttlDown.SetBool(true)
		ttlEn.SetBool(st == lsiUpdateTTL)

		// Old-entry and had-top registers capture the pre-pop state.
		oldEn.SetBool(st == lsiRemoveTop)
		hadTopD.SetBool(hw.Stack.Size.Get() > 0)

		// New-entry assembly: label from the information base, CoS from
		// the old top (or the control path at ingress), TTL from the
		// counter. The stack file supplies the S bit.
		newEn.SetBool(st == lsiLoadNew)
		cos := hw.CoSIn.Get()
		if had {
			cos = uint64(label.Unpack(uint32(oldQ.Get())).CoS)
		}
		newD.Set(hw.LabelOut.Get()<<12 | cos<<9 | hw.TTLQ.Get())
	})

	// --- main interface controller (Figure 8) ---------------------------
	rtl.NewFSM(sim, hw.MainState, func() uint64 {
		if hw.Reset.Bool() {
			return mIdle
		}
		switch hw.MainState.Get() {
		case mIdle:
			if hw.Enable.Bool() {
				switch Command(hw.ExtOp.Get()) {
				case CmdUserPush, CmdUserPop, CmdUpdate:
					return mLblActive
				case CmdWritePair, CmdLookup, CmdReadPair:
					return mIBActive
				}
			}
			return mIdle
		case mLblActive:
			if lsiDoneSig.Bool() {
				return mIdle
			}
			return mLblActive
		default: // mIBActive
			if ibiDoneSig.Bool() {
				return mIdle
			}
			return mIBActive
		}
	})

	// --- completion and discard flags -----------------------------------
	// The reset sequencer takes three cycles: two to clear the data path,
	// one to pulse done.
	rstCnt := sim.Signal("rst_cnt", 2)
	rstEn := sim.Signal("rst_en", 1)
	rstClr := sim.Signal("rst_clr", 1)
	rtl.NewCounter(sim, rstCnt, rstEn, nil, nil, nil, rstClr)
	sim.Comb(func() {
		rstEn.SetBool(hw.Reset.Bool() && rstCnt.Get() < 2)
		rstClr.SetBool(!hw.Reset.Bool())
	})

	doneD := sim.Signal("done_d", 1)
	rtl.NewRegister(sim, doneD, hw.Done, nil, nil)
	sim.Comb(func() {
		doneD.SetBool((hw.MainState.Get() == mLblActive && lsiDoneSig.Bool()) ||
			(hw.MainState.Get() == mIBActive && ibiDoneSig.Bool()) ||
			(hw.Reset.Bool() && rstCnt.Get() == 2))
	})

	// packetdiscard: sticky per command — set by a failed search or a
	// discard state, cleared when the next command starts.
	pdD := sim.Signal("pd_d", 1)
	pdEn := sim.Signal("pd_en", 1)
	pdClr := sim.Signal("pd_clr", 1)
	rtl.NewRegister(sim, pdD, hw.PacketDiscard, pdEn, pdClr)
	sim.Comb(func() {
		set := hw.SrchState.Get() == srNotFound || hw.LSIState.Get() == lsiDiscard
		pdD.SetBool(true)
		pdEn.SetBool(set)
		pdClr.SetBool(hw.Reset.Bool() ||
			(hw.MainState.Get() == mIdle && hw.Enable.Bool() && !set))
	})

	sim.Settle()
	return hw
}

// SearchFound reports whether the search module is presenting a hit this
// cycle (the lookup_done pulse with a match) — the signal a bus-attached
// status register latches.
func (hw *HW) SearchFound() bool { return hw.SrchState.Get() == srFound }

// InfoBaseSnapshot reads the information base memories into a software
// store copy (the first count entries of each level), for test-bench
// verification.
func (hw *HW) InfoBaseSnapshot() infobase.Store {
	b := infobase.New()
	for lv := 0; lv < infobase.NumLevels; lv++ {
		n := int(hw.Sim.Lookup("ib_wcnt_" + string(byte('1'+lv))).Get())
		for i := 0; i < n && i < infobase.EntriesPerLevel; i++ {
			p := infobase.Pair{
				Index:    infobase.Key(hw.idxRAM[lv].Peek(i)),
				NewLabel: label.Label(hw.lblRAM[lv].Peek(i)),
				Op:       label.Op(hw.opRAM[lv].Peek(i)),
			}
			if err := b.Write(infobase.Level(lv+1), p); err != nil {
				panic("lsm: info base snapshot: " + err.Error())
			}
		}
	}
	return b
}
