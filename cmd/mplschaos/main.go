// mplschaos soaks a multi-process MPLS cluster under seeded chaos. The
// parent process generates a ring-of-rings topology (every ring an
// inner cycle, ring hubs joined in an outer cycle), writes it as a
// scenario file with an armed admission guard, and spawns one child
// process per node — each child re-execs this binary with -child and
// runs exactly the mplsnode build path (config.BuildNode) over
// loopback UDP. While the cluster runs, the parent injects chaos from
// a seeded schedule:
//
//   - SIGKILLs one interior node in roughly half the rings, with no
//     respawn — neighbours' dead timers must tear the crossing LSPs and
//     the ingresses must resignal around the hole;
//   - floods well-formed labelled datagrams with spoofed source node
//     ids and never-advertised labels at ring hubs — the spoof filter
//     must hold the line, and the decoy flow id must never surface in
//     any child's delivery collector;
//   - sends labelled traffic with TTL below the scenario's GTSM
//     floor — TTL security must shed it;
//   - sustains an unlabelled best-effort flood well above the
//     configured per-link rate — CoS-aware shedding must drop it while
//     control sessions and CoS-5 data keep flowing;
//   - bursts malformed datagrams attributed to a far-away node — the
//     quarantine breaker must trip;
//   - mid-soak, while the floods are still running and after the kills
//     have landed, batch-provisions runtime LSPs at the ring hubs over
//     the management plane (internal/mgmt, the mplsctl wire) and gates
//     the soak on every one of them converging to established.
//
// Every child self-checks at the end of the run: sessions to all
// surviving neighbours up, every locally-ingressed LSP established on
// a path that avoids the killed nodes, recent deliveries for every
// flow that terminates locally, and no hostile flow id in the
// collector. A child that passes prints "SOAK ok" and exits 0. The
// parent exits nonzero unless every surviving child exits 0 within the
// convergence bound, no child printed a panic, and the summed guard
// counters prove each attack class was actually exercised and dropped.
//
//	mplschaos -seed 1 -rings 10 -ring-size 5 -duration 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/mgmt"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// Hostile flow ids. They must never show up in a delivery collector:
// seeing one means the guard forwarded an attack packet end to end.
const (
	spoofFlow = 0xbad1
	floodFlow = 0xbad2
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mplschaos: ")
	var (
		child    = flag.Bool("child", false, "run one node of the cluster (internal; set by the parent)")
		cfgPath  = flag.String("config", "", "scenario file (child mode)")
		node     = flag.String("node", "", "node to run (child mode)")
		dead     = flag.String("dead", "", "comma-separated nodes the parent will kill (child mode)")
		rings    = flag.Int("rings", 10, "number of rings")
		ringSize = flag.Int("ring-size", 5, "nodes per ring (>= 5)")
		duration = flag.Float64("duration", 8, "soak duration in wall-clock seconds")
		seed     = flag.Int64("seed", 1, "chaos schedule seed")
		verbose  = flag.Bool("v", false, "print every child's full output")
	)
	flag.Parse()
	if *child {
		os.Exit(runChild(*cfgPath, *node, *dead, *duration))
	}
	os.Exit(runParent(*rings, *ringSize, *duration, *seed, *verbose))
}

func nodeName(ring, j int) string { return fmt.Sprintf("r%dn%d", ring, j) }
func hub(ring int) string         { return nodeName(ring, 0) }

// genScenario lays out the ring-of-rings cluster: rings inner cycles
// of ringSize nodes each, hubs (n0) joined in an outer cycle. Each
// ring carries one CoS-5 LSP from its n1 to its n(ringSize-2) — the
// short way crosses n2, the designated kill target, so a kill forces a
// protection switch the long way around — and each hub originates one
// LSP two hubs onward across the outer cycle.
func genScenario(rings, ringSize int, duration float64, addrs, mgmtAddrs map[string]string) *config.Scenario {
	s := &config.Scenario{
		Name:      fmt.Sprintf("chaos soak: %d rings x %d nodes", rings, ringSize),
		DurationS: duration,
		Transport: &config.TransportSection{Kind: "udp", Nodes: addrs, Mgmt: mgmtAddrs},
		Guard: &config.GuardSection{
			SpoofFilter:         true,
			TTLMin:              2,
			RatePPS:             2000,
			Burst:               256,
			QuarantineThreshold: 20,
			QuarantineWindowS:   1,
			QuarantineHoldS:     1.5,
		},
	}
	for i := 0; i < rings; i++ {
		for j := 0; j < ringSize; j++ {
			s.Nodes = append(s.Nodes, config.Node{Name: nodeName(i, j), Plane: "software"})
		}
	}
	link := func(a, b string) {
		s.Links = append(s.Links, config.Link{
			A: a, B: b, RateMbps: 50, DelayMs: 0.2, Metric: 1, Queue: "priority",
		})
	}
	for i := 0; i < rings; i++ {
		for j := 0; j < ringSize; j++ {
			link(nodeName(i, j), nodeName(i, (j+1)%ringSize))
		}
		link(hub(i), hub((i+1)%rings))
	}
	for i := 0; i < rings; i++ {
		ringDst := fmt.Sprintf("10.1.%d.1", i)
		s.LSPs = append(s.LSPs, config.LSP{
			ID: fmt.Sprintf("ring%d", i), Dst: ringDst, CoS: 5,
			From: nodeName(i, 1), To: nodeName(i, ringSize-2),
		})
		s.Flows = append(s.Flows, config.Flow{
			ID: uint16(100 + i), Kind: "cbr", From: nodeName(i, 1), Dst: ringDst,
			SizeBytes: 200, IntervalMs: 20,
		})
		hubDst := fmt.Sprintf("10.2.%d.1", i)
		s.LSPs = append(s.LSPs, config.LSP{
			ID: fmt.Sprintf("hub%d", i), Dst: hubDst, CoS: 5,
			From: hub(i), To: hub((i + 2) % rings),
		})
		s.Flows = append(s.Flows, config.Flow{
			ID: uint16(200 + i), Kind: "cbr", From: hub(i), Dst: hubDst,
			SizeBytes: 200, IntervalMs: 20,
		})
	}
	return s
}

// loopbackAddrs reserves n distinct loopback UDP addresses by binding
// and immediately releasing ephemeral sockets.
func loopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		addrs[i] = c.LocalAddr().String()
		c.Close()
	}
	return addrs, nil
}

// loopbackTCPAddrs does the same for management-plane TCP listeners.
func loopbackTCPAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs, nil
}

// childResult is one child's terminal state.
type childResult struct {
	name string
	err  error
	out  *bytes.Buffer
}

var guardLine = regexp.MustCompile(`CHAOS-GUARD \S+ spoof=(\d+) ttl=(\d+) rate=(\d+) quarantine=(\d+) trips=(\d+)`)

func runParent(rings, ringSize int, duration float64, seed int64, verbose bool) int {
	if rings < 3 || ringSize < 5 {
		log.Print("need -rings >= 3 and -ring-size >= 5")
		return 2
	}
	total := rings * ringSize
	addrList, err := loopbackAddrs(total)
	if err != nil {
		log.Print(err)
		return 1
	}
	addrs := make(map[string]string, total)
	names := make([]string, 0, total)
	for i := 0; i < rings; i++ {
		for j := 0; j < ringSize; j++ {
			n := nodeName(i, j)
			names = append(names, n)
			addrs[n] = addrList[len(names)-1]
		}
	}
	// Every ring hub serves a management listener; the parent uses it to
	// batch-provision runtime LSPs mid-soak.
	mgmtList, err := loopbackTCPAddrs(rings)
	if err != nil {
		log.Print(err)
		return 1
	}
	mgmtAddrs := make(map[string]string, rings)
	for i := 0; i < rings; i++ {
		mgmtAddrs[hub(i)] = mgmtList[i]
	}
	scenario := genScenario(rings, ringSize, duration, addrs, mgmtAddrs)

	dir, err := os.MkdirTemp("", "mplschaos")
	if err != nil {
		log.Print(err)
		return 1
	}
	defer os.RemoveAll(dir)
	cfgPath := filepath.Join(dir, "cluster.json")
	blob, err := json.MarshalIndent(scenario, "", "  ")
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := os.WriteFile(cfgPath, blob, 0o644); err != nil {
		log.Print(err)
		return 1
	}
	// Round-trip through the loader so a generator bug fails fast here,
	// not in 50 children at once.
	f, err := os.Open(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	if _, err := config.Load(f); err != nil {
		f.Close()
		log.Printf("generated scenario invalid: %v", err)
		return 1
	}
	f.Close()

	// Seeded chaos schedule: kill the designated interior node (n2) in
	// about half the rings — at least two — between 0.25D and 0.5D.
	rng := rand.New(rand.NewSource(seed))
	var kills []string
	for i := 0; i < rings; i++ {
		if rng.Intn(2) == 0 {
			kills = append(kills, nodeName(i, 2))
		}
	}
	for i := 0; len(kills) < 2; i++ {
		kills = append(kills, nodeName(i, 2))
	}
	killAt := make(map[string]float64, len(kills))
	for _, k := range kills {
		killAt[k] = duration * (0.25 + 0.25*rng.Float64())
	}
	deadArg := strings.Join(kills, ",")
	fmt.Printf("soak seed=%d: %d nodes, killing %v\n", seed, total, kills)

	killSet := map[string]bool{}
	for _, k := range kills {
		killSet[k] = true
	}
	cmds := make(map[string]*exec.Cmd, total)
	results := make(chan childResult, total)
	for _, n := range names {
		out := &bytes.Buffer{}
		cmd := exec.Command(os.Args[0], "-child",
			"-config", cfgPath, "-node", n,
			"-duration", strconv.FormatFloat(duration, 'f', -1, 64),
			"-dead", deadArg)
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			log.Printf("spawn %s: %v", n, err)
			return 1
		}
		cmds[n] = cmd
		go func(n string, c *exec.Cmd, out *bytes.Buffer) {
			results <- childResult{name: n, err: c.Wait(), out: out}
		}(n, cmd, out)
	}
	start := time.Now()
	for n, at := range killAt {
		time.AfterFunc(time.Duration(at*float64(time.Second)), func(victim string) func() {
			return func() {
				fmt.Printf("t=%.2fs KILL %s\n", time.Since(start).Seconds(), victim)
				cmds[victim].Process.Kill()
			}
		}(n))
	}

	// Hostile floods run from 0.2D to 0.7D against a few ring hubs.
	floodStart := time.Duration(0.2 * duration * float64(time.Second))
	floodStop := time.Duration(0.7 * duration * float64(time.Second))
	idOf := make(map[string]transport.NodeID, total)
	for i, n := range names {
		idOf[n] = transport.NodeID(i)
	}
	hostileTargets := []int{0, 1, 2}
	for _, i := range hostileTargets {
		target, impostor := hub(i), hub((i+1)%rings)
		farNode := nodeName((i+3)%rings, 2)
		go flood(addrs[target], floodStart, floodStop, floodPlan{
			impostorID: idOf[impostor],
			farID:      idOf[farNode],
			spoofDst:   fmt.Sprintf("10.2.%d.1", i),
		})
	}

	// Mid-soak runtime provisioning: after the kills have landed but
	// while the floods still run, batch-signal LSPs at the same hubs the
	// attackers are hammering, over the management plane. The soak gates
	// on every one converging before the run ends.
	runtimeResult := make(chan error, 1)
	time.AfterFunc(time.Duration(0.55*duration*float64(time.Second)), func() {
		runtimeResult <- provisionRuntime(mgmtAddrs, hostileTargets, rings,
			start.Add(time.Duration((duration-0.3)*float64(time.Second))))
	})

	deadline := time.After(time.Duration((duration + 15) * float64(time.Second)))
	var (
		failures                            []string
		sumSpoof, sumTTL, sumRate, sumTrips uint64
		sumQuarantine                       uint64
	)
	for done := 0; done < total; done++ {
		var r childResult
		select {
		case r = <-results:
		case <-deadline:
			for n, c := range cmds {
				c.Process.Kill()
				_ = n
			}
			log.Printf("convergence bound exceeded: %d/%d children still running", total-done, total)
			return 1
		}
		out := r.out.String()
		if verbose {
			fmt.Printf("--- %s ---\n%s", r.name, out)
		}
		if strings.Contains(out, "panic:") {
			failures = append(failures, fmt.Sprintf("%s PANICKED:\n%s", r.name, out))
			continue
		}
		if killSet[r.name] {
			continue // died by design; nothing more to ask of it
		}
		if m := guardLine.FindStringSubmatch(out); m != nil {
			add := func(dst *uint64, s string) {
				v, _ := strconv.ParseUint(s, 10, 64)
				*dst += v
			}
			add(&sumSpoof, m[1])
			add(&sumTTL, m[2])
			add(&sumRate, m[3])
			add(&sumQuarantine, m[4])
			add(&sumTrips, m[5])
		}
		if r.err != nil {
			failures = append(failures, fmt.Sprintf("%s exited: %v\n%s", r.name, r.err, out))
		}
	}
	select {
	case err := <-runtimeResult:
		if err != nil {
			failures = append(failures, fmt.Sprintf("runtime provisioning: %v", err))
		}
	case <-time.After(5 * time.Second):
		failures = append(failures, "runtime provisioning never reported a result")
	}
	fmt.Printf("guard totals: spoof=%d ttl=%d rate=%d quarantine=%d trips=%d\n",
		sumSpoof, sumTTL, sumRate, sumQuarantine, sumTrips)
	if sumSpoof == 0 || sumTTL == 0 || sumRate == 0 || sumTrips == 0 {
		failures = append(failures, fmt.Sprintf(
			"an attack class was never dropped (spoof=%d ttl=%d rate=%d trips=%d) — the soak proved nothing",
			sumSpoof, sumTTL, sumRate, sumTrips))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			log.Print(f)
		}
		log.Printf("SOAK seed=%d FAILED (%d findings)", seed, len(failures))
		return 1
	}
	fmt.Printf("SOAK seed=%d ok: %d nodes, %d killed, all survivors converged\n",
		seed, total, len(kills))
	return 0
}

// runtimeBatch is how many LSPs each targeted hub is asked to signal in
// one pipelined management batch.
const runtimeBatch = 20

// provisionRuntime batch-provisions runtimeBatch LSPs at each target
// hub over its management listener — hub i toward hub i+2, crossing the
// outer cycle while the same hubs absorb the hostile floods — then
// polls lsp.list until every one is established or the deadline passes.
func provisionRuntime(mgmtAddrs map[string]string, targets []int, rings int, deadline time.Time) error {
	for _, i := range targets {
		ingress := hub(i)
		cl, err := mgmt.Dial(mgmtAddrs[ingress], 2*time.Second)
		if err != nil {
			return fmt.Errorf("dial %s: %w", ingress, err)
		}
		params := make([]any, runtimeBatch)
		for j := range params {
			params[j] = config.LSP{
				ID:  fmt.Sprintf("chaos%d-%d", i, j),
				Dst: fmt.Sprintf("10.3.%d.%d", i, j+1),
				To:  hub((i + 2) % rings),
				CoS: 5,
			}
		}
		_, err = cl.Batch("lsp.provision", params)
		cl.Close()
		if err != nil {
			return fmt.Errorf("provision at %s: %w", ingress, err)
		}
	}
	fmt.Printf("provisioned %d runtime LSPs across %d hubs under fire\n",
		runtimeBatch*len(targets), len(targets))
	for {
		missing := 0
		var lastErr error
		for _, i := range targets {
			ingress := hub(i)
			up := 0
			cl, err := mgmt.Dial(mgmtAddrs[ingress], 2*time.Second)
			if err == nil {
				var res mgmt.LSPListResult
				if err = cl.Call("lsp.list", nil, &res); err == nil {
					prefix := fmt.Sprintf("chaos%d-", i)
					for _, l := range res.LSPs {
						if strings.HasPrefix(l.ID, prefix) && l.Established {
							up++
						}
					}
				}
				cl.Close()
			}
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", ingress, err)
			}
			missing += runtimeBatch - up
		}
		if missing == 0 {
			fmt.Printf("runtime LSP batch converged: all %d established\n", runtimeBatch*len(targets))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d of %d runtime LSPs not established at the convergence bound (last error: %v)",
				missing, runtimeBatch*len(targets), lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// floodPlan parameterises one hostile sender.
type floodPlan struct {
	impostorID transport.NodeID // a real neighbour of the target, spoofed
	farID      transport.NodeID // a far non-neighbour, quarantined
	spoofDst   string           // a live flow destination, must never deliver
}

// flood throws all four attack classes at one node address.
func flood(addr string, start, stop time.Duration, plan floodPlan) {
	time.Sleep(start)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	dst, err := config.ParseAddr(plan.spoofDst)
	if err != nil {
		return
	}

	mk := func(src transport.NodeID, flow uint16, lbl label.Label, ttl uint8) []byte {
		p := packet.New(packet.AddrFrom(192, 0, 2, 66), dst, 64, make([]byte, 64))
		if flow == floodFlow {
			// The volumetric flood aims at a destination no FEC covers:
			// whatever share survives the rate limiter must die at the
			// routing table, never ride an LSP.
			p.Header.Dst = packet.AddrFrom(10, 99, 0, 1)
		}
		p.Header.FlowID = flow
		if lbl != 0 {
			p.Stack.Push(label.Entry{Label: lbl, CoS: 0, Bottom: true, TTL: ttl})
		} else {
			p.Header.TTL = ttl
		}
		enc, err := transport.AppendPacket(nil, p, src)
		if err != nil {
			return nil
		}
		return enc
	}
	spoof := mk(plan.impostorID, spoofFlow, 1000000, 64) // never-advertised label
	lowTTL := mk(plan.impostorID, spoofFlow, 1000001, 1) // under the GTSM floor
	beFlood := mk(plan.impostorID, floodFlow, 0, 64)     // unlabelled best effort
	quarProbe := mk(plan.farID, spoofFlow, 1000002, 64)  // labelled, soon quarantined
	malformed := quarProbe[:10]                          // valid magic + source, truncated

	end := time.Now().Add(stop - start)
	for time.Now().Before(end) {
		// ~4000 datagrams/s of best-effort flood against a 2000 pps
		// budget, plus a steady trickle of each targeted attack.
		for i := 0; i < 4; i++ {
			conn.Write(beFlood)
		}
		conn.Write(spoof)
		conn.Write(lowTTL)
		conn.Write(malformed)
		conn.Write(quarProbe)
		time.Sleep(time.Millisecond)
	}
}

// runChild runs one node exactly the way mplsnode does, then holds the
// cluster to account: surviving sessions up, local-ingress LSPs routed
// around the kills, fresh deliveries on every locally-terminating flow,
// and not a single hostile flow id in the collector.
func runChild(cfgPath, node, dead string, duration float64) int {
	log.SetPrefix("mplschaos[" + node + "]: ")
	f, err := os.Open(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Print(err)
		return 1
	}
	b, err := scenario.BuildNode(node)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer b.Net.Close()
	var drops telemetry.DropCounters
	b.Net.SetTelemetry(telemetry.Sink{Drops: &drops})
	if b.Guard == nil {
		log.Print("scenario has no guard section; the soak is pointless")
		return 1
	}

	// Serve the management plane when the scenario maps this node to an
	// address — exactly what mplsnode does — so the parent can provision
	// runtime LSPs into the soak.
	if addr := scenario.Transport.Mgmt[node]; addr != "" {
		srv := mgmt.NewServer(b.Net)
		mgmt.NewNode(b, cfgPath, &config.Overrides{}).Attach(srv)
		if err := srv.Serve(addr); err != nil {
			log.Print(err)
			return 1
		}
		defer srv.Close()
	}

	deadSet := map[string]bool{}
	for _, d := range strings.Split(dead, ",") {
		if d != "" {
			deadSet[d] = true
		}
	}

	// Track the latest established path per local-ingress LSP, and
	// snapshot delivery counters one second before the end: the gap
	// between snapshot and exit is the "recently converged" window.
	latest := map[string][]string{}
	snap := map[uint16]uint64{}
	b.Net.Lock()
	prevEst := b.Speaker.OnEstablished
	b.Speaker.OnEstablished = func(id string, path []string) {
		latest[id] = append([]string(nil), path...)
		if prevEst != nil {
			prevEst(id, path)
		}
	}
	prevUp, prevDown := b.Speaker.OnSessionUp, b.Speaker.OnSessionDown
	b.Speaker.OnSessionUp = func(peer string) {
		fmt.Printf("t=%.3fs %s: session to %s up\n", b.Net.Sim.Now(), node, peer)
		if prevUp != nil {
			prevUp(peer)
		}
	}
	b.Speaker.OnSessionDown = func(peer string) {
		fmt.Printf("t=%.3fs %s: session to %s DOWN\n", b.Net.Sim.Now(), node, peer)
		if prevDown != nil {
			prevDown(peer)
		}
	}
	sessAtSnap := map[string]bool{}
	b.Net.Sim.Schedule(duration-1, func() {
		for _, id := range b.Collector.FlowIDs() {
			snap[id] = b.Collector.Flow(id).Delivered.Events
		}
		for _, peer := range b.Speaker.Peers() {
			if sess, ok := b.Speaker.Session(peer); ok && sess.Up() {
				sessAtSnap[peer] = true
			}
		}
	})
	b.Net.Unlock()

	b.Net.RunReal(duration)

	b.Net.Lock()
	defer b.Net.Unlock()
	var faults []string
	// The cluster shuts down on staggered wall clocks: a neighbour that
	// was spawned earlier stops keepaliving up to a few hundred ms
	// before our own run ends, so its session may expire in the final
	// hold interval through no fault of the protocol. A session counts
	// as survived if it was up at the T-1s checkpoint or at exit; only
	// down-at-both is a real robustness failure.
	for _, peer := range b.Speaker.Peers() {
		if deadSet[peer] {
			continue
		}
		sess, ok := b.Speaker.Session(peer)
		upNow := ok && sess.Up()
		if !upNow && !sessAtSnap[peer] {
			faults = append(faults, fmt.Sprintf("session to surviving peer %s not up", peer))
		}
	}
	for _, id := range b.Collector.FlowIDs() {
		if id == spoofFlow || id == floodFlow {
			faults = append(faults, fmt.Sprintf("hostile flow %#x reached the collector", id))
		}
	}
	lspTo := map[string]string{}
	for _, l := range scenario.LSPs {
		lspTo[l.Dst] = l.To
	}
	for _, l := range scenario.LSPs {
		if l.From != node {
			continue
		}
		path, ok := latest[l.ID]
		if !ok {
			faults = append(faults, fmt.Sprintf("LSP %s never established", l.ID))
			continue
		}
		for _, hop := range path {
			if deadSet[hop] {
				faults = append(faults, fmt.Sprintf("LSP %s still routed through dead %s: %v", l.ID, hop, path))
			}
		}
	}
	for _, fl := range scenario.Flows {
		if lspTo[fl.Dst] != node {
			continue
		}
		got := b.Collector.Flow(fl.ID).Delivered.Events
		if got <= snap[fl.ID] {
			faults = append(faults, fmt.Sprintf("flow %d stalled: %d delivered at T-1s, %d at exit", fl.ID, snap[fl.ID], got))
		}
	}

	g := b.Guard.Drops()
	fmt.Printf("CHAOS-GUARD %s spoof=%d ttl=%d rate=%d quarantine=%d trips=%d\n",
		node,
		g.Get(telemetry.ReasonLabelSpoof),
		g.Get(telemetry.ReasonTTLSecurity),
		g.Get(telemetry.ReasonRateLimit),
		g.Get(telemetry.ReasonQuarantine),
		b.Events.Get(telemetry.EventQuarantineTrip))
	if len(faults) > 0 {
		for _, f := range faults {
			log.Print(f)
		}
		fmt.Printf("SOAK FAIL %s (%d faults)\n", node, len(faults))
		return 1
	}
	fmt.Printf("SOAK ok %s\n", node)
	return 0
}
