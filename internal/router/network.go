package router

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/device"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// Link transport kinds for NodeSpec.Transport and LinkSpec.Transport.
const (
	// TransportSim is the default in-memory simulated link.
	TransportSim = "sim"
	// TransportUDP wires the two endpoints over loopback UDP sockets
	// using the binary wire codec — real datagrams, same topology.
	TransportUDP = "udp"
)

// NodeSpec describes one router of a simulated network.
type NodeSpec struct {
	Name string
	// Hardware selects the embedded MPLS device data plane; otherwise
	// the software forwarder is used.
	Hardware bool
	// RouterType configures a hardware plane as LER or LSR.
	RouterType lsm.RouterType
	// SoftwareCost overrides the software per-packet cost (<=0: default).
	SoftwareCost netsim.Time
	// EngineWorkers, when > 0, gives this software-plane node the
	// concurrent dataplane engine with that many shard workers instead
	// of the serial forwarder: RCU table updates and a per-packet cost
	// amortised across the workers. Ignored for hardware nodes.
	EngineWorkers int
	// EngineBatch overrides the engine's per-worker batch size (<=0:
	// engine default). Only meaningful with EngineWorkers > 0.
	EngineBatch int
	// InfoBase selects the ILM lookup backend of software planes:
	// "map" (default), "linear" (the paper's information base scan) or
	// "indexed" (the O(1) hash index). Ignored for hardware nodes,
	// whose information base is the device's own.
	InfoBase string
	// Transport is the default link transport for connections touching
	// this node: "" or "sim" for simulated links, "udp" for loopback
	// UDP sockets. A link is transport-backed when its own Transport
	// field or either endpoint's says so. Networks with UDP links must
	// be driven by RunReal rather than Sim.Run.
	Transport string
}

// ilmKind maps a NodeSpec.InfoBase string to the swmpls backend.
func ilmKind(name string) (swmpls.ILMKind, error) {
	switch name {
	case "", "map":
		return swmpls.ILMMap, nil
	case "linear":
		return swmpls.ILMLinear, nil
	case "indexed":
		return swmpls.ILMIndexed, nil
	default:
		return 0, fmt.Errorf("router: unknown infobase kind %q (want map, linear or indexed)", name)
	}
}

// LinkSpec describes one duplex connection.
type LinkSpec struct {
	A, B    string
	RateBPS float64
	Delay   netsim.Time
	// QueueCap bounds each direction's queue (packets). <=0 means 64.
	QueueCap int
	// NewQueue builds the scheduler per direction; nil means FIFO.
	NewQueue func(cap int) qos.Scheduler
	// Metric is the TE metric (0 = 1).
	Metric float64
	// Transport overrides the link transport: "" defers to the
	// endpoints' NodeSpec.Transport, "sim" forces a simulated link,
	// "udp" forces loopback UDP. Rate shaping and Delay apply only to
	// simulated links; a UDP link's latency is the real path's.
	Transport string
	// Coalesce packs up to this many packets into one datagram on UDP
	// links (transport.WithCoalesce); <=1 sends one datagram per
	// packet. Ignored for simulated links.
	Coalesce int
	// SysBatch sets how many datagrams one send/receive syscall moves
	// on UDP links (transport.WithSysBatch); <=0 keeps the transport
	// default. Ignored for simulated links.
	SysBatch int
}

// Network bundles a simulated MPLS network: event simulator, TE topology,
// LDP manager and the routers themselves.
type Network struct {
	Sim     *netsim.Simulator
	Topo    *te.Topology
	LDP     *ldp.Manager
	Routers map[string]*Router

	// Wire aggregates transport counters across every UDP link and
	// receive socket of the network; all zero for pure-sim topologies.
	Wire *transport.Metrics

	// mu serialises access to the discrete-event simulator when
	// transport receivers deliver from socket goroutines. RunReal and
	// the delivery path both hold it; pure-sim use via Sim.Run never
	// contends.
	mu      sync.Mutex
	sink    atomic.Pointer[telemetry.Sink]
	guard   atomic.Pointer[Admission]
	closers []io.Closer
	closing sync.Once
}

// Admission is the ingress guard as the network sees it: the
// post-decode per-packet verdict, the pre-decode quarantine fast path
// the transport receivers consult, and the malformed-datagram feed
// that trips quarantine breakers. internal/guard.Guard implements it.
type Admission interface {
	Admit(p *packet.Packet, from string) bool
	PreAdmit(peer string, labelled bool) bool
	Malformed(peer string)
}

// transportKind resolves the effective transport of a link from its own
// field and its endpoints' defaults.
func transportKind(spec LinkSpec, nodeDefault map[string]string) (string, error) {
	kind := spec.Transport
	if kind == "" {
		if nodeDefault[spec.A] == TransportUDP || nodeDefault[spec.B] == TransportUDP {
			kind = TransportUDP
		} else {
			kind = TransportSim
		}
	}
	switch kind {
	case TransportSim, TransportUDP:
		return kind, nil
	default:
		return "", fmt.Errorf("router: unknown transport %q for link %s<->%s (want sim or udp)",
			kind, spec.A, spec.B)
	}
}

// newPlane builds the data plane a node spec asks for.
func newPlane(spec NodeSpec) (DataPlane, error) {
	kind, err := ilmKind(spec.InfoBase)
	if err != nil {
		return nil, err
	}
	switch {
	case spec.Hardware:
		return NewHardwarePlane(device.New(spec.RouterType, lsm.DefaultClock)), nil
	case spec.EngineWorkers > 0:
		eng := dataplane.New(
			dataplane.WithWorkers(spec.EngineWorkers),
			dataplane.WithBatch(spec.EngineBatch),
			dataplane.WithNode(spec.Name),
			dataplane.WithNewTable(func() *swmpls.Forwarder { return swmpls.New(swmpls.WithILM(kind)) }),
		)
		return NewEnginePlane(eng, spec.SoftwareCost), nil
	default:
		return NewSoftwarePlaneWith(spec.SoftwareCost, swmpls.New(swmpls.WithILM(kind))), nil
	}
}

// Build wires a network from specs: routers with their data planes, TE
// topology nodes/links, links in both directions — simulated or
// transport-backed per spec — and an LDP manager with every router
// registered.
func Build(nodes []NodeSpec, links []LinkSpec) (*Network, error) {
	n := &Network{
		Sim:     netsim.New(),
		Topo:    te.NewTopology(),
		Routers: make(map[string]*Router),
		Wire:    &transport.Metrics{},
	}
	transports := make(map[string]string, len(nodes))
	for _, spec := range nodes {
		if _, dup := n.Routers[spec.Name]; dup {
			return nil, fmt.Errorf("router: duplicate node %q", spec.Name)
		}
		plane, err := newPlane(spec)
		if err != nil {
			return nil, err
		}
		n.Routers[spec.Name] = New(n.Sim, spec.Name, plane)
		n.Topo.AddNode(spec.Name)
		transports[spec.Name] = spec.Transport
	}
	for _, spec := range links {
		ra, ok := n.Routers[spec.A]
		if !ok {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.A)
		}
		rb, ok := n.Routers[spec.B]
		if !ok {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.B)
		}
		kind, err := transportKind(spec, transports)
		if err != nil {
			return nil, err
		}
		switch kind {
		case TransportUDP:
			if err := n.wireUDP(spec, ra, rb); err != nil {
				return nil, err
			}
		default:
			capacity := spec.QueueCap
			if capacity <= 0 {
				capacity = 64
			}
			newQueue := spec.NewQueue
			if newQueue == nil {
				newQueue = func(c int) qos.Scheduler { return qos.NewFIFO(c) }
			}
			ra.AttachLink(netsim.NewLink(n.Sim, spec.A, rb, spec.RateBPS, spec.Delay, newQueue(capacity)))
			rb.AttachLink(netsim.NewLink(n.Sim, spec.B, ra, spec.RateBPS, spec.Delay, newQueue(capacity)))
		}
		if err := n.Topo.AddDuplex(spec.A, spec.B, te.LinkAttrs{
			CapacityBPS: spec.RateBPS,
			Metric:      spec.Metric,
			DelaySec:    spec.Delay,
		}); err != nil {
			return nil, err
		}
	}
	n.LDP = ldp.NewManager(n.Topo)
	for name, r := range n.Routers {
		if err := n.LDP.Register(name, r); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// BuildLocal builds the peer-scoped network of one distributed process:
// the full TE topology (path computation needs the whole graph, and a
// graph is scenario metadata, not router state) but only the named
// router is instantiated — no ghost routers, no ghost label tables. No
// links are wired either; the caller attaches transport links toward
// its actual neighbours, and label bindings arrive over those links via
// the signaling plane instead of being precomputed in-process. The LDP
// manager exists with only the local router registered, for callers
// that program local state directly.
func BuildLocal(nodes []NodeSpec, links []LinkSpec, local string) (*Network, error) {
	n := &Network{
		Sim:     netsim.New(),
		Topo:    te.NewTopology(),
		Routers: make(map[string]*Router),
		Wire:    &transport.Metrics{},
	}
	known := make(map[string]bool, len(nodes))
	for _, spec := range nodes {
		if known[spec.Name] {
			return nil, fmt.Errorf("router: duplicate node %q", spec.Name)
		}
		known[spec.Name] = true
		n.Topo.AddNode(spec.Name)
		if spec.Name != local {
			continue
		}
		plane, err := newPlane(spec)
		if err != nil {
			return nil, err
		}
		n.Routers[spec.Name] = New(n.Sim, spec.Name, plane)
	}
	if _, ok := n.Routers[local]; !ok {
		return nil, fmt.Errorf("router: local node %q not in node specs", local)
	}
	for _, spec := range links {
		if !known[spec.A] {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.A)
		}
		if !known[spec.B] {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.B)
		}
		if err := n.Topo.AddDuplex(spec.A, spec.B, te.LinkAttrs{
			CapacityBPS: spec.RateBPS,
			Metric:      spec.Metric,
			DelaySec:    spec.Delay,
		}); err != nil {
			return nil, err
		}
	}
	n.LDP = ldp.NewManager(n.Topo)
	if err := n.LDP.Register(local, n.Routers[local]); err != nil {
		return nil, err
	}
	return n, nil
}

// TransportOptions returns the options wiring a transport socket into
// this network: shared metrics, drop accounting through the attached
// telemetry sink, and the simulator clock for fault windows. Callers
// building their own sockets (the mplsnode daemon's inter-process
// links) append source/peer options and hand the result to
// transport.Dial or transport.Listen.
func (n *Network) TransportOptions() []transport.Option {
	return []transport.Option{
		transport.WithMetrics(n.Wire),
		transport.WithDropFunc(n.wireDrop),
		transport.WithClock(func() float64 { return n.Sim.Now() }),
		transport.WithPreAdmit(n.guardPreAdmit),
		transport.WithMalformedFunc(n.guardMalformed),
	}
}

// DeliverTo returns a transport receive sink that injects decoded
// batches into the named router under the network lock — the glue
// between a transport.Receiver and this network.
func (n *Network) DeliverTo(name string) func(batch []transport.Inbound) {
	return n.deliverTo(n.Router(name))
}

// Manage registers a closer (a transport link or receiver created
// outside Build) to be torn down with the network.
func (n *Network) Manage(c io.Closer) { n.closers = append(n.closers, c) }

// wireUDP replaces one simulated duplex link with a loopback UDP pair:
// send sides attach to the routers as ordinary wires, receive sides
// deliver decoded batches into the peer router under the network lock.
func (n *Network) wireUDP(spec LinkSpec, ra, rb *Router) error {
	opts := []transport.Option{
		transport.WithMetrics(n.Wire),
		transport.WithDropFunc(n.wireDrop),
		// Fault windows on transport links follow the simulator clock,
		// which RunReal keeps pinned to wall time.
		transport.WithClock(func() float64 { return n.Sim.Now() }),
		transport.WithPreAdmit(n.guardPreAdmit),
		transport.WithMalformedFunc(n.guardMalformed),
	}
	if spec.Coalesce > 1 {
		opts = append(opts, transport.WithCoalesce(spec.Coalesce))
	}
	if spec.SysBatch > 0 {
		opts = append(opts, transport.WithSysBatch(spec.SysBatch))
	}
	d, err := transport.Pair(spec.A, spec.B, n.deliverTo(ra), n.deliverTo(rb), opts, opts)
	if err != nil {
		return err
	}
	ra.AttachLink(d.A)
	rb.AttachLink(d.B)
	n.closers = append(n.closers, d)
	return nil
}

// deliverTo adapts a transport receive batch to the router's Receive
// path: packets are cloned off the receiver's reusable storage and
// injected under the network lock, where the simulator is quiescent
// between RunReal slices.
func (n *Network) deliverTo(r *Router) func(batch []transport.Inbound) {
	return func(batch []transport.Inbound) {
		n.mu.Lock()
		defer n.mu.Unlock()
		for _, in := range batch {
			r.Receive(in.P.Clone(), in.From)
		}
	}
}

// SetGuard attaches one ingress admission guard to every router of
// this network and to its transport sockets (pre-decode quarantine,
// malformed-datagram attribution). Like SetTelemetry, the socket side
// goes through an atomic indirection so sockets created before the
// guard exists still honour it. A nil guard detaches.
func (n *Network) SetGuard(a Admission) {
	if a == nil {
		n.guard.Store(nil)
		for _, r := range n.Routers {
			r.SetAdmission(nil)
		}
		return
	}
	n.guard.Store(&a)
	for _, r := range n.Routers {
		r.SetAdmission(a.Admit)
	}
}

// guardPreAdmit and guardMalformed resolve the guard per event: they
// run on socket goroutines, where the guard (internally locked) is
// safe but the network lock is not held.
func (n *Network) guardPreAdmit(peer string, labelled bool) bool {
	if g := n.guard.Load(); g != nil {
		return (*g).PreAdmit(peer, labelled)
	}
	return true
}

func (n *Network) guardMalformed(peer string) {
	if g := n.guard.Load(); g != nil {
		(*g).Malformed(peer)
	}
}

// wireDrop routes a transport-level drop into whatever sink is
// currently attached; transport links outlive SetTelemetry calls, so
// the indirection is resolved per event.
func (n *Network) wireDrop(reason telemetry.Reason) {
	if s := n.sink.Load(); s != nil && s.Drops != nil {
		s.Drops.Inc(reason)
	}
}

// Drop accounts one drop through the attached telemetry sink — the
// public hook non-router components in front of the routers (the
// ingress admission guard) account through, so their drops land in the
// same node-level counters as everything else.
func (n *Network) Drop(reason telemetry.Reason) { n.wireDrop(reason) }

// RunReal drives the simulator in real time for d seconds of wall
// clock: virtual time tracks wall time in small slices, and between
// slices the network lock is free for transport receivers to inject
// arrivals. Topologies with UDP links must be driven this way —
// Sim.Run would race the socket goroutines and, with no pending
// events, return before any datagram arrives.
func (n *Network) RunReal(d netsim.Time) { n.RunRealStop(d, nil) }

// RunRealStop is RunReal with early termination: it returns at the
// deadline or as soon as stop is closed, whichever comes first — the
// shape a daemon needs to run "forever" yet exit promptly on a
// shutdown signal. The simulator is left quiescent at whatever virtual
// time the last slice reached, so post-run inspection under Lock sees
// a consistent state. A nil stop never fires.
func (n *Network) RunRealStop(d netsim.Time, stop <-chan struct{}) {
	const slice = 200 * time.Microsecond
	start := time.Now()
	for {
		elapsed := time.Since(start).Seconds()
		if elapsed > d {
			elapsed = d
		}
		n.mu.Lock()
		n.Sim.RunUntil(elapsed)
		n.mu.Unlock()
		if elapsed >= d {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
		time.Sleep(slice)
	}
}

// Lock acquires the network lock, serialising direct simulator access
// (installing routes, injecting packets, reading stats) against
// transport deliveries. Pure-sim callers never need it.
func (n *Network) Lock() { n.mu.Lock() }

// Unlock releases the network lock.
func (n *Network) Unlock() { n.mu.Unlock() }

// Close releases every router's data plane through the shared
// DataPlane contract — engine-backed planes stop their workers, serial
// planes are no-ops — and tears down any transport sockets. Planes
// close first: a pumped engine drains its egress staging rings through
// the wires on Close, so the wires must still be up (and the network
// lock must not be held — the pump takes it per flush). It is
// idempotent and safe to call while sends are still in flight:
// transport links count packets racing the teardown as lost, and
// receivers finish their final batch before Close returns.
func (n *Network) Close() {
	n.closing.Do(func() {
		for _, r := range n.Routers {
			_ = r.Plane().Close()
		}
		for _, c := range n.closers {
			_ = c.Close()
		}
	})
}

// SetTelemetry attaches one shared sink to every router — a single
// per-reason view of forwarding loss and one interleaved per-hop trace
// of the whole network, each router attributing events to its own name
// — and to the network's transport links, whose decode failures land
// in the same drop counters under the wire-decode reason. This is the
// only observability attachment point; the former per-field setters
// (drop counters, trace ring) are gone.
func (n *Network) SetTelemetry(s telemetry.Sink) {
	n.sink.Store(&s)
	for _, r := range n.Routers {
		r.SetTelemetry(s)
	}
}

// Router returns a node by name, panicking on unknown names — network
// construction is static, so a miss is a programming error.
func (n *Network) Router(name string) *Router {
	r, ok := n.Routers[name]
	if !ok {
		panic("router: unknown node " + name)
	}
	return r
}

// SetLinkDown fails (or restores) both directions of the a<->b
// connection. Unknown endpoints or links are an error so a typo in a
// failure script cannot silently test nothing.
func (n *Network) SetLinkDown(a, b string, down bool) error {
	ra, ok := n.Routers[a]
	if !ok {
		return fmt.Errorf("router: unknown node %q", a)
	}
	rb, ok := n.Routers[b]
	if !ok {
		return fmt.Errorf("router: unknown node %q", b)
	}
	lab, ok := ra.Link(b)
	if !ok {
		return fmt.Errorf("router: no link %s->%s", a, b)
	}
	lba, ok := rb.Link(a)
	if !ok {
		return fmt.Errorf("router: no link %s->%s", b, a)
	}
	lab.SetDown(down)
	lba.SetDown(down)
	return nil
}
