// mplsctl drives a fleet of mplsnode processes through their management
// plane (internal/mgmt): JSON-RPC over TCP, one connection per node,
// requests pipelined in batches. The cluster is named by the same
// scenario file the nodes run — its transport mgmt map says who listens
// where — or by a plain {"node":"host:port"} JSON object:
//
//	mplsctl -cluster scenario.json status
//	mplsctl -cluster scenario.json -node a lsp provision -id burst -dst 10.9.0.1 -to c -count 100000
//	mplsctl -cluster scenario.json lsp list
//	mplsctl -cluster scenario.json -node a infobase
//	mplsctl -cluster scenario.json scrape
//	mplsctl -cluster scenario.json -node a guard set rate_pps=500,burst=64
//	mplsctl -cluster scenario.json -node a reload
//	mplsctl -cluster scenario.json watch drops
//
// Commands run against every node in the cluster unless -node narrows
// the target. Exit status is non-zero if any node errored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/mgmt"
	"embeddedmpls/internal/packet"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage: mplsctl -cluster <file> [-node NAME] [-json] <command>

commands:
  status                      node.status from each target node
  lsp provision [flags]       signal LSPs at runtime (see lsp provision -h)
  lsp teardown -id ID [-count N]
  lsp list                    dump signalled LSPs
  session list                dump signaling sessions
  infobase [-level N]         dump label information bases (1=FTN, 2=ILM)
  scrape                      Prometheus text exposition from each node
  guard set <spec>            retune the admission guard ("rate_pps=500,burst=64")
  reload [-path FILE]         re-load the scenario file, apply additive delta
  watch drops [-interval D] [-n N]   poll drop counters, print deltas
`)
	os.Exit(2)
}

// cluster maps node names to management addresses, iterated in sorted
// order so output and batch fan-out are deterministic.
type cluster map[string]string

func (c cluster) names() []string {
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// loadCluster accepts either a full scenario file (management addresses
// from transport.mgmt) or a bare {"node":"host:port"} map.
func loadCluster(path string) (cluster, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bare map[string]string
	if err := json.Unmarshal(raw, &bare); err == nil && len(bare) > 0 {
		return cluster(bare), nil
	}
	s, err := config.Load(strings.NewReader(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("%s is neither a node->addr map nor a scenario: %w", path, err)
	}
	if s.Transport == nil || len(s.Transport.Mgmt) == 0 {
		return nil, fmt.Errorf("scenario %s has no transport mgmt map", path)
	}
	return cluster(s.Transport.Mgmt), nil
}

// ctl carries the resolved invocation context into each command.
type ctl struct {
	cluster cluster
	node    string // -node narrowing, "" = all
	rawJSON bool
	timeout time.Duration
	failed  bool
}

// targets resolves which nodes a command runs against.
func (c *ctl) targets() []string {
	if c.node != "" {
		if _, ok := c.cluster[c.node]; !ok {
			log.Fatalf("node %q is not in the cluster (have %v)", c.node, c.cluster.names())
		}
		return []string{c.node}
	}
	return c.cluster.names()
}

// dial connects to one node's management address.
func (c *ctl) dial(node string) (*mgmt.Client, error) {
	return mgmt.Dial(c.cluster[node], c.timeout)
}

// eachNode runs fn against every target node on its own connection,
// reporting per-node failures without aborting the sweep.
func (c *ctl) eachNode(fn func(node string, cl *mgmt.Client) error) {
	for _, node := range c.targets() {
		cl, err := c.dial(node)
		if err != nil {
			fmt.Printf("%s: %v\n", node, err)
			c.failed = true
			continue
		}
		if err := fn(node, cl); err != nil {
			fmt.Printf("%s: %v\n", node, err)
			c.failed = true
		}
		cl.Close()
	}
}

// callEach performs the same no-param RPC on every target and hands the
// decoded result to show.
func callEach[T any](c *ctl, method string, show func(node string, res T)) {
	c.eachNode(func(node string, cl *mgmt.Client) error {
		if c.rawJSON {
			var raw json.RawMessage
			if err := cl.Call(method, nil, &raw); err != nil {
				return err
			}
			fmt.Printf("%s\n", raw)
			return nil
		}
		var res T
		if err := cl.Call(method, nil, &res); err != nil {
			return err
		}
		show(node, res)
		return nil
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mplsctl: ")
	clusterPath := flag.String("cluster", "", "scenario file or {\"node\":\"host:port\"} map naming the fleet (required)")
	node := flag.String("node", "", "narrow commands to one node")
	rawJSON := flag.Bool("json", false, "print raw JSON results instead of text")
	timeout := flag.Duration("timeout", 5*time.Second, "TCP connect timeout per node")
	flag.Usage = usage
	flag.Parse()
	if *clusterPath == "" || flag.NArg() == 0 {
		usage()
	}
	cl, err := loadCluster(*clusterPath)
	if err != nil {
		log.Fatal(err)
	}
	c := &ctl{cluster: cl, node: *node, rawJSON: *rawJSON, timeout: *timeout}

	args := flag.Args()
	switch args[0] {
	case "status":
		c.status()
	case "lsp":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "provision":
			c.lspProvision(args[2:])
		case "teardown":
			c.lspTeardown(args[2:])
		case "list":
			c.lspList()
		default:
			usage()
		}
	case "session":
		if len(args) < 2 || args[1] != "list" {
			usage()
		}
		c.sessionList()
	case "infobase":
		c.infobase(args[1:])
	case "scrape":
		c.scrape()
	case "guard":
		if len(args) < 3 || args[1] != "set" {
			usage()
		}
		c.guardSet(args[2])
	case "reload":
		c.reload(args[1:])
	case "watch":
		if len(args) < 2 || args[1] != "drops" {
			usage()
		}
		c.watchDrops(args[2:])
	default:
		usage()
	}
	if c.failed {
		os.Exit(1)
	}
}

func (c *ctl) status() {
	callEach(c, mgmt.StatusMethod, func(node string, st mgmt.StatusResult) {
		state := "up"
		if st.Draining {
			state = "draining"
		}
		fmt.Printf("%s: %s t=%.3fs sessions %d/%d up, %d LSPs (%d ingress, %d established)\n",
			node, state, st.SimTime, st.SessionsUp, st.Sessions, st.LSPs, st.Ingress, st.Established)
	})
}

// lspProvision signals -count LSPs in one pipelined batch at their
// ingress. With -count > 1 the id gains a -N suffix and the destination
// address increments per LSP, so every generated LSP carries a distinct
// FEC.
func (c *ctl) lspProvision(args []string) {
	fs := flag.NewFlagSet("lsp provision", flag.ExitOnError)
	var l config.LSP
	fs.StringVar(&l.ID, "id", "", "LSP id (suffixed -N when -count > 1; required)")
	fs.StringVar(&l.Dst, "dst", "", "FEC destination, dotted quad (required; increments per LSP when -count > 1)")
	fs.IntVar(&l.PrefixLen, "prefix-len", 0, "FEC prefix length (default 32)")
	fs.StringVar(&l.From, "from", "", "ingress node (default: the -node target)")
	fs.StringVar(&l.To, "to", "", "egress node (CSPF computes the path)")
	path := fs.String("path", "", "explicit hop list, comma-separated (overrides -to)")
	fs.Float64Var(&l.BandwidthMbps, "bandwidth", 0, "reserved bandwidth in Mbps")
	cos := fs.Int("cos", 0, "class of service (0-7)")
	fs.BoolVar(&l.PHP, "php", false, "penultimate-hop popping")
	count := fs.Int("count", 1, "how many LSPs to provision in one batch")
	fs.Parse(args)
	l.CoS = uint8(*cos)
	if *path != "" {
		l.Path = strings.Split(*path, ",")
	}
	target := c.node
	if target == "" {
		target = l.From
	}
	if target == "" {
		log.Fatal("lsp provision: need -node or -from to pick the ingress")
	}
	if l.ID == "" || l.Dst == "" {
		log.Fatal("lsp provision: need -id and -dst")
	}
	base, err := config.ParseAddr(l.Dst)
	if err != nil {
		log.Fatalf("lsp provision: %v", err)
	}
	params := make([]any, *count)
	for i := range params {
		li := l
		if *count > 1 {
			li.ID = fmt.Sprintf("%s-%d", l.ID, i)
			li.Dst = (base + packet.Addr(i)).String()
		}
		params[i] = li
	}
	cli, err := c.dial(target)
	if err != nil {
		log.Fatalf("%s: %v", target, err)
	}
	defer cli.Close()
	start := time.Now()
	results, err := cli.Batch("lsp.provision", params)
	ok := 0
	for _, r := range results {
		if r != nil {
			ok++
		}
	}
	fmt.Printf("%s: %d/%d LSPs signalled in %v\n", target, ok, len(params), time.Since(start).Round(time.Millisecond))
	if err != nil {
		fmt.Printf("%s: first error: %v\n", target, err)
		c.failed = true
	}
}

func (c *ctl) lspTeardown(args []string) {
	fs := flag.NewFlagSet("lsp teardown", flag.ExitOnError)
	id := fs.String("id", "", "LSP id (required; -N suffixes when -count > 1)")
	count := fs.Int("count", 1, "tear down id-0..id-N-1, matching a batched provision")
	fs.Parse(args)
	if *id == "" {
		log.Fatal("lsp teardown: need -id")
	}
	if c.node == "" {
		log.Fatal("lsp teardown: need -node to pick the ingress")
	}
	params := make([]any, *count)
	for i := range params {
		p := mgmt.TeardownParams{ID: *id}
		if *count > 1 {
			p.ID = fmt.Sprintf("%s-%d", *id, i)
		}
		params[i] = p
	}
	cli, err := c.dial(c.node)
	if err != nil {
		log.Fatalf("%s: %v", c.node, err)
	}
	defer cli.Close()
	results, err := cli.Batch("lsp.teardown", params)
	ok := 0
	for _, r := range results {
		if r != nil {
			ok++
		}
	}
	fmt.Printf("%s: %d/%d LSPs released\n", c.node, ok, len(params))
	if err != nil {
		fmt.Printf("%s: first error: %v\n", c.node, err)
		c.failed = true
	}
}

func (c *ctl) lspList() {
	callEach(c, "lsp.list", func(node string, res mgmt.LSPListResult) {
		fmt.Printf("%s: %d LSPs\n", node, len(res.LSPs))
		for _, l := range res.LSPs {
			state := "signalled"
			switch {
			case l.Pending:
				state = "pending"
			case l.Established:
				state = "established"
			}
			fmt.Printf("  %s gen %d %s %s fec %s in %d out %d via %v\n",
				l.ID, l.Gen, l.Role, state, l.FEC, l.InLabel, l.OutLabel, l.Route)
		}
	})
}

func (c *ctl) sessionList() {
	callEach(c, "session.list", func(node string, res mgmt.SessionListResult) {
		for _, s := range res.Sessions {
			fmt.Printf("%s -> %s: %s\n", node, s.Peer, s.State)
		}
	})
}

func (c *ctl) infobase(args []string) {
	fs := flag.NewFlagSet("infobase", flag.ExitOnError)
	level := fs.Int("level", 0, "information-base level to dump (1=FTN, 2=ILM, 0=both)")
	fs.Parse(args)
	c.eachNode(func(node string, cl *mgmt.Client) error {
		if c.rawJSON {
			var raw json.RawMessage
			if err := cl.Call("infobase.get", mgmt.InfobaseParams{Level: *level}, &raw); err != nil {
				return err
			}
			fmt.Printf("%s\n", raw)
			return nil
		}
		var res mgmt.InfobaseResult
		if err := cl.Call("infobase.get", mgmt.InfobaseParams{Level: *level}, &res); err != nil {
			return err
		}
		for _, lvl := range res.Levels {
			kind := "FTN"
			if lvl.Level == 2 {
				kind = "ILM"
			}
			fmt.Printf("%s: level %d (%s), %d entries\n", node, lvl.Level, kind, len(lvl.Entries))
			for _, e := range lvl.Entries {
				key := e.FEC
				if lvl.Level == 2 {
					key = fmt.Sprintf("label %d", e.InLabel)
				}
				fmt.Printf("  %s -> %s %s %v", key, e.NextHop, e.Op, e.Labels)
				if e.CoS != 0 {
					fmt.Printf(" cos %d", e.CoS)
				}
				fmt.Println()
			}
		}
		return nil
	})
}

func (c *ctl) scrape() {
	c.eachNode(func(node string, cl *mgmt.Client) error {
		var res mgmt.ScrapeResult
		if err := cl.Call("telemetry.scrape", nil, &res); err != nil {
			return err
		}
		if c.rawJSON {
			raw, _ := json.Marshal(res)
			fmt.Printf("%s\n", raw)
			return nil
		}
		fmt.Printf("# node %s\n%s", node, res.Text)
		return nil
	})
}

func (c *ctl) guardSet(spec string) {
	c.eachNode(func(node string, cl *mgmt.Client) error {
		var res mgmt.GuardSetResult
		if err := cl.Call("guard.set", mgmt.GuardSetParams{Spec: spec}, &res); err != nil {
			return err
		}
		if c.rawJSON {
			raw, _ := json.Marshal(res)
			fmt.Printf("%s\n", raw)
			return nil
		}
		fmt.Printf("%s: guard updated\n", node)
		return nil
	})
}

func (c *ctl) reload(args []string) {
	fs := flag.NewFlagSet("reload", flag.ExitOnError)
	path := fs.String("path", "", "scenario file to load (default: the node's own path)")
	fs.Parse(args)
	c.eachNode(func(node string, cl *mgmt.Client) error {
		var res mgmt.ReloadResult
		if err := cl.Call("config.reload", mgmt.ReloadParams{Path: *path}, &res); err != nil {
			return err
		}
		if c.rawJSON {
			raw, _ := json.Marshal(res)
			fmt.Printf("%s\n", raw)
			return nil
		}
		r := res.Report
		if r.Empty() {
			fmt.Printf("%s: no changes\n", node)
			return nil
		}
		fmt.Printf("%s: +%d LSPs %v, -%d LSPs %v, changed %v, +%d flows %v, guard=%v\n",
			node, len(r.AddedLSPs), r.AddedLSPs, len(r.RemovedLSPs), r.RemovedLSPs,
			r.ChangedLSPs, len(r.AddedFlows), r.AddedFlows, r.GuardUpdated)
		for _, s := range r.Skipped {
			fmt.Printf("%s: skipped: %s\n", node, s)
		}
		return nil
	})
}

// watchDrops polls node.status across the fleet and prints per-reason
// drop-count deltas as they happen — the fleet-wide "is anything
// bleeding" view.
func (c *ctl) watchDrops(args []string) {
	fs := flag.NewFlagSet("watch drops", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "poll interval")
	iters := fs.Int("n", 0, "stop after N polls (0 = until interrupted)")
	fs.Parse(args)
	prev := map[string]map[string]uint64{}
	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		c.eachNode(func(node string, cl *mgmt.Client) error {
			var st mgmt.StatusResult
			if err := cl.Call(mgmt.StatusMethod, nil, &st); err != nil {
				return err
			}
			last := prev[node]
			if last == nil {
				last = map[string]uint64{}
				prev[node] = last
			}
			reasons := make([]string, 0, len(st.Drops))
			for r := range st.Drops {
				reasons = append(reasons, r)
			}
			sort.Strings(reasons)
			for _, r := range reasons {
				total := st.Drops[r]
				if d := total - last[r]; d > 0 || i == 0 {
					fmt.Printf("t=%.3fs %s: %s +%d (total %d)\n", st.SimTime, node, r, total-last[r], total)
				}
				last[r] = total
			}
			return nil
		})
	}
}
