package lsm

import (
	"fmt"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
	"embeddedmpls/internal/wave"
)

// FigureTrace is the reproduction of one of the paper's simulation
// figures: the bench that ran it, the signal trace, and the lookup
// outcome.
type FigureTrace struct {
	Name    string
	Caption string
	Bench   *Bench
	Tracer  *wave.Tracer
	Result  LookupResult
	Cycles  int // cycle cost of the final lookup
}

// figureSignals are the signals shown in Figures 14-16, in the paper's
// order.
var figureSignals = []string{
	"level", "packetid", "old_label", "new_label", "operation_in",
	"label_lookup", "save", "lookup", "r_index", "w_index",
	"label_out", "operation_out", "lookup_done", "packetdiscard",
}

// newFigureBench builds a bench with a tracer over the figure signals.
func newFigureBench() (*Bench, *wave.Tracer) {
	b := NewBench(LER)
	sim := b.Sim()
	sigs := make([]*rtl.Signal, 0, len(figureSignals))
	for _, name := range figureSignals {
		s := sim.Lookup(name)
		if s == nil {
			panic("lsm: figure signal " + name + " not in the design")
		}
		sigs = append(sigs, s)
	}
	return b, wave.NewTracer(sim, sigs...)
}

// Figure14 reproduces the paper's Figure 14: ten label pairs written to
// level 1 with packet identifiers 600-609 and new labels 500-509 (the
// operation alternating so no two consecutive entries share one), then a
// lookup of packet identifier 604, which must return label 504 without
// discarding the packet.
func Figure14() (*FigureTrace, error) {
	b, tr := newFigureBench()
	for i := 0; i < 10; i++ {
		p := infobase.Pair{
			Index:    infobase.Key(600 + i),
			NewLabel: label.Label(500 + i),
			Op:       alternatingOp(i),
		}
		if _, err := b.WritePair(infobase.Level1, p); err != nil {
			return nil, fmt.Errorf("figure 14 write %d: %w", i, err)
		}
	}
	res, cycles, err := b.Lookup(infobase.Level1, 604)
	if err != nil {
		return nil, fmt.Errorf("figure 14 lookup: %w", err)
	}
	return &FigureTrace{
		Name:    "Figure 14",
		Caption: "level 1 label pair entries: write ids 600-609 -> labels 500-509, look up id 604",
		Bench:   b, Tracer: tr, Result: res, Cycles: cycles,
	}, nil
}

// Figure15 reproduces Figure 15: the same scenario against level 2, with
// old labels 1-10 mapped to new labels 500-509, and a successful lookup.
func Figure15() (*FigureTrace, error) {
	b, tr := newFigureBench()
	for i := 0; i < 10; i++ {
		p := infobase.Pair{
			Index:    infobase.Key(1 + i),
			NewLabel: label.Label(500 + i),
			Op:       alternatingOp(i),
		}
		if _, err := b.WritePair(infobase.Level2, p); err != nil {
			return nil, fmt.Errorf("figure 15 write %d: %w", i, err)
		}
	}
	res, cycles, err := b.Lookup(infobase.Level2, 5)
	if err != nil {
		return nil, fmt.Errorf("figure 15 lookup: %w", err)
	}
	return &FigureTrace{
		Name:    "Figure 15",
		Caption: "level 2 label pair entries: write labels 1-10 -> 500-509, look up label 5",
		Bench:   b, Tracer: tr, Result: res, Cycles: cycles,
	}, nil
}

// Figure16 reproduces Figure 16: labels 1-10 stored at level 2, then a
// lookup of label 27, which does not exist. The read index must sweep all
// stored pairs, lookup_done and packetdiscard must go high, and
// label_out/operation_out must remain unchanged.
func Figure16() (*FigureTrace, error) {
	b, tr := newFigureBench()
	for i := 0; i < 10; i++ {
		p := infobase.Pair{
			Index:    infobase.Key(1 + i),
			NewLabel: label.Label(500 + i),
			Op:       alternatingOp(i),
		}
		if _, err := b.WritePair(infobase.Level2, p); err != nil {
			return nil, fmt.Errorf("figure 16 write %d: %w", i, err)
		}
	}
	res, cycles, err := b.Lookup(infobase.Level2, 27)
	if err != nil {
		return nil, fmt.Errorf("figure 16 lookup: %w", err)
	}
	return &FigureTrace{
		Name:    "Figure 16",
		Caption: "packet discard: labels 1-10 stored, look up absent label 27",
		Bench:   b, Tracer: tr, Result: res, Cycles: cycles,
	}, nil
}

// TraceUpdate produces a control-unit trace of a full update operation —
// not one of the paper's figures, but the view of Figures 8-11 in motion:
// the four state machines, the TTL counter and the stack as a packet's
// label is processed. op selects the stored operation ("swap", "pop",
// "push") or "miss" for the discard path.
func TraceUpdate(op string) (*FigureTrace, error) {
	b := NewBench(LSR)
	sim := b.Sim()
	names := []string{
		"main_state", "lsi_state", "ibi_state", "search_state",
		"r_index", "ttl_q", "stack_size", "label_out", "operation_out",
		"done", "packetdiscard",
	}
	sigs := make([]*rtl.Signal, 0, len(names))
	for _, n := range names {
		s := sim.Lookup(n)
		if s == nil {
			return nil, fmt.Errorf("lsm: trace signal %q not in the design", n)
		}
		sigs = append(sigs, s)
	}

	var stored label.Op
	switch op {
	case "swap":
		stored = label.OpSwap
	case "pop":
		stored = label.OpPop
	case "push":
		stored = label.OpPush
	case "miss":
		stored = label.OpSwap // stored but the packet carries another label
	default:
		return nil, fmt.Errorf("lsm: unknown update trace op %q (swap, pop, push, miss)", op)
	}
	if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: stored}); err != nil {
		return nil, err
	}
	carried := label.Label(42)
	if op == "miss" {
		carried = 27
	}
	if _, err := b.UserPush(label.Entry{Label: carried, CoS: 3, TTL: 64}); err != nil {
		return nil, err
	}

	tr := wave.NewTracer(sim, sigs...)
	res, cycles, err := b.Update(UpdateRequest{})
	if err != nil {
		return nil, err
	}
	return &FigureTrace{
		Name: "Update trace (" + op + ")",
		Caption: fmt.Sprintf("label %d carried, stored op %v: %d cycles, discard=%v",
			carried, stored, cycles, res.Discarded()),
		Bench: b, Tracer: tr,
		Result: LookupResult{Label: res.NewLabel, Op: res.Op, Found: !res.Discarded() || res.Discard != DiscardNotFound, SearchPos: res.SearchPos},
		Cycles: cycles,
	}, nil
}

// alternatingOp cycles push/pop/swap so that, as in the paper, "no two
// consecutive entries are given the same operation". The phase is chosen
// so the fifth entry (packet identifier 604 in Figure 14) carries
// operation code 3, the value the paper's waveform reads back.
func alternatingOp(i int) label.Op {
	return label.Op(1 + (i+1)%3)
}
