package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal is a native fuzz target (seeds run under plain go test;
// explore further with `go test -fuzz=FuzzUnmarshal ./internal/packet`).
func FuzzUnmarshal(f *testing.F) {
	p := New(AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2), 64, []byte("seed"))
	buf, err := p.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{0x88, 0x00, 0x01, 0x21, 0x3f})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Whatever parses must re-encode and re-parse to the same packet.
		out, err := q.Marshal()
		if err != nil {
			t.Fatalf("parsed packet does not marshal: %v", err)
		}
		r, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded packet does not parse: %v", err)
		}
		if r.Header != q.Header || !bytes.Equal(r.Payload, q.Payload) || !r.Stack.Equal(q.Stack) {
			t.Fatal("marshal/unmarshal not idempotent")
		}
	})
}
