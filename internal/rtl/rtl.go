// Package rtl is a small cycle-accurate synchronous-logic simulation
// kernel. It stands in for the FPGA fabric that Peterkin & Ionescu's
// embedded MPLS architecture targets (an Altera Stratix EP1S40F780C5):
// the paper's entire evaluation consists of HDL simulation waveforms and
// clock-cycle counts, and this kernel produces exactly those observables.
//
// The model is a single clock domain with two-phase semantics:
//
//  1. Combinational processes run to a fixed point (every registered
//     comb function is re-evaluated until no signal changes).
//  2. On Step (one rising clock edge), every sequential component first
//     Latches its next state from the settled signal values, then every
//     component Commits, so all state elements update simultaneously —
//     exactly the semantics of synchronous RTL.
//
// Signals are named, width-masked wires; the wave package samples them to
// render waveforms.
package rtl

import "fmt"

// Signal is a named wire carrying an unsigned value of a fixed bit width.
// Values wider than the signal are masked on Set, like an HDL assignment
// to a narrower net.
type Signal struct {
	name  string
	width uint
	mask  uint64
	val   uint64
	sim   *Simulator
}

// Name returns the signal's name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal's bit width.
func (s *Signal) Width() uint { return s.width }

// Get returns the current value of the signal.
func (s *Signal) Get() uint64 { return s.val }

// Set drives the signal to v (masked to the signal width) and marks the
// simulator dirty if the value changed, so the settle loop knows to run
// the combinational processes again.
func (s *Signal) Set(v uint64) {
	v &= s.mask
	if v != s.val {
		s.val = v
		s.sim.dirty = true
	}
}

// Bool returns the signal interpreted as a single-bit boolean.
func (s *Signal) Bool() bool { return s.val != 0 }

// SetBool drives a single-bit signal.
func (s *Signal) SetBool(b bool) {
	if b {
		s.Set(1)
	} else {
		s.Set(0)
	}
}

// Sequential is a clocked component. Latch computes the next state from
// the settled combinational values; Commit drives output signals from that
// next state. The split guarantees that every sequential element observes
// the pre-edge value of every other, as real flip-flops do.
type Sequential interface {
	Latch()
	Commit()
}

// maxSettleIterations bounds the combinational fixed-point loop. A design
// that does not converge within it contains a combinational cycle, which
// is a construction bug, so the simulator panics.
const maxSettleIterations = 1000

// Simulator owns the signals and components of one synchronous design and
// advances them cycle by cycle.
type Simulator struct {
	signals []*Signal
	byName  map[string]*Signal
	combs   []func()
	seqs    []Sequential
	cycle   uint64
	dirty   bool
	samples []func(cycle uint64)
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{byName: make(map[string]*Signal)}
}

// Signal creates and registers a named signal of the given width (1-64
// bits). Duplicate names and out-of-range widths are construction bugs and
// panic.
func (sim *Simulator) Signal(name string, width uint) *Signal {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("rtl: signal %q has unsupported width %d", name, width))
	}
	if _, dup := sim.byName[name]; dup {
		panic(fmt.Sprintf("rtl: duplicate signal name %q", name))
	}
	var mask uint64 = ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	s := &Signal{name: name, width: width, mask: mask, sim: sim}
	sim.signals = append(sim.signals, s)
	sim.byName[name] = s
	return s
}

// Lookup returns the signal registered under name, or nil.
func (sim *Simulator) Lookup(name string) *Signal { return sim.byName[name] }

// Signals returns the registered signals in creation order.
func (sim *Simulator) Signals() []*Signal { return sim.signals }

// Comb registers a combinational process: a function that reads signals
// and drives others. It is re-run until the design settles, so it must be
// a pure function of signal values.
func (sim *Simulator) Comb(f func()) { sim.combs = append(sim.combs, f) }

// Add registers a sequential component.
func (sim *Simulator) Add(c Sequential) { sim.seqs = append(sim.seqs, c) }

// OnSample registers a callback invoked after every Step with the cycle
// number just completed; the wave tracer uses it.
func (sim *Simulator) OnSample(f func(cycle uint64)) {
	sim.samples = append(sim.samples, f)
}

// Cycle returns the number of clock edges stepped so far.
func (sim *Simulator) Cycle() uint64 { return sim.cycle }

// Settle runs the combinational processes to a fixed point. Step calls it
// automatically; it is exported so a test bench can change inputs and
// observe combinational outputs without advancing the clock.
func (sim *Simulator) Settle() {
	for i := 0; ; i++ {
		if i >= maxSettleIterations {
			panic("rtl: combinational logic did not settle (combinational cycle?)")
		}
		sim.dirty = false
		for _, f := range sim.combs {
			f()
		}
		if !sim.dirty {
			return
		}
	}
}

// Step advances the design by one rising clock edge: settle, latch every
// sequential component, commit them all, settle the new outputs, then
// sample probes.
func (sim *Simulator) Step() {
	sim.Settle()
	for _, c := range sim.seqs {
		c.Latch()
	}
	for _, c := range sim.seqs {
		c.Commit()
	}
	sim.Settle()
	sim.cycle++
	for _, f := range sim.samples {
		f(sim.cycle)
	}
}

// Run advances the design n cycles.
func (sim *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		sim.Step()
	}
}

// StepUntil advances the clock until cond is true at the end of a cycle,
// or max cycles have elapsed. It returns the number of cycles stepped and
// whether the condition was met. The paper's per-operation latencies are
// measured exactly this way: assert a command, count edges until done.
func (sim *Simulator) StepUntil(cond func() bool, max int) (cycles int, ok bool) {
	for cycles = 0; cycles < max; {
		sim.Step()
		cycles++
		if cond() {
			return cycles, true
		}
	}
	return cycles, false
}
