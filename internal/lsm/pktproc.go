package lsm

import (
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
)

// PktProc is the hardware implementation of the packet processing
// interfaces of the paper's Figure 6 — the blocks the paper says "could
// be implemented in hardware or software". It owns the label stack
// modifier's command port and runs the full per-packet sequence in RTL:
//
//	ingress: deliver the label stack to the modifier, one user push per
//	         entry, back to back (3 cycles each — the exact loading cost
//	         the device-level model assumes)
//	update:  issue the update command and wait for completion
//	egress:  read the modified stack back out, one user pop per entry
//
// Drive it by loading InWord/InCount and the packet identifier inputs,
// pulsing Start, and stepping until Ready; the outgoing stack appears in
// OutWords/OutCount and discard in the modifier's packetdiscard flag.
type PktProc struct {
	HW *HW

	// External inputs.
	Start   *rtl.Signal                 // begin processing the loaded packet
	InWord  [label.MaxDepth]*rtl.Signal // packed entries, bottom first
	InCount *rtl.Signal                 // number of entries (0 = unlabelled)

	// External outputs.
	Ready    *rtl.Signal                 // one-cycle pulse: packet processed
	OutWords [label.MaxDepth]*rtl.Signal // outgoing stack, bottom first
	OutCount *rtl.Signal

	state *rtl.Signal
	idx   *rtl.Signal // entry index within the push/pop phases
	phase *rtl.Signal // 3-cycle sub-count per command
}

// PktProc FSM states.
const (
	ppIdle = iota
	ppPush
	ppUpdate
	ppPop
	ppDone
)

// NewPktProc builds a label stack modifier wrapped by hardware packet
// processing interfaces. The returned PktProc owns the modifier's
// enable/extoperation/data_in port; do not drive those signals directly.
func NewPktProc(rtype RouterType, opts Options) *PktProc {
	hw := NewWith(opts)
	hw.RtrType.Set(uint64(rtype))
	sim := hw.Sim
	p := &PktProc{
		HW:       hw,
		Start:    sim.Signal("pp_start", 1),
		InCount:  sim.Signal("pp_in_count", 2),
		Ready:    sim.Signal("pp_ready", 1),
		OutCount: sim.Signal("pp_out_count", 2),
		state:    sim.Signal("pp_state", 3),
		idx:      sim.Signal("pp_idx", 2),
		phase:    sim.Signal("pp_phase", 2),
	}
	for i := 0; i < label.MaxDepth; i++ {
		p.InWord[i] = sim.Signal("pp_in_"+string(byte('0'+i)), 32)
		p.OutWords[i] = sim.Signal("pp_out_"+string(byte('0'+i)), 32)
	}

	// Output capture registers: during the pop phase the current top is
	// latched just before each pop commits. Pops run top-down, so entry
	// (outCount-1-idx) is captured at step idx.
	outEn := make([]*rtl.Signal, label.MaxDepth)
	outD := sim.Signal("pp_out_d", 32)
	for i := 0; i < label.MaxDepth; i++ {
		outEn[i] = sim.Signal("pp_out_en_"+string(byte('0'+i)), 1)
		rtl.NewRegister(sim, outD, p.OutWords[i], outEn[i], hw.Reset)
	}
	outCntEn := sim.Signal("pp_outcnt_en", 1)
	outCntD := sim.Signal("pp_outcnt_d", 2)
	rtl.NewRegister(sim, outCntD, p.OutCount, outCntEn, hw.Reset)

	// Index and phase counters.
	idxEn := sim.Signal("pp_idx_en", 1)
	idxClr := sim.Signal("pp_idx_clr", 1)
	rtl.NewCounter(sim, p.idx, idxEn, nil, nil, nil, idxClr)
	phEn := sim.Signal("pp_ph_en", 1)
	phClr := sim.Signal("pp_ph_clr", 1)
	rtl.NewCounter(sim, p.phase, phEn, nil, nil, nil, phClr)

	lastPhase := func() bool { return p.phase.Get() == uint64(CyclesUserPush-1) }

	// updStarted guards against the done pulse of the final ingress push
	// being mistaken for the update's completion: the update only counts
	// as done once the modifier has actually gone active for it.
	updStarted := sim.Signal("pp_upd_started", 1)
	updD := sim.Signal("pp_upd_d", 1)
	updEn := sim.Signal("pp_upd_en", 1)
	updClr := sim.Signal("pp_upd_clr", 1)
	rtl.NewRegister(sim, updD, updStarted, updEn, updClr)
	updateDone := func() bool { return hw.Done.Bool() && updStarted.Bool() }

	rtl.NewFSM(sim, p.state, func() uint64 {
		if hw.Reset.Bool() {
			return ppIdle
		}
		switch p.state.Get() {
		case ppIdle:
			if p.Start.Bool() {
				if p.InCount.Get() == 0 {
					return ppUpdate
				}
				return ppPush
			}
			return ppIdle
		case ppPush:
			if lastPhase() && p.idx.Get()+1 >= p.InCount.Get() {
				return ppUpdate
			}
			return ppPush
		case ppUpdate:
			if updateDone() {
				if hw.Stack.Size.Get() == 0 {
					return ppDone
				}
				return ppPop
			}
			return ppUpdate
		case ppPop:
			if lastPhase() && p.idx.Get()+1 >= uint64(label.MaxDepth) {
				return ppDone // safety bound; normally exits via size
			}
			if lastPhase() && hw.Stack.Size.Get() <= 1 {
				return ppDone // this pop empties the stack
			}
			return ppPop
		default: // ppDone
			return ppIdle
		}
	})

	// Command port and counter control.
	sim.Comb(func() {
		st := p.state.Get()
		// Phase counter runs during push/pop, wrapping every 3 cycles.
		inCmd := st == ppPush || st == ppPop
		phEn.SetBool(inCmd && !lastPhase())
		phClr.SetBool(!inCmd || lastPhase())
		idxEn.SetBool(inCmd && lastPhase())
		idxClr.SetBool(st == ppIdle || st == ppUpdate || st == ppDone)

		switch st {
		case ppPush:
			hw.Enable.SetBool(true)
			hw.ExtOp.Set(uint64(CmdUserPush))
			i := p.idx.Get()
			if i >= uint64(label.MaxDepth) {
				i = uint64(label.MaxDepth) - 1
			}
			hw.DataIn.Set(p.InWord[i].Get())
		case ppUpdate:
			// Deassert once the update's own done pulse arrives so the
			// modifier does not retrigger.
			hw.Enable.SetBool(!updateDone())
			hw.ExtOp.Set(uint64(CmdUpdate))
			hw.DataIn.Set(0)
		case ppPop:
			hw.Enable.SetBool(true)
			hw.ExtOp.Set(uint64(CmdUserPop))
			hw.DataIn.Set(0)
		case ppDone:
			hw.Enable.SetBool(false)
			hw.ExtOp.Set(uint64(CmdNone))
			hw.DataIn.Set(0)
		default:
			// ppIdle: hands off the command port so the routing software
			// (e.g. a Bench programming the information base) can drive
			// it between packets.
		}

		// Egress capture: when a pop is about to commit (last phase),
		// latch the current top into its slot. The stack unloads
		// top-first; slot = size-1 keeps bottom-first ordering.
		size := hw.Stack.Size.Get()
		for i := range outEn {
			outEn[i].SetBool(st == ppPop && lastPhase() && size == uint64(i+1))
		}
		outD.Set(hw.Stack.Top.Get())
		// Out count: latched when the update completes.
		outCntEn.SetBool(st == ppUpdate && updateDone())
		outCntD.Set(size)

		// Update-start tracking.
		updD.SetBool(true)
		updEn.SetBool(st == ppUpdate && hw.MainState.Get() == mLblActive)
		updClr.SetBool(st != ppUpdate)

		p.Ready.SetBool(st == ppDone)
	})

	sim.Settle()
	return p
}

// Bench returns a command-port driver for the wrapped modifier, usable
// only while the packet processor is idle — the routing software path
// for programming the information base between packets.
func (p *PktProc) Bench() *Bench {
	return &Bench{HW: p.HW, MaxCycles: searchPerEntry*1024 + 64}
}

// Process runs one packet through the hardware interfaces: stack entries
// (bottom first), the packet identifier and control-path TTL/CoS in,
// modified stack out. It returns the resulting stack, whether the packet
// was discarded, and the total cycle count.
func (p *PktProc) Process(stack []label.Entry, packetID uint32, ttlIn uint8, cosIn label.CoS) (*label.Stack, bool, int, error) {
	hw := p.HW
	if len(stack) > label.MaxDepth {
		return nil, false, 0, label.ErrStackFull
	}
	for i, e := range stack {
		w, err := e.Pack()
		if err != nil {
			return nil, false, 0, err
		}
		p.InWord[i].Set(uint64(w))
	}
	p.InCount.Set(uint64(len(stack)))
	hw.PacketID.Set(uint64(packetID))
	hw.TTLIn.Set(uint64(ttlIn))
	hw.CoSIn.Set(uint64(cosIn))

	p.Start.SetBool(true)
	max := searchPerEntry*1024 + 128
	cycles, ok := hw.Sim.StepUntil(func() bool { return p.Ready.Bool() }, max)
	p.Start.SetBool(false)
	if !ok {
		return nil, false, cycles, ErrTimeout
	}
	// Drain the done state back to idle.
	hw.Sim.Step()

	out := &label.Stack{}
	n := int(p.OutCount.Get())
	for i := 0; i < n; i++ {
		if err := out.Push(label.Unpack(uint32(p.OutWords[i].Get()))); err != nil {
			return nil, false, cycles, err
		}
	}
	return out, hw.PacketDiscard.Bool(), cycles, nil
}
