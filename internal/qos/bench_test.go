package qos

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

func benchPacket(cos label.CoS) *packet.Packet {
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, CoS: cos, TTL: 63})
	return p
}

func benchScheduler(b *testing.B, s Scheduler) {
	b.Helper()
	pkts := make([]*packet.Packet, 8)
	for i := range pkts {
		pkts[i] = benchPacket(label.CoS(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(pkts[i%8])
		if _, ok := s.Dequeue(); !ok {
			b.Fatal("dequeue failed")
		}
	}
}

func BenchmarkFIFO(b *testing.B) { benchScheduler(b, NewFIFO(64)) }

func BenchmarkPriority(b *testing.B) { benchScheduler(b, NewPriority(64)) }

func BenchmarkWRR(b *testing.B) {
	benchScheduler(b, NewWRR(64, [NumClasses]int{1, 1, 1, 1, 2, 2, 4, 4}))
}

func BenchmarkWRED(b *testing.B) {
	var profiles [NumClasses]REDParams
	for i := range profiles {
		profiles[i] = REDParams{MinTh: 16, MaxTh: 48, MaxP: 0.2}
	}
	benchScheduler(b, NewWRED(64, profiles, 1))
}
