package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"embeddedmpls/internal/packet"
)

// Coalesced frames: one datagram carrying many labeled packets, the
// GSO-style half of the batched wire path. Small labeled packets pay a
// per-datagram cost twice — once in the syscall that moves them, once
// in the kernel bookkeeping around every skb — so the sender packs up
// to WithCoalesce packets back to back into one datagram and the
// receiver unpacks them with the same zero-alloc discipline as the
// single-packet codec.
//
// Frame layout (big endian):
//
//	offset 0  magic0, magic1      same wire magic as a single packet
//	offset 2  Version
//	offset 3  flags               flagFrame set; no other bits defined
//	offset 4  count (uint16)      number of packet segments, >= 1
//	offset 6  segments            count times:
//	            length (uint16)   bytes of this segment
//	            segment           one single-packet encoding (AppendPacket)
//
// A frame with count zero, a segment length overrunning the datagram,
// fewer segments than the count promises, or trailing bytes after the
// last segment is malformed; the receiver surfaces every such datagram
// as a wire-decode drop (telemetry.ReasonWireDecode), never a panic or
// an over-read.

const (
	// frameHeaderSize is the fixed coalesced-frame header: magic (2),
	// version (1), flags (1), segment count (2).
	frameHeaderSize = 6

	// MaxFramePackets bounds how many packets one frame may coalesce;
	// WithCoalesce clamps to it. The bound keeps worst-case receiver
	// batch bursts (and the frame's memory footprint) predictable.
	MaxFramePackets = 128

	// maxFrameSize keeps an encoded frame within a safe datagram size:
	// the encoder starts a new frame rather than grow one past this.
	maxFrameSize = 60 << 10
)

// ErrFrame marks a structurally malformed coalesced frame (zero count,
// count/length mismatch, trailing bytes) as opposed to a truncated one.
var ErrFrame = errors.New("transport: malformed frame")

// IsFrame reports whether a datagram is a coalesced frame. It only
// peeks at the magic and the frame flag; full validation happens in
// ForEachFrameSegment.
func IsFrame(buf []byte) bool {
	return len(buf) >= 4 && buf[0] == magic0 && buf[1] == magic1 && buf[3]&flagFrame != 0
}

// FrameEncoder builds one coalesced frame in a caller-owned buffer.
// With capacity in the destination, appending is allocation-free — the
// batched send path runs it over pooled buffers. The zero value is not
// usable; start with BeginFrame.
type FrameEncoder struct {
	buf   []byte
	head  int // index of the frame header within buf
	count int
}

// BeginFrame starts a coalesced frame in dst (appended, like
// AppendPacket) and returns the encoder positioned after the header.
func BeginFrame(dst []byte) FrameEncoder {
	head := len(dst)
	dst = append(dst, magic0, magic1, Version, flagFrame, 0, 0)
	return FrameEncoder{buf: dst, head: head}
}

// Append encodes one packet, sent by node src, as the frame's next
// segment.
func (f *FrameEncoder) Append(p *packet.Packet, src NodeID) error {
	base := len(f.buf)
	f.buf = append(f.buf, 0, 0) // segment length, patched below
	enc, err := AppendPacket(f.buf, p, src)
	if err != nil {
		f.buf = f.buf[:base]
		return err
	}
	return f.seal(base, enc)
}

// AppendEncoded adds an already-encoded single-packet datagram as the
// next segment — the path for bytes that must cross as-is, like the
// deliberately damaged encoding of a fault-corrupted packet.
func (f *FrameEncoder) AppendEncoded(seg []byte) error {
	base := len(f.buf)
	f.buf = append(f.buf, 0, 0)
	return f.seal(base, append(f.buf, seg...))
}

// seal patches the segment length at base and accounts the new segment.
func (f *FrameEncoder) seal(base int, enc []byte) error {
	seg := len(enc) - base - 2
	if seg > 0xffff {
		f.buf = f.buf[:base]
		return fmt.Errorf("transport: frame segment %d bytes exceeds the length field", seg)
	}
	if f.count >= MaxFramePackets {
		f.buf = f.buf[:base]
		return fmt.Errorf("transport: frame already holds %d packets", f.count)
	}
	binary.BigEndian.PutUint16(enc[base:], uint16(seg))
	f.buf = enc
	f.count++
	return nil
}

// Count returns how many packets the frame holds so far.
func (f *FrameEncoder) Count() int { return f.count }

// Size returns the frame's current encoded size in bytes.
func (f *FrameEncoder) Size() int { return len(f.buf) - f.head }

// Finish patches the segment count into the header and returns the
// encoded frame. A frame with no segments is an error — an empty frame
// on the wire is indistinguishable from a malformed one.
func (f *FrameEncoder) Finish() ([]byte, error) {
	if f.count == 0 {
		return nil, fmt.Errorf("%w: no segments", ErrFrame)
	}
	binary.BigEndian.PutUint16(f.buf[f.head+4:], uint16(f.count))
	return f.buf, nil
}

// ForEachFrameSegment validates a coalesced frame and calls fn once per
// packet segment, in order. fn receives a sub-slice of buf and must not
// retain it. A non-nil error from fn aborts the walk and is returned.
// Structural violations — short header, bad magic or version, zero
// count, a segment length past the end of the datagram, fewer segments
// than the count field promises, or trailing bytes after the last
// segment — return an error wrapping ErrTruncated or ErrFrame and never
// read beyond buf.
func ForEachFrameSegment(buf []byte, fn func(seg []byte) error) error {
	if len(buf) < frameHeaderSize {
		return fmt.Errorf("%w: %d bytes, want at least %d for a frame", ErrTruncated, len(buf), frameHeaderSize)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return fmt.Errorf("%w: %#02x%02x", ErrMagic, buf[0], buf[1])
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	if buf[3]&flagFrame == 0 {
		return fmt.Errorf("%w: frame flag not set", ErrFrame)
	}
	count := int(binary.BigEndian.Uint16(buf[4:]))
	if count == 0 {
		return fmt.Errorf("%w: zero segment count", ErrFrame)
	}
	rest := buf[frameHeaderSize:]
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return fmt.Errorf("%w: frame cut at segment %d/%d", ErrTruncated, i, count)
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if n > len(rest) {
			return fmt.Errorf("%w: segment %d/%d declares %d bytes, %d remain", ErrTruncated, i, count, n, len(rest))
		}
		if err := fn(rest[:n]); err != nil {
			return err
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %d segments", ErrFrame, len(rest), count)
	}
	return nil
}
