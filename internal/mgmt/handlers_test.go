package mgmt

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/config"
)

// testScenario renders the three-node line onto the given transport
// addresses; extraLSP/extraFlow are JSON fragments for reload tests.
func testScenario(addrs []string, extraLSP, extraFlow string) string {
	if extraLSP != "" {
		extraLSP = ", " + extraLSP
	}
	if extraFlow != "" {
		extraFlow = ", " + extraFlow
	}
	return fmt.Sprintf(`{
  "name": "mgmt-test",
  "duration_s": 3,
  "nodes": [{"name": "in"}, {"name": "core"}, {"name": "out"}],
  "links": [
    {"a": "in", "b": "core", "rate_mbps": 10, "delay_ms": 0.1},
    {"a": "core", "b": "out", "rate_mbps": 10, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "path": ["in", "core", "out"]}%s
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "in", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 5}%s
  ],
  "transport": {"kind": "udp", "nodes": {"in": %q, "core": %q, "out": %q}}
}`, extraLSP, extraFlow, addrs[0], addrs[1], addrs[2])
}

func freeUDPAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = c.LocalAddr().String()
		c.Close()
	}
	return addrs
}

// liveCluster builds the three-node line in-process, serves the ingress
// node's management plane on a loopback TCP port, and runs every node
// until stop closes. This is the -race workhorse: RPC handlers mutate
// speaker and tables while all three dataplanes forward.
type liveCluster struct {
	built map[string]*config.Built
	srv   *Server
	node  *Node
	stop  chan struct{}
	wg    sync.WaitGroup
}

func startLiveCluster(t *testing.T, scenarioPath string) *liveCluster {
	t.Helper()
	f, err := os.Open(scenarioPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := config.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	lc := &liveCluster{built: map[string]*config.Built{}, stop: make(chan struct{})}
	for _, name := range []string{"in", "core", "out"} {
		b, err := s.BuildNode(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Net.Close() })
		lc.built[name] = b
	}
	in := lc.built["in"]
	lc.srv = NewServer(in.Net)
	lc.node = NewNode(in, scenarioPath, &config.Overrides{})
	lc.node.Attach(lc.srv)
	if err := lc.srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.srv.Close() })
	for _, b := range lc.built {
		lc.wg.Add(1)
		go func(b *config.Built) {
			defer lc.wg.Done()
			b.Net.RunRealStop(10, lc.stop)
		}(b)
	}
	t.Cleanup(func() {
		select {
		case <-lc.stop:
		default:
			close(lc.stop)
		}
		lc.wg.Wait()
	})
	return lc
}

func (lc *liveCluster) dial(t *testing.T) *Client {
	t.Helper()
	c, err := Dial(lc.srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitEstablished polls lsp.list until id reports established.
func waitEstablished(t *testing.T, c *Client, id string) LSPListResult {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var res LSPListResult
		if err := c.Call("lsp.list", nil, &res); err != nil {
			t.Fatal(err)
		}
		for _, l := range res.LSPs {
			if l.ID == id && l.Established {
				return res
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("LSP %s never established", id)
	return LSPListResult{}
}

// TestNodeRPCsUnderTraffic is the management plane's end-to-end test:
// a live three-node network forwards a CBR flow while every RPC runs
// against the ingress over a real TCP socket. Run with -race.
func TestNodeRPCsUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join(dir, "scenario.json")
	addrs := freeUDPAddrs(t, 3)
	if err := os.WriteFile(scenarioPath, []byte(testScenario(addrs, "", "")), 0o644); err != nil {
		t.Fatal(err)
	}
	lc := startLiveCluster(t, scenarioPath)
	c := lc.dial(t)

	// The boot LSP establishes and the node reports it.
	waitEstablished(t, c, "l1")
	var st StatusResult
	if err := c.Call(StatusMethod, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "in" || st.Draining {
		t.Errorf("status = %+v", st)
	}
	if st.SessionsUp == 0 {
		t.Error("status reports no session up after an LSP established")
	}
	if st.Established == 0 {
		t.Errorf("status reports no established LSPs: %+v", st)
	}
	if len(st.Methods) == 0 {
		t.Error("status lists no methods")
	}

	// Runtime provisioning: a batch of LSPs to fresh FECs.
	params := make([]any, 10)
	for i := range params {
		params[i] = config.LSP{
			ID:   fmt.Sprintf("rt-%d", i),
			Dst:  fmt.Sprintf("10.7.0.%d", i+1),
			Path: []string{"in", "core", "out"},
		}
	}
	results, err := c.Batch("lsp.provision", params)
	if err != nil {
		t.Fatalf("batch provision: %v", err)
	}
	if len(results) != len(params) {
		t.Fatalf("%d results for %d requests", len(results), len(params))
	}
	waitEstablished(t, c, "rt-9")

	// The ingress infobase now holds the new FECs at level 1.
	var ib InfobaseResult
	if err := c.Call("infobase.get", InfobaseParams{Level: 1}, &ib); err != nil {
		t.Fatal(err)
	}
	if len(ib.Levels) != 1 || ib.Levels[0].Level != 1 {
		t.Fatalf("infobase levels = %+v", ib.Levels)
	}
	fecs := map[string]bool{}
	for _, e := range ib.Levels[0].Entries {
		fecs[e.FEC] = true
		if e.Op != "push" {
			t.Errorf("ingress FTN entry with op %q: %+v", e.Op, e)
		}
	}
	if !fecs["10.0.0.9/32"] || !fecs["10.7.0.10/32"] {
		t.Errorf("FTN missing expected FECs: %v", fecs)
	}

	// Tear one down; it must leave the list.
	if err := c.Call("lsp.teardown", TeardownParams{ID: "rt-3"}, nil); err != nil {
		t.Fatal(err)
	}
	var lst LSPListResult
	if err := c.Call("lsp.list", nil, &lst); err != nil {
		t.Fatal(err)
	}
	for _, l := range lst.LSPs {
		if l.ID == "rt-3" {
			t.Errorf("rt-3 still listed after teardown: %+v", l)
		}
	}

	// Sessions.
	var sl SessionListResult
	if err := c.Call("session.list", nil, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Sessions) != 1 || sl.Sessions[0].Peer != "core" || !sl.Sessions[0].Up {
		t.Errorf("sessions = %+v", sl.Sessions)
	}

	// Telemetry scrape carries mpls_* series.
	var sc ScrapeResult
	if err := c.Call("telemetry.scrape", nil, &sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sc.Text, "mpls_") {
		t.Errorf("scrape has no mpls_ series:\n%.400s", sc.Text)
	}
	if !strings.Contains(sc.Text, `node="in"`) {
		t.Errorf("scrape not labelled with the node:\n%.400s", sc.Text)
	}

	// Arm a guard at runtime.
	var gs GuardSetResult
	if err := c.Call("guard.set", GuardSetParams{Spec: "rate_pps=100000"}, &gs); err != nil {
		t.Fatal(err)
	}
	if gs.Guard == nil || gs.Guard.RatePPS != 100000 {
		t.Errorf("guard.set returned %+v", gs.Guard)
	}

	// config.reload: the file gains a flow and an LSP; the node applies
	// both live.
	nextPath := filepath.Join(dir, "next.json")
	next := testScenario(addrs,
		`{"id": "l2", "dst": "10.0.0.8", "path": ["in", "core", "out"]}`,
		`{"id": 2, "kind": "cbr", "from": "in", "dst": "10.0.0.8", "size_bytes": 256, "interval_ms": 5}`)
	if err := os.WriteFile(nextPath, []byte(next), 0o644); err != nil {
		t.Fatal(err)
	}
	var rl ReloadResult
	if err := c.Call("config.reload", ReloadParams{Path: nextPath}, &rl); err != nil {
		t.Fatal(err)
	}
	if strings.Join(rl.Report.AddedLSPs, ",") != "l2" {
		t.Errorf("reload added LSPs %v, want [l2]", rl.Report.AddedLSPs)
	}
	if len(rl.Report.AddedFlows) != 1 || rl.Report.AddedFlows[0] != 2 {
		t.Errorf("reload added flows %v, want [2]", rl.Report.AddedFlows)
	}
	waitEstablished(t, c, "l2")

	// The new flow must actually deliver end to end through the
	// reloaded LSP — no restart happened.
	deadline := time.Now().Add(5 * time.Second)
	out := lc.built["out"]
	for {
		out.Net.Lock()
		delivered := out.Collector.Flow(2).Delivered.Events
		out.Net.Unlock()
		if delivered > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reloaded flow 2 never delivered at the egress")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Error paths speak proper envelopes.
	err = c.Call("lsp.provision", config.LSP{ID: "bad"}, nil)
	wantCode(t, err, CodeBadParams)
	err = c.Call("lsp.teardown", TeardownParams{ID: "never-existed"}, nil)
	wantCode(t, err, CodeBadParams)
	err = c.Call("infobase.get", InfobaseParams{Level: 9}, nil)
	wantCode(t, err, CodeBadParams)
	err = c.Call("guard.set", GuardSetParams{Spec: "junk"}, nil)
	wantCode(t, err, CodeBadParams)
	err = c.Call("lsp.provision", map[string]any{"id": "x", "dst": "10.0.0.1", "typo_field": 1}, nil)
	wantCode(t, err, CodeBadParams)

	// Drain: everything but node.status refuses, status says draining.
	lc.srv.Drain()
	wantCode(t, c.Call("lsp.list", nil, nil), CodeDraining)
	if err := c.Call(StatusMethod, nil, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("status not draining after Drain")
	}
}

// TestInfobaseTransitView checks level-2 dumps on a transit node: the
// ILM holds swap entries installed purely by signaling.
func TestInfobaseTransitView(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join(dir, "scenario.json")
	addrs := freeUDPAddrs(t, 3)
	if err := os.WriteFile(scenarioPath, []byte(testScenario(addrs, "", "")), 0o644); err != nil {
		t.Fatal(err)
	}
	lc := startLiveCluster(t, scenarioPath)
	c := lc.dial(t)
	waitEstablished(t, c, "l1")

	// Attach a second server to the transit node.
	core := lc.built["core"]
	srv2 := NewServer(core.Net)
	NewNode(core, scenarioPath, nil).Attach(srv2)
	if err := srv2.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2, err := Dial(srv2.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	var ib InfobaseResult
	if err := c2.Call("infobase.get", InfobaseParams{Level: 2}, &ib); err != nil {
		t.Fatal(err)
	}
	if len(ib.Levels) != 1 || ib.Levels[0].Level != 2 {
		t.Fatalf("levels = %+v", ib.Levels)
	}
	if len(ib.Levels[0].Entries) == 0 {
		t.Fatal("transit ILM is empty with an established LSP crossing it")
	}
	e := ib.Levels[0].Entries[0]
	if e.Op != "swap" || e.InLabel == 0 || e.NextHop != "out" {
		t.Errorf("transit ILM entry = %+v, want a swap toward out", e)
	}
}
