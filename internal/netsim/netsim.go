// Package netsim is a discrete-event network simulator: a virtual clock,
// an event queue, and links that model serialisation delay, propagation
// delay and bounded queues with pluggable (QoS) schedulers. The MPLS
// routers of package router and the traffic generators of package
// trafficgen run on top of it.
package netsim

import (
	"container/heap"
	"fmt"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/telemetry"
)

// Time is simulated time in seconds.
type Time = float64

// event is one scheduled callback. seq breaks ties so same-time events
// run in schedule order, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	run func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	// Processed counts executed events, a cheap progress measure.
	Processed uint64
}

// New returns a simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Schedule runs f after delay seconds of simulated time. Negative delays
// are a programming error.
func (s *Simulator) Schedule(delay Time, f func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netsim: negative delay %g", delay))
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, run: f})
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for len(s.events) > 0 {
		s.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

func (s *Simulator) step() {
	e := heap.Pop(&s.events).(event)
	if e.at < s.now {
		panic(fmt.Sprintf("netsim: event at %g scheduled in the past of %g", e.at, s.now))
	}
	s.now = e.at
	s.Processed++
	e.run()
}

// Node is anything that can receive packets from a link.
type Node interface {
	Name() string
	// Receive is called when a packet finishes arriving over a link.
	Receive(p *packet.Packet, from string)
}

// Fault is the injectable per-link fault hook: package faults implements
// it to corrupt packets, stretch their propagation delay, or eat them on
// the wire. Transmit is called once per packet when its transmission
// completes; the hook may mutate the packet in place (corruption) and
// its verdict controls delivery.
type Fault interface {
	Transmit(p *packet.Packet, now Time) Verdict
}

// Verdict is a Fault's decision about one packet.
type Verdict struct {
	// Drop discards the packet on the wire (counted in Lost).
	Drop bool
	// ExtraDelay is added to the link's propagation delay.
	ExtraDelay Time
}

// Wire is the link contract a router attaches its neighbours through.
// The in-process simulated Link implements it; the transport package's
// UDP link implements the same surface over a real socket, so one
// topology spec can be wired over either. Everything above the link —
// fault injection, keepalive probing, drop accounting, failover — goes
// through this interface.
type Wire interface {
	// To names the receiving node.
	To() string
	// SendBatch is the primary egress path: it moves a whole slice of
	// packets through the link in one call, so links that can amortise
	// per-packet dispatch (coalesced frames, batched syscalls) do.
	// Semantics match N calls to Send: loss (down link, full queue,
	// failed socket write) is counted, never reported to the caller.
	// The caller may reuse the slice after SendBatch returns.
	SendBatch(ps []*packet.Packet)
	// Send is the one-packet helper for callers without a ready batch
	// (keepalive probes, control messages, generators).
	Send(p *packet.Packet)
	// SetDown fails or restores the link; Down reports the state.
	SetDown(down bool)
	Down() bool
	// SetFault installs (or, with nil, removes) the per-packet fault
	// hook.
	SetFault(f Fault)
	// SetOnDrop installs the admission-drop callback: it receives every
	// packet the link rejects before transmission, with the mapped
	// telemetry reason. nil detaches.
	SetOnDrop(fn func(p *packet.Packet, reason telemetry.Reason))
	// Close releases whatever the link holds — sockets and goroutines
	// for transport links, nothing for simulated ones. Close is
	// idempotent; Send after Close counts the packet as lost.
	Close() error
}

// Link is a unidirectional link: a bounded output queue feeding a
// transmitter of RateBPS bits per second, followed by Delay seconds of
// propagation. Build duplex connections from two Links.
type Link struct {
	sim   *Simulator
	from  string
	to    Node
	rate  float64 // bits per second
	delay Time
	queue qos.Scheduler
	busy  bool
	down  bool
	fault Fault

	// Sent counts packets handed to the link; Delivered counts packets
	// that completed transmission; queue drops are in Queue.Dropped().
	Sent      stats.Counter
	Delivered stats.Counter
	// Lost counts packets discarded because the link was down.
	Lost stats.Counter
	// BusyTime accumulates transmitter occupancy for utilisation
	// reporting.
	BusyTime Time

	// OnDrop, when set, is called for every packet the queue's
	// admission policy rejects (reason queue-overfull). Historically
	// these drops were visible only in the scheduler's own total, so
	// flow-level accounting silently lost them; collectors hook this
	// to attribute the loss to the flow that suffered it.
	OnDrop func(p *packet.Packet, reason telemetry.Reason)
}

// NewLink builds a link from the named source into node to.
func NewLink(sim *Simulator, from string, to Node, rateBPS float64, delay Time, queue qos.Scheduler) *Link {
	if rateBPS <= 0 {
		panic(fmt.Sprintf("netsim: link rate %g", rateBPS))
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: link delay %g", delay))
	}
	return &Link{sim: sim, from: from, to: to, rate: rateBPS, delay: delay, queue: queue}
}

// To returns the name of the receiving node.
func (l *Link) To() string { return l.to.Name() }

// Queue exposes the link's scheduler for drop accounting.
func (l *Link) Queue() qos.Scheduler { return l.queue }

// RateBPS returns the configured transmission rate.
func (l *Link) RateBPS() float64 { return l.rate }

// Utilisation returns the fraction of the elapsed time the transmitter
// was busy.
func (l *Link) Utilisation() float64 {
	if l.sim.now <= 0 {
		return 0
	}
	return l.BusyTime / l.sim.now
}

// SetDown fails or restores the link. A down link discards everything
// handed to it (counted in Lost) and drains its queue; transmissions
// already in flight complete. Bringing the link back up resumes service.
func (l *Link) SetDown(down bool) {
	l.down = down
	if down {
		for {
			p, ok := l.queue.Dequeue()
			if !ok {
				break
			}
			l.Lost.Add(p.Size())
		}
	} else if !l.busy {
		l.startNext()
	}
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// SetFault installs (or, with nil, removes) the link's fault hook.
func (l *Link) SetFault(f Fault) { l.fault = f }

// SetOnDrop implements Wire by setting the OnDrop field.
func (l *Link) SetOnDrop(fn func(p *packet.Packet, reason telemetry.Reason)) { l.OnDrop = fn }

// Close implements Wire; a simulated link holds no resources.
func (l *Link) Close() error { return nil }

// SendBatch implements Wire by queueing each packet in turn; the
// simulator's event queue is the batching layer here, so there is
// nothing to amortise beyond the call itself.
func (l *Link) SendBatch(ps []*packet.Packet) {
	for _, p := range ps {
		l.Send(p)
	}
}

var _ Wire = (*Link)(nil)

// Send queues p for transmission; it is dropped silently (but counted) if
// the queue is full or the link is down.
func (l *Link) Send(p *packet.Packet) {
	l.Sent.Add(p.Size())
	if l.down {
		l.Lost.Add(p.Size())
		return
	}
	if !l.queue.Enqueue(p) {
		if l.OnDrop != nil {
			l.OnDrop(p, telemetry.ReasonQueueOverfull)
		}
		return
	}
	if !l.busy {
		l.startNext()
	}
}

func (l *Link) startNext() {
	p, ok := l.queue.Dequeue()
	if !ok {
		l.busy = false
		return
	}
	l.busy = true
	tx := float64(p.Size()*8) / l.rate
	l.BusyTime += tx
	l.sim.Schedule(tx, func() {
		extra := Time(0)
		if l.fault != nil {
			v := l.fault.Transmit(p, l.sim.now)
			if v.Drop {
				l.Lost.Add(p.Size())
				l.startNext()
				return
			}
			if extra = v.ExtraDelay; extra < 0 {
				extra = 0
			}
		}
		l.Delivered.Add(p.Size())
		// Propagation happens in parallel with the next transmission.
		l.sim.Schedule(l.delay+extra, func() { l.to.Receive(p, l.from) })
		l.startNext()
	})
}
