package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestEventCountersBasics(t *testing.T) {
	var c EventCounters
	c.Inc(EventLinkFlap)
	c.Add(EventProtectionSwitch, 3)
	c.Inc(Event(200)) // out of range: ignored
	if got := c.Get(EventLinkFlap); got != 1 {
		t.Errorf("link_flap = %d, want 1", got)
	}
	if got := c.Get(EventProtectionSwitch); got != 3 {
		t.Errorf("protection_switch = %d, want 3", got)
	}
	if got := c.Total(); got != 4 {
		t.Errorf("total = %d, want 4", got)
	}
	snap := c.Snapshot()
	if snap[EventProtectionSwitch] != 3 {
		t.Errorf("snapshot = %v", snap)
	}

	var m EventCounters
	m.Inc(EventRetryExhausted)
	m.Merge(&c)
	m.Merge(nil)
	if m.Total() != 5 {
		t.Errorf("merged total = %d, want 5", m.Total())
	}
	if s := m.String(); !strings.Contains(s, "retry_exhausted=1") {
		t.Errorf("String() = %s", s)
	}
}

func TestEventStrings(t *testing.T) {
	want := map[Event]string{
		EventLinkFlap:         "link_flap",
		EventKeepaliveMiss:    "keepalive_miss",
		EventProtectionSwitch: "protection_switch",
		EventRetryAttempt:     "retry_attempt",
		EventRetryExhausted:   "retry_exhausted",
		EventSessionUp:        "session_up",
		EventSessionDown:      "session_down",
		EventLabelMapRx:       "label_map_rx",
		EventLabelWithdrawRx:  "label_withdraw_rx",
		EventQuarantineTrip:   "quarantine_trip",
		EventQuarantineClear:  "quarantine_clear",
		EventLinkSuppressed:   "link_suppressed",
		EventLinkReused:       "link_reused",
	}
	if len(want) != NumEvents {
		t.Fatalf("test covers %d events, enum has %d", len(want), NumEvents)
	}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), s)
		}
		if !e.Valid() {
			t.Errorf("%v not valid", e)
		}
	}
	if Event(NumEvents).Valid() {
		t.Error("NumEvents reported valid")
	}
	if !strings.Contains(Event(99).String(), "99") {
		t.Errorf("out-of-range String() = %q", Event(99).String())
	}
}

func TestEventsRegistryExport(t *testing.T) {
	var c EventCounters
	c.Add(EventProtectionSwitch, 2)
	reg := NewRegistry()
	reg.Events("mpls_resilience_events_total", "Fault and recovery events.", Labels{"node": "a"}, &c)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mpls_resilience_events_total{event="protection_switch",node="a"} 2`) {
		t.Errorf("missing protection_switch series:\n%s", out)
	}
	if !strings.Contains(out, `mpls_resilience_events_total{event="link_flap",node="a"} 0`) {
		t.Errorf("zero-valued event series not exported:\n%s", out)
	}
}

func TestEventCountersConcurrent(t *testing.T) {
	var c EventCounters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(EventKeepaliveMiss)
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Get(EventKeepaliveMiss); got != 8000 {
		t.Errorf("keepalive_miss = %d, want 8000", got)
	}
}
