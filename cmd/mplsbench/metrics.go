package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/faults"
	"embeddedmpls/internal/guard"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/resilience"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// runDataplaneMetrics drives a workload through the engine that forces
// every drop reason in the telemetry taxonomy — the paper's three
// discard transitions (information base lookup miss, TTL expiry,
// inconsistent stored operation) plus the software-only no-route case
// and a queue overflow — then prints the Prometheus text exposition and
// the tail of the label-operation trace. With promPath set the
// exposition is also written to that file.
func runDataplaneMetrics(promPath string) error {
	trace := telemetry.NewRing(32)
	e := dataplane.New(
		dataplane.WithWorkers(2), dataplane.WithQueueCap(32), dataplane.WithBatch(8),
		dataplane.WithNode("bench-lsr"), dataplane.WithTrace(trace),
		// A deliberately slow sink so non-blocking submits can outrun
		// the workers and overflow the shard queues.
		dataplane.WithEgress(slowSink{5 * time.Microsecond}),
	)
	if err := e.Update(func(f *swmpls.Forwarder) error {
		if err := f.InstallILM(100, swmpls.NHLFE{
			NextHop: "peer", Op: label.OpSwap, PushLabels: []label.Label{200},
		}); err != nil {
			return err
		}
		// Label 300 stores a push: applied to an already full stack it
		// is the paper's inconsistent-operation discard.
		if err := f.InstallILM(300, swmpls.NHLFE{
			NextHop: "peer", Op: label.OpPush, PushLabels: []label.Label{301},
		}); err != nil {
			return err
		}
		return f.InstallFEC(packet.AddrFrom(10, 0, 0, 0), 8, swmpls.NHLFE{
			NextHop: "peer", Op: label.OpPush, PushLabels: []label.Label{400},
		})
	}); err != nil {
		return err
	}

	const per = 200
	one := make([]*packet.Packet, 1)
	wait := func(p *packet.Packet) { one[0] = p; e.Submit(one, dataplane.SubmitOpts{Wait: true}) }
	for i := 0; i < per; i++ {
		// Forwarded traffic: ingress pushes and transit swaps.
		u := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 1, 2, 3), 64, nil)
		u.Header.FlowID = uint16(i)
		wait(u)
		wait(benchLabelled(100, uint16(i), 64))
		// Lookup miss: no ILM binding for label 999.
		wait(benchLabelled(999, uint16(i), 64))
		// TTL expiry: a mapped label arriving with TTL 1.
		wait(benchLabelled(100, uint16(i), 1))
		// Inconsistent operation: label 300 wants a push but the stack
		// is already at MaxDepth.
		full := benchLabelled(20, uint16(i), 64)
		_ = full.Stack.Push(label.Entry{Label: 21, TTL: 64})
		_ = full.Stack.Push(label.Entry{Label: 300, TTL: 64})
		wait(full)
		// No route: unlabelled with no FEC covering the destination.
		n := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(172, 16, 0, 1), 64, nil)
		n.Header.FlowID = uint16(i)
		wait(n)
	}
	// Queue overflow: non-blocking submits against the slow sink until
	// an admission rejection lands (bounded so a fast host cannot hang).
	for i := 0; i < 100000 && e.Drops().Get(telemetry.ReasonQueueOverfull) == 0; i++ {
		one[0] = benchLabelled(100, uint16(i), 64)
		e.Submit(one, dataplane.SubmitOpts{})
	}
	e.Close()

	// Fault/recovery events: a deterministic retry exercise on the
	// simulated clock so the exposition covers the resilience taxonomy
	// alongside the drop taxonomy.
	var ev telemetry.EventCounters
	sim := netsim.New()
	retry := resilience.NewRetryer(sim, resilience.Backoff{Base: 0.01, Jitter: 0}, 1, &ev, nil)
	retry.Do("install", faults.FailFirst(2), nil)
	retry.Do("unreachable", faults.FailEvery(1), nil)
	sim.Run()

	// The ingress admission guard's side of the taxonomy: one hostile
	// packet per guard drop reason (spoofed label, TTL under the GTSM
	// floor, over-rate best effort, quarantined peer).
	gd := guard.New(guard.WithDefaultPolicy(guard.Policy{
		SpoofFilter: true, MinTTL: 2, RatePPS: 1, Burst: 1,
		QuarantineThreshold: 1, QuarantineWindow: 1, QuarantineHold: 10,
	}))
	gd.Admit(benchLabelled(100, 1, 64), "peer") // never advertised: spoof
	gd.Admit(benchLabelled(100, 2, 1), "peer")  // TTL 1 under the floor
	gd.Advertise("peer", 100)
	gd.Admit(benchLabelled(100, 3, 64), "peer") // spends the only token
	gd.Admit(benchLabelled(100, 4, 64), "peer") // over rate: shed
	gd.Malformed("peer")                        // trips the breaker
	if gd.PreAdmit("peer", true) {
		return fmt.Errorf("metrics workload failed to open the quarantine breaker")
	}

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg, nil)
	gd.RegisterMetrics(reg, "bench-lsr")
	reg.Events("mpls_resilience_events_total", "Fault and recovery events by type.",
		telemetry.Labels{"node": "bench-lsr"}, &ev)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		return err
	}
	os.Stdout.Write(buf.Bytes())
	if promPath != "" {
		if err := os.WriteFile(promPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", promPath)
	}

	fmt.Printf("\nlabel-operation trace (last %d of %d events):\n", trace.Len(), trace.Total())
	if err := trace.Dump(os.Stdout); err != nil {
		return err
	}
	for _, r := range []telemetry.Reason{
		telemetry.ReasonLookupMiss, telemetry.ReasonTTLExpired, telemetry.ReasonInconsistentOp,
	} {
		if e.Drops().Get(r) == 0 {
			return fmt.Errorf("metrics workload failed to produce %v drops", r)
		}
	}
	for _, r := range []telemetry.Reason{
		telemetry.ReasonLabelSpoof, telemetry.ReasonTTLSecurity,
		telemetry.ReasonRateLimit, telemetry.ReasonQuarantine,
	} {
		if gd.Drops().Get(r) == 0 {
			return fmt.Errorf("metrics workload failed to produce %v drops", r)
		}
	}
	return nil
}

// slowSink is a deliberately slow batch egress sink: it burns a fixed
// per-packet cost on the worker goroutine, so offered load can outrun
// the service rate deterministically (the overflow scenario above
// depends on that backpressure).
type slowSink struct{ perPacket time.Duration }

func (s slowSink) Flush(_ string, ps []*packet.Packet) { time.Sleep(time.Duration(len(ps)) * s.perPacket) }
func (s slowSink) Deliver(ps []*packet.Packet)         { time.Sleep(time.Duration(len(ps)) * s.perPacket) }
func (s slowSink) Discard(ps []*packet.Packet, _ []swmpls.DropReason) {
	time.Sleep(time.Duration(len(ps)) * s.perPacket)
}

func benchLabelled(lbl label.Label, flow uint16, ttl uint8) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	p.Header.FlowID = flow
	if err := p.Stack.Push(label.Entry{Label: lbl, TTL: ttl}); err != nil {
		panic(err)
	}
	return p
}
