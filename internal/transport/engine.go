package transport

import (
	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/packet"
)

// FeedEngine returns a receiver sink that pushes decoded batches into a
// dataplane engine via batched Submit, so batched socket reads flow
// into batched shard ingestion without per-packet dispatch. The engine
// keeps packets beyond the sink call, so each one is cloned off the
// receiver's reusable storage; with wait set, a full shard queue
// exerts backpressure on the socket loop instead of dropping.
func FeedEngine(e *dataplane.Engine, wait bool) func(batch []Inbound) {
	return func(batch []Inbound) {
		ps := make([]*packet.Packet, len(batch))
		for i, in := range batch {
			ps[i] = in.P.Clone()
		}
		e.Submit(ps, dataplane.SubmitOpts{Wait: wait})
	}
}

// FeedEngineShard returns a receiver sink bound to one engine shard:
// every decoded batch goes to shard worker `shard` with no flow-hash
// redistribution. Pair it with ListenSharded so the kernel's
// SO_REUSEPORT hash is the only demultiplexer — socket i's arrivals
// flow into worker i's queue end to end:
//
//	transport.ListenSharded(addr, e.Workers(), func(i int) func([]transport.Inbound) {
//		return transport.FeedEngineShard(e, i, true)
//	})
func FeedEngineShard(e *dataplane.Engine, shard int, wait bool) func(batch []Inbound) {
	return func(batch []Inbound) {
		ps := make([]*packet.Packet, len(batch))
		for i, in := range batch {
			ps[i] = in.P.Clone()
		}
		e.Submit(ps, dataplane.SubmitOpts{Wait: wait, Pin: true, Shard: shard})
	}
}
