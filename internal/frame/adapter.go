package frame

import (
	"errors"
	"fmt"
)

// Medium names a layer-2 technology at an MPLS network edge.
type Medium int

// Supported media, matching the networks of the paper's Figure 1.
const (
	Ethernet Medium = iota
	ATM
	FrameRelay
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case Ethernet:
		return "ethernet"
	case ATM:
		return "atm"
	case FrameRelay:
		return "frame-relay"
	default:
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// Adapter carries network-layer packets over one layer-2 medium: Encap
// produces the wire units (one Ethernet/Frame Relay frame, or a train of
// ATM cells) and Decap reverses it, verifying integrity.
type Adapter interface {
	Medium() Medium
	Encap(payload []byte, mpls bool) ([][]byte, error)
	Decap(units [][]byte) ([]byte, error)
	// Overhead returns the layer-2 bytes added around a payload of the
	// given size, for throughput accounting.
	Overhead(payloadSize int) int
}

// ErrNoUnits reports a Decap call with nothing to decode.
var ErrNoUnits = errors.New("frame: no layer-2 units to decode")

// EthernetAdapter frames packets between two MACs.
type EthernetAdapter struct {
	Local, Remote MAC
}

// Medium implements Adapter.
func (a *EthernetAdapter) Medium() Medium { return Ethernet }

// Encap implements Adapter.
func (a *EthernetAdapter) Encap(payload []byte, mpls bool) ([][]byte, error) {
	et := EtherTypeIPv4
	if mpls {
		et = EtherTypeMPLS
	}
	f, err := EncodeEthernet(a.Remote, a.Local, et, payload)
	if err != nil {
		return nil, err
	}
	return [][]byte{f}, nil
}

// Decap implements Adapter.
func (a *EthernetAdapter) Decap(units [][]byte) ([]byte, error) {
	if len(units) != 1 {
		return nil, fmt.Errorf("%w: ethernet expects 1 frame, got %d", ErrNoUnits, len(units))
	}
	f, err := DecodeEthernet(units[0])
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// Overhead implements Adapter.
func (a *EthernetAdapter) Overhead(payloadSize int) int {
	pad := 0
	if payloadSize < EthMinPayload {
		pad = EthMinPayload - payloadSize
	}
	return EthOverhead + pad
}

// ATMAdapter segments packets into AAL5 cell trains on one VC.
type ATMAdapter struct {
	Circuit VC
}

// Medium implements Adapter.
func (a *ATMAdapter) Medium() Medium { return ATM }

// Encap implements Adapter.
func (a *ATMAdapter) Encap(payload []byte, _ bool) ([][]byte, error) {
	cells, err := EncodeAAL5(a.Circuit, payload)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cells))
	for i, c := range cells {
		out[i] = MarshalCell(c)
	}
	return out, nil
}

// Decap implements Adapter.
func (a *ATMAdapter) Decap(units [][]byte) ([]byte, error) {
	if len(units) == 0 {
		return nil, ErrNoUnits
	}
	cells := make([]Cell, len(units))
	for i, u := range units {
		c, err := UnmarshalCell(u)
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	return DecodeAAL5(a.Circuit, cells)
}

// Overhead implements Adapter.
func (a *ATMAdapter) Overhead(payloadSize int) int {
	total := payloadSize + aal5TrailerSize
	cells := (total + CellPayloadSize - 1) / CellPayloadSize
	return cells*CellSize - payloadSize
}

// FrameRelayAdapter frames packets on one DLCI.
type FrameRelayAdapter struct {
	DLCI uint16
}

// Medium implements Adapter.
func (a *FrameRelayAdapter) Medium() Medium { return FrameRelay }

// Encap implements Adapter.
func (a *FrameRelayAdapter) Encap(payload []byte, _ bool) ([][]byte, error) {
	f, err := EncodeFrameRelay(FrameRelayFrame{DLCI: a.DLCI, Payload: payload})
	if err != nil {
		return nil, err
	}
	return [][]byte{f}, nil
}

// Decap implements Adapter.
func (a *FrameRelayAdapter) Decap(units [][]byte) ([]byte, error) {
	if len(units) != 1 {
		return nil, fmt.Errorf("%w: frame relay expects 1 frame, got %d", ErrNoUnits, len(units))
	}
	f, err := DecodeFrameRelay(units[0])
	if err != nil {
		return nil, err
	}
	if f.DLCI != a.DLCI {
		return nil, fmt.Errorf("frame: DLCI %d, want %d", f.DLCI, a.DLCI)
	}
	return f.Payload, nil
}

// Overhead implements Adapter.
func (a *FrameRelayAdapter) Overhead(int) int { return frHeaderSize + frFCSSize }
