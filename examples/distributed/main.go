// Distributed operation: the scenario in scenario.json split across
// router processes that exchange labeled packets over loopback UDP.
//
// The real walkthrough runs one mplsnode per terminal (see README.md);
// this example compresses it into a single binary by building each
// node exactly as its own process would — config.BuildNode gives every
// node its own network, simulator and sockets, and nothing but UDP
// datagrams connects them — then pumping all three concurrently.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"embeddedmpls/internal/config"
)

func main() {
	log.SetFlags(0)
	f, err := os.Open("scenario.json")
	if err != nil {
		// Also runnable from the repo root (make examples).
		f, err = os.Open("examples/distributed/scenario.json")
	}
	if err != nil {
		log.Fatal("run from examples/distributed or the repo root: ", err)
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"ingress", "core", "egress"}
	built := make(map[string]*config.Built, len(names))
	for _, name := range names {
		b, err := scenario.BuildNode(name)
		if err != nil {
			log.Fatal(err)
		}
		defer b.Net.Close()
		built[name] = b
		fmt.Printf("node %s up at %s\n", name, scenario.Transport.Nodes[name])
	}

	// Each node pumps its own clock, exactly as separate processes
	// would; the half second of slack drains in-flight datagrams.
	d := scenario.DurationS + 0.5
	var wg sync.WaitGroup
	for _, b := range built {
		wg.Add(1)
		go func(b *config.Built) {
			defer wg.Done()
			b.Net.RunReal(d)
		}(b)
	}
	wg.Wait()

	fmt.Printf("\nafter %.1fs of wall-clock traffic:\n", d)
	for _, name := range names {
		b := built[name]
		b.Net.Lock()
		fmt.Printf("  %v\n    %v\n", b.Net.Router(name), b.Net.Wire)
		b.Net.Unlock()
	}
	eg := built["egress"]
	eg.Net.Lock()
	defer eg.Net.Unlock()
	for _, id := range eg.Collector.FlowIDs() {
		fs := eg.Collector.Flow(id)
		fmt.Printf("flow %d at egress: delivered=%d latency %s\n",
			id, fs.Delivered.Events, fs.Latency.Summary("ms", 1e3))
	}
}
