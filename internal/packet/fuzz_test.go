package packet

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanics throws random byte soup at the decoder: every
// input must either parse or error, never panic — a router that crashes
// on a malformed wire packet is a remote denial of service.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		if rng.Intn(3) == 0 && len(buf) > 0 {
			// Bias toward plausible magics so the parser gets deeper.
			buf[0] = []byte{0x45, 0x88}[rng.Intn(2)]
		}
		p, err := Unmarshal(buf)
		if err == nil {
			// Whatever parsed must re-encode without error.
			if _, err := p.Marshal(); err != nil {
				t.Fatalf("trial %d: parsed packet fails to marshal: %v", trial, err)
			}
		}
	}
}

// TestUnmarshalTruncationsOfValidPacket: every prefix of a valid encoding
// must error cleanly (except the full buffer).
func TestUnmarshalTruncationsOfValidPacket(t *testing.T) {
	p := New(AddrFrom(1, 2, 3, 4), AddrFrom(5, 6, 7, 8), 64, []byte("payload!"))
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("truncation to %d bytes parsed successfully", n)
		}
	}
	if _, err := Unmarshal(buf); err != nil {
		t.Errorf("full buffer failed: %v", err)
	}
}
