package stats

import (
	"math"
	"testing"
)

// The dataplane engine keeps one Counter/Sample/Series per worker and
// merges them on snapshot; these tests pin the invariant that the merged
// aggregate is indistinguishable from having recorded everything in one
// global instance.

func TestCounterWorkerMerge(t *testing.T) {
	const workers = 8
	var global, merged Counter
	perWorker := make([]Counter, workers)
	for i := 0; i < 10000; i++ {
		size := 40 + i%1400
		global.Add(size)
		perWorker[i%workers].Add(size)
	}
	for _, w := range perWorker {
		merged.Merge(w)
	}
	if merged != global {
		t.Fatalf("merged %+v != global %+v", merged, global)
	}
	geps, gbps := global.Rate(2.5)
	meps, mbps := merged.Rate(2.5)
	if geps != meps || gbps != mbps {
		t.Fatalf("rates diverge: (%g,%g) vs (%g,%g)", meps, mbps, geps, gbps)
	}
}

func TestSampleWorkerMerge(t *testing.T) {
	const workers = 4
	var global Sample
	perWorker := make([]*Sample, workers)
	for i := range perWorker {
		perWorker[i] = &Sample{}
	}
	for i := 0; i < 5000; i++ {
		v := math.Sin(float64(i)) * 100
		global.Observe(v)
		perWorker[i%workers].Observe(v)
	}
	var merged Sample
	for _, w := range perWorker {
		merged.Merge(w)
	}
	if merged.Count() != global.Count() {
		t.Fatalf("count %d != %d", merged.Count(), global.Count())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got, want := merged.Percentile(p), global.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("p%g: merged %g, global %g", p, got, want)
		}
	}
	if math.Abs(merged.Mean()-global.Mean()) > 1e-9 {
		t.Errorf("mean: merged %g, global %g", merged.Mean(), global.Mean())
	}
	// Merging an empty or nil sample changes nothing.
	before := merged.Count()
	merged.Merge(&Sample{})
	merged.Merge(nil)
	if merged.Count() != before {
		t.Error("merging empty samples changed the count")
	}
}

func TestSeriesWorkerMerge(t *testing.T) {
	const workers = 3
	global := NewSeries(0.5)
	perWorker := make([]*Series, workers)
	for i := range perWorker {
		perWorker[i] = NewSeries(0.5)
	}
	for i := 0; i < 3000; i++ {
		ts := float64(i) * 0.01
		global.Observe(ts, float64(i%7))
		global.Count(ts, 100+i%200)
		perWorker[i%workers].Observe(ts, float64(i%7))
		perWorker[i%workers].Count(ts, 100+i%200)
	}
	merged := NewSeries(0.5)
	for _, w := range perWorker {
		merged.Merge(w)
	}
	gb, mb := global.Bins(), merged.Bins()
	if len(gb) != len(mb) {
		t.Fatalf("bin count %d != %d", len(mb), len(gb))
	}
	for i := range gb {
		if gb[i].Count != mb[i].Count || math.Abs(gb[i].Mean-mb[i].Mean) > 1e-9 || gb[i].BPS != mb[i].BPS {
			t.Errorf("bin %d: merged %+v, global %+v", i, mb[i], gb[i])
		}
	}
}

func TestSeriesMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bin widths did not panic")
		}
	}()
	NewSeries(0.5).Merge(NewSeries(1.0))
}
