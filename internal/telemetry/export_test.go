package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fixed contents so the rendered
// exposition is byte-stable.
func goldenRegistry() *Registry {
	var drops DropCounters
	drops.Add(ReasonLookupMiss, 7)
	drops.Add(ReasonTTLExpired, 3)
	drops.Add(ReasonInconsistentOp, 1)
	drops.Add(ReasonLabelSpoof, 5)
	drops.Add(ReasonTTLSecurity, 2)
	drops.Add(ReasonRateLimit, 11)
	drops.Add(ReasonQuarantine, 4)

	var events EventCounters
	events.Add(EventLinkFlap, 2)
	events.Add(EventKeepaliveMiss, 6)
	events.Add(EventProtectionSwitch, 2)
	events.Add(EventRetryAttempt, 4)
	events.Add(EventRetryExhausted, 1)
	events.Add(EventSessionUp, 3)
	events.Add(EventSessionDown, 1)
	events.Add(EventLabelMapRx, 9)
	events.Add(EventLabelWithdrawRx, 2)
	events.Add(EventQuarantineTrip, 2)
	events.Add(EventQuarantineClear, 1)
	events.Add(EventLinkSuppressed, 3)
	events.Add(EventLinkReused, 2)

	lat := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.0005, 0.02, 0.5} {
		lat.Observe(v)
	}

	reg := NewRegistry()
	reg.Counter("mpls_forwarded_packets_total", "Packets forwarded on.", Labels{"node": "lsr1"},
		func() uint64 { return 1234 })
	reg.Counter("mpls_forwarded_packets_total", "Packets forwarded on.", Labels{"node": "lsr2"},
		func() uint64 { return 42 })
	reg.Drops("mpls_drops_total", "Dropped packets by reason.", Labels{"node": "lsr1"}, &drops)
	reg.Events("mpls_resilience_events_total", "Fault and recovery events by type.", Labels{"node": "lsr1"}, &events)
	reg.Gauge("mpls_queue_depth", "Instantaneous queue depth.", nil, func() float64 { return 17.5 })
	reg.Histogram("mpls_batch_seconds", "Worker batch processing time.", Labels{"node": "lsr1"},
		lat.Snapshot)
	return reg
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "export.prom")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	reg := goldenRegistry()
	if err := reg.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of one registry differ")
	}
}

func TestExpvarAdapter(t *testing.T) {
	v := goldenRegistry().Var()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if got := decoded[`mpls_forwarded_packets_total{node="lsr1"}`]; got != float64(1234) {
		t.Errorf("counter in expvar JSON = %v, want 1234", got)
	}
	hist, ok := decoded[`mpls_batch_seconds{node="lsr1"}`].(map[string]any)
	if !ok || hist["count"] != float64(4) {
		t.Errorf("histogram in expvar JSON = %v", decoded[`mpls_batch_seconds{node="lsr1"}`])
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", "9starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			reg.Counter(name, "", nil, func() uint64 { return 0 })
		}()
	}
	// Re-registering a name under a different type is a programming error.
	reg.Counter("mpls_ok_total", "", nil, func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("type conflict accepted")
		}
	}()
	reg.Gauge("mpls_ok_total", "", nil, func() float64 { return 0 })
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mpls_esc_total", "", Labels{"path": `a"b\c` + "\nd"}, func() uint64 { return 1 })
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `path="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", out)
	}
}
