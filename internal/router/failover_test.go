package router

import (
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/te"
)

// diamondNet builds a diamond a-{b,c}-d with hardware planes.
func diamondNet(t *testing.T) *Network {
	t.Helper()
	nodes := []NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LSR},
		{Name: "d", Hardware: true, RouterType: lsm.LER},
	}
	links := []LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.001, Metric: 1},
		{A: "b", B: "d", RateBPS: 10e6, Delay: 0.001, Metric: 1},
		{A: "a", B: "c", RateBPS: 10e6, Delay: 0.001, Metric: 5},
		{A: "c", B: "d", RateBPS: 10e6, Delay: 0.001, Metric: 5},
	}
	n, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFailoverEndToEnd fails the primary path mid-run, reroutes via CSPF,
// and checks that delivery resumes with loss bounded to the failure
// window.
func TestFailoverEndToEnd(t *testing.T) {
	n := diamondNet(t)
	dst := packet.AddrFrom(10, 0, 0, 9)
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
	}); err != nil {
		t.Fatal(err)
	}

	delivered := 0
	n.Router("d").OnDeliver = func(*packet.Packet) { delivered++ }

	// One packet per millisecond for 100 ms.
	sent := 0
	for i := 0; i < 100; i++ {
		i := i
		n.Sim.Schedule(float64(i)*0.001, func() {
			n.Router("a").Inject(packet.New(1, dst, 64, make([]byte, 64)))
			sent++
		})
	}
	// At t=30ms the a-b link fails; at t=35ms the control plane has
	// computed a repair path (excluding b) and reroutes.
	n.Sim.Schedule(0.030, func() {
		if err := n.SetLinkDown("a", "b", true); err != nil {
			t.Error(err)
		}
	})
	n.Sim.Schedule(0.035, func() {
		repair, err := n.Topo.CSPF(te.PathRequest{From: "a", To: "d", ExcludeNodes: map[string]bool{"b": true}})
		if err != nil {
			t.Error(err)
			return
		}
		if err := n.LDP.Reroute("l", repair); err != nil {
			t.Error(err)
		}
	})
	n.Sim.Run()

	if sent != 100 {
		t.Fatalf("sent %d", sent)
	}
	lost := sent - delivered
	// The outage window is 5 ms -> at most ~7 packets lost (plus one in
	// flight); zero loss would mean the failure never bit.
	if lost == 0 {
		t.Error("no loss across a 5 ms outage window — failure did not take effect")
	}
	if lost > 8 {
		t.Errorf("lost %d packets, want <= 8 (the outage window)", lost)
	}
	// Post-reroute traffic went via c.
	if n.Router("c").Stats.Forwarded.Events == 0 {
		t.Error("repair path never carried traffic")
	}
	// Nothing is still routed at b after the reroute completes.
	lab, _ := n.Router("a").SimLink("b")
	if lab.Lost.Events == 0 {
		t.Error("down link recorded no lost packets")
	}
}

// TestFailoverRestoresAfterRepair brings the failed link back and
// reroutes to the original path.
func TestFailoverRestoresAfterRepair(t *testing.T) {
	n := diamondNet(t)
	dst := packet.AddrFrom(10, 0, 0, 9)
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "c", "d"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.LDP.Reroute("l", []string{"a", "b", "d"}); err != nil {
		t.Fatal(err)
	}
	got := 0
	n.Router("d").OnDeliver = func(*packet.Packet) { got++ }
	n.Router("a").Inject(packet.New(1, dst, 64, nil))
	n.Sim.Run()
	if got != 1 {
		t.Fatalf("delivered %d after reroute back", got)
	}
	if n.Router("b").Stats.Forwarded.Events != 1 {
		t.Error("traffic did not return to the primary path")
	}
}

func TestSetLinkDownValidation(t *testing.T) {
	n := diamondNet(t)
	if err := n.SetLinkDown("a", "ghost", true); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := n.SetLinkDown("ghost", "a", true); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := n.SetLinkDown("a", "d", true); err == nil {
		t.Error("nonexistent link accepted")
	}
	if err := n.SetLinkDown("a", "b", true); err != nil {
		t.Fatal(err)
	}
	l, _ := n.Router("a").Link("b")
	if !l.Down() {
		t.Error("link not down")
	}
	if err := n.SetLinkDown("a", "b", false); err != nil {
		t.Fatal(err)
	}
	if l.Down() {
		t.Error("link not restored")
	}
}
