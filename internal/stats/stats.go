// Package stats provides the measurement primitives the benchmark
// harness and the network simulator use: counters, latency samples with
// percentile queries, and rate accounting. Everything is deterministic
// and allocation-conscious so it can sit on the simulated fast path.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter counts events and bytes.
type Counter struct {
	Events uint64
	Bytes  uint64
}

// Add records one event of the given size.
func (c *Counter) Add(bytes int) {
	c.Events++
	c.Bytes += uint64(bytes)
}

// Merge folds o into c.
func (c *Counter) Merge(o Counter) {
	c.Events += o.Events
	c.Bytes += o.Bytes
}

// Rate returns events/second and bits/second over an interval in seconds.
func (c Counter) Rate(seconds float64) (eps, bps float64) {
	if seconds <= 0 {
		return 0, 0
	}
	return float64(c.Events) / seconds, float64(c.Bytes) * 8 / seconds
}

// Sample collects scalar observations (latencies, queue depths) and
// answers summary queries. It keeps every observation: simulation runs
// are bounded, and exact percentiles are worth the memory.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// Observe records one value.
func (s *Sample) Observe(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.xs) }

// Merge folds every observation of o into s. The dataplane engine keeps
// one Sample per worker so the hot path never shares memory, then merges
// them on snapshot; the merged sample answers queries exactly as if every
// observation had been recorded centrally.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
	s.sum += o.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 with none.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 with none.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using nearest-
// rank interpolation, or 0 with no observations.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Summary renders the usual five-number summary plus mean, with a unit
// suffix: "n=100 mean=1.2ms p50=1.1ms p95=2.0ms p99=2.4ms max=3.0ms".
func (s *Sample) Summary(unit string, scale float64) string {
	if len(s.xs) == 0 {
		return "n=0"
	}
	f := func(v float64) string { return fmt.Sprintf("%.3g%s", v*scale, unit) }
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count(), f(s.Mean()), f(s.Percentile(50)), f(s.Percentile(95)), f(s.Percentile(99)), f(s.Max()))
}

// FlowStats aggregates the fate of one traffic flow.
type FlowStats struct {
	Sent      Counter
	Delivered Counter
	Dropped   Counter
	// Latency holds one observation per delivered packet, in simulated
	// seconds.
	Latency Sample
}

// LossRate returns the fraction of sent packets that were not delivered.
func (f *FlowStats) LossRate() float64 {
	if f.Sent.Events == 0 {
		return 0
	}
	return 1 - float64(f.Delivered.Events)/float64(f.Sent.Events)
}

// GoodputBPS returns delivered bits/second over the interval.
func (f *FlowStats) GoodputBPS(seconds float64) float64 {
	_, bps := f.Delivered.Rate(seconds)
	return bps
}
