package label

import "fmt"

// Op is a label stack operation as stored in the information base. The
// hardware encodes it in a 2-bit memory component, so exactly four values
// exist: no-operation, push, pop and swap.
type Op uint8

const (
	OpNone Op = iota // leave the stack untouched (unused table slot)
	OpPush           // push a new entry on top of the stack
	OpPop            // remove the top entry
	OpSwap           // replace the top entry's label
)

// NumOps is the number of distinct operations (the 2-bit field's range).
const NumOps = 4

// Valid reports whether o fits in the 2-bit operation field.
func (o Op) Valid() bool { return o < NumOps }

// String returns the conventional lowercase name of the operation.
func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	case OpSwap:
		return "swap"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}
