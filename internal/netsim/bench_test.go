package netsim

import (
	"testing"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
)

// BenchmarkEventThroughput measures raw scheduler capacity.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(1, func() {})
		s.RunUntil(s.Now() + 2)
	}
}

// BenchmarkLinkPipeline measures a packet traversing a loaded link.
func BenchmarkLinkPipeline(b *testing.B) {
	s := New()
	got := 0
	dst := nodeFunc(func(*packet.Packet, string) { got++ })
	l := NewLink(s, "src", dst, 1e9, 0.0001, qos.NewFIFO(1024))
	p := packet.New(1, 2, 64, make([]byte, 500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(p.Clone())
		s.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

type nodeFunc func(*packet.Packet, string)

func (nodeFunc) Name() string                            { return "sink" }
func (f nodeFunc) Receive(p *packet.Packet, from string) { f(p, from) }
