package transport

import (
	"errors"
	"fmt"
)

// Duplex is a bidirectional transport channel between two nodes built
// from two UDP sockets on the loopback interface: A carries a→b
// traffic, B carries b→a, and each receiver attributes arrivals to the
// fixed peer on the other end. It is the drop-in replacement for one
// simulated netsim.Link pair when a topology is built with the UDP
// transport in a single process.
type Duplex struct {
	// A and B are the send sides, attached to node a and node b.
	A, B *UDPLink
	// RA and RB are the receive sides: RA delivers b→a arrivals into
	// node a, RB delivers a→b arrivals into node b.
	RA, RB *Receiver
}

// Pair wires nodes a and b together over loopback UDP. toA receives
// the batches arriving at a (sent by b) and toB the batches arriving
// at b. aOpts configure node a's send link and receiver, bOpts node
// b's — per-side because metrics and drop counters are per-node.
func Pair(a, b string, toA, toB func(batch []Inbound), aOpts, bOpts []Option) (*Duplex, error) {
	d := &Duplex{}
	fail := func(err error) (*Duplex, error) {
		d.Close()
		return nil, fmt.Errorf("transport: pair %s<->%s: %w", a, b, err)
	}
	var err error
	if d.RA, err = Listen("127.0.0.1:0", toA, append(aOpts, WithPeer(b))...); err != nil {
		return fail(err)
	}
	if d.RB, err = Listen("127.0.0.1:0", toB, append(bOpts, WithPeer(a))...); err != nil {
		return fail(err)
	}
	if d.A, err = Dial(a, b, d.RB.Addr().String(), aOpts...); err != nil {
		return fail(err)
	}
	if d.B, err = Dial(b, a, d.RA.Addr().String(), bOpts...); err != nil {
		return fail(err)
	}
	return d, nil
}

// Close tears down both directions. Idempotent; safe on a partially
// constructed pair.
func (d *Duplex) Close() error {
	var errs []error
	if d.A != nil {
		errs = append(errs, d.A.Close())
	}
	if d.B != nil {
		errs = append(errs, d.B.Close())
	}
	if d.RA != nil {
		errs = append(errs, d.RA.Close())
	}
	if d.RB != nil {
		errs = append(errs, d.RB.Close())
	}
	return errors.Join(errs...)
}
