// mplsbench regenerates the quantitative results of the paper's
// evaluation from the cycle-accurate label stack modifier:
//
//	-table6     Table 6 (worst-case clock cycles per operation), measured
//	-worstcase  the 6167-cycle composite scenario and its 50 MHz wall time
//	-sweep      search cost vs table occupancy, hardware vs software
//
// With no flags it runs everything.
//
// -engine=dataplane switches to the concurrent forwarding engine
// benchmark instead: packets/sec scaling from 1 to -workers shard
// workers on the standard transit workload, with -json writing the
// machine-readable trajectory file BENCH_dataplane.json. -infobase
// selects the snapshots' ILM backend and -batch the per-worker batch
// size.
//
// -engine=lookup measures the ILM fast path itself: worst-case hit
// latency vs table occupancy across the map, linear and indexed
// backends (-infobase restricts the sweep to one backend), plus a
// single-shard batch=1 vs batch=-batch comparison; -json writes
// BENCH_lookup.json.
//
// -engine=convergence measures the distributed control plane in
// simulated time: session-mesh formation, LSP establishment and
// failure-to-reroute latency on rings of 8, 32 and 128 routers; -json
// writes BENCH_convergence.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

func main() {
	table6 := flag.Bool("table6", false, "measure Table 6 per-operation cycle counts")
	worst := flag.Bool("worstcase", false, "run the 6167-cycle worst-case scenario")
	sweep := flag.Bool("sweep", false, "sweep search cost vs table size, hardware vs software")
	cam := flag.Bool("cam", false, "compare the linear search against the CAM ablation on the RTL model")
	resources := flag.Bool("resources", false, "estimate the FPGA resource footprint")
	engine := flag.String("engine", "lsm", "benchmark target: lsm (paper tables), dataplane (concurrent engine), lookup (ILM fast path), transport (wire codec + loopback UDP) or convergence (distributed control plane)")
	workers := flag.Int("workers", 4, "dataplane engine: maximum shard workers to sweep to")
	packets := flag.Int("packets", 200000, "dataplane/lookup engines: packets per run")
	batch := flag.Int("batch", 0, "dataplane engine: per-worker batch size (0: default); lookup engine: the large batch of the 1-vs-N comparison (default 32)")
	infoBase := flag.String("infobase", "", "ILM backend: map, linear or indexed (dataplane default: map; lookup default: sweep all, batch half indexed)")
	jsonOut := flag.Bool("json", false, "dataplane/lookup engines: write BENCH_<engine>.json")
	metrics := flag.Bool("metrics", false, "dataplane engine: run the drop-reason workload and print the Prometheus exposition")
	flag.Parse()
	if *engine == "lookup" {
		kinds := []swmpls.ILMKind{swmpls.ILMMap, swmpls.ILMLinear, swmpls.ILMIndexed}
		batchKind := swmpls.ILMIndexed
		if *infoBase != "" {
			k, err := parseILMKind(*infoBase)
			if err != nil {
				log.Fatal(err)
			}
			kinds = []swmpls.ILMKind{k}
			batchKind = k
		}
		path := ""
		if *jsonOut {
			path = "BENCH_lookup.json"
		}
		if err := runLookup(kinds, batchKind, *batch, *packets, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *engine == "convergence" {
		path := ""
		if *jsonOut {
			path = "BENCH_convergence.json"
		}
		if err := runConvergence([]int{8, 32, 128}, 4, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *engine == "transport" {
		path := ""
		if *jsonOut {
			path = "BENCH_transport.json"
		}
		if err := runTransport(*packets, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *engine == "dataplane" {
		if *metrics {
			path := ""
			if *jsonOut {
				path = "BENCH_dataplane.prom"
			}
			if err := runDataplaneMetrics(path); err != nil {
				log.Fatal(err)
			}
			return
		}
		kind := swmpls.ILMMap
		if *infoBase != "" {
			k, err := parseILMKind(*infoBase)
			if err != nil {
				log.Fatal(err)
			}
			kind = k
		}
		path := ""
		if *jsonOut {
			path = "BENCH_dataplane.json"
		}
		if err := runDataplane(*workers, *packets, *batch, kind, path); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *metrics {
		log.Fatal("-metrics requires -engine=dataplane")
	}
	if *engine != "lsm" {
		log.Fatalf("unknown -engine %q (want lsm, dataplane, lookup, transport or convergence)", *engine)
	}
	if !*table6 && !*worst && !*sweep && !*cam && !*resources {
		*table6, *worst, *sweep, *cam, *resources = true, true, true, true, true
	}
	if *table6 {
		runTable6()
	}
	if *worst {
		runWorstCase()
	}
	if *sweep {
		runSweep()
	}
	if *cam {
		runCAM()
	}
	if *resources {
		runResources()
	}
}

func runResources() {
	r := lsm.EstimateResources()
	fits, frac := r.FitsStratixEP1S40()
	fmt.Println("Resource estimate — \"satisfies the space requirements of most reconfigurable computing environments\"")
	fmt.Printf("  information base block RAM: %d bits (%d KiB)\n", r.RAMBits, r.RAMBits/8/1024)
	fmt.Printf("  data path + control registers: %d bits\n", r.RegisterBits)
	fmt.Printf("  comparators: %v bit widths\n", r.Comparators)
	fmt.Printf("  Stratix EP1S40 block RAM: %d bits -> fits=%v at %.1f%% utilisation\n",
		lsm.StratixEP1S40RAMBits, fits, frac*100)
	fmt.Println()
}

func runCAM() {
	fmt.Println("X3 ablation — linear information base search vs associative (CAM), on the RTL model")
	fmt.Printf("%8s %15s %15s\n", "entries", "linear cycles", "cam cycles")
	for _, n := range []int{16, 256, 1024} {
		row := make(map[lsm.SearchKind]int, 2)
		for _, kind := range []lsm.SearchKind{lsm.SearchLinear, lsm.SearchCAM} {
			b := lsm.NewBenchWith(lsm.LSR, lsm.Options{Search: kind})
			for i := 0; i < n; i++ {
				_, err := b.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 5, Op: label.OpSwap})
				check(err)
			}
			res, cycles, err := b.Lookup(infobase.Level2, infobase.Key(n)) // worst-case hit
			check(err)
			if !res.Found {
				log.Fatal("worst-case key not found")
			}
			row[kind] = cycles
		}
		fmt.Printf("%8d %15d %15d\n", n, row[lsm.SearchLinear], row[lsm.SearchCAM])
	}
	fmt.Println()
}

func runTable6() {
	fmt.Println("Table 6 — processing times for different tasks (measured on the RTL model)")
	fmt.Printf("%-28s %10s %10s\n", "operation", "measured", "paper")
	b := lsm.NewBench(lsm.LSR)

	cycles, err := b.ResetOp()
	check(err)
	row("Reset", cycles, "3")

	cycles, err = b.UserPush(label.Entry{Label: 40, TTL: 64})
	check(err)
	row("push from the user", cycles, "3")

	_, cycles, err = b.UserPop()
	check(err)
	row("pop from the user", cycles, "3")

	cycles, err = b.WritePair(infobase.Level2, infobase.Pair{Index: 1, NewLabel: 2, Op: label.OpSwap})
	check(err)
	row("Write label pair", cycles, "3")

	// Search over n entries: measure a miss at a few sizes and show the
	// 3n+5 fit.
	for _, n := range []int{1, 10, 100} {
		bb := lsm.NewBench(lsm.LSR)
		for i := 0; i < n; i++ {
			_, err := bb.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 5, Op: label.OpSwap})
			check(err)
		}
		_, cycles, err := bb.Lookup(infobase.Level2, 999999)
		check(err)
		row(fmt.Sprintf("Search info base (n=%d)", n), cycles, fmt.Sprintf("3n+5 = %d", 3*n+5))
	}

	// Swap from the information base: total minus the search component.
	bb := lsm.NewBench(lsm.LSR)
	_, err = bb.UserPush(label.Entry{Label: 42, TTL: 64})
	check(err)
	_, err = bb.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	check(err)
	res, cycles, err := bb.Update(lsm.UpdateRequest{})
	check(err)
	row("swap from the info base", cycles-lsm.SearchCycles(res.SearchPos), "6")
	fmt.Println()
}

func row(name string, measured int, paper string) {
	fmt.Printf("%-28s %10d %10s\n", name, measured, paper)
}

func runWorstCase() {
	fmt.Println("Worst case — reset + 3 pushes + 1024 pair writes + full-level swap")
	b := lsm.NewBench(lsm.LSR)
	total := 0
	start := time.Now()

	c, err := b.ResetOp()
	check(err)
	total += c
	for i := 0; i < 3; i++ {
		c, err = b.UserPush(label.Entry{Label: label.Label(40 + i), TTL: 64})
		check(err)
		total += c
	}
	for i := 0; i < infobase.EntriesPerLevel; i++ {
		idx := infobase.Key(10000 + i)
		if i == infobase.EntriesPerLevel-1 {
			idx = 42
		}
		c, err = b.WritePair(infobase.Level3, infobase.Pair{Index: idx, NewLabel: 900, Op: label.OpSwap})
		check(err)
		total += c
	}
	res, c, err := b.Update(lsm.UpdateRequest{})
	check(err)
	total += c

	fmt.Printf("  measured total:     %d cycles (paper: 6167)\n", total)
	fmt.Printf("  swap found at:      position %d of %d\n", res.SearchPos, infobase.EntriesPerLevel)
	fmt.Printf("  at 50 MHz:          %.4f ms (paper: ~0.1233 ms)\n", lsm.DefaultClock.Seconds(total)*1e3)
	fmt.Printf("  simulated in:       %v of host time\n", time.Since(start).Round(time.Millisecond))
	fmt.Println()
}

func runSweep() {
	fmt.Println("Search cost sweep — hardware linear search vs software hash ILM (worst-case hit)")
	fmt.Printf("%8s %15s %15s %15s\n", "entries", "hw cycles", "hw ns @50MHz", "sw ns (host)")
	for _, n := range []int{1, 4, 16, 64, 256, 1024} {
		hwCycles := lsm.SearchCycles(n) + lsm.CyclesSwapFromIB + lsm.CyclesUserPush
		fmt.Printf("%8d %15d %15.0f %15.1f\n",
			n, hwCycles, lsm.DefaultClock.Nanos(hwCycles), softwareSwapNs(n))
	}
	fmt.Println()
}

func softwareSwapNs(n int) float64 {
	f := swmpls.New()
	for i := 0; i < n; i++ {
		err := f.MapLabel(label.Label(16+i), swmpls.NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{label.Label(200000 + i)}})
		check(err)
	}
	target := label.Label(16 + n - 1)
	p := packet.New(1, 2, 64, nil)
	const iters = 100000
	start := time.Now()
	for i := 0; i < iters; i++ {
		p.Stack.Reset()
		_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
		if res := f.Forward(p); res.Action != swmpls.Forward {
			log.Fatal("software swap failed")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
