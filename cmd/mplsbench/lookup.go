package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// The lookup benchmark measures the ILM fast path in isolation:
//
//   - an occupancy sweep of the software forwarder's pluggable ILM
//     backends (worst-case hit at 16..1024 installed entries), showing
//     the paper's linear information-base scan degrading with table
//     size while the indexed backend stays flat; and
//   - a single-shard engine run at batch size 1 vs -batch, showing what
//     batching alone buys (amortised snapshot loads plus a warm
//     per-worker flow cache).

// lookupOccupancies mirrors the paper's information-base geometry: the
// last point is a full 1024-entry level.
var lookupOccupancies = []int{16, 64, 256, 1024}

type lookupRow struct {
	Entries int `json:"entries"`
	// NsPerOp maps backend name ("map", "linear", "indexed") to the
	// worst-case-hit forwarding latency in nanoseconds.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

type lookupBatchRow struct {
	Batch        int     `json:"batch"`
	CapacityPPS  float64 `json:"capacity_pps"`
	WallPPS      float64 `json:"wall_pps"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type lookupReport struct {
	Benchmark string           `json:"benchmark"`
	Occupancy []lookupRow      `json:"occupancy"`
	BatchILM  string           `json:"batch_ilm"`
	BatchRows []lookupBatchRow `json:"batch"`
}

func parseILMKind(name string) (swmpls.ILMKind, error) {
	switch name {
	case "map":
		return swmpls.ILMMap, nil
	case "linear":
		return swmpls.ILMLinear, nil
	case "indexed":
		return swmpls.ILMIndexed, nil
	}
	return 0, fmt.Errorf("unknown -infobase %q (want map, linear or indexed)", name)
}

// lookupNs measures one backend at one occupancy: install entries
// labels, then forward the worst-case flow — the last-installed label,
// which the linear scan only reaches after walking the whole table.
func lookupNs(kind swmpls.ILMKind, entries int) (float64, error) {
	f := swmpls.New(swmpls.WithILM(kind))
	for i := 0; i < entries; i++ {
		err := f.MapLabel(label.Label(16+i), swmpls.NHLFE{
			NextHop:    "peer",
			Op:         label.OpSwap,
			PushLabels: []label.Label{label.Label(200000 + i)},
		})
		if err != nil {
			return 0, err
		}
	}
	target := label.Label(16 + entries - 1)
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	const iters = 100000
	start := time.Now()
	for i := 0; i < iters; i++ {
		p.Stack.Reset()
		_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
		if res := f.Forward(p); res.Action != swmpls.Forward {
			return 0, fmt.Errorf("lookup bench: %s/%d: unexpected result %+v", kind, entries, res)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / iters, nil
}

// runLookup runs both halves and optionally writes BENCH_lookup.json.
// kinds filters the occupancy sweep; batchKind picks the ILM backend of
// the batch comparison (the engine default workload, one shard).
func runLookup(kinds []swmpls.ILMKind, batchKind swmpls.ILMKind, batchN, packets int, jsonPath string) error {
	if batchN <= 1 {
		batchN = 32
	}
	report := lookupReport{Benchmark: "lookup", BatchILM: batchKind.String()}

	fmt.Println("ILM lookup — worst-case hit latency vs table occupancy (software forwarder)")
	header := fmt.Sprintf("%8s", "entries")
	for _, k := range kinds {
		header += fmt.Sprintf(" %12s", k.String()+" ns")
	}
	fmt.Println(header)
	for _, n := range lookupOccupancies {
		row := lookupRow{Entries: n, NsPerOp: make(map[string]float64, len(kinds))}
		line := fmt.Sprintf("%8d", n)
		for _, k := range kinds {
			ns, err := lookupNs(k, n)
			if err != nil {
				return err
			}
			row.NsPerOp[k.String()] = ns
			line += fmt.Sprintf(" %12.1f", ns)
		}
		report.Occupancy = append(report.Occupancy, row)
		fmt.Println(line)
	}
	fmt.Println()

	fmt.Printf("Batched dataplane — one shard, %s ILM, %d packets, batch 1 vs %d (best of %d runs)\n",
		batchKind, packets, batchN, dpReps)
	fmt.Printf("%8s %15s %15s %15s\n", "batch", "capacity pps", "wall pps", "cache hit rate")
	w := newDPWorkload(packets)
	for _, b := range []int{1, batchN} {
		var best dpResult
		for rep := 0; rep < dpReps; rep++ {
			res, err := dpRun(w, 1, b, batchKind)
			if err != nil {
				return err
			}
			if res.CapacityPPS > best.CapacityPPS {
				best = res
			}
		}
		report.BatchRows = append(report.BatchRows, lookupBatchRow{
			Batch:        b,
			CapacityPPS:  best.CapacityPPS,
			WallPPS:      best.WallPPS,
			CacheHitRate: best.CacheHitRate,
		})
		fmt.Printf("%8d %15.0f %15.0f %14.1f%%\n", b, best.CapacityPPS, best.WallPPS, best.CacheHitRate*100)
	}
	if len(report.BatchRows) == 2 {
		r := report.BatchRows
		fmt.Printf("batching: batch=%d is %.2fx batch=1 capacity\n", r[1].Batch, r[1].CapacityPPS/r[0].CapacityPPS)
	}
	fmt.Println()

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
