package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// TraceOp is the label operation recorded in a trace event. The first
// four values deliberately mirror label.Op (none, push, pop, swap) so
// converting between the two is a cast; TraceDiscard is the extra
// outcome only the telemetry layer sees.
type TraceOp uint8

// Trace operations.
const (
	TraceNone TraceOp = iota // placeholder, keeps label.Op values aligned
	TracePush
	TracePop
	TraceSwap
	TraceDiscard

	// NumTraceOps is the number of distinct trace operations.
	NumTraceOps = 5
)

// Valid reports whether o names a defined trace operation.
func (o TraceOp) Valid() bool { return o < NumTraceOps }

// String names the operation.
func (o TraceOp) String() string {
	switch o {
	case TraceNone:
		return "none"
	case TracePush:
		return "push"
	case TracePop:
		return "pop"
	case TraceSwap:
		return "swap"
	case TraceDiscard:
		return "discard"
	default:
		return fmt.Sprintf("traceop(%d)", uint8(o))
	}
}

// TraceEvent is one label operation observed at a node: what was done
// (or why the packet was discarded), at which information-base level or
// stack depth, to which label.
type TraceEvent struct {
	// Seq is assigned by the ring: the event's position in the total
	// stream, monotonically increasing even after wraparound.
	Seq uint64
	// Node names where the operation happened (router, engine, or model).
	Node string
	// Op is the applied operation, or TraceDiscard.
	Op TraceOp
	// Level is the information-base level consulted (lsm) or the stack
	// depth observed (swmpls/dataplane/router).
	Level uint8
	// Label is the label involved: the pushed/swapped-in label on
	// success, the offending top label on a discard, 0 when unknown.
	Label uint32
	// Reason is meaningful only when Op is TraceDiscard.
	Reason Reason
}

// String renders the event as one trace line.
func (e TraceEvent) String() string {
	if e.Op == TraceDiscard {
		return fmt.Sprintf("seq=%d node=%s op=discard reason=%v level=%d label=%d",
			e.Seq, e.Node, e.Reason, e.Level, e.Label)
	}
	return fmt.Sprintf("seq=%d node=%s op=%v level=%d label=%d",
		e.Seq, e.Node, e.Op, e.Level, e.Label)
}

// Ring is a bounded, concurrency-safe trace of the most recent label
// operations. Older events are overwritten once capacity is reached;
// Total() minus Len() says how many were lost. Recording takes one
// mutex acquisition, so tracing is optional everywhere it is wired —
// enable it when debugging an LSP, leave it nil on benchmark runs.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // events ever recorded; also the next event's Seq
}

// NewRing returns a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("telemetry: ring capacity %d", capacity))
	}
	return &Ring{buf: make([]TraceEvent, 0, capacity)}
}

// Record stores the event (overwriting the oldest when full), assigns
// its sequence number and returns it. The caller's Seq field is ignored.
func (r *Ring) Record(ev TraceEvent) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.next
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[int(r.next)%cap(r.buf)] = ev
	}
	r.next++
	return ev.Seq
}

// RecordOp records a successful push/pop/swap.
func (r *Ring) RecordOp(node string, op TraceOp, level uint8, lbl uint32) {
	r.Record(TraceEvent{Node: node, Op: op, Level: level, Label: lbl})
}

// RecordDiscard records a drop with its reason.
func (r *Ring) RecordDiscard(node string, level uint8, lbl uint32, reason Reason) {
	r.Record(TraceEvent{Node: node, Op: TraceDiscard, Level: level, Label: lbl, Reason: reason})
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return cap(r.buf) }

// Total returns how many events were ever recorded (retained or
// overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := int(r.next) % cap(r.buf)
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Dump writes the retained events as text, oldest first, with a header
// noting how many older events were overwritten.
func (r *Ring) Dump(w io.Writer) error {
	evs := r.Events()
	total := r.Total()
	if _, err := fmt.Fprintf(w, "trace ring: %d events retained of %d recorded\n",
		len(evs), total); err != nil {
		return err
	}
	for _, ev := range evs {
		if _, err := fmt.Fprintf(w, "  %v\n", ev); err != nil {
			return err
		}
	}
	return nil
}

// The binary trace record layout, per event:
//
//	uvarint seq | byte op | byte level | uvarint label |
//	byte reason | byte len(node) | node bytes
//
// Node names longer than 255 bytes are truncated on encode — they are
// router names, not payloads.

// Trace codec errors.
var (
	ErrTraceTruncated = errors.New("telemetry: truncated trace record")
	ErrTraceInvalid   = errors.New("telemetry: invalid trace record")
)

// AppendEncoded appends ev's binary encoding to buf and returns it.
func AppendEncoded(buf []byte, ev TraceEvent) []byte {
	buf = binary.AppendUvarint(buf, ev.Seq)
	buf = append(buf, byte(ev.Op), ev.Level)
	buf = binary.AppendUvarint(buf, uint64(ev.Label))
	node := ev.Node
	if len(node) > 255 {
		node = node[:255]
	}
	buf = append(buf, byte(ev.Reason), byte(len(node)))
	return append(buf, node...)
}

// Encode serialises the retained events, oldest first.
func (r *Ring) Encode() []byte {
	var buf []byte
	for _, ev := range r.Events() {
		buf = AppendEncoded(buf, ev)
	}
	return buf
}

// DecodeEvents parses a concatenation of encoded trace records. It
// rejects truncated tails and out-of-range op/reason bytes rather than
// guessing, so a corrupted dump is reported, not misread.
func DecodeEvents(buf []byte) ([]TraceEvent, error) {
	var out []TraceEvent
	for len(buf) > 0 {
		ev, rest, err := decodeOne(buf)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
		buf = rest
	}
	return out, nil
}

func decodeOne(buf []byte) (TraceEvent, []byte, error) {
	var ev TraceEvent
	seq, n := binary.Uvarint(buf)
	if n <= 0 {
		return ev, nil, ErrTraceTruncated
	}
	buf = buf[n:]
	if len(buf) < 2 {
		return ev, nil, ErrTraceTruncated
	}
	op, level := TraceOp(buf[0]), buf[1]
	if !op.Valid() {
		return ev, nil, fmt.Errorf("%w: op %d", ErrTraceInvalid, buf[0])
	}
	buf = buf[2:]
	lbl, n := binary.Uvarint(buf)
	if n <= 0 {
		return ev, nil, ErrTraceTruncated
	}
	if lbl > 1<<32-1 {
		return ev, nil, fmt.Errorf("%w: label %d exceeds 32 bits", ErrTraceInvalid, lbl)
	}
	buf = buf[n:]
	if len(buf) < 2 {
		return ev, nil, ErrTraceTruncated
	}
	reason, nodeLen := Reason(buf[0]), int(buf[1])
	if !reason.Valid() {
		return ev, nil, fmt.Errorf("%w: reason %d", ErrTraceInvalid, buf[0])
	}
	buf = buf[2:]
	if len(buf) < nodeLen {
		return ev, nil, ErrTraceTruncated
	}
	ev = TraceEvent{
		Seq:    seq,
		Node:   string(buf[:nodeLen]),
		Op:     op,
		Level:  level,
		Label:  uint32(lbl),
		Reason: reason,
	}
	return ev, buf[nodeLen:], nil
}
