package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ATM constants: 53-byte cells of a 5-byte header and 48-byte payload;
// AAL5 packs a packet plus an 8-byte trailer into a whole number of
// cells, marking the last cell of the PDU in the payload-type field.
const (
	CellSize        = 53
	cellHeaderSize  = 5
	CellPayloadSize = 48
	aal5TrailerSize = 8
)

// ATM framing errors.
var (
	ErrCellSize     = errors.New("frame: ATM cell is not 53 bytes")
	ErrCellVC       = errors.New("frame: ATM cell from a different VC")
	ErrNoLastCell   = errors.New("frame: AAL5 PDU missing last-cell marker")
	ErrAAL5Trailer  = errors.New("frame: AAL5 trailer corrupt")
	ErrAAL5Length   = errors.New("frame: AAL5 length field out of range")
	ErrAAL5Checksum = errors.New("frame: AAL5 CRC mismatch")
)

// VC identifies an ATM virtual circuit.
type VC struct {
	VPI uint8  // virtual path, 8 bits at the UNI
	VCI uint16 // virtual channel
}

// Cell is one ATM cell.
type Cell struct {
	VC   VC
	Last bool // AAL5 end-of-PDU marker (PT bit 0)
	Data [CellPayloadSize]byte
}

// EncodeAAL5 segments payload into ATM cells on the given VC: payload,
// zero padding, and an 8-byte trailer (UU, CPI, 16-bit length, CRC-32)
// aligned to a whole number of cells.
func EncodeAAL5(vc VC, payload []byte) ([]Cell, error) {
	if len(payload) > 0xffff {
		return nil, fmt.Errorf("%w: %d", ErrAAL5Length, len(payload))
	}
	total := len(payload) + aal5TrailerSize
	cells := (total + CellPayloadSize - 1) / CellPayloadSize
	pdu := make([]byte, cells*CellPayloadSize)
	copy(pdu, payload)
	tr := pdu[len(pdu)-aal5TrailerSize:]
	// tr[0]=UU, tr[1]=CPI stay zero.
	binary.BigEndian.PutUint16(tr[2:], uint16(len(payload)))
	binary.BigEndian.PutUint32(tr[4:], crc32.ChecksumIEEE(pdu[:len(pdu)-4]))

	out := make([]Cell, cells)
	for i := range out {
		out[i].VC = vc
		out[i].Last = i == cells-1
		copy(out[i].Data[:], pdu[i*CellPayloadSize:])
	}
	return out, nil
}

// DecodeAAL5 reassembles a cell train back into the payload, validating
// the VC, the last-cell marker, the length field and the CRC.
func DecodeAAL5(vc VC, cells []Cell) ([]byte, error) {
	if len(cells) == 0 {
		return nil, ErrNoLastCell
	}
	pdu := make([]byte, 0, len(cells)*CellPayloadSize)
	for i, c := range cells {
		if c.VC != vc {
			return nil, fmt.Errorf("%w: cell %d on %+v, want %+v", ErrCellVC, i, c.VC, vc)
		}
		if c.Last != (i == len(cells)-1) {
			return nil, fmt.Errorf("%w (cell %d)", ErrNoLastCell, i)
		}
		pdu = append(pdu, c.Data[:]...)
	}
	if len(pdu) < aal5TrailerSize {
		return nil, ErrAAL5Trailer
	}
	tr := pdu[len(pdu)-aal5TrailerSize:]
	n := int(binary.BigEndian.Uint16(tr[2:]))
	if n > len(pdu)-aal5TrailerSize {
		return nil, fmt.Errorf("%w: %d > %d", ErrAAL5Length, n, len(pdu)-aal5TrailerSize)
	}
	if crc32.ChecksumIEEE(pdu[:len(pdu)-4]) != binary.BigEndian.Uint32(tr[4:]) {
		return nil, ErrAAL5Checksum
	}
	return append([]byte(nil), pdu[:n]...), nil
}

// MarshalCell serialises a cell to its 53-byte wire form: a simplified
// header of VPI, VCI and a PT byte whose low bit is the last-cell marker.
func MarshalCell(c Cell) []byte {
	buf := make([]byte, CellSize)
	buf[0] = c.VC.VPI
	binary.BigEndian.PutUint16(buf[1:], c.VC.VCI)
	if c.Last {
		buf[3] = 1
	}
	// buf[4] is the HEC slot; left zero in the simulation.
	copy(buf[cellHeaderSize:], c.Data[:])
	return buf
}

// UnmarshalCell parses a 53-byte wire cell.
func UnmarshalCell(buf []byte) (Cell, error) {
	var c Cell
	if len(buf) != CellSize {
		return c, fmt.Errorf("%w: %d bytes", ErrCellSize, len(buf))
	}
	c.VC.VPI = buf[0]
	c.VC.VCI = binary.BigEndian.Uint16(buf[1:])
	c.Last = buf[3]&1 != 0
	copy(c.Data[:], buf[cellHeaderSize:])
	return c, nil
}
