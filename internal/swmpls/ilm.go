package swmpls

import (
	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// ILMKind selects the lookup structure behind the forwarder's incoming
// label map. The default Go map is the RFC 3031 software forwarder the
// paper argues against; the two information-base kinds run the ILM
// through the paper's central store instead, so the same forwarder can
// reproduce the linear search's occupancy-dependent cost or demonstrate
// the indexed fast path that keeps it flat.
type ILMKind int

const (
	// ILMMap is a plain Go map (the original forwarder, default).
	ILMMap ILMKind = iota
	// ILMLinear backs the ILM with infobase.New() — the paper's
	// first-match linear scan, whose per-packet cost grows with table
	// occupancy exactly like the 3n+5 hardware search.
	ILMLinear
	// ILMIndexed backs the ILM with infobase.New(WithIndex(true)) — the
	// O(1) hash-indexed store, flat lookup cost at any occupancy.
	ILMIndexed
)

// String names the kind, matching the -infobase flag values of the
// benchmark commands.
func (k ILMKind) String() string {
	switch k {
	case ILMMap:
		return "map"
	case ILMLinear:
		return "linear"
	case ILMIndexed:
		return "indexed"
	default:
		return "ilm(?)"
	}
}

// Option configures a Forwarder built by New, following the
// repository-wide functional-option convention (see DESIGN.md).
type Option func(*fwdConfig)

type fwdConfig struct {
	ilm ILMKind
}

// WithILM selects the ILM backend.
func WithILM(kind ILMKind) Option {
	return func(c *fwdConfig) { c.ilm = kind }
}

// ilmTable is the incoming label map contract: exact-match label
// bindings with replace-on-insert semantics, cloneable for RCU
// snapshots.
type ilmTable interface {
	insert(in label.Label, n NHLFE) error
	remove(in label.Label)
	lookup(in label.Label) (NHLFE, bool)
	size() int
	clone() ilmTable
	kind() ILMKind
	entries() []ILMEntry
}

func newILMTable(kind ILMKind) ilmTable {
	switch kind {
	case ILMLinear, ILMIndexed:
		return newIBILM(kind)
	default:
		return make(mapILM)
	}
}

// mapILM is the original map-backed ILM.
type mapILM map[label.Label]NHLFE

func (m mapILM) insert(in label.Label, n NHLFE) error { m[in] = n; return nil }
func (m mapILM) remove(in label.Label)                { delete(m, in) }
func (m mapILM) lookup(in label.Label) (NHLFE, bool)  { n, ok := m[in]; return n, ok }
func (m mapILM) size() int                            { return len(m) }
func (m mapILM) kind() ILMKind                        { return ILMMap }

func (m mapILM) clone() ilmTable {
	c := make(mapILM, len(m))
	for in, n := range m {
		c[in] = n
	}
	return c
}

// ibILM routes ILM lookups through an information base: the store
// answers presence (and carries the search cost of its kind), while the
// full NHLFE — next hop, multi-label pushes, CoS — lives in a side map,
// the same split as the embedded device's software next-hop tables. The
// forwarder's ILM is depth-independent, so a single level (level 2)
// holds every binding; capacity is the paper's 1024 entries per level,
// and MapLabel surfaces ErrLevelFull beyond it.
type ibILM struct {
	k    ILMKind
	base infobase.Store
	meta map[label.Label]NHLFE
}

func newIBILM(kind ILMKind) *ibILM {
	return &ibILM{
		k:    kind,
		base: infobase.New(infobase.WithIndex(kind == ILMIndexed)),
		meta: make(map[label.Label]NHLFE),
	}
}

// insert replaces any existing binding for in: the stale pair is
// removed first so a first-match store cannot shadow the new one
// (the same care device.InstallFEC takes for make-before-break).
func (t *ibILM) insert(in label.Label, n NHLFE) error {
	key := infobase.Key(in)
	if _, exists := t.meta[in]; exists {
		t.base.Remove(infobase.Level2, key)
	}
	var out label.Label
	if len(n.PushLabels) > 0 {
		out = n.PushLabels[0]
	}
	if err := t.base.Write(infobase.Level2, infobase.Pair{Index: key, NewLabel: out, Op: n.Op}); err != nil {
		return err
	}
	t.meta[in] = n
	return nil
}

func (t *ibILM) remove(in label.Label) {
	t.base.Remove(infobase.Level2, infobase.Key(in))
	delete(t.meta, in)
}

func (t *ibILM) lookup(in label.Label) (NHLFE, bool) {
	if _, _, ok := t.base.Lookup(infobase.Level2, infobase.Key(in)); !ok {
		return NHLFE{}, false
	}
	return t.meta[in], true
}

func (t *ibILM) size() int     { return len(t.meta) }
func (t *ibILM) kind() ILMKind { return t.k }

// clone rebuilds a fresh store of the same kind. Insert order does not
// matter: insert never leaves duplicate keys, so first-match order is
// irrelevant across a rebuild.
func (t *ibILM) clone() ilmTable {
	c := newIBILM(t.k)
	for in, n := range t.meta {
		// Writes cannot fail here: every binding fitted the original
		// store, and the clone has the same capacity.
		_ = c.insert(in, n)
	}
	return c
}
