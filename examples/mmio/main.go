// MMIO: the hardware/software boundary as embedded firmware sees it —
// the label stack modifier behind a memory-mapped register file, driven
// with nothing but 32-bit bus reads and writes. The driver programs a
// swap rule, loads a packet's label, runs the update by setting the go
// bit and polling the sticky done flag, and reads the modified stack
// back, paying bus cycles for every transaction.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/mmio"
)

// loggingBus prints every transaction, like a bus analyzer.
type loggingBus struct{ inner mmio.Bus }

var regNames = map[uint32]string{
	mmio.RegCtrl: "CTRL", mmio.RegStatus: "STATUS", mmio.RegDataIn: "DATA_IN",
	mmio.RegPacketID: "PACKET_ID", mmio.RegOldLabel: "OLD_LABEL",
	mmio.RegNewLabel: "NEW_LABEL", mmio.RegOperationIn: "OPERATION_IN",
	mmio.RegLevel: "LEVEL", mmio.RegLabelLookup: "LABEL_LOOKUP",
	mmio.RegTTLIn: "TTL_IN", mmio.RegCoSIn: "COS_IN",
	mmio.RegLabelOut: "LABEL_OUT", mmio.RegOperationOu: "OPERATION_OUT",
	mmio.RegStackTop: "STACK_TOP", mmio.RegStackSize: "STACK_SIZE",
	mmio.RegCycleCount: "CYCLES", mmio.RegIndexOut: "INDEX_OUT",
}

func (b *loggingBus) Read(addr uint32) (uint32, error) {
	v, err := b.inner.Read(addr)
	if addr != mmio.RegStatus || v != 0 { // compress the poll spam
		fmt.Printf("  rd %-13s -> %#x\n", regNames[addr], v)
	}
	return v, err
}

func (b *loggingBus) Write(addr uint32, v uint32) error {
	fmt.Printf("  wr %-13s <- %#x\n", regNames[addr], v)
	return b.inner.Write(addr, v)
}

func main() {
	hw := lsm.NewWith(lsm.Options{})
	hw.RtrType.Set(uint64(lsm.LSR))
	periph := mmio.NewPeripheral(hw, 1)
	drv := mmio.NewDriver(&loggingBus{inner: periph})

	fmt.Println("== program a swap rule (42 -> 777) over the bus ==")
	check(drv.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: label.OpSwap}))

	fmt.Println("\n== load the packet's label stack ==")
	check(drv.Push(label.Entry{Label: 42, CoS: 5, TTL: 64}))

	fmt.Println("\n== run the update ==")
	discarded, err := drv.Update(0, 0, 0)
	check(err)

	fmt.Println("\n== read the result back ==")
	st, err := drv.Stack()
	check(err)
	top, _ := st.Top()
	cycles, err := periph.Read(mmio.RegCycleCount)
	check(err)
	fmt.Printf("\ndiscarded=%v, outgoing top entry: %v\n", discarded, top)
	fmt.Printf("total bus+core cycles so far: %d (%.2f us at 50 MHz)\n",
		cycles, lsm.DefaultClock.Seconds(int(cycles))*1e6)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
