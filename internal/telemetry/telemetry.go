// Package telemetry is the observability layer of the reproduction: a
// unified drop-reason taxonomy with lock-free counters, fixed-bucket
// histograms that merge on snapshot, a bounded label-operation trace
// ring, and a Prometheus-text/expvar export surface.
//
// The taxonomy follows the paper's LSM control unit, which discards a
// packet for exactly three reasons — information-base lookup miss, TTL
// expiry, and an inconsistent stored operation (Figures 8-11) — plus the
// two outcomes that only exist outside the modifier: a full admission
// queue and a missing route for an unlabelled packet. Every layer
// (swmpls, dataplane, router, lsm, netsim) maps its native reason onto
// this one enum, so a scrape of the exporter tells the operator *why*
// packets died regardless of which engine dropped them.
//
// The package depends only on the standard library so every other layer
// can import it without cycles; the reason-mapping helpers therefore
// live with the packages that own the native enums (swmpls.DropReason
// and lsm.DiscardReason gain Telemetry() methods).
package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Reason classifies why a packet was dropped, across every layer.
type Reason uint8

// The unified drop reasons. The first three are the paper's discard
// transitions; the last two arise in the queueing and routing layers.
const (
	// ReasonLookupMiss: no matching information-base / ILM entry for the
	// top label (the paper's "no match: discard" transition).
	ReasonLookupMiss Reason = iota
	// ReasonTTLExpired: the TTL reached zero after the per-hop decrement.
	ReasonTTLExpired
	// ReasonInconsistentOp: the stored operation is impossible in the
	// current stack state — e.g. a push that would exceed the stack's
	// register file (label.MaxDepth).
	ReasonInconsistentOp
	// ReasonQueueOverfull: an admission queue (qos.Scheduler) rejected
	// the packet.
	ReasonQueueOverfull
	// ReasonNoRoute: an unlabelled packet had no FEC binding and no IP
	// route, or a forwarding decision named a next hop with no link.
	ReasonNoRoute
	// ReasonWireDecode: a transport link received bytes that do not
	// decode to a packet — corruption on the wire, a truncated
	// datagram, or a foreign protocol hitting the port.
	ReasonWireDecode
	// ReasonLabelSpoof: the ingress guard rejected a labelled packet
	// whose top label was never advertised to the sending neighbour —
	// label spoofing, or stale state on a misbehaving peer.
	ReasonLabelSpoof
	// ReasonTTLSecurity: the ingress guard's GTSM-style check rejected
	// a packet arriving with a TTL below the link's configured minimum.
	ReasonTTLSecurity
	// ReasonRateLimit: the ingress guard's token bucket shed the packet
	// under overload. Shedding is CoS-aware: best-effort drains first,
	// control traffic is never charged.
	ReasonRateLimit
	// ReasonQuarantine: the packet arrived from a peer whose circuit
	// breaker is open after a burst of malformed datagrams; it was
	// discarded before (or instead of) full decode.
	ReasonQuarantine

	// NumReasons is the number of distinct reasons.
	NumReasons = 10
)

// Valid reports whether r names a defined reason.
func (r Reason) Valid() bool { return r < NumReasons }

// String names the reason; the same strings appear as the exporter's
// reason label values.
func (r Reason) String() string {
	switch r {
	case ReasonLookupMiss:
		return "lookup-miss"
	case ReasonTTLExpired:
		return "ttl-expired"
	case ReasonInconsistentOp:
		return "inconsistent-op"
	case ReasonQueueOverfull:
		return "queue-overfull"
	case ReasonNoRoute:
		return "no-route"
	case ReasonWireDecode:
		return "wire-decode"
	case ReasonLabelSpoof:
		return "label-spoof"
	case ReasonTTLSecurity:
		return "ttl-security"
	case ReasonRateLimit:
		return "rate-limit"
	case ReasonQuarantine:
		return "quarantine"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// DropCounters is a fixed set of per-reason event counters. All methods
// are safe for concurrent use and lock-free, so the counters can sit
// directly on the forwarding fast path and be scraped while workers run.
// The zero value is ready to use.
type DropCounters struct {
	counts [NumReasons]atomic.Uint64
}

// Inc adds one drop for the reason. Out-of-range reasons are ignored
// rather than corrupting a neighbouring counter.
func (c *DropCounters) Inc(r Reason) { c.Add(r, 1) }

// Add adds n drops for the reason.
func (c *DropCounters) Add(r Reason, n uint64) {
	if r.Valid() {
		c.counts[r].Add(n)
	}
}

// Get returns the count for one reason.
func (c *DropCounters) Get(r Reason) uint64 {
	if !r.Valid() {
		return 0
	}
	return c.counts[r].Load()
}

// Total returns the sum over all reasons.
func (c *DropCounters) Total() uint64 {
	var t uint64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// Snapshot returns a consistent-enough copy of all counters (each
// counter is read atomically; the set is read while writers may run,
// like every other snapshot in this codebase).
func (c *DropCounters) Snapshot() [NumReasons]uint64 {
	var out [NumReasons]uint64
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}

// Merge folds o's counts into c.
func (c *DropCounters) Merge(o *DropCounters) {
	if o == nil {
		return
	}
	for i := range c.counts {
		c.counts[i].Add(o.counts[i].Load())
	}
}

// String renders every reason, zero or not, in enum order:
// "drops{lookup-miss=3 ttl-expired=0 ...}".
func (c *DropCounters) String() string {
	s := "drops{"
	for r := Reason(0); r < NumReasons; r++ {
		if r > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%d", r, c.Get(r))
	}
	return s + "}"
}

// Sink bundles the observability hooks a forwarding engine accepts: the
// per-reason drop counters to feed and the trace ring to record label
// operations in, under the given node name. It is the single argument
// of the unified Plane API's SetTelemetry, replacing the parallel
// SetDropCounters/SetTrace method pairs that every engine used to grow
// separately. Nil fields disable the corresponding hook; the zero Sink
// detaches everything.
type Sink struct {
	Drops *DropCounters
	Trace *Ring
	Node  string
}
