package lsm

import (
	"embeddedmpls/internal/rtl"
)

// camBank is a content-addressable shadow of one information base level's
// index memory: it snoops the level's write port and answers "which
// address holds this key?" combinationally, the way a hardware CAM's
// parallel comparators would. It implements the associative-search
// ablation (experiment X3): the paper's linear search costs 3n+5 cycles,
// a CAM makes the lookup constant-time.
//
// Hit resolution on duplicate keys follows the linear search: the lowest
// address (first written) wins.
type camBank struct {
	// snooped write port
	wen   *rtl.Signal
	waddr *rtl.Signal
	wdata *rtl.Signal
	clr   *rtl.Signal

	// associative outputs, driven by a Comb the constructor registers
	key  *rtl.Signal
	hit  *rtl.Signal
	addr *rtl.Signal

	words []uint64
	valid []bool

	doWrite, doClear bool
	pendAddr         uint64
	pendData         uint64
}

// newCAMBank attaches a CAM shadow to a write port. count bounds the
// number of valid entries considered (the level's write counter), so a
// reset that clears the counter also invalidates the CAM view.
func newCAMBank(sim *rtl.Simulator, name string, size int, wen, waddr, wdata, clr, key, count *rtl.Signal) *camBank {
	c := &camBank{
		wen: wen, waddr: waddr, wdata: wdata, clr: clr, key: key,
		hit:   sim.Signal(name+"_hit", 1),
		addr:  sim.Signal(name+"_addr", indexBits),
		words: make([]uint64, size),
		valid: make([]bool, size),
	}
	sim.Add(c)
	sim.Comb(func() {
		k := key.Get()
		n := count.Get()
		for i, w := range c.words {
			if uint64(i) >= n {
				break
			}
			if c.valid[i] && w == k {
				c.hit.SetBool(true)
				c.addr.Set(uint64(i))
				return
			}
		}
		c.hit.SetBool(false)
		c.addr.Set(0)
	})
	return c
}

// Latch snoops the write port.
func (c *camBank) Latch() {
	c.doClear = c.clr.Bool()
	c.doWrite = c.wen.Bool()
	if c.doWrite {
		c.pendAddr = c.waddr.Get() % uint64(len(c.words))
		c.pendData = c.wdata.Get()
	}
}

// Commit applies the snooped write.
func (c *camBank) Commit() {
	if c.doClear {
		for i := range c.valid {
			c.valid[i] = false
		}
		return
	}
	if c.doWrite {
		c.words[c.pendAddr] = c.pendData
		c.valid[c.pendAddr] = true
	}
}
