package qos

import (
	"fmt"
	"math/rand"

	"embeddedmpls/internal/packet"
)

// REDParams configures random early detection for one profile: below
// MinTh (average queue length, packets) everything is accepted; above
// MaxTh everything is dropped; in between the drop probability ramps
// linearly up to MaxP. The classic congestion-avoidance discard
// algorithm the paper's CoS bits are meant to select between.
type REDParams struct {
	MinTh int
	MaxTh int
	MaxP  float64
}

// Valid checks the parameter ranges.
func (p REDParams) Valid() error {
	if p.MinTh < 0 || p.MaxTh <= p.MinTh {
		return fmt.Errorf("qos: RED thresholds min=%d max=%d", p.MinTh, p.MaxTh)
	}
	if p.MaxP <= 0 || p.MaxP > 1 {
		return fmt.Errorf("qos: RED max probability %g", p.MaxP)
	}
	return nil
}

// redWeight is the EWMA weight for the average queue length (the
// conventional 0.002 reacts too slowly for short simulations; 1/16 is a
// common hardware choice).
const redWeight = 1.0 / 16

// red is a single tail queue with RED admission; with per-class profiles
// it becomes WRED (weighted RED), where the CoS bits pick the profile —
// low classes are discarded earlier than high ones as the queue builds.
type red struct {
	q        []*packet.Packet
	cap      int
	profiles [NumClasses]REDParams
	avg      float64
	rng      *rand.Rand
	dropped  uint64
}

// NewRED returns a RED queue applying one profile to every class.
func NewRED(capacity int, params REDParams, seed int64) Scheduler {
	var profiles [NumClasses]REDParams
	for i := range profiles {
		profiles[i] = params
	}
	return NewWRED(capacity, profiles, seed)
}

// NewWRED returns a weighted-RED queue with a drop profile per class.
// The queue itself is FIFO; differentiation happens at admission.
func NewWRED(capacity int, profiles [NumClasses]REDParams, seed int64) Scheduler {
	if capacity <= 0 {
		panic(fmt.Sprintf("qos: WRED capacity %d", capacity))
	}
	for cls, p := range profiles {
		if err := p.Valid(); err != nil {
			panic(fmt.Sprintf("class %d: %v", cls, err))
		}
	}
	return &red{cap: capacity, profiles: profiles, rng: rand.New(rand.NewSource(seed))}
}

func (r *red) Enqueue(p *packet.Packet) bool {
	r.avg = (1-redWeight)*r.avg + redWeight*float64(len(r.q))
	prof := r.profiles[ClassOf(p)]
	drop := false
	switch {
	case len(r.q) >= r.cap:
		drop = true // hard tail drop
	case r.avg < float64(prof.MinTh):
	case r.avg >= float64(prof.MaxTh):
		drop = true
	default:
		pd := prof.MaxP * (r.avg - float64(prof.MinTh)) / float64(prof.MaxTh-prof.MinTh)
		drop = r.rng.Float64() < pd
	}
	if drop {
		r.dropped++
		return false
	}
	r.q = append(r.q, p)
	return true
}

func (r *red) Dequeue() (*packet.Packet, bool) {
	if len(r.q) == 0 {
		return nil, false
	}
	p := r.q[0]
	r.q = r.q[1:]
	if len(r.q) == 0 {
		r.q = nil
	}
	return p, true
}

func (r *red) Len() int        { return len(r.q) }
func (r *red) Dropped() uint64 { return r.dropped }

// Full reports hard-full only; RED's probabilistic early drops are not
// predicted (they are the algorithm's point).
func (r *red) Full(*packet.Packet) bool { return len(r.q) >= r.cap }
