package mgmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net"
	"os"
	"path/filepath"
	"testing"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/signaling"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenServer serves every management method with fixed, fully
// deterministic results shaped by the real result types, so the
// fixtures pin both the envelope and the per-method payload schema on
// the wire. A handler change that alters any JSON shape fails here
// before it breaks a fleet controller.
func goldenServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(nil)
	s.Register(StatusMethod, func(json.RawMessage) (any, error) {
		return StatusResult{
			Node: "in", SimTime: 1.5,
			Sessions: 2, SessionsUp: 2,
			LSPs: 3, Ingress: 2, Established: 2,
			Drops:      map[string]uint64{"ttl_expired": 4},
			GuardDrops: map[string]uint64{"guard_rate": 17},
			Methods:    []string{"lsp.list", "node.status"},
		}, nil
	})
	s.Register("lsp.provision", func(json.RawMessage) (any, error) {
		return ProvisionResult{ID: "l9", Signalled: true}, nil
	})
	s.Register("lsp.teardown", func(json.RawMessage) (any, error) {
		return map[string]any{"id": "l9", "released": true}, nil
	})
	s.Register("lsp.list", func(json.RawMessage) (any, error) {
		return LSPListResult{Node: "in", LSPs: []signaling.LSPInfo{{
			ID: "l9", Gen: 2, Role: "ingress", FEC: "10.9.0.1/32",
			Route: []string{"in", "core", "out"}, Established: true,
			OutLabel: 1037, Downstream: "core", Bandwidth: 1e6,
		}}}, nil
	})
	s.Register("session.list", func(json.RawMessage) (any, error) {
		return SessionListResult{Node: "in", Sessions: []signaling.SessionInfo{
			{Peer: "core", State: "operational", Up: true},
		}}, nil
	})
	s.Register("infobase.get", func(json.RawMessage) (any, error) {
		return InfobaseResult{Node: "in", Levels: []InfobaseLevel{
			{Level: 1, Entries: []InfobaseEntry{{
				FEC: "10.9.0.1/32", NextHop: "core", Op: "push", Labels: []uint32{1037}, CoS: 5,
			}}},
			{Level: 2, Entries: []InfobaseEntry{{
				InLabel: 1044, NextHop: "core", Op: "swap", Labels: []uint32{1037},
			}}},
		}}, nil
	})
	s.Register("telemetry.scrape", func(json.RawMessage) (any, error) {
		return ScrapeResult{Text: "# TYPE mpls_node_drops_total counter\nmpls_node_drops_total{node=\"in\",reason=\"ttl_expired\"} 4\n"}, nil
	})
	s.Register("guard.set", func(json.RawMessage) (any, error) {
		return GuardSetResult{Node: "in", Guard: &config.GuardSection{RatePPS: 500, Burst: 64}}, nil
	})
	s.Register("config.reload", func(json.RawMessage) (any, error) {
		return ReloadResult{Node: "in", Path: "scenario.json", Report: &config.ReloadReport{
			AddedLSPs:  []string{"l2"},
			AddedFlows: []uint16{2},
			Skipped:    []string{"links: topology changes need a restart"},
		}}, nil
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestGoldenFixtures replays one canonical request per method against
// the golden server and compares the exact wire bytes of both
// directions with testdata. Regenerate with: go test ./internal/mgmt
// -run Golden -update
func TestGoldenFixtures(t *testing.T) {
	requests := []struct {
		name   string
		method string
		params any
	}{
		{"node_status", StatusMethod, nil},
		{"lsp_provision", "lsp.provision", config.LSP{
			ID: "l9", Dst: "10.9.0.1", Path: []string{"in", "core", "out"}, BandwidthMbps: 1, CoS: 5,
		}},
		{"lsp_teardown", "lsp.teardown", TeardownParams{ID: "l9"}},
		{"lsp_list", "lsp.list", nil},
		{"session_list", "session.list", nil},
		{"infobase_get", "infobase.get", InfobaseParams{}},
		{"telemetry_scrape", "telemetry.scrape", nil},
		{"guard_set", "guard.set", GuardSetParams{Spec: "rate_pps=500,burst=64"}},
		{"config_reload", "config.reload", ReloadParams{Path: "scenario.json"}},
	}
	s := goldenServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewScanner(conn)
	rd.Buffer(make([]byte, 4096), maxLine)

	for i, req := range requests {
		t.Run(req.name, func(t *testing.T) {
			reqPath := filepath.Join("testdata", req.name+".request.json")
			respPath := filepath.Join("testdata", req.name+".response.json")

			var line []byte
			if *update {
				env := Request{V: Version, ID: uint64(i + 1), Method: req.method}
				if req.params != nil {
					raw, err := json.Marshal(req.params)
					if err != nil {
						t.Fatal(err)
					}
					env.Params = raw
				}
				line, err = json.Marshal(&env)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(reqPath, append(line, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				line, err = os.ReadFile(reqPath)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				line = bytes.TrimRight(line, "\n")
			}

			if _, err := conn.Write(append(line, '\n')); err != nil {
				t.Fatal(err)
			}
			if !rd.Scan() {
				t.Fatalf("no response: %v", rd.Err())
			}
			got := append([]byte{}, rd.Bytes()...)

			if *update {
				if err := os.WriteFile(respPath, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(respPath)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, bytes.TrimRight(want, "\n")) {
				t.Errorf("wire response drifted from fixture.\ngot:  %s\nwant: %s", got, want)
			}
		})
	}
}
