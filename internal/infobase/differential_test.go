package infobase

import (
	"fmt"
	"math/rand"
	"testing"

	"embeddedmpls/internal/label"
)

// The differential suite drives the linear Behavioral model and the
// Indexed fast path with identical operation sequences and demands
// identical answers — the proof that swapping the 3n+5 scan for the
// hash index changes cost, not semantics. Duplicate keys and deletes
// are the interesting cases: the first-written pair must win, and
// removing it must re-expose the next duplicate in insertion order.

// diffStep applies one operation to both stores and fails the test on
// any divergence.
func diffStep(t *testing.T, step int, lin, idx Store, op int, lv Level, p Pair) {
	t.Helper()
	switch op {
	case 0: // write
		errL := lin.Write(lv, p)
		errX := idx.Write(lv, p)
		if (errL == nil) != (errX == nil) {
			t.Fatalf("step %d: Write(%d, %+v) diverged: linear=%v indexed=%v", step, lv, p, errL, errX)
		}
	case 1: // remove
		remL := lin.Remove(lv, p.Index)
		remX := idx.Remove(lv, p.Index)
		if remL != remX {
			t.Fatalf("step %d: Remove(%d, %d) diverged: linear=%v indexed=%v", step, lv, p.Index, remL, remX)
		}
	case 2: // clear
		lin.Clear()
		idx.Clear()
	}
	lblL, opL, okL := lin.Lookup(lv, p.Index)
	lblX, opX, okX := idx.Lookup(lv, p.Index)
	if lblL != lblX || opL != opX || okL != okX {
		t.Fatalf("step %d: Lookup(%d, %d) diverged: linear=(%d,%v,%v) indexed=(%d,%v,%v)",
			step, lv, p.Index, lblL, opL, okL, lblX, opX, okX)
	}
	if cl, cx := lin.Count(lv), idx.Count(lv); cl != cx {
		t.Fatalf("step %d: Count(%d) diverged: linear=%d indexed=%d", step, lv, cl, cx)
	}
}

// diffEntries checks the full storage order of every level agrees.
func diffEntries(t *testing.T, lin, idx Store) {
	t.Helper()
	for lv := Level1; int(lv) <= lin.Levels(); lv++ {
		el, ex := lin.Entries(lv), idx.Entries(lv)
		if len(el) != len(ex) {
			t.Fatalf("level %d: entry counts diverged: linear=%d indexed=%d", lv, len(el), len(ex))
		}
		for i := range el {
			if el[i] != ex[i] {
				t.Fatalf("level %d entry %d: linear=%+v indexed=%+v", lv, i, el[i], ex[i])
			}
		}
	}
}

func TestIndexedDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// A small capacity makes the full/duplicate/delete corners
			// frequent instead of theoretical.
			lin := New(WithCapacity(32))
			idx := New(WithCapacity(32), WithIndex(true))
			for step := 0; step < 4000; step++ {
				lv := Level(1 + rng.Intn(NumLevels))
				// A tight key space forces duplicates.
				p := Pair{
					Index:    Key(rng.Intn(12)),
					NewLabel: label.Label(rng.Intn(1 << 20)),
					Op:       label.Op(rng.Intn(4)),
				}
				op := rng.Intn(5) // writes twice as likely as removes; clears rare
				switch {
				case op < 2:
					op = 0
				case op < 4:
					op = 1
				default:
					op = 2
				}
				if op == 2 && rng.Intn(10) != 0 {
					op = 0
				}
				diffStep(t, step, lin, idx, op, lv, p)
			}
			diffEntries(t, lin, idx)
		})
	}
}

// TestIndexedDuplicateDeleteChain pins the trickiest corner explicitly:
// three duplicates of one key, removed one by one, must surface in
// insertion order on both stores.
func TestIndexedDuplicateDeleteChain(t *testing.T) {
	lin := New()
	idx := New(WithIndex(true))
	writes := []Pair{
		{Index: 7, NewLabel: 100, Op: label.OpSwap},
		{Index: 9, NewLabel: 900, Op: label.OpPop},
		{Index: 7, NewLabel: 200, Op: label.OpPop},
		{Index: 7, NewLabel: 300, Op: label.OpPush},
	}
	for _, p := range writes {
		if err := lin.Write(Level2, p); err != nil {
			t.Fatal(err)
		}
		if err := idx.Write(Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []label.Label{100, 200, 300} {
		for name, s := range map[string]Store{"linear": lin, "indexed": idx} {
			lbl, _, ok := s.Lookup(Level2, 7)
			if !ok || lbl != want {
				t.Fatalf("%s: lookup 7 = (%d, %v), want %d", name, lbl, ok, want)
			}
			if !s.Remove(Level2, 7) {
				t.Fatalf("%s: remove failed with duplicates left", name)
			}
		}
	}
	for name, s := range map[string]Store{"linear": lin, "indexed": idx} {
		if _, _, ok := s.Lookup(Level2, 7); ok {
			t.Errorf("%s: key 7 still found after removing all duplicates", name)
		}
		if lbl, _, ok := s.Lookup(Level2, 9); !ok || lbl != 900 {
			t.Errorf("%s: unrelated key 9 disturbed: (%d, %v)", name, lbl, ok)
		}
	}
}

// FuzzIndexedDifferential feeds arbitrary byte streams as operation
// scripts to both stores. Each 4-byte group decodes one operation.
func FuzzIndexedDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{0x10, 7, 0, 1, 0x50, 7, 0, 2, 0x90, 7, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		lin := New(WithCapacity(16))
		idx := New(WithCapacity(16), WithIndex(true))
		for i := 0; i+4 <= len(script); i += 4 {
			ctl, k, lo, hi := script[i], script[i+1], script[i+2], script[i+3]
			lv := Level(1 + int(ctl&0x03)%NumLevels)
			op := int(ctl>>6) % 3
			p := Pair{
				Index:    Key(k % 16),
				NewLabel: label.Label(uint32(lo) | uint32(hi)<<8),
				Op:       label.Op(ctl >> 2 & 0x03),
			}
			diffStep(t, i/4, lin, idx, op, lv, p)
		}
		diffEntries(t, lin, idx)
	})
}
