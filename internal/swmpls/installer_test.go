package swmpls

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// TestInstallerAliases covers the ldp.Installer-shaped surface directly.
func TestInstallerAliases(t *testing.T) {
	f := New()
	dst := packet.AddrFrom(10, 0, 0, 1)
	n := NHLFE{NextHop: "n", Op: label.OpPush, PushLabels: []label.Label{100}}
	if err := f.InstallFEC(dst, 32, n); err != nil {
		t.Fatal(err)
	}
	if err := f.InstallILM(100, NHLFE{Op: label.OpPop}); err != nil {
		t.Fatal(err)
	}
	got, ok := f.LookupILM(100)
	if !ok || got.Op != label.OpPop {
		t.Errorf("LookupILM = %+v, %v", got, ok)
	}
	if _, ok := f.LookupILM(999); ok {
		t.Error("LookupILM found a phantom label")
	}
	f.RemoveILM(100)
	if _, ok := f.LookupILM(100); ok {
		t.Error("RemoveILM left the binding")
	}
	f.RemoveFEC(dst, 32)
	p := packet.New(1, dst, 64, nil)
	if res := f.Forward(p); res.Drop != DropNoRoute {
		t.Errorf("after RemoveFEC: %+v", res)
	}
}

func TestEnumStrings(t *testing.T) {
	for v, want := range map[Action]string{Forward: "forward", Deliver: "deliver", Drop: "drop", Action(9): "action(9)"} {
		if got := v.String(); got != want {
			t.Errorf("Action(%d) = %q, want %q", v, got, want)
		}
	}
	wantDrop := map[DropReason]string{
		DropNone: "none", DropNoRoute: "no-route", DropNoLabel: "no-label",
		DropTTLExpired: "ttl-expired", DropStackOverflow: "stack-overflow", DropReason(9): "drop(9)",
	}
	for v, want := range wantDrop {
		if got := v.String(); got != want {
			t.Errorf("DropReason(%d) = %q, want %q", v, got, want)
		}
	}
}
