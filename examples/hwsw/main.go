// HWSW: the hardware/software comparison the paper's premise rests on —
// "most existing MPLS solutions are entirely software based. MPLS
// performance can be enhanced by executing core tasks in hardware."
//
// The example computes per-packet label operation cost and the implied
// forwarding rate for the embedded device (from its verified cycle model
// at 50 MHz) as the information base grows, and measures the actual Go
// software forwarder on this machine for comparison. It also shows where
// the hardware's linear search loses to the software hash map.
package main

import (
	"fmt"
	"time"

	"embeddedmpls/internal/device"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

func main() {
	fmt.Println("Per-packet swap cost vs information base size")
	fmt.Println("hardware: cycle model at 50 MHz; software: measured on this machine")
	fmt.Println()
	fmt.Printf("%8s  %14s  %14s  %14s  %14s\n",
		"entries", "hw best (ns)", "hw worst (ns)", "hw worst kpps", "sw (ns)")

	for _, n := range []int{1, 16, 64, 256, 1024} {
		// Hardware: load one entry (3 cycles) + search at position 1 or n
		// + swap tail.
		best := lsm.CyclesUserPush + lsm.SearchCycles(1) + lsm.CyclesSwapFromIB
		worst := lsm.CyclesUserPush + lsm.SearchCycles(n) + lsm.CyclesSwapFromIB
		bestNs := lsm.DefaultClock.Nanos(best)
		worstNs := lsm.DefaultClock.Nanos(worst)
		kpps := 1e9 / worstNs / 1e3

		swNs := measureSoftwareSwap(n)

		fmt.Printf("%8d  %14.0f  %14.0f  %14.1f  %14.1f\n", n, bestNs, worstNs, kpps, swNs)
	}

	fmt.Println()
	fmt.Println("The hardware wins on small tables (its swap is a handful of cycles)")
	fmt.Println("but its linear search makes worst-case cost grow 3 cycles per entry,")
	fmt.Println("while the software ILM is a hash map — the crossover is the case for")
	fmt.Println("the paper's future work on associative (CAM) lookup hardware.")
	fmt.Println()
	sanityCheckDevice()
}

// measureSoftwareSwap times the software forwarder's transit swap with n
// installed labels, returning ns per packet.
func measureSoftwareSwap(n int) float64 {
	f := swmpls.New()
	for i := 0; i < n; i++ {
		in := label.Label(16 + i)
		if err := f.MapLabel(in, swmpls.NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{label.Label(100000 + i)}}); err != nil {
			panic(err)
		}
	}
	target := label.Label(16 + n - 1) // the hardware's worst-case entry
	p := packet.New(1, 2, 64, nil)
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		p.Stack.Reset()
		_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
		if res := f.Forward(p); res.Action != swmpls.Forward {
			panic("software swap failed")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// sanityCheckDevice runs one packet through a real device so the printed
// model numbers are backed by an executed path.
func sanityCheckDevice() {
	d := device.New(lsm.LSR, lsm.DefaultClock)
	if err := d.InstallILM(42, swmpls.NHLFE{NextHop: "n", Op: label.OpSwap, PushLabels: []label.Label{99}}); err != nil {
		panic(err)
	}
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 42, TTL: 64})
	res, cycles := d.Process(p)
	fmt.Printf("sanity: device swap executed in %d cycles (%.0f ns) -> %v\n",
		cycles, d.Clock().Nanos(cycles), res.Action)
}
