package resilience

import (
	"math/rand"

	"embeddedmpls/internal/telemetry"
)

// Backoff parameterises exponential-backoff-with-jitter retries.
type Backoff struct {
	// Base is the delay before the first retry (seconds). <=0: 0.01.
	Base float64
	// Factor multiplies the delay after each failure. <=1: 2.
	Factor float64
	// Max caps the (pre-jitter) delay. <=0: 1.
	Max float64
	// Jitter is the fraction of each delay that is randomised: the
	// actual delay is uniform in [d*(1-J/2), d*(1+J/2)). <0: 0.5 is
	// used; 0 disables jitter (set a negative value to get the default).
	Jitter float64
	// MaxAttempts bounds total attempts including the first. <=0: 5.
	MaxAttempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 0.01
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Max <= 0 {
		b.Max = 1
	}
	if b.Jitter < 0 {
		b.Jitter = 0.5
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 5
	}
	return b
}

// Retryer runs operations with exponential backoff on an injected
// clock: no real sleeps, and a seeded jitter source, so retry schedules
// are deterministic.
type Retryer struct {
	clock    Clock
	b        Backoff
	rng      *rand.Rand
	events   *telemetry.EventCounters
	timeline *Timeline
}

// NewRetryer builds a retryer. events and timeline are optional; when
// present, retries count retry_attempt and exhaustion retry_exhausted.
func NewRetryer(clock Clock, b Backoff, seed int64, events *telemetry.EventCounters, timeline *Timeline) *Retryer {
	return &Retryer{
		clock: clock, b: b.withDefaults(), rng: rand.New(rand.NewSource(seed)),
		events: events, timeline: timeline,
	}
}

// Do runs op immediately; on failure it schedules retries with
// exponential backoff and jitter until op succeeds or MaxAttempts is
// exhausted, then calls onDone with nil or the final error. onDone may
// be nil.
func (r *Retryer) Do(name string, op func() error, onDone func(error)) {
	r.attempt(name, op, onDone, 1, r.b.Base)
}

func (r *Retryer) attempt(name string, op func() error, onDone func(error), n int, delay float64) {
	err := op()
	if err == nil {
		if n > 1 && r.timeline != nil {
			r.timeline.Add(r.clock.Now(), "%s: succeeded on attempt %d", name, n)
		}
		if onDone != nil {
			onDone(nil)
		}
		return
	}
	if n >= r.b.MaxAttempts {
		if r.events != nil {
			r.events.Inc(telemetry.EventRetryExhausted)
		}
		if r.timeline != nil {
			r.timeline.Add(r.clock.Now(), "%s: gave up after %d attempts: %v", name, n, err)
		}
		if onDone != nil {
			onDone(err)
		}
		return
	}
	wait := delay
	if r.b.Jitter > 0 {
		wait *= 1 - r.b.Jitter/2 + r.b.Jitter*r.rng.Float64()
	}
	if r.timeline != nil {
		r.timeline.Add(r.clock.Now(), "%s: attempt %d failed (%v), retrying in %.4fs", name, n, err, wait)
	}
	next := delay * r.b.Factor
	if next > r.b.Max {
		next = r.b.Max
	}
	r.clock.Schedule(wait, func() {
		if r.events != nil {
			r.events.Inc(telemetry.EventRetryAttempt)
		}
		r.attempt(name, op, onDone, n+1, next)
	})
}
