package telemetry

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeEvents feeds arbitrary bytes to the trace decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same events (the codec is its own inverse on its image).
func FuzzDecodeEvents(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendEncoded(nil, TraceEvent{Seq: 1, Node: "a", Op: TracePush, Level: 1, Label: 16}))
	f.Add(AppendEncoded(AppendEncoded(nil,
		TraceEvent{Seq: 9, Node: "lsr", Op: TraceDiscard, Level: 3, Label: 1 << 19, Reason: ReasonTTLExpired}),
		TraceEvent{Seq: 10, Node: "", Op: TracePop}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeEvents(data)
		if err != nil {
			return
		}
		var enc []byte
		for _, ev := range evs {
			enc = append(enc, AppendEncoded(nil, ev)...)
		}
		again, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded events failed: %v", err)
		}
		if len(evs) != 0 && !reflect.DeepEqual(evs, again) {
			t.Fatalf("codec not stable:\n first %+v\nsecond %+v", evs, again)
		}
	})
}

// FuzzRingRoundTrip drives a small ring from fuzz input — forcing
// wraparound — and checks Encode/DecodeEvents reproduce Events()
// exactly.
func FuzzRingRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(1), []byte{0xff, 0x00, 0x7f})
	f.Add(uint8(16), []byte(nil))
	f.Fuzz(func(t *testing.T, capSeed uint8, data []byte) {
		r := NewRing(int(capSeed%8) + 1)
		for i := 0; i+2 < len(data); i += 3 {
			op := TraceOp(data[i]%4) + 1 // push/pop/swap/discard
			ev := TraceEvent{
				Node:  string(rune('a' + data[i]%26)),
				Op:    op,
				Level: data[i+1] % 4,
				Label: uint32(data[i+2]),
			}
			if op == TraceDiscard {
				ev.Reason = Reason(data[i+1] % NumReasons)
			}
			r.Record(ev)
		}
		want := r.Events()
		got, err := DecodeEvents(r.Encode())
		if err != nil {
			t.Fatalf("decode of ring encoding failed: %v", err)
		}
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("decoded %d events from empty ring", len(got))
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ring round trip:\n got %+v\nwant %+v", got, want)
		}
	})
}

// FuzzDumpNeverFails complements the codec fuzzers: whatever ends up in
// a ring, the text dump must render without error.
func FuzzDumpNeverFails(f *testing.F) {
	f.Add([]byte("seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRing(4)
		for i, b := range data {
			r.Record(TraceEvent{Node: string(data[:i%4]), Op: TraceOp(b % NumTraceOps), Label: uint32(b)})
		}
		var buf bytes.Buffer
		if err := r.Dump(&buf); err != nil {
			t.Fatal(err)
		}
	})
}
