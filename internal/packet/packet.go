// Package packet models the packets that traverse an MPLS network: a
// minimal IPv4-style header, an optional MPLS shim (the label stack
// between the layer-2 header and the network-layer payload, per RFC
// 3032), and an opaque payload. It provides the wire encoding both packet
// processing interfaces of the embedded architecture operate on: the
// ingress interface extracts the label stack and packet identifier, the
// egress interface splices the modified stack back in.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"embeddedmpls/internal/label"
)

// Addr is a 32-bit network address (an IPv4 address).
type Addr uint32

// AddrFrom builds an address from dotted-quad components.
func AddrFrom(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Header is the network-layer header carried by every packet. Only the
// fields the MPLS data plane touches are modelled.
type Header struct {
	Src Addr
	Dst Addr
	TTL uint8
	// Proto is a demux hint for the receiving layer-2 network.
	Proto uint8
	// FlowID distinguishes flows sharing a source/destination pair (a
	// stand-in for the port pair of a transport header).
	FlowID uint16
}

// headerSize is the wire size of the encoded Header, including the
// 16-bit payload length that lets receivers strip layer-2 padding (the
// role of the IPv4 total-length field).
const headerSize = 14

// HeaderSize is the encoded header size in bytes, exported for
// throughput and pacing arithmetic.
const HeaderSize = headerSize

// Packet is one network packet, possibly labelled.
type Packet struct {
	Header Header
	// Stack is the MPLS label stack; empty for an unlabelled packet.
	Stack *label.Stack
	// Payload is the application data. Only its length matters to the
	// data plane, but contents round-trip so tests can check integrity.
	Payload []byte

	// SeqNo and SentAt are measurement bookkeeping stamped by traffic
	// generators; they are not part of the wire format.
	SeqNo  uint64
	SentAt float64
}

// New builds an unlabelled packet.
func New(src, dst Addr, ttl uint8, payload []byte) *Packet {
	return &Packet{
		Header:  Header{Src: src, Dst: dst, TTL: ttl},
		Stack:   &label.Stack{},
		Payload: payload,
	}
}

// Labelled reports whether the packet carries any MPLS labels.
func (p *Packet) Labelled() bool { return p.Stack != nil && !p.Stack.Empty() }

// Identifier returns the packet identifier the embedded architecture
// searches level 1 with: for IP packets, the destination address.
func (p *Packet) Identifier() uint32 { return uint32(p.Header.Dst) }

// Size returns the wire size of the packet in bytes, including the MPLS
// shim if present.
func (p *Packet) Size() int {
	n := headerSize + len(p.Payload)
	if p.Stack != nil {
		n += p.Stack.WireSize()
	}
	return n
}

// Clone deep-copies the packet so simulated links can fan out without
// aliasing.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Stack != nil {
		q.Stack = p.Stack.Clone()
	}
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// Wire encoding errors.
var (
	ErrTruncated = errors.New("packet: buffer truncated")
	ErrBadMagic  = errors.New("packet: bad encoding magic")
)

// Encoding magic bytes: one for unlabelled packets, one for packets with
// an MPLS shim — the stand-in for the layer-2 protocol identifier that
// tells a receiver whether a label stack follows (the Ethertype 0x8847
// role).
const (
	magicIP   = 0x45
	magicMPLS = 0x88
)

// Marshal encodes the packet: magic, MPLS shim (if labelled), header,
// payload.
func (p *Packet) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 1+p.Size())
	if p.Labelled() {
		buf = append(buf, magicMPLS)
		var err error
		buf, err = p.Stack.AppendWire(buf)
		if err != nil {
			return nil, err
		}
	} else {
		buf = append(buf, magicIP)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Header.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Header.Dst))
	buf = append(buf, p.Header.TTL, p.Header.Proto)
	buf = binary.BigEndian.AppendUint16(buf, p.Header.FlowID)
	if len(p.Payload) > 0xffff {
		return nil, fmt.Errorf("packet: payload %d exceeds the length field", len(p.Payload))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
	buf = append(buf, p.Payload...)
	return buf, nil
}

// Unmarshal decodes a packet from buf.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	p := &Packet{Stack: &label.Stack{}}
	rest := buf[1:]
	switch buf[0] {
	case magicIP:
	case magicMPLS:
		st, n, err := label.DecodeWire(rest)
		if err != nil {
			return nil, err
		}
		p.Stack = st
		rest = rest[n:]
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, buf[0])
	}
	if len(rest) < headerSize {
		return nil, ErrTruncated
	}
	p.Header.Src = Addr(binary.BigEndian.Uint32(rest))
	p.Header.Dst = Addr(binary.BigEndian.Uint32(rest[4:]))
	p.Header.TTL = rest[8]
	p.Header.Proto = rest[9]
	p.Header.FlowID = binary.BigEndian.Uint16(rest[10:])
	n := int(binary.BigEndian.Uint16(rest[12:]))
	body := rest[headerSize:]
	if n > len(body) {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d available", ErrTruncated, n, len(body))
	}
	// Anything beyond the declared length is layer-2 padding; drop it.
	p.Payload = append([]byte(nil), body[:n]...)
	return p, nil
}

// String summarises the packet for logs and test failures.
func (p *Packet) String() string {
	lbl := "unlabelled"
	if p.Labelled() {
		lbl = p.Stack.String()
	}
	return fmt.Sprintf("pkt{%s->%s ttl=%d flow=%d %s %dB}",
		p.Header.Src, p.Header.Dst, p.Header.TTL, p.Header.FlowID, lbl, len(p.Payload))
}
