package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(4.1) // overflow
	snap := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %v)", i, snap.Counts[i], w, snap)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-(0.5+1+1.5+4+4.1)) > 1e-9 {
		t.Errorf("sum = %g", snap.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(LatencyBounds()...)
	b := NewHistogram(LatencyBounds()...)
	for i := 0; i < 10; i++ {
		a.Observe(1e-6)
		b.Observe(0.5)
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 20 {
		t.Errorf("merged count = %d, want 20", a.Count())
	}
	if math.Abs(a.Sum()-(10e-6+5)) > 1e-9 {
		t.Errorf("merged sum = %g", a.Sum())
	}

	defer func() {
		if recover() == nil {
			t.Error("merging mismatched layouts did not panic")
		}
	}()
	a.Merge(NewHistogram(1, 2))
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
		"duplicate":  {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DepthBounds()...)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 4))
				_ = h.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
	snap := h.Snapshot()
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != goroutines*per {
		t.Errorf("bucket total = %d, want %d", total, goroutines*per)
	}
	wantSum := float64(goroutines) * float64(per/4) * (0 + 1 + 2 + 3)
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", snap.Sum, wantSum)
	}
}
