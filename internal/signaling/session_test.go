package signaling

import "testing"

// sessionHarness drives one session with a fake clock and records what
// it sends.
type sessionHarness struct {
	sess  *Session
	now   float64
	sent  []MsgType
	ups   int
	downs int
}

func newSessionHarness(t Timers) *sessionHarness {
	h := &sessionHarness{}
	h.sess = NewSession("peer", t,
		func(mt MsgType) { h.sent = append(h.sent, mt) },
		func() { h.ups++ },
		func() { h.downs++ })
	return h
}

func (h *sessionHarness) lastSent() MsgType {
	if len(h.sent) == 0 {
		return 0
	}
	return h.sent[len(h.sent)-1]
}

// TestSessionTransitions tables every FSM transition.
func TestSessionTransitions(t *testing.T) {
	timers := Timers{Hello: 0.02}.withDefaults()
	cases := []struct {
		name      string
		from      State
		msg       MsgType
		wantState State
		wantSend  MsgType // 0: nothing sent
	}{
		{"down+hello", StateDown, MsgHello, StateAdjacent, MsgInit},
		{"down+init", StateDown, MsgInit, StateOperational, MsgKeepalive},
		{"down+keepalive re-offers", StateDown, MsgKeepalive, StateDown, MsgInit},
		{"adjacent+init", StateAdjacent, MsgInit, StateOperational, MsgKeepalive},
		{"adjacent+keepalive", StateAdjacent, MsgKeepalive, StateOperational, MsgKeepalive},
		{"adjacent+hello re-offers", StateAdjacent, MsgHello, StateAdjacent, MsgInit},
		{"operational+keepalive", StateOperational, MsgKeepalive, StateOperational, 0},
		{"operational+init confirms", StateOperational, MsgInit, StateOperational, MsgKeepalive},
		{"operational+hello re-handshakes", StateOperational, MsgHello, StateAdjacent, MsgInit},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newSessionHarness(timers)
			h.sess.state = c.from
			h.sent = nil
			h.sess.Handle(c.msg, 1.0)
			if h.sess.State() != c.wantState {
				t.Errorf("state = %v, want %v", h.sess.State(), c.wantState)
			}
			if c.wantSend == 0 && len(h.sent) != 0 {
				t.Errorf("sent %v, want nothing", h.sent)
			}
			if c.wantSend != 0 && h.lastSent() != c.wantSend {
				t.Errorf("sent %v, want %v", h.sent, c.wantSend)
			}
		})
	}
}

// TestSessionHandshake walks two coupled sessions from cold start to
// operational, by exchanging what each side actually sends.
func TestSessionHandshake(t *testing.T) {
	timers := Timers{Hello: 0.02}
	var a, b *sessionHarness
	a = newSessionHarness(timers)
	b = newSessionHarness(timers)
	now := 0.0

	// a's first tick sends hello; b handles it, answering init; a
	// handles the init (operational, sends keepalive); b handles the
	// keepalive (operational).
	a.sess.Tick(now)
	if a.lastSent() != MsgHello {
		t.Fatalf("first tick sent %v, want hello", a.sent)
	}
	b.sess.Handle(MsgHello, now)
	if b.lastSent() != MsgInit || b.sess.State() != StateAdjacent {
		t.Fatalf("b after hello: sent %v, state %v", b.sent, b.sess.State())
	}
	a.sess.Handle(MsgInit, now)
	if a.sess.State() != StateOperational || a.ups != 1 {
		t.Fatalf("a after init: state %v ups %d", a.sess.State(), a.ups)
	}
	b.sess.Handle(a.lastSent(), now)
	if b.sess.State() != StateOperational || b.ups != 1 {
		t.Fatalf("b after keepalive: state %v ups %d", b.sess.State(), b.ups)
	}
}

// TestSessionDeadTimer checks silence tears the session down exactly
// once past the hold time, and that recovery re-fires onUp.
func TestSessionDeadTimer(t *testing.T) {
	timers := Timers{Hello: 0.02}.withDefaults()
	h := newSessionHarness(timers)
	h.sess.state = StateOperational
	h.sess.lastHeard = 1.0

	h.sess.Tick(1.0 + timers.Hold*0.9) // inside hold: still alive
	if h.sess.State() != StateOperational || h.downs != 0 {
		t.Fatalf("inside hold: state %v downs %d", h.sess.State(), h.downs)
	}
	h.sess.Tick(1.0 + timers.Hold + 0.001)
	if h.sess.State() != StateDown || h.downs != 1 {
		t.Fatalf("past hold: state %v downs %d", h.sess.State(), h.downs)
	}
	// Tick while down keeps sending hellos, no further down events.
	h.sess.Tick(2.0)
	if h.lastSent() != MsgHello || h.downs != 1 {
		t.Fatalf("down tick: sent %v downs %d", h.sent, h.downs)
	}
}

// TestSessionRestartRecovery covers the deadlock hazard: one side
// restarts to Down while the other is Operational. The hello from the
// restarted side must force a re-handshake that converges.
func TestSessionRestartRecovery(t *testing.T) {
	timers := Timers{Hello: 0.02}
	a := newSessionHarness(timers)
	b := newSessionHarness(timers)
	a.sess.state = StateOperational
	b.sess.state = StateOperational

	a.sess.Down(5.0) // a restarts
	if a.downs != 1 {
		t.Fatalf("downs = %d, want 1", a.downs)
	}
	a.sent = nil
	a.sess.Tick(5.0) // a sends hello
	b.sess.Handle(MsgHello, 5.0)
	if b.sess.State() != StateAdjacent || b.downs != 1 || b.lastSent() != MsgInit {
		t.Fatalf("b after restart hello: state %v downs %d sent %v", b.sess.State(), b.downs, b.sent)
	}
	a.sess.Handle(MsgInit, 5.0) // b's init brings a up
	if a.sess.State() != StateOperational || a.ups != 1 {
		t.Fatalf("a: state %v ups %d", a.sess.State(), a.ups)
	}
	b.sess.Handle(a.lastSent(), 5.0) // a's keepalive brings b up
	if b.sess.State() != StateOperational || b.ups != 1 {
		t.Fatalf("b: state %v ups %d", b.sess.State(), b.ups)
	}
}

// TestSessionSever checks the administrative sever: traffic in both
// directions is suppressed for the window, then the session recovers.
func TestSessionSever(t *testing.T) {
	timers := Timers{Hello: 0.02}.withDefaults()
	h := newSessionHarness(timers)
	h.sess.state = StateOperational
	h.sess.lastHeard = 1.0

	h.sess.Sever(1.0, 0.5)
	if h.sess.State() != StateDown || h.downs != 1 {
		t.Fatalf("after sever: state %v downs %d", h.sess.State(), h.downs)
	}
	// Inside the window: peer messages ignored, nothing sent.
	h.sent = nil
	h.sess.Handle(MsgHello, 1.2)
	h.sess.Tick(1.2)
	if h.sess.State() != StateDown || len(h.sent) != 0 {
		t.Fatalf("severed: state %v sent %v", h.sess.State(), h.sent)
	}
	// Touch during the window must not refresh liveness.
	h.sess.Touch(1.3)
	if h.sess.lastHeard != 1.0 {
		t.Fatalf("severed touch refreshed lastHeard to %v", h.sess.lastHeard)
	}
	// After the window the handshake works again.
	h.sess.Handle(MsgHello, 1.6)
	if h.sess.State() != StateAdjacent || h.lastSent() != MsgInit {
		t.Fatalf("post-sever: state %v sent %v", h.sess.State(), h.sent)
	}
}

func TestSessionKeepalivePacing(t *testing.T) {
	timers := Timers{Hello: 0.02}.withDefaults()
	h := newSessionHarness(timers)
	h.sess.state = StateOperational
	h.sess.lastHeard = 1.0
	h.sess.lastSent = 1.0

	h.sess.Tick(1.0 + timers.Keepalive/2)
	if len(h.sent) != 0 {
		t.Fatalf("keepalive sent too early: %v", h.sent)
	}
	h.sess.Tick(1.0 + timers.Keepalive)
	if h.lastSent() != MsgKeepalive {
		t.Fatalf("no keepalive at interval: %v", h.sent)
	}
}

func TestTimersDefaults(t *testing.T) {
	d := Timers{}.withDefaults()
	if d.Hello != 0.02 || d.Keepalive != 0.04 || d.Hold != 0.12 {
		t.Errorf("defaults = %+v", d)
	}
	c := Timers{Hello: 0.1, Keepalive: 0.3, Hold: 1}.withDefaults()
	if c.Hello != 0.1 || c.Keepalive != 0.3 || c.Hold != 1 {
		t.Errorf("custom = %+v", c)
	}
	if StateDown.String() != "down" || StateAdjacent.String() != "adjacent" ||
		StateOperational.String() != "operational" {
		t.Error("state names wrong")
	}
}
