//go:build linux && amd64

package transport

// sendmmsg/recvmmsg syscall numbers for linux/amd64; absent from the
// standard library's frozen syscall table.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
