package resilience

import (
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
)

// stepClock is a manually advanced Clock for damper tests; nothing is
// scheduled, only Now matters.
type stepClock struct{ t float64 }

func (c *stepClock) Now() float64                 { return c.t }
func (c *stepClock) Schedule(d float64, f func()) { panic("damper never schedules") }

func TestDamperSuppressAndReuse(t *testing.T) {
	clk := &stepClock{}
	var events telemetry.EventCounters
	d := NewDamper(clk, DamperConfig{
		Penalty: 1000, SuppressAt: 2500, ReuseAt: 750, HalfLife: 2, MaxPenalty: 8000,
	}, &events)

	// Two quick flaps: penalised but under the threshold.
	d.Flap("a", "b")
	clk.t = 0.1
	d.Flap("b", "a") // either direction lands on the same link
	if d.Suppressed("a", "b") {
		t.Fatal("suppressed after two flaps, threshold is three")
	}
	// Third flap crosses the threshold.
	clk.t = 0.2
	d.Flap("a", "b")
	if !d.Suppressed("a", "b") {
		t.Fatalf("not suppressed at penalty %.0f", d.Penalty("a", "b"))
	}
	if got := events.Get(telemetry.EventLinkSuppressed); got != 1 {
		t.Errorf("link_suppressed = %d, want 1", got)
	}
	ex := d.Excluded()
	if !ex[te.LinkKey{From: "a", To: "b"}] || !ex[te.LinkKey{From: "b", To: "a"}] {
		t.Fatalf("exclusion set %v missing the suppressed link (both directions)", ex)
	}

	// Penalty ~3000 at t=0.2; decaying under ReuseAt=750 takes two
	// half-lives. Still suppressed after one.
	clk.t = 2.2
	if !d.Suppressed("a", "b") {
		t.Fatal("reused too early")
	}
	clk.t = 4.4
	if d.Suppressed("a", "b") {
		t.Fatalf("still suppressed at penalty %.0f", d.Penalty("a", "b"))
	}
	if got := events.Get(telemetry.EventLinkReused); got != 1 {
		t.Errorf("link_reused = %d, want 1", got)
	}
	if d.Excluded() != nil {
		t.Errorf("exclusion set %v, want empty", d.Excluded())
	}
}

func TestDamperPenaltyCapBoundsHoldDown(t *testing.T) {
	clk := &stepClock{}
	d := NewDamper(clk, DamperConfig{HalfLife: 2, MaxPenalty: 8000}, nil)
	for i := 0; i < 100; i++ {
		d.Flap("a", "b")
	}
	if got := d.Penalty("a", "b"); got > 8000 {
		t.Fatalf("penalty %.0f exceeds cap", got)
	}
	// From the cap, decay to ReuseAt=750 takes log2(8000/750) ≈ 3.4
	// half-lives ≈ 6.8s — the cap is what makes this finite.
	clk.t = 7
	if d.Suppressed("a", "b") {
		t.Fatalf("still suppressed %.0fs after the last flap of a capped link", clk.t)
	}
}

func TestDamperSingleFlapDecaysAway(t *testing.T) {
	clk := &stepClock{}
	d := NewDamper(clk, DamperConfig{}, nil)
	d.Flap("a", "b")
	if d.Suppressed("a", "b") {
		t.Fatal("one flap suppressed the link")
	}
	// After many half-lives the entry is garbage-collected entirely.
	clk.t = 60
	d.Excluded()
	if len(d.links) != 0 {
		t.Errorf("fully decayed link state not pruned: %v", d.links)
	}
}

// TestBindDampingSuppressesFlappyLink drives real speakers over a
// three-path topology: the a-b link flaps until damped, and a later
// protection switch then avoids it even though the link is up and
// cheapest — the damper, not the transient avoid hint, is what keeps
// the reroute off it.
func TestBindDampingSuppressesFlappyLink(t *testing.T) {
	net, err := router.Build(
		[]router.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}, {Name: "e"}},
		[]router.LinkSpec{
			{A: "a", B: "b", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "b", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "a", B: "c", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "c", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "a", B: "e", RateBPS: 1e9, Delay: 0.0005, Metric: 10},
			{A: "e", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	var events telemetry.EventCounters
	speakers, err := signaling.Deploy(net, signaling.WithUntil(10), signaling.WithEvents(&events))
	if err != nil {
		t.Fatal(err)
	}
	// Slow decay so the hold-down outlives the test window.
	for _, sp := range speakers {
		BindDamping(sp, NewDamper(net.Sim, DamperConfig{HalfLife: 30}, &events))
	}
	net.Sim.RunUntil(0.3)
	var path []string
	speakers["a"].OnEstablished = func(id string, got []string) { path = got }
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.5)

	// Flap a-b three times: down past the dead timer (0.12s), up long
	// enough to re-form. The first flap protection-switches the LSP to
	// a,c,d; the rest accrue penalty until the link is suppressed.
	at := func(abs float64, f func()) {
		d := abs - net.Sim.Now()
		if d < 0 {
			d = 0
		}
		net.Sim.Schedule(d, f)
	}
	for i := 0; i < 3; i++ {
		base := 0.5 + float64(i)*0.6
		at(base, func() { net.SetLinkDown("a", "b", true) })
		at(base+0.3, func() { net.SetLinkDown("a", "b", false) })
		net.Sim.RunUntil(base + 0.6)
	}
	if got := events.Get(telemetry.EventLinkSuppressed); got == 0 {
		t.Fatal("flapping link never suppressed")
	}
	if len(path) == 0 || path[1] != "c" {
		t.Fatalf("after the first flap the LSP should ride a,c,d, got %v", path)
	}

	// Push the LSP off c-d. Metric-wise a,b,d is the best alternative
	// and the a-b link is up — only the damper keeps the reroute off it.
	if err := speakers["a"].RequestReroute("l", "c", "d"); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(net.Sim.Now() + 1.5)
	if len(path) == 0 || path[1] != "e" {
		t.Fatalf("rerouted via %v, want a,e,d (a-b is damped)", path)
	}
}
