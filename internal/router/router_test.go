package router

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

var dst = packet.AddrFrom(10, 0, 0, 9)

// lineNet builds a 4-node line a-b-c-d. hardware selects the data plane
// everywhere (edges as LERs, middle as LSRs).
func lineNet(t *testing.T, hardware bool) *Network {
	t.Helper()
	nodes := []NodeSpec{
		{Name: "a", Hardware: hardware, RouterType: lsm.LER},
		{Name: "b", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "c", Hardware: hardware, RouterType: lsm.LSR},
		{Name: "d", Hardware: hardware, RouterType: lsm.LER},
	}
	links := []LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.001},
		{A: "b", B: "c", RateBPS: 10e6, Delay: 0.001},
		{A: "c", B: "d", RateBPS: 10e6, Delay: 0.001},
	}
	n, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPacketFollowsLSPBothPlanes(t *testing.T) {
	for _, hw := range []bool{false, true} {
		name := "software"
		if hw {
			name = "hardware"
		}
		t.Run(name, func(t *testing.T) {
			n := lineNet(t, hw)
			if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
				ID:   "lsp",
				FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "c", "d"},
			}); err != nil {
				t.Fatal(err)
			}
			var delivered []*packet.Packet
			n.Router("d").OnDeliver = func(p *packet.Packet) { delivered = append(delivered, p) }

			p := packet.New(packet.AddrFrom(192, 0, 2, 1), dst, 64, []byte("hello"))
			n.Router("a").Inject(p)
			n.Sim.Run()

			if len(delivered) != 1 {
				t.Fatalf("delivered %d packets", len(delivered))
			}
			got := delivered[0]
			if got.Labelled() {
				t.Error("delivered packet still labelled")
			}
			if got.Header.TTL != 60 {
				t.Errorf("TTL = %d, want 60", got.Header.TTL)
			}
			if string(got.Payload) != "hello" {
				t.Errorf("payload corrupted: %q", got.Payload)
			}
			// Transit routers forwarded exactly one packet each.
			for _, r := range []string{"a", "b", "c"} {
				if n.Router(r).Stats.Forwarded.Events != 1 {
					t.Errorf("%s forwarded %d", r, n.Router(r).Stats.Forwarded.Events)
				}
			}
		})
	}
}

func TestHardwareFasterThanSoftwareEndToEnd(t *testing.T) {
	latency := func(hw bool) netsim.Time {
		n := lineNet(t, hw)
		if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
			ID:   "lsp",
			FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
			Path: []string{"a", "b", "c", "d"},
		}); err != nil {
			t.Fatal(err)
		}
		var at netsim.Time = -1
		n.Router("d").OnDeliver = func(*packet.Packet) { at = n.Sim.Now() }
		n.Router("a").Inject(packet.New(1, dst, 64, make([]byte, 100)))
		n.Sim.Run()
		if at < 0 {
			t.Fatal("packet not delivered")
		}
		return at
	}
	sw, hw := latency(false), latency(true)
	if hw >= sw {
		t.Errorf("hardware latency %.6fs not below software %.6fs", hw, sw)
	}
	// The per-hop gap must be roughly the software cost minus the
	// sub-microsecond hardware cost: 4 routers x ~50us.
	if gap := sw - hw; gap < 3*DefaultSoftwareCost {
		t.Errorf("latency gap %.6fs implausibly small", gap)
	}
}

func TestDropsAreCounted(t *testing.T) {
	n := lineNet(t, false)
	// No LSP installed: ingress has no route.
	n.Router("a").Inject(packet.New(1, dst, 64, nil))
	n.Sim.Run()
	st := n.Router("a").Stats
	if st.Dropped.Events != 1 || st.DropsByReason[swmpls.DropNoRoute] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLocalDeliveryWithoutLabels(t *testing.T) {
	n := lineNet(t, false)
	r := n.Router("a")
	r.AddLocal(dst)
	got := 0
	r.OnDeliver = func(*packet.Packet) { got++ }
	r.Inject(packet.New(1, dst, 64, nil))
	n.Sim.Run()
	if got != 1 || r.Stats.Delivered.Events != 1 {
		t.Errorf("delivered=%d stats=%+v", got, r.Stats.Delivered)
	}
}

func TestMissingLinkDropsInsteadOfPanics(t *testing.T) {
	sim := netsim.New()
	plane := NewSoftwarePlane(0)
	r := New(sim, "lone", plane)
	if err := plane.MapFEC(dst, 32, swmpls.NHLFE{NextHop: "ghost", Op: label.OpPush, PushLabels: []label.Label{16}}); err != nil {
		t.Fatal(err)
	}
	r.Inject(packet.New(1, dst, 64, nil))
	sim.Run()
	if r.Stats.DropsByReason[swmpls.DropNoRoute] != 1 {
		t.Errorf("stats = %+v", r.Stats)
	}
}

func TestEngineSerialisation(t *testing.T) {
	// Two packets injected at the same instant at a software router must
	// finish processing 2x the per-packet cost apart.
	sim := netsim.New()
	plane := NewSoftwarePlane(0.001)
	r := New(sim, "r", plane)
	r.AddLocal(0) // unused; packets will drop at no-route after the engine
	r.Inject(packet.New(1, dst, 64, nil))
	r.Inject(packet.New(1, dst, 64, nil))
	sim.Run()
	// Both dropped (no route) — but only after serialised processing.
	if sim.Now() < 0.002-1e-12 {
		t.Errorf("simulation ended at %gs, want >= 2ms of engine time", sim.Now())
	}
	if r.Stats.Dropped.Events != 2 {
		t.Errorf("drops = %d", r.Stats.Dropped.Events)
	}
}

func TestTunnelOverHardwarePlane(t *testing.T) {
	// A 5-node net with a tunnel b->c->d; inner LSP a-b-(tunnel)-d-e.
	nodes := []NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LSR},
		{Name: "d", Hardware: true, RouterType: lsm.LSR},
		{Name: "e", Hardware: true, RouterType: lsm.LER},
	}
	var links []LinkSpec
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}} {
		links = append(links, LinkSpec{A: pair[0], B: pair[1], RateBPS: 10e6, Delay: 0.0005})
	}
	n, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupTunnel("tun", []string{"b", "c", "d"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "inner",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d", "e"},
	}); err != nil {
		t.Fatal(err)
	}
	var delivered *packet.Packet
	n.Router("e").OnDeliver = func(p *packet.Packet) { delivered = p }
	n.Router("a").Inject(packet.New(1, dst, 64, []byte("tunnelled")))
	n.Sim.Run()
	if delivered == nil {
		t.Fatal("packet lost in the tunnel")
	}
	if delivered.Labelled() {
		t.Error("labels survived egress")
	}
	if string(delivered.Payload) != "tunnelled" {
		t.Error("payload corrupted")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]NodeSpec{{Name: "a"}, {Name: "a"}}, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := Build([]NodeSpec{{Name: "a"}}, []LinkSpec{{A: "a", B: "ghost", RateBPS: 1}}); err == nil {
		t.Error("link to unknown node accepted")
	}
	if _, err := Build([]NodeSpec{{Name: "a"}}, []LinkSpec{{A: "ghost", B: "a", RateBPS: 1}}); err == nil {
		t.Error("link from unknown node accepted")
	}
	n, err := Build([]NodeSpec{{Name: "a"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Router() on unknown name should panic")
		}
	}()
	n.Router("ghost")
}

// TestPHPEndToEnd: with penultimate hop popping, the egress receives a
// plain IP packet and delivers it locally — no label operation at the
// last hop at all.
func TestPHPEndToEnd(t *testing.T) {
	for _, hw := range []bool{false, true} {
		name := "software"
		if hw {
			name = "hardware"
		}
		t.Run(name, func(t *testing.T) {
			n := lineNet(t, hw)
			if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
				ID:   "php",
				FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "c", "d"},
				PHP:  true,
			}); err != nil {
				t.Fatal(err)
			}
			n.Router("d").AddLocal(dst)
			var got *packet.Packet
			n.Router("d").OnDeliver = func(p *packet.Packet) { got = p }
			n.Router("a").Inject(packet.New(1, dst, 64, []byte("php")))
			n.Sim.Run()
			if got == nil {
				t.Fatal("not delivered")
			}
			if got.Labelled() {
				t.Error("label survived to the PHP egress")
			}
			// a, b, c each decrement (c pops and propagates); d delivers
			// an unlabelled local packet without another decrement.
			if got.Header.TTL != 61 {
				t.Errorf("TTL = %d, want 61", got.Header.TTL)
			}
			// The egress performed no label operation: its data plane saw
			// no packets at all (local delivery short-circuits).
			if n.Router("d").Stats.Forwarded.Events != 0 {
				t.Error("PHP egress forwarded instead of delivering")
			}
		})
	}
}
