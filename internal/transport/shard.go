package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
)

// ShardedReceiver is a group of SO_REUSEPORT sockets bound to one UDP
// address, one receiver (and so one kernel receive queue and one read
// goroutine) per shard. The kernel hashes each arriving 4-tuple to one
// socket, so a connected sender sticks to one shard for its lifetime —
// each dataplane shard worker can own a receive queue end to end, with
// no cross-shard handoff in user space.
type ShardedReceiver struct {
	rs []*Receiver
}

// ListenSharded opens n SO_REUSEPORT sockets on addr (":0" picks one
// free port shared by the whole group) and starts a read loop per
// shard. sink is called once per shard index to build that shard's
// delivery function — hand shard i's batches to dataplane shard i
// (FeedEngineShard) and the socket-to-worker path never crosses
// shards. n == 1 degrades to a plain Listen-equivalent socket and
// works on every platform; n > 1 requires SO_REUSEPORT support.
func ListenSharded(addr string, n int, sink func(shard int) func(batch []Inbound), opts ...Option) (*ShardedReceiver, error) {
	if n < 1 {
		n = 1
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if n == 1 {
		r, err := Listen(addr, sink(0), opts...)
		if err != nil {
			return nil, err
		}
		return &ShardedReceiver{rs: []*Receiver{r}}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	s := &ShardedReceiver{}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("transport: listen sharded %s (shard %d/%d): %w", addr, i, n, err)
		}
		conn, ok := pc.(*net.UDPConn)
		if !ok {
			pc.Close()
			s.Close()
			return nil, fmt.Errorf("transport: listen sharded %s: unexpected conn type %T", addr, pc)
		}
		if i == 0 {
			// The first bind resolves ":0"; the rest of the group must
			// join the same concrete port.
			addr = conn.LocalAddr().String()
		}
		r, err := newReceiver(conn, sink(i), cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("transport: listen sharded %s (shard %d/%d): %w", addr, i, n, err)
		}
		s.rs = append(s.rs, r)
	}
	return s, nil
}

// Addr returns the group's shared bound address.
func (s *ShardedReceiver) Addr() net.Addr { return s.rs[0].Addr() }

// Shards returns the number of shard sockets.
func (s *ShardedReceiver) Shards() int { return len(s.rs) }

// Receiver returns shard i's receiver (its metrics, its address).
func (s *ShardedReceiver) Receiver(i int) *Receiver { return s.rs[i] }

// Close tears down every shard socket and waits for each read loop to
// flush its last batch. Idempotent, safe on a partially constructed
// group and under concurrent send load — senders racing the teardown
// see socket errors, counted on their side, exactly like a one-socket
// receiver going away.
func (s *ShardedReceiver) Close() error {
	var errs []error
	for _, r := range s.rs {
		if r != nil {
			errs = append(errs, r.Close())
		}
	}
	return errors.Join(errs...)
}
