# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test mgmt bench bench-dataplane bench-lookup bench-transport bench-convergence reproduce race cover metrics chaos soak examples clean

all: build test

build:
	go build ./...

# The fuzz smokes keep the wire decoders honest on every run: ten
# seconds of random datagrams must never panic the packet codec or the
# coalesced-frame walker, and the signaling codec must strictly
# round-trip whatever it accepts. The management-plane smoke rides
# along: golden wire fixtures, error envelopes, and the three-process
# mplsctl acceptance run.
test: mgmt
	go vet ./...
	go test ./...
	go test -run=^$$ -fuzz=FuzzWireDecode -fuzztime=10s ./internal/transport
	go test -run=^$$ -fuzz=FuzzWireRoundTrip -fuzztime=10s ./internal/transport
	go test -run=^$$ -fuzz=FuzzFrameDecode -fuzztime=10s ./internal/transport
	go test -run=^$$ -fuzz=FuzzFrameRoundTrip -fuzztime=10s ./internal/transport
	go test -run=^$$ -fuzz=FuzzSignalingDecode -fuzztime=10s ./internal/signaling

# The management-plane smoke: the JSON-RPC wire against its golden
# fixtures, every RPC against a live node, and mplsctl driving three
# real mplsnode processes end to end (runtime provisioning, infobase
# dump, scrape, reload-without-restart, graceful drain).
mgmt:
	go test ./internal/mgmt
	go test -run 'ManagementPlane' ./internal/integration

bench:
	go test -bench=. -benchmem ./...

# Sweep the concurrent engine from 1 to 4 workers and write
# BENCH_dataplane.json.
bench-dataplane:
	go run ./cmd/mplsbench -engine=dataplane -workers=4 -json

# The ILM fast path: worst-case hit latency of the linear vs indexed
# information base at 16..1024 entries, plus single-shard batch 1 vs 32,
# written to BENCH_lookup.json.
bench-lookup:
	go run ./cmd/mplsbench -engine=lookup -batch=32 -json

# The wire transport: codec ns/op with the zero-allocation guarantee,
# sustained loopback-UDP pps against the in-memory codec pipeline — the
# legacy per-packet wire and the batched wire across its coalesce /
# sysBatch / shard axes with syscalls-per-packet — written to
# BENCH_transport.json. Exits nonzero if the best batched pps falls
# below the committed floor_pps, so a wire-path regression fails CI.
bench-transport:
	go run ./cmd/mplsbench -engine=transport -packets=500000 -json

# The distributed control plane: session-mesh formation, LSP
# establishment and failure-to-reroute latency (all in simulated
# seconds) on rings of 8, 32 and 128 routers, written to
# BENCH_convergence.json.
bench-convergence:
	go run ./cmd/mplsbench -engine=convergence -json

reproduce:
	go run ./cmd/reproduce -out results

# The concurrent dataplane is the package the race detector exists for:
# run it explicitly (and with -count=2 for scheduling variety) on top of
# the repo-wide pass. The fault-injection and resilience packages ride
# along: their chaos scenarios must stay race-clean too, as must the
# batched flow-cache path and the infobase stores' atomic publication
# (concurrent lookups during writes). The transport package lives on
# socket goroutines end to end, so it gets the same treatment, plus the
# teardown-under-load and distributed-delivery regressions. The
# management plane serves RPCs from socket goroutines into the network
# lock while the dataplane forwards, so it runs under -race with
# scheduling variety too.
race:
	go test -race ./...
	go test -race -count=2 ./internal/dataplane ./internal/faults ./internal/resilience ./internal/signaling ./internal/transport ./internal/mgmt
	go test -race -count=2 -run 'FlowCache|Concurrent|Telemetry' ./internal/dataplane ./internal/infobase ./internal/swmpls
	go test -race -count=2 -run 'Close|Distributed|Differential|Egress' ./internal/router ./internal/integration ./internal/dataplane

# Seeded chaos runs with the self-healing layer on: each seed injects a
# different fault schedule — link flaps, corruption, delay spikes and a
# signaling-session sever — and mplssim exits nonzero if traffic has not
# converged (flowing again, no retries exhausted) by the end of the run.
# The in-simulator runs are followed by the multi-process soak.
chaos: soak
	@for seed in 1 2 3; do \
		echo "== chaos seed $$seed =="; \
		go run ./cmd/mplssim -chaos $$seed -heal || exit 1; echo; done

# The hostile-wire soak: 50 mplsnode-style processes in a ring-of-rings
# over loopback UDP, with seeded kills and spoof/TTL/rate/malformed
# floods from the parent. Each seed must converge — survivors' sessions
# up, LSPs rerouted off the corpses, fresh deliveries at every egress —
# with zero panics and every attack class measurably dropped by the
# ingress admission guards.
soak:
	@go build -o /tmp/mplschaos ./cmd/mplschaos
	@for seed in 1 2 3; do \
		echo "== soak seed $$seed =="; \
		/tmp/mplschaos -seed $$seed -rings 10 -ring-size 5 -duration 8 || exit 1; echo; done

# Per-package coverage plus an aggregate profile with a per-function
# report and a repo-wide total line.
cover:
	go test -coverprofile=coverage.out ./internal/...
	go tool cover -func=coverage.out | tail -1

examples:
	@for ex in quickstart figure1 tunnel voipqos hwsw signaling mmio dataplane distributed; do \
		echo "== $$ex =="; go run ./examples/$$ex; echo; done

# Run the metrics workload: forces every drop reason, prints the
# Prometheus exposition and the label-operation trace.
metrics:
	go run ./cmd/mplsbench -engine=dataplane -metrics

clean:
	rm -rf results coverage.out
