package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// UDPLink is a unidirectional transport link toward one neighbour: it
// encodes packets with the wire codec and writes them to a connected
// UDP socket. It implements netsim.Wire, so a router attaches it
// exactly like a simulated link — SetDown, fault hooks, keepalive
// probes and failover all behave identically, except that loss and
// delay now also come from a real network path.
//
// Fault semantics mirror netsim.Link: the hook sees the packet when
// its transmission starts, a Drop verdict eats it, ExtraDelay defers
// the socket write. A fault that mutates the packet (the corruption
// window of package faults) is materialised as on-the-wire damage —
// the datagram's magic is smashed, so the receiver's decode fails and
// the loss surfaces as a wire-decode drop, which is what label
// corruption on a physical wire looks like from the far end.
type UDPLink struct {
	from, to string
	src      NodeID
	conn     *net.UDPConn

	// mu guards fault and onDrop; Send, SetFault and SetOnDrop may run
	// on different goroutines (pump, fault injector, collector).
	mu     sync.Mutex
	fault  netsim.Fault
	onDrop func(p *packet.Packet, reason telemetry.Reason)

	now   func() float64
	start time.Time

	down   atomic.Bool
	closed atomic.Bool
	// inflight tracks sends (including delayed fault re-sends) so Close
	// can wait for buffers to drain back to the pool.
	inflight sync.WaitGroup

	m    *Metrics
	drop func(telemetry.Reason)
}

// Dial opens a transport link from node `from` toward neighbour `to`
// at the remote UDP address. The link owns the socket; Close releases
// it.
func Dial(from, to, raddr string, opts ...Option) (*UDPLink, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	ra, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s->%s: %w", from, to, err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s->%s: %w", from, to, err)
	}
	l := &UDPLink{
		from:  from,
		to:    to,
		src:   cfg.src,
		conn:  conn,
		now:   cfg.now,
		start: time.Now(),
		m:    cfg.metrics,
		drop: cfg.drop,
	}
	if l.m == nil {
		l.m = &Metrics{}
	}
	return l, nil
}

// From returns the sending node's name.
func (l *UDPLink) From() string { return l.from }

// To implements netsim.Wire.
func (l *UDPLink) To() string { return l.to }

// Metrics exposes the link's transport counters.
func (l *UDPLink) Metrics() *Metrics { return l.m }

// LocalAddr returns the socket's local address (useful in logs).
func (l *UDPLink) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// SetDown implements netsim.Wire: a down link discards everything
// handed to it.
func (l *UDPLink) SetDown(down bool) { l.down.Store(down) }

// Down implements netsim.Wire.
func (l *UDPLink) Down() bool { return l.down.Load() }

// SetFault implements netsim.Wire.
func (l *UDPLink) SetFault(f netsim.Fault) {
	l.mu.Lock()
	l.fault = f
	l.mu.Unlock()
}

// SetOnDrop implements netsim.Wire.
func (l *UDPLink) SetOnDrop(fn func(p *packet.Packet, reason telemetry.Reason)) {
	l.mu.Lock()
	l.onDrop = fn
	l.mu.Unlock()
}

// clock returns the fault-window time in seconds: the injected clock
// if one was configured, wall time since the link was created
// otherwise.
func (l *UDPLink) clock() float64 {
	if l.now != nil {
		return l.now()
	}
	return time.Since(l.start).Seconds()
}

// lost accounts one packet that never reached the socket.
func (l *UDPLink) lost(p *packet.Packet, reason telemetry.Reason) {
	l.m.TxLost.Add(1)
	if l.drop != nil {
		l.drop(reason)
	}
	l.mu.Lock()
	fn := l.onDrop
	l.mu.Unlock()
	if fn != nil {
		fn(p, reason)
	}
}

// Send implements netsim.Wire: encode and write one packet. Loss is
// counted, never reported — exactly the simulated link's contract.
// Send is safe to call concurrently with Close.
func (l *UDPLink) Send(p *packet.Packet) {
	if l.closed.Load() || l.down.Load() {
		l.lost(p, telemetry.ReasonNoRoute)
		return
	}
	buf := getBuf()
	enc, err := AppendPacket((*buf)[:0], p, l.src)
	if err != nil {
		l.m.EncodeErrors.Add(1)
		l.lost(p, telemetry.ReasonInconsistentOp)
		putBuf(buf)
		return
	}
	*buf = enc

	var extra float64
	l.mu.Lock()
	fault := l.fault
	l.mu.Unlock()
	if fault != nil {
		v := fault.Transmit(p, l.clock())
		if v.Drop {
			l.lost(p, telemetry.ReasonNoRoute)
			putBuf(buf)
			return
		}
		extra = v.ExtraDelay
		// Re-encode after the hook: a difference means the fault
		// corrupted the packet, which on a real wire is damage to the
		// bytes in flight. Smash the magic so the far end's decode
		// fails instead of silently forwarding a half-believable frame.
		buf2 := getBuf()
		enc2, err2 := AppendPacket((*buf2)[:0], p, l.src)
		if err2 != nil {
			// Corrupted beyond encodability: the wire would have
			// carried trash; model it as loss on this side.
			l.m.EncodeErrors.Add(1)
			l.lost(p, telemetry.ReasonNoRoute)
			putBuf(buf)
			putBuf(buf2)
			return
		}
		*buf2 = enc2
		if !bytes.Equal(*buf, *buf2) {
			(*buf2)[0] ^= 0xff
		}
		putBuf(buf)
		buf = buf2
	}

	l.inflight.Add(1)
	if extra > 0 {
		time.AfterFunc(time.Duration(extra*float64(time.Second)), func() { l.write(buf) })
		return
	}
	l.write(buf)
}

// write pushes one encoded datagram to the socket and recycles the
// buffer.
func (l *UDPLink) write(buf *[]byte) {
	defer l.inflight.Done()
	defer putBuf(buf)
	if l.closed.Load() {
		l.m.TxLost.Add(1)
		return
	}
	n, err := l.conn.Write(*buf)
	if err != nil {
		l.m.TxErrors.Add(1)
		return
	}
	l.m.TxPackets.Add(1)
	l.m.TxBytes.Add(uint64(n))
}

// Close implements netsim.Wire: idempotent, safe against concurrent
// Send (packets racing a Close are counted as lost, like a link that
// went away mid-flight).
func (l *UDPLink) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	err := l.conn.Close()
	l.inflight.Wait()
	return err
}

var _ netsim.Wire = (*UDPLink)(nil)
