package te

import (
	"errors"
	"strings"
	"testing"
)

// diamond builds:
//
//	  b
//	 / \
//	a   d --- e
//	 \ /
//	  c
//
// a-b-d is cheap (metric 1+1), a-c-d expensive (metric 5+5).
func diamond(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		topo.AddNode(n)
	}
	mk := func(x, y string, metric, cap float64) {
		if err := topo.AddDuplex(x, y, LinkAttrs{CapacityBPS: cap, Metric: metric, DelaySec: 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", "b", 1, 10e6)
	mk("b", "d", 1, 10e6)
	mk("a", "c", 5, 100e6)
	mk("c", "d", 5, 100e6)
	mk("d", "e", 1, 10e6)
	return topo
}

func pathString(p []string) string { return strings.Join(p, "-") }

func TestCSPFShortestByMetric(t *testing.T) {
	topo := diamond(t)
	path, err := topo.CSPF(PathRequest{From: "a", To: "e"})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(path) != "a-b-d-e" {
		t.Errorf("path = %v, want a-b-d-e", path)
	}
}

func TestCSPFBandwidthConstraintDetours(t *testing.T) {
	topo := diamond(t)
	// 20 Mbps does not fit the cheap 10 Mbps links; CSPF must take the
	// expensive 100 Mbps branch (and fail to reach e at all, whose only
	// link is 10 Mbps).
	path, err := topo.CSPF(PathRequest{From: "a", To: "d", BandwidthBPS: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(path) != "a-c-d" {
		t.Errorf("path = %v, want a-c-d", path)
	}
	if _, err := topo.CSPF(PathRequest{From: "a", To: "e", BandwidthBPS: 20e6}); !errors.Is(err, ErrNoPath) {
		t.Errorf("expected no feasible path to e, got %v", err)
	}
}

func TestCSPFReservationShiftsTraffic(t *testing.T) {
	topo := diamond(t)
	first, err := topo.CSPF(PathRequest{From: "a", To: "d", BandwidthBPS: 6e6})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(first) != "a-b-d" {
		t.Fatalf("first path = %v", first)
	}
	if err := topo.Reserve(first, 6e6); err != nil {
		t.Fatal(err)
	}
	// Only 4 Mbps left on a-b-d: the next 6 Mbps LSP must detour.
	second, err := topo.CSPF(PathRequest{From: "a", To: "d", BandwidthBPS: 6e6})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(second) != "a-c-d" {
		t.Errorf("second path = %v, want a-c-d", second)
	}
	// Releasing restores the cheap path.
	if err := topo.Release(first, 6e6); err != nil {
		t.Fatal(err)
	}
	third, err := topo.CSPF(PathRequest{From: "a", To: "d", BandwidthBPS: 6e6})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(third) != "a-b-d" {
		t.Errorf("after release path = %v, want a-b-d", third)
	}
}

func TestReserveIsAtomic(t *testing.T) {
	topo := diamond(t)
	// a-b has 10 Mbps but b-d gets pre-reserved to 9, so reserving 5 on
	// a-b-d must fail and leave a-b untouched.
	if err := topo.Reserve([]string{"b", "d"}, 9e6); err != nil {
		t.Fatal(err)
	}
	err := topo.Reserve([]string{"a", "b", "d"}, 5e6)
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
	ab, _ := topo.Link("a", "b")
	if ab.ReservedBPS != 0 {
		t.Errorf("a-b reserved %.0f after failed reservation, want 0", ab.ReservedBPS)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	topo := diamond(t)
	if err := topo.Release([]string{"a", "b"}, 99e6); err != nil {
		t.Fatal(err)
	}
	ab, _ := topo.Link("a", "b")
	if ab.ReservedBPS != 0 {
		t.Errorf("reserved = %.0f, want clamp at 0", ab.ReservedBPS)
	}
	if ab.Available() != 10e6 {
		t.Errorf("available = %.0f", ab.Available())
	}
}

func TestCSPFExcludeNodes(t *testing.T) {
	topo := diamond(t)
	path, err := topo.CSPF(PathRequest{From: "a", To: "d", ExcludeNodes: map[string]bool{"b": true}})
	if err != nil {
		t.Fatal(err)
	}
	if pathString(path) != "a-c-d" {
		t.Errorf("path avoiding b = %v", path)
	}
	if _, err := topo.CSPF(PathRequest{From: "a", To: "d", ExcludeNodes: map[string]bool{"a": true}}); err == nil {
		t.Error("excluded source accepted")
	}
}

func TestCSPFMinDelayObjective(t *testing.T) {
	topo := NewTopology()
	for _, n := range []string{"a", "b", "c"} {
		topo.AddNode(n)
	}
	// a->b direct: metric 1, delay 100 ms. a->c->b: metric 10, delay 2 ms.
	if err := topo.AddLink("a", "b", LinkAttrs{CapacityBPS: 1e6, Metric: 1, DelaySec: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("a", "c", LinkAttrs{CapacityBPS: 1e6, Metric: 5, DelaySec: 0.001}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("c", "b", LinkAttrs{CapacityBPS: 1e6, Metric: 5, DelaySec: 0.001}); err != nil {
		t.Fatal(err)
	}
	byMetric, err := topo.CSPF(PathRequest{From: "a", To: "b"})
	if err != nil || pathString(byMetric) != "a-b" {
		t.Errorf("metric path = %v (%v)", byMetric, err)
	}
	byDelay, err := topo.CSPF(PathRequest{From: "a", To: "b", Objective: MinDelay})
	if err != nil || pathString(byDelay) != "a-c-b" {
		t.Errorf("delay path = %v (%v)", byDelay, err)
	}
}

func TestTopologyErrors(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	if err := topo.AddLink("a", "ghost", LinkAttrs{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("link to ghost: %v", err)
	}
	if err := topo.AddLink("ghost", "a", LinkAttrs{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("link from ghost: %v", err)
	}
	if _, err := topo.CSPF(PathRequest{From: "ghost", To: "a"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("CSPF from ghost: %v", err)
	}
	if _, err := topo.CSPF(PathRequest{From: "a", To: "ghost"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("CSPF to ghost: %v", err)
	}
	if err := topo.Reserve([]string{"a"}, 1); !errors.Is(err, ErrNoLink) {
		t.Errorf("short path reserve: %v", err)
	}
	if err := topo.Reserve([]string{"a", "b"}, 1); !errors.Is(err, ErrNoLink) {
		t.Errorf("missing link reserve: %v", err)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("a")
	topo.AddNode("z")
	if _, err := topo.CSPF(PathRequest{From: "a", To: "z"}); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestNodesAndNeighboursSorted(t *testing.T) {
	topo := diamond(t)
	nodes := topo.Nodes()
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v", nodes)
		}
	}
	nb := topo.Neighbours("a")
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Errorf("neighbours(a) = %v", nb)
	}
	if topo.Neighbours("e") == nil {
		// e has one neighbour d
		t.Error("neighbours(e) should not be nil")
	}
}

func TestCSPFMaxHops(t *testing.T) {
	topo := diamond(t)
	// a->e is 3 hops at best.
	path, err := topo.CSPF(PathRequest{From: "a", To: "e", MaxHops: 3})
	if err != nil || len(path) != 4 {
		t.Errorf("MaxHops 3: path=%v err=%v", path, err)
	}
	if _, err := topo.CSPF(PathRequest{From: "a", To: "e", MaxHops: 2}); !errors.Is(err, ErrNoPath) {
		t.Errorf("MaxHops 2 should fail: %v", err)
	}
	// Zero means unbounded.
	if _, err := topo.CSPF(PathRequest{From: "a", To: "e"}); err != nil {
		t.Errorf("unbounded: %v", err)
	}
}

func TestSelfPath(t *testing.T) {
	topo := diamond(t)
	path, err := topo.CSPF(PathRequest{From: "a", To: "a"})
	if err != nil || len(path) != 1 || path[0] != "a" {
		t.Errorf("self path = %v (%v)", path, err)
	}
}
