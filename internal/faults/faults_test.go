package faults

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

func lineNet(t *testing.T) *router.Network {
	t.Helper()
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.001},
		{A: "b", B: "c", RateBPS: 10e6, Delay: 0.001},
	}
	n, err := router.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{
		Links: [][2]string{{"a", "b"}, {"b", "c"}}, Duration: 2,
		Flaps: 3, Corruptions: 2, DelaySpikes: 2,
	}
	s1 := Generate(42, spec)
	s2 := Generate(42, spec)
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed produced different schedules")
	}
	s3 := Generate(7, spec)
	if reflect.DeepEqual(s1.Events, s3.Events) {
		t.Error("different seeds produced identical schedules")
	}
	if len(s1.Events) != 2*spec.Flaps+spec.Corruptions+spec.DelaySpikes {
		t.Errorf("got %d events", len(s1.Events))
	}
	for i := 1; i < len(s1.Events); i++ {
		if s1.Events[i].At < s1.Events[i-1].At {
			t.Fatalf("events not time-ordered: %v", s1.Events)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	if s := Generate(1, GenSpec{}); len(s.Events) != 0 {
		t.Errorf("empty spec produced %d events", len(s.Events))
	}
}

func TestInjectorLinkFlap(t *testing.T) {
	n := lineNet(t)
	var ev telemetry.EventCounters
	in := NewInjector(n, &ev)
	s := Schedule{Events: []Event{
		{At: 0.1, Kind: LinkDown, A: "a", B: "b"},
		{At: 0.2, Kind: LinkUp, A: "a", B: "b"},
	}}
	if err := in.Apply(s); err != nil {
		t.Fatal(err)
	}
	l, _ := n.Router("a").Link("b")
	n.Sim.RunUntil(0.15)
	if !l.Down() {
		t.Error("link not down at t=0.15")
	}
	n.Sim.RunUntil(0.25)
	if l.Down() {
		t.Error("link not restored at t=0.25")
	}
	if got := ev.Get(telemetry.EventLinkFlap); got != 1 {
		t.Errorf("link_flap = %d, want 1", got)
	}
	if len(in.Log()) != 2 {
		t.Errorf("log = %v", in.Log())
	}
}

func TestInjectorRejectsUnknownLink(t *testing.T) {
	n := lineNet(t)
	in := NewInjector(n, nil)
	err := in.Apply(Schedule{Events: []Event{{At: 0, Kind: LinkDown, A: "a", B: "ghost"}}})
	if err == nil {
		t.Error("unknown link accepted")
	}
	err = in.Apply(Schedule{Events: []Event{{At: 0, Kind: Corrupt, A: "a", B: "c"}}})
	if err == nil {
		t.Error("nonexistent link accepted")
	}
}

// setupLineLSP installs a->b->c and returns the destination.
func setupLineLSP(t *testing.T, n *router.Network) packet.Addr {
	t.Helper()
	dst := packet.AddrFrom(10, 0, 0, 1)
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c"},
	}); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestCorruptionCausesLookupMiss(t *testing.T) {
	n := lineNet(t)
	dst := setupLineLSP(t, n)
	var drops telemetry.DropCounters
	n.SetTelemetry(telemetry.Sink{Drops: &drops})

	in := NewInjector(n, nil)
	// Corrupt every packet on a->b from t=0.05 for 0.1s.
	if err := in.Apply(Schedule{Seed: 3, Events: []Event{
		{At: 0.05, Kind: Corrupt, A: "a", B: "b", Duration: 0.1, Every: 1},
	}}); err != nil {
		t.Fatal(err)
	}

	delivered := 0
	n.Router("c").OnDeliver = func(*packet.Packet) { delivered++ }
	for i := 0; i < 20; i++ {
		i := i
		n.Sim.Schedule(float64(i)*0.01, func() {
			n.Router("a").Inject(packet.New(1, dst, 64, make([]byte, 64)))
		})
	}
	n.Sim.Run()

	// Packets sent in [0.05, 0.15) were corrupted on the wire and died
	// at b with the paper's lookup-miss discard.
	if miss := drops.Get(telemetry.ReasonLookupMiss); miss == 0 {
		t.Error("corruption produced no lookup-miss drops")
	}
	if delivered == 20 {
		t.Error("corruption did not reduce delivery")
	}
	if delivered == 0 {
		t.Error("all packets lost — corruption window leaked outside [0.05,0.15)")
	}
}

func TestDelaySpikeStretchesLatency(t *testing.T) {
	latency := func(spike bool) float64 {
		n := lineNet(t)
		dst := setupLineLSP(t, n)
		if spike {
			in := NewInjector(n, nil)
			if err := in.Apply(Schedule{Events: []Event{
				{At: 0, Kind: DelaySpike, A: "a", B: "b", Duration: 1, Extra: 0.010},
			}}); err != nil {
				t.Fatal(err)
			}
		}
		var got float64
		n.Router("c").OnDeliver = func(p *packet.Packet) { got = n.Sim.Now() - p.SentAt }
		n.Sim.Schedule(0.01, func() {
			p := packet.New(1, dst, 64, make([]byte, 64))
			p.SentAt = n.Sim.Now()
			n.Router("a").Inject(p)
		})
		n.Sim.Run()
		return got
	}
	base, spiked := latency(false), latency(true)
	if spiked < base+0.009 {
		t.Errorf("delay spike did not bite: base %.4fs spiked %.4fs", base, spiked)
	}
}

func TestShardStallStillProcesses(t *testing.T) {
	e := dataplane.New(dataplane.WithWorkers(2), dataplane.WithQueueCap(64), dataplane.WithBatch(4))
	defer e.Close()
	e.SetStallHook(ShardStall(2, 100*time.Microsecond))
	if err := e.InstallILM(100, swmpls.NHLFE{NextHop: "p", Op: label.OpSwap, PushLabels: []label.Label{200}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p := packet.New(1, packet.AddrFrom(10, 0, 0, 1), 64, nil)
		p.Header.FlowID = uint16(i)
		if err := p.Stack.Push(label.Entry{Label: 100, TTL: 64}); err != nil {
			t.Fatal(err)
		}
		e.Submit([]*packet.Packet{p}, dataplane.SubmitOpts{Wait: true})
	}
	e.Close()
	s := e.Snapshot()
	if s.Processed() != 200 {
		t.Errorf("processed %d of 200 under stall", s.Processed())
	}
}

func TestFailFirst(t *testing.T) {
	h := FailFirst(2)
	if err := h(); !errors.Is(err, ErrInjected) {
		t.Errorf("call 1: %v", err)
	}
	if err := h(); !errors.Is(err, ErrInjected) {
		t.Errorf("call 2: %v", err)
	}
	if err := h(); err != nil {
		t.Errorf("call 3: %v", err)
	}
}

func TestFailEvery(t *testing.T) {
	h := FailEvery(3)
	var fails int
	for i := 0; i < 9; i++ {
		if h() != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("fails = %d, want 3", fails)
	}
}

func TestWriteFailuresHookOnInfobase(t *testing.T) {
	ib := infobase.New()
	ib.SetWriteHook(WriteFailures(FailFirst(1)))
	p := infobase.Pair{Index: 5, NewLabel: 100, Op: label.OpSwap}
	if err := ib.Write(infobase.Level2, p); !errors.Is(err, ErrInjected) {
		t.Errorf("first write: %v", err)
	}
	if got := ib.Count(infobase.Level2); got != 0 {
		t.Errorf("failed write stored a pair: count=%d", got)
	}
	if err := ib.Write(infobase.Level2, p); err != nil {
		t.Errorf("second write: %v", err)
	}
	ib.SetWriteHook(nil)
	if err := ib.Write(infobase.Level2, infobase.Pair{Index: 6, NewLabel: 101, Op: label.OpSwap}); err != nil {
		t.Errorf("hook removal: %v", err)
	}
}

func TestPublishHookFailsUpdate(t *testing.T) {
	e := dataplane.New(dataplane.WithWorkers(1))
	defer e.Close()
	e.SetPublishHook(FailFirst(1))
	err := e.InstallILM(100, swmpls.NHLFE{NextHop: "p", Op: label.OpSwap, PushLabels: []label.Label{200}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first install: %v", err)
	}
	if e.Updates() != 0 {
		t.Error("failed publish still counted a snapshot")
	}
	// The live table is unchanged: the packet must miss.
	p := packet.New(1, packet.AddrFrom(10, 0, 0, 1), 64, nil)
	if err := p.Stack.Push(label.Entry{Label: 100, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if res := e.ProcessInline(p); res.Action != swmpls.Drop {
		t.Errorf("table changed despite failed publish: %v", res)
	}
	// The retry succeeds and the entry is live.
	if err := e.InstallILM(100, swmpls.NHLFE{NextHop: "p", Op: label.OpSwap, PushLabels: []label.Label{200}}); err != nil {
		t.Fatal(err)
	}
	q := packet.New(1, packet.AddrFrom(10, 0, 0, 1), 64, nil)
	if err := q.Stack.Push(label.Entry{Label: 100, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if res := e.ProcessInline(q); res.Action != swmpls.Forward {
		t.Errorf("entry not live after retried publish: %v", res)
	}
}

func TestSessionSever(t *testing.T) {
	// Generating severs draws from the rng after everything else, so a
	// seed's flap/corrupt/spike prefix is unchanged by adding them.
	spec := GenSpec{
		Links: [][2]string{{"a", "b"}, {"b", "c"}}, Duration: 2,
		Flaps: 3, Corruptions: 2, DelaySpikes: 2,
	}
	base := Generate(42, spec)
	spec.SessionSevers = 2
	with := Generate(42, spec)
	if len(with.Events) != len(base.Events)+2 {
		t.Fatalf("got %d events, want %d", len(with.Events), len(base.Events)+2)
	}
	severs := 0
	for _, e := range with.Events {
		if e.Kind == SessionSever {
			severs++
			if e.Duration <= 0 {
				t.Errorf("sever with no window: %v", e)
			}
			if got := e.String(); got == "" || e.Kind.String() != "session-sever" {
				t.Errorf("event renders %q, kind %q", got, e.Kind)
			}
		}
	}
	if severs != 2 {
		t.Fatalf("got %d sever events, want 2", severs)
	}

	// Applying a schedule with severs needs the hook...
	n := lineNet(t)
	in := NewInjector(n, nil)
	sched := Schedule{Events: []Event{{At: 0.1, Kind: SessionSever, A: "a", B: "b", Duration: 0.3}}}
	if err := in.Apply(sched); err == nil {
		t.Fatal("Apply accepted sever events without a hook")
	}

	// ...and with one, the hook fires at the scheduled time.
	var got []string
	in = NewInjector(n, nil)
	in.SetSessionSever(func(a, b string, d float64) error {
		got = append(got, a+"-"+b)
		if d != 0.3 {
			t.Errorf("sever duration = %g, want 0.3", d)
		}
		return nil
	})
	if err := in.Apply(sched); err != nil {
		t.Fatal(err)
	}
	n.Sim.RunUntil(0.2)
	if len(got) != 1 || got[0] != "a-b" {
		t.Fatalf("sever hook calls = %v", got)
	}
	if len(in.Log()) != 1 {
		t.Errorf("log = %v", in.Log())
	}
}
