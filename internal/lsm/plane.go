package lsm

import (
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// Drop maps an LSM discard onto the software forwarder's drop taxonomy
// — the same mapping the embedded device applies: a failed search is a
// missing label binding, and an operation the verifier rejects
// manifests as a stack the packet cannot legally grow.
func (d DiscardReason) Drop() swmpls.DropReason {
	switch d {
	case DiscardNotFound:
		return swmpls.DropNoLabel
	case DiscardTTLExpired:
		return swmpls.DropTTLExpired
	case DiscardInconsistent:
		return swmpls.DropStackOverflow
	default:
		return swmpls.DropNone
	}
}

// ProcessPacket runs one packet through the modifier under the unified
// plane contract (plane.Plane): the packet's stack is loaded via user
// pushes, one Update applies the stored label program, and the modified
// stack is spliced back — the device's data path without its interfaces
// or next-hop tables. Because the modifier holds no next hops, Forward
// results carry an empty NextHop; wrap the modifier in a device when
// next-hop selection matters. Telemetry attached with SetTelemetry is
// recorded by Update itself.
func (m *Behavioral) ProcessPacket(p *packet.Packet) swmpls.Result {
	wasLabelled := p.Labelled()
	var oldTop label.Entry
	if wasLabelled {
		oldTop, _ = p.Stack.Top()
	}
	m.Reset()
	for _, e := range p.Stack.Entries() {
		if err := m.UserPush(e); err != nil {
			return swmpls.Result{Action: swmpls.Drop, Drop: swmpls.DropStackOverflow}
		}
	}
	res := m.Update(UpdateRequest{PacketID: p.Identifier(), TTLIn: p.Header.TTL})
	if res.Discarded() {
		drop := res.Discard.Drop()
		// An unlabelled packet with no level-1 match (or rejected by an
		// LSR) has no MPLS route rather than a bad label.
		if !wasLabelled && (res.Discard == DiscardNotFound || res.Discard == DiscardInconsistent) {
			drop = swmpls.DropNoRoute
		}
		return swmpls.Result{Action: swmpls.Drop, Drop: drop}
	}
	p.Stack = m.Stack().Clone()
	if res.Op == label.OpPop && p.Stack.Empty() {
		// End of the LSP: write the decremented TTL back to the IP header.
		ttl := oldTop.TTL
		if ttl > 0 {
			ttl--
		}
		p.Header.TTL = ttl
		return swmpls.Result{Action: swmpls.Deliver, Op: res.Op}
	}
	return swmpls.Result{Action: swmpls.Forward, Op: res.Op}
}
