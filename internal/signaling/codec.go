// Package signaling implements an LDP-style label distribution
// protocol over the wire transport: per-neighbour sessions (discovery,
// initialisation, keepalive liveness) exchanging typed label messages,
// so each node learns its label bindings from its peers instead of
// computing them from a ghost copy of the whole topology.
//
// The package splits into three layers. The codec (this file) is the
// wire format — fixed-size header plus two short variable sections,
// encoded with the same zero-allocation discipline as the transport
// framing. The session FSM (session.go) runs one neighbour adjacency.
// The speaker (speaker.go) owns the sessions of one node and the
// downstream-on-demand label distribution logic on top of them.
package signaling

import (
	"errors"
	"fmt"
	"math"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/transport"
)

// MsgType enumerates signaling message types.
type MsgType uint8

// Message types. Hello/Init/Keepalive drive the session FSM; the Label*
// types carry downstream-on-demand label distribution; Reroute is the
// resilience plane asking an ingress for a protection switch; Error is
// a terminal notification for a request that cannot be satisfied.
const (
	MsgHello MsgType = iota + 1
	MsgInit
	MsgKeepalive
	MsgLabelRequest
	MsgLabelMapping
	MsgLabelWithdraw
	MsgLabelRelease
	MsgReroute
	MsgError

	msgTypeEnd
)

var msgNames = [...]string{
	MsgHello:         "hello",
	MsgInit:          "init",
	MsgKeepalive:     "keepalive",
	MsgLabelRequest:  "label-request",
	MsgLabelMapping:  "label-mapping",
	MsgLabelWithdraw: "label-withdraw",
	MsgLabelRelease:  "label-release",
	MsgReroute:       "reroute",
	MsgError:         "error",
}

// String names the message type for logs and timelines.
func (t MsgType) String() string {
	if t >= 1 && t < msgTypeEnd {
		return msgNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t >= 1 && t < msgTypeEnd }

// Wire format constants.
const (
	// Version is the signaling wire version; every other version is
	// rejected at decode.
	Version = 1

	// magic0/magic1 open every message ("LD"), so a stray payload
	// punted to the control sink is rejected before any field is
	// trusted.
	magic0 = 0x4C
	magic1 = 0x44

	// headerSize is the fixed portion of every message. The ID bytes
	// and the route hops follow.
	headerSize = 40

	// MaxIDLen bounds the LSP identifier carried in label messages.
	MaxIDLen = 24

	// MaxRouteLen bounds the explicit route vector.
	MaxRouteLen = 255
)

// Codec errors. Decode failures carry one of these (wrapped with
// detail) so callers can drop bad messages by class.
var (
	ErrTruncated = errors.New("signaling: truncated message")
	ErrMagic     = errors.New("signaling: bad magic")
	ErrVersion   = errors.New("signaling: unsupported version")
	ErrBadField  = errors.New("signaling: bad field")
)

// Message is one signaling PDU. The field set is the union over all
// message types — session messages use only Type/Src/Hold, label
// messages the FEC/label/route block — kept flat so one reusable
// struct decodes every message with zero allocations.
type Message struct {
	Type MsgType
	// Src is the sending node.
	Src transport.NodeID
	// PHP requests penultimate-hop popping for the LSP.
	PHP bool
	// Code qualifies Error messages (ErrCode* values).
	Code uint8
	// FEC is the forwarding equivalence class the label binds to.
	FEC ldp.FEC
	// CoS is stamped on ingress pushes of the LSP.
	CoS label.CoS
	// Label is the advertised binding (mapping/withdraw/release).
	Label label.Label
	// Bandwidth to reserve per hop, bits per second.
	Bandwidth float64
	// Hold is the session hold time offered in Hello/Init, seconds.
	Hold float64
	// Avoid names a link (by node pair) the receiver should route
	// around when acting on a Withdraw or Reroute. Both zero: unset.
	Avoid [2]transport.NodeID
	// IDLen and ID carry the LSP identifier (fixed array so decode
	// never allocates).
	IDLen uint8
	ID    [MaxIDLen]byte
	// Route is the remaining explicit route, ingress-relative, for
	// label requests travelling downstream.
	Route []transport.NodeID
}

// SetID stores s as the message's LSP identifier, truncating to
// MaxIDLen.
func (m *Message) SetID(s string) {
	n := copy(m.ID[:], s)
	m.IDLen = uint8(n)
}

// IDString returns the LSP identifier as a string (allocates; control
// path only).
func (m *Message) IDString() string { return string(m.ID[:m.IDLen]) }

// Error codes carried by MsgError.
const (
	ErrCodeNoRoute     uint8 = 1 // no path to the FEC
	ErrCodeNoBandwidth uint8 = 2 // admission control refused the reservation
	ErrCodeBadRequest  uint8 = 3 // malformed or unsupported request
)

// AppendMessage encodes m onto dst and returns the extended slice. The
// append-style signature keeps encoding allocation-free when the
// caller reuses its buffer.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	if !m.Type.Valid() {
		return dst, fmt.Errorf("%w: type %d", ErrBadField, m.Type)
	}
	if int(m.IDLen) > MaxIDLen {
		return dst, fmt.Errorf("%w: id length %d > %d", ErrBadField, m.IDLen, MaxIDLen)
	}
	if len(m.Route) > MaxRouteLen {
		return dst, fmt.Errorf("%w: route length %d > %d", ErrBadField, len(m.Route), MaxRouteLen)
	}
	if m.FEC.PrefixLen < 0 || m.FEC.PrefixLen > 32 {
		return dst, fmt.Errorf("%w: prefix length %d", ErrBadField, m.FEC.PrefixLen)
	}
	dst = append(dst,
		magic0, magic1, Version, byte(m.Type),
		byte(m.Src>>8), byte(m.Src),
		m.flags(), m.Code,
		byte(m.FEC.Dst>>24), byte(m.FEC.Dst>>16), byte(m.FEC.Dst>>8), byte(m.FEC.Dst),
		byte(m.FEC.PrefixLen), byte(m.CoS),
		byte(m.Label>>24), byte(m.Label>>16), byte(m.Label>>8), byte(m.Label),
	)
	dst = appendFloat(dst, m.Bandwidth)
	dst = appendFloat(dst, m.Hold)
	dst = append(dst,
		byte(m.Avoid[0]>>8), byte(m.Avoid[0]),
		byte(m.Avoid[1]>>8), byte(m.Avoid[1]),
		m.IDLen, byte(len(m.Route)),
	)
	dst = append(dst, m.ID[:m.IDLen]...)
	for _, hop := range m.Route {
		dst = append(dst, byte(hop>>8), byte(hop))
	}
	return dst, nil
}

func appendFloat(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	return append(dst,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

func readFloat(b []byte) float64 {
	bits := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return math.Float64frombits(bits)
}

func (m *Message) flags() byte {
	var f byte
	if m.PHP {
		f |= 1
	}
	return f
}

// DecodeMessage parses buf into m, reusing m's route storage so a
// long-lived receive-side Message never allocates. Every byte of buf
// must belong to the message; trailing garbage is an error.
func DecodeMessage(m *Message, buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("%w: %d bytes < header %d", ErrTruncated, len(buf), headerSize)
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return fmt.Errorf("%w: %#02x %#02x", ErrMagic, buf[0], buf[1])
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	t := MsgType(buf[3])
	if !t.Valid() {
		return fmt.Errorf("%w: type %d", ErrBadField, buf[3])
	}
	if buf[6]&^1 != 0 {
		return fmt.Errorf("%w: unknown flags %#02x", ErrBadField, buf[6])
	}
	if buf[12] > 32 {
		return fmt.Errorf("%w: prefix length %d", ErrBadField, buf[12])
	}
	idLen := int(buf[38])
	routeLen := int(buf[39])
	if idLen > MaxIDLen {
		return fmt.Errorf("%w: id length %d > %d", ErrBadField, idLen, MaxIDLen)
	}
	want := headerSize + idLen + 2*routeLen
	if len(buf) != want {
		return fmt.Errorf("%w: %d bytes, want %d", ErrTruncated, len(buf), want)
	}
	m.Type = t
	m.Src = transport.NodeID(buf[4])<<8 | transport.NodeID(buf[5])
	m.PHP = buf[6]&1 != 0
	m.Code = buf[7]
	m.FEC.Dst = packet.Addr(buf[8])<<24 | packet.Addr(buf[9])<<16 | packet.Addr(buf[10])<<8 | packet.Addr(buf[11])
	m.FEC.PrefixLen = int(buf[12])
	m.CoS = label.CoS(buf[13])
	m.Label = label.Label(buf[14])<<24 | label.Label(buf[15])<<16 | label.Label(buf[16])<<8 | label.Label(buf[17])
	m.Bandwidth = readFloat(buf[18:])
	m.Hold = readFloat(buf[26:])
	m.Avoid[0] = transport.NodeID(buf[34])<<8 | transport.NodeID(buf[35])
	m.Avoid[1] = transport.NodeID(buf[36])<<8 | transport.NodeID(buf[37])
	m.IDLen = uint8(idLen)
	copy(m.ID[:], buf[headerSize:headerSize+idLen])
	if cap(m.Route) < routeLen {
		m.Route = make([]transport.NodeID, routeLen)
	}
	m.Route = m.Route[:routeLen]
	for i := 0; i < routeLen; i++ {
		off := headerSize + idLen + 2*i
		m.Route[i] = transport.NodeID(buf[off])<<8 | transport.NodeID(buf[off+1])
	}
	return nil
}
