package dataplane

import (
	"sync"
	"sync/atomic"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// TestCloseUnderFire hammers a closing engine from every public entry
// point at once — non-blocking submits, blocking submits, batches, table
// publishes, snapshots and a second concurrent Close — and checks the
// shutdown contract: no panic, no deadlock, and the final snapshot
// accounts for every accepted packet (the stats merge is ordered before
// Close returns). Run under -race.
func TestCloseUnderFire(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		e := New(WithWorkers(4), WithQueueCap(16), WithBatch(4))
		if err := e.InstallILM(100, swmpls.NHLFE{
			NextHop: "peer", Op: label.OpSwap, PushLabels: []label.Label{200},
		}); err != nil {
			t.Fatal(err)
		}

		var accepted atomic.Uint64
		var wg sync.WaitGroup
		mk := func(i int) *packet.Packet {
			p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
			p.Header.FlowID = uint16(i)
			if err := p.Stack.Push(label.Entry{Label: 100, TTL: 64}); err != nil {
				panic(err)
			}
			return p
		}

		// Non-blocking and blocking submitters.
		for g := 0; g < 2; g++ {
			wg.Add(2)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					if submit(e, mk(i)) {
						accepted.Add(1)
					}
				}
			}(g)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					if submitWait(e, mk(i)) {
						accepted.Add(1)
					}
				}
			}(g)
		}
		// Batch submitter.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				batch := make([]*packet.Packet, 8)
				for j := range batch {
					batch[j] = mk(i*8 + j)
				}
				accepted.Add(uint64(e.Submit(batch, SubmitOpts{Wait: i%2 == 0})))
			}
		}()
		// Table publisher racing the shutdown.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = e.Update(func(f *swmpls.Forwarder) error {
					return f.InstallILM(label.Label(500+i%50), swmpls.NHLFE{
						NextHop: "peer", Op: label.OpSwap, PushLabels: []label.Label{201},
					})
				})
			}
		}()
		// Concurrent snapshot reader.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = e.Snapshot()
			}
		}()
		// Two racing closers, starting mid-traffic.
		var closers sync.WaitGroup
		for g := 0; g < 2; g++ {
			closers.Add(1)
			go func() {
				defer closers.Done()
				e.Close()
			}()
		}

		closers.Wait() // Close has returned: the snapshot must be final.
		final := e.Snapshot()
		wg.Wait() // late submitters must all have been refused
		s := e.Snapshot()

		if got, want := s.Processed(), s.Submitted.Events; got != want {
			t.Fatalf("trial %d: processed %d of %d accepted packets", trial, got, want)
		}
		if final.Processed() != s.Processed() {
			t.Fatalf("trial %d: snapshot moved after Close: %d -> %d",
				trial, final.Processed(), s.Processed())
		}
		if got, want := s.Submitted.Events, accepted.Load(); got != want {
			t.Fatalf("trial %d: engine counted %d submitted, callers saw %d accepted",
				trial, got, want)
		}
	}
}
