package plane_test

import (
	"testing"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/device"
	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/plane"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// Every forwarding engine in the repository implements the unified
// plane contract.
var (
	_ plane.Plane = (*swmpls.Forwarder)(nil)
	_ plane.Plane = (*lsm.Behavioral)(nil)
	_ plane.Plane = (*device.Device)(nil)
	_ plane.Plane = (*dataplane.Engine)(nil)
)

func transitPacket(lbl label.Label) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
	if err := p.Stack.Push(label.Entry{Label: lbl, TTL: 16}); err != nil {
		panic(err)
	}
	return p
}

// TestPlanesAgreeOnSwap programs the same swap binding into all four
// engines through their native install surfaces and drives them
// through plane.Plane alone: every engine must apply the swap, and
// with a sink attached every engine must count an unknown label as
// exactly one lookup-miss drop.
func TestPlanesAgreeOnSwap(t *testing.T) {
	swap := swmpls.NHLFE{NextHop: "b", Op: label.OpSwap, PushLabels: []label.Label{200}}

	fwd := swmpls.New()
	if err := fwd.MapLabel(100, swap); err != nil {
		t.Fatal(err)
	}

	mod := lsm.NewBehavioral(lsm.LSR)
	if err := mod.WritePair(infobase.Level2, infobase.Pair{Index: 100, NewLabel: 200, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}

	dev := device.New(lsm.LSR, lsm.DefaultClock)
	if err := dev.InstallILM(100, swap); err != nil {
		t.Fatal(err)
	}

	eng := dataplane.New(dataplane.WithWorkers(1))
	defer eng.Close()
	if err := eng.InstallILM(100, swap); err != nil {
		t.Fatal(err)
	}

	planes := map[string]plane.Plane{
		"swmpls": fwd, "lsm": mod, "device": dev, "engine": eng,
	}
	for name, pl := range planes {
		t.Run(name, func(t *testing.T) {
			drops := new(telemetry.DropCounters)
			ring := telemetry.NewRing(16)
			pl.SetTelemetry(telemetry.Sink{Drops: drops, Trace: ring, Node: name})

			p := transitPacket(100)
			res := pl.ProcessPacket(p)
			if res.Action != swmpls.Forward || res.Op != label.OpSwap {
				t.Fatalf("swap result = %+v", res)
			}
			if top, err := p.Stack.Top(); err != nil || top.Label != 200 {
				t.Fatalf("top after swap = %v, %v", top, err)
			}

			res = pl.ProcessPacket(transitPacket(999))
			if res.Action != swmpls.Drop {
				t.Fatalf("unknown label result = %+v", res)
			}
			if got := drops.Get(telemetry.ReasonLookupMiss); got != 1 {
				t.Errorf("lookup-miss drops = %d, want 1", got)
			}
			evs := ring.Events()
			if len(evs) != 2 {
				t.Fatalf("trace events = %d, want 2 (op + discard)", len(evs))
			}
			if evs[0].Node != name {
				t.Errorf("trace node = %q, want %q", evs[0].Node, name)
			}
		})
	}
}
