package frame

import (
	"bytes"
	"math/rand"
	"testing"
)

var (
	macA = MAC{0, 1, 2, 3, 4, 5}
	macB = MAC{6, 7, 8, 9, 10, 11}
)

func TestEthernetRoundTrip(t *testing.T) {
	payload := []byte("a network-layer packet that is longer than the minimum payload")
	buf, err := EncodeEthernet(macA, macB, EtherTypeMPLS, payload)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != macA || f.Src != macB || f.EtherType != EtherTypeMPLS {
		t.Errorf("header fields wrong: %+v", f)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload mismatch: %q", f.Payload)
	}
}

func TestEthernetPadding(t *testing.T) {
	buf, err := EncodeEthernet(macA, macB, EtherTypeIPv4, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != ethHeaderSize+EthMinPayload+ethFCSSize {
		t.Errorf("frame size %d, want minimum %d", len(buf), ethHeaderSize+EthMinPayload+ethFCSSize)
	}
	f, err := DecodeEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != EthMinPayload || !bytes.Equal(f.Payload[:3], []byte{1, 2, 3}) {
		t.Errorf("padded payload wrong: %v", f.Payload[:8])
	}
}

func TestEthernetErrors(t *testing.T) {
	if _, err := EncodeEthernet(macA, macB, 0, make([]byte, EthMaxPayload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	buf, _ := EncodeEthernet(macA, macB, 0, []byte("hello"))
	buf[20] ^= 0xff
	if _, err := DecodeEthernet(buf); err != ErrBadFCS {
		t.Errorf("corrupted frame: err = %v, want ErrBadFCS", err)
	}
	if _, err := DecodeEthernet(buf[:10]); err != ErrFrameTooShort {
		t.Errorf("short frame: err = %v", err)
	}
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "00:01:02:03:04:05" {
		t.Errorf("MAC string = %q", got)
	}
}

func TestAAL5RoundTripSizes(t *testing.T) {
	vc := VC{VPI: 1, VCI: 100}
	for _, n := range []int{0, 1, 39, 40, 41, 48, 100, 1500} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		cells, err := EncodeAAL5(vc, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantCells := (n + aal5TrailerSize + CellPayloadSize - 1) / CellPayloadSize
		if len(cells) != wantCells {
			t.Errorf("n=%d: %d cells, want %d", n, len(cells), wantCells)
		}
		got, err := DecodeAAL5(vc, cells)
		if err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("n=%d: payload mismatch", n)
		}
	}
}

func TestAAL5Errors(t *testing.T) {
	vc := VC{VPI: 1, VCI: 2}
	cells, _ := EncodeAAL5(vc, []byte("data"))
	if _, err := DecodeAAL5(vc, nil); err != ErrNoLastCell {
		t.Errorf("no cells: %v", err)
	}
	if _, err := DecodeAAL5(VC{VPI: 9}, cells); err == nil {
		t.Error("wrong VC accepted")
	}
	// Flip a payload bit: CRC must catch it.
	cells[0].Data[0] ^= 0xff
	if _, err := DecodeAAL5(vc, cells); err != ErrAAL5Checksum {
		t.Errorf("corrupted PDU: %v", err)
	}
	cells[0].Data[0] ^= 0xff
	// Drop the last-cell marker.
	cells[len(cells)-1].Last = false
	if _, err := DecodeAAL5(vc, cells); err == nil {
		t.Error("missing last-cell marker accepted")
	}
	if _, err := EncodeAAL5(vc, make([]byte, 1<<16)); err == nil {
		t.Error("oversized AAL5 payload accepted")
	}
}

func TestCellWireRoundTrip(t *testing.T) {
	c := Cell{VC: VC{VPI: 3, VCI: 777}, Last: true}
	for i := range c.Data {
		c.Data[i] = byte(i * 3)
	}
	buf := MarshalCell(c)
	if len(buf) != CellSize {
		t.Fatalf("cell size %d", len(buf))
	}
	got, err := UnmarshalCell(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Errorf("cell round trip mismatch")
	}
	if _, err := UnmarshalCell(buf[:52]); err == nil {
		t.Error("short cell accepted")
	}
}

func TestFrameRelayRoundTrip(t *testing.T) {
	f := FrameRelayFrame{DLCI: 666, FECN: true, DE: true, Payload: []byte("fr payload")}
	buf, err := EncodeFrameRelay(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrameRelay(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DLCI != 666 || !got.FECN || got.BECN || !got.DE {
		t.Errorf("fields: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload mismatch")
	}
}

func TestFrameRelayErrors(t *testing.T) {
	if _, err := EncodeFrameRelay(FrameRelayFrame{DLCI: MaxDLCI + 1}); err == nil {
		t.Error("oversized DLCI accepted")
	}
	buf, _ := EncodeFrameRelay(FrameRelayFrame{DLCI: 1, Payload: []byte("x")})
	buf[2] ^= 0x55
	if _, err := DecodeFrameRelay(buf); err != ErrBadFRFCS {
		t.Errorf("corrupt frame: %v", err)
	}
	if _, err := DecodeFrameRelay([]byte{1, 2}); err != ErrFrameTooShort {
		t.Errorf("short frame: %v", err)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CCITT-FALSE("123456789") = 0x29B1, a standard check value.
	if got := crc16CCITT([]byte("123456789")); got != 0x29b1 {
		t.Errorf("crc16 = %#x, want 0x29b1", got)
	}
}

func TestAdaptersRoundTripAllMedia(t *testing.T) {
	adapters := []Adapter{
		&EthernetAdapter{Local: macA, Remote: macB},
		&ATMAdapter{Circuit: VC{VPI: 2, VCI: 42}},
		&FrameRelayAdapter{DLCI: 99},
	}
	rng := rand.New(rand.NewSource(5))
	for _, a := range adapters {
		t.Run(a.Medium().String(), func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				payload := make([]byte, 1+rng.Intn(1200))
				rng.Read(payload)
				units, err := a.Encap(payload, trial%2 == 0)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.Decap(units)
				if err != nil {
					t.Fatal(err)
				}
				// Ethernet pads short payloads; the prefix must match and
				// the rest must be zeros.
				if len(got) < len(payload) || !bytes.Equal(got[:len(payload)], payload) {
					t.Fatalf("trial %d: payload mismatch", trial)
				}
				for _, b := range got[len(payload):] {
					if b != 0 {
						t.Fatalf("trial %d: nonzero padding", trial)
					}
				}
				// Overhead accounting must match the actual bytes sent.
				total := 0
				for _, u := range units {
					total += len(u)
				}
				if total != len(payload)+a.Overhead(len(payload)) {
					t.Errorf("trial %d: wire=%d, payload+overhead=%d",
						trial, total, len(payload)+a.Overhead(len(payload)))
				}
			}
		})
	}
}

func TestAdapterDecapErrors(t *testing.T) {
	eth := &EthernetAdapter{Local: macA, Remote: macB}
	if _, err := eth.Decap(nil); err == nil {
		t.Error("ethernet Decap(nil) accepted")
	}
	atm := &ATMAdapter{Circuit: VC{VCI: 1}}
	if _, err := atm.Decap(nil); err != ErrNoUnits {
		t.Errorf("atm Decap(nil): %v", err)
	}
	fr := &FrameRelayAdapter{DLCI: 5}
	other, _ := (&FrameRelayAdapter{DLCI: 6}).Encap([]byte("x"), false)
	if _, err := fr.Decap(other); err == nil {
		t.Error("frame relay accepted a foreign DLCI")
	}
}
