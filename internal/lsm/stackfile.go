package lsm

import (
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
)

// StackFile is the register file holding the label stack in the data path
// (paper Figure 12, "LABEL STACK"): label.MaxDepth 32-bit entry registers
// plus an item counter. It is a synchronous component — push, pop, TTL
// rewrite and clear all take effect on the clock edge — with the bottom-
// of-stack bit maintained in hardware (an entry pushed onto an empty
// stack gets S=1, every other push S=0).
//
// Control signals (all sampled on the edge; Clr dominates, then Pop+Push
// together act as an atomic replace):
//
//	Clr     — reset the stack (discard the packet)
//	Push    — push Din
//	Pop     — remove the top entry
//	SetTTL  — rewrite the TTL of the (possibly new) top entry with TTLIn
//
// Outputs (combinational): Top (packed 32-bit top entry, 0 when empty)
// and Size.
type StackFile struct {
	Clr    *rtl.Signal
	Push   *rtl.Signal
	Pop    *rtl.Signal
	SetTTL *rtl.Signal
	Din    *rtl.Signal // packed 32-bit entry to push
	TTLIn  *rtl.Signal // TTL for SetTTL
	Top    *rtl.Signal // packed 32-bit top entry
	Size   *rtl.Signal // current number of entries

	entries [label.MaxDepth]uint32
	size    int

	// latched command
	doClr, doPush, doPop, doSetTTL bool
	din                            uint32
	ttlIn                          uint8
}

// NewStackFile creates the stack register file, wires its output signals
// and registers it with the simulator. The caller provides the control
// signals; output signals are created here with the given name prefix.
func NewStackFile(sim *rtl.Simulator, prefix string, clr, push, pop, setTTL, din, ttlIn *rtl.Signal) *StackFile {
	s := &StackFile{
		Clr: clr, Push: push, Pop: pop, SetTTL: setTTL, Din: din, TTLIn: ttlIn,
		Top:  sim.Signal(prefix+"top", 32),
		Size: sim.Signal(prefix+"size", 2),
	}
	sim.Add(s)
	return s
}

// Latch samples the control and data inputs.
func (s *StackFile) Latch() {
	s.doClr = s.Clr.Bool()
	s.doPush = s.Push.Bool()
	s.doPop = s.Pop.Bool()
	s.doSetTTL = s.SetTTL.Bool()
	s.din = uint32(s.Din.Get())
	s.ttlIn = uint8(s.TTLIn.Get())
}

// Commit applies the latched command and drives the outputs.
func (s *StackFile) Commit() {
	switch {
	case s.doClr:
		s.size = 0
	default:
		if s.doPop && s.size > 0 {
			s.size--
		}
		if s.doPush && s.size < label.MaxDepth {
			e := label.Unpack(s.din)
			e.Bottom = s.size == 0
			s.entries[s.size] = e.MustPack()
			s.size++
		}
		if s.doSetTTL && s.size > 0 {
			e := label.Unpack(s.entries[s.size-1])
			e.TTL = s.ttlIn
			s.entries[s.size-1] = e.MustPack()
		}
	}
	s.drive()
}

func (s *StackFile) drive() {
	if s.size == 0 {
		s.Top.Set(0)
	} else {
		s.Top.Set(uint64(s.entries[s.size-1]))
	}
	s.Size.Set(uint64(s.size))
}

// Snapshot copies the current stack contents into a label.Stack for
// test-bench inspection.
func (s *StackFile) Snapshot() *label.Stack {
	st := &label.Stack{}
	for i := 0; i < s.size; i++ {
		if err := st.Push(label.Unpack(s.entries[i])); err != nil {
			panic("lsm: stack file deeper than label.MaxDepth: " + err.Error())
		}
	}
	return st
}
