package config

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

const goodScenario = `{
  "name": "qos demo",
  "duration_s": 0.5,
  "nodes": [
    {"name": "in", "plane": "hardware", "type": "ler"},
    {"name": "core", "plane": "hardware", "type": "lsr"},
    {"name": "out", "plane": "software"}
  ],
  "links": [
    {"a": "in", "b": "core", "rate_mbps": 10, "delay_ms": 1, "queue": "priority"},
    {"a": "core", "b": "out", "rate_mbps": 2, "delay_ms": 1, "queue": "priority", "queue_cap": 32}
  ],
  "lsps": [
    {"id": "voice", "dst": "10.9.0.1", "path": ["in", "core", "out"], "cos": 5},
    {"id": "bulk", "dst": "10.9.0.2", "from": "in", "to": "out", "bandwidth_mbps": 1}
  ],
  "flows": [
    {"id": 1, "kind": "voip", "from": "in", "dst": "10.9.0.1"},
    {"id": 2, "kind": "bulk", "from": "in", "dst": "10.9.0.2", "rate_mbps": 4, "size_bytes": 1000}
  ]
}`

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("192.168.1.10")
	if err != nil || a != packet.AddrFrom(192, 168, 1, 10) {
		t.Errorf("ParseAddr = %v, %v", a, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "1.2.3.x", "1.2.3.300", "-1.2.3.4"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestLoadGoodScenario(t *testing.T) {
	s, err := Load(strings.NewReader(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "qos demo" || len(s.Nodes) != 3 || len(s.LSPs) != 2 || len(s.Flows) != 2 {
		t.Errorf("parsed scenario %+v", s)
	}
}

func TestLoadRejectsBadScenarios(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"nodes":[{"name":"a"}], "bogus": 1}`,
		"no nodes":      `{"nodes":[]}`,
		"dup node":      `{"nodes":[{"name":"a"},{"name":"a"}]}`,
		"bad plane":     `{"nodes":[{"name":"a","plane":"fpga"}]}`,
		"bad type":      `{"nodes":[{"name":"a","type":"core"}]}`,
		"bad link":      `{"nodes":[{"name":"a"}],"links":[{"a":"a","b":"ghost","rate_mbps":1}]}`,
		"zero rate":     `{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"a":"a","b":"b"}]}`,
		"bad queue":     `{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"a":"a","b":"b","rate_mbps":1,"queue":"lifo"}]}`,
		"lsp no path":   `{"nodes":[{"name":"a"}],"lsps":[{"id":"l","dst":"1.2.3.4"}]}`,
		"lsp bad dst":   `{"nodes":[{"name":"a"}],"lsps":[{"id":"l","dst":"zzz","path":["a","b"]}]}`,
		"flow bad src":  `{"nodes":[{"name":"a"}],"flows":[{"id":1,"kind":"voip","from":"x","dst":"1.2.3.4"}]}`,
		"flow bad kind": `{"nodes":[{"name":"a"}],"flows":[{"id":1,"kind":"warp","from":"a","dst":"1.2.3.4"}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(body)); err == nil {
				t.Errorf("accepted: %s", body)
			}
		})
	}
}

func TestBuildAndRunScenario(t *testing.T) {
	s, err := Load(strings.NewReader(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Egresses) != 1 || b.Egresses[0] != "out" {
		t.Errorf("egresses = %v", b.Egresses)
	}
	end := b.Run()
	if end < 0.5 {
		t.Errorf("simulation ended at %gs, want >= duration", end)
	}
	voice := b.Collector.Flow(1)
	bulk := b.Collector.Flow(2)
	if voice.Sent.Events == 0 || bulk.Sent.Events == 0 {
		t.Fatal("flows generated no traffic")
	}
	// Priority queues on a congested core: voice delivers cleanly.
	if voice.LossRate() != 0 {
		t.Errorf("voice loss %.1f%%", 100*voice.LossRate())
	}
	if bulk.LossRate() == 0 {
		t.Error("bulk saw no loss at 2x overload")
	}
}

func TestBuildFailures(t *testing.T) {
	// CSPF cannot satisfy the bandwidth.
	s, err := Load(strings.NewReader(`{
	  "duration_s": 1,
	  "nodes": [{"name":"a"},{"name":"b"}],
	  "links": [{"a":"a","b":"b","rate_mbps":1,"delay_ms":1}],
	  "lsps": [{"id":"l","dst":"10.0.0.1","from":"a","to":"b","bandwidth_mbps":5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(); err == nil {
		t.Error("infeasible LSP built")
	}
	// Flow that stops before it starts.
	s2, err := Load(strings.NewReader(`{
	  "duration_s": 1,
	  "nodes": [{"name":"a"},{"name":"b"}],
	  "links": [{"a":"a","b":"b","rate_mbps":1,"delay_ms":1}],
	  "lsps": [{"id":"l","dst":"10.0.0.1","path":["a","b"]}],
	  "flows": [{"id":1,"kind":"voip","from":"a","dst":"10.0.0.1","start_s":2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Build(); !errors.Is(err, ErrValidation) {
		t.Errorf("bad flow window: %v", err)
	}
	// Generator knobs missing.
	for _, kind := range []string{"cbr", "bulk", "poisson", "onoff"} {
		sc := &Scenario{DurationS: 1}
		if _, err := sc.generator(Flow{ID: 1, Kind: kind, Dst: "10.0.0.1"}); err == nil {
			t.Errorf("%s with no knobs accepted", kind)
		}
	}
}

// TestShippedScenarioFiles keeps the repository's scenarios/ directory
// loadable and buildable — a stale example file is a broken quickstart.
func TestShippedScenarioFiles(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no shipped scenario files found")
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			s, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Build(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// distributedLine renders a three-node line with a transport section on
// the given loopback addresses.
func distributedLine(addrs []string) string {
	return `{
  "name": "peer-scoped",
  "duration_s": 0.2,
  "nodes": [
    {"name": "in"}, {"name": "core"}, {"name": "out"}
  ],
  "links": [
    {"a": "in", "b": "core", "rate_mbps": 10, "delay_ms": 0.1},
    {"a": "core", "b": "out", "rate_mbps": 10, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l", "dst": "10.0.0.9", "path": ["in", "core", "out"]}
  ],
  "transport": {"kind": "udp", "nodes": {"in": "` + addrs[0] + `", "core": "` + addrs[1] + `", "out": "` + addrs[2] + `"}}
}`
}

func loopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = c.LocalAddr().String()
		c.Close()
	}
	return addrs
}

// TestBuildNodePeerScoped is the regression test for the distributed
// build contract: a node comes up knowing only its local links and its
// signaling peers — exactly one router is instantiated, no ghost
// replicas of the rest of the topology and no precomputed label state.
func TestBuildNodePeerScoped(t *testing.T) {
	s, err := Load(strings.NewReader(distributedLine(loopbackAddrs(t, 3))))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.BuildNode("core")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()

	if len(b.Net.Routers) != 1 {
		t.Errorf("BuildNode instantiated %d routers, want only the local one", len(b.Net.Routers))
	}
	if b.Net.Router("core") == nil {
		t.Fatal("local router missing")
	}
	if b.Speaker == nil || b.Speaker.Name() != "core" {
		t.Fatalf("speaker = %v, want one named core", b.Speaker)
	}
	peers := b.Speaker.Peers()
	if len(peers) != 2 {
		t.Errorf("speaker peers = %v, want the two physical neighbours", peers)
	}
	for _, p := range peers {
		if sess, ok := b.Speaker.Session(p); !ok || sess.Up() {
			t.Errorf("session to %s: ok=%v up=%v, want registered but not yet up", p, ok, sess.Up())
		}
	}
	// No label state exists before signaling converges: core is a
	// transit of the only LSP, so nothing may be preinstalled.
	if got := b.Events.Get(telemetry.EventLabelMapRx); got != 0 {
		t.Errorf("label_map_rx = %d before any peer exists", got)
	}
}

// TestBuildNodeGhost pins the legacy behaviour: every router is built
// in-process and label state is precomputed, no signaling involved.
func TestBuildNodeGhost(t *testing.T) {
	s, err := Load(strings.NewReader(distributedLine(loopbackAddrs(t, 3))))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.BuildNodeGhost("core")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	if len(b.Net.Routers) != 3 {
		t.Errorf("BuildNodeGhost built %d routers, want the full topology", len(b.Net.Routers))
	}
	if b.Speaker != nil {
		t.Error("ghost build should not create a speaker")
	}
}

// TestLoadRejectsBadGuardSections covers the admission-guard knobs:
// range checks on the defaults and topology checks on the per-link
// overrides.
func TestLoadRejectsBadGuardSections(t *testing.T) {
	base := `{
  "nodes": [{"name":"a"},{"name":"b"},{"name":"c"}],
  "links": [
    {"a":"a","b":"b","rate_mbps":1,"delay_ms":1},
    {"a":"b","b":"c","rate_mbps":1,"delay_ms":1}
  ],
  "guard": `
	cases := map[string]string{
		"ttl out of range":   `{"ttl_min": 300}`,
		"negative rate":      `{"rate_pps": -1}`,
		"negative burst":     `{"burst": -4}`,
		"negative window":    `{"quarantine_window_s": -0.5}`,
		"unknown guard node": `{"links": [{"node":"a","peer":"ghost"}]}`,
		"no such link":       `{"links": [{"node":"a","peer":"c"}]}`,
		"bad link ttl":       `{"links": [{"node":"a","peer":"b","ttl_min":-1}]}`,
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(base + g + "}")); !errors.Is(err, ErrValidation) {
				t.Errorf("guard %s: err = %v, want ErrValidation", g, err)
			}
		})
	}
	// The same section with the knobs in range loads cleanly.
	ok := `{"spoof_filter": true, "ttl_min": 2, "rate_pps": 100,
	        "links": [{"node":"a","peer":"b","spoof_filter":false}]}`
	if _, err := Load(strings.NewReader(base + ok + "}")); err != nil {
		t.Fatalf("valid guard section rejected: %v", err)
	}
}

// TestBuildNodeGuardWired proves the scenario's guard section arms a
// real admission guard on a distributed node: spoofed labels bounce,
// the drop is accounted, and builds without a section stay guardless.
func TestBuildNodeGuardWired(t *testing.T) {
	s, err := Load(strings.NewReader(distributedLine(loopbackAddrs(t, 3))))
	if err != nil {
		t.Fatal(err)
	}
	s.Guard = &GuardSection{
		SpoofFilter: true,
		TTLMin:      2,
		Links:       []GuardLink{{Node: "core", Peer: "in", TTLMin: 8}},
	}
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	b, err := s.BuildNode("core")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	if b.Guard == nil {
		t.Fatal("guard section did not arm a guard")
	}
	// Nothing was advertised to "out" yet, so a labelled arrival from it
	// is a spoof; the drop lands in the guard's counters.
	p := packet.New(packet.AddrFrom(10, 0, 0, 9), packet.AddrFrom(10, 0, 0, 1), 64, nil)
	if err := p.Stack.Push(label.Entry{Label: 5000, Bottom: true, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if b.Guard.Admit(p, "out") {
		t.Error("unadvertised label admitted from a neighbour")
	}
	if got := b.Guard.Drops().Get(telemetry.ReasonLabelSpoof); got != 1 {
		t.Errorf("label-spoof drops = %d, want 1", got)
	}
	// The per-link override tightened TTL on the in-facing side only.
	p2 := packet.New(packet.AddrFrom(10, 0, 0, 9), packet.AddrFrom(10, 0, 0, 1), 64, nil)
	if err := p2.Stack.Push(label.Entry{Label: 5001, Bottom: true, TTL: 4}); err != nil {
		t.Fatal(err)
	}
	if b.Guard.Admit(p2, "in") {
		t.Error("TTL 4 admitted from in, per-link override demands >= 8")
	}
	if got := b.Guard.Drops().Get(telemetry.ReasonTTLSecurity); got != 1 {
		t.Errorf("ttl-security drops = %d, want 1", got)
	}

	// No guard section, no guard.
	s2, err := Load(strings.NewReader(distributedLine(loopbackAddrs(t, 3))))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.BuildNode("core")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Net.Close()
	if b2.Guard != nil {
		t.Error("guardless scenario built a guard")
	}
}

// TestBuildNodeRejectsTunnels: tunnels need the in-process manager.
func TestBuildNodeRejectsTunnels(t *testing.T) {
	s, err := Load(strings.NewReader(distributedLine(loopbackAddrs(t, 3))))
	if err != nil {
		t.Fatal(err)
	}
	s.Tunnels = []Tunnel{{ID: "t", Path: []string{"in", "core", "out"}}}
	if _, err := s.BuildNode("core"); !errors.Is(err, ErrValidation) {
		t.Fatalf("BuildNode with tunnels: %v, want ErrValidation", err)
	}
}
