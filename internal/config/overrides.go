package config

import (
	"fmt"
	"strconv"
	"strings"
)

// Overrides is the consolidated runtime-override surface: every knob a
// node accepts outside its scenario file — CLI flags on mplsnode, the
// management plane's guard.set and config.reload RPCs — is expressed as
// one of these and folded into the scenario through the single Apply
// merge path. Before the management plane existed, mplsnode carried a
// bespoke parser per flag (-guard, -coalesce, -sysbatch); those parsers
// are gone and everything converges here, so file config, CLI flags and
// runtime RPCs cannot drift apart in how they mutate a scenario.
type Overrides struct {
	// Coalesce, when > 0, overrides the transport section's packets per
	// datagram on inter-process links.
	Coalesce int `json:"coalesce,omitempty"`
	// SysBatch, when > 0, overrides the transport section's datagrams
	// per send/receive syscall.
	SysBatch int `json:"sys_batch,omitempty"`
	// Shards, when > 0, overrides the transport section's engine shard
	// count (1 forces the serial per-packet path).
	Shards int `json:"shards,omitempty"`
	// Guard holds "key=value,key=value" admission-guard assignments
	// (spoof_filter, ttl_min, rate_pps, burst, quarantine_threshold,
	// quarantine_window_s, quarantine_hold_s), merged over the
	// scenario's guard section — only the keys present are touched, so
	// "spoof_filter=false" is expressible and unmentioned knobs keep
	// their file-configured values.
	Guard string `json:"guard,omitempty"`
}

// Empty reports whether the overrides change nothing.
func (o *Overrides) Empty() bool {
	return o == nil || (o.Coalesce <= 0 && o.SysBatch <= 0 && o.Shards <= 0 && o.Guard == "")
}

// Validate parses the override strings without touching any scenario,
// so flag errors surface at startup rather than on first Apply.
func (o *Overrides) Validate() error {
	if o == nil {
		return nil
	}
	var probe GuardSection
	return applyGuardSpec(&probe, o.Guard)
}

// Apply folds the overrides into s: batching knobs onto the transport
// section (when one exists) and guard assignments onto the guard
// section (created when the spec names any key and the file has none).
// This is the one merge path — mplsnode's flags at boot, guard.set and
// config.reload at runtime all go through it.
func (o *Overrides) Apply(s *Scenario) error {
	if o == nil {
		return nil
	}
	if s.Transport != nil {
		if o.Coalesce > 0 {
			s.Transport.Coalesce = o.Coalesce
		}
		if o.SysBatch > 0 {
			s.Transport.SysBatch = o.SysBatch
		}
		if o.Shards > 0 {
			s.Transport.Shards = o.Shards
		}
	}
	if o.Guard != "" {
		if s.Guard == nil {
			s.Guard = &GuardSection{}
		}
		if err := applyGuardSpec(s.Guard, o.Guard); err != nil {
			return err
		}
	}
	return s.validate()
}

// applyGuardSpec assigns a "key=value,key=value" spec onto g. Only the
// keys present in the spec are assigned.
func applyGuardSpec(g *GuardSection, spec string) error {
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("%w: guard override %q is not key=value", ErrValidation, kv)
		}
		var err error
		switch k {
		case "spoof_filter":
			g.SpoofFilter, err = strconv.ParseBool(v)
		case "ttl_min":
			g.TTLMin, err = strconv.Atoi(v)
		case "rate_pps":
			g.RatePPS, err = strconv.ParseFloat(v, 64)
		case "burst":
			g.Burst, err = strconv.Atoi(v)
		case "quarantine_threshold":
			g.QuarantineThreshold, err = strconv.Atoi(v)
		case "quarantine_window_s":
			g.QuarantineWindowS, err = strconv.ParseFloat(v, 64)
		case "quarantine_hold_s":
			g.QuarantineHoldS, err = strconv.ParseFloat(v, 64)
		default:
			return fmt.Errorf("%w: unknown guard key %q", ErrValidation, k)
		}
		if err != nil {
			return fmt.Errorf("%w: guard override %q: %v", ErrValidation, kv, err)
		}
	}
	return nil
}
