package infobase

import (
	"errors"
	"sync"
	"testing"

	"embeddedmpls/internal/label"
)

// Every level must publish atomically: a reader racing a writer sees
// either the old or the new level, never a half-written triple, and a
// write rejected by the injected hook leaves nothing visible. These
// tests run under `make race` for both store kinds.

func bothStores(t *testing.T, f func(t *testing.T, s Store)) {
	t.Run("linear", func(t *testing.T) { f(t, New()) })
	t.Run("indexed", func(t *testing.T) { f(t, New(WithIndex(true))) })
}

// TestWriteHookErrorLeavesNothingVisible pins the fixed fault path: a
// hook failure mid-burst must leave the level exactly as it was — no
// partial triple, no count change, no index entry.
func TestWriteHookErrorLeavesNothingVisible(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		if err := s.Write(Level2, Pair{Index: 1, NewLabel: 10, Op: label.OpSwap}); err != nil {
			t.Fatal(err)
		}
		boom := errors.New("flaky memory")
		s.SetWriteHook(func(Level, Pair) error { return boom })
		if err := s.Write(Level2, Pair{Index: 2, NewLabel: 20, Op: label.OpSwap}); !errors.Is(err, boom) {
			t.Fatalf("hooked write: err = %v, want %v", err, boom)
		}
		if n := s.Count(Level2); n != 1 {
			t.Errorf("count after failed write = %d, want 1", n)
		}
		if _, _, ok := s.Lookup(Level2, 2); ok {
			t.Error("failed write is visible to Lookup")
		}
		if got := s.Entries(Level2); len(got) != 1 || got[0].Index != 1 {
			t.Errorf("entries after failed write = %v", got)
		}
		s.SetWriteHook(nil)
		if err := s.Write(Level2, Pair{Index: 2, NewLabel: 20, Op: label.OpSwap}); err != nil {
			t.Fatalf("write after hook removal: %v", err)
		}
	})
}

// TestConcurrentLookupDuringWrites races readers against one writer
// (the store's contract: single control-plane writer, many readers).
// Under -race this proves the atomic level publish; functionally it
// checks a reader only ever sees fully-written pairs.
func TestConcurrentLookupDuringWrites(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		const writes = 400
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for k := Key(0); k < writes; k++ {
						lbl, op, ok := s.Lookup(Level2, k)
						if !ok {
							continue
						}
						// Every written pair carries NewLabel == Index+1
						// and OpSwap; anything else is a torn read.
						if lbl != label.Label(k+1) || op != label.OpSwap {
							t.Errorf("torn pair for key %d: (%d, %v)", k, lbl, op)
							return
						}
					}
					_ = s.Entries(Level2)
				}
			}()
		}
		for k := Key(0); k < writes; k++ {
			if err := s.Write(Level2, Pair{Index: k, NewLabel: label.Label(k + 1), Op: label.OpSwap}); err != nil {
				t.Error(err)
				break
			}
			if k%16 == 0 {
				s.Remove(Level2, k)
			}
		}
		close(stop)
		wg.Wait()
	})
}
