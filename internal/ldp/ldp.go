// Package ldp implements the label distribution side of the architecture
// — the "routing functionality" the paper keeps in software. It sets up
// label switched paths along explicit routes (in the style of CR-LDP /
// RSVP-TE, which the paper cites as the label distribution protocols that
// make MPLS useful for traffic engineering and QoS) using ordered
// downstream label allocation: the router at the downstream end of each
// hop owns the label for that hop, and a label mapping message propagates
// upstream installing the forwarding entries.
//
// Hierarchical LSPs (the paper's Figure 3 tunnels) are supported: a
// tunnel is an LSP without a FEC, and another LSP may use the tunnel
// head->tail as one of its hops, which materialises as a label push at
// the head and a pop-and-reexamine at the tail — exactly the label stack
// behaviour the embedded hardware implements.
package ldp

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
)

// Installer is a router's table programming surface. Both data planes
// (the embedded device and the software forwarder) provide it.
type Installer interface {
	InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error
	InstallILM(in label.Label, n swmpls.NHLFE) error
	RemoveILM(in label.Label)
	RemoveFEC(dst packet.Addr, prefixLen int)
}

// FEC is the forwarding equivalence class an LSP carries: a destination
// prefix. The embedded hardware exact-matches packet identifiers, so for
// hardware routers PrefixLen must be 32.
type FEC struct {
	Dst       packet.Addr
	PrefixLen int
}

// LSP describes one established label switched path.
type LSP struct {
	ID   string
	FEC  *FEC // nil for tunnels
	Path []string
	// HopLabels[i] is the label owned by Path[i+1] for the hop into it
	// (zero where the hop rides a tunnel and reuses the upstream label).
	HopLabels []label.Label
	// Bandwidth reserved on every (non-tunnel) hop.
	Bandwidth float64
	// PHP: the penultimate router pops instead of the egress.
	PHP bool
	// CoS stamped on labels pushed at the ingress.
	CoS label.CoS
	// Tunnel marks an LSP with no FEC, usable as a hop by other LSPs.
	Tunnel bool

	installed []installedEntry
	reserved  [][]string // topology segments holding reservations
}

type installedEntry struct {
	router string
	isFEC  bool
	fec    FEC
	in     label.Label
}

// Message is one logged label-mapping exchange, for tests and tracing.
type Message struct {
	From, To string
	LSP      string
	Label    label.Label
}

// Manager coordinates label allocation and LSP setup across routers.
type Manager struct {
	topo    *te.Topology
	routers map[string]Installer
	lsps    map[string]*LSP
	next    label.Label
	// Messages logs every label mapping sent, upstream order.
	Messages []Message
}

// Manager errors.
var (
	ErrUnknownRouter = errors.New("ldp: unknown router")
	ErrDuplicateLSP  = errors.New("ldp: LSP id already exists")
	ErrUnknownLSP    = errors.New("ldp: unknown LSP")
	ErrBadPath       = errors.New("ldp: invalid explicit path")
	ErrTunnelInUse   = errors.New("ldp: tunnel is used by another LSP")
	ErrNotAdjacent   = errors.New("ldp: consecutive hops not adjacent")
)

// NewManager builds a manager over the given topology.
func NewManager(topo *te.Topology) *Manager {
	return &Manager{
		topo:    topo,
		routers: make(map[string]Installer),
		lsps:    make(map[string]*LSP),
		next:    label.FirstUnreserved,
	}
}

// Register adds a router's programming surface under its name. The name
// must be a node of the topology.
func (m *Manager) Register(name string, inst Installer) error {
	found := false
	for _, n := range m.topo.Nodes() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: %q not in topology", ErrUnknownRouter, name)
	}
	m.routers[name] = inst
	return nil
}

// allocLabel hands out platform-wide unique labels. Network-wide
// uniqueness is a valid special case of per-platform label spaces, and it
// is what lets a label ride a tunnel unchanged (the paper's Figure 3
// semantics) without collisions at the tunnel tail.
func (m *Manager) allocLabel() label.Label {
	l := m.next
	m.next++
	return l
}

// LSP returns an established LSP by id.
func (m *Manager) LSP(id string) (*LSP, bool) {
	l, ok := m.lsps[id]
	return l, ok
}

// SetupRequest describes an LSP to establish.
type SetupRequest struct {
	ID   string
	FEC  FEC
	Path []string
	// Bandwidth to reserve on each hop (0 = none).
	Bandwidth float64
	// PHP enables penultimate hop popping.
	PHP bool
	// CoS is stamped on labels pushed at the ingress, selecting the
	// scheduling class of the LSP's packets through the core.
	CoS label.CoS
}

// SetupLSP establishes an LSP along the explicit path. Consecutive path
// entries must either be adjacent in the topology or be the head and
// tail of an established tunnel; tunnel hops get a push at the head and
// reuse the upstream label through to the tail.
func (m *Manager) SetupLSP(req SetupRequest) (*LSP, error) {
	l, err := m.setup(req.ID, &req.FEC, req.Path, req.Bandwidth, req.PHP, req.CoS)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// SetupTunnel establishes a tunnel: an LSP with no FEC whose head/tail
// pair other LSPs can use as a hop. Tunnels must run over real topology
// links (no nested tunnels-in-tunnels; the hardware supports three stack
// levels, which two tunnel layers already exhaust for labelled traffic).
func (m *Manager) SetupTunnel(id string, path []string, bandwidth float64) (*LSP, error) {
	l, err := m.setup(id, nil, path, bandwidth, false, 0)
	if err != nil {
		return nil, err
	}
	l.Tunnel = true
	return l, nil
}

// findTunnel returns an established tunnel with the given head and tail.
func (m *Manager) findTunnel(head, tail string) *LSP {
	for _, l := range m.lsps {
		if l.Tunnel && l.Path[0] == head && l.Path[len(l.Path)-1] == tail {
			return l
		}
	}
	return nil
}

func (m *Manager) setup(id string, fec *FEC, path []string, bw float64, php bool, cos label.CoS) (*LSP, error) {
	if _, dup := m.lsps[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateLSP, id)
	}
	if len(path) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 hops, got %v", ErrBadPath, path)
	}
	if php && len(path) < 3 {
		return nil, fmt.Errorf("%w: PHP needs at least 3 hops", ErrBadPath)
	}
	for _, r := range path {
		if m.routers[r] == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownRouter, r)
		}
	}

	// Classify each hop: direct link or tunnel.
	hops := make([]pathHop, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		h := pathHop{from: path[i], to: path[i+1]}
		if _, ok := m.topo.Link(h.from, h.to); !ok {
			t := m.findTunnel(h.from, h.to)
			if t == nil {
				return nil, fmt.Errorf("%w: %s->%s", ErrNotAdjacent, h.from, h.to)
			}
			if fec == nil {
				return nil, fmt.Errorf("%w: tunnels cannot ride tunnels", ErrNotAdjacent)
			}
			h.tunnel = t
		}
		hops = append(hops, h)
	}
	if fec == nil && php {
		return nil, fmt.Errorf("%w: tunnels do not support PHP", ErrBadPath)
	}

	l := &LSP{ID: id, Path: append([]string(nil), path...), Bandwidth: bw, PHP: php, CoS: cos}
	if fec != nil {
		f := *fec
		l.FEC = &f
	}

	// Reserve bandwidth on direct segments (tunnel segments were
	// reserved by the tunnel itself).
	if bw > 0 {
		var seg []string
		flush := func() error {
			if len(seg) >= 2 {
				if err := m.topo.Reserve(seg, bw); err != nil {
					return err
				}
				l.reserved = append(l.reserved, append([]string(nil), seg...))
			}
			seg = nil
			return nil
		}
		for i, h := range hops {
			if h.tunnel != nil {
				if err := flush(); err != nil {
					m.rollback(l)
					return nil, err
				}
				continue
			}
			if len(seg) == 0 {
				seg = append(seg, h.from)
			}
			seg = append(seg, h.to)
			if i == len(hops)-1 {
				if err := flush(); err != nil {
					m.rollback(l)
					return nil, err
				}
			}
		}
	}

	// Ordered downstream allocation: walk hops from egress to ingress.
	// labelInto[i] is the label carried on the wire into Path[i+1].
	labelInto := make([]label.Label, len(hops))
	for i := len(hops) - 1; i >= 0; i-- {
		h := hops[i]
		if h.tunnel != nil {
			// The label is unchanged through the tunnel: the tail keys
			// on the same label the head received. For an ingress-side
			// tunnel hop there is no upstream label; handled below.
			if i == 0 {
				m.rollback(l)
				return nil, fmt.Errorf("%w: path cannot start with a tunnel hop at the ingress", ErrBadPath)
			}
			labelInto[i] = 0 // resolved to labelInto[i-1] at install time
			continue
		}
		if php && i == len(hops)-1 {
			// With PHP the egress receives unlabelled packets; the
			// penultimate hop carries the implicit-null convention.
			labelInto[i] = 0
			continue
		}
		labelInto[i] = m.allocLabel()
		m.Messages = append(m.Messages, Message{From: h.to, To: h.from, LSP: id, Label: labelInto[i]})
	}

	// Install entries from egress upstream so no router ever forwards
	// onto a not-yet-installed label.
	if err := m.install(l, hops, labelInto, php); err != nil {
		m.rollback(l)
		return nil, err
	}
	l.HopLabels = labelInto
	m.lsps[id] = l
	return l, nil
}

// pathHop is one hop of an explicit path: a direct link, or a ride over
// an established tunnel.
type pathHop struct {
	from, to string
	tunnel   *LSP
}

func (m *Manager) install(l *LSP, hops []pathHop, labelInto []label.Label, php bool) error {
	// carried[i]: the label on the packet as it arrives at Path[i+1].
	carried := make([]label.Label, len(hops))
	for i := range hops {
		if hops[i].tunnel != nil {
			carried[i] = carried[i-1]
		} else {
			carried[i] = labelInto[i]
		}
	}

	add := func(router string, e installedEntry, install func(Installer) error) error {
		inst := m.routers[router]
		if err := install(inst); err != nil {
			return fmt.Errorf("ldp: installing on %s: %w", router, err)
		}
		e.router = router
		l.installed = append(l.installed, e)
		return nil
	}

	// Egress and transit entries, downstream first.
	for i := len(hops) - 1; i >= 1; i-- {
		h := hops[i]
		in := carried[i-1] // label on the packet arriving at h.from
		router := h.from
		var n swmpls.NHLFE
		switch {
		case h.tunnel != nil:
			// Tunnel head: push the tunnel's first-hop label on top.
			tunnelFirst := h.tunnel.HopLabels[0]
			n = swmpls.NHLFE{NextHop: h.tunnel.Path[1], Op: label.OpPush, PushLabels: []label.Label{tunnelFirst}}
		case php && i == len(hops)-1:
			// Penultimate hop pops; egress receives an IP packet.
			n = swmpls.NHLFE{NextHop: h.to, Op: label.OpPop}
		default:
			n = swmpls.NHLFE{NextHop: h.to, Op: label.OpSwap, PushLabels: []label.Label{carried[i]}}
		}
		if err := add(router, installedEntry{in: in}, func(inst Installer) error {
			return inst.InstallILM(in, n)
		}); err != nil {
			return err
		}
	}

	// Terminal entry at the true egress (unless PHP already stripped the
	// label). Tunnels pop and re-examine locally (NextHop "").
	if !php {
		egress := l.Path[len(l.Path)-1]
		in := carried[len(carried)-1]
		n := swmpls.NHLFE{Op: label.OpPop}
		if l.FEC == nil {
			n.NextHop = "" // tunnel tail: pop, then re-examine the inner label
		}
		if err := add(egress, installedEntry{in: in}, func(inst Installer) error {
			return inst.InstallILM(in, n)
		}); err != nil {
			return err
		}
	}

	// Ingress FTN entry.
	if l.FEC != nil {
		ingress := l.Path[0]
		first := hops[0]
		n := swmpls.NHLFE{NextHop: first.to, Op: label.OpPush, PushLabels: []label.Label{carried[0]}, CoS: l.CoS}
		fec := *l.FEC
		if err := add(ingress, installedEntry{isFEC: true, fec: fec}, func(inst Installer) error {
			return inst.InstallFEC(fec.Dst, fec.PrefixLen, n)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Reroute moves an established LSP onto a new explicit path,
// make-before-break: the new path's labels are allocated and installed
// first, the ingress FTN entry is atomically replaced (installers have
// replace semantics per FEC), and only then is the old path's state torn
// down. The break is immediate, so in-flight packets on the old path are
// lost when their labels disappear; callers that can wait out the drain
// should use RerouteDeferred instead. Tunnels cannot be rerouted while
// in use.
func (m *Manager) Reroute(id string, newPath []string) error {
	brk, err := m.RerouteDeferred(id, newPath)
	if err != nil {
		return err
	}
	brk()
	return nil
}

// RerouteDeferred is Reroute with the break under the caller's control:
// the new path carries all freshly injected traffic the moment this
// returns, but the old path's label entries and reservations stay
// installed until the returned break function is called. Calling it
// after the longest in-flight packet has drained makes the switch
// genuinely lossless. The break function is idempotent and must be
// called eventually — until then the old path's bandwidth stays
// reserved (both paths are held during the transition, as
// make-before-break requires).
func (m *Manager) RerouteDeferred(id string, newPath []string) (func(), error) {
	old, ok := m.lsps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLSP, id)
	}
	if old.Tunnel {
		for _, other := range m.lsps {
			for i := 0; i+1 < len(other.Path); i++ {
				if other != old && other.Path[i] == old.Path[0] &&
					other.Path[i+1] == old.Path[len(old.Path)-1] {
					if _, direct := m.topo.Link(other.Path[i], other.Path[i+1]); !direct {
						return nil, fmt.Errorf("%w: %q rides %q", ErrTunnelInUse, other.ID, id)
					}
				}
			}
		}
	}
	// Establish the new path under the same id (freed from the registry
	// so setup does not see a duplicate; restored on failure).
	delete(m.lsps, id)
	fresh, err := m.setup(id, old.FEC, newPath, old.Bandwidth, old.PHP, old.CoS)
	if err != nil {
		m.lsps[id] = old
		return nil, err
	}
	fresh.Tunnel = old.Tunnel
	// Break: remove the old path's label entries and reservations. The
	// ingress FTN was already replaced by the new install, so it must
	// not be removed here.
	broken := false
	return func() {
		if broken {
			return
		}
		broken = true
		m.teardownState(old, true)
	}, nil
}

// TearDown removes an LSP's entries and reservations. Tearing down a
// tunnel still used by another LSP is refused.
func (m *Manager) TearDown(id string) error {
	l, ok := m.lsps[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownLSP, id)
	}
	if l.Tunnel {
		for _, other := range m.lsps {
			if other == l {
				continue
			}
			for i := 0; i+1 < len(other.Path); i++ {
				if _, direct := m.topo.Link(other.Path[i], other.Path[i+1]); !direct &&
					other.Path[i] == l.Path[0] && other.Path[i+1] == l.Path[len(l.Path)-1] {
					return fmt.Errorf("%w: %q rides %q", ErrTunnelInUse, other.ID, id)
				}
			}
		}
	}
	m.rollback(l)
	delete(m.lsps, id)
	return nil
}

// rollback removes whatever setup managed to install or reserve.
func (m *Manager) rollback(l *LSP) { m.teardownState(l, false) }

// teardownState removes an LSP's installed entries and reservations.
// skipFEC leaves the ingress FTN binding alone — used by Reroute, where
// the new path's install has already replaced it.
func (m *Manager) teardownState(l *LSP, skipFEC bool) {
	for _, e := range l.installed {
		inst := m.routers[e.router]
		if inst == nil {
			continue
		}
		if e.isFEC {
			if !skipFEC {
				inst.RemoveFEC(e.fec.Dst, e.fec.PrefixLen)
			}
		} else {
			inst.RemoveILM(e.in)
		}
	}
	l.installed = nil
	for _, seg := range l.reserved {
		// Release cannot fail on segments Reserve accepted.
		_ = m.topo.Release(seg, l.Bandwidth)
	}
	l.reserved = nil
}
