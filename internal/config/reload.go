package config

import (
	"fmt"
	"sort"

	"embeddedmpls/internal/guard"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/resilience"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/te"
)

// This file is the config.reload half of the management plane: a node
// re-Loads its scenario file, and ApplyDelta reconciles the running
// state against the new scenario without a restart. Additive and
// mutable changes apply live — new LSPs are signalled, removed ones
// released, changed ones re-signalled make-before-break, new flows
// start generating, guard policy retunes in place. Structural changes
// (topology, transport wiring) are reported as skipped: they need a
// process restart, and silently ignoring them would let the file and
// the running node drift apart unnoticed.

// ReloadReport says what ApplyDelta did, so the operator sees exactly
// which parts of the file took effect.
type ReloadReport struct {
	// AddedLSPs / RemovedLSPs / ChangedLSPs list reconciled LSP ids
	// whose ingress is this node (other nodes learn over the wire).
	AddedLSPs   []string `json:"added_lsps,omitempty"`
	RemovedLSPs []string `json:"removed_lsps,omitempty"`
	ChangedLSPs []string `json:"changed_lsps,omitempty"`
	// AddedFlows lists flow ids newly generating from this node.
	AddedFlows []uint16 `json:"added_flows,omitempty"`
	// GuardUpdated reports a live retune (or first arming) of the
	// admission guard.
	GuardUpdated bool `json:"guard_updated,omitempty"`
	// Skipped names changes the node detected but cannot apply without
	// a restart.
	Skipped []string `json:"skipped,omitempty"`
}

// Empty reports whether the reload was a no-op.
func (r *ReloadReport) Empty() bool {
	return len(r.AddedLSPs) == 0 && len(r.RemovedLSPs) == 0 && len(r.ChangedLSPs) == 0 &&
		len(r.AddedFlows) == 0 && !r.GuardUpdated && len(r.Skipped) == 0
}

// lspEqual compares the parts of an LSP declaration that affect the
// signalled path.
func lspEqual(a, b LSP) bool {
	if a.ID != b.ID || a.Dst != b.Dst || a.PrefixLen != b.PrefixLen ||
		a.From != b.From || a.To != b.To || a.BandwidthMbps != b.BandwidthMbps ||
		a.CoS != b.CoS || a.PHP != b.PHP || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// ApplyDelta reconciles the node's running state against next, which
// must already be validated (Load does this). The caller holds the
// network lock; BuildNode must have produced b (ApplyDelta drives the
// speaker). On success b.Scenario is replaced by next so later reloads
// diff against what is actually applied.
func (b *Built) ApplyDelta(next *Scenario) (*ReloadReport, error) {
	if b.Speaker == nil {
		return nil, fmt.Errorf("%w: ApplyDelta needs a signalled node (BuildNode)", ErrValidation)
	}
	cur := b.Scenario
	rep := &ReloadReport{}

	// Structural sections are immutable at runtime: sockets are bound,
	// links dialled, routers built. Detect, report, and apply nothing
	// from them.
	if !nodesEqual(cur.Nodes, next.Nodes) {
		rep.Skipped = append(rep.Skipped, "nodes: topology changes need a restart")
	}
	if !linksEqual(cur.Links, next.Links) {
		rep.Skipped = append(rep.Skipped, "links: topology changes need a restart")
	}
	if !transportEqual(cur.Transport, next.Transport) {
		rep.Skipped = append(rep.Skipped, "transport: wiring changes need a restart")
	}
	if len(next.Tunnels) > 0 {
		rep.Skipped = append(rep.Skipped, "tunnels: not supported in distributed mode")
	}

	// LSP reconciliation, ingress-local only: this node signals the
	// paths it heads; every other hop materialises via the wire.
	curLSPs := map[string]LSP{}
	for _, l := range cur.LSPs {
		curLSPs[l.ID] = l
	}
	nextLSPs := map[string]LSP{}
	for _, l := range next.LSPs {
		nextLSPs[l.ID] = l
		old, exists := curLSPs[l.ID]
		if exists && lspEqual(old, l) {
			continue
		}
		req, ingress, err := b.setupRequest(l)
		if err != nil {
			return nil, err
		}
		if !ingress {
			continue
		}
		if err := b.Speaker.Provision(req, nil); err != nil {
			return nil, fmt.Errorf("config: reload LSP %q: %w", l.ID, err)
		}
		if exists {
			rep.ChangedLSPs = append(rep.ChangedLSPs, l.ID)
		} else {
			rep.AddedLSPs = append(rep.AddedLSPs, l.ID)
		}
	}
	for _, l := range cur.LSPs {
		if _, kept := nextLSPs[l.ID]; kept {
			continue
		}
		if ing, err := b.lspIngress(l); err != nil || ing != b.LocalNode {
			continue
		}
		if err := b.Speaker.Teardown(l.ID); err == nil {
			rep.RemovedLSPs = append(rep.RemovedLSPs, l.ID)
		}
	}
	sort.Strings(rep.AddedLSPs)
	sort.Strings(rep.ChangedLSPs)
	sort.Strings(rep.RemovedLSPs)

	// Flow reconciliation: generators cannot be stopped once scheduled,
	// so only additions apply; a removed or changed flow is reported.
	curFlows := map[uint16]Flow{}
	for _, f := range cur.Flows {
		curFlows[f.ID] = f
	}
	for _, f := range next.Flows {
		old, exists := curFlows[f.ID]
		if exists {
			if old != f {
				rep.Skipped = append(rep.Skipped, fmt.Sprintf("flow %d: running generators cannot change", f.ID))
			}
			delete(curFlows, f.ID)
			continue
		}
		if f.From != b.LocalNode {
			continue
		}
		if err := b.AddFlow(next, f); err != nil {
			return nil, err
		}
		rep.AddedFlows = append(rep.AddedFlows, f.ID)
	}
	for id := range curFlows {
		rep.Skipped = append(rep.Skipped, fmt.Sprintf("flow %d: running generators cannot be removed", id))
	}
	sort.Slice(rep.AddedFlows, func(i, j int) bool { return rep.AddedFlows[i] < rep.AddedFlows[j] })
	sort.Strings(rep.Skipped)

	// Guard: live retune, or first arming of a node that booted open.
	if changed, err := b.applyGuardSection(next.Guard); err != nil {
		return nil, err
	} else if changed {
		rep.GuardUpdated = true
	}

	b.Scenario = next
	return rep, nil
}

// ProvisionLSP signals one scenario-shaped LSP declaration at runtime —
// the lsp.provision RPC path. The path may be explicit or CSPF-routed
// (From defaults to this node); its ingress must be this node, since a
// speaker can only head its own LSPs. Re-provisioning an id this node
// already heads switches it make-before-break. The caller holds the
// network lock; establishment is asynchronous (poll lsp.list).
func (b *Built) ProvisionLSP(l LSP) error {
	if len(l.Path) == 0 && l.From == "" {
		l.From = b.LocalNode
	}
	req, ingress, err := b.setupRequest(l)
	if err != nil {
		return err
	}
	if !ingress {
		return fmt.Errorf("%w: LSP %q starts at %q, not this node (%s)",
			ErrValidation, l.ID, req.Path[0], b.LocalNode)
	}
	if err := b.Speaker.Provision(req, nil); err != nil {
		return fmt.Errorf("config: LSP %q: %w", l.ID, err)
	}
	return nil
}

// setupRequest renders a scenario LSP as a signaling request, routing
// via CSPF when the file gives no explicit path, and marks the local
// egress delivery address. ingress reports whether this node heads the
// path (only then should the caller signal it).
func (b *Built) setupRequest(l LSP) (req ldp.SetupRequest, ingress bool, err error) {
	dst, err := ParseAddr(l.Dst)
	if err != nil {
		return req, false, fmt.Errorf("config: LSP %q: %w", l.ID, err)
	}
	path := l.Path
	if len(path) == 0 {
		path, err = b.Net.Topo.CSPF(te.PathRequest{
			From: l.From, To: l.To, BandwidthBPS: l.BandwidthMbps * 1e6,
		})
		if err != nil {
			return req, false, fmt.Errorf("config: LSP %q: %w", l.ID, err)
		}
	}
	if path[len(path)-1] == b.LocalNode {
		b.Net.Router(b.LocalNode).AddLocal(dst)
	}
	plen := l.PrefixLen
	if plen == 0 {
		plen = 32
	}
	req = ldp.SetupRequest{
		ID:        l.ID,
		FEC:       ldp.FEC{Dst: dst, PrefixLen: plen},
		Path:      path,
		Bandwidth: l.BandwidthMbps * 1e6,
		CoS:       label.CoS(l.CoS),
		PHP:       l.PHP,
	}
	return req, path[0] == b.LocalNode, nil
}

// lspIngress names the head of a declared LSP without signalling
// anything.
func (b *Built) lspIngress(l LSP) (string, error) {
	if len(l.Path) > 0 {
		return l.Path[0], nil
	}
	if l.From == "" {
		return "", fmt.Errorf("%w: LSP %q has no path or from", ErrValidation, l.ID)
	}
	return l.From, nil
}

// AddFlow installs one traffic generator at runtime. Unlike boot-time
// installation, start_s and stop_s are interpreted relative to the
// node's current clock — "start 1s from now, stop 10s from now" — and
// stop_s of 0 falls back to the scenario duration as a relative
// window. s supplies the duration default (the scenario the flow came
// from). The caller holds the network lock.
func (b *Built) AddFlow(s *Scenario, f Flow) error {
	now := float64(b.Net.Sim.Now())
	stop := f.StopS
	if stop == 0 {
		stop = s.DurationS
	}
	shifted := f
	shifted.StopS = now + stop
	// StartS stays as-is: generators schedule their first tick StartS
	// seconds after installation, which is already relative to now.
	gen, err := s.generator(shifted)
	if err != nil {
		return err
	}
	gen.Install(b.Net.Sim, b.Net.Router(b.LocalNode), b.Collector)
	return nil
}

// applyGuardSection reconciles the node's admission guard against a
// scenario guard section: retuning a live guard in place, or building
// and arming one on a node that booted without (the spoof filter
// learns the already-advertised labels from the speaker's replay). A
// nil section with a live guard is reported as changed=false — guards
// do not disarm at runtime, operators open individual checks instead
// (zero values admit everything). The caller holds the network lock.
func (b *Built) applyGuardSection(g *GuardSection) (changed bool, err error) {
	if g == nil {
		return false, nil
	}
	if sameGuardSection(b.Scenario.Guard, g) && b.Guard != nil {
		return false, nil
	}
	def := g.policy()
	if b.Guard == nil {
		gopts := []guard.Option{
			guard.WithDefaultPolicy(def),
			guard.WithControlFlows(signaling.FlowID, resilience.ProbeFlowID),
			guard.WithDropFunc(b.Net.Drop),
			guard.WithEvents(b.Events),
		}
		for _, gl := range g.Links {
			if gl.Node != b.LocalNode {
				continue
			}
			gopts = append(gopts, guard.WithLinkPolicy(gl.Peer, gl.policy(def)))
		}
		b.Guard = guard.New(gopts...)
		b.Net.SetGuard(b.Guard)
		b.Speaker.SetGuard(b.Guard)
		b.Guard.RegisterMetrics(b.Registry, b.LocalNode)
		return true, nil
	}
	b.Guard.SetDefaultPolicy(def)
	for _, gl := range g.Links {
		if gl.Node != b.LocalNode {
			continue
		}
		b.Guard.SetLinkPolicy(gl.Peer, gl.policy(def))
	}
	return true, nil
}

// SetGuardSpec applies a "key=value,key=value" guard override at
// runtime — the guard.set RPC path. It reuses the same Overrides merge
// path the -guard flag goes through at boot, then retunes (or arms)
// the live guard from the merged section. The caller holds the
// network lock.
func (b *Built) SetGuardSpec(spec string) (*GuardSection, error) {
	o := Overrides{Guard: spec}
	// Merge onto a copy of the running scenario so a bad spec cannot
	// leave the stored section half-assigned.
	merged := *b.Scenario
	if merged.Guard != nil {
		gcopy := *merged.Guard
		merged.Guard = &gcopy
	}
	if err := o.Apply(&merged); err != nil {
		return nil, err
	}
	// applyGuardSection diffs against b.Scenario.Guard (still the
	// pre-override section), so an actual change always retunes.
	if _, err := b.applyGuardSection(merged.Guard); err != nil {
		return nil, err
	}
	b.Scenario.Guard = merged.Guard
	return merged.Guard, nil
}

func nodesEqual(a, b []Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func linksEqual(a, b []Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func transportEqual(a, b *TransportSection) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Kind != b.Kind || a.Coalesce != b.Coalesce || a.SysBatch != b.SysBatch ||
		len(a.Nodes) != len(b.Nodes) || len(a.Mgmt) != len(b.Mgmt) {
		return false
	}
	for k, v := range a.Nodes {
		if b.Nodes[k] != v {
			return false
		}
	}
	for k, v := range a.Mgmt {
		if b.Mgmt[k] != v {
			return false
		}
	}
	return true
}

func sameGuardSection(a, b *GuardSection) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.SpoofFilter != b.SpoofFilter || a.TTLMin != b.TTLMin || a.RatePPS != b.RatePPS ||
		a.Burst != b.Burst || a.QuarantineThreshold != b.QuarantineThreshold ||
		a.QuarantineWindowS != b.QuarantineWindowS || a.QuarantineHoldS != b.QuarantineHoldS ||
		len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if !guardLinkEqual(a.Links[i], b.Links[i]) {
			return false
		}
	}
	return true
}

func guardLinkEqual(a, b GuardLink) bool {
	if a.Node != b.Node || a.Peer != b.Peer || a.TTLMin != b.TTLMin ||
		a.RatePPS != b.RatePPS || a.Burst != b.Burst ||
		a.QuarantineThreshold != b.QuarantineThreshold ||
		a.QuarantineWindowS != b.QuarantineWindowS || a.QuarantineHoldS != b.QuarantineHoldS {
		return false
	}
	if (a.SpoofFilter == nil) != (b.SpoofFilter == nil) {
		return false
	}
	return a.SpoofFilter == nil || *a.SpoofFilter == *b.SpoofFilter
}
