package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"time"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// maxReadSize bounds one datagram read; a 64 KiB slice covers the
// largest UDP payload, so no datagram is ever truncated by the reader.
const maxReadSize = 64 << 10

// Inbound is one decoded arrival: the packet and the name of the
// neighbour that sent it, resolved from the datagram's NodeID (or
// pinned by WithPeer on single-peer sockets).
type Inbound struct {
	P    *packet.Packet
	From string
}

// Receiver owns one UDP socket and turns its datagrams into batches of
// decoded packets. One recvmmsg syscall pulls up to WithSysBatch
// datagrams off the kernel queue, each datagram may be a coalesced
// frame carrying many packets, and arrivals accumulate until the batch
// is full or the flush interval expires, then go to the sink in one
// call — the socket-side mirror of dataplane.Engine's batched Submit, so
// a node's receive path amortises per-packet dispatch the same way its
// forwarding path does.
//
// The sink owns the packets only for the duration of the call: the
// receiver reuses their stack and payload storage for the next batch,
// which is what keeps the decode path allocation-free. Sinks that
// queue packets (dataplane submission does) must Clone them.
type Receiver struct {
	conn    *net.UDPConn
	rc      syscall.RawConn
	deliver func(batch []Inbound)

	peer  string
	names []string

	batch    []Inbound
	pending  int
	flushIvl time.Duration

	readBufs [][]byte
	sizes    []int
	io       *mmsgIO
	recvFn   func(fd uintptr) bool // stored once: no per-read closure alloc
	segFn    func(seg []byte) error
	recvN    int
	recvErr  syscall.Errno

	m         *Metrics
	drop      func(telemetry.Reason)
	preAdmit  func(peer string, labelled bool) bool
	malformed func(peer string)
	closed    atomic.Bool
	done      chan struct{}
}

// Listen opens a UDP receive socket on addr (":0" picks a free port)
// and starts the read loop, delivering decoded batches to sink.
func Listen(addr string, sink func(batch []Inbound), opts ...Option) (*Receiver, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	la, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return newReceiver(conn, sink, cfg)
}

// newReceiver wraps an already-bound socket — the seam ListenSharded
// uses to start one receiver per SO_REUSEPORT socket.
func newReceiver(conn *net.UDPConn, sink func(batch []Inbound), cfg config) (*Receiver, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	// Size the kernel's receive queue too: bursts larger than SO_RCVBUF
	// are silently shed by the kernel before the read loop ever sees
	// them. Best effort — some platforms clamp it.
	_ = conn.SetReadBuffer(cfg.readBuffer)
	r := &Receiver{
		conn:     conn,
		rc:       rc,
		deliver:  sink,
		peer:     cfg.peer,
		names:    cfg.names,
		batch:    make([]Inbound, cfg.batch),
		flushIvl: cfg.flushInterval,
		readBufs: make([][]byte, cfg.sysBatch),
		sizes:    make([]int, cfg.sysBatch),
		m:         cfg.metrics,
		drop:      cfg.drop,
		preAdmit:  cfg.preAdmit,
		malformed: cfg.malformed,
		done:      make(chan struct{}),
	}
	if r.m == nil {
		r.m = &Metrics{}
	}
	for i := range r.readBufs {
		r.readBufs[i] = make([]byte, maxReadSize)
	}
	for i := range r.batch {
		r.batch[i].P = &packet.Packet{}
	}
	if haveMmsg && cfg.sysBatch > 1 {
		r.io = newMmsgIO(cfg.sysBatch)
	}
	r.recvFn = r.recvStep
	r.segFn = func(seg []byte) error { r.ingestPacket(seg); return nil }
	go r.loop()
	return r, nil
}

// Addr returns the socket's bound address — the port to hand peers
// when listening on ":0".
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Metrics exposes the receiver's transport counters.
func (r *Receiver) Metrics() *Metrics { return r.m }

// Close stops the read loop and releases the socket. Idempotent; it
// returns after the loop has flushed its last batch and exited, so no
// sink call is in flight afterwards.
func (r *Receiver) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	err := r.conn.Close()
	<-r.done
	return err
}

// recvStep is the raw-connection read callback: one recvmmsg filling
// up to the loaded buffer ring. Stored once in recvFn so issuing it
// allocates nothing.
func (r *Receiver) recvStep(fd uintptr) bool {
	r.m.RxSyscalls.Add(1)
	n, errno := r.io.recvStep(fd)
	if errno == syscall.EAGAIN {
		return false
	}
	r.recvN, r.recvErr = n, errno
	return true
}

// readBatch blocks for at least one datagram (respecting the read
// deadline) and returns how many arrived, with their lengths in
// r.sizes. One recvmmsg drains up to the syscall batch; without the
// batched syscall each datagram costs one read.
func (r *Receiver) readBatch() (int, error) {
	if r.io != nil {
		r.io.load(r.readBufs)
		r.recvN, r.recvErr = 0, 0
		if err := r.rc.Read(r.recvFn); err != nil {
			return 0, err
		}
		if r.recvErr != 0 {
			return 0, r.recvErr
		}
		for i := 0; i < r.recvN; i++ {
			r.sizes[i] = r.io.size(i)
		}
		return r.recvN, nil
	}
	r.m.RxSyscalls.Add(1)
	n, err := r.conn.Read(r.readBufs[0])
	if err != nil {
		return 0, err
	}
	r.sizes[0] = n
	return 1, nil
}

// loop is the socket read loop: block for the first datagram of a
// batch, then drain with a short deadline so a burst fills the batch
// but a lone packet is not held hostage for longer than the flush
// interval.
func (r *Receiver) loop() {
	defer close(r.done)
	for {
		if r.pending == 0 {
			// Nothing buffered: block indefinitely for the next packet.
			r.conn.SetReadDeadline(time.Time{})
		} else {
			r.conn.SetReadDeadline(time.Now().Add(r.flushIvl))
		}
		n, err := r.readBatch()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				r.flush()
				continue
			}
			// Socket closed (or unrecoverable): deliver what we have
			// and stop.
			r.flush()
			return
		}
		var bytes uint64
		for i := 0; i < n; i++ {
			bytes += uint64(r.sizes[i])
		}
		r.m.RxDatagrams.Add(uint64(n))
		r.m.RxBytes.Add(bytes)
		for i := 0; i < n; i++ {
			r.ingestDatagram(r.readBufs[i][:r.sizes[i]])
		}
	}
}

// ingestDatagram routes one datagram to the right decoder: coalesced
// frames unpack segment by segment, anything else decodes as a single
// packet. Malformed framing — zero counts, count/length mismatches,
// truncated tails — surfaces as one wire-decode drop for the datagram;
// segment decode failures count individually.
func (r *Receiver) ingestDatagram(buf []byte) {
	if IsFrame(buf) {
		if err := ForEachFrameSegment(buf, r.segFn); err != nil {
			// Frame headers carry no NodeID; only a pinned single-peer
			// socket can attribute a malformed frame.
			r.decodeFailure(err, r.peer)
		}
		return
	}
	r.ingestPacket(buf)
}

// peerOf attributes a raw datagram to a neighbour before (or without)
// a successful decode: the pinned peer of a single-peer socket wins,
// otherwise the claimed NodeID is peeked from an intact header prefix.
// A spoofed NodeID attributes the datagram to whoever the sender
// claims to be — which is exactly what the quarantine breaker wants,
// since the real origin of hostile bytes is unknowable at this layer.
func (r *Receiver) peerOf(buf []byte) string {
	if r.peer != "" {
		return r.peer
	}
	if len(buf) >= 6 && buf[0] == magic0 && buf[1] == magic1 {
		if id := NodeID(buf[4])<<8 | NodeID(buf[5]); int(id) < len(r.names) {
			return r.names[id]
		}
	}
	return ""
}

// ingestPacket decodes one packet encoding into the next batch slot,
// accounting failures as wire-decode drops and flushing the batch when
// it fills.
func (r *Receiver) ingestPacket(buf []byte) {
	// Pre-decode admission: once the header prefix identifies the
	// claimed sender and whether the datagram carries labels, a guard
	// hook may refuse it before any decode work is spent. Datagrams too
	// damaged to peek fall through to the decoder, which rejects them.
	if r.preAdmit != nil && len(buf) >= 6 && buf[0] == magic0 && buf[1] == magic1 {
		if !r.preAdmit(r.peerOf(buf), buf[3]&flagLabelled != 0) {
			return
		}
	}
	slot := &r.batch[r.pending]
	src, err := DecodePacket(slot.P, buf)
	if err != nil {
		r.decodeFailure(err, r.peerOf(buf))
		return
	}
	r.m.RxPackets.Add(1)
	slot.From = r.peer
	if slot.From == "" && int(src) < len(r.names) {
		slot.From = r.names[src]
	}
	r.pending++
	if r.pending == len(r.batch) {
		r.flush()
	}
}

// decodeFailure accounts one undecodable datagram or frame segment,
// attributed to peer ("" when unattributable).
func (r *Receiver) decodeFailure(err error, peer string) {
	r.m.DecodeErrors.Add(1)
	if truncation(err) {
		r.m.ShortReads.Add(1)
	}
	if r.drop != nil {
		r.drop(telemetry.ReasonWireDecode)
	}
	if r.malformed != nil {
		r.malformed(peer)
	}
}

// flush hands the accumulated batch to the sink and rearms the slots.
func (r *Receiver) flush() {
	if r.pending == 0 {
		return
	}
	n := r.pending
	r.pending = 0
	r.deliver(r.batch[:n])
}
