package resilience

import (
	"reflect"
	"testing"

	"embeddedmpls/internal/telemetry"
)

func TestHealerProtectionSwitch(t *testing.T) {
	n := diamondNet(t)
	setupDiamondLSP(t, n)
	var ev telemetry.EventCounters
	tl := &Timeline{}
	h := NewHealer(n, n.Sim, HealerConfig{Events: &ev, Timeline: tl})
	if err := h.Protect("l"); err != nil {
		t.Fatal(err)
	}
	if err := h.Protect("ghost"); err == nil {
		t.Error("unknown LSP accepted")
	}
	if err := h.Protect("l"); err != nil {
		t.Errorf("duplicate protect should be a no-op: %v", err)
	}

	h.LinkDown("a", "b")
	n.Sim.Run()

	lsp, ok := n.LDP.LSP("l")
	if !ok {
		t.Fatal("LSP vanished")
	}
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("path = %v, want %v", lsp.Path, want)
	}
	if got := ev.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Errorf("protection_switch = %d, want 1", got)
	}
	if got := ev.Get(telemetry.EventRetryAttempt); got != 0 {
		t.Errorf("retry_attempt = %d, want 0 (first attempt succeeded)", got)
	}
	if tl.Len() == 0 {
		t.Error("timeline empty")
	}
}

func TestHealerSkipsUnaffectedLSPs(t *testing.T) {
	n := diamondNet(t)
	setupDiamondLSP(t, n)
	var ev telemetry.EventCounters
	h := NewHealer(n, n.Sim, HealerConfig{Events: &ev})
	if err := h.Protect("l"); err != nil {
		t.Fatal(err)
	}
	// The primary a-b-d does not use a-c: no switch.
	h.LinkDown("a", "c")
	n.Sim.Run()
	lsp, _ := n.LDP.LSP("l")
	if want := []string{"a", "b", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("path = %v, want %v", lsp.Path, want)
	}
	if got := ev.Get(telemetry.EventProtectionSwitch); got != 0 {
		t.Errorf("protection_switch = %d, want 0", got)
	}
}

func TestHealerTotalFailureThenRecovery(t *testing.T) {
	n := diamondNet(t)
	setupDiamondLSP(t, n)
	var ev telemetry.EventCounters
	tl := &Timeline{}
	h := NewHealer(n, n.Sim, HealerConfig{Events: &ev, Timeline: tl})
	if err := h.Protect("l"); err != nil {
		t.Fatal(err)
	}

	// First failure: a-b down, switch to a-c-d.
	h.LinkDown("a", "b")
	n.Sim.Run()
	lsp, _ := n.LDP.LSP("l")
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("after first failure path = %v, want %v", lsp.Path, want)
	}

	// Second failure: a-c down too — the diamond is severed, no repair
	// path exists; the LSP is marked broken, not thrashed.
	h.LinkDown("a", "c")
	n.Sim.Run()
	lsp, _ = n.LDP.LSP("l")
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("severed network still rerouted: %v", lsp.Path)
	}

	// Recovery of a-b: the broken LSP is re-healed onto the revived side.
	h.LinkUp("a", "b")
	n.Sim.Run()
	lsp, _ = n.LDP.LSP("l")
	if want := []string{"a", "b", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("after recovery path = %v, want %v", lsp.Path, want)
	}
	if got := ev.Get(telemetry.EventProtectionSwitch); got != 2 {
		t.Errorf("protection_switch = %d, want 2", got)
	}
}

func TestHealerDegraded(t *testing.T) {
	n := diamondNet(t)
	setupDiamondLSP(t, n)
	var ev telemetry.EventCounters
	h := NewHealer(n, n.Sim, HealerConfig{Events: &ev})
	if err := h.Protect("l"); err != nil {
		t.Fatal(err)
	}
	h.Degraded("ghost") // unknown: no-op
	h.Degraded("l")
	n.Sim.Run()
	lsp, _ := n.LDP.LSP("l")
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(lsp.Path, want) {
		t.Fatalf("degraded LSP not moved: %v", lsp.Path)
	}
	if got := ev.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Errorf("protection_switch = %d, want 1", got)
	}
}
