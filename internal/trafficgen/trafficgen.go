// Package trafficgen generates the synthetic workloads the paper's
// introduction motivates MPLS with — voice over IP, real-time streaming
// video, and bulk data — plus Poisson background traffic, and collects
// per-flow delivery statistics. Real traffic traces are replaced by these
// generators (the reproduction has no production network); each model's
// parameters are conventional for its application class.
package trafficgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/telemetry"
)

// Flow identifies one traffic stream.
type Flow struct {
	ID       uint16
	Src, Dst packet.Addr
	TTL      uint8
}

// Collector accumulates per-flow statistics at the receiving edge.
type Collector struct {
	sim      *netsim.Simulator
	flows    map[uint16]*stats.FlowStats
	series   map[uint16]*stats.Series
	binWidth float64

	// Drops aggregates watched loss by telemetry reason, alongside the
	// per-flow Dropped counters.
	Drops telemetry.DropCounters
}

// NewCollector builds a collector on the simulator.
func NewCollector(sim *netsim.Simulator) *Collector {
	return &Collector{sim: sim, flows: make(map[uint16]*stats.FlowStats)}
}

// TrackSeries enables per-flow delivery time series with the given bin
// width (seconds) — goodput-over-time for failure and congestion plots.
func (c *Collector) TrackSeries(binWidth float64) {
	c.series = make(map[uint16]*stats.Series)
	c.binWidth = binWidth
}

// Series returns a flow's delivery series, or nil if tracking is off or
// the flow never delivered.
func (c *Collector) Series(id uint16) *stats.Series {
	if c.series == nil {
		return nil
	}
	return c.series[id]
}

// Attach registers the collector as the router's delivery sink.
func (c *Collector) Attach(r *router.Router) {
	r.OnDeliver = func(p *packet.Packet) {
		f := c.flow(p.Header.FlowID)
		f.Delivered.Add(p.Size())
		f.Latency.Observe(c.sim.Now() - p.SentAt)
		if c.series != nil {
			s := c.series[p.Header.FlowID]
			if s == nil {
				s = stats.NewSeries(c.binWidth)
				c.series[p.Header.FlowID] = s
			}
			s.Count(c.sim.Now(), p.Size())
		}
	}
}

// WatchLink hooks the link's drop callback so queue-overfull losses are
// charged to the flow that suffered them (FlowStats.Dropped) and to the
// collector's per-reason totals. Before this hook existed those drops
// were visible only in the link scheduler's aggregate count, so
// Sent != Delivered + Dropped at the flow level whenever a queue
// overflowed.
func (c *Collector) WatchLink(l netsim.Wire) {
	l.SetOnDrop(func(p *packet.Packet, reason telemetry.Reason) {
		c.flow(p.Header.FlowID).Dropped.Add(p.Size())
		c.Drops.Inc(reason)
	})
}

// WatchRouter watches every outgoing link of r.
func (c *Collector) WatchRouter(r *router.Router) {
	for _, l := range r.Links() {
		c.WatchLink(l)
	}
}

func (c *Collector) flow(id uint16) *stats.FlowStats {
	f, ok := c.flows[id]
	if !ok {
		f = &stats.FlowStats{}
		c.flows[id] = f
	}
	return f
}

// Flow returns the statistics of one flow (allocating an empty record if
// it never appeared).
func (c *Collector) Flow(id uint16) *stats.FlowStats { return c.flow(id) }

// FlowIDs returns the observed flow ids, sorted.
func (c *Collector) FlowIDs() []uint16 {
	out := make([]uint16, 0, len(c.flows))
	for id := range c.flows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generator schedules packet injections at a source router.
type Generator interface {
	// Install schedules the generator's packets on the simulator,
	// injecting at src and accounting sends against the collector.
	Install(sim *netsim.Simulator, src *router.Router, c *Collector)
	// Describe names the workload for reports.
	Describe() string
}

// send stamps and injects one packet.
func send(sim *netsim.Simulator, src *router.Router, c *Collector, f Flow, seq uint64, size int) {
	ttl := f.TTL
	if ttl == 0 {
		ttl = 64
	}
	p := packet.New(f.Src, f.Dst, ttl, make([]byte, size))
	p.Header.FlowID = f.ID
	p.SeqNo = seq
	p.SentAt = sim.Now()
	c.flow(f.ID).Sent.Add(p.Size())
	src.Inject(p)
}

// CBR is a constant-bit-rate source: Size-byte payloads every Interval
// from Start to Stop. VoIP and paced bulk transfers are CBR instances.
type CBR struct {
	Flow     Flow
	Size     int // payload bytes per packet
	Interval netsim.Time
	Start    netsim.Time
	Stop     netsim.Time
}

// VoIP returns the conventional G.711-over-RTP model: 160-byte payloads
// every 20 ms (50 packets/s, 64 kbit/s of media).
func VoIP(f Flow, start, stop netsim.Time) CBR {
	return CBR{Flow: f, Size: 160, Interval: 0.020, Start: start, Stop: stop}
}

// Install implements Generator.
func (g CBR) Install(sim *netsim.Simulator, src *router.Router, c *Collector) {
	if g.Interval <= 0 {
		panic(fmt.Sprintf("trafficgen: CBR interval %g", g.Interval))
	}
	seq := uint64(0)
	var tick func()
	tick = func() {
		if sim.Now() > g.Stop {
			return
		}
		send(sim, src, c, g.Flow, seq, g.Size)
		seq++
		sim.Schedule(g.Interval, tick)
	}
	sim.Schedule(g.Start, tick)
}

// Describe implements Generator.
func (g CBR) Describe() string {
	return fmt.Sprintf("CBR flow %d: %dB every %.3gms", g.Flow.ID, g.Size, g.Interval*1e3)
}

// Poisson models aggregate background traffic: exponentially distributed
// inter-arrival times at RatePPS packets per second.
type Poisson struct {
	Flow    Flow
	Size    int
	RatePPS float64
	Start   netsim.Time
	Stop    netsim.Time
	Seed    int64
}

// Install implements Generator.
func (g Poisson) Install(sim *netsim.Simulator, src *router.Router, c *Collector) {
	if g.RatePPS <= 0 {
		panic(fmt.Sprintf("trafficgen: poisson rate %g", g.RatePPS))
	}
	rng := rand.New(rand.NewSource(g.Seed))
	seq := uint64(0)
	var tick func()
	next := func() netsim.Time { return rng.ExpFloat64() / g.RatePPS }
	tick = func() {
		if sim.Now() > g.Stop {
			return
		}
		send(sim, src, c, g.Flow, seq, g.Size)
		seq++
		sim.Schedule(next(), tick)
	}
	sim.Schedule(g.Start+next(), tick)
}

// Describe implements Generator.
func (g Poisson) Describe() string {
	return fmt.Sprintf("poisson flow %d: %dB at %.0f pps", g.Flow.ID, g.Size, g.RatePPS)
}

// OnOff models streaming video: bursts of CBR packets (On seconds at
// PeakBPS) separated by Off-second silences, the classic on/off model
// for variable-rate video.
type OnOff struct {
	Flow    Flow
	Size    int // payload bytes per packet
	PeakBPS float64
	On, Off netsim.Time
	Start   netsim.Time
	Stop    netsim.Time
}

// Install implements Generator.
func (g OnOff) Install(sim *netsim.Simulator, src *router.Router, c *Collector) {
	if g.PeakBPS <= 0 || g.Size <= 0 || g.On <= 0 {
		panic("trafficgen: on/off generator misconfigured")
	}
	wire := g.Size + packet.HeaderSize // payload + network header
	interval := float64(wire*8) / g.PeakBPS
	perBurst := int(math.Max(1, math.Round(g.On/interval)))
	seq := uint64(0)
	var burst func()
	burst = func() {
		if sim.Now() > g.Stop {
			return
		}
		for i := 0; i < perBurst; i++ {
			i := i
			sim.Schedule(netsim.Time(i)*interval, func() {
				if sim.Now() <= g.Stop {
					send(sim, src, c, g.Flow, seq, g.Size)
					seq++
				}
			})
		}
		sim.Schedule(g.On+g.Off, burst)
	}
	sim.Schedule(g.Start, burst)
}

// Describe implements Generator.
func (g OnOff) Describe() string {
	return fmt.Sprintf("on/off flow %d: %.0f bps peak, %.3gs on / %.3gs off",
		g.Flow.ID, g.PeakBPS, g.On, g.Off)
}

// Bulk models a greedy transfer paced at RateBPS (a TCP flow in steady
// state, abstracted to its pacing rate).
type Bulk struct {
	Flow    Flow
	Size    int
	RateBPS float64
	Start   netsim.Time
	Stop    netsim.Time
}

// Install implements Generator.
func (g Bulk) Install(sim *netsim.Simulator, src *router.Router, c *Collector) {
	if g.RateBPS <= 0 || g.Size <= 0 {
		panic("trafficgen: bulk generator misconfigured")
	}
	wire := g.Size + packet.HeaderSize
	CBR{
		Flow:     g.Flow,
		Size:     g.Size,
		Interval: float64(wire*8) / g.RateBPS,
		Start:    g.Start,
		Stop:     g.Stop,
	}.Install(sim, src, c)
}

// Describe implements Generator.
func (g Bulk) Describe() string {
	return fmt.Sprintf("bulk flow %d: %dB packets at %.0f bps", g.Flow.ID, g.Size, g.RateBPS)
}
