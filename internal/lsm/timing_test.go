package lsm

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// TestTable6ConstantOps verifies the constant-latency rows of Table 6:
// reset, user push, user pop and write label pair all take exactly 3
// clock cycles.
func TestTable6ConstantOps(t *testing.T) {
	b := NewBench(LER)

	cycles, err := b.ResetOp()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != CyclesReset {
		t.Errorf("reset: %d cycles, want %d", cycles, CyclesReset)
	}

	cycles, err = b.UserPush(label.Entry{Label: 100, TTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != CyclesUserPush {
		t.Errorf("user push: %d cycles, want %d", cycles, CyclesUserPush)
	}

	_, cycles, err = b.UserPop()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != CyclesUserPop {
		t.Errorf("user pop: %d cycles, want %d", cycles, CyclesUserPop)
	}

	cycles, err = b.WritePair(infobase.Level1, infobase.Pair{Index: 600, NewLabel: 500, Op: label.OpSwap})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != CyclesWritePair {
		t.Errorf("write label pair: %d cycles, want %d", cycles, CyclesWritePair)
	}
}

// TestTable6SearchCost verifies "search information base: 3n+5" across
// level sizes and hit positions: a hit at 1-based position i costs 3i+5
// and a miss over n entries costs 3n+5.
func TestTable6SearchCost(t *testing.T) {
	b := NewBench(LER)
	const n = 10
	for i := 0; i < n; i++ {
		p := infobase.Pair{Index: infobase.Key(i + 1), NewLabel: label.Label(500 + i), Op: label.OpSwap}
		if _, err := b.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		res, cycles, err := b.Lookup(infobase.Level2, infobase.Key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.SearchPos != i {
			t.Fatalf("lookup %d: found=%v pos=%d", i, res.Found, res.SearchPos)
		}
		if want := SearchCycles(i); cycles != want {
			t.Errorf("hit at position %d: %d cycles, want 3*%d+5 = %d", i, cycles, i, want)
		}
	}
	// Miss: scans all n entries.
	res, cycles, err := b.Lookup(infobase.Level2, 27)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("lookup of absent label reported found")
	}
	if want := SearchCycles(n); cycles != want {
		t.Errorf("miss over %d entries: %d cycles, want %d", n, cycles, want)
	}
	if res.SearchPos != n {
		t.Errorf("miss SearchPos = %d, want %d", res.SearchPos, n)
	}
	// Empty level: 3*0+5.
	res, cycles, err = b.Lookup(infobase.Level3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || cycles != SearchCycles(0) || res.SearchPos != 0 {
		t.Errorf("empty level: found=%v cycles=%d pos=%d, want miss in %d cycles",
			res.Found, cycles, res.SearchPos, SearchCycles(0))
	}
}

// TestTable6SwapFromInfoBase verifies "swap from the information base: 6":
// an update whose search hits at position i completes in (3i+5)+6 cycles.
func TestTable6SwapFromInfoBase(t *testing.T) {
	b := NewBench(LSR)
	// One entry on the stack -> level 2 search keyed by the top label.
	if _, err := b.UserPush(label.Entry{Label: 42, CoS: 3, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	// Three pairs; the top label matches the third.
	for i, idx := range []infobase.Key{7, 8, 42} {
		p := infobase.Pair{Index: idx, NewLabel: label.Label(200 + i), Op: label.OpSwap}
		if _, err := b.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	res, cycles, err := b.Update(UpdateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded() {
		t.Fatalf("swap discarded: %v", res.Discard)
	}
	if res.Op != label.OpSwap || res.NewLabel != 202 || res.SearchPos != 3 {
		t.Fatalf("result = %+v, want swap to 202 at position 3", res)
	}
	want := SearchCycles(3) + CyclesSwapFromIB
	if cycles != want {
		t.Errorf("swap update: %d cycles, want (3*3+5)+6 = %d", cycles, want)
	}
	if got := UpdateCycles(res); got != cycles {
		t.Errorf("cost model UpdateCycles = %d, measured %d", got, cycles)
	}
	top, _ := b.StackSnapshot().Top()
	if top.Label != 202 || top.TTL != 63 || top.CoS != 3 {
		t.Errorf("top after swap = %v, want lbl=202 ttl=63 cos=3", top)
	}
}

// TestPopAndPushFromInfoBaseCycles pins the latencies Table 6 leaves
// implicit: pop tail 5 cycles, push tail 7.
func TestPopAndPushFromInfoBaseCycles(t *testing.T) {
	t.Run("pop", func(t *testing.T) {
		b := NewBench(LSR)
		_, _ = b.UserPush(label.Entry{Label: 10, TTL: 9})
		_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
		// Two entries -> level 3.
		if _, err := b.WritePair(infobase.Level3, infobase.Pair{Index: 42, NewLabel: 0, Op: label.OpPop}); err != nil {
			t.Fatal(err)
		}
		res, cycles, err := b.Update(UpdateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Discarded() || res.Op != label.OpPop {
			t.Fatalf("pop result = %+v", res)
		}
		if want := SearchCycles(1) + CyclesPopFromIB; cycles != want {
			t.Errorf("pop update: %d cycles, want %d", cycles, want)
		}
		st := b.StackSnapshot()
		top, _ := st.Top()
		if st.Depth() != 1 || top.Label != 10 || top.TTL != 63 {
			t.Errorf("stack after pop: %v; want single entry lbl=10 ttl=63", st)
		}
	})
	t.Run("push", func(t *testing.T) {
		b := NewBench(LSR)
		_, _ = b.UserPush(label.Entry{Label: 42, CoS: 2, TTL: 64})
		if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: label.OpPush}); err != nil {
			t.Fatal(err)
		}
		res, cycles, err := b.Update(UpdateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Discarded() || res.Op != label.OpPush {
			t.Fatalf("push result = %+v", res)
		}
		if want := SearchCycles(1) + CyclesPushFromIB; cycles != want {
			t.Errorf("push update: %d cycles, want %d", cycles, want)
		}
		st := b.StackSnapshot()
		if st.Depth() != 2 {
			t.Fatalf("depth after tunnel push = %d, want 2", st.Depth())
		}
		top, _ := st.Top()
		below, _ := st.At(0)
		if top.Label != 777 || top.TTL != 63 || top.CoS != 2 {
			t.Errorf("pushed top = %v, want lbl=777 ttl=63 cos=2", top)
		}
		if below.Label != 42 || below.TTL != 63 {
			t.Errorf("old entry = %v, want lbl=42 ttl=63", below)
		}
	})
}

// TestWorstCaseScenario6167 reproduces the paper's headline number: reset
// (3) + three user pushes (9) + 1024 pair writes (3072) + a swap whose
// search scans the full level (3*1024+5 = 3077, + 6) = 6167 cycles, which
// is ~0.1233 ms at the 50 MHz Stratix clock.
func TestWorstCaseScenario6167(t *testing.T) {
	if testing.Short() {
		t.Skip("1024 writes through the RTL model; skipped with -short")
	}
	b := NewBench(LSR)
	total := 0

	cycles, err := b.ResetOp()
	if err != nil {
		t.Fatal(err)
	}
	total += cycles

	for i := 0; i < 3; i++ {
		cycles, err = b.UserPush(label.Entry{Label: label.Label(40 + i), TTL: 64})
		if err != nil {
			t.Fatal(err)
		}
		total += cycles
	}

	// Fill level 3 (the level a 3-deep stack consults). The top label 42
	// matches only the very last pair, so the search scans all 1024.
	for i := 0; i < infobase.EntriesPerLevel; i++ {
		idx := infobase.Key(10_000 + i)
		if i == infobase.EntriesPerLevel-1 {
			idx = 42
		}
		cycles, err = b.WritePair(infobase.Level3, infobase.Pair{Index: idx, NewLabel: 900, Op: label.OpSwap})
		if err != nil {
			t.Fatal(err)
		}
		total += cycles
	}

	res, cycles, err := b.Update(UpdateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded() || res.Op != label.OpSwap || res.SearchPos != infobase.EntriesPerLevel {
		t.Fatalf("worst-case swap result = %+v", res)
	}
	total += cycles

	if total != 6167 {
		t.Errorf("worst case total = %d cycles, paper says 6167", total)
	}
	if model := WorstCaseScenarioCycles(infobase.EntriesPerLevel); model != 6167 {
		t.Errorf("cost model worst case = %d, want 6167", model)
	}
	// ~0.1233 ms at 50 MHz.
	ms := DefaultClock.Seconds(total) * 1e3
	if ms < 0.1233 || ms > 0.1234 {
		t.Errorf("worst case at 50 MHz = %.6f ms, want ~0.1233 ms", ms)
	}
}

// TestUpdateDiscardCycles pins the discard tails: a miss costs 3n+5+1, a
// verification failure (TTL expired) costs 3i+5+5.
func TestUpdateDiscardCycles(t *testing.T) {
	t.Run("not found", func(t *testing.T) {
		b := NewBench(LSR)
		_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
		for i := 0; i < 4; i++ {
			_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(100 + i), NewLabel: 1, Op: label.OpSwap})
		}
		res, cycles, err := b.Update(UpdateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Discard != DiscardNotFound {
			t.Fatalf("discard = %v, want not-found", res.Discard)
		}
		if want := SearchCycles(4) + CyclesDiscardNotFound; cycles != want {
			t.Errorf("miss update: %d cycles, want %d", cycles, want)
		}
		if got := UpdateCycles(res); got != cycles {
			t.Errorf("cost model = %d, measured %d", got, cycles)
		}
		if b.StackSnapshot().Depth() != 0 {
			t.Error("discard did not reset the stack")
		}
	})
	t.Run("ttl expired", func(t *testing.T) {
		b := NewBench(LSR)
		_, _ = b.UserPush(label.Entry{Label: 42, TTL: 1}) // decrements to 0
		_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 7, Op: label.OpSwap})
		res, cycles, err := b.Update(UpdateRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Discard != DiscardTTLExpired {
			t.Fatalf("discard = %v, want ttl-expired", res.Discard)
		}
		if want := SearchCycles(1) + CyclesDiscardVerify; cycles != want {
			t.Errorf("ttl discard: %d cycles, want %d", cycles, want)
		}
		if got := UpdateCycles(res); got != cycles {
			t.Errorf("cost model = %d, measured %d", got, cycles)
		}
	})
}

// TestRepeatedResetsCostThreeCyclesEach guards the bench protocol: a
// reset immediately following another must still run the full 3-cycle
// sequence (the driver drains sequencer residue between commands).
func TestRepeatedResetsCostThreeCyclesEach(t *testing.T) {
	b := NewBench(LSR)
	for i := 0; i < 5; i++ {
		cycles, err := b.ResetOp()
		if err != nil {
			t.Fatal(err)
		}
		if cycles != CyclesReset {
			t.Fatalf("reset %d took %d cycles, want %d", i, cycles, CyclesReset)
		}
	}
	// And a real command still works afterwards.
	if _, err := b.UserPush(label.Entry{Label: 1, TTL: 1}); err != nil {
		t.Fatal(err)
	}
}
