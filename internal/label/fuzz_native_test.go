package label

import "testing"

// FuzzDecodeWire checks the stack decoder on arbitrary bytes: no panics,
// and anything that decodes re-encodes to the bytes it consumed.
func FuzzDecodeWire(f *testing.F) {
	s, _ := NewStack(Entry{Label: 100, TTL: 64}, Entry{Label: 200, TTL: 64})
	buf, _ := s.AppendWire(nil)
	f.Add(buf)
	f.Add([]byte{0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, n, err := DecodeWire(data)
		if err != nil {
			return
		}
		if !st.Consistent() {
			t.Fatal("decoded stack violates the S-bit invariant")
		}
		out, err := st.AppendWire(nil)
		if err != nil {
			t.Fatalf("decoded stack does not encode: %v", err)
		}
		if len(out) != n {
			t.Fatalf("re-encoded %d bytes, consumed %d", len(out), n)
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatal("re-encoding differs from consumed bytes")
			}
		}
	})
}
