package label

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackKnownValues(t *testing.T) {
	cases := []struct {
		name string
		e    Entry
		want uint32
	}{
		{"zero", Entry{}, 0},
		{"label only", Entry{Label: 1}, 1 << 12},
		{"max label", Entry{Label: MaxLabel}, 0xfffff << 12},
		{"cos only", Entry{CoS: 7}, 7 << 9},
		{"bottom only", Entry{Bottom: true}, 1 << 8},
		{"ttl only", Entry{TTL: 255}, 255},
		{
			"paper fig 14 output",
			Entry{Label: 504, CoS: 3, Bottom: true, TTL: 63},
			504<<12 | 3<<9 | 1<<8 | 63,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.e.Pack()
			if err != nil {
				t.Fatalf("Pack(%v): %v", c.e, err)
			}
			if got != c.want {
				t.Errorf("Pack(%v) = %#x, want %#x", c.e, got, c.want)
			}
			if back := Unpack(got); back != c.e {
				t.Errorf("Unpack(Pack(%v)) = %v", c.e, back)
			}
		})
	}
}

func TestPackRejectsOutOfRange(t *testing.T) {
	if _, err := (Entry{Label: MaxLabel + 1}).Pack(); err == nil {
		t.Error("Pack accepted a 21-bit label")
	}
	if _, err := (Entry{CoS: 8}).Pack(); err == nil {
		t.Error("Pack accepted a 4-bit CoS")
	}
}

func TestMustPackPanicsOnBadEntry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPack did not panic on an out-of-range label")
		}
	}()
	Entry{Label: MaxLabel + 1}.MustPack()
}

// TestUnpackPackRoundTrip: every 32-bit word decodes to an entry that
// re-encodes to the same word.
func TestUnpackPackRoundTrip(t *testing.T) {
	f := func(w uint32) bool {
		return Unpack(w).MustPack() == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservedLabels(t *testing.T) {
	for l := Label(0); l < FirstUnreserved; l++ {
		if !l.Reserved() {
			t.Errorf("label %d should be reserved", l)
		}
	}
	if FirstUnreserved.Reserved() {
		t.Errorf("label %d should not be reserved", FirstUnreserved)
	}
	if IPv4ExplicitNull != 0 || RouterAlert != 1 || IPv6ExplicitNull != 2 || ImplicitNull != 3 {
		t.Error("reserved label constants do not match RFC 3032")
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Label: 504, CoS: 3, Bottom: true, TTL: 63}
	if got, want := e.String(), "lbl=504 cos=3 S=1 ttl=63"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestStackPushPopLIFO(t *testing.T) {
	s := &Stack{}
	if !s.Empty() || s.Depth() != 0 {
		t.Fatal("zero stack should be empty")
	}
	for i := 1; i <= MaxDepth; i++ {
		if err := s.Push(Entry{Label: Label(100 * i), TTL: 64}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if s.Depth() != i {
			t.Fatalf("depth = %d after %d pushes", s.Depth(), i)
		}
	}
	if err := s.Push(Entry{Label: 999}); err != ErrStackFull {
		t.Errorf("push beyond MaxDepth: err = %v, want ErrStackFull", err)
	}
	for i := MaxDepth; i >= 1; i-- {
		e, err := s.Pop()
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		if e.Label != Label(100*i) {
			t.Errorf("pop %d: label = %d, want %d", i, e.Label, 100*i)
		}
	}
	if _, err := s.Pop(); err != ErrStackEmpty {
		t.Errorf("pop on empty: err = %v, want ErrStackEmpty", err)
	}
}

func TestStackBottomBitMaintained(t *testing.T) {
	s := &Stack{}
	// Push entries with deliberately wrong S bits; Push must normalise.
	if err := s.Push(Entry{Label: 10, Bottom: false}); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(Entry{Label: 20, Bottom: true}); err != nil {
		t.Fatal(err)
	}
	if !s.Consistent() {
		t.Fatalf("stack inconsistent after pushes: %v", s)
	}
	bottom, _ := s.At(0)
	top, _ := s.Top()
	if !bottom.Bottom || top.Bottom {
		t.Errorf("S bits wrong: bottom=%v top=%v", bottom, top)
	}
}

func TestStackSwapPreservesOtherFields(t *testing.T) {
	s := &Stack{}
	if err := s.Push(Entry{Label: 10, CoS: 5, TTL: 42}); err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(777); err != nil {
		t.Fatal(err)
	}
	top, _ := s.Top()
	want := Entry{Label: 777, CoS: 5, Bottom: true, TTL: 42}
	if top != want {
		t.Errorf("after swap top = %v, want %v", top, want)
	}
	empty := &Stack{}
	if err := empty.Swap(1); err != ErrStackEmpty {
		t.Errorf("swap on empty: err = %v, want ErrStackEmpty", err)
	}
}

func TestStackSetTopTTL(t *testing.T) {
	s := &Stack{}
	if err := s.SetTopTTL(5); err != ErrStackEmpty {
		t.Errorf("SetTopTTL on empty: err = %v, want ErrStackEmpty", err)
	}
	_ = s.Push(Entry{Label: 10, TTL: 64})
	if err := s.SetTopTTL(63); err != nil {
		t.Fatal(err)
	}
	top, _ := s.Top()
	if top.TTL != 63 {
		t.Errorf("TTL = %d, want 63", top.TTL)
	}
}

func TestStackResetDiscardsEverything(t *testing.T) {
	s, err := NewStack(Entry{Label: 1}, Entry{Label: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if !s.Empty() {
		t.Error("stack not empty after Reset")
	}
	// A reset stack must be reusable.
	if err := s.Push(Entry{Label: 3}); err != nil {
		t.Fatal(err)
	}
	if top, _ := s.Top(); !top.Bottom {
		t.Error("first push after Reset should be the bottom entry")
	}
}

func TestStackCloneIsIndependent(t *testing.T) {
	s, _ := NewStack(Entry{Label: 1, TTL: 9}, Entry{Label: 2, TTL: 9})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone differs from original")
	}
	if _, err := c.Pop(); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 2 {
		t.Error("popping the clone changed the original")
	}
}

func TestStackAtRange(t *testing.T) {
	s, _ := NewStack(Entry{Label: 1}, Entry{Label: 2})
	if _, err := s.At(-1); err == nil {
		t.Error("At(-1) should fail")
	}
	if _, err := s.At(2); err == nil {
		t.Error("At(depth) should fail")
	}
	e, err := s.At(1)
	if err != nil || e.Label != 2 {
		t.Errorf("At(1) = %v, %v", e, err)
	}
}

func TestWireRoundTripFixed(t *testing.T) {
	s, err := NewStack(
		Entry{Label: 100, CoS: 1, TTL: 254},
		Entry{Label: 200, CoS: 2, TTL: 254},
		Entry{Label: 300, CoS: 3, TTL: 254},
	)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != s.WireSize() || len(buf) != 12 {
		t.Fatalf("wire size = %d, want 12", len(buf))
	}
	// Top entry (label 300) must come first on the wire.
	if first := Unpack(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])); first.Label != 300 {
		t.Errorf("first wire entry label = %d, want 300 (top first)", first.Label)
	}
	got, n, err := DecodeWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("consumed %d bytes, want 12", n)
	}
	if !got.Equal(s) {
		t.Errorf("decoded stack %v != original %v", got, s)
	}
}

func TestDecodeWireTrailingBytesIgnored(t *testing.T) {
	s, _ := NewStack(Entry{Label: 42, TTL: 1})
	buf, _ := s.AppendWire(nil)
	buf = append(buf, 0xde, 0xad)
	got, n, err := DecodeWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("consumed %d, want 4", n)
	}
	if top, _ := got.Top(); top.Label != 42 {
		t.Errorf("label = %d, want 42", top.Label)
	}
}

func TestDecodeWireErrors(t *testing.T) {
	if _, _, err := DecodeWire(nil); err == nil {
		t.Error("decoding an empty buffer should fail")
	}
	// Three entries, none with the S bit: runs off the end.
	e := Entry{Label: 5}
	buf := make([]byte, 0, 12)
	for i := 0; i < 3; i++ {
		buf, _ = (&Stack{entries: []Entry{e}}).AppendWire(buf)
	}
	if _, _, err := DecodeWire(buf[:10]); err == nil {
		t.Error("truncated stack should fail")
	}
}

// TestWireRoundTripProperty: any valid stack survives encode→decode.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		s := &Stack{}
		depth := 1 + rng.Intn(MaxDepth)
		for i := 0; i < depth; i++ {
			e := Entry{
				Label: Label(rng.Intn(int(MaxLabel) + 1)),
				CoS:   CoS(rng.Intn(8)),
				TTL:   uint8(rng.Intn(256)),
			}
			if err := s.Push(e); err != nil {
				t.Fatal(err)
			}
		}
		buf, err := s.AppendWire(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeWire(buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(buf) || !got.Equal(s) {
			t.Fatalf("trial %d: round trip mismatch: %v -> %v", trial, s, got)
		}
		if !got.Consistent() {
			t.Fatalf("trial %d: decoded stack inconsistent", trial)
		}
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpNone: "none", OpPush: "push", OpPop: "pop", OpSwap: "swap", Op(9): "op(9)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	for op := Op(0); op < NumOps; op++ {
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
	}
	if Op(4).Valid() {
		t.Error("op 4 should be invalid")
	}
}

func TestStackStringForms(t *testing.T) {
	s := &Stack{}
	if s.String() != "[empty]" {
		t.Errorf("empty stack String() = %q", s.String())
	}
	_ = s.Push(Entry{Label: 1, TTL: 2})
	if s.String() == "" || s.String() == "[empty]" {
		t.Errorf("non-empty stack String() = %q", s.String())
	}
}
