package infobase

// storeConfig is the geometry and lookup structure a store is built
// with.
type storeConfig struct {
	levels   int
	capacity int
	indexed  bool
}

func defaultConfig() storeConfig {
	return storeConfig{levels: NumLevels, capacity: EntriesPerLevel}
}

// Option configures a store built by New.
type Option func(*storeConfig)

// WithLevels sets the number of memory levels. The paper's architecture
// has three (the default); a deeper label stack would need more. Values
// below one are clamped to one. Level 1 always exact-matches the 32-bit
// packet identifier; every deeper level a 20-bit label.
func WithLevels(n int) Option {
	return func(c *storeConfig) {
		if n < 1 {
			n = 1
		}
		c.levels = n
	}
}

// WithCapacity sets the per-level capacity in pairs. The paper's memory
// holds 1024 per level (the default); a software deployment can size it
// to the routing table. Values below one are clamped to one.
func WithCapacity(n int) Option {
	return func(c *storeConfig) {
		if n < 1 {
			n = 1
		}
		c.capacity = n
	}
}

// WithIndex selects the lookup structure: true builds the O(1) Indexed
// store, false (the default) the linear Behavioral model whose lookup
// cost grows with occupancy like the paper's 3n+5 search.
func WithIndex(indexed bool) Option {
	return func(c *storeConfig) { c.indexed = indexed }
}

// New builds an information base from functional options. With no
// options it is the paper's three-level, 1024-entry linear store.
//
//	fast := infobase.New(infobase.WithIndex(true))
//	wide := infobase.New(infobase.WithLevels(3), infobase.WithCapacity(1<<16))
func New(opts ...Option) Store {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.indexed {
		return newIndexed(cfg)
	}
	return newBehavioral(cfg)
}
