package ldp

import (
	"errors"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
)

var dst = packet.AddrFrom(10, 0, 0, 9)

// testNet builds a linear topology a-b-c-d-e with software forwarders
// registered on every node.
func testNet(t *testing.T) (*Manager, map[string]*swmpls.Forwarder) {
	t.Helper()
	topo := te.NewTopology()
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		topo.AddNode(n)
	}
	for i := 0; i+1 < len(names); i++ {
		if err := topo.AddDuplex(names[i], names[i+1], te.LinkAttrs{CapacityBPS: 10e6, Metric: 1}); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(topo)
	fwds := make(map[string]*swmpls.Forwarder)
	for _, n := range names {
		f := swmpls.New()
		fwds[n] = f
		if err := m.Register(n, f); err != nil {
			t.Fatal(err)
		}
	}
	return m, fwds
}

// walk pushes p through the forwarders starting at the ingress,
// following NextHop decisions (with local re-examination on empty
// next hops) until Deliver or Drop, returning the visited routers.
func walk(t *testing.T, fwds map[string]*swmpls.Forwarder, start string, p *packet.Packet) (string, swmpls.Result, []string) {
	t.Helper()
	cur := start
	visited := []string{start}
	for hop := 0; hop < 32; hop++ {
		res := fwds[cur].Forward(p)
		switch res.Action {
		case swmpls.Forward:
			if res.NextHop == "" {
				continue // re-examine locally (tunnel tail)
			}
			cur = res.NextHop
			visited = append(visited, cur)
		default:
			return cur, res, visited
		}
	}
	t.Fatal("packet did not terminate in 32 hops")
	return "", swmpls.Result{}, nil
}

func TestSetupLSPEndToEnd(t *testing.T) {
	m, fwds := testNet(t)
	lsp, err := m.SetupLSP(SetupRequest{
		ID:   "lsp1",
		FEC:  FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lsp.HopLabels) != 3 {
		t.Fatalf("hop labels = %v", lsp.HopLabels)
	}

	p := packet.New(1, dst, 64, []byte("data"))
	last, res, visited := walk(t, fwds, "a", p)
	if res.Action != swmpls.Deliver || last != "d" {
		t.Fatalf("terminated at %s with %+v", last, res)
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
	// 3 label hops: a->b (push), b->c (swap), c->d (swap), popped at d.
	if p.Labelled() {
		t.Error("packet still labelled after egress")
	}
	// Four routers each decrement once: 64 -> 60.
	if p.Header.TTL != 60 {
		t.Errorf("TTL = %d, want 60 (one decrement per router)", p.Header.TTL)
	}
}

func TestDownstreamAllocationMessages(t *testing.T) {
	m, _ := testNet(t)
	if _, err := m.SetupLSP(SetupRequest{ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	// Ordered downstream: the mapping for the last hop (c->b) is sent
	// before the mapping for the first (b->a).
	if len(m.Messages) != 2 {
		t.Fatalf("messages = %v", m.Messages)
	}
	if m.Messages[0].From != "c" || m.Messages[0].To != "b" {
		t.Errorf("first message %+v, want c->b", m.Messages[0])
	}
	if m.Messages[1].From != "b" || m.Messages[1].To != "a" {
		t.Errorf("second message %+v, want b->a", m.Messages[1])
	}
	if m.Messages[0].Label == m.Messages[1].Label {
		t.Error("labels must be distinct")
	}
}

func TestLabelsAreUniqueAcrossLSPs(t *testing.T) {
	m, _ := testNet(t)
	seen := map[label.Label]bool{}
	for i, path := range [][]string{{"a", "b", "c"}, {"c", "d", "e"}, {"a", "b", "c", "d", "e"}} {
		lsp, err := m.SetupLSP(SetupRequest{
			ID:   string(rune('x' + i)),
			FEC:  FEC{Dst: dst + packet.Addr(i), PrefixLen: 32},
			Path: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lsp.HopLabels {
			if l == 0 {
				continue
			}
			if l.Reserved() {
				t.Errorf("allocated reserved label %d", l)
			}
			if seen[l] {
				t.Errorf("label %d allocated twice", l)
			}
			seen[l] = true
		}
	}
}

func TestPHPStripsLabelAtPenultimate(t *testing.T) {
	m, fwds := testNet(t)
	if _, err := m.SetupLSP(SetupRequest{ID: "php", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c"}, PHP: true}); err != nil {
		t.Fatal(err)
	}
	p := packet.New(1, dst, 64, nil)
	// a pushes; b pops (penultimate) and forwards toward c.
	res := fwds["a"].Forward(p)
	if res.Action != swmpls.Forward || res.NextHop != "b" {
		t.Fatalf("at a: %+v", res)
	}
	res = fwds["b"].Forward(p)
	if res.Action != swmpls.Forward || res.NextHop != "c" {
		t.Fatalf("at b: %+v", res)
	}
	if p.Labelled() {
		t.Error("PHP did not strip the label at the penultimate hop")
	}
	// c receives a plain IP packet; it has no entry and that is fine —
	// delivery is the router's job when dst is local.
}

func TestTunnelHierarchy(t *testing.T) {
	m, fwds := testNet(t)
	// Tunnel b->c->d, then an LSP a->b->(tunnel)->d->e.
	tun, err := m.SetupTunnel("tun", []string{"b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tun.Tunnel {
		t.Error("tunnel flag unset")
	}
	lsp, err := m.SetupLSP(SetupRequest{
		ID:   "inner",
		FEC:  FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d", "e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lsp

	p := packet.New(1, dst, 64, nil)
	// At a: push inner label.
	if res := fwds["a"].Forward(p); res.NextHop != "b" {
		t.Fatalf("a: %+v", res)
	}
	inner, _ := p.Stack.Top()
	// At b (tunnel head): push tunnel label on top -> depth 2 toward c.
	if res := fwds["b"].Forward(p); res.NextHop != "c" {
		t.Fatalf("b: %+v", res)
	}
	if p.Stack.Depth() != 2 {
		t.Fatalf("inside tunnel depth = %d, want 2 (stack %v)", p.Stack.Depth(), p.Stack)
	}
	below, _ := p.Stack.At(0)
	if below.Label != inner.Label {
		t.Errorf("inner label changed entering the tunnel: %v -> %v", inner.Label, below.Label)
	}
	// At c: swap the tunnel label.
	if res := fwds["c"].Forward(p); res.NextHop != "d" {
		t.Fatalf("c: %+v", res)
	}
	if p.Stack.Depth() != 2 {
		t.Fatalf("depth after tunnel core = %d", p.Stack.Depth())
	}
	// At d (tunnel tail): pop + re-examine + swap inner toward e.
	last, res, _ := walk(t, fwds, "d", p)
	if res.Action != swmpls.Deliver || last != "e" {
		t.Fatalf("terminated at %s with %+v", last, res)
	}
}

func TestTunnelTeardownGuard(t *testing.T) {
	m, _ := testNet(t)
	if _, err := m.SetupTunnel("tun", []string{"b", "c", "d"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "rider", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.TearDown("tun"); !errors.Is(err, ErrTunnelInUse) {
		t.Errorf("tore down a tunnel in use: %v", err)
	}
	if err := m.TearDown("rider"); err != nil {
		t.Fatal(err)
	}
	if err := m.TearDown("tun"); err != nil {
		t.Errorf("teardown after rider removed: %v", err)
	}
}

func TestTearDownRemovesStateAndReleasesBandwidth(t *testing.T) {
	m, fwds := testNet(t)
	if _, err := m.SetupLSP(SetupRequest{ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c"}, Bandwidth: 4e6}); err != nil {
		t.Fatal(err)
	}
	ab, _ := m.topo.Link("a", "b")
	if ab.ReservedBPS != 4e6 {
		t.Fatalf("reserved = %v", ab.ReservedBPS)
	}
	if err := m.TearDown("l"); err != nil {
		t.Fatal(err)
	}
	ab, _ = m.topo.Link("a", "b")
	if ab.ReservedBPS != 0 {
		t.Errorf("reservation leaked: %v", ab.ReservedBPS)
	}
	p := packet.New(1, dst, 64, nil)
	if res := fwds["a"].Forward(p); res.Drop != swmpls.DropNoRoute {
		t.Errorf("FTN entry leaked: %+v", res)
	}
	if err := m.TearDown("l"); !errors.Is(err, ErrUnknownLSP) {
		t.Errorf("double teardown: %v", err)
	}
}

func TestSetupRejectsBadRequests(t *testing.T) {
	m, _ := testNet(t)
	fec := FEC{Dst: dst, PrefixLen: 32}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a"}}); !errors.Is(err, ErrBadPath) {
		t.Errorf("single-hop path: %v", err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a", "ghost"}}); !errors.Is(err, ErrUnknownRouter) {
		t.Errorf("unknown router: %v", err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a", "c"}}); !errors.Is(err, ErrNotAdjacent) {
		t.Errorf("non-adjacent hop: %v", err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a", "b"}, PHP: true}); !errors.Is(err, ErrBadPath) {
		t.Errorf("PHP on 2 hops: %v", err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "x", FEC: fec, Path: []string{"a", "b", "c"}}); !errors.Is(err, ErrDuplicateLSP) {
		t.Errorf("duplicate id: %v", err)
	}
	if err := m.Register("nowhere", swmpls.New()); !errors.Is(err, ErrUnknownRouter) {
		t.Errorf("register off-topology: %v", err)
	}
}

func TestSetupRollsBackOnBandwidthFailure(t *testing.T) {
	m, fwds := testNet(t)
	// Saturate b-c.
	if err := m.topo.Reserve([]string{"b", "c"}, 10e6); err != nil {
		t.Fatal(err)
	}
	_, err := m.SetupLSP(SetupRequest{ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "c"}, Bandwidth: 1e6})
	if !errors.Is(err, te.ErrBandwidth) {
		t.Fatalf("err = %v, want bandwidth failure", err)
	}
	// Nothing may remain installed or reserved.
	ab, _ := m.topo.Link("a", "b")
	if ab.ReservedBPS != 0 {
		t.Errorf("a-b reservation leaked: %v", ab.ReservedBPS)
	}
	p := packet.New(1, dst, 64, nil)
	if res := fwds["a"].Forward(p); res.Drop != swmpls.DropNoRoute {
		t.Errorf("FTN entry leaked after rollback: %+v", res)
	}
}

func TestTunnelCannotRideTunnel(t *testing.T) {
	m, _ := testNet(t)
	if _, err := m.SetupTunnel("t1", []string{"b", "c", "d"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupTunnel("t2", []string{"a", "b", "d"}, 0); !errors.Is(err, ErrNotAdjacent) {
		t.Errorf("nested tunnel accepted: %v", err)
	}
}

func TestLSPLookup(t *testing.T) {
	m, _ := testNet(t)
	if _, ok := m.LSP("nope"); ok {
		t.Error("found a nonexistent LSP")
	}
	if _, err := m.SetupLSP(SetupRequest{ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if l, ok := m.LSP("l"); !ok || l.ID != "l" {
		t.Error("LSP lookup failed")
	}
}
