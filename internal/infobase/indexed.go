package infobase

import (
	"fmt"
	"sync/atomic"

	"embeddedmpls/internal/label"
)

// idxLevel is one immutable snapshot of an indexed level: the pairs in
// insertion order (exactly what the linear model stores) plus a hash
// index from key to the position of its first match. Lookups touch only
// the index, so their cost stays flat as the level fills; the ordered
// slice keeps Entries, ReadPair and the duplicate/delete semantics
// bit-identical to the linear scan.
type idxLevel struct {
	entries []Pair
	first   map[Key]int
}

var emptyIdxLevel = &idxLevel{}

// idxSlot is one atomically-published indexed level.
type idxSlot struct {
	snap atomic.Pointer[idxLevel]
}

func (s *idxSlot) load() *idxLevel {
	if l := s.snap.Load(); l != nil {
		return l
	}
	return emptyIdxLevel
}

// Indexed is the O(1) information base: the same insertion-ordered pair
// storage and first-match semantics as Behavioral, answered through a
// per-level hash index instead of a scan. It is the lookup structure a
// line-rate label table needs (cf. the MNA P4/ASIC implementations,
// where label tables are exact-match indexed stores), while Behavioral
// remains the faithful model of the paper's 3n+5 linear search. The
// differential property tests in this package prove the two agree on
// every write/delete/lookup sequence.
//
// Like Behavioral, each level publishes atomically: one writer, any
// number of concurrent readers. The zero value is not usable; call New
// with WithIndex(true).
type Indexed struct {
	levels    []idxSlot
	capacity  int
	writeHook func(Level, Pair) error
}

var _ Store = (*Indexed)(nil)

func newIndexed(cfg storeConfig) *Indexed {
	return &Indexed{levels: make([]idxSlot, cfg.levels), capacity: cfg.capacity}
}

// SetWriteHook implements Store. The hook must be installed before the
// store is shared with concurrent readers.
func (x *Indexed) SetWriteHook(h func(Level, Pair) error) { x.writeHook = h }

// Levels implements Store.
func (x *Indexed) Levels() int { return len(x.levels) }

// Capacity implements Store.
func (x *Indexed) Capacity() int { return x.capacity }

func (x *Indexed) validLevel(lv Level) bool {
	return lv >= Level1 && int(lv) <= len(x.levels)
}

// Write implements Base. A duplicate key is stored (the level is a log,
// like the hardware memory) but the index keeps pointing at the first
// occurrence, so lookups answer exactly as a linear scan would. The new
// level is published with one atomic store; a failed validation or
// write hook leaves nothing visible.
func (x *Indexed) Write(lv Level, p Pair) error {
	if !x.validLevel(lv) {
		return fmt.Errorf("%w: %d", ErrInvalidLevel, lv)
	}
	if err := validateFields(lv, p); err != nil {
		return err
	}
	if x.writeHook != nil {
		if err := x.writeHook(lv, p); err != nil {
			return err
		}
	}
	slot := &x.levels[lv-1]
	cur := slot.load()
	if len(cur.entries) >= x.capacity {
		return fmt.Errorf("%w: level %d already holds %d pairs", ErrLevelFull, lv, x.capacity)
	}
	next := &idxLevel{
		entries: make([]Pair, len(cur.entries)+1),
		first:   make(map[Key]int, len(cur.first)+1),
	}
	copy(next.entries, cur.entries)
	next.entries[len(cur.entries)] = p
	for k, v := range cur.first {
		next.first[k] = v
	}
	if _, dup := next.first[p.Index]; !dup {
		next.first[p.Index] = len(cur.entries)
	}
	slot.snap.Store(next)
	return nil
}

// Lookup implements Base in O(1): one hash probe instead of the linear
// model's scan, returning the same first-match-in-insertion-order
// answer.
func (x *Indexed) Lookup(lv Level, key Key) (label.Label, label.Op, bool) {
	if !x.validLevel(lv) {
		return 0, label.OpNone, false
	}
	cur := x.levels[lv-1].load()
	if i, ok := cur.first[key]; ok {
		p := cur.entries[i]
		return p.NewLabel, p.Op, true
	}
	return 0, label.OpNone, false
}

// Count implements Base.
func (x *Indexed) Count(lv Level) int {
	if !x.validLevel(lv) {
		return 0
	}
	return len(x.levels[lv-1].load().entries)
}

// Clear implements Base.
func (x *Indexed) Clear() {
	for i := range x.levels {
		x.levels[i].snap.Store(emptyIdxLevel)
	}
}

// Remove implements Store: the first pair matching key is deleted and
// the index rebuilt over the shifted positions, so a later duplicate of
// the same key is re-exposed exactly as under a linear rescan. Removal
// is a control-plane operation (LSP teardown); the O(n) rebuild keeps
// the per-packet Lookup allocation- and scan-free.
func (x *Indexed) Remove(lv Level, key Key) bool {
	if !x.validLevel(lv) {
		return false
	}
	slot := &x.levels[lv-1]
	cur := slot.load()
	i, ok := cur.first[key]
	if !ok {
		return false
	}
	next := &idxLevel{
		entries: make([]Pair, 0, len(cur.entries)-1),
		first:   make(map[Key]int, len(cur.first)),
	}
	next.entries = append(next.entries, cur.entries[:i]...)
	next.entries = append(next.entries, cur.entries[i+1:]...)
	for j, p := range next.entries {
		if _, dup := next.first[p.Index]; !dup {
			next.first[p.Index] = j
		}
	}
	slot.snap.Store(next)
	return true
}

// Entries implements Store.
func (x *Indexed) Entries(lv Level) []Pair {
	if !x.validLevel(lv) {
		return nil
	}
	cur := x.levels[lv-1].load()
	out := make([]Pair, len(cur.entries))
	copy(out, cur.entries)
	return out
}
