package lsm

import (
	"math/rand"
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// TestReadPairRoundTrip: every written pair reads back by address, at a
// constant cycle cost, through the command port.
func TestReadPairRoundTrip(t *testing.T) {
	b := NewBench(LSR)
	rng := rand.New(rand.NewSource(6))
	written := map[infobase.Level][]infobase.Pair{}
	for i := 0; i < 30; i++ {
		lv := infobase.Level(1 + rng.Intn(3))
		maxIdx := 1 << 20
		if lv == infobase.Level1 {
			maxIdx = 1 << 30
		}
		p := infobase.Pair{
			Index:    infobase.Key(rng.Intn(maxIdx)),
			NewLabel: label.Label(rng.Intn(1 << 20)),
			Op:       label.Op(rng.Intn(4)),
		}
		if _, err := b.WritePair(lv, p); err != nil {
			t.Fatal(err)
		}
		written[lv] = append(written[lv], p)
	}
	for lv, pairs := range written {
		for i, want := range pairs {
			got, cycles, err := b.ReadPair(lv, i)
			if err != nil {
				t.Fatalf("read level %d addr %d: %v", lv, i, err)
			}
			if got != want {
				t.Errorf("level %d addr %d: read %+v, wrote %+v", lv, i, got, want)
			}
			if cycles != CyclesReadPair {
				t.Errorf("read cost %d cycles, want constant %d", cycles, CyclesReadPair)
			}
		}
	}
}

func TestReadPairBounds(t *testing.T) {
	b := NewBench(LSR)
	if _, _, err := b.ReadPair(infobase.Level2, 0); err == nil {
		t.Error("read from an empty level succeeded")
	}
	if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: 1, NewLabel: 2, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ReadPair(infobase.Level2, 1); err == nil {
		t.Error("read past the write count succeeded")
	}
	if _, _, err := b.ReadPair(infobase.Level2, -1); err == nil {
		t.Error("negative address succeeded")
	}
	if _, _, err := b.ReadPair(infobase.Level(7), 0); err == nil {
		t.Error("invalid level succeeded")
	}
}

// TestReadPairMatchesBehavioral cross-checks the RTL read-out against the
// behavioral model's view.
func TestReadPairMatchesBehavioral(t *testing.T) {
	hw := NewBench(LER)
	sw := NewBehavioral(LER)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		p := infobase.Pair{
			Index:    infobase.Key(rng.Intn(1 << 16)),
			NewLabel: label.Label(rng.Intn(1 << 20)),
			Op:       label.Op(rng.Intn(4)),
		}
		if _, err := hw.WritePair(infobase.Level3, p); err != nil {
			t.Fatal(err)
		}
		if err := sw.WritePair(infobase.Level3, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		got, _, err := hw.ReadPair(infobase.Level3, i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sw.ReadPair(infobase.Level3, i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("addr %d: hw %+v, behavioral %+v", i, got, want)
		}
	}
	if _, err := sw.ReadPair(infobase.Level3, 99); err == nil {
		t.Error("behavioral read past occupancy succeeded")
	}
}

// TestReadPairDoesNotDisturbState: management reads leave the stack and
// tables untouched, and a read between two halves of an update sequence
// changes nothing.
func TestReadPairDoesNotDisturbState(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	before := b.StackSnapshot()
	if _, _, err := b.ReadPair(infobase.Level2, 0); err != nil {
		t.Fatal(err)
	}
	if !b.StackSnapshot().Equal(before) {
		t.Error("read-out disturbed the stack")
	}
	res, _, err := b.Update(UpdateRequest{})
	if err != nil || res.Discarded() {
		t.Fatalf("update after read: %+v, %v", res, err)
	}
	top, _ := b.StackSnapshot().Top()
	if top.Label != 9 {
		t.Errorf("swap after read-out: top = %v", top)
	}
}
