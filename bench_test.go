// Package repro_test is the benchmark harness that regenerates every
// quantitative result of the paper's evaluation section (Table 6,
// Figures 14-16, the 6167-cycle worst case) plus the extension
// experiments X1-X4 of DESIGN.md. Each benchmark reports the relevant
// figure of merit as a custom metric (cycles/op at the 50 MHz device
// clock, latency, etc.) alongside the usual ns/op of the host running
// the simulation.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/iproute"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/trafficgen"
)

// --- Table 6 ------------------------------------------------------------

// BenchmarkTable6Reset measures the architecture reset (paper: 3 cycles).
func BenchmarkTable6Reset(b *testing.B) {
	bench := lsm.NewBench(lsm.LSR)
	cycles := 0
	for i := 0; i < b.N; i++ {
		c, err := bench.ResetOp()
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.ReportMetric(float64(cycles), "cycles/op")
}

// BenchmarkTable6UserPush measures a user push (paper: 3 cycles).
func BenchmarkTable6UserPush(b *testing.B) {
	bench := lsm.NewBench(lsm.LSR)
	cycles := 0
	for i := 0; i < b.N; i++ {
		c, err := bench.UserPush(label.Entry{Label: 40, TTL: 64})
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
		if _, _, err := bench.UserPop(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles), "cycles/op")
}

// BenchmarkTable6WritePair measures an information base write (paper: 3).
func BenchmarkTable6WritePair(b *testing.B) {
	bench := lsm.NewBench(lsm.LSR)
	cycles := 0
	for i := 0; i < b.N; i++ {
		if bench.HW.Sim.Lookup("ib_wcnt_2").Get() >= infobase.EntriesPerLevel {
			var err error
			if _, err = bench.ResetOp(); err != nil {
				b.Fatal(err)
			}
		}
		c, err := bench.WritePair(infobase.Level2, infobase.Pair{Index: 1, NewLabel: 2, Op: label.OpSwap})
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.ReportMetric(float64(cycles), "cycles/op")
}

// BenchmarkTable6Search measures the 3n+5 linear search at several table
// sizes (paper: 3n+5 worst case).
func BenchmarkTable6Search(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1024} {
		b.Run(benchName("n", n), func(b *testing.B) {
			bench := lsm.NewBench(lsm.LSR)
			for i := 0; i < n; i++ {
				if _, err := bench.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 5, Op: label.OpSwap}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			cycles := 0
			for i := 0; i < b.N; i++ {
				_, c, err := bench.Lookup(infobase.Level2, 999999) // miss: scans all n
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "cycles/op")
			if cycles != lsm.SearchCycles(n) {
				b.Fatalf("search over %d entries took %d cycles, model says %d", n, cycles, lsm.SearchCycles(n))
			}
		})
	}
}

// BenchmarkTable6SwapFromIB measures the swap tail (paper: 6 cycles
// beyond the search).
func BenchmarkTable6SwapFromIB(b *testing.B) {
	bench := lsm.NewBench(lsm.LSR)
	if _, err := bench.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap}); err != nil {
		b.Fatal(err)
	}
	if _, err := bench.WritePair(infobase.Level2, infobase.Pair{Index: 9, NewLabel: 42, Op: label.OpSwap}); err != nil {
		b.Fatal(err)
	}
	if _, err := bench.UserPush(label.Entry{Label: 42, TTL: 255}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	tail := 0
	for i := 0; i < b.N; i++ {
		res, c, err := bench.Update(lsm.UpdateRequest{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Discarded() {
			// TTL ran out after many swaps; reload the stack.
			b.StopTimer()
			if _, err := bench.UserPush(label.Entry{Label: 42, TTL: 255}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		tail = c - lsm.SearchCycles(res.SearchPos)
	}
	b.ReportMetric(float64(tail), "tail-cycles/op")
}

// BenchmarkWorstCase6167 runs the paper's composite worst case end to end
// on the RTL model (paper: 6167 cycles = ~0.1233 ms at 50 MHz).
func BenchmarkWorstCase6167(b *testing.B) {
	total := 0
	for i := 0; i < b.N; i++ {
		bench := lsm.NewBench(lsm.LSR)
		total = 0
		c, err := bench.ResetOp()
		if err != nil {
			b.Fatal(err)
		}
		total += c
		for j := 0; j < 3; j++ {
			if c, err = bench.UserPush(label.Entry{Label: label.Label(40 + j), TTL: 64}); err != nil {
				b.Fatal(err)
			}
			total += c
		}
		for j := 0; j < infobase.EntriesPerLevel; j++ {
			idx := infobase.Key(10000 + j)
			if j == infobase.EntriesPerLevel-1 {
				idx = 42
			}
			if c, err = bench.WritePair(infobase.Level3, infobase.Pair{Index: idx, NewLabel: 900, Op: label.OpSwap}); err != nil {
				b.Fatal(err)
			}
			total += c
		}
		if _, c, err = bench.Update(lsm.UpdateRequest{}); err != nil {
			b.Fatal(err)
		}
		total += c
	}
	if total != 6167 {
		b.Fatalf("worst case = %d cycles, paper says 6167", total)
	}
	b.ReportMetric(float64(total), "cycles/scenario")
	b.ReportMetric(lsm.DefaultClock.Seconds(total)*1e3, "ms@50MHz")
}

// --- Figures 14-16 -------------------------------------------------------

// BenchmarkFig14Level1Lookup regenerates Figure 14 per iteration.
func BenchmarkFig14Level1Lookup(b *testing.B) {
	benchFigure(b, lsm.Figure14, true, 504)
}

// BenchmarkFig15Level2Lookup regenerates Figure 15 per iteration.
func BenchmarkFig15Level2Lookup(b *testing.B) {
	benchFigure(b, lsm.Figure15, true, 504)
}

// BenchmarkFig16LookupMiss regenerates Figure 16 per iteration.
func BenchmarkFig16LookupMiss(b *testing.B) {
	benchFigure(b, lsm.Figure16, false, 0)
}

func benchFigure(b *testing.B, fig func() (*lsm.FigureTrace, error), wantFound bool, wantLabel label.Label) {
	b.Helper()
	cycles := 0
	for i := 0; i < b.N; i++ {
		tr, err := fig()
		if err != nil {
			b.Fatal(err)
		}
		if tr.Result.Found != wantFound || (wantFound && tr.Result.Label != wantLabel) {
			b.Fatalf("figure result %+v", tr.Result)
		}
		cycles = tr.Cycles
	}
	b.ReportMetric(float64(cycles), "lookup-cycles")
}

// --- X1: hardware vs software per-packet label operation ----------------

// BenchmarkHardwareVsSoftware compares the worst-case per-packet swap:
// the embedded device (cycle model, reported as a metric) against the
// software forwarder (measured ns/op on this host) as the table grows.
func BenchmarkHardwareVsSoftware(b *testing.B) {
	for _, n := range []int{1, 16, 256, 1024} {
		b.Run(benchName("sw/ilm", n), func(b *testing.B) {
			f := swmpls.New()
			for i := 0; i < n; i++ {
				if err := f.MapLabel(label.Label(16+i), swmpls.NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{label.Label(200000 + i)}}); err != nil {
					b.Fatal(err)
				}
			}
			target := label.Label(16 + n - 1)
			p := packet.New(1, 2, 64, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Stack.Reset()
				_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
				if res := f.Forward(p); res.Action != swmpls.Forward {
					b.Fatal("software swap failed")
				}
			}
		})
		b.Run(benchName("hw/model", n), func(b *testing.B) {
			// The device transformation runs behaviorally; the hardware
			// time is its verified cycle count at 50 MHz.
			d := deviceWithILM(b, n)
			target := label.Label(16 + n - 1)
			p := packet.New(1, 2, 64, nil)
			cycles := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Stack.Reset()
				_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
				res, c := d.Device.Process(p)
				if res.Action != swmpls.Forward {
					b.Fatal("hardware swap failed")
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "hw-cycles/op")
			b.ReportMetric(lsm.DefaultClock.Nanos(cycles), "hw-ns/op")
		})
	}
}

// --- X3: linear search vs associative (CAM) ablation ---------------------

// BenchmarkSearchLinearVsCAM contrasts the paper's linear information
// base search (3n+5 cycles) with the content-addressable ablation
// (constant cycles), both measured on the RTL model: the lookup key is
// the last-written entry, the linear design's worst case.
func BenchmarkSearchLinearVsCAM(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		for _, kind := range []lsm.SearchKind{lsm.SearchLinear, lsm.SearchCAM} {
			kind := kind
			b.Run(benchName(kind.String(), n), func(b *testing.B) {
				bench := lsm.NewBenchWith(lsm.LSR, lsm.Options{Search: kind})
				for i := 0; i < n; i++ {
					if _, err := bench.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 5, Op: label.OpSwap}); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				cycles := 0
				for i := 0; i < b.N; i++ {
					res, c, err := bench.Lookup(infobase.Level2, infobase.Key(n))
					if err != nil {
						b.Fatal(err)
					}
					if !res.Found {
						b.Fatal("worst-case key not found")
					}
					cycles = c
				}
				if cycles != lsm.SearchCyclesFor(kind, n) {
					b.Fatalf("%v search over %d entries = %d cycles, model says %d",
						kind, n, cycles, lsm.SearchCyclesFor(kind, n))
				}
				b.ReportMetric(float64(cycles), "cycles/lookup")
			})
		}
	}
}

// --- X5: label switching vs conventional IP forwarding --------------------

// BenchmarkIPRouteVsILM contrasts the bare per-hop lookup structures: the
// MPLS incoming label map (one hash probe) against IP longest-prefix
// match over a FIB with mixed prefix lengths (up to 33 masked probes) —
// the data-plane argument for label switching that motivated MPLS.
func BenchmarkIPRouteVsILM(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		b.Run(benchName("ip-lpm", n), func(b *testing.B) {
			t := iproute.NewTable()
			// A realistic FIB mixes prefix lengths, so misses probe many
			// length buckets before matching.
			lens := []int{8, 16, 22, 24}
			for i := 0; i < n; i++ {
				if err := t.Add(packet.Addr(uint32(i)<<10), lens[i%len(lens)], "next"); err != nil {
					b.Fatal(err)
				}
			}
			addr := packet.Addr(uint32(n-4)<<10 | 9) // matches a /8 after probing 32..9
			if _, ok := t.Lookup(addr); !ok {
				b.Fatal("route missing")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := t.Lookup(addr); !ok {
					b.Fatal("route missing")
				}
			}
		})
		b.Run(benchName("mpls-ilm", n), func(b *testing.B) {
			f := swmpls.New()
			for i := 0; i < n; i++ {
				if err := f.MapLabel(label.Label(16+i), swmpls.NHLFE{NextHop: "next", Op: label.OpSwap, PushLabels: []label.Label{17}}); err != nil {
					b.Fatal(err)
				}
			}
			target := label.Label(16 + n - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := f.LookupILM(target); !ok {
					b.Fatal("label missing")
				}
			}
		})
	}
}

// --- X4: tunnel depth ----------------------------------------------------

// BenchmarkTunnelDepth measures per-hop device cycles as the label stack
// deepens (depth 1..3): loading costs 3 cycles per entry and the search
// level shifts with depth.
func BenchmarkTunnelDepth(b *testing.B) {
	for depth := 1; depth <= label.MaxDepth; depth++ {
		depth := depth
		b.Run(benchName("depth", depth), func(b *testing.B) {
			d := deviceWithILM(b, 8)
			p := packet.New(1, 2, 64, nil)
			cycles := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Stack.Reset()
				for j := 0; j < depth-1; j++ {
					_ = p.Stack.Push(label.Entry{Label: label.Label(1000 + j), TTL: 64})
				}
				_ = p.Stack.Push(label.Entry{Label: 16, TTL: 64})
				res, c := d.Device.Process(p)
				if res.Action != swmpls.Forward {
					b.Fatal("swap failed")
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "hw-cycles/op")
		})
	}
}

// --- X2: end-to-end VoIP QoS ----------------------------------------------

// BenchmarkVoIPQoS runs the motivating scenario (VoIP sharing a congested
// core with bulk data) under FIFO and CoS scheduling and reports the
// voice p99 latency for each; the CoS number must be dramatically lower.
func BenchmarkVoIPQoS(b *testing.B) {
	run := func(b *testing.B, cos bool) float64 {
		var newQueue func(int) qos.Scheduler
		if cos {
			newQueue = func(c int) qos.Scheduler { return qos.NewPriority(c) }
		}
		net, err := router.Build(
			[]router.NodeSpec{
				{Name: "in", Hardware: true, RouterType: lsm.LER},
				{Name: "c1", Hardware: true, RouterType: lsm.LSR},
				{Name: "out", Hardware: true, RouterType: lsm.LER},
			},
			[]router.LinkSpec{
				{A: "in", B: "c1", RateBPS: 10e6, Delay: 0.001, NewQueue: newQueue},
				{A: "c1", B: "out", RateBPS: 2e6, Delay: 0.004, NewQueue: newQueue},
			},
		)
		if err != nil {
			b.Fatal(err)
		}
		voiceDst := packet.AddrFrom(10, 9, 0, 1)
		bulkDst := packet.AddrFrom(10, 9, 0, 2)
		path := []string{"in", "c1", "out"}
		if _, err := net.LDP.SetupLSP(ldp.SetupRequest{ID: "v", FEC: ldp.FEC{Dst: voiceDst, PrefixLen: 32}, Path: path, CoS: 5}); err != nil {
			b.Fatal(err)
		}
		if _, err := net.LDP.SetupLSP(ldp.SetupRequest{ID: "b", FEC: ldp.FEC{Dst: bulkDst, PrefixLen: 32}, Path: path, CoS: 0}); err != nil {
			b.Fatal(err)
		}
		c := trafficgen.NewCollector(net.Sim)
		c.Attach(net.Router("out"))
		trafficgen.VoIP(trafficgen.Flow{ID: 1, Dst: voiceDst}, 0, 1).Install(net.Sim, net.Router("in"), c)
		trafficgen.Bulk{Flow: trafficgen.Flow{ID: 2, Dst: bulkDst}, Size: 1188, RateBPS: 4e6, Stop: 1}.
			Install(net.Sim, net.Router("in"), c)
		net.Sim.Run()
		return c.Flow(1).Latency.Percentile(99)
	}

	b.Run("fifo", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p99 = run(b, false)
		}
		b.ReportMetric(p99*1e3, "voice-p99-ms")
	})
	b.Run("cos", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p99 = run(b, true)
		}
		b.ReportMetric(p99*1e3, "voice-p99-ms")
	})
}

// --- X7: scheduling and discard disciplines --------------------------------

// BenchmarkQoSDisciplines runs the same voice+bulk congestion scenario
// under every scheduler the CoS bits can drive — FIFO, strict priority,
// WRR and WRED — and reports voice p99 latency and loss for each. The
// paper's claim is only that the CoS bits "affect the scheduling and/or
// discard algorithms"; this quantifies how much each algorithm buys.
func BenchmarkQoSDisciplines(b *testing.B) {
	disciplines := []struct {
		name     string
		newQueue func(int) qos.Scheduler
	}{
		{"fifo", nil},
		{"priority", func(c int) qos.Scheduler { return qos.NewPriority(c) }},
		{"wrr", func(c int) qos.Scheduler {
			return qos.NewWRR(c, [qos.NumClasses]int{1, 1, 1, 1, 1, 8, 8, 8})
		}},
		{"wred", func(c int) qos.Scheduler {
			var prof [qos.NumClasses]qos.REDParams
			for i := range prof {
				prof[i] = qos.REDParams{MinTh: 4, MaxTh: 24, MaxP: 0.8}
			}
			prof[5] = qos.REDParams{MinTh: 40, MaxTh: 60, MaxP: 0.05}
			return qos.NewWRED(c, prof, 1)
		}},
	}
	for _, disc := range disciplines {
		disc := disc
		b.Run(disc.name, func(b *testing.B) {
			var p99, loss float64
			for i := 0; i < b.N; i++ {
				net, err := router.Build(
					[]router.NodeSpec{
						{Name: "in", Hardware: true, RouterType: lsm.LER},
						{Name: "out", Hardware: true, RouterType: lsm.LER},
					},
					[]router.LinkSpec{{A: "in", B: "out", RateBPS: 2e6, Delay: 0.004, QueueCap: 64, NewQueue: disc.newQueue}},
				)
				if err != nil {
					b.Fatal(err)
				}
				voiceDst := packet.AddrFrom(10, 9, 0, 1)
				bulkDst := packet.AddrFrom(10, 9, 0, 2)
				path := []string{"in", "out"}
				if _, err := net.LDP.SetupLSP(ldp.SetupRequest{ID: "v", FEC: ldp.FEC{Dst: voiceDst, PrefixLen: 32}, Path: path, CoS: 5}); err != nil {
					b.Fatal(err)
				}
				if _, err := net.LDP.SetupLSP(ldp.SetupRequest{ID: "b", FEC: ldp.FEC{Dst: bulkDst, PrefixLen: 32}, Path: path, CoS: 0}); err != nil {
					b.Fatal(err)
				}
				c := trafficgen.NewCollector(net.Sim)
				c.Attach(net.Router("out"))
				trafficgen.VoIP(trafficgen.Flow{ID: 1, Dst: voiceDst}, 0, 1).Install(net.Sim, net.Router("in"), c)
				trafficgen.Bulk{Flow: trafficgen.Flow{ID: 2, Dst: bulkDst}, Size: 1188, RateBPS: 4e6, Stop: 1}.
					Install(net.Sim, net.Router("in"), c)
				net.Sim.Run()
				p99 = c.Flow(1).Latency.Percentile(99)
				loss = c.Flow(1).LossRate()
			}
			b.ReportMetric(p99*1e3, "voice-p99-ms")
			b.ReportMetric(loss*100, "voice-loss-%")
		})
	}
}

// --- end-to-end simulator throughput ---------------------------------------

// BenchmarkNetworkForwarding pushes packets through a 4-hop LSP on the
// discrete-event simulator (hardware and software planes) and reports how
// many simulated packets the host sustains per second — the cost of the
// whole stack: generators, engine serialisation, links, queues, data
// plane and statistics.
func BenchmarkNetworkForwarding(b *testing.B) {
	for _, hw := range []bool{false, true} {
		name := "software"
		if hw {
			name = "hardware"
		}
		b.Run(name, func(b *testing.B) {
			dst := packet.AddrFrom(10, 0, 0, 1)
			nodes := []router.NodeSpec{
				{Name: "r0", Hardware: hw, RouterType: lsm.LER},
				{Name: "r1", Hardware: hw, RouterType: lsm.LSR},
				{Name: "r2", Hardware: hw, RouterType: lsm.LSR},
				{Name: "r3", Hardware: hw, RouterType: lsm.LER},
			}
			var links []router.LinkSpec
			for i := 0; i < 3; i++ {
				links = append(links, router.LinkSpec{
					A: nodes[i].Name, B: nodes[i+1].Name,
					RateBPS: 1e9, Delay: 1e-5, QueueCap: 1024,
				})
			}
			net, err := router.Build(nodes, links)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.LDP.SetupLSP(ldp.SetupRequest{
				ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"r0", "r1", "r2", "r3"},
			}); err != nil {
				b.Fatal(err)
			}
			delivered := 0
			net.Router("r3").OnDeliver = func(*packet.Packet) { delivered++ }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Router("r0").Inject(packet.New(1, dst, 64, make([]byte, 256)))
				net.Sim.Run()
			}
			b.StopTimer()
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sim-pkts/s")
		})
	}
}

// --- helpers --------------------------------------------------------------

func deviceWithILM(b *testing.B, n int) *router.HardwarePlane {
	b.Helper()
	net, err := router.Build([]router.NodeSpec{{Name: "r", Hardware: true, RouterType: lsm.LSR}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	plane := net.Router("r").Plane().(*router.HardwarePlane)
	for i := 0; i < n; i++ {
		if err := plane.InstallILM(label.Label(16+i), swmpls.NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{label.Label(200000 + i)}}); err != nil {
			b.Fatal(err)
		}
	}
	return plane
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
