package lsm

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/rtl"
)

// Bench drives the HW model with the command protocol the paper's
// simulations use — assert the inputs and enable, count clock edges until
// the done pulse, deassert — and reports the exact cycle cost of every
// operation. All Table 6 measurements come from this driver.
type Bench struct {
	HW *HW
	// MaxCycles bounds any single operation; a run that exceeds it
	// indicates a control unit deadlock.
	MaxCycles int
}

// ErrTimeout reports an operation that never raised done.
var ErrTimeout = errors.New("lsm: operation did not complete")

// NewBench builds a fresh HW model (the paper's linear-search design)
// configured as the given router type.
func NewBench(rtype RouterType) *Bench { return NewBenchWith(rtype, Options{}) }

// NewBenchWith builds a bench over an HW model with the given options
// (e.g. the CAM search ablation).
func NewBenchWith(rtype RouterType, opts Options) *Bench {
	b := &Bench{HW: NewWith(opts), MaxCycles: searchPerEntry*infobase.EntriesPerLevel + 64}
	b.HW.RtrType.Set(uint64(rtype))
	return b
}

// run asserts a command, steps until done, then deasserts the strobe.
// observe, when non-nil, is called after every step so the caller can
// watch mid-operation signals.
func (b *Bench) run(cmd Command, observe func()) (int, error) {
	hw := b.HW
	hw.ExtOp.Set(uint64(cmd))
	hw.Enable.SetBool(true)
	cycles, ok := hw.Sim.StepUntil(func() bool {
		if observe != nil {
			observe()
		}
		return hw.Done.Bool()
	}, b.MaxCycles)
	hw.Enable.SetBool(false)
	hw.ExtOp.Set(uint64(CmdNone))
	if !ok {
		return cycles, fmt.Errorf("%w: %v after %d cycles", ErrTimeout, cmd, cycles)
	}
	return cycles, nil
}

// ResetOp pulses the architecture reset and returns its cycle cost
// (Table 6: 3).
func (b *Bench) ResetOp() (int, error) {
	hw := b.HW
	// Drain any residue of a previous reset (sequencer count, done
	// pulse) so back-to-back resets each run the full 3-cycle sequence.
	// These idle edges are the gap between commands, not operation cost.
	rstCnt := hw.Sim.Lookup("rst_cnt")
	for i := 0; i < 4 && (rstCnt.Get() != 0 || hw.Done.Bool()); i++ {
		hw.Sim.Step()
	}
	hw.Reset.SetBool(true)
	cycles, ok := hw.Sim.StepUntil(func() bool { return hw.Done.Bool() }, b.MaxCycles)
	hw.Reset.SetBool(false)
	if !ok {
		return cycles, fmt.Errorf("%w: reset after %d cycles", ErrTimeout, cycles)
	}
	return cycles, nil
}

// UserPush pushes e directly onto the stack and returns the cycle cost
// (Table 6: 3). Pushing onto a full stack is silently ignored by the
// register file, as in hardware; callers guard depth themselves.
func (b *Bench) UserPush(e label.Entry) (int, error) {
	w, err := e.Pack()
	if err != nil {
		return 0, err
	}
	b.HW.DataIn.Set(uint64(w))
	return b.run(CmdUserPush, nil)
}

// UserPop removes the top entry, returning it and the cycle cost
// (Table 6: 3).
func (b *Bench) UserPop() (label.Entry, int, error) {
	top := label.Unpack(uint32(b.HW.Stack.Top.Get()))
	hadTop := b.HW.Stack.Size.Get() > 0
	cycles, err := b.run(CmdUserPop, nil)
	if err != nil {
		return label.Entry{}, cycles, err
	}
	if !hadTop {
		return label.Entry{}, cycles, label.ErrStackEmpty
	}
	return top, cycles, nil
}

// WritePair stores a pair at level lv (Table 6: 3 cycles). Writing to a
// full level wraps in hardware; the bench rejects it instead, because a
// silently overwritten pair would corrupt an unrelated LSP.
func (b *Bench) WritePair(lv infobase.Level, p infobase.Pair) (int, error) {
	if err := infobase.ValidatePair(lv, p); err != nil {
		return 0, err
	}
	hw := b.HW
	if hw.Sim.Lookup("ib_wcnt_"+string(byte('0'+lv))).Get() >= infobase.EntriesPerLevel {
		return 0, fmt.Errorf("%w: level %d", infobase.ErrLevelFull, lv)
	}
	hw.Level.Set(uint64(lv))
	hw.NewLabel.Set(uint64(p.NewLabel))
	hw.OperationIn.Set(uint64(p.Op))
	if lv == infobase.Level1 {
		hw.PacketID.Set(uint64(p.Index))
	} else {
		hw.OldLabel.Set(uint64(p.Index))
	}
	return b.run(CmdWritePair, nil)
}

// LookupResult is the outcome of a direct information base lookup.
type LookupResult struct {
	Label     label.Label
	Op        label.Op
	Found     bool
	SearchPos int // 1-based hit position, or entries scanned on a miss
}

// Lookup searches level lv for key and returns the result plus the cycle
// cost (Table 6: 3n+5 worst case; 3i+5 for a hit at position i).
func (b *Bench) Lookup(lv infobase.Level, key infobase.Key) (LookupResult, int, error) {
	hw := b.HW
	hw.Level.Set(uint64(lv))
	if lv == infobase.Level1 {
		hw.PacketID.Set(uint64(key))
	} else {
		hw.LabelLookup.Set(uint64(key))
	}
	var res LookupResult
	cycles, err := b.run(CmdLookup, b.searchObserver(&res.Found, &res.SearchPos))
	if err != nil {
		return res, cycles, err
	}
	res.Label = label.Label(hw.LabelOut.Get())
	res.Op = label.Op(hw.OperationOut.Get())
	return res, cycles, nil
}

// searchObserver watches the search module and records whether it hit and
// at which position: read index + 1 at the completion pulse (0 for an
// empty level) for the linear design, or the CAM's matched address + 1
// for the associative ablation.
func (b *Bench) searchObserver(found *bool, pos *int) func() {
	hw := b.HW
	return func() {
		if !hw.LookupDone.Bool() {
			return
		}
		hit := hw.SrchState.Get() == srFound
		if hit {
			*found = true
		}
		switch {
		case hw.Opts.Search == SearchCAM && hit:
			*pos = int(hw.Sim.Lookup("cam_addr").Get()) + 1
		case hw.Opts.Search == SearchCAM:
			*pos = int(hw.Sim.Lookup("w_sel").Get())
		case hw.Sim.Lookup("w_sel").Get() == 0:
			*pos = 0
		default:
			*pos = int(hw.RIndex.Get()) + 1
		}
	}
}

// ReadPair reads the stored pair at address i of level lv directly (the
// management read-out path; constant CyclesReadPair cycles). Reading an
// address at or beyond the level's write count is refused — the memory
// word exists but holds no pair.
func (b *Bench) ReadPair(lv infobase.Level, i int) (infobase.Pair, int, error) {
	hw := b.HW
	if !lv.Valid() {
		return infobase.Pair{}, 0, infobase.ErrInvalidLevel
	}
	if i < 0 || uint64(i) >= hw.Sim.Lookup("ib_wcnt_"+string(byte('0'+lv))).Get() {
		return infobase.Pair{}, 0, fmt.Errorf("lsm: no pair at level %d address %d", lv, i)
	}
	hw.Level.Set(uint64(lv))
	hw.DataIn.Set(uint64(i))
	cycles, err := b.run(CmdReadPair, nil)
	if err != nil {
		return infobase.Pair{}, cycles, err
	}
	return infobase.Pair{
		Index:    infobase.Key(hw.IndexOut.Get()),
		NewLabel: label.Label(hw.LabelOut.Get()),
		Op:       label.Op(hw.OperationOut.Get()),
	}, cycles, nil
}

// Update runs the packet-driven label stack update and returns what
// happened plus the cycle cost: SearchCycles(pos) + the operation tail
// (6 for the Table 6 swap).
func (b *Bench) Update(req UpdateRequest) (UpdateResult, int, error) {
	hw := b.HW
	hw.PacketID.Set(uint64(req.PacketID))
	hw.TTLIn.Set(uint64(req.TTLIn))
	hw.CoSIn.Set(uint64(req.CoSIn))
	var found bool
	var pos int
	cycles, err := b.run(CmdUpdate, b.searchObserver(&found, &pos))
	res := UpdateResult{SearchPos: pos}
	if err != nil {
		return res, cycles, err
	}
	res.NewLabel = label.Label(hw.LabelOut.Get())
	res.Op = label.Op(hw.OperationOut.Get())
	if hw.PacketDiscard.Bool() {
		switch {
		case !found:
			res.Discard = DiscardNotFound
		case hw.TTLQ.Get() == 0:
			res.Discard = DiscardTTLExpired
		default:
			res.Discard = DiscardInconsistent
		}
	}
	return res, cycles, nil
}

// StackSnapshot returns the current hardware stack contents.
func (b *Bench) StackSnapshot() *label.Stack { return b.HW.Stack.Snapshot() }

// Sim exposes the underlying simulator (for tracing).
func (b *Bench) Sim() *rtl.Simulator { return b.HW.Sim }
