package rtl

import "testing"

func TestSignalMasking(t *testing.T) {
	sim := New()
	s := sim.Signal("s", 4)
	s.Set(0x1f)
	if s.Get() != 0xf {
		t.Errorf("4-bit signal holds %#x, want masked 0xf", s.Get())
	}
	b := sim.Signal("b", 1)
	b.SetBool(true)
	if !b.Bool() || b.Get() != 1 {
		t.Error("SetBool(true) did not set the bit")
	}
	b.SetBool(false)
	if b.Bool() {
		t.Error("SetBool(false) did not clear the bit")
	}
	w := sim.Signal("w", 64)
	w.Set(^uint64(0))
	if w.Get() != ^uint64(0) {
		t.Error("64-bit signal truncated")
	}
}

func TestSignalRegistryAndPanics(t *testing.T) {
	sim := New()
	s := sim.Signal("x", 8)
	if sim.Lookup("x") != s {
		t.Error("Lookup did not return the registered signal")
	}
	if sim.Lookup("missing") != nil {
		t.Error("Lookup of an unknown name should be nil")
	}
	if len(sim.Signals()) != 1 {
		t.Error("Signals() should list one signal")
	}
	assertPanics(t, "duplicate name", func() { sim.Signal("x", 8) })
	assertPanics(t, "zero width", func() { sim.Signal("z", 0) })
	assertPanics(t, "width > 64", func() { sim.Signal("y", 65) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestCombSettlesChains(t *testing.T) {
	sim := New()
	a := sim.Signal("a", 8)
	b := sim.Signal("b", 8)
	c := sim.Signal("c", 8)
	// Deliberately register dependent combs in reverse order to force the
	// fixed-point loop to iterate: c = b + 1, b = a + 1.
	sim.Comb(func() { c.Set(b.Get() + 1) })
	sim.Comb(func() { b.Set(a.Get() + 1) })
	a.Set(5)
	sim.Settle()
	if b.Get() != 6 || c.Get() != 7 {
		t.Errorf("settled b=%d c=%d, want 6, 7", b.Get(), c.Get())
	}
}

func TestCombinationalCyclePanics(t *testing.T) {
	sim := New()
	a := sim.Signal("a", 8)
	b := sim.Signal("b", 8)
	sim.Comb(func() { a.Set(b.Get() + 1) })
	sim.Comb(func() { b.Set(a.Get() + 1) })
	assertPanics(t, "comb cycle", sim.Settle)
}

func TestRegisterLoadEnableClear(t *testing.T) {
	sim := New()
	d := sim.Signal("d", 8)
	q := sim.Signal("q", 8)
	en := sim.Signal("en", 1)
	clr := sim.Signal("clr", 1)
	NewRegister(sim, d, q, en, clr)

	d.Set(0xab)
	sim.Step()
	if q.Get() != 0 {
		t.Error("register loaded with enable low")
	}
	en.SetBool(true)
	sim.Step()
	if q.Get() != 0xab {
		t.Errorf("q=%#x after enabled load, want 0xab", q.Get())
	}
	en.SetBool(false)
	d.Set(0x11)
	sim.Step()
	if q.Get() != 0xab {
		t.Error("register changed while disabled")
	}
	clr.SetBool(true)
	en.SetBool(true) // clear must dominate enable
	sim.Step()
	if q.Get() != 0 {
		t.Error("clear did not zero the register")
	}
}

func TestRegisterAlwaysLoadWithNilEnable(t *testing.T) {
	sim := New()
	d := sim.Signal("d", 8)
	q := sim.Signal("q", 8)
	NewRegister(sim, d, q, nil, nil)
	d.Set(7)
	sim.Step()
	if q.Get() != 7 {
		t.Errorf("q=%d, want 7", q.Get())
	}
}

func TestRegistersUpdateSimultaneously(t *testing.T) {
	// A two-stage shift register proves latch/commit ordering: both
	// registers must see pre-edge values.
	sim := New()
	in := sim.Signal("in", 8)
	q1 := sim.Signal("q1", 8)
	q2 := sim.Signal("q2", 8)
	NewRegister(sim, in, q1, nil, nil)
	NewRegister(sim, q1, q2, nil, nil)
	in.Set(1)
	sim.Step()
	if q1.Get() != 1 || q2.Get() != 0 {
		t.Fatalf("after 1 step q1=%d q2=%d, want 1, 0", q1.Get(), q2.Get())
	}
	in.Set(2)
	sim.Step()
	if q1.Get() != 2 || q2.Get() != 1 {
		t.Fatalf("after 2 steps q1=%d q2=%d, want 2, 1", q1.Get(), q2.Get())
	}
}

func TestCounterUpDownLoadClearSaturate(t *testing.T) {
	sim := New()
	q := sim.Signal("q", 8)
	en := sim.Signal("en", 1)
	down := sim.Signal("down", 1)
	ld := sim.Signal("ld", 1)
	d := sim.Signal("d", 8)
	clr := sim.Signal("clr", 1)
	NewCounter(sim, q, en, down, ld, d, clr)

	en.SetBool(true)
	sim.Run(3)
	if q.Get() != 3 {
		t.Errorf("count=%d after 3 up steps, want 3", q.Get())
	}
	down.SetBool(true)
	sim.Run(2)
	if q.Get() != 1 {
		t.Errorf("count=%d after 2 down steps, want 1", q.Get())
	}
	sim.Run(3)
	if q.Get() != 0 {
		t.Errorf("down count must saturate at 0, got %d", q.Get())
	}
	d.Set(42)
	ld.SetBool(true)
	sim.Step()
	if q.Get() != 42 {
		t.Errorf("load: count=%d, want 42", q.Get())
	}
	ld.SetBool(false)
	clr.SetBool(true)
	sim.Step()
	if q.Get() != 0 {
		t.Error("clear did not zero the counter")
	}
}

func TestCounterLoadNeedsValue(t *testing.T) {
	sim := New()
	q := sim.Signal("q", 8)
	ld := sim.Signal("ld", 1)
	assertPanics(t, "load without value", func() { NewCounter(sim, q, nil, nil, ld, nil, nil) })
}

func TestRAMSynchronousReadWrite(t *testing.T) {
	sim := New()
	raddr := sim.Signal("raddr", 10)
	rdata := sim.Signal("rdata", 32)
	waddr := sim.Signal("waddr", 10)
	wdata := sim.Signal("wdata", 32)
	wen := sim.Signal("wen", 1)
	m := NewRAM(sim, 1024, raddr, rdata, waddr, wdata, wen)

	if m.Words() != 1024 {
		t.Fatalf("Words=%d", m.Words())
	}
	waddr.Set(5)
	wdata.Set(0xdead)
	wen.SetBool(true)
	sim.Step()
	wen.SetBool(false)
	if m.Peek(5) != 0xdead {
		t.Fatalf("write did not land: %#x", m.Peek(5))
	}
	raddr.Set(5)
	sim.Step() // read data appears one edge after the address
	if rdata.Get() != 0xdead {
		t.Errorf("rdata=%#x, want 0xdead", rdata.Get())
	}
}

func TestRAMReadBeforeWrite(t *testing.T) {
	sim := New()
	raddr := sim.Signal("raddr", 4)
	rdata := sim.Signal("rdata", 8)
	waddr := sim.Signal("waddr", 4)
	wdata := sim.Signal("wdata", 8)
	wen := sim.Signal("wen", 1)
	NewRAM(sim, 16, raddr, rdata, waddr, wdata, wen)

	// Read and write address 3 on the same edge: the read must return the
	// old word.
	raddr.Set(3)
	waddr.Set(3)
	wdata.Set(9)
	wen.SetBool(true)
	sim.Step()
	if rdata.Get() != 0 {
		t.Errorf("simultaneous read returned the new word (%d), want old (0)", rdata.Get())
	}
	wen.SetBool(false)
	sim.Step()
	if rdata.Get() != 9 {
		t.Errorf("next read = %d, want 9", rdata.Get())
	}
}

func TestRAMAddressWrapsAndSizePanics(t *testing.T) {
	sim := New()
	raddr := sim.Signal("raddr", 8)
	rdata := sim.Signal("rdata", 8)
	waddr := sim.Signal("waddr", 8)
	wdata := sim.Signal("wdata", 8)
	wen := sim.Signal("wen", 1)
	m := NewRAM(sim, 4, raddr, rdata, waddr, wdata, wen)
	waddr.Set(6) // wraps to 2
	wdata.Set(1)
	wen.SetBool(true)
	sim.Step()
	if m.Peek(2) != 1 {
		t.Error("out-of-range write address did not wrap")
	}
	assertPanics(t, "zero words", func() { NewRAM(sim, 0, raddr, rdata, waddr, wdata, wen) })
}

func TestComparator(t *testing.T) {
	sim := New()
	a := sim.Signal("a", 32)
	b := sim.Signal("b", 32)
	eq := sim.Signal("eq", 1)
	Comparator(sim, a, b, eq)
	a.Set(604)
	b.Set(604)
	sim.Settle()
	if !eq.Bool() {
		t.Error("comparator missed equal values")
	}
	b.Set(605)
	sim.Settle()
	if eq.Bool() {
		t.Error("comparator matched unequal values")
	}
}

func TestFSMStepsThroughStates(t *testing.T) {
	const (
		idle = iota
		work
		done
	)
	sim := New()
	state := sim.Signal("state", 2)
	start := sim.Signal("start", 1)
	busy := sim.Signal("busy", 1)
	NewFSM(sim, state, func() uint64 {
		switch state.Get() {
		case idle:
			if start.Bool() {
				return work
			}
			return idle
		case work:
			return done
		default:
			return idle
		}
	})
	sim.Comb(func() { busy.SetBool(state.Get() == work) })

	sim.Step()
	if state.Get() != idle {
		t.Fatal("FSM left idle without start")
	}
	start.SetBool(true)
	sim.Step()
	if state.Get() != work || !busy.Bool() {
		t.Fatalf("state=%d busy=%v, want work/busy", state.Get(), busy.Bool())
	}
	sim.Step()
	if state.Get() != done {
		t.Fatal("FSM did not reach done")
	}
	sim.Step()
	if state.Get() != idle {
		t.Fatal("FSM did not wrap to idle")
	}
}

func TestStepUntil(t *testing.T) {
	sim := New()
	q := sim.Signal("q", 8)
	en := sim.Signal("en", 1)
	NewCounter(sim, q, en, nil, nil, nil, nil)
	en.SetBool(true)
	cycles, ok := sim.StepUntil(func() bool { return q.Get() == 5 }, 100)
	if !ok || cycles != 5 {
		t.Errorf("StepUntil: cycles=%d ok=%v, want 5, true", cycles, ok)
	}
	_, ok = sim.StepUntil(func() bool { return false }, 3)
	if ok {
		t.Error("StepUntil reported success for an unreachable condition")
	}
	if sim.Cycle() != 8 {
		t.Errorf("Cycle()=%d, want 8", sim.Cycle())
	}
}

func TestOnSampleFires(t *testing.T) {
	sim := New()
	var cycles []uint64
	sim.OnSample(func(c uint64) { cycles = append(cycles, c) })
	sim.Run(3)
	if len(cycles) != 3 || cycles[0] != 1 || cycles[2] != 3 {
		t.Errorf("sampled cycles %v, want [1 2 3]", cycles)
	}
}
