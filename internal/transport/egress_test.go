package transport

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// wireSink is a batch egress sink backed by a UDPLink: the minimal
// shape of the router's egress pump, used to pin the allocation cost
// of the full shard -> staging ring -> SendBatch pipeline. After each
// flush it rewinds the packets' label stacks so the test can resubmit
// the same packets forever.
type wireSink struct {
	l       *UDPLink
	entry   label.Entry
	flushed atomic.Uint64
	stray   atomic.Uint64
}

func (s *wireSink) Flush(_ string, ps []*packet.Packet) {
	s.l.SendBatch(ps)
	for _, p := range ps {
		p.Stack.Reset()
		if err := p.Stack.Push(s.entry); err != nil {
			panic(err)
		}
	}
	s.flushed.Add(uint64(len(ps)))
}

func (s *wireSink) Deliver(ps []*packet.Packet) { s.stray.Add(uint64(len(ps))) }

func (s *wireSink) Discard(ps []*packet.Packet, _ []swmpls.DropReason) {
	s.stray.Add(uint64(len(ps)))
}

// TestEgressPumpAllocs pins the steady-state allocation cost of the
// whole batch-first egress path — pinned Submit, shard queue, label
// swap, staging ring, size-triggered flush, coalesced SendBatch — at
// zero. The submit batch equals the flush size, so every iteration is
// exactly one drain, one staged ring and one size-triggered flush out
// the wire.
func TestEgressPumpAllocs(t *testing.T) {
	// The wire writes into a socket nobody reads — kernel-side drops
	// keep the measurement free of a receive goroutine.
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()
	l, err := Dial("a", "b", sinkConn.LocalAddr().String(),
		WithCoalesce(32), WithSysBatch(32))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 16
	entry := label.Entry{Label: 100, TTL: 64}
	sink := &wireSink{l: l, entry: entry}
	// Size is the only reachable trigger: the flush interval is
	// unreachable and each submit fills a ring exactly. The flow cache
	// stays off so the pin covers the uncached table walk.
	e := dataplane.New(
		dataplane.WithWorkers(1), dataplane.WithBatch(n),
		dataplane.WithFlowCacheDisabled(),
		dataplane.WithEgress(sink), dataplane.WithEgressFlush(n, time.Hour))
	defer e.Close()
	// Swap 100 -> 100: the sink's stack rewind keeps every packet
	// resubmittable without rebuilding it.
	if err := e.InstallILM(100, swmpls.NHLFE{
		NextHop: "b", Op: label.OpSwap, PushLabels: []label.Label{100},
	}); err != nil {
		t.Fatal(err)
	}

	ps := make([]*packet.Packet, n)
	for i := range ps {
		p := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
		p.Header.FlowID = uint16(i)
		if err := p.Stack.Push(entry); err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}

	var want uint64
	cycle := func() {
		want += n
		if got := e.Submit(ps, dataplane.SubmitOpts{Wait: true, Pin: true, Shard: 0}); got != n {
			t.Fatalf("pinned submit accepted %d of %d", got, n)
		}
		for i := 0; sink.flushed.Load() < want; i++ {
			if i > 1<<30 {
				t.Fatal("flush never completed")
			}
			runtime.Gosched()
		}
	}
	cycle() // warm up: ring, drain buffer and wire scratch reach steady state
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("egress pump allocates %.1f times per batch, want 0", allocs)
	}
	if s := sink.stray.Load(); s != 0 {
		t.Errorf("%d packets left the forwarding path (deliver/discard), want 0", s)
	}
}
