package mmio

import (
	"errors"
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
)

func newDevice(t *testing.T, rtype lsm.RouterType) (*Peripheral, *Driver) {
	t.Helper()
	hw := lsm.NewWith(lsm.Options{})
	hw.RtrType.Set(uint64(rtype))
	p := NewPeripheral(hw, 1)
	return p, NewDriver(p)
}

func TestDriverResetAndPush(t *testing.T) {
	_, d := newDevice(t, lsm.LSR)
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(label.Entry{Label: 42, CoS: 2, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	e, err := d.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != 42 || e.CoS != 2 || e.TTL != 64 || !e.Bottom {
		t.Errorf("popped %v", e)
	}
	if _, err := d.Pop(); err != label.ErrStackEmpty {
		t.Errorf("pop empty: %v", err)
	}
}

func TestDriverTablesAndLookup(t *testing.T) {
	_, d := newDevice(t, lsm.LSR)
	if err := d.WritePair(infobase.Level2, infobase.Pair{Index: 7, NewLabel: 700, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePair(infobase.Level1, infobase.Pair{Index: 0xc0a80101, NewLabel: 100, Op: label.OpPush}); err != nil {
		t.Fatal(err)
	}
	lbl, op, found, err := d.Lookup(infobase.Level2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !found || lbl != 700 || op != label.OpSwap {
		t.Errorf("lookup = (%v, %v, %v)", lbl, op, found)
	}
	lbl, op, found, err = d.Lookup(infobase.Level1, 0xc0a80101)
	if err != nil {
		t.Fatal(err)
	}
	if !found || lbl != 100 || op != label.OpPush {
		t.Errorf("level-1 lookup = (%v, %v, %v)", lbl, op, found)
	}
	if _, _, found, err = d.Lookup(infobase.Level2, 99); err != nil || found {
		t.Errorf("miss = found %v, err %v", found, err)
	}
	if err := d.WritePair(infobase.Level2, infobase.Pair{Index: 1 << 21, NewLabel: 1, Op: label.OpSwap}); err == nil {
		t.Error("invalid pair accepted by the driver")
	}
}

func TestDriverUpdateSwapEndToEnd(t *testing.T) {
	_, d := newDevice(t, lsm.LSR)
	if err := d.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(label.Entry{Label: 42, CoS: 3, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	discarded, err := d.Update(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if discarded {
		t.Fatal("swap discarded")
	}
	st, err := d.Stack()
	if err != nil {
		t.Fatal(err)
	}
	top, _ := st.Top()
	if st.Depth() != 1 || top.Label != 777 || top.TTL != 63 || top.CoS != 3 {
		t.Errorf("stack after swap = %v", st)
	}
}

func TestDriverUpdateDiscard(t *testing.T) {
	_, d := newDevice(t, lsm.LSR)
	if err := d.Push(label.Entry{Label: 9, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	discarded, err := d.Update(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !discarded {
		t.Fatal("miss not reported as discard")
	}
	st, err := d.Stack()
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth() != 0 {
		t.Errorf("stack not reset: %v", st)
	}
}

func TestDriverMatchesBenchResults(t *testing.T) {
	// The driver over MMIO and the direct bench must agree on the same
	// configuration.
	_, d := newDevice(t, lsm.LSR)
	b := lsm.NewBench(lsm.LSR)
	pairs := []infobase.Pair{
		{Index: 5, NewLabel: 50, Op: label.OpSwap},
		{Index: 6, NewLabel: 0, Op: label.OpPop},
		{Index: 7, NewLabel: 70, Op: label.OpPush},
	}
	for _, p := range pairs {
		if err := d.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []infobase.Key{5, 6, 7, 8} {
		dl, do, df, err := d.Lookup(infobase.Level2, key)
		if err != nil {
			t.Fatal(err)
		}
		br, _, err := b.Lookup(infobase.Level2, key)
		if err != nil {
			t.Fatal(err)
		}
		if df != br.Found || (df && (dl != br.Label || do != br.Op)) {
			t.Errorf("key %d: driver=(%v,%v,%v) bench=%+v", key, dl, do, df, br)
		}
	}
}

func TestBusAccessCostsCycles(t *testing.T) {
	p, d := newDevice(t, lsm.LSR)
	before, err := p.Read(RegCycleCount)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Push(label.Entry{Label: 1, TTL: 1}); err != nil {
		t.Fatal(err)
	}
	after, err := p.Read(RegCycleCount)
	if err != nil {
		t.Fatal(err)
	}
	// A push is 3 core cycles; over the bus the driver pays one cycle
	// per transaction: data write, ctrl write, two status polls (the
	// done pulse lands during the second), ctrl clear — plus the cycle
	// of the counter read itself. The 3 push cycles elapse *during*
	// those transactions (shared clock), so the bus path costs 6 versus
	// the core's 3.
	if got := after - before; got != 6 {
		t.Errorf("push cost %d cycles over the bus, want 6", got)
	}
}

func TestRegisterMapErrors(t *testing.T) {
	p, _ := newDevice(t, lsm.LSR)
	if _, err := p.Read(0xfc); !errors.Is(err, ErrBadAddress) {
		t.Errorf("read of unmapped register: %v", err)
	}
	if err := p.Write(0xfc, 1); !errors.Is(err, ErrBadAddress) {
		t.Errorf("write of unmapped register: %v", err)
	}
	for _, ro := range []uint32{RegStatus, RegLabelOut, RegOperationOu, RegStackTop, RegStackSize, RegCycleCount} {
		if err := p.Write(ro, 1); !errors.Is(err, ErrBadAddress) {
			t.Errorf("write to read-only %#x: %v", ro, err)
		}
	}
}

func TestRegisterReadback(t *testing.T) {
	p, _ := newDevice(t, lsm.LSR)
	writes := map[uint32]uint32{
		RegDataIn:      0xdeadbeef,
		RegPacketID:    0x01020304,
		RegOldLabel:    0x12345,
		RegNewLabel:    0x54321,
		RegOperationIn: 2,
		RegLevel:       3,
		RegLabelLookup: 0x42,
		RegTTLIn:       200,
		RegCoSIn:       5,
	}
	for addr, v := range writes {
		if err := p.Write(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	for addr, want := range writes {
		got, err := p.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("reg %#x = %#x, want %#x", addr, got, want)
		}
	}
	// CTRL readback reflects op/go/reset bits.
	if err := p.Write(RegCtrl, CtrlGo|uint32(lsm.CmdUserPush)); err != nil {
		t.Fatal(err)
	}
	v, err := p.Read(RegCtrl)
	if err != nil {
		t.Fatal(err)
	}
	if v&CtrlGo == 0 || v&CtrlOpMask != uint32(lsm.CmdUserPush) {
		t.Errorf("ctrl readback = %#x", v)
	}
	if err := p.Write(RegCtrl, 0); err != nil {
		t.Fatal(err)
	}
}

// brokenBus fails after n successful accesses, exercising driver error
// propagation.
type brokenBus struct {
	inner Bus
	left  int
}

func (b *brokenBus) Read(addr uint32) (uint32, error) {
	if b.left <= 0 {
		return 0, errors.New("bus fault")
	}
	b.left--
	return b.inner.Read(addr)
}

func (b *brokenBus) Write(addr uint32, v uint32) error {
	if b.left <= 0 {
		return errors.New("bus fault")
	}
	b.left--
	return b.inner.Write(addr, v)
}

func TestDriverPropagatesBusFaults(t *testing.T) {
	for _, budget := range []int{0, 1, 2, 3} {
		hw := lsm.NewWith(lsm.Options{})
		d := NewDriver(&brokenBus{inner: NewPeripheral(hw, 1), left: budget})
		if err := d.Push(label.Entry{Label: 1, TTL: 1}); err == nil {
			t.Errorf("budget %d: push succeeded on a faulting bus", budget)
		}
	}
}

func TestDriverTimeout(t *testing.T) {
	hw := lsm.NewWith(lsm.Options{})
	// Hold reset so no command ever completes.
	hw.Reset.SetBool(true)
	hw.Sim.Step()
	hw.Reset.SetBool(false)
	p := NewPeripheral(hw, 1)
	d := NewDriver(p)
	d.PollLimit = 4
	// An update with nothing on the stack and no routes at an LSR does
	// complete; instead wedge by never asserting go: drive a command op
	// with the go bit forced off through a shim.
	if _, err := d.exec(uint32(lsm.CmdUpdate)); !errors.Is(err, ErrTimeout) {
		t.Errorf("exec without go: %v", err)
	}
}

func TestDriverReadPair(t *testing.T) {
	_, d := newDevice(t, lsm.LSR)
	pairs := []infobase.Pair{
		{Index: 11, NewLabel: 110, Op: label.OpSwap},
		{Index: 12, NewLabel: 120, Op: label.OpPop},
	}
	for _, p := range pairs {
		if err := d.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range pairs {
		got, err := d.ReadPair(infobase.Level2, i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("addr %d: %+v, want %+v", i, got, want)
		}
	}
}

// TestDumpAndCloneConfiguration audits one device's tables over the bus
// and programs a second device from the dump; both must forward
// identically afterwards.
func TestDumpAndCloneConfiguration(t *testing.T) {
	_, src := newDevice(t, lsm.LSR)
	pairs := []infobase.Pair{
		{Index: 21, NewLabel: 210, Op: label.OpSwap},
		{Index: 22, NewLabel: 0, Op: label.OpPop},
		{Index: 23, NewLabel: 230, Op: label.OpPush},
	}
	for _, p := range pairs {
		if err := src.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	dump, err := src.DumpLevel(infobase.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) != len(pairs) {
		t.Fatalf("dumped %d pairs, wrote %d", len(dump), len(pairs))
	}
	for i := range pairs {
		if dump[i] != pairs[i] {
			t.Errorf("pair %d: dumped %+v, wrote %+v", i, dump[i], pairs[i])
		}
	}

	_, dst := newDevice(t, lsm.LSR)
	for _, p := range dump {
		if err := dst.WritePair(infobase.Level2, p); err != nil {
			t.Fatal(err)
		}
	}
	// Equal behaviour: the same carried label swaps identically.
	for _, drv := range []*Driver{src, dst} {
		if err := drv.Push(label.Entry{Label: 21, TTL: 64}); err != nil {
			t.Fatal(err)
		}
		discarded, err := drv.Update(0, 0, 0)
		if err != nil || discarded {
			t.Fatalf("update: discarded=%v err=%v", discarded, err)
		}
		st, err := drv.Stack()
		if err != nil {
			t.Fatal(err)
		}
		top, _ := st.Top()
		if top.Label != 210 {
			t.Errorf("cloned device swapped to %d, want 210", top.Label)
		}
	}
	// An empty level dumps empty; an unset level register errors.
	empty, err := src.DumpLevel(infobase.Level3)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty dump = %v, %v", empty, err)
	}
}

func TestWriteCountNeedsValidLevel(t *testing.T) {
	p, _ := newDevice(t, lsm.LSR)
	if _, err := p.Read(RegWriteCount); err == nil {
		t.Error("write count read with level register at 0 succeeded")
	}
}
