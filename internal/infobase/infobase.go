// Package infobase models the information base of the embedded MPLS
// architecture: the central store of (index, new label, operation) triples
// that the label stack modifier consults for every packet.
//
// The paper's hardware organises the base as three memory levels — one per
// supported label stack level — each holding 1 KB of label pairs (1024
// entries). Level 1 is indexed by the 32-bit packet identifier (for IP
// packets, the destination address), because an ingress LER must be able
// to push a label onto an *empty* stack; levels 2 and 3 are indexed by the
// 20-bit top label. Each level is searched linearly, giving the paper's
// 3n+5-cycle search cost.
//
// Three implementations share the Base interface:
//
//   - Behavioral (this file): the faithful software model of the paper's
//     memory — first match in insertion order, found by a linear scan, so
//     lookup cost grows with occupancy exactly like the 3n+5 hardware
//     search. It is the oracle the cycle-accurate RTL in package lsm is
//     property-tested against.
//   - Indexed (indexed.go): the production-shaped fast path — a per-level
//     hash index over the same insertion-ordered storage, giving O(1)
//     lookups that stay flat as the table fills while preserving the
//     Behavioral's exact semantics (duplicate keys, first-match wins,
//     deletes re-exposing later duplicates). The differential property
//     tests prove the equivalence.
//   - The RTL data path in package lsm, driven through the same traffic.
//
// Construct either software store with New and functional options
// (WithLevels, WithCapacity, WithIndex).
//
// Every level publishes its contents atomically: a write (or remove)
// stages a fresh copy of the level and installs it with one atomic store,
// so a concurrent Lookup observes either the old or the new level, never
// a partially-written triple — in particular, a write rejected by an
// injected write hook (the fault layer's flaky-memory model) leaves
// nothing visible. Writers themselves are not serialised: the store
// assumes one control-plane writer, matching the paper's single routing
// processor.
package infobase

import (
	"errors"
	"fmt"
	"sync/atomic"

	"embeddedmpls/internal/label"
)

// Level identifies one of the information base memories.
type Level int

// The three levels of the paper's information base.
const (
	Level1 Level = 1 // indexed by 32-bit packet identifier (ingress push)
	Level2 Level = 2 // indexed by 20-bit label, stack depth 1
	Level3 Level = 3 // indexed by 20-bit label, stack depth 2 or 3
)

// NumLevels is the number of memory levels in the paper's architecture
// (and the default for stores built without WithLevels).
const NumLevels = 3

// EntriesPerLevel is the paper's capacity of each level: "each memory
// component supports 1 KB of label pairs", i.e. 1024 entries (and the
// default for stores built without WithCapacity).
const EntriesPerLevel = 1024

// Valid reports whether lv names a level of the paper's three-level
// architecture. Stores built with WithLevels validate against their own
// configured count instead.
func (lv Level) Valid() bool { return lv >= Level1 && lv <= Level3 }

// LevelForDepth maps the current label stack depth to the level that must
// be consulted: an empty stack uses level 1 (keyed by packet identifier),
// a one-entry stack uses level 2, deeper stacks use level 3.
func LevelForDepth(depth int) Level {
	switch {
	case depth <= 0:
		return Level1
	case depth == 1:
		return Level2
	default:
		return Level3
	}
}

// Key is a lookup index: the full 32-bit packet identifier at level 1, or
// a 20-bit label value at levels 2 and up.
type Key uint32

// Pair is one information base entry: when a packet's key matches Index,
// apply Op using NewLabel.
type Pair struct {
	Index    Key
	NewLabel label.Label
	Op       label.Op
}

// Information base errors.
var (
	ErrLevelFull    = errors.New("infobase: level is full")
	ErrInvalidLevel = errors.New("infobase: no such level")
	ErrInvalidPair  = errors.New("infobase: pair field out of range")
)

// ValidatePair checks that p fits the wire widths of level lv in the
// default three-level geometry: level-1 indices are 32 bits (any Key),
// level-2/3 indices must be valid labels, the new label must fit 20 bits
// and the operation 2 bits.
func ValidatePair(lv Level, p Pair) error {
	if !lv.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidLevel, lv)
	}
	return validateFields(lv, p)
}

// validateFields checks the field widths of p for level lv, independent
// of how many levels the store has: level 1 exact-matches a 32-bit
// packet identifier, every deeper level a 20-bit label.
func validateFields(lv Level, p Pair) error {
	if lv != Level1 && !label.Label(p.Index).Valid() {
		return fmt.Errorf("%w: level-%d index %d exceeds 20 bits", ErrInvalidPair, lv, p.Index)
	}
	if !p.NewLabel.Valid() {
		return fmt.Errorf("%w: new label %d exceeds 20 bits", ErrInvalidPair, p.NewLabel)
	}
	if !p.Op.Valid() {
		return fmt.Errorf("%w: operation %d exceeds 2 bits", ErrInvalidPair, p.Op)
	}
	return nil
}

// Base is the information base contract shared by the behavioral model,
// the indexed fast path and the cycle-accurate hardware data path.
type Base interface {
	// Write appends a pair to level lv, like the hardware's "write label
	// pair" command. It fails when the level is full or the pair does not
	// fit the field widths.
	Write(lv Level, p Pair) error
	// Lookup returns the first pair, in insertion order, whose index
	// equals key — the answer the search module's incrementing read
	// index produces, however the implementation finds it.
	Lookup(lv Level, key Key) (label.Label, label.Op, bool)
	// Count returns the number of pairs stored at level lv.
	Count(lv Level) int
	// Clear empties every level.
	Clear()
}

// Store extends Base with the software-side management surface: the
// routing functionality's entry removal, the management read-out path,
// and the fault layer's write interception. Both software
// implementations (Behavioral and Indexed) satisfy it, so every layer
// above — the label stack modifier, the software forwarder's ILM, the
// device — can take either without caring how lookups are answered.
type Store interface {
	Base
	// Remove deletes the first pair at level lv whose index equals key
	// and reports whether one was removed. A later duplicate of the same
	// key becomes visible, exactly as under a linear rescan.
	Remove(lv Level, key Key) bool
	// Entries returns a copy of level lv in storage order.
	Entries(lv Level) []Pair
	// SetWriteHook installs an injectable write interceptor: every Write
	// consults it after validation, and a non-nil error fails the write
	// without publishing anything. nil removes the hook.
	SetWriteHook(h func(Level, Pair) error)
	// Levels returns the configured number of levels.
	Levels() int
	// Capacity returns the configured per-level capacity.
	Capacity() int
}

// levelSlot is one atomically-published level of pairs.
type levelSlot struct {
	snap atomic.Pointer[[]Pair]
}

func (s *levelSlot) load() []Pair {
	if p := s.snap.Load(); p != nil {
		return *p
	}
	return nil
}

// Behavioral is the linear software reference model of the information
// base: first-match-in-insertion-order lookups found by scanning, the
// exact cost shape of the paper's 3n+5 search. The zero value is not
// usable; call New.
type Behavioral struct {
	levels    []levelSlot
	capacity  int
	writeHook func(Level, Pair) error
}

var _ Store = (*Behavioral)(nil)

func newBehavioral(cfg storeConfig) *Behavioral {
	return &Behavioral{levels: make([]levelSlot, cfg.levels), capacity: cfg.capacity}
}

// SetWriteHook implements Store. The hook must be installed before the
// store is shared with concurrent readers.
func (b *Behavioral) SetWriteHook(h func(Level, Pair) error) { b.writeHook = h }

// Levels implements Store.
func (b *Behavioral) Levels() int { return len(b.levels) }

// Capacity implements Store.
func (b *Behavioral) Capacity() int { return b.capacity }

func (b *Behavioral) validLevel(lv Level) bool {
	return lv >= Level1 && int(lv) <= len(b.levels)
}

// Write implements Base. The pair becomes visible with one atomic level
// publish: a failed validation or write hook leaves the level untouched,
// and a concurrent Lookup never sees a partially-written triple.
func (b *Behavioral) Write(lv Level, p Pair) error {
	if !b.validLevel(lv) {
		return fmt.Errorf("%w: %d", ErrInvalidLevel, lv)
	}
	if err := validateFields(lv, p); err != nil {
		return err
	}
	if b.writeHook != nil {
		if err := b.writeHook(lv, p); err != nil {
			return err
		}
	}
	slot := &b.levels[lv-1]
	cur := slot.load()
	if len(cur) >= b.capacity {
		return fmt.Errorf("%w: level %d already holds %d pairs", ErrLevelFull, lv, b.capacity)
	}
	next := make([]Pair, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = p
	slot.snap.Store(&next)
	return nil
}

// Lookup implements Base: first match in insertion order wins, matching
// the hardware's incrementing read index.
func (b *Behavioral) Lookup(lv Level, key Key) (label.Label, label.Op, bool) {
	if !b.validLevel(lv) {
		return 0, label.OpNone, false
	}
	for _, p := range b.levels[lv-1].load() {
		if p.Index == key {
			return p.NewLabel, p.Op, true
		}
	}
	return 0, label.OpNone, false
}

// Count implements Base.
func (b *Behavioral) Count(lv Level) int {
	if !b.validLevel(lv) {
		return 0
	}
	return len(b.levels[lv-1].load())
}

// Clear implements Base.
func (b *Behavioral) Clear() {
	for i := range b.levels {
		var empty []Pair
		b.levels[i].snap.Store(&empty)
	}
}

// Remove implements Store: it deletes the first pair whose index equals
// key, publishing the shortened level atomically. The hardware interface
// only writes; removal is a software (routing functionality) operation
// performed when an LSP is torn down.
func (b *Behavioral) Remove(lv Level, key Key) bool {
	if !b.validLevel(lv) {
		return false
	}
	slot := &b.levels[lv-1]
	cur := slot.load()
	for i, p := range cur {
		if p.Index == key {
			next := make([]Pair, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			slot.snap.Store(&next)
			return true
		}
	}
	return false
}

// Entries implements Store.
func (b *Behavioral) Entries(lv Level) []Pair {
	if !b.validLevel(lv) {
		return nil
	}
	cur := b.levels[lv-1].load()
	out := make([]Pair, len(cur))
	copy(out, cur)
	return out
}
