// Package guard is the per-link ingress admission layer: the first
// code that judges a datagram after the socket and before the decoder
// and dataplane get to spend cycles on it. The paper assumes a
// cooperative wire; a production MPLS edge does not get one. Following
// the mitigations catalogued in "Security Implications and Mitigation
// Strategies in MPLS Networks" (PAPERS.md), the guard enforces four
// independent checks per inbound link:
//
//   - Label-spoof filtering: a labelled packet is admitted only if its
//     top label was actually advertised to that neighbour by the local
//     signaling speaker. Everything else is either spoofed or stale.
//   - TTL security (GTSM, RFC 5082 style): packets arriving with a TTL
//     below the link's configured minimum are rejected at the edge,
//     defeating multi-hop injection of "one hop" traffic.
//   - Token-bucket rate limiting with CoS-aware shedding: under
//     overload the bucket sheds best-effort first — a class-c packet is
//     admitted only while the bucket still holds that class's reserve —
//     and control-plane traffic is never charged at all, so a data
//     flood cannot starve hellos and keepalives.
//   - Malformed-frame quarantine: repeated wire-decode failures from
//     one peer trip a per-peer circuit breaker. While the breaker is
//     open the peer's labelled traffic is discarded before full decode
//     (PreAdmit) instead of burning CPU on garbage; unlabelled control
//     traffic still passes so a session can survive its peer's bad NIC.
//
// Admission ordering is: PreAdmit (pre-decode, quarantine only) →
// decode → Admit (control classification, quarantine, TTL, spoof,
// bucket) → dataplane. Every rejection lands in its own
// telemetry.Reason so the Prometheus export says why the wire is
// hostile, not just that it is.
//
// The guard depends only on packet, label and telemetry, so transport,
// router and signaling can all reach it without cycles. All methods
// are safe for concurrent use: PreAdmit and Malformed run on socket
// goroutines while Admit, Advertise and Withdraw run under the node's
// network lock.
package guard

import (
	"fmt"
	"sync"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// wallClock is the default time source: monotonic seconds since the
// guard was built. Distributed nodes run in wall-clock time, so rate
// and quarantine windows are real seconds there; simulated tests
// inject the sim clock with WithClock.
func wallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Policy is the per-link admission policy. The zero value disables
// every check (admit all), so links only pay for what the scenario
// configures.
type Policy struct {
	// SpoofFilter admits labelled packets only when the top label is in
	// the link's advertised set (fed by Advertise/Withdraw).
	SpoofFilter bool
	// MinTTL rejects packets whose TTL — the top stack entry's for
	// labelled packets, the IP header's otherwise — is below this
	// value. 0 disables the check.
	MinTTL uint8
	// RatePPS is the token-bucket refill rate in packets per second.
	// <= 0 disables rate limiting.
	RatePPS float64
	// Burst is the bucket capacity in packets. <= 0 defaults to
	// max(16, RatePPS/10).
	Burst int
	// QuarantineThreshold trips the per-peer circuit breaker after this
	// many malformed datagrams inside QuarantineWindow. <= 0 disables
	// quarantine.
	QuarantineThreshold int
	// QuarantineWindow is the burst-counting window in seconds
	// (default 1).
	QuarantineWindow float64
	// QuarantineHold is how long a tripped breaker stays open in
	// seconds (default 5).
	QuarantineHold float64
}

func (p Policy) withDefaults() Policy {
	if p.RatePPS > 0 && p.Burst <= 0 {
		p.Burst = int(p.RatePPS / 10)
		if p.Burst < 16 {
			p.Burst = 16
		}
	}
	if p.QuarantineThreshold > 0 {
		if p.QuarantineWindow <= 0 {
			p.QuarantineWindow = 1
		}
		if p.QuarantineHold <= 0 {
			p.QuarantineHold = 5
		}
	}
	return p
}

// active reports whether the policy enables any check at all.
func (p Policy) active() bool {
	return p.SpoofFilter || p.MinTTL > 0 || p.RatePPS > 0 || p.QuarantineThreshold > 0
}

// linkState is the mutable per-peer half of the guard.
type linkState struct {
	pol        Policy
	advertised map[label.Label]struct{}

	// Token bucket.
	tokens     float64
	lastRefill float64

	// Quarantine breaker.
	malformed   int     // decode failures inside the current window
	windowStart float64 // when the current window opened
	openUntil   float64 // breaker open until this time
	tripped     bool
}

type config struct {
	def     Policy
	links   map[string]Policy
	now     func() float64
	forward func(telemetry.Reason)
	events  *telemetry.EventCounters
	control map[uint16]struct{}
}

// Option configures a Guard.
type Option func(*config)

// WithDefaultPolicy sets the policy applied to peers that have no
// per-link override.
func WithDefaultPolicy(p Policy) Option { return func(c *config) { c.def = p } }

// WithLinkPolicy overrides the policy for one inbound peer.
func WithLinkPolicy(peer string, p Policy) Option {
	return func(c *config) { c.links[peer] = p }
}

// WithClock sets the time source (seconds, monotonic). The default
// counts real seconds from construction; tests inject a manual clock.
func WithClock(now func() float64) Option { return func(c *config) { c.now = now } }

// WithDropFunc forwards every guard drop to fn (typically the node's
// shared telemetry sink) in addition to the guard's own counters.
func WithDropFunc(fn func(telemetry.Reason)) Option {
	return func(c *config) { c.forward = fn }
}

// WithEvents records quarantine trips and clears in ev.
func WithEvents(ev *telemetry.EventCounters) Option {
	return func(c *config) { c.events = ev }
}

// WithControlFlows names the FlowIDs of control-plane protocols.
// Unlabelled packets carrying one of these IDs bypass quarantine and
// the token bucket: the guard's contract is that it never sheds the
// traffic that keeps sessions alive.
func WithControlFlows(ids ...uint16) Option {
	return func(c *config) {
		for _, id := range ids {
			c.control[id] = struct{}{}
		}
	}
}

// Guard is one node's ingress admission state across all its inbound
// links. The zero value is not usable; call New.
type Guard struct {
	mu    sync.Mutex
	cfg   config
	links map[string]*linkState
	drops telemetry.DropCounters
}

// New builds a guard from options.
func New(opts ...Option) *Guard {
	cfg := config{
		links:   map[string]Policy{},
		control: map[uint16]struct{}{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.now == nil {
		cfg.now = wallClock()
	}
	g := &Guard{cfg: cfg, links: map[string]*linkState{}}
	for peer, pol := range cfg.links {
		g.links[peer] = newLinkState(pol, cfg.now())
	}
	return g
}

func newLinkState(pol Policy, now float64) *linkState {
	pol = pol.withDefaults()
	return &linkState{
		pol:        pol,
		advertised: map[label.Label]struct{}{},
		tokens:     float64(pol.Burst),
		lastRefill: now,
	}
}

// state returns (creating if needed) the per-peer state, or nil when
// neither a link override nor the default policy has anything to do
// for this peer.
func (g *Guard) state(peer string) *linkState {
	if st, ok := g.links[peer]; ok {
		return st
	}
	if !g.cfg.def.active() {
		return nil
	}
	st := newLinkState(g.cfg.def, g.cfg.now())
	g.links[peer] = st
	return st
}

// Advertise records that the local speaker advertised label l to peer:
// from now on the spoof filter admits it on that link. Idempotent.
func (g *Guard) Advertise(peer string, l label.Label) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state(peer); st != nil {
		st.advertised[l] = struct{}{}
	}
}

// Withdraw removes a previously advertised label from peer's admitted
// set. Idempotent.
func (g *Guard) Withdraw(peer string, l label.Label) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state(peer); st != nil {
		delete(st.advertised, l)
	}
}

// PreAdmit is the pre-decode fast path, called by the transport
// receiver with only the peeked header bits. It returns false — and
// accounts a quarantine drop — iff the peer's circuit breaker is open
// and the datagram claims to carry labelled traffic. Unlabelled
// datagrams always proceed to decode so that control-plane messages
// survive a quarantine (the breaker exists to stop burning CPU on a
// garbage flood, not to kill the session that will tell us the peer
// recovered).
func (g *Guard) PreAdmit(peer string, labelled bool) bool {
	if !labelled {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state(peer)
	if st == nil || !g.quarantined(st) {
		return true
	}
	g.drop(telemetry.ReasonQuarantine)
	return false
}

// Malformed reports a wire-decode failure attributed to peer and trips
// the breaker when the configured burst threshold is crossed inside
// the window. Unattributable failures (empty peer) are ignored — there
// is no one to quarantine.
func (g *Guard) Malformed(peer string) {
	if peer == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state(peer)
	if st == nil || st.pol.QuarantineThreshold <= 0 {
		return
	}
	now := g.cfg.now()
	if now-st.windowStart > st.pol.QuarantineWindow {
		st.windowStart = now
		st.malformed = 0
	}
	st.malformed++
	if st.malformed >= st.pol.QuarantineThreshold && now >= st.openUntil {
		st.openUntil = now + st.pol.QuarantineHold
		st.tripped = true
		st.malformed = 0
		st.windowStart = now
		if g.cfg.events != nil {
			g.cfg.events.Inc(telemetry.EventQuarantineTrip)
		}
	}
}

// quarantined reports whether st's breaker is open, emitting the clear
// event on the first query after the hold expires. Callers hold g.mu.
func (g *Guard) quarantined(st *linkState) bool {
	now := g.cfg.now()
	if now < st.openUntil {
		return true
	}
	if st.tripped {
		st.tripped = false
		if g.cfg.events != nil {
			g.cfg.events.Inc(telemetry.EventQuarantineClear)
		}
	}
	return false
}

// Admit is the post-decode admission decision for one packet arriving
// from peer. False means the packet must be discarded; the guard has
// already accounted the drop. Check order: control classification,
// quarantine, TTL security, spoof filter, token bucket.
func (g *Guard) Admit(p *packet.Packet, peer string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state(peer)
	if st == nil {
		return true
	}
	_, control := g.cfg.control[p.Header.FlowID]
	control = control && !p.Labelled()

	if !control && g.quarantined(st) {
		g.drop(telemetry.ReasonQuarantine)
		return false
	}

	var top label.Entry
	labelled := p.Labelled()
	if labelled {
		top, _ = p.Stack.Top()
	}

	if st.pol.MinTTL > 0 && !control {
		ttl := p.Header.TTL
		if labelled {
			ttl = top.TTL
		}
		if ttl < st.pol.MinTTL {
			g.drop(telemetry.ReasonTTLSecurity)
			return false
		}
	}

	if st.pol.SpoofFilter && labelled {
		if _, ok := st.advertised[top.Label]; !ok {
			g.drop(telemetry.ReasonLabelSpoof)
			return false
		}
	}

	if st.pol.RatePPS > 0 && !control {
		cos := label.CoS(0) // unlabelled data is best-effort
		if labelled {
			cos = top.CoS
		}
		if !st.take(g.cfg.now(), cos) {
			g.drop(telemetry.ReasonRateLimit)
			return false
		}
	}
	return true
}

// take refills the bucket and spends one token if the class's reserve
// allows it. A class-c packet is admitted only while the bucket holds
// at least reserve(c) tokens, where reserve rises linearly as the
// class falls: the top class (7) needs a single token, best effort
// (0) needs a half-full bucket. Under sustained overload the bucket
// level settles at the admission frontier, so low classes shed first
// and high classes keep flowing at the configured rate.
func (st *linkState) take(now float64, cos label.CoS) bool {
	burst := float64(st.pol.Burst)
	st.tokens += (now - st.lastRefill) * st.pol.RatePPS
	if st.tokens > burst {
		st.tokens = burst
	}
	st.lastRefill = now
	reserve := 1 + (burst/2-1)*float64(label.MaxCoS-cos)/float64(label.MaxCoS)
	if st.tokens < reserve {
		return false
	}
	st.tokens--
	return true
}

// drop accounts one rejection. Callers hold g.mu.
func (g *Guard) drop(r telemetry.Reason) {
	g.drops.Inc(r)
	if g.cfg.forward != nil {
		g.cfg.forward(r)
	}
}

// Drops exposes the guard's own drop counters (also forwarded to the
// WithDropFunc sink, if any).
func (g *Guard) Drops() *telemetry.DropCounters { return &g.drops }

// Quarantined reports whether peer's circuit breaker is currently open.
func (g *Guard) Quarantined(peer string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.links[peer]
	return ok && g.quarantined(st)
}

// Advertised reports whether label l is currently admitted from peer
// by the spoof filter.
func (g *Guard) Advertised(peer string, l label.Label) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.links[peer]
	if !ok {
		return false
	}
	_, ok = st.advertised[l]
	return ok
}

// SetDefaultPolicy replaces the default admission policy at runtime —
// the guard.set RPC path. Peers without a per-link override retune to
// the new policy in place: their advertised label sets and any open
// quarantine hold survive, only the knobs change.
func (g *Guard) SetDefaultPolicy(p Policy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cfg.def = p
	for peer, st := range g.links {
		if _, override := g.cfg.links[peer]; override {
			continue
		}
		st.retune(p, g.cfg.now())
	}
}

// SetLinkPolicy sets (or replaces) the per-link override for one
// inbound peer at runtime, retuning existing state in place.
func (g *Guard) SetLinkPolicy(peer string, p Policy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cfg.links[peer] = p
	if st, ok := g.links[peer]; ok {
		st.retune(p, g.cfg.now())
	} else {
		g.links[peer] = newLinkState(p, g.cfg.now())
	}
}

// DefaultPolicy returns the current default admission policy (as
// configured, before per-link defaults are applied).
func (g *Guard) DefaultPolicy() Policy {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg.def
}

// retune swaps a live link's policy without discarding learned state:
// the advertised set and quarantine bookkeeping carry over. The token
// bucket refills from scratch when rate limiting turns on, and is
// capped to the new burst when it shrinks. Callers hold g.mu.
func (st *linkState) retune(p Policy, now float64) {
	prev := st.pol
	st.pol = p.withDefaults()
	switch {
	case prev.RatePPS <= 0 && st.pol.RatePPS > 0:
		st.tokens, st.lastRefill = float64(st.pol.Burst), now
	case st.tokens > float64(st.pol.Burst):
		st.tokens = float64(st.pol.Burst)
	}
}

// RegisterMetrics exposes the guard's drop counters on reg as
// mpls_guard_drops_total{node=...,reason=...}.
func (g *Guard) RegisterMetrics(reg *telemetry.Registry, node string) {
	reg.Drops("mpls_guard_drops_total", "Packets rejected by the ingress admission guard, by reason.",
		telemetry.Labels{"node": node}, &g.drops)
}

// String summarises the guard for operator output.
func (g *Guard) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	open := 0
	for _, st := range g.links {
		if g.cfg.now() < st.openUntil {
			open++
		}
	}
	return fmt.Sprintf("guard{links=%d quarantined=%d %v}", len(g.links), open, &g.drops)
}
