package resilience

import (
	"testing"

	"embeddedmpls/internal/netsim"
)

func TestHealthTrackerFiresPerEpisode(t *testing.T) {
	sim := netsim.New()
	var drops uint64
	var fired []float64
	TrackHealth(sim, HealthConfig{Interval: 0.05, Threshold: 5, Bad: 2, Until: 1.0},
		func() uint64 { return drops },
		func(delta uint64) { fired = append(fired, sim.Now()) })

	// Episode 1: 10 drops per interval during [0.10, 0.30).
	for i := 0; i < 4; i++ {
		at := 0.10 + float64(i)*0.05
		sim.Schedule(at, func() { drops += 10 })
	}
	// Episode 2: another burst during [0.60, 0.75).
	for i := 0; i < 3; i++ {
		at := 0.60 + float64(i)*0.05
		sim.Schedule(at, func() { drops += 10 })
	}
	sim.Run()

	if len(fired) != 2 {
		t.Fatalf("fired %d times at %v, want 2 (once per episode)", len(fired), fired)
	}
	if fired[0] > 0.35 || fired[1] < 0.60 {
		t.Errorf("episodes fired at %v", fired)
	}
}

func TestHealthTrackerIgnoresSubThresholdLoss(t *testing.T) {
	sim := netsim.New()
	var drops uint64
	fired := 0
	TrackHealth(sim, HealthConfig{Interval: 0.05, Threshold: 5, Bad: 2, Until: 0.5},
		func() uint64 { return drops },
		func(uint64) { fired++ })
	// A single drop per interval stays below the threshold.
	for i := 0; i < 9; i++ {
		at := 0.01 + float64(i)*0.05
		sim.Schedule(at, func() { drops++ })
	}
	sim.Run()
	if fired != 0 {
		t.Errorf("fired %d times on sub-threshold loss", fired)
	}
}

func TestHealthTrackerNeedsConsecutiveBadIntervals(t *testing.T) {
	sim := netsim.New()
	var drops uint64
	fired := 0
	TrackHealth(sim, HealthConfig{Interval: 0.05, Threshold: 5, Bad: 2, Until: 0.5},
		func() uint64 { return drops },
		func(uint64) { fired++ })
	// Alternating bad/good intervals never reach Bad=2 in a row.
	sim.Schedule(0.01, func() { drops += 10 })
	sim.Schedule(0.11, func() { drops += 10 })
	sim.Schedule(0.21, func() { drops += 10 })
	sim.Run()
	if fired != 0 {
		t.Errorf("fired %d times without consecutive bad intervals", fired)
	}
}

func TestHealthTrackerStop(t *testing.T) {
	sim := netsim.New()
	var drops uint64
	fired := 0
	tr := TrackHealth(sim, HealthConfig{Interval: 0.05, Threshold: 1, Bad: 1},
		func() uint64 { return drops },
		func(uint64) { fired++ })
	sim.Schedule(0.01, func() { tr.Stop() })
	sim.Schedule(0.02, func() { drops += 100 })
	sim.Run()
	if fired != 0 {
		t.Errorf("fired %d times after Stop", fired)
	}
}
