package signaling

// State is the session FSM state for one neighbour adjacency.
type State uint8

// Session states. Down: no adjacency — hellos are being sent, nothing
// else is believed. Adjacent: a hello was heard and an Init offered;
// waiting for the peer's Init (or its keepalive) to confirm.
// Operational: both sides initialised; label messages flow and
// keepalives police liveness.
const (
	StateDown State = iota
	StateAdjacent
	StateOperational
)

func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateAdjacent:
		return "adjacent"
	case StateOperational:
		return "operational"
	}
	return "state(?)"
}

// Timers parameterises the session FSM. All values are in seconds on
// the injected clock.
type Timers struct {
	// Hello is the discovery/retry cadence while not operational, and
	// the tick resolution of the session overall. <=0: 0.02.
	Hello float64
	// Keepalive is the pacing of keepalives once operational.
	// <=0: 2×Hello.
	Keepalive float64
	// Hold is the dead timer: silence longer than this tears the
	// session down. <=0: 3×Keepalive.
	Hold float64
}

func (t Timers) withDefaults() Timers {
	if t.Hello <= 0 {
		t.Hello = 0.02
	}
	if t.Keepalive <= 0 {
		t.Keepalive = 2 * t.Hello
	}
	if t.Hold <= 0 {
		t.Hold = 3 * t.Keepalive
	}
	return t
}

// Session runs the adjacency FSM toward one neighbour. It owns no I/O:
// the speaker injects received session messages via Handle, drives
// time via Tick, and supplies the send function. That makes every
// transition — including the pathological ones — drivable from a table
// test with no network underneath.
type Session struct {
	// Peer is the neighbour's node name.
	Peer string

	state        State
	timers       Timers
	lastHeard    float64 // time of the last message from the peer
	lastSent     float64 // time of the last keepalive/hello sent
	severedUntil float64 // administrative sever: ignore peer until then
	everUp       bool    // reached Operational at least once
	helloMuted   bool    // periodic hellos suppressed (restart backoff owns pacing)
	kaStretch    float64 // keepalive interval multiplier (adaptive, >= 1)

	send   func(t MsgType)
	onUp   func()
	onDown func()
}

// NewSession builds a session toward peer. send transmits a session
// message to the peer (best effort — the link may be down). onUp/onDown
// fire on transitions into and out of Operational; either may be nil.
func NewSession(peer string, timers Timers, send func(t MsgType), onUp, onDown func()) *Session {
	return &Session{
		Peer:      peer,
		timers:    timers.withDefaults(),
		kaStretch: 1,
		send:      send,
		onUp:      onUp,
		onDown:    onDown,
	}
}

// State returns the current FSM state.
func (s *Session) State() State { return s.state }

// Up reports whether the session is operational.
func (s *Session) Up() bool { return s.state == StateOperational }

// Dead reports whether a session that was once operational is down —
// the distinction between "still forming" (keep queueing label
// messages) and "lost the peer" (answer requests with errors so the
// ingress can route around the hole).
func (s *Session) Dead() bool { return s.everUp && s.state != StateOperational }

// SuppressHellos mutes (or restores) the periodic hello while the
// session is not operational. The restart policy suppresses the tight
// per-tick hello loop and paces rediscovery itself via Poke; the
// session stays fully responsive to the peer's messages either way,
// so a muted side still comes up passively.
func (s *Session) SuppressHellos(v bool) { s.helloMuted = v }

// Poke sends one discovery hello now, regardless of hello muting —
// the restart policy's paced redial probe. A no-op while operational
// or severed.
func (s *Session) Poke(now float64) {
	if s.state != StateOperational && !s.severed(now) {
		s.send(MsgHello)
	}
}

// SetKeepaliveStretch scales the operational keepalive interval by f —
// the adaptive-keepalive knob: under control-plane load keepalives are
// paced down to shed cost. Clamped to [1, Hold/(2×Keepalive)] so the
// stretched interval never exceeds half the peer's dead timer (one
// lost keepalive of margin).
func (s *Session) SetKeepaliveStretch(f float64) {
	max := s.timers.Hold / (2 * s.timers.Keepalive)
	if max < 1 {
		max = 1
	}
	if f < 1 {
		f = 1
	}
	if f > max {
		f = max
	}
	s.kaStretch = f
}

// KeepaliveStretch returns the current adaptive stretch factor.
func (s *Session) KeepaliveStretch() float64 { return s.kaStretch }

// Timers returns the effective (defaulted) timer set.
func (s *Session) Timers() Timers { return s.timers }

// Touch records peer liveness at now without a message — used when a
// label message arrives, since any traffic from the peer proves the
// session alive.
func (s *Session) Touch(now float64) {
	if !s.severed(now) {
		s.lastHeard = now
	}
}

// severed reports whether an administrative sever is in force at now.
// Strict inequality keeps the zero value (severedUntil 0 at time 0)
// unsevered.
func (s *Session) severed(now float64) bool {
	return s.severedUntil > 0 && now < s.severedUntil
}

// Handle processes one session message (hello/init/keepalive) from the
// peer at time now. Messages during an administrative sever are
// dropped, simulating a one-way control-channel failure.
func (s *Session) Handle(t MsgType, now float64) {
	if s.severed(now) {
		return
	}
	s.lastHeard = now
	switch s.state {
	case StateDown:
		switch t {
		case MsgHello:
			// Peer discovered us: answer with Init and wait for
			// confirmation that it heard us too.
			s.state = StateAdjacent
			s.send(MsgInit)
		case MsgInit:
			// The peer only sends Init in response to hearing us, so an
			// Init proves two-way connectivity: straight to operational.
			s.up(now)
		case MsgKeepalive:
			// A keepalive while we think the session is down means the
			// peer believes it is operational — likely we restarted.
			// Offer Init so the peer can re-handshake.
			s.send(MsgInit)
		}
	case StateAdjacent:
		switch t {
		case MsgInit, MsgKeepalive:
			// The peer has seen our Init (its Init crossing ours, or it
			// already moved to keepalives): session is up.
			s.up(now)
		case MsgHello:
			// Still discovering; re-offer.
			s.send(MsgInit)
		}
	case StateOperational:
		switch t {
		case MsgHello:
			// An operational peer never sends hellos — it restarted and
			// is rediscovering. Fall back and re-handshake so both
			// sides converge instead of deadlocking.
			s.down(now)
			s.state = StateAdjacent
			s.send(MsgInit)
		case MsgInit:
			// Peer re-initialising mid-session: confirm.
			s.send(MsgKeepalive)
			s.lastSent = now
		}
	}
}

// Tick advances timers at time now: expires the dead timer, sends
// hellos while not operational, paces keepalives while operational.
// The speaker calls it on the Hello cadence.
func (s *Session) Tick(now float64) {
	if s.state != StateDown && now-s.lastHeard > s.timers.Hold {
		s.down(now)
	}
	if s.severed(now) {
		return
	}
	switch s.state {
	case StateDown, StateAdjacent:
		if !s.helloMuted {
			s.send(MsgHello)
		}
	case StateOperational:
		if now-s.lastSent >= s.timers.Keepalive*s.kaStretch {
			s.send(MsgKeepalive)
			s.lastSent = now
		}
	}
}

// Down administratively tears the session to StateDown, firing onDown
// if it was operational.
func (s *Session) Down(now float64) { s.down(now) }

// Sever drops the session and suppresses all session traffic (both
// handling and sending) until now+d — the signaling-plane analogue of
// a link cut, used by fault injection.
func (s *Session) Sever(now, d float64) {
	s.severedUntil = now + d
	s.down(now)
}

// up transitions to Operational, confirming with a keepalive.
func (s *Session) up(now float64) {
	s.state = StateOperational
	s.everUp = true
	s.send(MsgKeepalive)
	s.lastSent = now
	if s.onUp != nil {
		s.onUp()
	}
}

func (s *Session) down(now float64) {
	wasUp := s.state == StateOperational
	s.state = StateDown
	s.lastHeard = now
	if wasUp && s.onDown != nil {
		s.onDown()
	}
}
