package mgmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
)

// maxLine bounds one request line; a batch of provision requests is
// many lines, not one big one, so 1 MiB is generous.
const maxLine = 1 << 20

// StatusMethod is the one method that still answers while the server
// drains — the final "I am going down cleanly" a fleet controller
// polls during rollout.
const StatusMethod = "node.status"

// Handler answers one RPC. It runs under the lock the server was built
// with (the node's network lock), so it may touch speaker, router and
// simulator state freely — and must not block waiting for network
// progress, which needs that same lock.
type Handler func(params json.RawMessage) (any, error)

// Server is the management listener: a TCP accept loop, a method
// registry, and drain-aware shutdown. One Server serves one node.
type Server struct {
	lock     sync.Locker
	handlers map[string]Handler

	ln       net.Listener
	draining atomic.Bool
	inflight sync.WaitGroup // accepted connections

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer builds a server whose handlers run under lock — pass the
// node's network lock (router.Network satisfies sync.Locker via
// Lock/Unlock). A nil lock runs handlers unserialised (tests only).
func NewServer(lock sync.Locker) *Server {
	if lock == nil {
		lock = noopLock{}
	}
	return &Server{
		lock:     lock,
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
	}
}

type noopLock struct{}

func (noopLock) Lock()   {}
func (noopLock) Unlock() {}

// Register adds a method to the registry. Registration happens before
// Serve; there is no locking against concurrent dispatch.
func (s *Server) Register(method string, h Handler) { s.handlers[method] = h }

// Methods lists the registered method names, sorted.
func (s *Server) Methods() []string {
	out := make([]string, 0, len(s.handlers))
	for m := range s.handlers {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Serve binds addr and starts the accept loop in the background. It
// returns once the listener is bound, so the caller can read Addr()
// (":0" resolves to a real port).
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return errors.New("mgmt: server already closed")
	}
	s.ln = ln
	s.connMu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.inflight.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
		s.inflight.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp := s.dispatch(line)
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch parses one request line and runs its handler under the
// server's lock. Every failure mode maps to an error envelope; the
// response always echoes the request id when one was parseable.
func (s *Server) dispatch(line []byte) Response {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return Response{V: Version, Error: Errorf(CodeParse, "bad request: %v", err)}
	}
	resp := Response{V: Version, ID: req.ID}
	if req.V != Version {
		resp.Error = Errorf(CodeVersion, "envelope version %d, this node speaks %d", req.V, Version)
		return resp
	}
	if s.draining.Load() && req.Method != StatusMethod {
		resp.Error = Errorf(CodeDraining, "node is draining")
		return resp
	}
	h, ok := s.handlers[req.Method]
	if !ok {
		resp.Error = Errorf(CodeUnknownMethod, "unknown method %q", req.Method)
		return resp
	}
	s.lock.Lock()
	result, err := h(req.Params)
	s.lock.Unlock()
	if err != nil {
		var rpcErr *Error
		if errors.As(err, &rpcErr) {
			resp.Error = rpcErr
		} else {
			resp.Error = Errorf(CodeInternal, "%v", err)
		}
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = Errorf(CodeInternal, "encoding result: %v", err)
		return resp
	}
	resp.Result = raw
	return resp
}

// Drain puts the server in drain mode: established connections keep
// being served, but every method except node.status answers
// CodeDraining. Called at the top of graceful shutdown, before the
// network starts tearing down, so a fleet controller watching the node
// sees "draining" instead of a reset connection.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops accepting, closes every live connection, and waits for
// their in-flight request loops to finish. Idempotent. Callers wanting
// graceful shutdown call Drain first, give clients a beat to read
// their final statuses, then Close.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.inflight.Wait()
	return nil
}
