package device

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

var dst = packet.AddrFrom(10, 0, 0, 1)

func lerWithFEC(t *testing.T) *Device {
	t.Helper()
	d := New(lsm.LER, lsm.DefaultClock)
	err := d.InstallFEC(dst, 32, swmpls.NHLFE{NextHop: "core", Op: label.OpPush, PushLabels: []label.Label{100}, CoS: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIngressPushCyclesAndResult(t *testing.T) {
	d := lerWithFEC(t)
	p := packet.New(1, dst, 64, nil)
	res, cycles := d.Process(p)
	if res.Action != swmpls.Forward || res.NextHop != "core" {
		t.Fatalf("result = %+v", res)
	}
	top, _ := p.Stack.Top()
	if top.Label != 100 || top.TTL != 63 || top.CoS != 4 {
		t.Errorf("pushed entry = %v", top)
	}
	// Empty stack to load (0 pushes) + update hitting at level-1
	// position 1 with a push tail.
	want := lsm.SearchCycles(1) + lsm.CyclesPushFromIB
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
	if d.TotalCycles != uint64(want) {
		t.Errorf("TotalCycles = %d", d.TotalCycles)
	}
	// ~300 ns at 50 MHz.
	if s := d.Seconds(cycles); s <= 0 || s > 1e-6 {
		t.Errorf("processing time = %v s", s)
	}
}

func TestTransitSwapUsesLoadedStack(t *testing.T) {
	d := New(lsm.LSR, lsm.DefaultClock)
	if err := d.InstallILM(100, swmpls.NHLFE{NextHop: "next", Op: label.OpSwap, PushLabels: []label.Label{200}}); err != nil {
		t.Fatal(err)
	}
	p := packet.New(1, dst, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, CoS: 2, TTL: 9})
	res, cycles := d.Process(p)
	if res.Action != swmpls.Forward || res.NextHop != "next" {
		t.Fatalf("result = %+v", res)
	}
	top, _ := p.Stack.Top()
	if top.Label != 200 || top.TTL != 8 || top.CoS != 2 {
		t.Errorf("top = %v", top)
	}
	// One user push to load the stack + the swap update at level-2
	// position 1.
	want := lsm.CyclesUserPush + lsm.SearchCycles(1) + lsm.CyclesSwapFromIB
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
}

func TestILMInstalledAtBothDepths(t *testing.T) {
	d := New(lsm.LSR, lsm.DefaultClock)
	if err := d.InstallILM(300, swmpls.NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{301}}); err != nil {
		t.Fatal(err)
	}
	// Depth 1: level-2 search.
	p := packet.New(1, dst, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 300, TTL: 10})
	if res, _ := d.Process(p); res.Action != swmpls.Forward {
		t.Fatalf("depth-1: %+v", res)
	}
	// Depth 2: level-3 search must find the same binding.
	q := packet.New(1, dst, 64, nil)
	_ = q.Stack.Push(label.Entry{Label: 50, TTL: 10})
	_ = q.Stack.Push(label.Entry{Label: 300, TTL: 10})
	res, _ := d.Process(q)
	if res.Action != swmpls.Forward {
		t.Fatalf("depth-2: %+v", res)
	}
	top, _ := q.Stack.Top()
	if top.Label != 301 || q.Stack.Depth() != 2 {
		t.Errorf("depth-2 swap result: %v", q.Stack)
	}
	sizes := d.TableSizes()
	if sizes[1] != 1 || sizes[2] != 1 {
		t.Errorf("table sizes = %v, want level2=1 level3=1", sizes)
	}
}

func TestEgressPopWritesTTLBack(t *testing.T) {
	d := New(lsm.LSR, lsm.DefaultClock)
	if err := d.InstallILM(100, swmpls.NHLFE{Op: label.OpPop}); err != nil {
		t.Fatal(err)
	}
	p := packet.New(1, dst, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, TTL: 7})
	res, _ := d.Process(p)
	if res.Action != swmpls.Deliver {
		t.Fatalf("result = %+v", res)
	}
	if p.Labelled() || p.Header.TTL != 6 {
		t.Errorf("after pop: %v", p)
	}
}

func TestDropPaths(t *testing.T) {
	t.Run("no route", func(t *testing.T) {
		d := New(lsm.LER, lsm.DefaultClock)
		p := packet.New(1, dst, 64, nil)
		if res, _ := d.Process(p); res.Drop != swmpls.DropNoRoute {
			t.Errorf("result = %+v", res)
		}
	})
	t.Run("unknown label", func(t *testing.T) {
		d := New(lsm.LSR, lsm.DefaultClock)
		p := packet.New(1, dst, 64, nil)
		_ = p.Stack.Push(label.Entry{Label: 999, TTL: 9})
		if res, _ := d.Process(p); res.Drop != swmpls.DropNoLabel {
			t.Errorf("result = %+v", res)
		}
	})
	t.Run("ttl expired", func(t *testing.T) {
		d := New(lsm.LSR, lsm.DefaultClock)
		_ = d.InstallILM(100, swmpls.NHLFE{NextHop: "n", Op: label.OpSwap, PushLabels: []label.Label{101}})
		p := packet.New(1, dst, 64, nil)
		_ = p.Stack.Push(label.Entry{Label: 100, TTL: 1})
		if res, _ := d.Process(p); res.Drop != swmpls.DropTTLExpired {
			t.Errorf("result = %+v", res)
		}
	})
	t.Run("unlabelled at LSR", func(t *testing.T) {
		d := New(lsm.LSR, lsm.DefaultClock)
		_ = d.InstallFEC(dst, 32, swmpls.NHLFE{NextHop: "n", Op: label.OpPush, PushLabels: []label.Label{100}})
		p := packet.New(1, dst, 64, nil)
		res, _ := d.Process(p)
		if res.Action != swmpls.Drop {
			t.Errorf("LSR forwarded an unlabelled packet: %+v", res)
		}
	})
}

func TestInstallRestrictions(t *testing.T) {
	d := New(lsm.LER, lsm.DefaultClock)
	if err := d.InstallFEC(dst, 24, swmpls.NHLFE{Op: label.OpPush, PushLabels: []label.Label{100}}); err == nil {
		t.Error("prefix FEC accepted by exact-match hardware")
	}
	if err := d.InstallFEC(dst, 32, swmpls.NHLFE{Op: label.OpPush, PushLabels: []label.Label{100, 200}}); err == nil {
		t.Error("multi-label ingress push accepted")
	}
	if err := d.InstallILM(100, swmpls.NHLFE{Op: label.OpNone}); err == nil {
		t.Error("no-op NHLFE accepted")
	}
	if err := d.InstallILM(label.RouterAlert, swmpls.NHLFE{Op: label.OpPop}); err == nil {
		t.Error("reserved incoming label accepted")
	}
	if err := d.InstallILM(100, swmpls.NHLFE{Op: label.OpSwap, PushLabels: []label.Label{1, 2}}); err == nil {
		t.Error("multi-label swap accepted")
	}
}

func TestRemoveBindings(t *testing.T) {
	d := lerWithFEC(t)
	_ = d.InstallILM(100, swmpls.NHLFE{NextHop: "n", Op: label.OpPop})
	d.RemoveFEC(dst, 32)
	d.RemoveFEC(dst, 24) // wrong prefix: no-op, must not panic
	p := packet.New(1, dst, 64, nil)
	if res, _ := d.Process(p); res.Drop != swmpls.DropNoRoute {
		t.Errorf("after RemoveFEC: %+v", res)
	}
	d.RemoveILM(100)
	q := packet.New(1, dst, 64, nil)
	_ = q.Stack.Push(label.Entry{Label: 100, TTL: 9})
	if res, _ := d.Process(q); res.Drop != swmpls.DropNoLabel {
		t.Errorf("after RemoveILM: %+v", res)
	}
	sizes := d.TableSizes()
	if sizes != [infobase.NumLevels]int{0, 0, 0} {
		t.Errorf("tables not empty: %v", sizes)
	}
}

// TestDeviceMatchesSoftwareForwarder runs identical single-label LSP
// configurations through the device and the software forwarder and
// demands the same packet transformations and decisions.
func TestDeviceMatchesSoftwareForwarder(t *testing.T) {
	hw := New(lsm.LER, lsm.DefaultClock)
	sw := swmpls.New()

	fec := swmpls.NHLFE{NextHop: "n1", Op: label.OpPush, PushLabels: []label.Label{100}}
	swapN := swmpls.NHLFE{NextHop: "n2", Op: label.OpSwap, PushLabels: []label.Label{200}}
	popN := swmpls.NHLFE{Op: label.OpPop}
	for _, err := range []error{
		hw.InstallFEC(dst, 32, fec), sw.MapFEC(dst, 32, fec),
		hw.InstallILM(100, swapN), sw.MapLabel(100, swapN),
		hw.InstallILM(200, popN), sw.MapLabel(200, popN),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}

	mk := func() *packet.Packet { return packet.New(1, dst, 64, []byte("x")) }
	ph, ps := mk(), mk()
	for hop := 0; hop < 3; hop++ {
		rh, _ := hw.Process(ph)
		rs := sw.Forward(ps)
		if rh.Action != rs.Action || rh.NextHop != rs.NextHop || rh.Drop != rs.Drop {
			t.Fatalf("hop %d: hw=%+v sw=%+v", hop, rh, rs)
		}
		if !ph.Stack.Equal(ps.Stack) || ph.Header.TTL != ps.Header.TTL {
			t.Fatalf("hop %d: packet divergence hw=%v sw=%v", hop, ph, ps)
		}
	}
	if ph.Labelled() || ph.Header.TTL != 61 {
		t.Errorf("final packet %v, want unlabelled ttl=61", ph)
	}
}

func TestSearchCostGrowsWithTablePosition(t *testing.T) {
	d := New(lsm.LSR, lsm.DefaultClock)
	for i := 0; i < 32; i++ {
		if err := d.InstallILM(label.Label(100+i), swmpls.NHLFE{NextHop: "n", Op: label.OpSwap, PushLabels: []label.Label{label.Label(500 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	cost := func(l label.Label) int {
		p := packet.New(1, dst, 64, nil)
		_ = p.Stack.Push(label.Entry{Label: l, TTL: 64})
		_, c := d.Process(p)
		return c
	}
	first, last := cost(100), cost(131)
	// Entry 1 vs entry 32: 3 cycles per position.
	if last-first != 3*31 {
		t.Errorf("cost(last)-cost(first) = %d, want %d", last-first, 3*31)
	}
}

func TestCAMDeviceConstantCost(t *testing.T) {
	lin := NewWithSearch(lsm.LSR, lsm.DefaultClock, lsm.SearchLinear)
	cam := NewWithSearch(lsm.LSR, lsm.DefaultClock, lsm.SearchCAM)
	for _, d := range []*Device{lin, cam} {
		for i := 0; i < 64; i++ {
			if err := d.InstallILM(label.Label(100+i), swmpls.NHLFE{NextHop: "n", Op: label.OpSwap, PushLabels: []label.Label{label.Label(500 + i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func(d *Device, l label.Label) int {
		p := packet.New(1, dst, 64, nil)
		_ = p.Stack.Push(label.Entry{Label: l, TTL: 64})
		res, c := d.Process(p)
		if res.Action != swmpls.Forward {
			t.Fatalf("swap failed: %+v", res)
		}
		return c
	}
	// Linear: last entry costs 3*63 more than the first. CAM: identical.
	if diff := run(lin, 163) - run(lin, 100); diff != 3*63 {
		t.Errorf("linear last-first = %d, want %d", diff, 3*63)
	}
	if diff := run(cam, 163) - run(cam, 100); diff != 0 {
		t.Errorf("CAM last-first = %d, want 0", diff)
	}
	// The CAM cost matches the RTL-pinned constant: load (3) + search
	// constant + swap tail.
	if got, want := run(cam, 163), lsm.CyclesUserPush+lsm.CyclesSearchCAM+lsm.CyclesSwapFromIB; got != want {
		t.Errorf("CAM swap = %d cycles, want %d", got, want)
	}
}

func TestClockAccessor(t *testing.T) {
	d := New(lsm.LER, lsm.DefaultClock)
	if d.Clock() != lsm.DefaultClock {
		t.Errorf("Clock() = %+v", d.Clock())
	}
}
