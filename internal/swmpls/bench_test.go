package swmpls

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

func BenchmarkILMSwap(b *testing.B) {
	for _, n := range []int{16, 1024, 65536} {
		b.Run(size(n), func(b *testing.B) {
			f := New()
			for i := 0; i < n; i++ {
				if err := f.MapLabel(label.Label(16+i), NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{label.Label(100 + i)}}); err != nil {
					b.Fatal(err)
				}
			}
			p := packet.New(1, 2, 64, nil)
			target := label.Label(16 + n - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Stack.Reset()
				_ = p.Stack.Push(label.Entry{Label: target, TTL: 64})
				if res := f.Forward(p); res.Action != Forward {
					b.Fatal("swap failed")
				}
			}
		})
	}
}

func BenchmarkFTNLongestPrefixMatch(b *testing.B) {
	for _, n := range []int{16, 1024, 65536} {
		b.Run(size(n), func(b *testing.B) {
			f := New()
			for i := 0; i < n; i++ {
				dst := packet.Addr(uint32(i) << 8)
				if err := f.MapFEC(dst, 24, NHLFE{NextHop: "x", Op: label.OpPush, PushLabels: []label.Label{16}}); err != nil {
					b.Fatal(err)
				}
			}
			p := packet.New(1, packet.Addr(uint32(n-1)<<8|7), 64, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Stack.Reset()
				p.Header.TTL = 64
				if res := f.Forward(p); res.Action != Forward {
					b.Fatal("lpm failed")
				}
			}
		})
	}
}

func size(n int) string {
	switch n {
	case 16:
		return "n=16"
	case 1024:
		return "n=1024"
	default:
		return "n=65536"
	}
}
