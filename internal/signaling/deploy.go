package signaling

import (
	"sort"

	"embeddedmpls/internal/router"
)

// Deploy builds and starts a speaker on every router of an in-process
// network, sharing its simulator clock and TE topology. The node name
// table is the sorted router-name list — the same NodeID assignment the
// transport layer derives from a scenario. Distributed deployments
// construct their single local speaker directly instead.
func Deploy(net *router.Network, opts ...Option) (map[string]*Speaker, error) {
	names := make([]string, 0, len(net.Routers))
	for name := range net.Routers {
		names = append(names, name)
	}
	sort.Strings(names)
	speakers := make(map[string]*Speaker, len(names))
	for _, name := range names {
		sp, err := New(net.Routers[name], net.Topo, net.Sim, names, name, opts...)
		if err != nil {
			return nil, err
		}
		speakers[name] = sp
	}
	for _, name := range names {
		speakers[name].Start()
	}
	return speakers, nil
}
