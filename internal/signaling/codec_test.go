package signaling

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/transport"
)

func sampleMessage() Message {
	m := Message{
		Type:      MsgLabelRequest,
		Src:       0x0102,
		PHP:       true,
		Code:      0,
		FEC:       ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		CoS:       5,
		Label:     77,
		Bandwidth: 1e6,
		Hold:      0.12,
		Avoid:     [2]transport.NodeID{3, 4},
		Route:     []transport.NodeID{0, 1, 2},
	}
	m.SetID("lsp-a#1")
	return m
}

// TestCodecGoldenBytes pins the wire format byte for byte: any layout
// change must be deliberate and break here first.
func TestCodecGoldenBytes(t *testing.T) {
	m := sampleMessage()
	got, err := AppendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x4C, 0x44, // magic "LD"
		1,                     // version
		byte(MsgLabelRequest), // type
		0x01, 0x02,            // src
		0x01,        // flags: PHP
		0x00,        // code
		10, 0, 0, 9, // fec dst
		32,          // prefix len
		5,           // cos
		0, 0, 0, 77, // label
		0x41, 0x2E, 0x84, 0x80, 0, 0, 0, 0, // bandwidth 1e6
		0x3F, 0xBE, 0xB8, 0x51, 0xEB, 0x85, 0x1E, 0xB8, // hold 0.12
		0, 3, // avoid[0]
		0, 4, // avoid[1]
		7, // id len
		3, // route len
		'l', 's', 'p', '-', 'a', '#', '1',
		0, 0, 0, 1, 0, 2,
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoding differs:\n got %#v\nwant %#v", got, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range []Message{
		sampleMessage(),
		{Type: MsgHello, Src: 9, Hold: 0.06},
		{Type: MsgKeepalive},
		{Type: MsgError, Code: ErrCodeNoBandwidth},
	} {
		buf, err := AppendMessage(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		var out Message
		if err := DecodeMessage(&out, buf); err != nil {
			t.Fatalf("decode %v: %v", m.Type, err)
		}
		if out.Type != m.Type || out.Src != m.Src || out.PHP != m.PHP ||
			out.Code != m.Code || out.FEC != m.FEC || out.CoS != m.CoS ||
			out.Label != m.Label || out.Avoid != m.Avoid ||
			out.IDString() != m.IDString() ||
			math.Float64bits(out.Bandwidth) != math.Float64bits(m.Bandwidth) ||
			math.Float64bits(out.Hold) != math.Float64bits(m.Hold) {
			t.Errorf("round trip mutated message:\n got %+v\nwant %+v", out, m)
		}
		if len(out.Route) != len(m.Route) {
			t.Fatalf("route length %d, want %d", len(out.Route), len(m.Route))
		}
		for i := range m.Route {
			if out.Route[i] != m.Route[i] {
				t.Errorf("route[%d] = %d, want %d", i, out.Route[i], m.Route[i])
			}
		}
	}
}

func TestCodecRejects(t *testing.T) {
	good := sampleMessage()
	buf, err := AppendMessage(nil, &good)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }},
		{"bad type", func(b []byte) []byte { b[3] = 0; return b }},
		{"truncated id", func(b []byte) []byte { return b[:headerSize+2] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
		{"id len overflow", func(b []byte) []byte { b[38] = MaxIDLen + 1; return b }},
	}
	for _, c := range cases {
		cp := append([]byte(nil), buf...)
		if err := DecodeMessage(&m, c.mut(cp)); err == nil {
			t.Errorf("%s: decode accepted", c.name)
		}
	}

	// Encode-side validation.
	bad := good
	bad.Route = make([]transport.NodeID, MaxRouteLen+1)
	if _, err := AppendMessage(nil, &bad); err == nil {
		t.Error("oversized route accepted")
	}
	bad = good
	bad.FEC.PrefixLen = 33
	if _, err := AppendMessage(nil, &bad); err == nil {
		t.Error("bad prefix length accepted")
	}
	bad = good
	bad.Type = msgTypeEnd
	if _, err := AppendMessage(nil, &bad); err == nil {
		t.Error("bad type accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgLabelMapping.String() != "label-mapping" || MsgHello.String() != "hello" {
		t.Errorf("type names wrong: %v %v", MsgLabelMapping, MsgHello)
	}
	if !strings.Contains(MsgType(99).String(), "99") {
		t.Errorf("out-of-range String() = %q", MsgType(99).String())
	}
	if MsgType(0).Valid() || msgTypeEnd.Valid() {
		t.Error("invalid types reported valid")
	}
}

func TestMessageID(t *testing.T) {
	var m Message
	m.SetID("short")
	if m.IDString() != "short" || m.IDLen != 5 {
		t.Errorf("SetID short: %q len %d", m.IDString(), m.IDLen)
	}
	long := strings.Repeat("x", MaxIDLen+10)
	m.SetID(long)
	if m.IDLen != MaxIDLen || m.IDString() != long[:MaxIDLen] {
		t.Errorf("SetID long: %q len %d", m.IDString(), m.IDLen)
	}
}

// TestCodecZeroAlloc pins the zero-allocation discipline: encoding into
// a reused buffer and decoding into a reused message must not allocate.
func TestCodecZeroAlloc(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, 0, 128)
	encoded, err := AppendMessage(buf, &m)
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	out.Route = make([]transport.NodeID, 0, MaxRouteLen)

	if n := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf, _ = AppendMessage(buf, &m)
	}); n != 0 {
		t.Errorf("encode allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeMessage(&out, encoded); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decode allocates %.1f/op, want 0", n)
	}
}

// FuzzSignalingDecode throws arbitrary bytes at the decoder and
// round-trips everything it accepts.
func FuzzSignalingDecode(f *testing.F) {
	seed := sampleMessage()
	buf, err := AppendMessage(nil, &seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0x4C, 0x44, 1, 1})
	hello, _ := AppendMessage(nil, &Message{Type: MsgHello, Src: 1, Hold: 0.06})
	f.Add(hello)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := DecodeMessage(&m, data); err != nil {
			return
		}
		re, err := AppendMessage(nil, &m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		var m2 Message
		if err := DecodeMessage(&m2, re); err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", data, re)
		}
	})
}
