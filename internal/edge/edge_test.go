package edge

import (
	"bytes"
	"testing"

	"embeddedmpls/internal/frame"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
)

var (
	srcHost = packet.AddrFrom(192, 168, 1, 10)
	dstHost = packet.AddrFrom(10, 0, 0, 10)
)

// mplsNet builds the paper's Figure 1 shape: an Ethernet segment on the
// ingress LER, an MPLS core, and an ATM segment on the egress LER.
func mplsNet(t *testing.T) (*router.Network, *Port, *Port) {
	t.Helper()
	n, err := router.Build(
		[]router.NodeSpec{
			{Name: "ler-in", Hardware: true, RouterType: lsm.LER},
			{Name: "lsr", Hardware: true, RouterType: lsm.LSR},
			{Name: "ler-out", Hardware: true, RouterType: lsm.LER},
		},
		[]router.LinkSpec{
			{A: "ler-in", B: "lsr", RateBPS: 10e6, Delay: 0.001},
			{A: "lsr", B: "ler-out", RateBPS: 10e6, Delay: 0.001},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "lsp",
		FEC:  ldp.FEC{Dst: dstHost, PrefixLen: 32},
		Path: []string{"ler-in", "lsr", "ler-out"},
	}); err != nil {
		t.Fatal(err)
	}

	eth := NewPort("eth0", n.Router("ler-in"),
		&frame.EthernetAdapter{Local: frame.MAC{1}, Remote: frame.MAC{2}})
	eth.AttachHost(srcHost)
	Attach(n.Router("ler-in"), eth)

	atm := NewPort("atm0", n.Router("ler-out"),
		&frame.ATMAdapter{Circuit: frame.VC{VPI: 1, VCI: 42}})
	atm.AttachHost(dstHost)
	Attach(n.Router("ler-out"), atm)

	return n, eth, atm
}

// TestEthernetToATMEndToEnd reproduces the paper's Figure 2 exchange: a
// layer-2 network generates a packet, the ingress LER labels it, the
// core switches it, the egress LER strips the label and hands it to a
// different layer-2 network — here Ethernet in, ATM out, with real
// framing both sides.
func TestEthernetToATMEndToEnd(t *testing.T) {
	n, eth, atm := mplsNet(t)

	var received [][]byte
	atm.OnTransmit = func(units [][]byte) {
		for _, u := range units {
			received = append(received, append([]byte(nil), u...))
		}
	}

	payload := []byte("voice sample 0123456789")
	pkt := packet.New(srcHost, dstHost, 64, payload)
	if err := eth.SendFromHost(pkt); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()

	if len(received) == 0 {
		t.Fatal("nothing arrived on the ATM segment")
	}
	// Reassemble the AAL5 train back into the packet.
	out, err := (&frame.ATMAdapter{Circuit: frame.VC{VPI: 1, VCI: 42}}).Decap(received)
	if err != nil {
		t.Fatal(err)
	}
	got, err := packet.Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload corrupted: %q", got.Payload)
	}
	if got.Labelled() {
		t.Error("labels leaked onto the layer-2 segment")
	}
	if got.Header.Src != srcHost || got.Header.Dst != dstHost {
		t.Errorf("header mangled: %+v", got.Header)
	}
	// 3 routers, one decrement each.
	if got.Header.TTL != 61 {
		t.Errorf("TTL = %d, want 61", got.Header.TTL)
	}

	if eth.RxPackets.Events != 1 || eth.RxFrames.Events != 1 {
		t.Errorf("ingress counters: %+v %+v", eth.RxPackets, eth.RxFrames)
	}
	if atm.TxPackets.Events != 1 || atm.TxFrames.Events < 1 {
		t.Errorf("egress counters: %+v %+v", atm.TxPackets, atm.TxFrames)
	}
	if eth.Medium() != frame.Ethernet || atm.Medium() != frame.ATM {
		t.Error("port media wrong")
	}
}

func TestFrameRelayPortRoundTrip(t *testing.T) {
	n, _, _ := mplsNet(t)
	fr := NewPort("fr0", n.Router("ler-in"),
		&frame.FrameRelayAdapter{DLCI: 77})
	local := packet.AddrFrom(192, 168, 9, 9)
	fr.AttachHost(local)
	Attach(n.Router("ler-in"), fr)

	var out [][]byte
	fr.OnTransmit = func(units [][]byte) { out = units }

	// A packet destined to the local Frame Relay host terminates at this
	// LER and leaves via the port.
	pkt := packet.New(dstHost, local, 64, []byte("frames"))
	n.Router("ler-in").Inject(pkt)
	n.Sim.Run()
	if len(out) != 1 {
		t.Fatalf("%d frames transmitted", len(out))
	}
	payload, err := (&frame.FrameRelayAdapter{DLCI: 77}).Decap(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := packet.Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "frames" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestFromWireRejectsCorruptFrames(t *testing.T) {
	n, eth, _ := mplsNet(t)
	_ = n
	good, err := (&frame.EthernetAdapter{Local: frame.MAC{2}, Remote: frame.MAC{1}}).Encap([]byte{0x45, 0, 0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	good[0][20] ^= 0xff // break the FCS
	if err := eth.FromWire(good); err == nil {
		t.Error("corrupt frame accepted")
	}
	if eth.Errors != 1 {
		t.Errorf("errors = %d", eth.Errors)
	}
	// A valid frame whose payload is not a packet must also error.
	junk, err := (&frame.EthernetAdapter{Local: frame.MAC{2}, Remote: frame.MAC{1}}).Encap([]byte{0x99, 1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eth.FromWire(junk); err == nil {
		t.Error("non-packet payload accepted")
	}
	if eth.Errors != 2 {
		t.Errorf("errors = %d", eth.Errors)
	}
}

func TestDeliveryToUnknownHostCounted(t *testing.T) {
	n, eth, _ := mplsNet(t)
	// Force delivery of a packet for a host on no segment: mark it local
	// so the router delivers, but attach it to no port.
	orphan := packet.AddrFrom(172, 16, 0, 1)
	n.Router("ler-in").AddLocal(orphan)
	n.Router("ler-in").Inject(packet.New(1, orphan, 64, nil))
	n.Sim.Run()
	if eth.Errors != 1 {
		t.Errorf("orphan delivery not counted: errors = %d", eth.Errors)
	}
}

func TestAttachRequiresPorts(t *testing.T) {
	n, _, _ := mplsNet(t)
	defer func() {
		if recover() == nil {
			t.Error("Attach with no ports should panic")
		}
	}()
	Attach(n.Router("ler-in"))
}

// TestMultiPortDispatch: one LER serving two layer-2 segments delivers
// each packet onto the segment that hosts its destination.
func TestMultiPortDispatch(t *testing.T) {
	n, _, _ := mplsNet(t)
	r := n.Router("ler-in")
	hostA := packet.AddrFrom(192, 168, 1, 1)
	hostB := packet.AddrFrom(192, 168, 2, 1)
	portA := NewPort("ethA", r, &frame.EthernetAdapter{Local: frame.MAC{1}, Remote: frame.MAC{2}})
	portA.AttachHost(hostA)
	portB := NewPort("frB", r, &frame.FrameRelayAdapter{DLCI: 42})
	portB.AttachHost(hostB)
	Attach(r, portA, portB)

	var gotA, gotB int
	portA.OnTransmit = func([][]byte) { gotA++ }
	portB.OnTransmit = func([][]byte) { gotB++ }

	r.Inject(packet.New(1, hostA, 64, nil))
	r.Inject(packet.New(1, hostB, 64, nil))
	r.Inject(packet.New(1, hostB, 64, nil))
	n.Sim.Run()
	if gotA != 1 || gotB != 2 {
		t.Errorf("dispatch: ethA=%d frB=%d, want 1 and 2", gotA, gotB)
	}
	if portA.TxPackets.Events != 1 || portB.TxPackets.Events != 2 {
		t.Errorf("tx counters: %d / %d", portA.TxPackets.Events, portB.TxPackets.Events)
	}
}

// TestDeliverWithoutTransmitSinkStillCounts: a port with no OnTransmit
// must account the packet and not panic.
func TestDeliverWithoutTransmitSinkStillCounts(t *testing.T) {
	n, _, _ := mplsNet(t)
	r := n.Router("ler-in")
	host := packet.AddrFrom(192, 168, 3, 1)
	port := NewPort("sinkless", r, &frame.FrameRelayAdapter{DLCI: 9})
	port.AttachHost(host)
	Attach(r, port)
	r.Inject(packet.New(1, host, 64, nil))
	n.Sim.Run()
	if port.TxPackets.Events != 1 || port.TxFrames.Events != 1 {
		t.Errorf("counters: %+v %+v", port.TxPackets, port.TxFrames)
	}
}

func TestPortNameAndBadHostPacket(t *testing.T) {
	n, eth, _ := mplsNet(t)
	_ = n
	if eth.Name() != "eth0" {
		t.Errorf("Name = %q", eth.Name())
	}
	// A host packet beyond the Ethernet MTU fails cleanly at encap.
	big := packet.New(srcHost, dstHost, 64, make([]byte, frame.EthMaxPayload+64))
	if err := eth.SendFromHost(big); err == nil {
		t.Error("oversized host packet accepted")
	}
}

func TestDeliverEncapFailureCounted(t *testing.T) {
	n, _, _ := mplsNet(t)
	r := n.Router("ler-in")
	host := packet.AddrFrom(192, 168, 77, 1)
	port := NewPort("mtu0", r, &frame.EthernetAdapter{Local: frame.MAC{5}, Remote: frame.MAC{6}})
	port.AttachHost(host)
	Attach(r, port)
	// Payload beyond the Ethernet MTU: encap fails, the error is counted.
	big := packet.New(1, host, 64, make([]byte, frame.EthMaxPayload+64))
	r.Inject(big)
	n.Sim.Run()
	if port.Errors != 1 {
		t.Errorf("oversized delivery not counted: errors=%d", port.Errors)
	}
}
