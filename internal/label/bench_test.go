package label

import "testing"

func BenchmarkEntryPack(b *testing.B) {
	e := Entry{Label: 504, CoS: 3, Bottom: true, TTL: 63}
	for i := 0; i < b.N; i++ {
		if _, err := e.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntryUnpack(b *testing.B) {
	w := Entry{Label: 504, CoS: 3, Bottom: true, TTL: 63}.MustPack()
	for i := 0; i < b.N; i++ {
		_ = Unpack(w)
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	s := &Stack{}
	e := Entry{Label: 100, TTL: 64}
	for i := 0; i < b.N; i++ {
		if err := s.Push(e); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Pop(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStackWireRoundTrip(b *testing.B) {
	s, err := NewStack(
		Entry{Label: 100, TTL: 64},
		Entry{Label: 200, TTL: 64},
		Entry{Label: 300, TTL: 64},
	)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, err = s.AppendWire(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}
