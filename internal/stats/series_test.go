package stats

import (
	"math"
	"testing"
)

func TestSeriesBinning(t *testing.T) {
	s := NewSeries(1.0)
	if s.BinWidth() != 1.0 {
		t.Fatalf("width = %v", s.BinWidth())
	}
	s.Observe(0.1, 10)
	s.Observe(0.9, 20)
	s.Observe(1.5, 30)
	s.Observe(3.2, 40)
	bins := s.Bins()
	if len(bins) != 4 {
		t.Fatalf("%d bins, want 4", len(bins))
	}
	if bins[0].Count != 2 || bins[0].Mean != 15 {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[1].Count != 1 || bins[1].Mean != 30 {
		t.Errorf("bin 1 = %+v", bins[1])
	}
	if bins[2].Count != 0 || bins[2].Mean != 0 {
		t.Errorf("empty bin 2 = %+v", bins[2])
	}
	if bins[3].Start != 3.0 {
		t.Errorf("bin 3 start = %v", bins[3].Start)
	}
}

func TestSeriesRates(t *testing.T) {
	s := NewSeries(0.5)
	// 1000 bytes in bin 0, 500 in bin 1.
	s.Count(0.1, 600)
	s.Count(0.2, 400)
	s.Count(0.7, 500)
	bins := s.Bins()
	if got := bins[0].BPS; got != 1000*8/0.5 {
		t.Errorf("bin 0 rate = %v", got)
	}
	if got := bins[1].BPS; got != 500*8/0.5 {
		t.Errorf("bin 1 rate = %v", got)
	}
}

func TestSeriesPathologicalTimes(t *testing.T) {
	s := NewSeries(1)
	s.Observe(-5, 1)
	s.Observe(math.NaN(), 2)
	s.Observe(math.Inf(1), 3)
	bins := s.Bins()
	if len(bins) != 1 || bins[0].Count != 3 {
		t.Errorf("pathological times landed in %+v", bins)
	}
}

func TestSeriesMinCountBin(t *testing.T) {
	s := NewSeries(1)
	if _, ok := s.MinCountBin(); ok {
		t.Error("min bin reported with no data")
	}
	// Bins 0..4; bin 2 is the outage.
	for _, tt := range []struct {
		t float64
		n int
	}{{0.5, 10}, {1.5, 10}, {2.5, 2}, {3.5, 10}, {4.5, 10}} {
		for i := 0; i < tt.n; i++ {
			s.Count(tt.t, 100)
		}
	}
	min, ok := s.MinCountBin()
	if !ok || min.Start != 2.0 || min.Count != 2 {
		t.Errorf("min bin = %+v ok=%v, want the outage bin at t=2", min, ok)
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bin width accepted")
		}
	}()
	NewSeries(0)
}
