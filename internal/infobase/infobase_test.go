package infobase

import (
	"errors"
	"math/rand"
	"testing"

	"embeddedmpls/internal/label"
)

func TestLevelValidity(t *testing.T) {
	for _, lv := range []Level{Level1, Level2, Level3} {
		if !lv.Valid() {
			t.Errorf("level %d should be valid", lv)
		}
	}
	for _, lv := range []Level{0, 4, -1} {
		if lv.Valid() {
			t.Errorf("level %d should be invalid", lv)
		}
	}
}

func TestLevelForDepth(t *testing.T) {
	cases := map[int]Level{-1: Level1, 0: Level1, 1: Level2, 2: Level3, 3: Level3}
	for depth, want := range cases {
		if got := LevelForDepth(depth); got != want {
			t.Errorf("LevelForDepth(%d) = %d, want %d", depth, got, want)
		}
	}
}

func TestValidatePair(t *testing.T) {
	ok := Pair{Index: 600, NewLabel: 500, Op: label.OpSwap}
	if err := ValidatePair(Level1, ok); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}
	// Level 1 accepts a full 32-bit index (a packet identifier).
	if err := ValidatePair(Level1, Pair{Index: 0xffffffff, NewLabel: 1, Op: label.OpPush}); err != nil {
		t.Errorf("level 1 must accept 32-bit indices: %v", err)
	}
	// Levels 2-3 must reject indices above 20 bits.
	if err := ValidatePair(Level2, Pair{Index: 1 << 20, NewLabel: 1, Op: label.OpSwap}); !errors.Is(err, ErrInvalidPair) {
		t.Errorf("level 2 accepted a 21-bit index: %v", err)
	}
	if err := ValidatePair(Level1, Pair{Index: 1, NewLabel: label.MaxLabel + 1, Op: label.OpSwap}); !errors.Is(err, ErrInvalidPair) {
		t.Errorf("oversized new label accepted: %v", err)
	}
	if err := ValidatePair(Level1, Pair{Index: 1, NewLabel: 1, Op: label.Op(4)}); !errors.Is(err, ErrInvalidPair) {
		t.Errorf("3-bit operation accepted: %v", err)
	}
	if err := ValidatePair(Level(9), ok); !errors.Is(err, ErrInvalidLevel) {
		t.Errorf("bad level accepted: %v", err)
	}
}

func TestBehavioralWriteLookup(t *testing.T) {
	b := New()
	// The scenario of paper Figure 14: ids 600-609 -> labels 500-509.
	for i := 0; i < 10; i++ {
		p := Pair{Index: Key(600 + i), NewLabel: label.Label(500 + i), Op: label.Op(1 + i%3)}
		if err := b.Write(Level1, p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if b.Count(Level1) != 10 {
		t.Fatalf("count = %d, want 10", b.Count(Level1))
	}
	lbl, op, found := b.Lookup(Level1, 604)
	if !found || lbl != 504 {
		t.Errorf("lookup 604 = (%d, %v, %v), want label 504", lbl, op, found)
	}
	if _, _, found := b.Lookup(Level1, 27); found {
		t.Error("lookup of absent key reported found")
	}
	if _, _, found := b.Lookup(Level2, 604); found {
		t.Error("lookup on the wrong level reported found")
	}
	if _, _, found := b.Lookup(Level(0), 604); found {
		t.Error("lookup on an invalid level reported found")
	}
}

func TestBehavioralFirstMatchWins(t *testing.T) {
	b := New()
	if err := b.Write(Level2, Pair{Index: 7, NewLabel: 100, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Level2, Pair{Index: 7, NewLabel: 200, Op: label.OpPop}); err != nil {
		t.Fatal(err)
	}
	lbl, op, found := b.Lookup(Level2, 7)
	if !found || lbl != 100 || op != label.OpSwap {
		t.Errorf("lookup = (%d, %v, %v); the first-written pair must win", lbl, op, found)
	}
}

func TestBehavioralLevelsIndependent(t *testing.T) {
	b := New()
	_ = b.Write(Level1, Pair{Index: 1, NewLabel: 11, Op: label.OpPush})
	_ = b.Write(Level2, Pair{Index: 1, NewLabel: 22, Op: label.OpSwap})
	_ = b.Write(Level3, Pair{Index: 1, NewLabel: 33, Op: label.OpPop})
	for lv, want := range map[Level]label.Label{Level1: 11, Level2: 22, Level3: 33} {
		lbl, _, found := b.Lookup(lv, 1)
		if !found || lbl != want {
			t.Errorf("level %d: lookup = (%d, %v), want %d", lv, lbl, found, want)
		}
		if b.Count(lv) != 1 {
			t.Errorf("level %d count = %d, want 1", lv, b.Count(lv))
		}
	}
}

func TestBehavioralCapacity(t *testing.T) {
	b := New()
	for i := 0; i < EntriesPerLevel; i++ {
		if err := b.Write(Level3, Pair{Index: Key(i), NewLabel: label.Label(i % 1000), Op: label.OpSwap}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	err := b.Write(Level3, Pair{Index: 9999, NewLabel: 1, Op: label.OpSwap})
	if !errors.Is(err, ErrLevelFull) {
		t.Errorf("write past capacity: err = %v, want ErrLevelFull", err)
	}
	// Other levels must be unaffected by a full level 3.
	if err := b.Write(Level2, Pair{Index: 1, NewLabel: 1, Op: label.OpSwap}); err != nil {
		t.Errorf("level 2 write failed while level 3 full: %v", err)
	}
}

func TestBehavioralWriteRejectsBadPair(t *testing.T) {
	b := New()
	if err := b.Write(Level2, Pair{Index: 1 << 21, NewLabel: 1, Op: label.OpSwap}); err == nil {
		t.Error("oversized index accepted by Write")
	}
	if b.Count(Level2) != 0 {
		t.Error("rejected write still stored a pair")
	}
}

func TestBehavioralRemove(t *testing.T) {
	b := New()
	_ = b.Write(Level2, Pair{Index: 5, NewLabel: 50, Op: label.OpSwap})
	_ = b.Write(Level2, Pair{Index: 6, NewLabel: 60, Op: label.OpSwap})
	_ = b.Write(Level2, Pair{Index: 5, NewLabel: 70, Op: label.OpPop})
	if !b.Remove(Level2, 5) {
		t.Fatal("remove of present key failed")
	}
	// First occurrence removed; the later duplicate must now be visible.
	lbl, op, found := b.Lookup(Level2, 5)
	if !found || lbl != 70 || op != label.OpPop {
		t.Errorf("after remove, lookup 5 = (%d, %v, %v), want (70, pop)", lbl, op, found)
	}
	if b.Remove(Level2, 999) {
		t.Error("remove of absent key reported success")
	}
	if b.Remove(Level(0), 5) {
		t.Error("remove on invalid level reported success")
	}
	if b.Count(Level2) != 2 {
		t.Errorf("count = %d, want 2", b.Count(Level2))
	}
}

func TestBehavioralClearAndEntries(t *testing.T) {
	b := New()
	_ = b.Write(Level1, Pair{Index: 1, NewLabel: 2, Op: label.OpPush})
	_ = b.Write(Level2, Pair{Index: 3, NewLabel: 4, Op: label.OpSwap})
	got := b.Entries(Level2)
	if len(got) != 1 || got[0].Index != 3 {
		t.Errorf("Entries = %v", got)
	}
	// The copy must be independent of the store.
	got[0].Index = 99
	if lbl, _, found := b.Lookup(Level2, 3); !found || lbl != 4 {
		t.Error("mutating the Entries copy changed the store")
	}
	if b.Entries(Level(7)) != nil {
		t.Error("Entries of invalid level should be nil")
	}
	b.Clear()
	for _, lv := range []Level{Level1, Level2, Level3} {
		if b.Count(lv) != 0 {
			t.Errorf("level %d not empty after Clear", lv)
		}
	}
}

// TestBehavioralAgainstMapModel drives the behavioral base with random
// traffic and checks every lookup against a simple first-write-wins map.
func TestBehavioralAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := New()
	type lvKey struct {
		lv  Level
		key Key
	}
	model := make(map[lvKey]Pair)
	for i := 0; i < 2000; i++ {
		lv := Level(1 + rng.Intn(NumLevels))
		maxKey := 1 << 20
		if lv == Level1 {
			maxKey = 1 << 24
		}
		key := Key(rng.Intn(maxKey))
		if rng.Intn(3) > 0 && b.Count(lv) < EntriesPerLevel {
			p := Pair{Index: key, NewLabel: label.Label(rng.Intn(1 << 20)), Op: label.Op(rng.Intn(4))}
			if err := b.Write(lv, p); err != nil {
				t.Fatalf("write: %v", err)
			}
			k := lvKey{lv, key}
			if _, dup := model[k]; !dup {
				model[k] = p
			}
		}
		lbl, op, found := b.Lookup(lv, key)
		want, wantFound := model[lvKey{lv, key}]
		if found != wantFound || (found && (lbl != want.NewLabel || op != want.Op)) {
			t.Fatalf("step %d: lookup(%d, %d) = (%d, %v, %v), model says (%d, %v, %v)",
				i, lv, key, lbl, op, found, want.NewLabel, want.Op, wantFound)
		}
	}
}
