package swmpls

import (
	"fmt"
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

var ilmKinds = []ILMKind{ILMMap, ILMLinear, ILMIndexed}

// TestILMBackendsForwardIdentically drives all three ILM backends
// through the same LSP and demands identical results and packet
// mutations at every hop — the backend changes lookup cost, never
// semantics.
func TestILMBackendsForwardIdentically(t *testing.T) {
	build := func(kind ILMKind) *Forwarder {
		f := New(WithILM(kind))
		mustMapFEC(t, f, packet.AddrFrom(10, 0, 0, 0), 8, NHLFE{NextHop: "in", Op: label.OpPush, PushLabels: []label.Label{100}, CoS: 3})
		mustMapLabel(t, f, 100, NHLFE{NextHop: "mid", Op: label.OpSwap, PushLabels: []label.Label{200}})
		mustMapLabel(t, f, 200, NHLFE{NextHop: "tun", Op: label.OpPush, PushLabels: []label.Label{300}})
		mustMapLabel(t, f, 300, NHLFE{NextHop: "pop", Op: label.OpPop})
		mustMapLabel(t, f, 201, NHLFE{Op: label.OpPop})
		return f
	}
	fwds := make(map[ILMKind]*Forwarder, len(ilmKinds))
	pkts := make(map[ILMKind]*packet.Packet, len(ilmKinds))
	for _, k := range ilmKinds {
		fwds[k] = build(k)
		pkts[k] = packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 1, 2, 3), 16, nil)
	}
	for hop := 0; hop < 8; hop++ {
		ref := fwds[ILMMap].Forward(pkts[ILMMap])
		for _, k := range ilmKinds[1:] {
			got := fwds[k].Forward(pkts[k])
			if got != ref {
				t.Fatalf("hop %d: %v result = %+v, map = %+v", hop, k, got, ref)
			}
			mp, ip := pkts[ILMMap], pkts[k]
			if mp.Header.TTL != ip.Header.TTL || mp.Stack.Depth() != ip.Stack.Depth() {
				t.Fatalf("hop %d: %v packet diverged: ttl %d/%d depth %d/%d",
					hop, k, mp.Header.TTL, ip.Header.TTL, mp.Stack.Depth(), ip.Stack.Depth())
			}
		}
		if ref.Action != Forward {
			break
		}
	}
}

// TestILMReplaceSemantics pins replace-on-insert for every backend: the
// information-base kinds must not let a first-match store shadow an
// updated binding.
func TestILMReplaceSemantics(t *testing.T) {
	for _, k := range ilmKinds {
		t.Run(k.String(), func(t *testing.T) {
			f := New(WithILM(k))
			mustMapLabel(t, f, 50, NHLFE{NextHop: "old", Op: label.OpSwap, PushLabels: []label.Label{60}})
			mustMapLabel(t, f, 50, NHLFE{NextHop: "new", Op: label.OpSwap, PushLabels: []label.Label{61}})
			if f.ILMSize() != 1 {
				t.Fatalf("ILMSize = %d after replace, want 1", f.ILMSize())
			}
			n, ok := f.LookupILM(50)
			if !ok || n.NextHop != "new" || n.PushLabels[0] != 61 {
				t.Fatalf("LookupILM(50) = %+v, %v", n, ok)
			}
			f.UnmapLabel(50)
			if _, ok := f.LookupILM(50); ok || f.ILMSize() != 0 {
				t.Fatal("binding survives UnmapLabel")
			}
		})
	}
}

// TestILMInfobaseCapacity pins that the information-base backends
// inherit the paper's 1024-entry level and surface ErrLevelFull, while
// the map backend keeps growing.
func TestILMInfobaseCapacity(t *testing.T) {
	for _, k := range []ILMKind{ILMLinear, ILMIndexed} {
		t.Run(k.String(), func(t *testing.T) {
			f := New(WithILM(k))
			n := NHLFE{Op: label.OpPop}
			for i := 0; i < infobase.EntriesPerLevel; i++ {
				if err := f.MapLabel(label.Label(16+i), n); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := f.MapLabel(label.Label(16+infobase.EntriesPerLevel), n); err == nil {
				t.Fatal("insert past level capacity succeeded")
			}
			// Replacing an existing binding must still work at capacity.
			if err := f.MapLabel(16, NHLFE{NextHop: "x", Op: label.OpPop}); err != nil {
				t.Fatalf("replace at capacity: %v", err)
			}
		})
	}
}

// TestCloneKeepsILMKind: RCU snapshots must not silently fall back to
// the map backend.
func TestCloneKeepsILMKind(t *testing.T) {
	for _, k := range ilmKinds {
		t.Run(k.String(), func(t *testing.T) {
			f := New(WithILM(k))
			mustMapLabel(t, f, 70, NHLFE{NextHop: "a", Op: label.OpPop})
			c := f.Clone()
			if c.ILMKind() != k {
				t.Fatalf("clone kind = %v, want %v", c.ILMKind(), k)
			}
			if _, ok := c.LookupILM(70); !ok {
				t.Fatal("clone lost binding")
			}
			// Independence both ways.
			mustMapLabel(t, c, 71, NHLFE{NextHop: "b", Op: label.OpPop})
			if _, ok := f.LookupILM(71); ok {
				t.Fatal("clone write visible in original")
			}
			f.UnmapLabel(70)
			if _, ok := c.LookupILM(70); !ok {
				t.Fatal("original removal visible in clone")
			}
		})
	}
}

// TestResolveApplySplitMatchesForward: for hits and misses alike, the
// Resolve/ApplyResolved/DropUnresolved decomposition must reproduce
// Forward byte for byte — the contract the dataplane flow cache leans
// on.
func TestResolveApplySplitMatchesForward(t *testing.T) {
	build := func() *Forwarder {
		f := New()
		mustMapFEC(t, f, packet.AddrFrom(10, 0, 0, 0), 8, NHLFE{NextHop: "in", Op: label.OpPush, PushLabels: []label.Label{100}})
		mustMapLabel(t, f, 100, NHLFE{NextHop: "mid", Op: label.OpSwap, PushLabels: []label.Label{200}})
		return f
	}
	mk := func(dst packet.Addr, lbls ...label.Label) *packet.Packet {
		p := packet.New(packet.AddrFrom(192, 0, 2, 9), dst, 16, nil)
		for _, l := range lbls {
			if err := p.Stack.Push(label.Entry{Label: l, TTL: 16}); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	cases := []func() *packet.Packet{
		func() *packet.Packet { return mk(packet.AddrFrom(10, 1, 1, 1)) },       // FTN hit
		func() *packet.Packet { return mk(packet.AddrFrom(172, 16, 0, 1)) },     // FTN miss
		func() *packet.Packet { return mk(packet.AddrFrom(10, 1, 1, 1), 100) },  // ILM hit
		func() *packet.Packet { return mk(packet.AddrFrom(10, 1, 1, 1), 999) },  // ILM miss
	}
	for i, mkp := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			fa, fb := build(), build()
			pa, pb := mkp(), mkp()
			want := fa.Forward(pa)
			n, ok := fb.Resolve(pb)
			var got Result
			if ok {
				got = fb.ApplyResolved(pb, n)
			} else {
				got = fb.DropUnresolved(pb)
			}
			if got != want {
				t.Fatalf("split result = %+v, Forward = %+v", got, want)
			}
			if pa.Header.TTL != pb.Header.TTL || pa.Stack.Depth() != pb.Stack.Depth() {
				t.Fatalf("packet diverged: ttl %d/%d depth %d/%d",
					pa.Header.TTL, pb.Header.TTL, pa.Stack.Depth(), pb.Stack.Depth())
			}
		})
	}
}

// TestForwarderSetTelemetry: the unified sink must feed both the drop
// counters and the trace ring from plain Forward calls.
func TestForwarderSetTelemetry(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 100, NHLFE{NextHop: "mid", Op: label.OpSwap, PushLabels: []label.Label{200}})
	drops := new(telemetry.DropCounters)
	ring := telemetry.NewRing(8)
	f.SetTelemetry(telemetry.Sink{Drops: drops, Trace: ring, Node: "lsr1"})

	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 1), 16, nil)
	if err := p.Stack.Push(label.Entry{Label: 100, TTL: 16}); err != nil {
		t.Fatal(err)
	}
	if res := f.Forward(p); res.Action != Forward {
		t.Fatalf("swap hop: %+v", res)
	}
	miss := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(172, 16, 0, 1), 16, nil)
	if res := f.Forward(miss); res.Drop != DropNoRoute {
		t.Fatalf("miss: %+v", res)
	}
	if got := drops.Total(); got != 1 {
		t.Errorf("drop total = %d, want 1", got)
	}
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("trace events = %d, want 2", len(evs))
	}
	if evs[0].Node != "lsr1" || evs[0].Op != telemetry.TraceSwap || evs[0].Label != 100 {
		t.Errorf("op event = %+v", evs[0])
	}
	if evs[1].Op != telemetry.TraceDiscard || evs[1].Reason != telemetry.ReasonNoRoute {
		t.Errorf("discard event = %+v", evs[1])
	}

	// Detach: no further events, no panic.
	f.SetTelemetry(telemetry.Sink{})
	f.Forward(packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(172, 16, 0, 1), 16, nil))
	if got := drops.Total(); got != 1 {
		t.Errorf("drop total after detach = %d, want 1", got)
	}
}
