package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/transport"
)

// codecResult pins the wire codec's per-operation cost. The allocs
// figures are the headline: the steady-state encode and decode paths
// must not allocate.
type codecResult struct {
	EncodeNsOp     float64 `json:"encode_ns_op"`
	EncodeAllocsOp int64   `json:"encode_allocs_op"`
	DecodeNsOp     float64 `json:"decode_ns_op"`
	DecodeAllocsOp int64   `json:"decode_allocs_op"`
	WireBytes      int     `json:"wire_bytes"`
}

// ppsResult is one transport throughput measurement.
type ppsResult struct {
	// Path is "in-memory" (encode+decode, no socket), "udp" (legacy
	// one-datagram-per-packet Send), or "udp-batched" (SendBatch with
	// coalesced frames and sendmmsg/recvmmsg).
	Path string `json:"path"`
	// Batch is the receiver's sink batch size (legacy sweep axis).
	Batch int `json:"batch,omitempty"`
	// Coalesce and SysBatch are the batched path's two amortisation
	// axes: packets per datagram and datagrams per syscall.
	Coalesce int `json:"coalesce,omitempty"`
	SysBatch int `json:"sys_batch,omitempty"`
	// Shards is the SO_REUSEPORT socket count (1 = a single socket).
	Shards int `json:"shards,omitempty"`
	// PPS is delivered packets per second of send-side wall time.
	PPS       float64 `json:"pps"`
	Sent      int     `json:"sent"`
	Delivered uint64  `json:"delivered"`
	LossRate  float64 `json:"loss_rate"`
	// SyscallsPerPacket is (tx+rx syscalls) / (tx+rx packets) over the
	// run — the figure that was invisible while the legacy batch sweep
	// reported flat pps: the receive batch size never changed the
	// syscall count, so nothing moved.
	SyscallsPerPacket float64 `json:"syscalls_per_packet,omitempty"`
}

type transportReport struct {
	Benchmark string `json:"benchmark"`
	Packets   int    `json:"packets"`
	// FloorPPS is the committed regression floor: bench-transport
	// exits nonzero when the best sustained batched-UDP pps falls
	// below it. Preserved across regenerations.
	FloorPPS float64     `json:"floor_pps"`
	Codec    codecResult `json:"codec"`
	Results  []ppsResult `json:"results"`
}

// defaultFloorPPS seeds the regression floor the first time a report is
// written: conservative (half the 5M target) so scheduler noise on
// loaded machines does not flake the gate.
const defaultFloorPPS = 2.5e6

// benchPacket is the codec workload: a transit packet with one label.
func benchPacket(seq uint64) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, make([]byte, 256))
	p.Header.FlowID = uint16(seq)
	p.SeqNo = seq
	if err := p.Stack.Push(label.Entry{Label: 500, TTL: 64}); err != nil {
		panic(err)
	}
	return p
}

func benchCodec() codecResult {
	p := benchPacket(1)
	buf := make([]byte, 0, transport.MaxDatagram)
	enc, err := transport.AppendPacket(buf, p, 1)
	if err != nil {
		panic(err)
	}
	var decoded packet.Packet
	if _, err := transport.DecodePacket(&decoded, enc); err != nil {
		panic(err)
	}

	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transport.AppendPacket(buf[:0], p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	decRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transport.DecodePacket(&decoded, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	return codecResult{
		EncodeNsOp:     float64(encRes.NsPerOp()),
		EncodeAllocsOp: encRes.AllocsPerOp(),
		DecodeNsOp:     float64(decRes.NsPerOp()),
		DecodeAllocsOp: decRes.AllocsPerOp(),
		WireBytes:      len(enc),
	}
}

// benchInMemory runs the full encode+decode pipeline with no socket in
// between: the upper bound socketless transport can reach, the baseline
// the UDP figures are judged against.
func benchInMemory(n int) ppsResult {
	p := benchPacket(1)
	buf := make([]byte, 0, transport.MaxDatagram)
	var decoded packet.Packet
	var delivered uint64
	start := time.Now()
	for i := 0; i < n; i++ {
		enc, err := transport.AppendPacket(buf[:0], p, 1)
		if err != nil {
			panic(err)
		}
		if _, err := transport.DecodePacket(&decoded, enc); err != nil {
			panic(err)
		}
		delivered++
	}
	elapsed := time.Since(start).Seconds()
	return ppsResult{
		Path: "in-memory", Sent: n, Delivered: delivered,
		PPS: float64(delivered) / elapsed,
	}
}

// benchUDP measures the legacy wire: one Send call, one datagram, one
// syscall per packet, through a loopback socket pair. The batch
// parameter sizes only the receiver's sink batches — the sweep that
// historically reported flat pps, because the syscall count (now
// reported) never moved.
func benchUDP(n, batch int) (ppsResult, error) {
	const (
		udpWindow = time.Second
		burst     = 64
	)
	m := &transport.Metrics{}
	var delivered atomic.Uint64
	sink := func(b []transport.Inbound) { delivered.Add(uint64(len(b))) }
	opts := []transport.Option{
		transport.WithBatch(batch),
		transport.WithReadBuffer(4 << 20),
		transport.WithMetrics(m),
	}
	d, err := transport.Pair("a", "b", func([]transport.Inbound) {}, sink, opts, opts)
	if err != nil {
		return ppsResult{}, err
	}
	defer d.Close()

	p := benchPacket(1)
	sent := 0
	start := time.Now()
	for sent < n && time.Since(start) < udpWindow {
		for i := 0; i < burst && sent < n; i++ {
			d.A.Send(p)
			sent++
		}
		// Let the receiver's goroutine drain between bursts: back off
		// whenever the queue depth grows past one burst.
		for uint64(sent)-delivered.Load() > burst {
			time.Sleep(20 * time.Microsecond)
			if time.Since(start) >= udpWindow {
				break
			}
		}
	}
	sendDone := time.Since(start)
	// Drain stragglers.
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if delivered.Load() >= uint64(sent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := delivered.Load()
	return ppsResult{
		Path: "udp", Batch: batch, Sent: sent, Delivered: got,
		PPS:               float64(got) / sendDone.Seconds(),
		LossRate:          1 - float64(got)/float64(sent),
		SyscallsPerPacket: m.SyscallsPerPacket(),
	}, nil
}

// benchUDPBatched measures the batched wire path: SendBatch coalesces
// packets into frames (coalesce per datagram) and moves them with
// batched syscalls (sysBatch datagrams per sendmmsg); the receive side
// is shards SO_REUSEPORT sockets drained by recvmmsg, one connected
// sender per shard. The sender paces against delivered count so the
// kernel's receive queue — not the path under test — never overflows.
func benchUDPBatched(coalesce, sysBatch, shards int) (ppsResult, error) {
	const (
		window = time.Second
		burst  = 256
		maxLag = 8192
	)
	m := &transport.Metrics{}
	var delivered atomic.Uint64
	opts := []transport.Option{
		transport.WithCoalesce(coalesce),
		transport.WithSysBatch(sysBatch),
		transport.WithBatch(burst),
		transport.WithReadBuffer(4 << 20),
		transport.WithMetrics(m),
	}
	rcv, err := transport.ListenSharded("127.0.0.1:0", shards,
		func(int) func(batch []transport.Inbound) {
			return func(b []transport.Inbound) { delivered.Add(uint64(len(b))) }
		}, opts...)
	if err != nil {
		return ppsResult{}, err
	}
	defer rcv.Close()

	links := make([]*transport.UDPLink, shards)
	for i := range links {
		l, err := transport.Dial("a", "b", rcv.Addr().String(), opts...)
		if err != nil {
			return ppsResult{}, err
		}
		defer l.Close()
		links[i] = l
	}

	ps := make([]*packet.Packet, burst)
	for i := range ps {
		ps[i] = benchPacket(uint64(i))
	}
	sent := 0
	start := time.Now()
	for time.Since(start) < window {
		links[sent/burst%len(links)].SendBatch(ps)
		sent += burst
		for uint64(sent)-delivered.Load() > maxLag {
			time.Sleep(20 * time.Microsecond)
			if time.Since(start) >= window {
				break
			}
		}
	}
	sendDone := time.Since(start)
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if delivered.Load() >= uint64(sent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := delivered.Load()
	return ppsResult{
		Path: "udp-batched", Coalesce: coalesce, SysBatch: sysBatch, Shards: shards,
		Sent: sent, Delivered: got,
		PPS:               float64(got) / sendDone.Seconds(),
		LossRate:          1 - float64(got)/float64(sent),
		SyscallsPerPacket: m.SyscallsPerPacket(),
	}, nil
}

// benchRouterEgress measures a real router in the middle of the wire:
// node a blasts labelled packets at node b, b forwards them through its
// ILM (swap 500 -> 600) and sends them on its attached egress link to a
// counting sink c. With pump=false this is the packet-at-a-time
// baseline — serial Receive under the network lock, one datagram and
// one syscall per forwarded packet. With pump=true the node runs the
// batch-first path end to end: sharded SO_REUSEPORT ingress feeding
// pinned engine shards, the egress pump staging per-(shard, next-hop)
// rings, and SendBatch pushing coalesced frames with batched syscalls.
// The reported SyscallsPerPacket covers only b's egress link — the
// figure the pump exists to shrink.
func benchRouterEgress(pump bool, shards, coalesce, sysBatch int) (ppsResult, error) {
	const (
		window = time.Second
		burst  = 256
		maxLag = 8192
	)
	egm := &transport.Metrics{}
	var delivered atomic.Uint64
	rcvC, err := transport.Listen("127.0.0.1:0",
		func(b []transport.Inbound) { delivered.Add(uint64(len(b))) },
		transport.WithBatch(burst), transport.WithSysBatch(32),
		transport.WithReadBuffer(4<<20))
	if err != nil {
		return ppsResult{}, err
	}
	defer rcvC.Close()

	// Node b is the router under test. Both modes run the engine plane
	// so ILM programming is identical; the near-zero software cost keeps
	// the simulated engine model from throttling the real wire path.
	workers := 1
	if pump {
		workers = shards
	}
	net, err := router.BuildLocal([]router.NodeSpec{
		{Name: "a"},
		{Name: "b", EngineWorkers: workers, EngineBatch: burst, SoftwareCost: 1e-9},
		{Name: "c"},
	}, []router.LinkSpec{{A: "a", B: "b"}, {A: "b", B: "c"}}, "b")
	if err != nil {
		return ppsResult{}, err
	}
	defer net.Close()

	bcOpts := []transport.Option{transport.WithMetrics(egm)}
	if pump {
		bcOpts = append(bcOpts, transport.WithCoalesce(coalesce), transport.WithSysBatch(sysBatch))
	}
	lbc, err := transport.Dial("b", "c", rcvC.Addr().String(), bcOpts...)
	if err != nil {
		return ppsResult{}, err
	}
	net.Router("b").AttachLink(lbc)
	net.Manage(lbc)
	eng := net.Router("b").Plane().(*router.EnginePlane).Engine
	if err := eng.InstallILM(500, swmpls.NHLFE{
		NextHop: "c", Op: label.OpSwap, PushLabels: []label.Label{600},
	}); err != nil {
		return ppsResult{}, err
	}

	inOpts := []transport.Option{transport.WithBatch(burst), transport.WithReadBuffer(4 << 20)}
	var addrB string
	if pump {
		inOpts = append(inOpts, transport.WithCoalesce(coalesce), transport.WithSysBatch(sysBatch))
		if err := net.AttachEgressPump("b"); err != nil {
			return ppsResult{}, err
		}
		sr, err := transport.ListenSharded("127.0.0.1:0", shards,
			func(i int) func(batch []transport.Inbound) { return net.FeedTo("b", i) }, inOpts...)
		if err != nil {
			return ppsResult{}, err
		}
		net.Manage(sr)
		addrB = sr.Addr().String()
	} else {
		r, err := transport.Listen("127.0.0.1:0", net.DeliverTo("b"), inOpts...)
		if err != nil {
			return ppsResult{}, err
		}
		net.Manage(r)
		addrB = r.Addr().String()
	}

	nSenders := 1
	var aOpts []transport.Option
	if pump {
		nSenders = shards
		aOpts = append(aOpts, transport.WithCoalesce(coalesce), transport.WithSysBatch(sysBatch))
	}
	senders := make([]*transport.UDPLink, nSenders)
	for i := range senders {
		l, err := transport.Dial("a", "b", addrB, aOpts...)
		if err != nil {
			return ppsResult{}, err
		}
		defer l.Close()
		senders[i] = l
	}

	// The baseline's serial path schedules its forwarding on the
	// simulator, so a driver must advance virtual time; the pump mode
	// never touches the event queue but runs the same driver for
	// symmetric lock traffic.
	stop := make(chan struct{})
	var simWG sync.WaitGroup
	simWG.Add(1)
	go func() {
		defer simWG.Done()
		net.RunRealStop(3600, stop)
	}()
	defer func() {
		close(stop)
		simWG.Wait()
	}()

	ps := make([]*packet.Packet, burst)
	for i := range ps {
		ps[i] = benchPacket(uint64(i))
	}
	pace := func(sent int, start time.Time) {
		for uint64(sent)-delivered.Load() > maxLag {
			time.Sleep(20 * time.Microsecond)
			if time.Since(start) >= window {
				return
			}
		}
	}
	sent := 0
	start := time.Now()
	if pump {
		for time.Since(start) < window {
			senders[sent/burst%len(senders)].SendBatch(ps)
			sent += burst
			pace(sent, start)
		}
	} else {
		for time.Since(start) < window {
			for i := 0; i < 64 && time.Since(start) < window; i++ {
				senders[0].Send(ps[i])
				sent++
			}
			pace(sent, start)
		}
	}
	sendDone := time.Since(start)
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if delivered.Load() >= uint64(sent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := delivered.Load()
	res := ppsResult{
		Path: "router", Sent: sent, Delivered: got,
		PPS:               float64(got) / sendDone.Seconds(),
		LossRate:          1 - float64(got)/float64(sent),
		SyscallsPerPacket: egm.SyscallsPerPacket(),
	}
	if pump {
		res.Path = "router-pump"
		res.Coalesce, res.SysBatch, res.Shards = coalesce, sysBatch, shards
	}
	return res, nil
}

// readFloor recovers the committed regression floor from a previous
// report at path; zero when there is none yet.
func readFloor(path string) float64 {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var old transportReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return 0
	}
	return old.FloorPPS
}

// runTransport is the -engine=transport benchmark: codec cost (with the
// zero-allocation guarantee), loopback-UDP throughput against the
// in-memory codec pipeline — the legacy per-packet wire, then the
// batched wire across its coalesce/sysBatch/shards axes — and the
// regression gate against the committed pps floor.
func runTransport(packets int, path string) error {
	fmt.Println("== wire codec ==")
	codec := benchCodec()
	fmt.Printf("encode: %.1f ns/op, %d allocs/op\n", codec.EncodeNsOp, codec.EncodeAllocsOp)
	fmt.Printf("decode: %.1f ns/op, %d allocs/op\n", codec.DecodeNsOp, codec.DecodeAllocsOp)
	fmt.Printf("wire size: %d bytes (256B payload, 1 label)\n", codec.WireBytes)
	if codec.EncodeAllocsOp != 0 || codec.DecodeAllocsOp != 0 {
		fmt.Println("WARNING: codec is not allocation-free")
	}

	fmt.Printf("\n== throughput (%d packets) ==\n", packets)
	results := []ppsResult{benchInMemory(packets)}
	fmt.Printf("%-26s %12.0f pps\n", "in-memory", results[0].PPS)
	for _, batch := range []int{1, 32, 128} {
		r, err := benchUDP(packets, batch)
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("udp b=%-20d %12.0f pps  (loss %.2f%%, %.2f syscalls/pkt)\n",
			batch, r.PPS, 100*r.LossRate, r.SyscallsPerPacket)
	}
	var best ppsResult
	for _, axes := range [][3]int{{1, 32, 1}, {8, 32, 1}, {32, 32, 1}, {32, 64, 1}, {64, 64, 1}, {128, 32, 1}, {32, 32, 2}} {
		r, err := benchUDPBatched(axes[0], axes[1], axes[2])
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("udp-batched c=%-3d s=%-3d n=%d %12.0f pps  (loss %.2f%%, %.3f syscalls/pkt)\n",
			r.Coalesce, r.SysBatch, r.Shards, r.PPS, 100*r.LossRate, r.SyscallsPerPacket)
		if r.PPS > best.PPS {
			best = r
		}
	}

	fmt.Println("\n== router egress (a -> router b -> c) ==")
	routerBase, err := benchRouterEgress(false, 1, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %12.0f pps  (loss %.2f%%, %.3f egress syscalls/pkt)\n",
		"router", routerBase.PPS, 100*routerBase.LossRate, routerBase.SyscallsPerPacket)
	routerPump, err := benchRouterEgress(true, 4, 32, 32)
	if err != nil {
		return err
	}
	fmt.Printf("router-pump n=%-3d c=%-3d s=%-2d %9.0f pps  (loss %.2f%%, %.3f egress syscalls/pkt)\n",
		routerPump.Shards, routerPump.Coalesce, routerPump.SysBatch,
		routerPump.PPS, 100*routerPump.LossRate, routerPump.SyscallsPerPacket)
	results = append(results, routerBase, routerPump)

	floor := 0.0
	if path != "" {
		if floor = readFloor(path); floor == 0 {
			floor = defaultFloorPPS
		}
		report := transportReport{
			Benchmark: "transport", Packets: packets, FloorPPS: floor,
			Codec: codec, Results: results,
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
	}
	if floor > 0 && best.PPS < floor {
		return fmt.Errorf("transport regression: best batched UDP %.0f pps is below the committed floor %.0f pps",
			best.PPS, floor)
	}
	if floor > 0 {
		fmt.Printf("floor gate: best batched %.2fM pps >= floor %.2fM pps\n", best.PPS/1e6, floor/1e6)
	}
	// The end-to-end gates the egress pump exists to pass: a pumped
	// router must at least double the packet-at-a-time baseline, and its
	// egress link must amortise syscalls across coalesced frames.
	if routerPump.PPS < 2*routerBase.PPS {
		return fmt.Errorf("router egress regression: pumped %.0f pps is below 2x the serial baseline %.0f pps",
			routerPump.PPS, routerBase.PPS)
	}
	if routerPump.SyscallsPerPacket > 0.05 {
		return fmt.Errorf("router egress regression: %.3f egress syscalls/pkt exceeds the 0.05 budget",
			routerPump.SyscallsPerPacket)
	}
	fmt.Printf("router gate: pumped %.2fM pps >= 2x serial %.2fM pps, %.3f egress syscalls/pkt <= 0.05\n",
		routerPump.PPS/1e6, routerBase.PPS/1e6, routerPump.SyscallsPerPacket)
	return nil
}
