package iproute

import (
	"testing"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/te"
)

func TestTableLongestPrefixMatch(t *testing.T) {
	tab := NewTable()
	if err := tab.Add(packet.AddrFrom(10, 0, 0, 0), 8, "coarse"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(packet.AddrFrom(10, 1, 0, 0), 16, "fine"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(packet.AddrFrom(10, 1, 2, 3), 32, "host"); err != nil {
		t.Fatal(err)
	}
	cases := map[packet.Addr]string{
		packet.AddrFrom(10, 1, 2, 3): "host",
		packet.AddrFrom(10, 1, 9, 9): "fine",
		packet.AddrFrom(10, 7, 0, 1): "coarse",
	}
	for addr, want := range cases {
		nh, ok := tab.Lookup(addr)
		if !ok || nh != want {
			t.Errorf("lookup(%v) = %q,%v, want %q", addr, nh, ok, want)
		}
	}
	if _, ok := tab.Lookup(packet.AddrFrom(11, 0, 0, 1)); ok {
		t.Error("lookup outside all prefixes succeeded")
	}
	if tab.Size() != 3 {
		t.Errorf("size = %d", tab.Size())
	}
}

func TestTableDefaultRouteAndErrors(t *testing.T) {
	tab := NewTable()
	if err := tab.Add(0, 0, "default"); err != nil {
		t.Fatal(err)
	}
	if nh, ok := tab.Lookup(packet.AddrFrom(8, 8, 8, 8)); !ok || nh != "default" {
		t.Errorf("default route: %q, %v", nh, ok)
	}
	if err := tab.Add(0, 33, "x"); err == nil {
		t.Error("prefix length 33 accepted")
	}
	if err := tab.Add(0, -1, "x"); err == nil {
		t.Error("negative prefix length accepted")
	}
	// The prefix is canonicalised: host bits are masked away.
	if err := tab.Add(packet.AddrFrom(10, 0, 0, 99), 24, "masked"); err != nil {
		t.Fatal(err)
	}
	if nh, ok := tab.Lookup(packet.AddrFrom(10, 0, 0, 1)); !ok || nh != "masked" {
		t.Error("host bits not masked on Add")
	}
}

// lineTopo builds a-b-c-d with unit metrics.
func lineTopo(t *testing.T) *te.Topology {
	t.Helper()
	topo := te.NewTopology()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		topo.AddNode(n)
	}
	for i := 0; i+1 < len(names); i++ {
		if err := topo.AddDuplex(names[i], names[i+1], te.LinkAttrs{CapacityBPS: 1, Metric: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestBuildTablesLine(t *testing.T) {
	topo := lineTopo(t)
	pfx := packet.AddrFrom(10, 0, 0, 0)
	tables, err := BuildTables(topo, []PrefixOwner{{Prefix: pfx, Len: 24, Node: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "b", "b": "c", "c": "d", "d": Local}
	for node, wantNH := range want {
		nh, ok := tables[node].Lookup(packet.AddrFrom(10, 0, 0, 7))
		if !ok || nh != wantNH {
			t.Errorf("%s: next hop %q,%v, want %q", node, nh, ok, wantNH)
		}
	}
}

func TestBuildTablesPrefersLowMetric(t *testing.T) {
	topo := te.NewTopology()
	for _, n := range []string{"a", "b", "c", "d"} {
		topo.AddNode(n)
	}
	// a-b-d metric 2, a-c-d metric 10.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(topo.AddDuplex("a", "b", te.LinkAttrs{Metric: 1}))
	must(topo.AddDuplex("b", "d", te.LinkAttrs{Metric: 1}))
	must(topo.AddDuplex("a", "c", te.LinkAttrs{Metric: 5}))
	must(topo.AddDuplex("c", "d", te.LinkAttrs{Metric: 5}))
	tables, err := BuildTables(topo, []PrefixOwner{{Prefix: packet.AddrFrom(10, 0, 0, 0), Len: 8, Node: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if nh, _ := tables["a"].Lookup(packet.AddrFrom(10, 1, 1, 1)); nh != "b" {
		t.Errorf("a routes via %q, want b", nh)
	}
}

func TestBuildTablesUnreachableAndUnknown(t *testing.T) {
	topo := te.NewTopology()
	topo.AddNode("a")
	topo.AddNode("island")
	tables, err := BuildTables(topo, []PrefixOwner{{Prefix: 0, Len: 8, Node: "island"}})
	if err != nil {
		t.Fatal(err)
	}
	// a cannot reach the island: no route installed.
	if _, ok := tables["a"].Lookup(1); ok {
		t.Error("route to unreachable node installed")
	}
	// The island itself has a local route.
	if nh, ok := tables["island"].Lookup(1); !ok || nh != Local {
		t.Error("island missing its local route")
	}
	if _, err := BuildTables(topo, []PrefixOwner{{Prefix: 0, Len: 8, Node: "ghost"}}); err == nil {
		t.Error("unknown owner accepted")
	}
}
