package dataplane

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// BenchmarkProcessInline measures the lock-free per-packet fast path: an
// atomic table load plus one ILM swap.
func BenchmarkProcessInline(b *testing.B) {
	e := New(WithWorkers(1))
	defer e.Close()
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		b.Fatal(err)
	}
	p := labelled(100, 1, 0)
	entry := label.Entry{Label: 100, TTL: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Stack.Reset()
		_ = p.Stack.Push(entry)
		if res := e.ProcessInline(p); res.Action != swmpls.Forward {
			b.Fatal("swap failed")
		}
	}
}

// BenchmarkEngineThroughput measures the full submit -> shard queue ->
// worker -> deliver pipeline, recycling a fixed pool of packets.
func BenchmarkEngineThroughput(b *testing.B) {
	pool := make(chan *packet.Packet, 4096)
	entry := label.Entry{Label: 100, TTL: 64}
	e := New(WithEgress(funcEgress{forward: func(_ string, p *packet.Packet) {
		p.Stack.Reset()
		_ = p.Stack.Push(entry)
		pool <- p
	}}))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < cap(pool); i++ {
		pool <- labelled(100, uint16(i), 0)
	}
	one := make([]*packet.Packet, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one[0] = <-pool
		if e.Submit(one, SubmitOpts{Wait: true}) != 1 {
			b.Fatal("engine closed")
		}
	}
	b.StopTimer()
	e.Close()
}
