package resilience

// HealthConfig parameterises drop-rate health tracking.
type HealthConfig struct {
	// Interval between samples (seconds). <=0: 0.05.
	Interval float64
	// Threshold is the per-interval drop delta considered unhealthy.
	// <=0: 1.
	Threshold uint64
	// Bad is the number of consecutive unhealthy intervals that fires
	// the callback. <=0: 2.
	Bad int
	// Until, when >0, stops sampling at that simulated time. 0 samples
	// forever (stop with Stop).
	Until float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 0.05
	}
	if c.Threshold == 0 {
		c.Threshold = 1
	}
	if c.Bad <= 0 {
		c.Bad = 2
	}
	return c
}

// HealthTracker polls a cumulative drop counter and fires when the
// per-interval delta stays at or above the threshold for Bad
// consecutive intervals — the telemetry-fed side of failure detection.
// The sampler is typically a telemetry.DropCounters total (or a single
// reason's count) attributed to one LSP's traffic.
type HealthTracker struct {
	clock   Clock
	cfg     HealthConfig
	sample  func() uint64
	onBad   func(delta uint64)
	last    uint64
	bad     int
	fired   bool
	stopped bool
}

// TrackHealth starts a tracker on the injected clock. onUnhealthy fires
// once per unhealthy episode (it rearms after a healthy interval).
func TrackHealth(clock Clock, cfg HealthConfig, sample func() uint64, onUnhealthy func(delta uint64)) *HealthTracker {
	t := &HealthTracker{
		clock: clock, cfg: cfg.withDefaults(), sample: sample, onBad: onUnhealthy,
		last: sample(),
	}
	clock.Schedule(t.cfg.Interval, t.tick)
	return t
}

// Stop halts sampling.
func (t *HealthTracker) Stop() { t.stopped = true }

func (t *HealthTracker) tick() {
	if t.stopped || (t.cfg.Until > 0 && t.clock.Now() >= t.cfg.Until) {
		return
	}
	cur := t.sample()
	delta := cur - t.last
	t.last = cur
	if delta >= t.cfg.Threshold {
		t.bad++
		if t.bad >= t.cfg.Bad && !t.fired {
			t.fired = true
			t.onBad(delta)
		}
	} else {
		t.bad = 0
		t.fired = false
	}
	t.clock.Schedule(t.cfg.Interval, t.tick)
}
