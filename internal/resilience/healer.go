package resilience

import (
	"fmt"

	"embeddedmpls/internal/router"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
)

// HealerConfig parameterises protection switching.
type HealerConfig struct {
	// Backoff governs retries of failed reroutes.
	Backoff Backoff
	// Seed feeds the retry jitter source.
	Seed int64
	// DrainDelay is how long the old path's label state is kept
	// installed after a protection switch so in-flight packets drain
	// instead of being cut off (seconds). <=0: 0.02.
	DrainDelay float64
	// Events and Timeline are optional observation sinks.
	Events   *telemetry.EventCounters
	Timeline *Timeline
}

// Healer owns the repair side of the self-healing loop: pre-computed
// link-disjoint backup paths per protected LSP, protection switching
// through ldp.Reroute (make-before-break), and backoff-retried repair
// when the control plane itself fails. Wire its LinkDown/LinkUp methods
// to a Monitor's callbacks and Degraded to a HealthTracker's.
type Healer struct {
	net      *router.Network
	clock    Clock
	retry    *Retryer
	drain    float64
	events   *telemetry.EventCounters
	timeline *Timeline

	protected map[string]*protectedLSP
	failed    map[te.LinkKey]bool // links currently believed down
	order     []string            // protection order, for determinism
}

type protectedLSP struct {
	id     string
	backup []string // may be nil: recomputed on demand
	broken bool     // retries exhausted; re-attempted on LinkUp
}

// NewHealer builds a healer over the network.
func NewHealer(net *router.Network, clock Clock, cfg HealerConfig) *Healer {
	drain := cfg.DrainDelay
	if drain <= 0 {
		drain = 0.02
	}
	return &Healer{
		net:       net,
		clock:     clock,
		retry:     NewRetryer(clock, cfg.Backoff, cfg.Seed, cfg.Events, cfg.Timeline),
		drain:     drain,
		events:    cfg.Events,
		timeline:  cfg.Timeline,
		protected: make(map[string]*protectedLSP),
		failed:    make(map[te.LinkKey]bool),
	}
}

// Protect registers an established LSP for protection and pre-computes
// a link-disjoint backup path (sharing no link with the primary, in
// either direction). When no disjoint path exists the LSP is still
// protected — a repair path is computed at failure time around whatever
// actually failed.
func (h *Healer) Protect(id string) error {
	lsp, ok := h.net.LDP.LSP(id)
	if !ok {
		return fmt.Errorf("resilience: unknown LSP %q", id)
	}
	if _, dup := h.protected[id]; dup {
		return nil
	}
	p := &protectedLSP{id: id}
	p.backup = h.disjointBackup(id)
	h.protected[id] = p
	h.order = append(h.order, id)
	if h.timeline != nil {
		if p.backup != nil {
			h.timeline.Add(h.clock.Now(), "healer: protecting %q (path %v, backup %v)", id, lsp.Path, p.backup)
		} else {
			h.timeline.Add(h.clock.Now(), "healer: protecting %q (path %v, no disjoint backup)", id, lsp.Path)
		}
	}
	return nil
}

// disjointBackup computes a backup path sharing no link with the LSP's
// current path, honouring its bandwidth, or nil when none exists.
func (h *Healer) disjointBackup(id string) []string {
	lsp, ok := h.net.LDP.LSP(id)
	if !ok {
		return nil
	}
	exclude := te.ExcludePath(lsp.Path)
	for k := range h.failed {
		exclude[k] = true
	}
	backup, err := h.net.Topo.CSPF(te.PathRequest{
		From: lsp.Path[0], To: lsp.Path[len(lsp.Path)-1],
		BandwidthBPS: lsp.Bandwidth, ExcludeLinks: exclude,
	})
	if err != nil {
		return nil
	}
	return backup
}

// LinkDown records a detected link failure and protection-switches every
// protected LSP whose path crosses it. Wire to Monitor.OnDown.
func (h *Healer) LinkDown(a, b string) {
	h.failed[te.LinkKey{From: a, To: b}] = true
	h.failed[te.LinkKey{From: b, To: a}] = true
	for _, id := range h.order {
		p := h.protected[id]
		lsp, ok := h.net.LDP.LSP(id)
		if !ok {
			continue
		}
		if !pathUses(lsp.Path, a, b) {
			continue
		}
		h.heal(p)
	}
}

// LinkUp records a detected link recovery and re-attempts repair of any
// LSP whose earlier protection switch exhausted its retries. Wire to
// Monitor.OnUp.
func (h *Healer) LinkUp(a, b string) {
	delete(h.failed, te.LinkKey{From: a, To: b})
	delete(h.failed, te.LinkKey{From: b, To: a})
	for _, id := range h.order {
		p := h.protected[id]
		if p.broken {
			h.heal(p)
			continue
		}
		if p.backup == nil {
			// A backup that was impossible before may exist now.
			p.backup = h.disjointBackup(id)
		}
	}
}

// Degraded protection-switches one LSP off its current (suspect) path —
// the response to per-LSP health tracking flagging silent loss. Wire to
// a HealthTracker's callback.
func (h *Healer) Degraded(id string) {
	p, ok := h.protected[id]
	if !ok {
		return
	}
	h.heal(p)
}

// heal moves one LSP onto its backup (or a freshly computed repair
// path), retrying with backoff when the reroute itself fails.
func (h *Healer) heal(p *protectedLSP) {
	lsp, ok := h.net.LDP.LSP(p.id)
	if !ok {
		return
	}
	target := p.backup
	if target == nil || h.crossesFailed(target) || samePath(target, lsp.Path) {
		target = h.repairPath(lsp.Path, lsp.Bandwidth)
	}
	if target == nil {
		p.broken = true
		if h.timeline != nil {
			h.timeline.Add(h.clock.Now(), "healer: no repair path for %q, will retry on recovery", p.id)
		}
		return
	}
	from := append([]string(nil), lsp.Path...)
	var brk func()
	h.retry.Do(fmt.Sprintf("reroute %q", p.id),
		func() error {
			b, err := h.net.LDP.RerouteDeferred(p.id, target)
			if err != nil {
				return err
			}
			brk = b
			return nil
		},
		func(err error) {
			if err != nil {
				p.broken = true
				return
			}
			p.broken = false
			// Keep the old path installed while in-flight packets drain:
			// the deferred break is what makes the switch lossless for
			// traffic already past the ingress.
			h.clock.Schedule(h.drain, brk)
			if h.events != nil {
				h.events.Inc(telemetry.EventProtectionSwitch)
			}
			if h.timeline != nil {
				h.timeline.Add(h.clock.Now(), "healer: %q switched %v -> %v", p.id, from, target)
			}
			p.backup = h.disjointBackup(p.id)
		})
}

// repairPath computes a path from scratch around every failed link and
// off the current (suspect) path's first link.
func (h *Healer) repairPath(current []string, bw float64) []string {
	exclude := make(map[te.LinkKey]bool, len(h.failed)+2)
	for k := range h.failed {
		exclude[k] = true
	}
	// The current path is suspect even when no link on it is known-down
	// (the degraded case): avoid at least its first hop so the repair
	// actually moves traffic.
	if len(current) >= 2 {
		exclude[te.LinkKey{From: current[0], To: current[1]}] = true
		exclude[te.LinkKey{From: current[1], To: current[0]}] = true
	}
	path, err := h.net.Topo.CSPF(te.PathRequest{
		From: current[0], To: current[len(current)-1],
		BandwidthBPS: bw, ExcludeLinks: exclude,
	})
	if err != nil {
		return nil
	}
	return path
}

// crossesFailed reports whether any link of the path is believed down.
func (h *Healer) crossesFailed(path []string) bool {
	for i := 0; i+1 < len(path); i++ {
		if h.failed[te.LinkKey{From: path[i], To: path[i+1]}] {
			return true
		}
	}
	return false
}

// pathUses reports whether the path crosses the a-b connection in
// either direction.
func pathUses(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
