package signaling

import (
	"strings"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/te"
)

// fakePolicy is an in-package stand-in for resilience.Retryer (which
// cannot be imported here without a cycle): it retries op with
// exponential backoff on the injected clock.
type fakePolicy struct {
	clock    Clock
	base     float64
	maxTries int
	started  int
}

func (p *fakePolicy) Do(name string, op func() error, onDone func(error)) {
	p.started++
	var attempt func(n int, backoff float64)
	attempt = func(n int, backoff float64) {
		err := op()
		if err == nil {
			onDone(nil)
			return
		}
		if n+1 >= p.maxTries {
			onDone(err)
			return
		}
		p.clock.Schedule(backoff, func() { attempt(n+1, backoff*2) })
	}
	attempt(0, p.base)
}

// TestRestartPolicyQuietensDeadPeer: with a restart policy, a dead
// neighbour costs a handful of backed-off pokes instead of a hello
// every tick — and the session still recovers once the link heals.
func TestRestartPolicyQuietensDeadPeer(t *testing.T) {
	net := diamond(t)
	policy := &fakePolicy{clock: net.Sim, base: 0.05, maxTries: 20}
	speakers, err := Deploy(net, WithUntil(5), WithRestartPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.5)
	sessAB := speakers["a"].sessions["b"]
	if !sessAB.Up() {
		t.Fatal("session a->b never came up")
	}
	orig := sessAB.send
	hellos := 0
	sessAB.send = func(mt MsgType) {
		if mt == MsgHello {
			hellos++
		}
		orig(mt)
	}

	net.SetLinkDown("a", "b", true)
	net.Sim.RunUntil(2.5)
	if sessAB.Up() {
		t.Fatal("session a->b survived a 2s link cut")
	}
	if !sessAB.Dead() {
		t.Error("session a->b not reported Dead")
	}
	// Without the policy the hello cadence is every 20ms: ~90 hellos
	// over the 1.8s the session has been down. The policy's exponential
	// backoff sends a few pokes instead.
	if hellos > 10 {
		t.Errorf("hellos while dead = %d, want <= 10 (restart policy should pace them)", hellos)
	}
	if policy.started == 0 {
		t.Error("restart policy never engaged")
	}

	net.SetLinkDown("a", "b", false)
	net.Sim.RunUntil(4.5)
	if !sessAB.Up() {
		t.Fatalf("session a->b did not recover after heal (state %v)", sessAB.State())
	}
}

// TestSessionHelloMuteAndPoke covers the session-level primitives the
// restart policy is built on.
func TestSessionHelloMuteAndPoke(t *testing.T) {
	h := newSessionHarness(Timers{Hello: 0.02})
	h.sess.SuppressHellos(true)
	h.sess.Tick(1.0)
	if len(h.sent) != 0 {
		t.Fatalf("muted session sent %v on tick", h.sent)
	}
	h.sess.Poke(1.0)
	if h.lastSent() != MsgHello {
		t.Fatalf("poke sent %v, want hello", h.lastSent())
	}
	// A muted session is still fully responsive: the peer's hello gets
	// its Init and the handshake completes passively.
	h.sess.Handle(MsgHello, 1.1)
	if h.lastSent() != MsgInit {
		t.Fatalf("muted session answered hello with %v, want init", h.lastSent())
	}
	h.sess.Handle(MsgInit, 1.2)
	if !h.sess.Up() {
		t.Fatal("muted session did not come up passively")
	}
	if h.sess.Dead() {
		t.Error("operational session reported Dead")
	}
	// Poke while operational is a no-op.
	n := len(h.sent)
	h.sess.Poke(1.3)
	if len(h.sent) != n {
		t.Error("poke sent while operational")
	}
	h.sess.Down(1.4)
	if !h.sess.Dead() {
		t.Error("once-up session not Dead after going down")
	}
}

// TestSessionKeepaliveStretch checks the adaptive-keepalive clamp and
// pacing at the session level.
func TestSessionKeepaliveStretch(t *testing.T) {
	h := newSessionHarness(Timers{Hello: 0.02, Keepalive: 0.04, Hold: 0.4})
	// Clamp ceiling is Hold/(2*Keepalive) = 5.
	h.sess.SetKeepaliveStretch(100)
	if got := h.sess.KeepaliveStretch(); got != 5 {
		t.Errorf("stretch clamped to %v, want 5", got)
	}
	h.sess.SetKeepaliveStretch(0.1)
	if got := h.sess.KeepaliveStretch(); got != 1 {
		t.Errorf("stretch floor = %v, want 1", got)
	}
	h.sess.SetKeepaliveStretch(3)
	h.sess.Handle(MsgInit, 1.0) // up; sends keepalive, lastSent=1.0
	h.sent = nil
	// Unstretched pacing would fire at +0.04; stretched waits 0.12.
	for _, tick := range []float64{1.04, 1.08, 1.11} {
		h.sess.Touch(tick) // keep the dead timer quiet
		h.sess.Tick(tick)
	}
	if len(h.sent) != 0 {
		t.Fatalf("stretched session sent %v before the stretched interval", h.sent)
	}
	h.sess.Touch(1.13)
	h.sess.Tick(1.13)
	if h.lastSent() != MsgKeepalive {
		t.Fatal("stretched session never sent its keepalive")
	}
}

// TestSpeakerAdaptiveKeepalive: under control-plane receive load above
// the threshold, the maintenance sweep stretches keepalive pacing —
// and the stretched sessions stay operational.
func TestSpeakerAdaptiveKeepalive(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(3),
		WithMaintenance(0.25), WithAdaptiveKeepalive(1))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(2.5)
	// Default timers clamp the stretch at Hold/(2*Keepalive) = 1.5, and
	// the steady keepalive exchange alone is far above 1 msg/s.
	sess := speakers["a"].sessions["b"]
	if got := sess.KeepaliveStretch(); got != 1.5 {
		t.Errorf("stretch = %v, want 1.5 (clamped)", got)
	}
	for name, sp := range speakers {
		for _, peer := range sp.Peers() {
			if s, _ := sp.Session(peer); !s.Up() {
				t.Errorf("session %s->%s not operational under stretched keepalives", name, peer)
			}
		}
	}
}

// TestDeadDownstreamAnswersWithAvoid: a transit node whose downstream
// session has died answers new requests with an error naming the
// broken link, and the ingress protection-switches around it instead
// of burning its retry budget.
func TestDeadDownstreamAnswersWithAvoid(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(4))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.3)
	net.SetLinkDown("b", "d", true)
	net.Sim.RunUntil(0.8) // b's session to d passes its dead timer

	if sess, _ := speakers["b"].Session("d"); !sess.Dead() {
		t.Fatal("b's session to d not dead yet")
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	var setupErr error
	gotResult := false
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, func(e error) { gotResult = true; setupErr = e }); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(2.5)
	if !gotResult || setupErr != nil {
		t.Fatalf("setup result=%v err=%v, want success via backup", gotResult, setupErr)
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("established path = %v, want a,c,d", lastPath)
	}
}

// tripleNet has three disjoint paths a-d in metric order: via b (1),
// via c (5), via e (10).
func tripleNet(t *testing.T) *router.Network {
	t.Helper()
	net, err := router.Build(
		[]router.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}, {Name: "e"}},
		[]router.LinkSpec{
			{A: "a", B: "b", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "b", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "a", B: "c", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "c", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "a", B: "e", RateBPS: 1e9, Delay: 0.0005, Metric: 10},
			{A: "e", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestAvoidMemoryAccumulates breaks the primary and first backup
// simultaneously: converging on the third path requires the ingress to
// remember the first broken link while reacting to the second — without
// the accumulated avoid set it oscillates between the two broken paths.
func TestAvoidMemoryAccumulates(t *testing.T) {
	net := tripleNet(t)
	speakers, err := Deploy(net, WithUntil(5))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)
	if strings.Join(lastPath, ",") != "a,b,d" {
		t.Fatalf("initial path = %v", lastPath)
	}

	net.SetLinkDown("b", "d", true)
	net.SetLinkDown("c", "d", true)
	net.Sim.RunUntil(4.5)
	if strings.Join(lastPath, ",") != "a,e,d" {
		t.Fatalf("converged path = %v, want a,e,d (both broken links avoided)", lastPath)
	}
}

// TestPathExcluderConsulted proves reroute honours the external
// exclusion source (flap damping): with the only backup excluded, the
// protection switch cannot happen.
func TestPathExcluderConsulted(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	speakers["a"].SetPathExcluder(func() map[te.LinkKey]bool {
		return map[te.LinkKey]bool{
			{From: "a", To: "c"}: true,
			{From: "c", To: "a"}: true,
		}
	})
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6) // initial establishment completes
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }

	net.SetLinkDown("a", "b", true)
	net.Sim.RunUntil(2.5)
	if lastPath != nil {
		t.Fatalf("rerouted to %v despite the backup being excluded", lastPath)
	}
}

// TestPendingQueueBounded: label messages queued toward a session that
// never comes up must not grow without bound.
func TestPendingQueueBounded(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net)
	if err != nil {
		t.Fatal(err)
	}
	sp := speakers["a"]
	m := &Message{Type: MsgLabelRequest, Src: sp.self}
	m.SetID("q#1")
	for i := 0; i < maxPending+50; i++ {
		sp.sendWhenUp("b", m)
	}
	if got := len(sp.pending["b"]); got != maxPending {
		t.Fatalf("pending queue = %d, want bounded at %d", got, maxPending)
	}
}

// guardRecorder records Advertise/Withdraw calls.
type guardRecorder struct {
	adv, wd []string
}

func (g *guardRecorder) Advertise(peer string, l label.Label) {
	g.adv = append(g.adv, peer)
}
func (g *guardRecorder) Withdraw(peer string, l label.Label) {
	g.wd = append(g.wd, peer)
}

// TestGuardSeesAdvertisements: mappings sent upstream are mirrored into
// the label guard, withdawals on teardown.
func TestGuardSeesAdvertisements(t *testing.T) {
	net := diamond(t)
	rec := &guardRecorder{}
	speakers, err := Deploy(net, WithUntil(3), WithGuard(rec))
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)
	// b advertised toward a, d advertised toward b. (The shared recorder
	// sees both speakers' calls; peers identify the direction.)
	advA, advB := 0, 0
	for _, p := range rec.adv {
		switch p {
		case "a":
			advA++
		case "b":
			advB++
		}
	}
	if advA == 0 || advB == 0 {
		t.Fatalf("advertisements = %v, want toward both a and b", rec.adv)
	}
	if len(rec.wd) != 0 {
		t.Fatalf("unexpected withdrawals %v", rec.wd)
	}
	// Teardown withdraws what was advertised.
	net.SetLinkDown("a", "b", true)
	net.Sim.RunUntil(1.5)
	if len(rec.wd) == 0 {
		t.Fatal("teardown produced no guard withdrawals")
	}
}
