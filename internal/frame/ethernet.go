// Package frame implements the layer-2 adaptations the paper's Figure 1
// shows at the edges of the MPLS core: Ethernet frames, ATM AAL5 cell
// trains and Frame Relay frames. Label edge routers use these to receive
// packets from "dissimilar networks", attach labels, and hand packets
// back at the far edge.
//
// Real traffic is replaced by synthetic framing (the reproduction has no
// physical networks), but the encodings are faithful enough to exercise
// the same code path: encapsulation, integrity checking and decapsulation
// around every LER hop.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MAC is a 6-byte Ethernet hardware address.
type MAC [6]byte

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherTypes relevant to MPLS edges (RFC 3032 §5 assigns 0x8847 to MPLS
// unicast).
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeMPLS uint16 = 0x8847
)

// Ethernet framing constants.
const (
	ethHeaderSize = 14
	ethFCSSize    = 4
	EthMinPayload = 46
	EthMaxPayload = 1500
	EthOverhead   = ethHeaderSize + ethFCSSize
)

// Ethernet framing errors.
var (
	ErrFrameTooShort = errors.New("frame: too short")
	ErrBadFCS        = errors.New("frame: FCS mismatch")
	ErrPayloadSize   = errors.New("frame: payload size out of range")
)

// EthernetFrame is one layer-2 Ethernet frame.
type EthernetFrame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// EncodeEthernet wraps payload in an Ethernet frame with a computed FCS.
// Payloads shorter than the Ethernet minimum are padded (the pad is
// length-prefixed away by the network layer: our packet encoding is
// self-delimiting, so trailing zeros are harmless to Unmarshal).
func EncodeEthernet(dst, src MAC, etherType uint16, payload []byte) ([]byte, error) {
	if len(payload) > EthMaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadSize, len(payload), EthMaxPayload)
	}
	n := len(payload)
	if n < EthMinPayload {
		n = EthMinPayload
	}
	buf := make([]byte, 0, ethHeaderSize+n+ethFCSSize)
	buf = append(buf, dst[:]...)
	buf = append(buf, src[:]...)
	buf = binary.BigEndian.AppendUint16(buf, etherType)
	buf = append(buf, payload...)
	buf = append(buf, make([]byte, n-len(payload))...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeEthernet validates the FCS and splits the frame.
func DecodeEthernet(buf []byte) (*EthernetFrame, error) {
	if len(buf) < ethHeaderSize+ethFCSSize {
		return nil, ErrFrameTooShort
	}
	body, fcs := buf[:len(buf)-ethFCSSize], binary.BigEndian.Uint32(buf[len(buf)-ethFCSSize:])
	if crc32.ChecksumIEEE(body) != fcs {
		return nil, ErrBadFCS
	}
	f := &EthernetFrame{EtherType: binary.BigEndian.Uint16(body[12:14])}
	copy(f.Dst[:], body[0:6])
	copy(f.Src[:], body[6:12])
	f.Payload = append([]byte(nil), body[ethHeaderSize:]...)
	return f, nil
}
