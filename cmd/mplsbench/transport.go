package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/transport"
)

// codecResult pins the wire codec's per-operation cost. The allocs
// figures are the headline: the steady-state encode and decode paths
// must not allocate.
type codecResult struct {
	EncodeNsOp     float64 `json:"encode_ns_op"`
	EncodeAllocsOp int64   `json:"encode_allocs_op"`
	DecodeNsOp     float64 `json:"decode_ns_op"`
	DecodeAllocsOp int64   `json:"decode_allocs_op"`
	WireBytes      int     `json:"wire_bytes"`
}

// ppsResult is one transport throughput measurement.
type ppsResult struct {
	// Path is "in-memory" (encode+decode, no socket) or "udp".
	Path  string `json:"path"`
	Batch int    `json:"batch,omitempty"`
	// PPS is delivered packets per second of wall time.
	PPS       float64 `json:"pps"`
	Sent      int     `json:"sent"`
	Delivered uint64  `json:"delivered"`
	LossRate  float64 `json:"loss_rate"`
}

type transportReport struct {
	Benchmark string      `json:"benchmark"`
	Packets   int         `json:"packets"`
	Codec     codecResult `json:"codec"`
	Results   []ppsResult `json:"results"`
}

// benchPacket is the codec workload: a transit packet with one label.
func benchPacket(seq uint64) *packet.Packet {
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, make([]byte, 256))
	p.Header.FlowID = uint16(seq)
	p.SeqNo = seq
	if err := p.Stack.Push(label.Entry{Label: 500, TTL: 64}); err != nil {
		panic(err)
	}
	return p
}

func benchCodec() codecResult {
	p := benchPacket(1)
	buf := make([]byte, 0, transport.MaxDatagram)
	enc, err := transport.AppendPacket(buf, p, 1)
	if err != nil {
		panic(err)
	}
	var decoded packet.Packet
	if _, err := transport.DecodePacket(&decoded, enc); err != nil {
		panic(err)
	}

	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transport.AppendPacket(buf[:0], p, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	decRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := transport.DecodePacket(&decoded, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	return codecResult{
		EncodeNsOp:     float64(encRes.NsPerOp()),
		EncodeAllocsOp: encRes.AllocsPerOp(),
		DecodeNsOp:     float64(decRes.NsPerOp()),
		DecodeAllocsOp: decRes.AllocsPerOp(),
		WireBytes:      len(enc),
	}
}

// benchInMemory runs the full encode+decode pipeline with no socket in
// between: the upper bound socketless transport can reach, the baseline
// the UDP figures are judged against.
func benchInMemory(n int) ppsResult {
	p := benchPacket(1)
	buf := make([]byte, 0, transport.MaxDatagram)
	var decoded packet.Packet
	var delivered uint64
	start := time.Now()
	for i := 0; i < n; i++ {
		enc, err := transport.AppendPacket(buf[:0], p, 1)
		if err != nil {
			panic(err)
		}
		if _, err := transport.DecodePacket(&decoded, enc); err != nil {
			panic(err)
		}
		delivered++
	}
	elapsed := time.Since(start).Seconds()
	return ppsResult{
		Path: "in-memory", Sent: n, Delivered: delivered,
		PPS: float64(delivered) / elapsed,
	}
}

// benchUDP measures sustained delivered pps through a real loopback
// socket pair: the sender pushes at most n packets in small paced
// bursts for up to udpWindow of wall time, the sink counts arrivals.
// Pacing keeps the kernel's receive queue from being the thing under
// test; residual loss under pressure is reported, not hidden.
func benchUDP(n, batch int) (ppsResult, error) {
	const (
		udpWindow = time.Second
		burst     = 64
	)
	var delivered atomic.Uint64
	sink := func(b []transport.Inbound) { delivered.Add(uint64(len(b))) }
	opts := []transport.Option{
		transport.WithBatch(batch),
		transport.WithReadBuffer(4 << 20),
	}
	d, err := transport.Pair("a", "b", func([]transport.Inbound) {}, sink, nil, opts)
	if err != nil {
		return ppsResult{}, err
	}
	defer d.Close()

	p := benchPacket(1)
	sent := 0
	start := time.Now()
	for sent < n && time.Since(start) < udpWindow {
		for i := 0; i < burst && sent < n; i++ {
			d.A.Send(p)
			sent++
		}
		// Let the receiver's goroutine drain between bursts: back off
		// whenever the queue depth grows past one burst.
		for uint64(sent)-delivered.Load() > burst {
			time.Sleep(20 * time.Microsecond)
			if time.Since(start) >= udpWindow {
				break
			}
		}
	}
	sendDone := time.Since(start)
	// Drain stragglers.
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if delivered.Load() >= uint64(sent) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got := delivered.Load()
	return ppsResult{
		Path: "udp", Batch: batch, Sent: sent, Delivered: got,
		PPS:      float64(got) / sendDone.Seconds(),
		LossRate: 1 - float64(got)/float64(sent),
	}, nil
}

// runTransport is the -engine=transport benchmark: codec cost (with the
// zero-allocation guarantee), loopback-UDP throughput against the
// in-memory codec pipeline, and a receive batch-size sweep.
func runTransport(packets int, path string) error {
	fmt.Println("== wire codec ==")
	codec := benchCodec()
	fmt.Printf("encode: %.1f ns/op, %d allocs/op\n", codec.EncodeNsOp, codec.EncodeAllocsOp)
	fmt.Printf("decode: %.1f ns/op, %d allocs/op\n", codec.DecodeNsOp, codec.DecodeAllocsOp)
	fmt.Printf("wire size: %d bytes (256B payload, 1 label)\n", codec.WireBytes)
	if codec.EncodeAllocsOp != 0 || codec.DecodeAllocsOp != 0 {
		fmt.Println("WARNING: codec is not allocation-free")
	}

	fmt.Printf("\n== throughput (%d packets) ==\n", packets)
	results := []ppsResult{benchInMemory(packets)}
	fmt.Printf("%-10s %12.0f pps\n", "in-memory", results[0].PPS)
	for _, batch := range []int{1, 8, 32, 128} {
		r, err := benchUDP(packets, batch)
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("udp b=%-4d %12.0f pps  (loss %.2f%%)\n", batch, r.PPS, 100*r.LossRate)
	}

	if path != "" {
		report := transportReport{
			Benchmark: "transport", Packets: packets,
			Codec: codec, Results: results,
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
	}
	return nil
}
