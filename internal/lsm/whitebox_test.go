package lsm

import (
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/wave"
)

// stateNames for readable failures.
var lsiStateNames = map[uint64]string{
	lsiIdle: "idle", lsiUserPush: "user-push", lsiUserPop: "user-pop",
	lsiSearchEnable: "search-enable", lsiReadResult: "read-result",
	lsiRemoveTop: "remove-top", lsiUpdateTTL: "update-ttl",
	lsiVerifyInfo: "verify-info", lsiUpdateTop: "update-top",
	lsiLoadNew: "load-new", lsiPushOld: "push-old", lsiPushNew: "push-new",
	lsiDiscard: "discard", lsiDone: "done",
}

// traceLSIStates runs one update and returns the distinct label stack
// interface states visited, in order.
func traceLSIStates(t *testing.T, b *Bench, req UpdateRequest) []string {
	t.Helper()
	tr := wave.NewTracer(b.Sim(), b.HW.LSIState)
	if _, _, err := b.Update(req); err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ch := range tr.Changes("lsi_state") {
		out = append(out, lsiStateNames[ch.Value])
	}
	return out
}

func assertSequence(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("state sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state sequence %v, want %v", got, want)
		}
	}
}

// TestLSIStateSequenceSwap asserts the exact state walk of Figure 9 for
// a swap: search, read result, remove top, update TTL, verify, load the
// new entry, push it, done.
func TestLSIStateSequenceSwap(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	got := traceLSIStates(t, b, UpdateRequest{})
	assertSequence(t, got, []string{
		"idle", "search-enable", "read-result", "remove-top",
		"update-ttl", "verify-info", "load-new", "push-new", "done", "idle",
	})
}

// TestLSIStateSequencePop: pop rewrites the new top instead of loading a
// new entry.
func TestLSIStateSequencePop(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level3, infobase.Pair{Index: 42, NewLabel: 0, Op: label.OpPop})
	_, _ = b.UserPush(label.Entry{Label: 5, TTL: 64})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	got := traceLSIStates(t, b, UpdateRequest{})
	assertSequence(t, got, []string{
		"idle", "search-enable", "read-result", "remove-top",
		"update-ttl", "verify-info", "update-top", "done", "idle",
	})
}

// TestLSIStateSequencePush: "pushing the old and new stack entries for
// the push operation" (Figure 9).
func TestLSIStateSequencePush(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 100, Op: label.OpPush})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	got := traceLSIStates(t, b, UpdateRequest{})
	assertSequence(t, got, []string{
		"idle", "search-enable", "read-result", "remove-top",
		"update-ttl", "verify-info", "push-old", "load-new", "push-new", "done", "idle",
	})
}

// TestLSIStateSequenceMiss: "the packet is immediately discarded if no
// information is found".
func TestLSIStateSequenceMiss(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 7, NewLabel: 8, Op: label.OpSwap})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	got := traceLSIStates(t, b, UpdateRequest{})
	assertSequence(t, got, []string{
		"idle", "search-enable", "discard", "done", "idle",
	})
}

// TestLSIStateSequenceTTLExpired: found, but verification rejects.
func TestLSIStateSequenceTTLExpired(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 1})
	got := traceLSIStates(t, b, UpdateRequest{})
	assertSequence(t, got, []string{
		"idle", "search-enable", "read-result", "remove-top",
		"update-ttl", "verify-info", "discard", "done", "idle",
	})
}

// TestMainInterlocksSubMachines: the main controller must never have the
// label stack interface and the information base interface active at the
// same time ("ensure that the remaining state machines are not working
// at the same time and possibly generate inconsistent results").
func TestMainInterlocksSubMachines(t *testing.T) {
	b := NewBench(LSR)
	violations := 0
	b.Sim().OnSample(func(uint64) {
		lsiBusy := b.HW.LSIState.Get() != lsiIdle
		ibiBusy := b.HW.IBIState.Get() != ibiIdle
		if lsiBusy && ibiBusy {
			violations++
		}
	})
	// Exercise every operation class.
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	_, _, _ = b.Lookup(infobase.Level2, 42)
	_, _, _ = b.Update(UpdateRequest{})
	_, _, _ = b.UserPop()
	_, _ = b.ResetOp()
	if violations != 0 {
		t.Errorf("label-stack and info-base interfaces active together on %d cycles", violations)
	}
}

// TestSearchReadsAreSynchronous: the search module must spend exactly one
// WAIT state between presenting a read address and comparing, matching
// the information base's registered read port.
func TestSearchReadsAreSynchronous(t *testing.T) {
	b := NewBench(LSR)
	for i := 0; i < 3; i++ {
		_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: 1, Op: label.OpSwap})
	}
	tr := wave.NewTracer(b.Sim(), b.HW.SrchState)
	if _, _, err := b.Lookup(infobase.Level2, 3); err != nil {
		t.Fatal(err)
	}
	var seq []uint64
	for _, ch := range tr.Changes("search_state") {
		seq = append(seq, ch.Value)
	}
	want := []uint64{
		srIdle,
		srRead, srWait, srCompare, // entry 1: miss
		srRead, srWait, srCompare, // entry 2: miss
		srRead, srWait, srCompare, // entry 3: hit
		srFound, srIdle,
	}
	if len(seq) != len(want) {
		t.Fatalf("search walk %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("search walk %v, want %v", seq, want)
		}
	}
}

// TestFiguresOnCAMVariant: the figure scenarios produce the same results
// on the CAM-configured modifier, in constant time.
func TestFiguresOnCAMVariant(t *testing.T) {
	b := NewBenchWith(LER, Options{Search: SearchCAM})
	for i := 0; i < 10; i++ {
		p := infobase.Pair{Index: infobase.Key(600 + i), NewLabel: label.Label(500 + i), Op: alternatingOp(i)}
		if _, err := b.WritePair(infobase.Level1, p); err != nil {
			t.Fatal(err)
		}
	}
	res, cycles, err := b.Lookup(infobase.Level1, 604)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Label != 504 || res.Op != label.OpSwap {
		t.Errorf("CAM figure-14 lookup = %+v", res)
	}
	if cycles != CyclesSearchCAM {
		t.Errorf("CAM lookup = %d cycles, want %d", cycles, CyclesSearchCAM)
	}
	// Miss (figure 16 shape): discard flag raised, constant time.
	res, cycles, err = b.Lookup(infobase.Level1, 27)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || cycles != CyclesSearchCAM {
		t.Errorf("CAM miss = %+v in %d cycles", res, cycles)
	}
	if !b.HW.PacketDiscard.Bool() {
		t.Error("packetdiscard not raised on CAM miss")
	}
}
