package ldp

import (
	"errors"
	"fmt"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
)

// errInstall is the injected installer failure for leak regression tests.
var errInstall = errors.New("injected install failure")

// installCounter fails the Nth install call (1-based) across every
// wrapped installer; failAt = 0 never fails.
type installCounter struct {
	failAt int
	calls  int
}

func (c *installCounter) tick() error {
	c.calls++
	if c.failAt > 0 && c.calls == c.failAt {
		return errInstall
	}
	return nil
}

// failingInstaller wraps a forwarder so install calls can be made to
// fail at an exact point in the setup walk. Removals always succeed —
// rollback must not be blockable.
type failingInstaller struct {
	*swmpls.Forwarder
	c *installCounter
}

func (f failingInstaller) InstallILM(in label.Label, n swmpls.NHLFE) error {
	if err := f.c.tick(); err != nil {
		return err
	}
	return f.Forwarder.InstallILM(in, n)
}

func (f failingInstaller) InstallFEC(dst packet.Addr, prefixLen int, n swmpls.NHLFE) error {
	if err := f.c.tick(); err != nil {
		return err
	}
	return f.Forwarder.InstallFEC(dst, prefixLen, n)
}

// failNet builds a diamond topology a-{b,c}-d whose installers share an
// installCounter.
func failNet(t *testing.T) (*Manager, *te.Topology, map[string]*swmpls.Forwarder, *installCounter) {
	t.Helper()
	topo := te.NewTopology()
	for _, n := range []string{"a", "b", "c", "d"} {
		topo.AddNode(n)
	}
	for _, l := range [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}} {
		if err := topo.AddDuplex(l[0], l[1], te.LinkAttrs{CapacityBPS: 10e6, Metric: 1}); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(topo)
	c := &installCounter{}
	fwds := make(map[string]*swmpls.Forwarder)
	for _, n := range []string{"a", "b", "c", "d"} {
		f := swmpls.New()
		fwds[n] = f
		if err := m.Register(n, failingInstaller{Forwarder: f, c: c}); err != nil {
			t.Fatal(err)
		}
	}
	return m, topo, fwds, c
}

// reservations snapshots ReservedBPS on every directed link.
func reservations(topo *te.Topology) map[string]float64 {
	r := make(map[string]float64)
	for _, from := range topo.Nodes() {
		for _, to := range topo.Neighbours(from) {
			a, _ := topo.Link(from, to)
			r[from+"->"+to] = a.ReservedBPS
		}
	}
	return r
}

func sameReservations(t *testing.T, want, got map[string]float64, context string) {
	t.Helper()
	for k, w := range want {
		if g := got[k]; g != w {
			t.Errorf("%s: link %s reserved %.0f bps, want %.0f", context, k, g, w)
		}
	}
}

// TestSetupInstallFailureReleasesBandwidth fails installation at every
// hop index of the setup walk in turn and checks that the topology's
// bandwidth reservations return to their pre-call value each time: no
// reservation may leak on any partial-install path.
func TestSetupInstallFailureReleasesBandwidth(t *testing.T) {
	// First count the installs of a clean setup.
	m, _, _, c := failNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "probe", FEC: FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"}, Bandwidth: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	total := c.calls
	if total < 3 {
		t.Fatalf("setup made only %d install calls", total)
	}

	for n := 1; n <= total; n++ {
		t.Run(fmt.Sprintf("failAt%d", n), func(t *testing.T) {
			m, topo, _, c := failNet(t)
			before := reservations(topo)
			c.failAt = n
			_, err := m.SetupLSP(SetupRequest{
				ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "d"}, Bandwidth: 1e6,
			})
			if !errors.Is(err, errInstall) {
				t.Fatalf("setup error = %v, want injected failure", err)
			}
			sameReservations(t, before, reservations(topo), "after failed setup")
			if _, ok := m.LSP("l"); ok {
				t.Error("failed setup left the LSP registered")
			}
			// The id and bandwidth must be reusable immediately.
			c.failAt = 0
			if _, err := m.SetupLSP(SetupRequest{
				ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "d"}, Bandwidth: 9e6,
			}); err != nil {
				t.Fatalf("retry after rollback: %v", err)
			}
		})
	}
}

// TestRerouteInstallFailureKeepsOldPath fails each install of the
// reroute's make-before-break walk and checks that the old path, its
// reservations and its forwarding state all survive untouched.
func TestRerouteInstallFailureKeepsOldPath(t *testing.T) {
	// Count a clean reroute's installs.
	m, _, _, c := failNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "probe", FEC: FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"}, Bandwidth: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	preCalls := c.calls
	if err := m.Reroute("probe", []string{"a", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	rerouteInstalls := c.calls - preCalls
	if rerouteInstalls < 3 {
		t.Fatalf("reroute made only %d install calls", rerouteInstalls)
	}

	for n := 1; n <= rerouteInstalls; n++ {
		t.Run(fmt.Sprintf("failAt%d", n), func(t *testing.T) {
			m, topo, fwds, c := failNet(t)
			if _, err := m.SetupLSP(SetupRequest{
				ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32},
				Path: []string{"a", "b", "d"}, Bandwidth: 1e6,
			}); err != nil {
				t.Fatal(err)
			}
			before := reservations(topo)
			c.failAt = c.calls + n
			if err := m.Reroute("l", []string{"a", "c", "d"}); !errors.Is(err, errInstall) {
				t.Fatalf("reroute error = %v, want injected failure", err)
			}
			sameReservations(t, before, reservations(topo), "after failed reroute")
			lsp, ok := m.LSP("l")
			if !ok {
				t.Fatal("LSP lost after failed reroute")
			}
			if len(lsp.Path) != 3 || lsp.Path[1] != "b" {
				t.Errorf("path = %v, want the old a-b-d", lsp.Path)
			}
			// The old path still forwards end to end.
			p := packet.New(1, dst, 64, nil)
			last, res, visited := walk(t, fwds, "a", p)
			if last != "d" || res.Action != swmpls.Deliver {
				t.Errorf("old path broken after failed reroute: stopped at %s (%v) via %v", last, res, visited)
			}
			// And a clean reroute still succeeds, moving the reservation.
			c.failAt = 0
			if err := m.Reroute("l", []string{"a", "c", "d"}); err != nil {
				t.Fatalf("clean reroute after failures: %v", err)
			}
			after := reservations(topo)
			if after["a->b"] != 0 || after["b->d"] != 0 {
				t.Errorf("old reservations not released: a->b=%.0f b->d=%.0f", after["a->b"], after["b->d"])
			}
			if after["a->c"] != 1e6 || after["c->d"] != 1e6 {
				t.Errorf("new reservations missing: a->c=%.0f c->d=%.0f", after["a->c"], after["c->d"])
			}
		})
	}
}
