// Package label implements MPLS labels, label stack entries and label
// stacks following the generic label format of RFC 3032 ("MPLS Label Stack
// Encoding"), which is the 32-bit layout shown in Figure 5 of Peterkin &
// Ionescu, "Embedded MPLS Architecture" (2005):
//
//	| label (20 bits) | CoS (3 bits) | S (1 bit) | TTL (8 bits) |
//
// The paper calls the 3 experimental bits "Class of Service" (CoS); RFC 3032
// calls the same field "Exp". The S bit marks the bottom entry of the stack,
// and the TTL is decremented at every label switch router.
package label

import (
	"errors"
	"fmt"
)

// Label is a 20-bit MPLS label value.
type Label uint32

// MaxLabel is the largest encodable label value (2^20 - 1).
const MaxLabel Label = 1<<20 - 1

// Reserved label values defined by RFC 3032 §2.1. Values 4-15 are reserved
// for future use; an information base must never hand them out.
const (
	IPv4ExplicitNull Label = 0 // pop and forward as IPv4
	RouterAlert      Label = 1 // deliver to the local software path
	IPv6ExplicitNull Label = 2 // pop and forward as IPv6
	ImplicitNull     Label = 3 // signalled only, never appears on the wire
)

// FirstUnreserved is the smallest label value an allocator may assign.
const FirstUnreserved Label = 16

// Reserved reports whether l is one of the reserved label values (0-15).
func (l Label) Reserved() bool { return l < FirstUnreserved }

// Valid reports whether l fits in 20 bits.
func (l Label) Valid() bool { return l <= MaxLabel }

// CoS is the 3-bit class-of-service field of a label stack entry.
type CoS uint8

// MaxCoS is the largest encodable CoS value.
const MaxCoS CoS = 7

// Valid reports whether c fits in 3 bits.
func (c CoS) Valid() bool { return c <= MaxCoS }

// Entry is one 32-bit label stack entry.
type Entry struct {
	Label  Label
	CoS    CoS
	Bottom bool  // S bit: set only on the bottom-of-stack entry
	TTL    uint8 // time to live, decremented per hop
}

// Bit layout of the packed 32-bit entry, most significant bits first.
const (
	labelShift = 12
	cosShift   = 9
	bottomBit  = 1 << 8
	ttlMask    = 0xff
)

// ErrFieldRange reports an entry field that does not fit its wire width.
var ErrFieldRange = errors.New("label: field out of range")

// Pack encodes the entry into its 32-bit wire form. Fields that exceed
// their widths are an error rather than being silently truncated, because a
// truncated label would silently steer the packet onto a different LSP.
func (e Entry) Pack() (uint32, error) {
	if !e.Label.Valid() {
		return 0, fmt.Errorf("%w: label %d exceeds 20 bits", ErrFieldRange, e.Label)
	}
	if !e.CoS.Valid() {
		return 0, fmt.Errorf("%w: CoS %d exceeds 3 bits", ErrFieldRange, e.CoS)
	}
	w := uint32(e.Label)<<labelShift | uint32(e.CoS)<<cosShift | uint32(e.TTL)
	if e.Bottom {
		w |= bottomBit
	}
	return w, nil
}

// MustPack is Pack for entries known to be in range; it panics otherwise.
func (e Entry) MustPack() uint32 {
	w, err := e.Pack()
	if err != nil {
		panic(err)
	}
	return w
}

// Unpack decodes a 32-bit wire word into an Entry. Every 32-bit pattern is
// a valid entry, so Unpack cannot fail.
func Unpack(w uint32) Entry {
	return Entry{
		Label:  Label(w >> labelShift),
		CoS:    CoS(w >> cosShift & 0x7),
		Bottom: w&bottomBit != 0,
		TTL:    uint8(w & ttlMask),
	}
}

// String renders the entry in the form used throughout the test suite and
// the trace tooling, e.g. "lbl=504 cos=3 S=1 ttl=63".
func (e Entry) String() string {
	s := 0
	if e.Bottom {
		s = 1
	}
	return fmt.Sprintf("lbl=%d cos=%d S=%d ttl=%d", e.Label, e.CoS, s, e.TTL)
}
