// Figure1: the paper's Figure 1 and Figure 2 made executable — an
// Ethernet network on one side, an ATM network on the other, an MPLS core
// of embedded-hardware routers in between. A packet is generated on the
// Ethernet segment, framed, labelled at the ingress LER, label-switched
// across two LSRs, stripped at the egress LER and delivered to the ATM
// segment as an AAL5 cell train. Every layer-2 byte is really encoded and
// integrity-checked.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/edge"
	"embeddedmpls/internal/frame"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
)

func main() {
	// LER1 -- LSR1 -- LSR2 -- LER2, all running the embedded data plane.
	nodes := []router.NodeSpec{
		{Name: "ler1", Hardware: true, RouterType: lsm.LER},
		{Name: "lsr1", Hardware: true, RouterType: lsm.LSR},
		{Name: "lsr2", Hardware: true, RouterType: lsm.LSR},
		{Name: "ler2", Hardware: true, RouterType: lsm.LER},
	}
	var links []router.LinkSpec
	for _, pair := range [][2]string{{"ler1", "lsr1"}, {"lsr1", "lsr2"}, {"lsr2", "ler2"}} {
		links = append(links, router.LinkSpec{A: pair[0], B: pair[1], RateBPS: 10e6, Delay: 0.001})
	}
	net, err := router.Build(nodes, links)
	check(err)

	// Layer-2 attachments: Ethernet behind LER1, ATM behind LER2.
	srcHost := packet.AddrFrom(192, 168, 1, 10)
	dstHost := packet.AddrFrom(10, 0, 0, 10)
	eth := edge.NewPort("eth0", net.Router("ler1"),
		&frame.EthernetAdapter{Local: frame.MAC{0xaa, 0, 0, 0, 0, 1}, Remote: frame.MAC{0xaa, 0, 0, 0, 0, 2}})
	eth.AttachHost(srcHost)
	edge.Attach(net.Router("ler1"), eth)

	vc := frame.VC{VPI: 1, VCI: 42}
	atm := edge.NewPort("atm0", net.Router("ler2"), &frame.ATMAdapter{Circuit: vc})
	atm.AttachHost(dstHost)
	edge.Attach(net.Router("ler2"), atm)

	// Routing functionality: one LSP across the core.
	lsp, err := net.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "fig1",
		FEC:  ldp.FEC{Dst: dstHost, PrefixLen: 32},
		Path: []string{"ler1", "lsr1", "lsr2", "ler2"},
		CoS:  3,
	})
	check(err)
	fmt.Printf("LSP established, hop labels: %v\n", lsp.HopLabels)
	for _, m := range net.LDP.Messages {
		fmt.Printf("  label mapping: %s -> %s (label %d)\n", m.From, m.To, m.Label)
	}

	// The ATM side records what it receives.
	var cells [][]byte
	atm.OnTransmit = func(units [][]byte) { cells = units }

	// "LAYER 2 NETWORK (generates L2 packet)": the Ethernet host sends.
	payload := []byte("figure 2 packet exchange")
	pkt := packet.New(srcHost, dstHost, 64, payload)
	check(eth.SendFromHost(pkt))
	net.Sim.Run()

	fmt.Printf("\nEthernet ingress: %d frame(s), %d packet(s)\n", eth.RxFrames.Events, eth.RxPackets.Events)
	for _, name := range []string{"ler1", "lsr1", "lsr2", "ler2"} {
		fmt.Printf("  %v\n", net.Router(name))
	}
	fmt.Printf("ATM egress: %d cell(s) on VPI %d / VCI %d\n", len(cells), vc.VPI, vc.VCI)

	// "LAYER 2 NETWORK (receives L2 packet)": reassemble and verify.
	data, err := (&frame.ATMAdapter{Circuit: vc}).Decap(cells)
	check(err)
	got, err := packet.Unmarshal(data)
	check(err)
	fmt.Printf("\ndelivered: %v\n", got)
	fmt.Printf("payload intact: %v, labels stripped: %v, TTL %d -> %d\n",
		string(got.Payload) == string(payload), !got.Labelled(), 64, got.Header.TTL)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
