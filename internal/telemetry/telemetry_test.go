package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonLookupMiss:     "lookup-miss",
		ReasonTTLExpired:     "ttl-expired",
		ReasonInconsistentOp: "inconsistent-op",
		ReasonQueueOverfull:  "queue-overfull",
		ReasonNoRoute:        "no-route",
		ReasonWireDecode:     "wire-decode",
		ReasonLabelSpoof:     "label-spoof",
		ReasonTTLSecurity:    "ttl-security",
		ReasonRateLimit:      "rate-limit",
		ReasonQuarantine:     "quarantine",
	}
	if len(want) != NumReasons {
		t.Fatalf("test covers %d reasons, enum has %d", len(want), NumReasons)
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
		if !r.Valid() {
			t.Errorf("%v not valid", r)
		}
	}
	if Reason(NumReasons).Valid() {
		t.Error("out-of-range reason reported valid")
	}
	if !strings.Contains(Reason(200).String(), "200") {
		t.Error("unknown reason string lost its value")
	}
}

func TestDropCountersBasics(t *testing.T) {
	var c DropCounters
	c.Inc(ReasonLookupMiss)
	c.Add(ReasonTTLExpired, 3)
	c.Inc(Reason(250)) // ignored, not a crash or a misattribution
	if got := c.Get(ReasonLookupMiss); got != 1 {
		t.Errorf("lookup-miss = %d, want 1", got)
	}
	if got := c.Get(ReasonTTLExpired); got != 3 {
		t.Errorf("ttl-expired = %d, want 3", got)
	}
	if got := c.Get(Reason(250)); got != 0 {
		t.Errorf("invalid reason = %d, want 0", got)
	}
	if got := c.Total(); got != 4 {
		t.Errorf("total = %d, want 4", got)
	}
	snap := c.Snapshot()
	if snap[ReasonLookupMiss] != 1 || snap[ReasonTTLExpired] != 3 {
		t.Errorf("snapshot = %v", snap)
	}

	var d DropCounters
	d.Add(ReasonTTLExpired, 2)
	d.Merge(&c)
	d.Merge(nil)
	if got := d.Get(ReasonTTLExpired); got != 5 {
		t.Errorf("merged ttl-expired = %d, want 5", got)
	}
	if !strings.Contains(d.String(), "ttl-expired=5") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDropCountersConcurrent(t *testing.T) {
	var c DropCounters
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := Reason(g % NumReasons)
			for i := 0; i < per; i++ {
				c.Inc(r)
				_ = c.Snapshot() // scrape while writing
			}
		}(g)
	}
	wg.Wait()
	if got := c.Total(); got != goroutines*per {
		t.Errorf("total = %d, want %d", got, goroutines*per)
	}
}
